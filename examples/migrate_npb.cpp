// The paper's headline scenario end-to-end: a scientist has an NPB binary
// compiled with MVAPICH2 1.2 on Ranger and wants to run it at Fir, whose
// MVAPICH2 is the 1.7 line with a different libmpich soname.
//
//   * A naive "matching MPI implementation" attempt fails: the binary's
//     libmpich.so.1.0 does not exist at Fir.
//   * FEAM's two-phase flow (source phase at Ranger gathers library
//     copies; target phase at Fir recursively validates and installs them)
//     turns the failure into a successful run — the Section IV resolution
//     model in action.
#include <cstdio>

#include "feam/phases.hpp"
#include "support/strings.hpp"
#include "toolchain/launcher.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

int main() {
  using namespace feam;

  auto ranger = toolchain::make_site("ranger");
  auto fir = toolchain::make_site("fir");

  // Compile NPB CG (Fortran) with MVAPICH2 1.2 + Intel 10.1 at Ranger.
  toolchain::ProgramSource cg;
  cg.name = "cg.B.16";
  cg.language = toolchain::Language::kFortran;
  cg.libc_features = {"base", "stdio", "math"};
  cg.text_size = 160 * 1024;
  const auto* stack = ranger->find_stack(site::MpiImpl::kMvapich2,
                                         site::CompilerFamily::kIntel);
  const auto compiled = toolchain::compile_mpi_program(
      *ranger, cg, *stack, "/home/user/NPB2.4/bin/cg.B.16");
  if (!compiled.ok()) {
    std::printf("compile failed: %s\n", compiled.error().c_str());
    return 1;
  }

  // Migrate to Fir.
  fir->vfs.write_file("/home/user/cg.B.16", *ranger->vfs.read(compiled.value()));

  // --- Naive attempt: match the MPI implementation, load the module, run.
  std::printf("== naive attempt at fir (module load mvapich2/1.7a-intel) ==\n");
  fir->load_module("mvapich2/1.7a-intel");
  const auto naive =
      toolchain::mpiexec_with_retries(*fir, "/home/user/cg.B.16", 16);
  std::printf("   %s\n   %s\n\n", toolchain::run_status_name(naive.status),
              naive.detail.c_str());
  fir->unload_all_modules();

  // --- FEAM source phase at the guaranteed execution environment.
  std::printf("== FEAM source phase at ranger ==\n");
  ranger->load_module("mvapich2/1.2-intel");
  const auto source = run_source_phase(*ranger, compiled.value());
  if (!source.ok()) {
    std::printf("source phase failed: %s\n", source.error().c_str());
    return 1;
  }
  std::printf("   gathered %zu library copies (%s), %zu hello worlds\n",
              source.value().bundle.libraries.size(),
              support::human_size(source.value().bundle.total_bytes()).c_str(),
              source.value().bundle.hello_worlds.size());
  for (const auto& lib : source.value().bundle.libraries) {
    std::printf("     %-22s from %s\n", lib.name.c_str(),
                lib.origin_path.c_str());
  }

  // --- FEAM target phase at Fir, with the bundle.
  std::printf("\n== FEAM target phase at fir ==\n");
  const auto result =
      run_target_phase(*fir, "/home/user/cg.B.16", &source.value());
  if (!result.ok()) {
    std::printf("target phase failed: %s\n", result.error().c_str());
    return 1;
  }
  const Prediction& prediction = result.value().prediction;
  std::printf("   prediction: %s\n", prediction.ready ? "READY" : "NOT READY");
  std::printf("   missing:    %s\n",
              support::join(prediction.missing_libraries, ", ").c_str());
  std::printf("   resolved:   %s\n",
              support::join(prediction.resolved_libraries, ", ").c_str());
  if (!prediction.ready) return 1;
  std::printf("\n   generated configuration script:\n");
  for (const auto& line : support::split(prediction.configuration_script, '\n')) {
    if (!line.empty()) std::printf("   | %s\n", line.c_str());
  }

  // --- Follow FEAM's configuration and run for real.
  std::printf("\n== execution under FEAM's configuration ==\n");
  const auto extra = Tec::apply_configuration(*fir, prediction);
  const auto run =
      toolchain::mpiexec_with_retries(*fir, "/home/user/cg.B.16", 16, extra);
  std::printf("   %s%s%s\n", toolchain::run_status_name(run.status),
              run.output.empty() ? "" : ": ", run.output.c_str());
  return run.success() ? 0 : 1;
}
