// Quickstart: the smallest complete FEAM round trip.
//
//   1. Materialize two computing sites from the paper's testbed.
//   2. Compile an MPI program at one of them (the "guaranteed execution
//      environment").
//   3. Migrate the binary bytes to the other site.
//   4. Ask FEAM whether it is ready to execute there.
//
// Everything is simulated in memory — no root, no clusters, no MPI
// installation needed. Build & run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "feam/phases.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

int main() {
  using namespace feam;

  // 1. Two sites from the paper's Table II.
  auto india = toolchain::make_site("india");  // RHEL 5.6, glibc 2.5
  auto fir = toolchain::make_site("fir");      // CentOS 5.6, glibc 2.5

  // 2. Compile a small MPI application with Open MPI + Intel at India.
  toolchain::ProgramSource app;
  app.name = "my_solver";
  app.language = toolchain::Language::kC;
  app.libc_features = {"base", "stdio", "math"};
  const auto* stack = india->find_stack(site::MpiImpl::kOpenMpi,
                                        site::CompilerFamily::kIntel);
  const auto compiled = toolchain::compile_mpi_program(
      *india, app, *stack, "/home/user/apps/my_solver");
  if (!compiled.ok()) {
    std::printf("compile failed: %s\n", compiled.error().c_str());
    return 1;
  }
  std::printf("compiled %s with %s at %s\n", compiled.value().c_str(),
              stack->display().c_str(), india->name.c_str());

  // 3. "scp" the binary to Fir.
  fir->vfs.write_file("/home/user/my_solver", *india->vfs.read(compiled.value()));

  // 4. Run FEAM's (required) target phase at Fir.
  const auto result = run_target_phase(*fir, "/home/user/my_solver");
  if (!result.ok()) {
    std::printf("target phase failed: %s\n", result.error().c_str());
    return 1;
  }
  std::printf("\nFEAM prediction at %s: %s\n", fir->name.c_str(),
              result.value().prediction.ready ? "READY" : "NOT READY");
  for (const auto& det : result.value().prediction.determinants) {
    std::printf("  %-28s %-12s %s\n", determinant_name(det.kind),
                !det.evaluated ? "(skipped)"
                : det.compatible ? "compatible"
                                 : "INCOMPATIBLE",
                det.detail.c_str());
  }
  if (result.value().prediction.ready) {
    std::printf("\nmatching configuration:\n%s",
                result.value().prediction.configuration_script.c_str());
  }
  return result.value().prediction.ready ? 0 : 1;
}
