// Misconfigured-stack scenario (paper III.B): India advertises an
// MVAPICH2/GNU combination via Environment Modules, but the stack is
// broken — no program can execute under it. A scientist matching by
// advertisement wastes queue time; FEAM's usability test (compile and run
// "hello world" natively under each candidate stack) detects the problem
// and steers the prediction to the working Intel combination.
#include <cstdio>

#include "feam/phases.hpp"
#include "toolchain/launcher.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

int main() {
  using namespace feam;

  auto fir = toolchain::make_site("fir");
  auto india = toolchain::make_site("india");

  // A C application built with MVAPICH2 + GNU at Fir.
  toolchain::ProgramSource app;
  app.name = "lattice_qcd";
  app.language = toolchain::Language::kC;
  app.libc_features = {"base", "stdio", "math"};
  const auto* stack = fir->find_stack(site::MpiImpl::kMvapich2,
                                      site::CompilerFamily::kGnu);
  const auto compiled = toolchain::compile_mpi_program(
      *fir, app, *stack, "/home/user/lattice_qcd");
  if (!compiled.ok()) {
    std::printf("compile failed: %s\n", compiled.error().c_str());
    return 1;
  }
  india->vfs.write_file("/home/user/lattice_qcd",
                        *fir->vfs.read(compiled.value()));

  // What the module system advertises at India:
  std::printf("module avail at india:\n");
  for (const auto& module : india->available_modules()) {
    std::printf("  %s\n", module.c_str());
  }

  // The scientist picks the obvious match — same implementation, same
  // compiler — and loses a batch job to the misconfiguration.
  std::printf("\nnaive: module load mvapich2/1.7a2-gnu && mpiexec ...\n");
  india->load_module("mvapich2/1.7a2-gnu");
  const auto naive =
      toolchain::mpiexec_with_retries(*india, "/home/user/lattice_qcd", 8);
  std::printf("  -> %s (%s)\n", toolchain::run_status_name(naive.status),
              naive.detail.c_str());
  india->unload_all_modules();

  // FEAM's target phase tests each candidate stack with a native hello
  // world before trusting it.
  const auto result = run_target_phase(*india, "/home/user/lattice_qcd");
  if (!result.ok()) {
    std::printf("target phase failed: %s\n", result.error().c_str());
    return 1;
  }
  const Prediction& p = result.value().prediction;
  std::printf("\nFEAM evaluation trace:\n");
  for (const auto& line : p.log) std::printf("  %s\n", line.c_str());
  std::printf("prediction: %s, selected stack: %s\n",
              p.ready ? "READY" : "NOT READY",
              p.selected_stack_id ? p.selected_stack_id->c_str() : "(none)");
  if (!p.ready) return 1;

  // Follow the configuration: the job now lands on the working stack.
  const auto extra = Tec::apply_configuration(*india, p);
  const auto run =
      toolchain::mpiexec_with_retries(*india, "/home/user/lattice_qcd", 8, extra);
  std::printf("execution under FEAM's configuration: %s\n",
              toolchain::run_status_name(run.status));
  return run.success() ? 0 : 1;
}
