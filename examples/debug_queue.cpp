// Batch-queue scenario (paper Section VI.C): "both FEAM's source and
// target phases always took less than five minutes to complete. This
// makes FEAM ideal for submission via a debug queue."
//
// The user provides the only site knowledge FEAM requires — serial and
// parallel submission scripts (paper Section V) — and the migrated
// application, once predicted ready, is launched through the site's real
// resource manager dialect with FEAM's generated configuration inlined
// into the job body.
#include <cstdio>

#include "feam/phases.hpp"
#include "site/batch.hpp"
#include "support/strings.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/shell.hpp"
#include "toolchain/testbed.hpp"

int main() {
  using namespace feam;

  auto home = toolchain::make_site("ranger");    // SGE site
  auto target = toolchain::make_site("india");   // PBS site

  // Build and migrate an MVAPICH2 binary (Ranger's 1.2 line — its
  // libmpich soname does not exist at India, so resolution is needed).
  toolchain::ProgramSource mg;
  mg.name = "mg.B.8";
  mg.language = toolchain::Language::kC;
  mg.libc_features = {"base", "stdio", "math"};
  const auto* stack = home->find_stack(site::MpiImpl::kMvapich2,
                                       site::CompilerFamily::kIntel);
  const auto compiled = toolchain::compile_mpi_program(
      *home, mg, *stack, "/home/user/apps/mg.B.8");
  if (!compiled.ok()) {
    std::printf("compile failed: %s\n", compiled.error().c_str());
    return 1;
  }
  home->load_module("mvapich2/1.2-intel");
  const auto source = run_source_phase(*home, compiled.value());
  if (!source.ok()) return 1;
  target->vfs.write_file("/home/user/mg.B.8",
                         *home->vfs.read(compiled.value()));

  // FEAM target phase.
  const auto result =
      run_target_phase(*target, "/home/user/mg.B.8", &source.value());
  if (!result.ok() || !result.value().prediction.ready) {
    std::printf("not ready — nothing to submit\n");
    return 1;
  }
  const Prediction& prediction = result.value().prediction;
  std::printf("FEAM predicts READY; resolved: %s\n\n",
              support::join(prediction.resolved_libraries, ", ").c_str());

  // Build the parallel submission job: the user's PBS template with FEAM's
  // configuration script inlined as the body.
  site::BatchScript job;
  job.kind = site::BatchKind::kPbs;  // India runs PBS
  job.job_name = "mg_B_8";
  job.queue = "debug";
  job.nodes = 2;
  job.tasks_per_node = 4;
  job.walltime_minutes = 5;
  for (const auto& line :
       support::split(prediction.configuration_script, '\n')) {
    const auto trimmed = support::trim(line);
    if (!trimmed.empty() && trimmed.front() != '#' &&
        !support::starts_with(trimmed, "mpiexec")) {
      job.commands.emplace_back(trimmed);
    }
  }
  job.commands.push_back("mpiexec -n " + std::to_string(job.total_tasks()) +
                         " /home/user/mg.B.8");

  std::printf("submitting to %s's %s queue:\n", target->name.c_str(),
              job.queue.c_str());
  for (const auto& line : support::split(job.render(), '\n')) {
    if (!line.empty()) std::printf("  | %s\n", line.c_str());
  }

  const auto submitted = toolchain::submit_batch_job(*target, job);
  std::printf("\njob %s queued (%ds simulated wait)\n",
              submitted.job_id.c_str(), submitted.queue_wait_seconds);
  std::printf("job outcome: %s%s%s\n",
              submitted.success() ? "success" : "FAILED",
              submitted.script.last_run.output.empty() ? "" : " — ",
              submitted.script.last_run.output.c_str());
  return submitted.success() ? 0 : 1;
}
