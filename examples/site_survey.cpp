// Community-code scenario (paper VI.B): a scientist downloads an
// application distributed only as a binary — there is no guaranteed
// execution environment to run a source phase in. FEAM's basic prediction
// (target phase only) surveys every accessible site and reports where the
// binary can run, with the reasons, so the scientist submits only where
// there is a real chance of success.
#include <cstdio>

#include "feam/survey.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

int main() {
  using namespace feam;

  // The "community code": built elsewhere (we synthesize it on a Forge
  // clone standing in for the publisher's build host), shipped as bytes.
  auto build_host = toolchain::make_site("forge");
  toolchain::ProgramSource code;
  code.name = "galaxy_sim-3.2";
  code.language = toolchain::Language::kFortran;
  code.libc_features = {"base", "stdio", "math", "atfuncs"};
  code.text_size = 900 * 1024;
  const auto* stack = build_host->find_stack(site::MpiImpl::kOpenMpi,
                                             site::CompilerFamily::kGnu);
  const auto compiled = toolchain::compile_mpi_program(
      *build_host, code, *stack, "/pub/galaxy_sim-3.2");
  if (!compiled.ok()) {
    std::printf("build failed: %s\n", compiled.error().c_str());
    return 1;
  }
  const auto binary = *build_host->vfs.read(compiled.value());
  std::printf("community binary: galaxy_sim-3.2 (%zu KiB, Open MPI + GNU "
              "Fortran, built on RHEL 6 / glibc 2.12)\n\n",
              binary.size() / 1024);

  // Survey the whole testbed (plus the ppc64 demo site) with the basic
  // prediction — no bundle, nothing resolvable, pure assessment.
  std::vector<std::unique_ptr<site::Site>> owned;
  std::vector<site::Site*> sites;
  auto names = toolchain::testbed_site_names();
  names.push_back("bluefire");
  for (const auto& name : names) {
    owned.push_back(toolchain::make_site(name));
    sites.push_back(owned.back().get());
  }
  const auto report = survey_sites(sites, "galaxy_sim-3.2", binary);
  std::printf("%s", report.render().c_str());
  std::printf("\n%zu of %zu sites predicted ready — submit there, skip the "
              "rest.\n",
              report.ready_count(), report.entries.size());
  std::printf("(With no guaranteed execution environment, missing libraries\n"
              "cannot be resolved; the paper notes this is exactly the\n"
              "community-codes-distributed-as-binaries situation.)\n");
  return 0;
}
