#!/usr/bin/env python3
"""Smoke check for the feam CLI's observability exports.

Runs the quickstart pipeline (compile -> source -> target) with --trace-out
and --metrics-out, then validates:
  * the trace file is valid Chrome trace_event JSON,
  * it contains the target-phase span and all four determinant spans,
  * the determinant spans nest (by time containment) inside the phase span,
  * span ids are unique across all thread buffers,
  * every parent_id link points at an existing same-thread span that
    time-contains the child (the linkage agrees with the nesting),
  * the metrics file is valid JSON with at least 8 distinct metric names.

Usage: check_trace.py /path/to/feam
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

DETERMINANT_SPANS = [
    "tec.determinant.isa",
    "tec.determinant.c_library",
    "tec.determinant.mpi_stack",
    "tec.determinant.shared_libraries",
]


def run(cmd):
    print("+", " ".join(str(c) for c in cmd))
    result = subprocess.run(cmd, capture_output=True, text=True, timeout=90)
    sys.stdout.write(result.stdout)
    sys.stderr.write(result.stderr)
    if result.returncode != 0:
        sys.exit(f"FAIL: {' '.join(str(c) for c in cmd)} -> {result.returncode}")
    return result


def load_trace(trace_file):
    """Reads and parses the trace, turning the classic failure modes —
    missing, empty, or truncated mid-write — into one-line diagnoses
    instead of a JSONDecodeError traceback."""
    try:
        text = trace_file.read_text()
    except FileNotFoundError:
        sys.exit(f"FAIL: trace file {trace_file} was never written "
                 f"(did the command run with --trace-out?)")
    if not text.strip():
        sys.exit(f"FAIL: trace file {trace_file} is empty — the exporter "
                 f"wrote no bytes (command likely crashed before finish())")
    try:
        trace = json.loads(text)
    except json.JSONDecodeError as err:
        tail = text[-80:].replace("\n", "\\n")
        sys.exit(f"FAIL: trace file {trace_file} is not valid JSON "
                 f"({err.msg} at line {err.lineno}, col {err.colno}; file ends "
                 f"with ...{tail!r}) — a truncated file usually means the "
                 f"writer was killed mid-export")
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        sys.exit(f"FAIL: trace file {trace_file} parses as JSON but has no "
                 f"traceEvents array — not a Chrome trace_event file")
    return trace


def main():
    if len(sys.argv) != 2:
        sys.exit(f"usage: {sys.argv[0]} /path/to/feam")
    feam = Path(sys.argv[1])
    if not feam.exists():
        sys.exit(f"FAIL: no such binary: {feam}")

    with tempfile.TemporaryDirectory(prefix="feam_trace_") as tmp:
        tmp = Path(tmp)
        binary = tmp / "cg.B"
        bundle = tmp / "cg.B.feambundle"
        trace_file = tmp / "trace.json"
        metrics_file = tmp / "metrics.json"

        run([feam, "compile", "--site", "india", "--stack", "openmpi/1.4-gnu",
             "--program", "cg.B", "--language", "fortran", "-o", binary])
        run([feam, "source", "--site", "india", "--stack", "openmpi/1.4-gnu",
             "--binary", binary, "-o", bundle])
        run([feam, "target", "--site", "fir", "--binary", binary,
             "--bundle", bundle, "--trace-out", trace_file,
             "--metrics-out", metrics_file])

        trace = load_trace(trace_file)
        spans = {}
        for event in trace["traceEvents"]:
            if event.get("ph") == "X":
                spans.setdefault(event["name"], []).append(event)
        if not spans:
            sys.exit("FAIL: trace has no complete ('X') span events")

        phase = spans.get("feam.target_phase")
        if not phase:
            sys.exit("FAIL: no feam.target_phase span in trace")
        phase = phase[0]
        phase_start = phase["ts"]
        phase_end = phase["ts"] + phase["dur"]

        for name in DETERMINANT_SPANS:
            if name not in spans:
                sys.exit(f"FAIL: no {name} span in trace")
            for span in spans[name]:
                start, end = span["ts"], span["ts"] + span["dur"]
                if not (phase_start <= start and end <= phase_end):
                    sys.exit(
                        f"FAIL: {name} span [{start}, {end}] not contained "
                        f"in feam.target_phase [{phase_start}, {phase_end}]")

        # Span ids must be unique across thread buffers, and every
        # parent_id must point at an existing span on the same thread
        # whose [ts, ts+dur] window contains the child's. ts/dur are
        # ns/1000.0 — division is monotonic, so containment survives the
        # unit conversion and needs no epsilon.
        events = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        by_id = {}
        for event in events:
            span_id = event.get("args", {}).get("span_id")
            if span_id is None:
                sys.exit(f"FAIL: span {event['name']!r} has no args.span_id")
            if span_id in by_id:
                sys.exit(f"FAIL: span id {span_id} appears twice "
                         f"({by_id[span_id]['name']!r} and {event['name']!r})")
            by_id[span_id] = event
        linked = 0
        for event in events:
            parent_id = event.get("args", {}).get("parent_id")
            if parent_id is None:
                continue
            parent = by_id.get(parent_id)
            if parent is None:
                sys.exit(f"FAIL: span {event['name']!r} links to parent id "
                         f"{parent_id}, which is not in the trace")
            if parent.get("tid") != event.get("tid"):
                sys.exit(f"FAIL: span {event['name']!r} (tid {event.get('tid')}) "
                         f"links to parent {parent['name']!r} on tid "
                         f"{parent.get('tid')} — explicit parents are "
                         f"same-thread only")
            if not (parent["ts"] <= event["ts"] and
                    event["ts"] + event["dur"] <= parent["ts"] + parent["dur"]):
                sys.exit(f"FAIL: span {event['name']!r} "
                         f"[{event['ts']}, {event['ts'] + event['dur']}] is "
                         f"not time-contained in its linked parent "
                         f"{parent['name']!r} "
                         f"[{parent['ts']}, {parent['ts'] + parent['dur']}]")
            linked += 1
        if linked == 0:
            sys.exit("FAIL: no span carries a parent_id link")

        metrics = json.loads(metrics_file.read_text())
        names = list(metrics["counters"]) + list(metrics["histograms"])
        if len(names) < 8:
            sys.exit(f"FAIL: expected >= 8 metrics, got {len(names)}: {names}")

        print(f"OK: {sum(len(s) for s in spans.values())} spans "
              f"({len(spans)} distinct, ids unique, {linked} parent links "
              f"consistent with nesting), {len(DETERMINANT_SPANS)} determinant "
              f"spans nested in feam.target_phase, {len(names)} metrics")


if __name__ == "__main__":
    main()
