#!/usr/bin/env python3
"""Smoke check for the feam CLI's observability exports.

Runs the quickstart pipeline (compile -> source -> target) with --trace-out
and --metrics-out, then validates:
  * the trace file is valid Chrome trace_event JSON,
  * it contains the target-phase span and all four determinant spans,
  * the determinant spans nest (by time containment) inside the phase span,
  * the metrics file is valid JSON with at least 8 distinct metric names.

Usage: check_trace.py /path/to/feam
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

DETERMINANT_SPANS = [
    "tec.determinant.isa",
    "tec.determinant.c_library",
    "tec.determinant.mpi_stack",
    "tec.determinant.shared_libraries",
]


def run(cmd):
    print("+", " ".join(str(c) for c in cmd))
    result = subprocess.run(cmd, capture_output=True, text=True, timeout=90)
    sys.stdout.write(result.stdout)
    sys.stderr.write(result.stderr)
    if result.returncode != 0:
        sys.exit(f"FAIL: {' '.join(str(c) for c in cmd)} -> {result.returncode}")
    return result


def main():
    if len(sys.argv) != 2:
        sys.exit(f"usage: {sys.argv[0]} /path/to/feam")
    feam = Path(sys.argv[1])
    if not feam.exists():
        sys.exit(f"FAIL: no such binary: {feam}")

    with tempfile.TemporaryDirectory(prefix="feam_trace_") as tmp:
        tmp = Path(tmp)
        binary = tmp / "cg.B"
        bundle = tmp / "cg.B.feambundle"
        trace_file = tmp / "trace.json"
        metrics_file = tmp / "metrics.json"

        run([feam, "compile", "--site", "india", "--stack", "openmpi/1.4-gnu",
             "--program", "cg.B", "--language", "fortran", "-o", binary])
        run([feam, "source", "--site", "india", "--stack", "openmpi/1.4-gnu",
             "--binary", binary, "-o", bundle])
        run([feam, "target", "--site", "fir", "--binary", binary,
             "--bundle", bundle, "--trace-out", trace_file,
             "--metrics-out", metrics_file])

        trace = json.loads(trace_file.read_text())
        spans = {}
        for event in trace["traceEvents"]:
            if event.get("ph") == "X":
                spans.setdefault(event["name"], []).append(event)
        if not spans:
            sys.exit("FAIL: trace has no complete ('X') span events")

        phase = spans.get("feam.target_phase")
        if not phase:
            sys.exit("FAIL: no feam.target_phase span in trace")
        phase = phase[0]
        phase_start = phase["ts"]
        phase_end = phase["ts"] + phase["dur"]

        for name in DETERMINANT_SPANS:
            if name not in spans:
                sys.exit(f"FAIL: no {name} span in trace")
            for span in spans[name]:
                start, end = span["ts"], span["ts"] + span["dur"]
                if not (phase_start <= start and end <= phase_end):
                    sys.exit(
                        f"FAIL: {name} span [{start}, {end}] not contained "
                        f"in feam.target_phase [{phase_start}, {phase_end}]")

        metrics = json.loads(metrics_file.read_text())
        names = list(metrics["counters"]) + list(metrics["histograms"])
        if len(names) < 8:
            sys.exit(f"FAIL: expected >= 8 metrics, got {len(names)}: {names}")

        print(f"OK: {sum(len(s) for s in spans.values())} spans "
              f"({len(spans)} distinct), {len(DETERMINANT_SPANS)} determinant "
              f"spans nested in feam.target_phase, {len(names)} metrics")


if __name__ == "__main__":
    main()
