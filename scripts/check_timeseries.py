#!/usr/bin/env python3
"""End-to-end check of the live-telemetry stream and `feam top`.

Runs a pooled `feam survey` with --timeseries-out and validates the
feam.timeseries/1 contract:

  * the stream opens with a meta line (schema, interval, source) and every
    subsequent line is a well-formed sample with a strictly increasing seq,
  * exactly one final sample exists and it is the last line,
  * per-series telescoping: previous total + delta == total on every line,
    and the sum of all deltas equals the final sample's totals exactly,
  * the final counter totals agree with --metrics-out's registry snapshot,
  * gauge samples are well-formed (v/p non-negative ints, peak >= value,
    peaks never regress), the final sample reports a nonzero
    process.rss_bytes, and --track-alloc attributes allocation bytes,
  * `feam top --once` emits a feam.top/1 JSON document with windowed phase
    percentiles, per-cache hit rates, a memory section (RSS + cache
    footprints), and no consistency issues,
  * follow mode tails a file while another feam process is still writing
    it and exits 0 on the final sample,
  * a non-timeseries input produces a diagnostic naming --timeseries-out.

Usage: check_timeseries.py /path/to/feam
"""

import json
import subprocess
import sys
import tempfile
import threading
from pathlib import Path

SCHEMA = "feam.timeseries/1"


def run(cmd, ok_codes=(0,)):
    result = subprocess.run(
        [str(c) for c in cmd], capture_output=True, text=True, timeout=120)
    if result.returncode not in ok_codes:
        sys.stdout.write(result.stdout)
        sys.stderr.write(result.stderr)
        sys.exit(f"FAIL: {' '.join(str(c) for c in cmd)} -> "
                 f"{result.returncode} (wanted {ok_codes})")
    return result


def parse_stream(path):
    """Parses and structurally validates one feam.timeseries/1 file;
    returns (meta, samples)."""
    text = path.read_text()
    if not text.strip():
        sys.exit(f"FAIL: {path} is empty — sampler wrote no lines")
    lines = [l for l in text.splitlines() if l.strip()]
    try:
        parsed = [json.loads(l) for l in lines]
    except json.JSONDecodeError as err:
        sys.exit(f"FAIL: {path} line {err.lineno} is not JSON — line "
                 f"writes are supposed to be atomic: {err.msg}")

    meta = parsed[0]
    if meta.get("schema") != SCHEMA or meta.get("type") != "meta":
        sys.exit(f"FAIL: first line is not a {SCHEMA} meta line: {meta}")
    if not isinstance(meta.get("interval_ms"), int) or meta["interval_ms"] < 1:
        sys.exit(f"FAIL: meta line carries no interval_ms: {meta}")

    samples = []
    for i, obj in enumerate(parsed[1:]):
        if obj.get("schema") != SCHEMA or obj.get("type") != "sample":
            sys.exit(f"FAIL: line {i + 2} is not a {SCHEMA} sample: {obj}")
        if obj.get("seq") != len(samples):
            sys.exit(f"FAIL: sample seq {obj.get('seq')} out of order "
                     f"(expected {len(samples)})")
        samples.append(obj)
    if not samples:
        sys.exit(f"FAIL: {path} has a meta line but no samples")

    finals = [s["seq"] for s in samples if s.get("final")]
    if finals != [samples[-1]["seq"]]:
        sys.exit(f"FAIL: expected exactly one final sample, last in the "
                 f"stream; finals at {finals} of {len(samples)}")
    return meta, samples


def check_telescoping(samples):
    """Every line's total must equal the running sum of deltas, and the
    final totals must equal the overall delta sums exactly."""
    running = {}
    for sample in samples:
        for name, entry in sample.get("counters", {}).items():
            expect = running.get(name, 0) + entry["d"]
            if entry["t"] != expect:
                sys.exit(f"FAIL: counter {name} seq {sample['seq']}: "
                         f"total {entry['t']} != prior+delta {expect}")
            running[name] = entry["t"]
        for name, entry in sample.get("histograms", {}).items():
            key = "hist:" + name
            expect = running.get(key, 0) + entry["d"]["count"]
            if entry["t"] != expect:
                sys.exit(f"FAIL: histogram {name} seq {sample['seq']}: "
                         f"count {entry['t']} != prior+delta {expect}")
            running[key] = entry["t"]
    final = samples[-1]
    for name, entry in final.get("counters", {}).items():
        if entry["t"] != running.get(name):
            sys.exit(f"FAIL: final total of {name} ({entry['t']}) does not "
                     f"telescope from its deltas ({running.get(name)})")
    return {n: t for n, t in running.items() if not n.startswith("hist:")}


def check_gauges(samples):
    """Gauge entries carry non-negative integer v (value) / p (peak) with
    p >= v, peaks never regress across the stream, and the final sample
    (which reports every gauge) includes a nonzero process RSS."""
    peaks = {}
    seen = set()
    for sample in samples:
        for name, entry in sample.get("gauges", {}).items():
            v, p = entry.get("v"), entry.get("p")
            if not isinstance(v, int) or not isinstance(p, int) \
                    or v < 0 or p < v:
                sys.exit(f"FAIL: gauge {name} seq {sample['seq']} "
                         f"malformed (want ints with p >= v >= 0): {entry}")
            if p < peaks.get(name, 0):
                sys.exit(f"FAIL: gauge {name} seq {sample['seq']}: peak "
                         f"{p} regressed below {peaks[name]}")
            peaks[name] = p
            seen.add(name)
    final = samples[-1].get("gauges", {})
    if "process.rss_bytes" not in final:
        sys.exit("FAIL: final sample reports no process.rss_bytes gauge")
    if final["process.rss_bytes"]["v"] <= 0:
        sys.exit("FAIL: process.rss_bytes is zero — /proc probe broken?")
    return sorted(seen)


def check_against_registry(totals, metrics_file):
    """The final sample and the --metrics-out registry snapshot were both
    taken after all workers quiesced, so shared counters match exactly."""
    metrics = json.loads(metrics_file.read_text())
    compared = 0
    for name, value in metrics.get("counters", {}).items():
        if name not in totals:
            continue
        if totals[name] != value:
            sys.exit(f"FAIL: counter {name}: timeseries final total "
                     f"{totals[name]} != registry value {value}")
        compared += 1
    if compared < 4:
        sys.exit(f"FAIL: only {compared} counters shared between the stream "
                 f"and metrics.json — name encoding drifted?")
    return compared


def check_top_once(feam, stream):
    result = run([feam, "top", "--in", stream, "--once"])
    try:
        top = json.loads(result.stdout)
    except json.JSONDecodeError:
        sys.exit(f"FAIL: `feam top --once` stdout is not one JSON "
                 f"document:\n{result.stdout}")
    if top.get("schema") != "feam.top/1":
        sys.exit(f"FAIL: top --once schema is {top.get('schema')!r}")
    if not top.get("final"):
        sys.exit("FAIL: top --once on a completed stream reports final=false")
    if top.get("consistency_issues"):
        sys.exit(f"FAIL: top found consistency issues: "
                 f"{top['consistency_issues']}")
    phases = top.get("phases", {})
    if not phases:
        sys.exit(f"FAIL: top --once reports no phase histograms:\n{top}")
    for name, row in phases.items():
        if row["p50"] > row["p99"]:
            sys.exit(f"FAIL: phase {name}: p50 {row['p50']} > p99 "
                     f"{row['p99']}")
    caches = top.get("caches", {})
    for name, row in caches.items():
        if not (0.0 <= row["rate"] <= 1.0):
            sys.exit(f"FAIL: cache {name} hit rate {row['rate']} out of "
                     f"[0, 1]")
    memory = top.get("memory")
    if not memory:
        sys.exit(f"FAIL: top --once on a gauge-carrying stream has no "
                 f"memory section:\n{top}")
    if memory.get("rss_bytes", 0) <= 0:
        sys.exit(f"FAIL: top memory section reports no RSS: {memory}")
    for label, row in memory.get("caches", {}).items():
        if row["peak"] < row["bytes"]:
            sys.exit(f"FAIL: cache {label} footprint peak {row['peak']} < "
                     f"current {row['bytes']}")
    return len(phases), sorted(caches)


def check_follow_mode(feam, binary, bundle, tmp):
    """`feam top` (no --once) tails a stream that another feam process is
    concurrently writing, and exits 0 once the final sample lands."""
    stream = tmp / "live.jsonl"
    top = subprocess.Popen(
        [str(feam), "top", "--in", str(stream), "--refresh", "25",
         "--idle-timeout", "60000"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    writer_result = {}

    def write_stream():
        writer_result["proc"] = subprocess.run(
            [str(feam), "survey", "--binary", str(binary), "--bundle",
             str(bundle), "--jobs", "4", "--timeseries-out", str(stream),
             "--timeseries-interval", "5"],
            capture_output=True, text=True, timeout=120)

    writer = threading.Thread(target=write_stream)
    writer.start()
    try:
        out, err = top.communicate(timeout=90)
    except subprocess.TimeoutExpired:
        top.kill()
        sys.exit("FAIL: follow-mode `feam top` did not exit after the "
                 "stream's final sample")
    writer.join()
    if writer_result["proc"].returncode != 0:
        sys.exit(f"FAIL: concurrent survey failed: "
                 f"{writer_result['proc'].stderr}")
    if top.returncode != 0:
        sys.exit(f"FAIL: follow-mode top -> {top.returncode}:\n{out}\n{err}")
    if "stream finished" not in out:
        sys.exit(f"FAIL: follow-mode top exited 0 without the clean-end "
                 f"banner:\n{out[-500:]}")


def main():
    if len(sys.argv) != 2:
        sys.exit(f"usage: {sys.argv[0]} /path/to/feam")
    feam = Path(sys.argv[1])
    if not feam.exists():
        sys.exit(f"FAIL: no such binary: {feam}")

    with tempfile.TemporaryDirectory(prefix="feam_timeseries_") as tmp:
        tmp = Path(tmp)
        binary = tmp / "cg.B"
        bundle = tmp / "cg.B.feambundle"
        stream = tmp / "survey.jsonl"
        metrics_file = tmp / "metrics.json"

        run([feam, "compile", "--site", "india", "--stack", "openmpi/1.4-gnu",
             "--program", "cg.B", "--language", "fortran", "-o", binary])
        run([feam, "source", "--site", "india", "--stack", "openmpi/1.4-gnu",
             "--binary", binary, "-o", bundle])
        # A pooled survey exercises the concurrent-writer paths while the
        # sampler thread snapshots; a short interval yields enough samples
        # for the windowed views.
        run([feam, "survey", "--binary", binary, "--bundle", bundle,
             "--jobs", "4", "--timeseries-out", stream,
             "--timeseries-interval", "5", "--metrics-out", metrics_file,
             "--track-alloc"])

        meta, samples = parse_stream(stream)
        totals = check_telescoping(samples)
        gauges = check_gauges(samples)
        if totals.get("mem.alloc_bytes", 0) <= 0:
            sys.exit("FAIL: --track-alloc run attributed no allocation "
                     "bytes (mem.alloc_bytes total is zero)")
        compared = check_against_registry(totals, metrics_file)
        phases, caches = check_top_once(feam, stream)
        check_follow_mode(feam, binary, bundle, tmp)

        # Not-a-timeseries input -> diagnostic pointing at --timeseries-out.
        bogus = tmp / "bogus.jsonl"
        bogus.write_text('{"schema": "something.else/1"}\n')
        res = run([feam, "top", "--in", bogus, "--once"], ok_codes=(1,))
        if "--timeseries-out" not in res.stderr:
            sys.exit(f"FAIL: unhelpful non-timeseries diagnostic:\n"
                     f"{res.stderr}")

        print(f"OK: {len(samples)} samples at {meta['interval_ms']}ms from "
              f"{meta.get('source', '?')!r}; deltas telescope to final "
              f"totals, {compared} counters match the registry snapshot, "
              f"{len(gauges)} gauges well-formed (incl. RSS), "
              f"top --once saw {phases} phases + caches {caches} + a "
              f"memory panel, and follow mode tailed a live writer to a "
              f"clean exit")


if __name__ == "__main__":
    main()
