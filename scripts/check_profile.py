#!/usr/bin/env python3
"""End-to-end check of the `feam profile` post-processor.

Produces one Chrome trace (via a parallel `feam survey`) and one run
record (via `feam target`), then validates the profiling contract:

  * `feam profile` accepts both input formats (trace JSON and
    feam.run_record/1) and exits 0,
  * determinism: running it twice on the same input yields byte-identical
    stdout, folded stacks, and flamegraph SVG,
  * attribution: the profile table's per-span self times sum to the
    per-thread busy times (every nanosecond lands in exactly one span's
    self bucket; only per-row integer-microsecond truncation separates
    the two sums),
  * the folded output is flamegraph.pl-shaped (`a;b;c <int>` lines) and
    the SVG is a self-contained <svg> document,
  * a file that is neither format fails with a diagnostic.

Usage: check_profile.py /path/to/feam
"""

import re
import subprocess
import sys
import tempfile
from pathlib import Path


def run(cmd, ok_codes=(0,)):
    result = subprocess.run(
        [str(c) for c in cmd], capture_output=True, text=True, timeout=120)
    if result.returncode not in ok_codes:
        sys.stdout.write(result.stdout)
        sys.stderr.write(result.stderr)
        sys.exit(f"FAIL: {' '.join(str(c) for c in cmd)} -> "
                 f"{result.returncode} (wanted {ok_codes})")
    return result


def table_column_sum(stdout, table_marker, column):
    """Sums an integer column of the profile's ASCII table after the
    given section marker line."""
    lines = stdout.splitlines()
    try:
        start = next(i for i, l in enumerate(lines)
                     if l.startswith(table_marker))
    except StopIteration:
        sys.exit(f"FAIL: no {table_marker!r} section in profile output:\n"
                 f"{stdout}")
    header = None
    total = 0
    for line in lines[start:]:
        if not line.startswith("|"):
            if header is not None and line.startswith("+"):
                continue
            if header is not None and not line.strip():
                break
            continue
        cells = [c.strip() for c in line.strip("|").split("|")]
        if header is None:
            header = cells
            if column not in header:
                sys.exit(f"FAIL: no {column!r} column in {header}")
            continue
        total += int(cells[header.index(column)])
    return total


def profile_once(feam, source, tmp, tag):
    folded = tmp / f"{tag}.folded"
    svg = tmp / f"{tag}.svg"
    result = run([feam, "profile", "--in", source,
                  "--folded", folded, "--svg", svg])
    return result.stdout, folded.read_bytes(), svg.read_bytes()


def check_one_input(feam, source, tmp, tag):
    out1, folded1, svg1 = profile_once(feam, source, tmp, f"{tag}_1")
    out2, folded2, svg2 = profile_once(feam, source, tmp, f"{tag}_2")
    if out1 != out2 or folded1 != folded2 or svg1 != svg2:
        sys.exit(f"FAIL: `feam profile --in {source.name}` is not "
                 f"deterministic across two runs")

    if not out1.startswith("profile: "):
        sys.exit(f"FAIL: profile output missing summary line:\n{out1}")
    self_sum = table_column_sum(out1, "profile:", "self us")
    busy_sum = table_column_sum(out1, "threads:", "busy us")
    rows = out1.count("|") // 2  # generous per-row truncation allowance
    if abs(self_sum - busy_sum) > rows:
        sys.exit(f"FAIL: {tag}: span self-time sum {self_sum}us does not "
                 f"match thread busy sum {busy_sum}us (tolerance {rows}us)")

    folded_text = folded1.decode()
    if not folded_text:
        sys.exit(f"FAIL: {tag}: folded output is empty")
    for line in folded_text.splitlines():
        if not re.fullmatch(r"[^;]+(;[^;]+)* \d+", line):
            sys.exit(f"FAIL: {tag}: bad folded line {line!r}")
    svg_text = svg1.decode()
    if not svg_text.startswith("<svg") or not svg_text.rstrip().endswith(
            "</svg>"):
        sys.exit(f"FAIL: {tag}: --svg did not produce an <svg> document")
    print(f"{tag}: deterministic, self {self_sum}us == busy {busy_sum}us "
          f"(±{rows}us), {len(folded_text.splitlines())} folded stacks")


def main():
    if len(sys.argv) != 2:
        sys.exit(f"usage: {sys.argv[0]} /path/to/feam")
    feam = Path(sys.argv[1])
    if not feam.exists():
        sys.exit(f"FAIL: no such binary: {feam}")

    with tempfile.TemporaryDirectory(prefix="feam_profile_") as tmp:
        tmp = Path(tmp)
        binary = tmp / "cg.B"
        bundle = tmp / "cg.B.feambundle"
        trace = tmp / "survey_trace.json"
        record = tmp / "target_record.json"

        run([feam, "compile", "--site", "india", "--stack", "openmpi/1.4-gnu",
             "--program", "cg.B", "--language", "fortran", "-o", binary])
        run([feam, "source", "--site", "india", "--stack", "openmpi/1.4-gnu",
             "--binary", binary, "-o", bundle])
        # A pooled survey exercises the multi-thread paths: spans from
        # every worker plus the pool queue-wait histograms.
        run([feam, "survey", "--binary", binary, "--bundle", bundle,
             "--jobs", "4", "--trace-out", trace])
        run([feam, "target", "--site", "fir", "--binary", binary,
             "--bundle", bundle, "--run-record-out", record],
            ok_codes=(0, 2))

        check_one_input(feam, trace, tmp, "trace")
        check_one_input(feam, record, tmp, "run_record")

        # Neither format -> a diagnostic naming both accepted ones.
        bogus = tmp / "bogus.json"
        bogus.write_text('{"schema": "something.else/1"}')
        res = run([feam, "profile", "--in", bogus], ok_codes=(1,))
        if "feam.run_record/1" not in res.stderr or \
                "--trace-out" not in res.stderr:
            sys.exit(f"FAIL: format diagnostic unhelpful:\n{res.stderr}")

        print("OK: feam profile is byte-deterministic on both input "
              "formats, self-time telescopes to thread busy time, and "
              "rejects unknown formats")


if __name__ == "__main__":
    main()
