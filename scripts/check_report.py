#!/usr/bin/env python3
"""Matrix smoke check for the telemetry aggregation layer.

Drives the full 14-workload x 5-site migration matrix through the feam
CLI with --run-record-out, then:
  * schema-validates every feam.run_record/1 document (site pair,
    determinant verdicts, span-tree invariants, non-negative durations),
  * cross-checks each record's readiness against the CLI's exit code,
  * runs `feam report` over the record directory with the checked-in
    baseline as a regression gate (must pass) and validates the readiness
    matrix, the bench record, and the HTML dashboard,
  * perturbs the baseline and confirms the gate then fails non-zero,
  * confirms `feam report` on an empty or missing records directory
    exits non-zero with a diagnostic naming the directory,
  * drives `feam fleet` at full scale (500 sites x 100 workloads, drift
    on) and checks the rendered matrix dimensions cell-for-cell against
    the feam.fleet_manifest/1 document, then time-bounds the `feam
    report` aggregation over the 50000-record stream so a quadratic
    regression in ingestion or rendering fails loudly instead of
    hanging CI,
  * schema-validates the feam.provenance/1 section of every record (the
    matrix records and all 50000 fleet records): cardinality and detail
    bounds, stamp format, sorted deduplicated evidence — and bounds each
    serialized fleet record's size so evidence bloat fails loudly.

Usage: check_report.py /path/to/feam [--write-baseline FILE]
                                     [--keep-bench FILE]

With --write-baseline, the measured metrics are written as a fresh
feam.report_baseline/1 document (exact pins for deterministic counts,
generous ceilings for wall-clock latencies) and the gate steps are
skipped — used to regenerate bench/report_baseline.json. With
--keep-bench, the gate run's feam.bench/1 record is copied to FILE —
used to refresh the checked-in BENCH_2.json. --keep-html FILE likewise
keeps the generated dashboard (CI uploads both as artifacts).
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BASELINE = REPO / "bench" / "report_baseline.json"

SOURCE_SITE = "india"
SOURCE_STACK = "openmpi/1.4-gnu"
TARGET_SITES = ["ranger", "forge", "blacklight", "india", "fir"]

# The paper's test set: NPB class B plus SPEC MPI2007 (Table II).
WORKLOADS = [
    ("is.B", "c"),
    ("ep.B", "fortran"),
    ("cg.B", "fortran"),
    ("mg.B", "fortran"),
    ("bt.B", "fortran"),
    ("sp.B", "fortran"),
    ("lu.B", "fortran"),
    ("104.milc", "c"),
    ("107.leslie3d", "fortran"),
    ("115.fds4", "fortran"),
    ("122.tachyon", "c"),
    ("126.lammps", "c++"),
    ("127.GAPgeofem", "fortran"),
    ("129.tera_tf", "fortran"),
]

DETERMINANT_KEYS = ["isa", "c_library", "mpi_stack", "shared_libraries"]

# Provenance bounds mirrored from obs::EvidenceSet (provenance.hpp).
PROV_MAX_ITEMS = 128
PROV_MAX_DETAIL = 160
# Serialized ceiling for one fleet record, evidence included. Records
# measure ~5 KiB with ~17 evidence items; 128 items at ~200 bytes each
# stays far below this, so a breach means runaway evidence, not noise.
MAX_RECORD_BYTES = 64 * 1024


def validate_provenance(path, record):
    """Schema-validates one record's feam.provenance/1 section."""
    def need(cond, why):
        if not cond:
            sys.exit(f"FAIL: {path}: provenance: {why}")

    prov = record.get("provenance")
    need(isinstance(prov, dict), "section missing or not an object")
    need(prov.get("schema") == "feam.provenance/1",
         f"bad schema {prov.get('schema')!r}")
    need(prov.get("dropped", -1) >= 0, "dropped missing or negative")
    evidence = prov.get("evidence")
    need(isinstance(evidence, list) and evidence, "no evidence items")
    need(len(evidence) <= PROV_MAX_ITEMS,
         f"{len(evidence)} items exceed the {PROV_MAX_ITEMS} bound")
    keys = []
    for item in evidence:
        need(item.get("stage"), "item with empty stage")
        need(item.get("kind"), "item with empty kind")
        stamp = item.get("stamp", "")
        need(len(stamp) == 16 and all(c in "0123456789abcdef"
                                      for c in stamp),
             f"stamp {stamp!r} is not 16 lowercase hex digits")
        need(len(item.get("detail", "").encode()) <= PROV_MAX_DETAIL,
             f"detail for {item.get('subject')!r} exceeds "
             f"{PROV_MAX_DETAIL} bytes")
        keys.append((item.get("stage"), item.get("kind"),
                     item.get("site", ""), item.get("subject", ""),
                     item.get("detail", ""), stamp))
    need(keys == sorted(keys), "evidence is not in sorted order")
    need(len(set(keys)) == len(keys), "duplicate evidence items")


def run(cmd, ok_codes=(0,), timeout=120):
    result = subprocess.run(
        [str(c) for c in cmd], capture_output=True, text=True,
        timeout=timeout)
    if result.returncode not in ok_codes:
        sys.stdout.write(result.stdout)
        sys.stderr.write(result.stderr)
        sys.exit(f"FAIL: {' '.join(str(c) for c in cmd)} -> "
                 f"{result.returncode} (wanted {ok_codes})")
    return result


def validate_record(path, record, binary, site):
    def need(cond, why):
        if not cond:
            sys.exit(f"FAIL: {path}: {why}")

    need(record.get("schema") == "feam.run_record/1",
         f"bad schema {record.get('schema')!r}")
    need(record.get("command") == "target", "command is not 'target'")
    need(record.get("binary") == binary,
         f"binary {record.get('binary')!r} != {binary!r}")
    need(record.get("source_site") == SOURCE_SITE,
         f"source_site {record.get('source_site')!r} != {SOURCE_SITE!r}")
    need(record.get("target_site") == site,
         f"target_site {record.get('target_site')!r} != {site!r}")
    need(record.get("mode") == "extended", "mode is not 'extended'")
    need(record.get("has_prediction") is True, "has_prediction is not true")
    need(record.get("bundle_bytes", 0) > 0, "bundle_bytes is 0")

    dets = record.get("determinants", [])
    need([d.get("key") for d in dets] == DETERMINANT_KEYS,
         f"determinant keys {[d.get('key') for d in dets]}")
    ready = record["ready"]
    if ready:
        need(all(d["compatible"] for d in dets if d["evaluated"]),
             "ready but an evaluated determinant is incompatible")
    else:
        need(any(d["evaluated"] and not d["compatible"] for d in dets),
             "not ready but no evaluated determinant is incompatible")

    spans = record.get("spans", [])
    need(spans, "no spans")
    by_id = {}
    for span in spans:
        need(span.get("id", 0) > 0, f"span {span.get('name')!r} id 0")
        need(span.get("dur_ns", -1) >= 0 and span.get("start_ns", -1) >= 0,
             f"span {span.get('name')!r} has negative times")
        by_id[span["id"]] = span
    child_sum = {}
    for span in spans:
        parent = span.get("parent_id", 0)
        if parent:
            need(parent in by_id,
                 f"span {span['name']!r} has unknown parent {parent}")
            child_sum[parent] = child_sum.get(parent, 0) + span["dur_ns"]
    for parent_id, total in child_sum.items():
        need(by_id[parent_id]["dur_ns"] >= total,
             f"span {by_id[parent_id]['name']!r} shorter than its children")
    phase = [s for s in spans if s["name"] == "feam.target_phase"]
    need(len(phase) == 1, "expected exactly one feam.target_phase span")

    need(isinstance(record.get("counters"), dict) and record["counters"],
         "no counters")
    need(isinstance(record.get("histograms"), dict) and record["histograms"],
         "no histograms")
    validate_provenance(path, record)
    return ready


def parse_matrix(report_stdout):
    """Reads the ASCII readiness matrix into {(binary, site): cell}."""
    lines = [l for l in report_stdout.splitlines() if l.startswith("|")]
    if not lines:
        sys.exit("FAIL: no readiness matrix table in report output")
    header = [c.strip() for c in lines[0].strip("|").split("|")]
    sites = header[1:]
    cells = {}
    for line in lines[1:]:
        row = [c.strip() for c in line.strip("|").split("|")]
        if len(row) != len(header):
            continue
        for site, cell in zip(sites, row[1:]):
            cells[(row[0], site)] = cell
    return cells


def write_baseline(metrics, out_path):
    """Exact pins for deterministic counts; ceilings for wall-clock."""
    spec = {}
    for name, value in sorted(metrics.items()):
        if ".mean" in name or name.endswith(
                (".p50", ".p90", ".p99", ".max")):
            spec[name] = {"max": 5_000_000_000}  # 5s ceiling per phase stat
        else:
            spec[name] = {"value": value, "rel_tol": 0}
    doc = {"schema": "feam.report_baseline/1", "metrics": spec}
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    print(f"baseline written to {out_path} ({len(spec)} metrics)")


FLEET_SITES = 500
FLEET_WORKLOADS = 100
# Wall-clock ceiling for aggregating the 50000-record fleet stream.
# Measured ~1s on a single-core container; a quadratic regression in
# ingestion or matrix rendering blows well past this.
FLEET_REPORT_BUDGET_S = 60


def check_fleet(feam, tmp):
    """Full-scale fleet: matrix dims must match the manifest exactly."""
    import time

    fleet_dir = tmp / "fleet_records"
    fleet_dir.mkdir()
    manifest_path = tmp / "fleet_manifest.json"
    matrix_path = tmp / "fleet_matrix.txt"
    run([feam, "fleet", "--sites", FLEET_SITES,
         "--workloads", FLEET_WORKLOADS, "--drift", "0.25", "--seed", "42",
         "--jobs", "4", "--manifest-out", manifest_path,
         "--matrix-out", matrix_path,
         "--records-out", fleet_dir / "records.jsonl"], timeout=420)

    manifest = json.loads(manifest_path.read_text())
    if manifest.get("schema") != "feam.fleet_manifest/1":
        sys.exit(f"FAIL: fleet manifest schema {manifest.get('schema')!r}")
    if manifest.get("site_count") != FLEET_SITES or \
            len(manifest.get("sites", [])) != FLEET_SITES:
        sys.exit(f"FAIL: manifest sites {manifest.get('site_count')} / "
                 f"{len(manifest.get('sites', []))} != {FLEET_SITES}")
    if manifest.get("workload_count") != FLEET_WORKLOADS or \
            len(manifest.get("workloads", [])) != FLEET_WORKLOADS:
        sys.exit("FAIL: manifest workload count mismatch")

    # The rendered matrix must have exactly one column per manifest site
    # and one row per manifest workload — no dropped, duplicated, or
    # phantom axes at scale.
    cells = parse_matrix(matrix_path.read_text())
    matrix_sites = {site for _, site in cells}
    matrix_rows = {binary for binary, _ in cells}
    manifest_sites = {s["name"] for s in manifest["sites"]}
    manifest_rows = {w["name"] for w in manifest["workloads"]}
    if matrix_sites != manifest_sites:
        sys.exit(f"FAIL: matrix has {len(matrix_sites)} site columns, "
                 f"manifest has {len(manifest_sites)}; symmetric diff "
                 f"{sorted(matrix_sites ^ manifest_sites)[:5]}")
    if matrix_rows != manifest_rows:
        sys.exit(f"FAIL: matrix has {len(matrix_rows)} workload rows, "
                 f"manifest has {len(manifest_rows)}; symmetric diff "
                 f"{sorted(matrix_rows ^ manifest_rows)[:5]}")
    if len(cells) != FLEET_SITES * FLEET_WORKLOADS:
        sys.exit(f"FAIL: matrix has {len(cells)} cells, expected "
                 f"{FLEET_SITES * FLEET_WORKLOADS}")

    # Every fleet record carries schema-valid, bounded provenance.
    checked = 0
    with open(fleet_dir / "records.jsonl") as stream:
        for n, line in enumerate(stream, 1):
            if not line.strip():
                continue
            if len(line) > MAX_RECORD_BYTES:
                sys.exit(f"FAIL: fleet record on line {n} is {len(line)} "
                         f"bytes (bound {MAX_RECORD_BYTES})")
            validate_provenance(f"records.jsonl:{n}", json.loads(line))
            checked += 1
    if checked != FLEET_SITES * FLEET_WORKLOADS:
        sys.exit(f"FAIL: provenance-checked {checked} fleet records, "
                 f"expected {FLEET_SITES * FLEET_WORKLOADS}")
    print(f"fleet provenance: {checked} records schema-valid, each under "
          f"{MAX_RECORD_BYTES} bytes")

    # Aggregating the record stream must stay linear: bound both the
    # subprocess (hard kill) and the measured wall time (soft budget).
    started = time.monotonic()
    report = run([feam, "report", "--in", fleet_dir],
                 timeout=2 * FLEET_REPORT_BUDGET_S)
    elapsed = time.monotonic() - started
    expect = (f"{FLEET_SITES * FLEET_WORKLOADS} records, "
              f"{FLEET_SITES * FLEET_WORKLOADS} predictions")
    if expect not in report.stdout:
        sys.exit(f"FAIL: fleet report summary missing {expect!r}")
    if elapsed > FLEET_REPORT_BUDGET_S:
        sys.exit(f"FAIL: fleet report took {elapsed:.1f}s "
                 f"(budget {FLEET_REPORT_BUDGET_S}s)")
    report_cells = parse_matrix(report.stdout)
    if len(report_cells) != len(cells):
        sys.exit(f"FAIL: report re-renders {len(report_cells)} cells, "
                 f"fleet wrote {len(cells)}")
    print(f"fleet checked: {FLEET_SITES}x{FLEET_WORKLOADS} matrix matches "
          f"its manifest, report aggregated 50000 records in {elapsed:.1f}s")


def main():
    args = sys.argv[1:]
    baseline_out = None
    bench_keep = None
    if "--write-baseline" in args:
        i = args.index("--write-baseline")
        baseline_out = Path(args[i + 1])
        del args[i:i + 2]
    if "--keep-bench" in args:
        i = args.index("--keep-bench")
        bench_keep = Path(args[i + 1])
        del args[i:i + 2]
    html_keep = None
    if "--keep-html" in args:
        i = args.index("--keep-html")
        html_keep = Path(args[i + 1])
        del args[i:i + 2]
    if len(args) != 1:
        sys.exit(f"usage: {sys.argv[0]} /path/to/feam "
                 "[--write-baseline FILE]")
    feam = Path(args[0])
    if not feam.exists():
        sys.exit(f"FAIL: no such binary: {feam}")

    with tempfile.TemporaryDirectory(prefix="feam_report_") as tmp:
        tmp = Path(tmp)
        records_dir = tmp / "records"
        records_dir.mkdir()
        expected_ready = {}  # (binary, site) -> bool, from CLI exit codes

        for program, language in WORKLOADS:
            binary = tmp / program
            bundle = tmp / f"{program}.feambundle"
            run([feam, "compile", "--site", SOURCE_SITE, "--stack",
                 SOURCE_STACK, "--program", program, "--language", language,
                 "-o", binary])
            run([feam, "source", "--site", SOURCE_SITE, "--stack",
                 SOURCE_STACK, "--binary", binary, "-o", bundle])
            for site in TARGET_SITES:
                record_path = records_dir / f"{program}_{site}.json"
                cmd = [feam, "target", "--site", site, "--binary", binary,
                       "--bundle", bundle, "--run-record-out", record_path]
                if program == "cg.B" and site == "fir":
                    cmd += ["--events-out", records_dir / "cg_fir.jsonl"]
                result = run(cmd, ok_codes=(0, 2))
                record = json.loads(record_path.read_text())
                ready = validate_record(record_path, record, program, site)
                if ready != (result.returncode == 0):
                    sys.exit(f"FAIL: {record_path}: record says ready="
                             f"{ready} but exit code {result.returncode}")
                blocking = next(
                    (d["key"] for d in record["determinants"]
                     if d["evaluated"] and not d["compatible"]), None)
                expected_ready[(program, site)] = (ready, blocking)

        n_ready = sum(ready for ready, _ in expected_ready.values())
        n_total = len(expected_ready)
        print(f"matrix driven: {n_total} migrations, {n_ready} READY")
        if n_total != len(WORKLOADS) * len(TARGET_SITES):
            sys.exit("FAIL: incomplete matrix")

        # Aggregate without the gate first; the readiness matrix must agree
        # with the per-run verdicts.
        dashboard = tmp / "dash.html"
        bench_file = tmp / "BENCH_2.json"
        report = run([feam, "report", "--in", records_dir,
                      "--html", dashboard])
        out = report.stdout
        need_line = f"{n_total} records, {n_total} predictions: " \
                    f"{n_ready} READY, {n_total - n_ready} not ready"
        if need_line not in out:
            sys.exit(f"FAIL: report summary missing {need_line!r}:\n{out}")

        # The rendered readiness matrix must agree, cell by cell, with the
        # per-record TEC verdicts.
        matrix = parse_matrix(out)
        for (program, site), (ready, blocking) in expected_ready.items():
            cell = matrix.get((program, site))
            if cell is None:
                sys.exit(f"FAIL: matrix has no cell for {program} @ {site}")
            if ready and not cell.startswith("READY"):
                sys.exit(f"FAIL: {program} @ {site} is READY but matrix "
                         f"shows {cell!r}")
            if not ready and cell != blocking:
                sys.exit(f"FAIL: {program} @ {site} blocked by {blocking} "
                         f"but matrix shows {cell!r}")

        if "Event logs:" not in out:
            sys.exit("FAIL: report did not ingest the JSONL event log")

        html = dashboard.read_text()
        for marker in ["<!DOCTYPE html>", "FEAM readiness report", "cg.B"]:
            if marker not in html:
                sys.exit(f"FAIL: dashboard missing {marker!r}")
        for forbidden in ["http://", "https://", "src=", "@import"]:
            if forbidden in html:
                sys.exit(f"FAIL: dashboard is not self-contained: "
                         f"found {forbidden!r}")
        if html_keep is not None:
            html_keep.write_text(html)
            print(f"dashboard copied to {html_keep}")

        if baseline_out is not None:
            # Regenerate the baseline from this run's flat metrics (via a
            # bench record), then stop before the gate steps.
            run([feam, "report", "--in", records_dir,
                 "--bench-out", bench_file])
            metrics = json.loads(bench_file.read_text())["metrics"]
            write_baseline(metrics, baseline_out)
            return

        if not BASELINE.exists():
            sys.exit(f"FAIL: no baseline at {BASELINE}; regenerate with "
                     f"--write-baseline")

        # Gate against the checked-in baseline: must pass.
        gated = run([feam, "report", "--in", records_dir,
                     "--baseline", BASELINE, "--gate",
                     "--bench-out", bench_file, "--pr", "2"])
        if "GATE PASS" not in gated.stdout:
            sys.exit(f"FAIL: expected GATE PASS:\n{gated.stdout}")

        bench = json.loads(bench_file.read_text())
        if bench.get("schema") != "feam.bench/1":
            sys.exit(f"FAIL: bench schema {bench.get('schema')!r}")
        if bench.get("pr") != 2 or bench["gate"]["pass"] is not True:
            sys.exit(f"FAIL: bench gate block wrong: {bench.get('gate')}")
        if bench["metrics"].get("matrix.ready") != n_ready:
            sys.exit(f"FAIL: bench matrix.ready "
                     f"{bench['metrics'].get('matrix.ready')} != {n_ready}")
        if bench["metrics"].get("matrix.records") != n_total:
            sys.exit("FAIL: bench matrix.records mismatch")
        if bench_keep is not None:
            bench_keep.write_text(bench_file.read_text())
            print(f"bench record copied to {bench_keep}")

        # Perturb one phase-latency metric to an impossible ceiling: the
        # gate must now fail with a non-zero exit.
        perturbed = json.loads(BASELINE.read_text())
        perturbed["metrics"]["hist.phase.target_ns.p99"] = {"max": 1}
        perturbed_path = tmp / "perturbed_baseline.json"
        perturbed_path.write_text(json.dumps(perturbed))
        failed = run([feam, "report", "--in", records_dir,
                      "--baseline", perturbed_path, "--gate"],
                     ok_codes=(2,))
        if "GATE FAIL" not in failed.stdout:
            sys.exit(f"FAIL: expected GATE FAIL:\n{failed.stdout}")

        # An empty records directory is an error, not a vacuous success:
        # the diagnostic must name the directory and the --run-record-out
        # remedy. A missing directory likewise fails up front.
        empty_dir = tmp / "no_records_here"
        empty_dir.mkdir()
        res = run([feam, "report", "--in", empty_dir], ok_codes=(1,))
        if "no feam.run_record/1 records" not in res.stderr or \
                str(empty_dir) not in res.stderr or \
                "--run-record-out" not in res.stderr:
            sys.exit(f"FAIL: empty-dir diagnostic unhelpful:\n{res.stderr}")
        missing_dir = tmp / "never_created"
        res = run([feam, "report", "--in", missing_dir], ok_codes=(1,))
        if str(missing_dir) not in res.stderr or \
                "not a readable records directory" not in res.stderr:
            sys.exit(f"FAIL: missing-dir diagnostic unhelpful:\n{res.stderr}")

        check_fleet(feam, tmp)

        print(f"OK: {n_total} records validated, gate passes on the real "
              f"baseline, fails (exit 2) on the perturbed one, empty/"
              f"missing record dirs fail with clear diagnostics, and the "
              f"full-scale fleet matrix agrees with its manifest")


if __name__ == "__main__":
    main()
