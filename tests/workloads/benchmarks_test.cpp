#include "workloads/benchmarks.hpp"

#include <gtest/gtest.h>

#include <set>

#include "toolchain/glibc.hpp"
#include "toolchain/testbed.hpp"

namespace feam::workloads {
namespace {

using toolchain::Language;

TEST(Benchmarks, NpbSuiteContents) {
  const auto& suite = npb_suite();
  ASSERT_EQ(suite.size(), 7u);  // 4 kernels + 3 pseudo applications
  std::set<std::string> names;
  for (const auto& w : suite) {
    names.insert(w.program.name);
    EXPECT_EQ(w.suite, "NAS");
    EXPECT_TRUE(w.program.uses_mpi);
  }
  EXPECT_EQ(names, (std::set<std::string>{"is.B", "ep.B", "cg.B", "mg.B",
                                          "bt.B", "sp.B", "lu.B"}));
}

TEST(Benchmarks, NpbLanguages) {
  // IS is the only C code in the NPB MPI reference implementation.
  for (const auto& w : npb_suite()) {
    if (w.program.name == "is.B") {
      EXPECT_EQ(w.program.language, Language::kC);
    } else {
      EXPECT_EQ(w.program.language, Language::kFortran);
    }
  }
}

TEST(Benchmarks, SpecSuiteContents) {
  const auto& suite = spec_mpi2007_suite();
  ASSERT_EQ(suite.size(), 7u);
  std::set<std::string> names;
  for (const auto& w : suite) {
    names.insert(w.program.name);
    EXPECT_EQ(w.suite, "SPEC");
  }
  EXPECT_EQ(names, (std::set<std::string>{"104.milc", "107.leslie3d",
                                          "115.fds4", "122.tachyon",
                                          "126.lammps", "127.GAPgeofem",
                                          "129.tera_tf"}));
}

TEST(Benchmarks, LammpsIsCxx) {
  for (const auto& w : spec_mpi2007_suite()) {
    if (w.program.name == "126.lammps") {
      EXPECT_EQ(w.program.language, Language::kCxx);
    }
  }
}

TEST(Benchmarks, SpecBinariesAreLarger) {
  std::size_t max_nas = 0, min_spec = SIZE_MAX;
  for (const auto& w : npb_suite()) {
    max_nas = std::max(max_nas, static_cast<std::size_t>(w.program.text_size));
  }
  for (const auto& w : spec_mpi2007_suite()) {
    min_spec = std::min(min_spec, static_cast<std::size_t>(w.program.text_size));
  }
  EXPECT_GT(min_spec, max_nas);
}

TEST(Benchmarks, AllWorkloadsConcatenates) {
  EXPECT_EQ(all_workloads().size(), 14u);
}

TEST(Benchmarks, FeatureKeysAreReal) {
  for (const auto& w : all_workloads()) {
    for (const auto& key : w.program.libc_features) {
      EXPECT_TRUE(toolchain::find_libc_feature(key).has_value())
          << w.program.name << " uses unknown feature " << key;
    }
  }
}

TEST(Benchmarks, ViabilityIsDeterministic) {
  const auto s = toolchain::make_site("fir");
  for (const auto& w : all_workloads()) {
    for (const auto& stack : s->stacks) {
      EXPECT_EQ(combination_viable(w.program, w.suite, stack, "fir"),
                combination_viable(w.program, w.suite, stack, "fir"));
    }
  }
}

TEST(Benchmarks, PgiNeverBuildsLammps) {
  const auto s = toolchain::make_site("fir");
  for (const auto& w : spec_mpi2007_suite()) {
    if (w.program.name != "126.lammps") continue;
    for (const auto& stack : s->stacks) {
      if (stack.compiler == site::CompilerFamily::kPgi) {
        EXPECT_FALSE(combination_viable(w.program, w.suite, stack, "fir"));
      }
    }
  }
}

TEST(Benchmarks, NasAttritionExceedsSpec) {
  // The paper kept 110 of the possible NPB binaries but 147 SPEC ones —
  // NAS combinations failed to build more often.
  int nas_viable = 0, nas_total = 0, spec_viable = 0, spec_total = 0;
  for (const auto& site_name : toolchain::testbed_site_names()) {
    const auto s = toolchain::make_site(site_name);
    for (const auto& w : all_workloads()) {
      for (const auto& stack : s->stacks) {
        const bool viable =
            combination_viable(w.program, w.suite, stack, site_name);
        if (w.suite == "NAS") {
          ++nas_total;
          nas_viable += viable;
        } else {
          ++spec_total;
          spec_viable += viable;
        }
      }
    }
  }
  EXPECT_LT(static_cast<double>(nas_viable) / nas_total,
            static_cast<double>(spec_viable) / spec_total);
  // Within shooting distance of the paper's test set sizes.
  EXPECT_NEAR(nas_viable, 120, 15);
  EXPECT_NEAR(spec_viable, 152, 15);
}

TEST(NpbBuilds, ProcessCountConstraints) {
  // BT and SP require perfect squares.
  for (const char* kernel : {"bt", "sp"}) {
    EXPECT_TRUE(npb_nprocs_valid(kernel, 1)) << kernel;
    EXPECT_TRUE(npb_nprocs_valid(kernel, 4)) << kernel;
    EXPECT_TRUE(npb_nprocs_valid(kernel, 9)) << kernel;
    EXPECT_TRUE(npb_nprocs_valid(kernel, 16)) << kernel;
    EXPECT_FALSE(npb_nprocs_valid(kernel, 2)) << kernel;
    EXPECT_FALSE(npb_nprocs_valid(kernel, 8)) << kernel;
    EXPECT_FALSE(npb_nprocs_valid(kernel, 12)) << kernel;
  }
  // The others require powers of two.
  for (const char* kernel : {"cg", "mg", "is", "ep", "lu"}) {
    EXPECT_TRUE(npb_nprocs_valid(kernel, 1)) << kernel;
    EXPECT_TRUE(npb_nprocs_valid(kernel, 8)) << kernel;
    EXPECT_TRUE(npb_nprocs_valid(kernel, 64)) << kernel;
    EXPECT_FALSE(npb_nprocs_valid(kernel, 6)) << kernel;
    EXPECT_FALSE(npb_nprocs_valid(kernel, 9)) << kernel;
  }
  EXPECT_FALSE(npb_nprocs_valid("bt", 0));
  EXPECT_FALSE(npb_nprocs_valid("bt", -4));
  EXPECT_FALSE(npb_nprocs_valid("nosuch", 4));
}

TEST(NpbBuilds, ValidNprocsEnumeration) {
  EXPECT_EQ(npb_valid_nprocs("bt", 20), (std::vector<int>{1, 4, 9, 16}));
  EXPECT_EQ(npb_valid_nprocs("cg", 16), (std::vector<int>{1, 2, 4, 8, 16}));
  EXPECT_TRUE(npb_valid_nprocs("unknown", 16).empty());
}

TEST(NpbBuilds, BinaryNamingConvention) {
  const auto build = npb_binary("cg", 'B', 16);
  ASSERT_TRUE(build.has_value());
  EXPECT_EQ(build->name, "cg.B.16");
  EXPECT_EQ(build->language, Language::kFortran);
  const auto is_build = npb_binary("is", 'A', 8);
  ASSERT_TRUE(is_build.has_value());
  EXPECT_EQ(is_build->name, "is.A.8");
  EXPECT_EQ(is_build->language, Language::kC);
}

TEST(NpbBuilds, ClassScalesFootprint) {
  const auto small = npb_binary("lu", 'S', 4);
  const auto medium = npb_binary("lu", 'B', 4);
  const auto large = npb_binary("lu", 'C', 4);
  ASSERT_TRUE(small && medium && large);
  EXPECT_LT(small->text_size, medium->text_size);
  EXPECT_LT(medium->text_size, large->text_size);
}

TEST(NpbBuilds, RejectsInvalidRequests) {
  EXPECT_FALSE(npb_binary("cg", 'Z', 4).has_value());   // unknown class
  EXPECT_FALSE(npb_binary("bt", 'B', 8).has_value());   // not a square
  EXPECT_FALSE(npb_binary("ft", 'B', 4).has_value());   // kernel not in suite
}

TEST(NpbBuilds, CompilesAndRuns) {
  auto s = toolchain::make_site("india");
  const auto* stack = s->find_stack(site::MpiImpl::kOpenMpi,
                                    site::CompilerFamily::kGnu);
  const auto build = npb_binary("sp", 'A', 9);
  ASSERT_TRUE(build.has_value());
  const auto compiled =
      toolchain::compile_mpi_program(*s, *build, *stack, "/home/user/sp.A.9");
  ASSERT_TRUE(compiled.ok()) << compiled.error();
}

}  // namespace
}  // namespace feam::workloads
