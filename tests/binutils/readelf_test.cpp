#include "binutils/readelf.hpp"

#include <gtest/gtest.h>

#include "elf/builder.hpp"
#include "support/strings.hpp"

namespace feam::binutils {
namespace {

TEST(Readelf, DumpsCommentsAndScrapesBack) {
  elf::ElfSpec spec;
  spec.comments = {"GCC: (GNU) 4.1.2 20080704 (Red Hat 4.1.2-46)",
                   "ld (FEAM-sim binutils) glibc 2.5"};
  spec.text_size = 64;
  site::Vfs vfs;
  vfs.write_file("/a.out", elf::build_image(spec));

  const auto out = readelf_p_comment(vfs, "/a.out");
  ASSERT_TRUE(out.ok()) << out.error();
  EXPECT_TRUE(support::contains(out.value(), "String dump of section '.comment':"));

  const auto comments = parse_comment_dump(out.value());
  ASSERT_EQ(comments.size(), 2u);
  EXPECT_EQ(comments[0], "GCC: (GNU) 4.1.2 20080704 (Red Hat 4.1.2-46)");
  EXPECT_EQ(comments[1], "ld (FEAM-sim binutils) glibc 2.5");
}

TEST(Readelf, NoCommentSection) {
  elf::ElfSpec spec;  // no comments
  spec.text_size = 64;
  site::Vfs vfs;
  vfs.write_file("/a.out", elf::build_image(spec));
  const auto out = readelf_p_comment(vfs, "/a.out");
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(support::contains(out.error(), "was not dumped"));
}

TEST(Readelf, MissingAndNonElfFiles) {
  site::Vfs vfs;
  EXPECT_FALSE(readelf_p_comment(vfs, "/nope").ok());
  vfs.write_file("/text", "just text");
  const auto r = readelf_p_comment(vfs, "/text");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(support::contains(r.error(), "Not an ELF file"));
}

TEST(Readelf, ScraperIgnoresNoise) {
  const auto comments = parse_comment_dump(
      "\nString dump of section '.comment':\n"
      "  [     0]  first\n"
      "not a dump line\n"
      "  [    10]  second\n");
  EXPECT_EQ(comments, (std::vector<std::string>{"first", "second"}));
}

}  // namespace
}  // namespace feam::binutils
