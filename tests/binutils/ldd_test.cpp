#include "binutils/ldd.hpp"

#include <gtest/gtest.h>

#include "binutils/uname.hpp"
#include "elf/builder.hpp"
#include "support/strings.hpp"

namespace feam::binutils {
namespace {

site::Site make_host() {
  site::Site s;
  s.name = "host";
  s.isa = elf::Isa::kX86_64;

  elf::ElfSpec libc;
  libc.isa = elf::Isa::kX86_64;
  libc.kind = elf::FileKind::kSharedObject;
  libc.soname = "libc.so.6";
  libc.version_definitions = {"GLIBC_2.2.5", "GLIBC_2.5"};
  libc.text_size = 64;
  s.vfs.write_file("/lib64/libc.so.6", elf::build_image(libc));

  elf::ElfSpec app;
  app.isa = elf::Isa::kX86_64;
  app.needed = {"libmissing.so.2", "libc.so.6"};
  app.undefined_symbols = {{"printf", "GLIBC_2.2.5", "libc.so.6"}};
  app.text_size = 64;
  s.vfs.write_file("/apps/app", elf::build_image(app));
  return s;
}

TEST(Ldd, ListsFoundAndNotFound) {
  const site::Site s = make_host();
  const auto out = ldd(s, "/apps/app");
  ASSERT_TRUE(out.ok()) << out.error();
  EXPECT_TRUE(support::contains(out.value(), "libmissing.so.2 => not found"));
  EXPECT_TRUE(support::contains(out.value(), "libc.so.6 => /lib64/libc.so.6"));
}

TEST(Ldd, VerboseVersionBlock) {
  const site::Site s = make_host();
  const auto out = ldd(s, "/apps/app", /*verbose=*/true);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(support::contains(out.value(), "Version information:"));
  EXPECT_TRUE(support::contains(out.value(),
                                "libc.so.6 (GLIBC_2.2.5) => /lib64/libc.so.6"));
}

TEST(Ldd, ParseOutput) {
  const site::Site s = make_host();
  const auto entries = parse_ldd_output(ldd(s, "/apps/app", true).value());
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "libmissing.so.2");
  EXPECT_FALSE(entries[0].path.has_value());
  EXPECT_EQ(entries[1].name, "libc.so.6");
  EXPECT_EQ(entries[1].path, "/lib64/libc.so.6");
}

TEST(Ldd, ForeignIsaNotRecognized) {
  // The documented ldd failure FEAM must work around (paper V.A).
  site::Site s = make_host();
  elf::ElfSpec foreign;
  foreign.isa = elf::Isa::kPpc64;
  foreign.needed = {"libc.so.6"};
  foreign.text_size = 64;
  s.vfs.write_file("/apps/ppc_app", elf::build_image(foreign));
  const auto out = ldd(s, "/apps/ppc_app");
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(support::contains(out.error(), "not a dynamic executable"));
}

TEST(Ldd, ToolCanBeMissing) {
  site::Site s = make_host();
  s.ldd_available = false;
  const auto out = ldd(s, "/apps/app");
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(support::contains(out.error(), "command not found"));
}

TEST(Ldd, MissingFile) {
  const site::Site s = make_host();
  EXPECT_FALSE(ldd(s, "/gone").ok());
}

TEST(Ldd, NonElfNotRecognized) {
  site::Site s = make_host();
  s.vfs.write_file("/apps/script", "#!/bin/sh\n");
  const auto out = ldd(s, "/apps/script");
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(support::contains(out.error(), "not a dynamic executable"));
}

TEST(Uname, ReportsIsa) {
  site::Site s;
  s.isa = elf::Isa::kX86_64;
  s.name = "n001";
  s.kernel_version = "2.6.18-238.el5";
  EXPECT_EQ(uname_p(s), "x86_64");
  const auto a = uname_a(s);
  EXPECT_TRUE(support::contains(a, "Linux n001 2.6.18-238.el5"));
  EXPECT_TRUE(support::contains(a, "x86_64"));
  s.isa = elf::Isa::kPpc64;
  EXPECT_EQ(uname_p(s), "ppc64");
  s.isa = elf::Isa::kX86;
  EXPECT_EQ(uname_p(s), "i686");
}

}  // namespace
}  // namespace feam::binutils
