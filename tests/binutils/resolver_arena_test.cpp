// Lifetime contract of the parsed-ELF memo: the cached ElfFile borrows
// the entry's own arena copy of the file bytes, never the VFS node the
// caller read from. These tests mutate the VFS out from under a cached
// parse — rewriting the same path, deleting it, churning unrelated
// entries — and assert the old pointer's views still read correctly.
// Run under ASan, a stale borrow here is a heap-use-after-free.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "binutils/resolver_cache.hpp"
#include "elf/builder.hpp"
#include "site/site.hpp"

namespace feam::binutils {
namespace {

elf::ElfSpec lib_spec(const std::string& soname,
                      std::vector<std::string> needed,
                      std::vector<std::string> comments = {}) {
  elf::ElfSpec spec;
  spec.isa = elf::Isa::kX86_64;
  spec.kind = elf::FileKind::kSharedObject;
  spec.soname = soname;
  spec.needed = std::move(needed);
  spec.comments = std::move(comments);
  spec.text_size = 256;
  return spec;
}

site::Site make_host() {
  site::Site s;
  s.name = "arena-host";
  s.isa = elf::Isa::kX86_64;
  s.vfs.write_file("/lib64/libmpi.so.0",
                   elf::build_image(lib_spec(
                       "libmpi.so.0", {"libc.so.6", "libm.so.6"},
                       {"GCC: (GNU) 4.1.2", "FEAM-sim linker 1.0"})));
  return s;
}

// Parses through the cache and returns the memoized pointer.
const elf::ElfFile* cached_parse(ResolverCache& cache, site::Site& s,
                                 const std::string& path) {
  const support::Bytes* data = s.vfs.read(path);
  EXPECT_NE(data, nullptr);
  return cache.parsed_elf(s, path, *data);
}

TEST(ResolverArena, ViewsSurviveRewriteOfSameFile) {
  site::Site s = make_host();
  ResolverCache cache;
  const elf::ElfFile* before =
      cached_parse(cache, s, "/lib64/libmpi.so.0");
  ASSERT_NE(before, nullptr);
  ASSERT_TRUE(before->soname().has_value());

  // Rewriting the path frees the VFS node's old byte buffer. The cached
  // parse must not notice: its views borrow the entry's arena.
  s.vfs.write_file("/lib64/libmpi.so.0",
                   elf::build_image(lib_spec("libmpi.so.2", {"libc.so.6"})));

  EXPECT_EQ(*before->soname(), "libmpi.so.0");
  ASSERT_EQ(before->needed().size(), 2u);
  EXPECT_EQ(before->needed()[0], "libc.so.6");
  EXPECT_EQ(before->needed()[1], "libm.so.6");
  ASSERT_EQ(before->comments().size(), 2u);
  EXPECT_EQ(before->comments()[0], "GCC: (GNU) 4.1.2");

  // The rewritten file gets its own entry under the new write stamp; the
  // old pointer keeps describing the old content.
  const elf::ElfFile* after = cached_parse(cache, s, "/lib64/libmpi.so.0");
  ASSERT_NE(after, nullptr);
  EXPECT_NE(after, before);
  EXPECT_EQ(*after->soname(), "libmpi.so.2");
  EXPECT_EQ(*before->soname(), "libmpi.so.0");
}

TEST(ResolverArena, ViewsSurviveRemovalOfTheFile) {
  site::Site s = make_host();
  ResolverCache cache;
  const elf::ElfFile* parsed =
      cached_parse(cache, s, "/lib64/libmpi.so.0");
  ASSERT_NE(parsed, nullptr);

  ASSERT_TRUE(s.vfs.remove("/lib64/libmpi.so.0"));
  EXPECT_EQ(s.vfs.read("/lib64/libmpi.so.0"), nullptr);

  EXPECT_EQ(*parsed->soname(), "libmpi.so.0");
  EXPECT_EQ(parsed->needed().size(), 2u);
  EXPECT_EQ(parsed->dynamic_symbols().size(), 0u);
}

TEST(ResolverArena, ViewsSurviveHeavyUnrelatedChurn) {
  site::Site s = make_host();
  ResolverCache cache;
  const elf::ElfFile* parsed =
      cached_parse(cache, s, "/lib64/libmpi.so.0");
  ASSERT_NE(parsed, nullptr);
  const std::string_view soname_before = *parsed->soname();

  // Hundreds of writes, rewrites, reads, and removals of *other* paths:
  // enough to reallocate every internal VFS table several times over and
  // to populate many new cache entries in the same shards.
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 64; ++i) {
      const std::string path =
          "/tmp/churn_" + std::to_string(round) + "_" + std::to_string(i);
      s.vfs.write_file(path, elf::build_image(lib_spec(
                                 "libchurn" + std::to_string(i) + ".so",
                                 {"libc.so.6"})));
      cached_parse(cache, s, path);
      if (i % 2 == 0) s.vfs.remove(path);
    }
  }

  // Both the view captured before the churn and freshly read ones agree.
  EXPECT_EQ(soname_before, "libmpi.so.0");
  EXPECT_EQ(*parsed->soname(), "libmpi.so.0");
  ASSERT_EQ(parsed->needed().size(), 2u);
  EXPECT_EQ(parsed->needed()[1], "libm.so.6");
}

TEST(ResolverArena, FailedParseIsMemoizedWithoutRetainingBytes) {
  site::Site s = make_host();
  ResolverCache cache;
  s.vfs.write_file("/tmp/notelf", std::string_view("#!/bin/sh\necho hi\n"));
  EXPECT_EQ(cached_parse(cache, s, "/tmp/notelf"), nullptr);
  // Memoized: the second call is a hit that still reports failure.
  const std::uint64_t misses = cache.parse_misses();
  EXPECT_EQ(cached_parse(cache, s, "/tmp/notelf"), nullptr);
  EXPECT_EQ(cache.parse_misses(), misses);
  EXPECT_GE(cache.parse_hits(), 1u);
}

}  // namespace
}  // namespace feam::binutils
