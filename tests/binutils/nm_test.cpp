#include "binutils/nm.hpp"

#include <gtest/gtest.h>

#include "elf/builder.hpp"
#include "support/strings.hpp"

namespace feam::binutils {
namespace {

TEST(Nm, ListsDynamicSymbolsWithVersions) {
  elf::ElfSpec lib;
  lib.kind = elf::FileKind::kSharedObject;
  lib.soname = "libc.so.6";
  lib.version_definitions = {"GLIBC_2.2.5", "GLIBC_2.3.4"};
  lib.defined_symbols = {{"memcpy", "GLIBC_2.3.4"}, {"printf", "GLIBC_2.2.5"}};
  lib.needed = {"libother.so.1"};
  lib.undefined_symbols = {{"helper", "OTHER_1.0", "libother.so.1"}};
  lib.text_size = 64;
  site::Vfs vfs;
  vfs.write_file("/lib/libc.so.6", elf::build_image(lib));

  const auto out = nm_dynamic(vfs, "/lib/libc.so.6");
  ASSERT_TRUE(out.ok()) << out.error();
  EXPECT_TRUE(support::contains(out.value(), "T memcpy@GLIBC_2.3.4"));
  EXPECT_TRUE(support::contains(out.value(), "T printf@GLIBC_2.2.5"));
  EXPECT_TRUE(support::contains(out.value(), "U helper@OTHER_1.0"));
}

TEST(Nm, UndefinedMarkedU) {
  elf::ElfSpec app;
  app.needed = {"libm.so.6"};
  app.undefined_symbols = {{"sqrt", "", ""}};
  app.text_size = 32;
  site::Vfs vfs;
  vfs.write_file("/a.out", elf::build_image(app));
  const auto out = nm_dynamic(vfs, "/a.out");
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(support::contains(out.value(), "U sqrt"));
  EXPECT_FALSE(support::contains(out.value(), "sqrt@"));
}

TEST(Nm, Failures) {
  site::Vfs vfs;
  EXPECT_FALSE(nm_dynamic(vfs, "/nope").ok());
  vfs.write_file("/junk", "not elf");
  const auto r = nm_dynamic(vfs, "/junk");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(support::contains(r.error(), "file format not recognized"));
}

// FEAM's Table I identification deliberately does not rely on symbols:
// two different MPI implementations can export the same MPI_* interface
// symbols (that is the point of a standard). This pins the claim.
TEST(Nm, SymbolsDoNotDistinguishImplementations) {
  const auto make_mpi_lib = [](const std::string& soname) {
    elf::ElfSpec lib;
    lib.kind = elf::FileKind::kSharedObject;
    lib.soname = soname;
    lib.defined_symbols = {{"MPI_Init", ""}, {"MPI_Send", ""}};
    lib.text_size = 64;
    return elf::build_image(lib);
  };
  site::Vfs vfs;
  vfs.write_file("/a/libmpi.so.0", make_mpi_lib("libmpi.so.0"));
  vfs.write_file("/b/libmpich.so.1.2", make_mpi_lib("libmpich.so.1.2"));
  const auto a = nm_dynamic(vfs, "/a/libmpi.so.0");
  const auto b = nm_dynamic(vfs, "/b/libmpich.so.1.2");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());  // identical symbol surface
}

}  // namespace
}  // namespace feam::binutils
