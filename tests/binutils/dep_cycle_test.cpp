// Malformed DT_NEEDED graphs: cycles and absurd depth must come back as
// typed dep errors on the Resolution — never hang, never recurse forever —
// while resolution of the rest of the closure still completes (ld.so loads
// each object once, so a cycle is survivable at run time; FEAM just has to
// report it faithfully).
#include "binutils/resolver.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "elf/builder.hpp"
#include "support/error.hpp"

namespace feam::binutils {
namespace {

elf::ElfSpec shared_lib(const std::string& soname,
                        std::vector<std::string> needed = {}) {
  elf::ElfSpec spec;
  spec.isa = elf::Isa::kX86_64;
  spec.kind = elf::FileKind::kSharedObject;
  spec.soname = soname;
  spec.needed = std::move(needed);
  spec.text_size = 64;
  return spec;
}

void install_lib(site::Site& s, const std::string& soname,
                 std::vector<std::string> needed = {}) {
  s.vfs.write_file("/lib64/" + soname,
                   elf::build_image(shared_lib(soname, std::move(needed))));
}

site::Site make_host() {
  site::Site s;
  s.name = "host";
  s.isa = elf::Isa::kX86_64;
  install_lib(s, "libc.so.6");
  return s;
}

void install_app(site::Site& s, const std::string& path,
                 std::vector<std::string> needed) {
  elf::ElfSpec app;
  app.isa = elf::Isa::kX86_64;
  app.needed = std::move(needed);
  app.text_size = 128;
  s.vfs.write_file(path, elf::build_image(app));
}

TEST(DepCycle, TwoLibraryCycleIsReportedAndResolutionCompletes) {
  site::Site s = make_host();
  install_lib(s, "liba.so.1", {"libb.so.1"});
  install_lib(s, "libb.so.1", {"liba.so.1", "libc.so.6"});
  install_app(s, "/apps/app", {"liba.so.1"});

  const auto r = resolve_libraries(s, "/apps/app");
  ASSERT_TRUE(r.root_parsed);
  // Every library still resolves: the cycle truncates the walk, not the
  // search.
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(r.path_of("liba.so.1"), "/lib64/liba.so.1");
  EXPECT_EQ(r.path_of("libb.so.1"), "/lib64/libb.so.1");
  EXPECT_EQ(r.path_of("libc.so.6"), "/lib64/libc.so.6");

  ASSERT_TRUE(r.dep_error.has_value());
  EXPECT_EQ(r.dep_error->code, support::ErrorCode::kDepCycle);
  EXPECT_EQ(support::failure_category(r.dep_error->code), "dep");
  EXPECT_NE(r.dep_error->message.find("cyclic DT_NEEDED chain"),
            std::string::npos);
  ASSERT_EQ(r.dep_cycles.size(), 1u);
  EXPECT_EQ(r.dep_cycles[0], "liba.so.1 -> libb.so.1 -> liba.so.1");
}

TEST(DepCycle, SelfCycle) {
  site::Site s = make_host();
  install_lib(s, "libself.so.0", {"libself.so.0"});
  install_app(s, "/apps/app", {"libself.so.0"});

  const auto r = resolve_libraries(s, "/apps/app");
  ASSERT_TRUE(r.dep_error.has_value());
  EXPECT_EQ(r.dep_error->code, support::ErrorCode::kDepCycle);
  ASSERT_EQ(r.dep_cycles.size(), 1u);
  EXPECT_EQ(r.dep_cycles[0], "libself.so.0 -> libself.so.0");
}

TEST(DepCycle, DiamondIsNotACycle) {
  // Two libraries sharing a dependency is the normal case (everything
  // needs libc); the ancestor-chain check must not flag it.
  site::Site s = make_host();
  install_lib(s, "liba.so.1", {"libc.so.6"});
  install_lib(s, "libb.so.1", {"libc.so.6"});
  install_app(s, "/apps/app", {"liba.so.1", "libb.so.1"});

  const auto r = resolve_libraries(s, "/apps/app");
  EXPECT_TRUE(r.complete());
  EXPECT_FALSE(r.dep_error.has_value());
  EXPECT_TRUE(r.dep_cycles.empty());
}

TEST(DepCycle, LongChainBelowTheLimitIsFine) {
  site::Site s = make_host();
  const int depth = kMaxDepDepth - 4;
  for (int i = 0; i < depth; ++i) {
    const std::string name = "libchain" + std::to_string(i) + ".so";
    std::vector<std::string> needed;
    if (i + 1 < depth) {
      needed.push_back("libchain" + std::to_string(i + 1) + ".so");
    }
    install_lib(s, name, std::move(needed));
  }
  install_app(s, "/apps/app", {"libchain0.so"});

  const auto r = resolve_libraries(s, "/apps/app");
  EXPECT_TRUE(r.complete());
  EXPECT_FALSE(r.dep_error.has_value());
  EXPECT_EQ(r.libs.size(), static_cast<std::size_t>(depth));
}

TEST(DepCycle, DepthExceededIsReportedAndCutOff) {
  site::Site s = make_host();
  const int chain = kMaxDepDepth + 8;
  for (int i = 0; i < chain; ++i) {
    const std::string name = "libchain" + std::to_string(i) + ".so";
    std::vector<std::string> needed;
    if (i + 1 < chain) {
      needed.push_back("libchain" + std::to_string(i + 1) + ".so");
    }
    install_lib(s, name, std::move(needed));
  }
  install_app(s, "/apps/app", {"libchain0.so"});

  const auto r = resolve_libraries(s, "/apps/app");
  ASSERT_TRUE(r.root_parsed);
  ASSERT_TRUE(r.dep_error.has_value());
  EXPECT_EQ(r.dep_error->code, support::ErrorCode::kDepDepthExceeded);
  EXPECT_NE(r.dep_error->message.find("exceeds depth"), std::string::npos);
  // The walk stopped at the limit instead of following the whole chain.
  EXPECT_LT(r.libs.size(), static_cast<std::size_t>(chain));
  EXPECT_FALSE(r.path_of("libchain" + std::to_string(chain - 1) + ".so")
                   .has_value());
}

TEST(DepCycle, CycleDeepInTheGraph) {
  // app -> libx -> liby -> libz -> liby : the cycle starts below the root.
  site::Site s = make_host();
  install_lib(s, "libx.so", {"liby.so"});
  install_lib(s, "liby.so", {"libz.so"});
  install_lib(s, "libz.so", {"liby.so", "libc.so.6"});
  install_app(s, "/apps/app", {"libx.so"});

  const auto r = resolve_libraries(s, "/apps/app");
  EXPECT_TRUE(r.complete());
  ASSERT_TRUE(r.dep_error.has_value());
  EXPECT_EQ(r.dep_error->code, support::ErrorCode::kDepCycle);
  ASSERT_EQ(r.dep_cycles.size(), 1u);
  EXPECT_EQ(r.dep_cycles[0], "liby.so -> libz.so -> liby.so");
}

}  // namespace
}  // namespace feam::binutils
