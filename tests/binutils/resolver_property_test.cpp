// Property tests for the ld.so search algorithm: wherever a compatible
// candidate is placed, resolution must pick the first directory in search
// order (RPATH, then LD_LIBRARY_PATH, then defaults), skipping
// incompatible candidates without failing.
#include <gtest/gtest.h>

#include "binutils/resolver.hpp"
#include "elf/builder.hpp"
#include "support/rng.hpp"

namespace feam::binutils {
namespace {

using support::Rng;

support::Bytes lib_image(elf::Isa isa) {
  elf::ElfSpec spec;
  spec.isa = isa;
  spec.kind = elf::FileKind::kSharedObject;
  spec.soname = "libx.so.1";
  spec.needed = {"libc.so.6"};
  spec.text_size = 32;
  return elf::build_image(spec);
}

site::Site base_site() {
  site::Site s;
  s.name = "prop";
  s.isa = elf::Isa::kX86_64;
  elf::ElfSpec libc;
  libc.isa = elf::Isa::kX86_64;
  libc.kind = elf::FileKind::kSharedObject;
  libc.soname = "libc.so.6";
  libc.text_size = 32;
  s.vfs.write_file("/lib64/libc.so.6", elf::build_image(libc));

  elf::ElfSpec app;
  app.isa = elf::Isa::kX86_64;
  app.needed = {"libx.so.1", "libc.so.6"};
  app.rpath = {"/rp0", "/rp1"};
  app.text_size = 32;
  s.vfs.write_file("/app", elf::build_image(app));
  s.env.set("LD_LIBRARY_PATH", "/ld0:/ld1");
  return s;
}

// The full search order for the app above.
const std::vector<std::string>& search_order() {
  static const std::vector<std::string> kOrder = {
      "/rp0", "/rp1", "/ld0", "/ld1", "/lib64", "/usr/lib64",
      "/usr/local/lib64"};
  return kOrder;
}

class ResolverOrderPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ResolverOrderPropertyTest, FirstCompatibleDirectoryWins) {
  Rng rng(GetParam());
  site::Site s = base_site();
  const auto& order = search_order();

  // Place a compatible copy in a random subset of directories, and an
  // incompatible (wrong-class) copy in another random subset.
  std::vector<bool> has_good(order.size()), has_bad(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    has_good[i] = rng.chance(0.4);
    has_bad[i] = rng.chance(0.4);
    if (has_bad[i]) {
      s.vfs.write_file(order[i] + "/libx.so.1", lib_image(elf::Isa::kX86));
    }
    if (has_good[i]) {
      // Good copy overwrites a bad one in the same dir half the time —
      // whichever is present at the path is what the search sees.
      s.vfs.write_file(order[i] + "/libx.so.1", lib_image(elf::Isa::kX86_64));
      has_bad[i] = false;
    }
  }

  const auto result = resolve_libraries(s, "/app");
  std::optional<std::string> expected;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (has_good[i]) {
      expected = order[i] + "/libx.so.1";
      break;
    }
  }
  EXPECT_EQ(result.path_of("libx.so.1"), expected);
  EXPECT_EQ(result.complete(), expected.has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResolverOrderPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(ResolverProperty, ExtraDirsPrecedeEverything) {
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    site::Site s = base_site();
    for (const auto& dir : search_order()) {
      if (rng.chance(0.5)) {
        s.vfs.write_file(dir + "/libx.so.1", lib_image(elf::Isa::kX86_64));
      }
    }
    s.vfs.write_file("/extra/libx.so.1", lib_image(elf::Isa::kX86_64));
    const auto result = resolve_libraries(s, "/app", {"/extra"});
    EXPECT_EQ(result.path_of("libx.so.1"), "/extra/libx.so.1");
  }
}

}  // namespace
}  // namespace feam::binutils
