#include "binutils/file_cmd.hpp"

#include <gtest/gtest.h>

#include "elf/builder.hpp"
#include "support/strings.hpp"

namespace feam::binutils {
namespace {

TEST(FileCmd, DynamicExecutable) {
  elf::ElfSpec spec;
  spec.isa = elf::Isa::kX86_64;
  spec.needed = {"libc.so.6"};
  spec.text_size = 64;
  site::Vfs vfs;
  vfs.write_file("/a.out", elf::build_image(spec));
  const auto out = file_type(vfs, "/a.out");
  EXPECT_TRUE(support::contains(out, "ELF 64-bit LSB executable"));
  EXPECT_TRUE(support::contains(out, "x86-64"));
  EXPECT_TRUE(support::contains(out, "dynamically linked"));
}

TEST(FileCmd, StaticExecutable) {
  elf::ElfSpec spec;
  spec.static_link = true;
  spec.text_size = 64;
  site::Vfs vfs;
  vfs.write_file("/static", elf::build_image(spec));
  EXPECT_TRUE(support::contains(file_type(vfs, "/static"), "statically linked"));
}

TEST(FileCmd, BigEndianSharedObject) {
  elf::ElfSpec spec;
  spec.isa = elf::Isa::kPpc64;
  spec.kind = elf::FileKind::kSharedObject;
  spec.soname = "libdemo.so.1";
  spec.text_size = 64;
  site::Vfs vfs;
  vfs.write_file("/libdemo.so.1", elf::build_image(spec));
  const auto out = file_type(vfs, "/libdemo.so.1");
  EXPECT_TRUE(support::contains(out, "ELF 64-bit MSB shared object"));
  EXPECT_TRUE(support::contains(out, "powerpc64"));
  EXPECT_TRUE(support::contains(out, "SONAME libdemo.so.1"));
}

TEST(FileCmd, ScriptsTextAndData) {
  site::Vfs vfs;
  vfs.write_file("/run.sh", "#!/bin/sh\necho hi\n");
  EXPECT_TRUE(support::contains(file_type(vfs, "/run.sh"),
                                "/bin/sh script text executable"));
  vfs.write_file("/notes.txt", "plain words\n");
  EXPECT_TRUE(support::contains(file_type(vfs, "/notes.txt"), "ASCII text"));
  vfs.write_file("/blob", support::Bytes{0x00, 0xff, 0x10});
  EXPECT_TRUE(support::contains(file_type(vfs, "/blob"), "data"));
  vfs.write_file("/empty", support::Bytes{});
  EXPECT_TRUE(support::contains(file_type(vfs, "/empty"), "empty"));
  EXPECT_TRUE(support::contains(file_type(vfs, "/gone"), "cannot open"));
}

TEST(FileCmd, CorruptElfStillClassified) {
  site::Vfs vfs;
  vfs.write_file("/bad", support::Bytes{0x7f, 'E', 'L', 'F', 9, 9});
  EXPECT_TRUE(support::contains(file_type(vfs, "/bad"), "corrupt"));
}

}  // namespace
}  // namespace feam::binutils
