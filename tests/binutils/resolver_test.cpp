#include "binutils/resolver.hpp"

#include <gtest/gtest.h>

#include "elf/builder.hpp"

namespace feam::binutils {
namespace {

using support::Version;

elf::ElfSpec shared_lib(const std::string& soname, elf::Isa isa,
                        std::vector<std::string> needed = {},
                        std::vector<std::string> verdefs = {}) {
  elf::ElfSpec spec;
  spec.isa = isa;
  spec.kind = elf::FileKind::kSharedObject;
  spec.soname = soname;
  spec.needed = std::move(needed);
  spec.version_definitions = std::move(verdefs);
  spec.text_size = 64;
  return spec;
}

// A host with libc in /lib64, an MPI library under an /opt prefix (only
// reachable via LD_LIBRARY_PATH), and an app binary.
site::Site make_host() {
  site::Site s;
  s.name = "host";
  s.isa = elf::Isa::kX86_64;
  s.vfs.write_file("/lib64/libc.so.6",
                   elf::build_image(shared_lib("libc.so.6", elf::Isa::kX86_64,
                                               {},
                                               {"GLIBC_2.2.5", "GLIBC_2.3.4",
                                                "GLIBC_2.4", "GLIBC_2.5"})));
  s.vfs.write_file(
      "/opt/mpi/lib/libmpi.so.0",
      elf::build_image(shared_lib("libmpi.so.0", elf::Isa::kX86_64,
                                  {"libc.so.6"})));

  elf::ElfSpec app;
  app.isa = elf::Isa::kX86_64;
  app.needed = {"libmpi.so.0", "libc.so.6"};
  app.undefined_symbols = {{"printf", "GLIBC_2.2.5", "libc.so.6"},
                           {"MPI_Init", "", ""}};
  app.text_size = 128;
  s.vfs.write_file("/apps/app", elf::build_image(app));
  return s;
}

TEST(Resolver, ResolvesTransitively) {
  site::Site s = make_host();
  s.env.set("LD_LIBRARY_PATH", "/opt/mpi/lib");
  const auto r = resolve_libraries(s, "/apps/app");
  ASSERT_TRUE(r.root_parsed);
  EXPECT_TRUE(r.complete());
  EXPECT_TRUE(r.version_errors.empty());
  EXPECT_EQ(r.path_of("libmpi.so.0"), "/opt/mpi/lib/libmpi.so.0");
  EXPECT_EQ(r.path_of("libc.so.6"), "/lib64/libc.so.6");
}

TEST(Resolver, MissingWithoutSearchPath) {
  site::Site s = make_host();  // no LD_LIBRARY_PATH
  const auto r = resolve_libraries(s, "/apps/app");
  EXPECT_FALSE(r.complete());
  EXPECT_EQ(r.missing(), (std::vector<std::string>{"libmpi.so.0"}));
  EXPECT_FALSE(r.path_of("libmpi.so.0").has_value());
}

TEST(Resolver, ExtraDirsBeatEverything) {
  site::Site s = make_host();
  s.env.set("LD_LIBRARY_PATH", "/opt/mpi/lib");
  s.vfs.write_file(
      "/home/copies/libmpi.so.0",
      elf::build_image(shared_lib("libmpi.so.0", elf::Isa::kX86_64,
                                  {"libc.so.6"})));
  const auto r = resolve_libraries(s, "/apps/app", {"/home/copies"});
  ASSERT_TRUE(r.complete());
  EXPECT_EQ(r.path_of("libmpi.so.0"), "/home/copies/libmpi.so.0");
}

TEST(Resolver, RpathBeatsLdLibraryPath) {
  site::Site s = make_host();
  s.vfs.write_file(
      "/rpath/libmpi.so.0",
      elf::build_image(shared_lib("libmpi.so.0", elf::Isa::kX86_64,
                                  {"libc.so.6"})));
  elf::ElfSpec app;
  app.isa = elf::Isa::kX86_64;
  app.needed = {"libmpi.so.0", "libc.so.6"};
  app.rpath = {"/rpath"};
  app.text_size = 128;
  s.vfs.write_file("/apps/rpath_app", elf::build_image(app));
  s.env.set("LD_LIBRARY_PATH", "/opt/mpi/lib");
  const auto r = resolve_libraries(s, "/apps/rpath_app");
  EXPECT_EQ(r.path_of("libmpi.so.0"), "/rpath/libmpi.so.0");
}

TEST(Resolver, WrongClassCandidateIsSkippedNotFatal) {
  // ld.so behaviour: a 32-bit library earlier in the search order is
  // skipped and the search continues to the 64-bit one.
  site::Site s = make_host();
  s.vfs.write_file(
      "/shadow/libmpi.so.0",
      elf::build_image(shared_lib("libmpi.so.0", elf::Isa::kX86)));
  s.env.set("LD_LIBRARY_PATH", "/shadow:/opt/mpi/lib");
  const auto r = resolve_libraries(s, "/apps/app");
  ASSERT_TRUE(r.complete());
  EXPECT_EQ(r.path_of("libmpi.so.0"), "/opt/mpi/lib/libmpi.so.0");
}

TEST(Resolver, ForeignIsaCandidateIsSkipped) {
  site::Site s = make_host();
  s.vfs.write_file(
      "/shadow/libmpi.so.0",
      elf::build_image(shared_lib("libmpi.so.0", elf::Isa::kAarch64)));
  s.env.set("LD_LIBRARY_PATH", "/shadow");
  const auto r = resolve_libraries(s, "/apps/app");
  EXPECT_FALSE(r.complete());  // only the foreign copy exists
}

TEST(Resolver, VersionErrorWhenNodeUndefined) {
  site::Site s = make_host();
  s.env.set("LD_LIBRARY_PATH", "/opt/mpi/lib");
  elf::ElfSpec app;
  app.isa = elf::Isa::kX86_64;
  app.needed = {"libc.so.6"};
  app.undefined_symbols = {{"recvmmsg", "GLIBC_2.12", "libc.so.6"}};
  app.text_size = 64;
  s.vfs.write_file("/apps/new_app", elf::build_image(app));
  const auto r = resolve_libraries(s, "/apps/new_app");
  EXPECT_TRUE(r.complete());
  ASSERT_EQ(r.version_errors.size(), 1u);
  EXPECT_EQ(r.version_errors[0].version, "GLIBC_2.12");
  EXPECT_EQ(r.version_errors[0].provider, "/lib64/libc.so.6");
}

TEST(Resolver, TransitiveVersionErrorsAreChecked) {
  // A dependency's own version references are validated, not just the
  // root's (this is what rejects too-new library copies at old sites).
  site::Site s = make_host();
  elf::ElfSpec lib = shared_lib("libnew.so.1", elf::Isa::kX86_64, {"libc.so.6"});
  lib.undefined_symbols = {{"pipe2", "GLIBC_2.9", "libc.so.6"}};
  s.vfs.write_file("/opt/mpi/lib/libnew.so.1", elf::build_image(lib));
  elf::ElfSpec app;
  app.isa = elf::Isa::kX86_64;
  app.needed = {"libnew.so.1", "libc.so.6"};
  app.text_size = 64;
  s.vfs.write_file("/apps/app2", elf::build_image(app));
  s.env.set("LD_LIBRARY_PATH", "/opt/mpi/lib");
  const auto r = resolve_libraries(s, "/apps/app2");
  EXPECT_TRUE(r.complete());
  ASSERT_EQ(r.version_errors.size(), 1u);
  EXPECT_EQ(r.version_errors[0].version, "GLIBC_2.9");
  EXPECT_EQ(r.version_errors[0].required_by, "/opt/mpi/lib/libnew.so.1");
}

TEST(Resolver, DiamondDependenciesVisitedOnce) {
  site::Site s = make_host();
  // a -> b, c; b -> d; c -> d.
  const auto add = [&](const std::string& soname,
                       std::vector<std::string> needed) {
    s.vfs.write_file("/opt/mpi/lib/" + soname,
                     elf::build_image(shared_lib(soname, elf::Isa::kX86_64,
                                                 std::move(needed))));
  };
  add("libd.so.1", {"libc.so.6"});
  add("libb.so.1", {"libd.so.1", "libc.so.6"});
  add("libca.so.1", {"libd.so.1", "libc.so.6"});
  elf::ElfSpec app;
  app.isa = elf::Isa::kX86_64;
  app.needed = {"libb.so.1", "libca.so.1", "libc.so.6"};
  app.text_size = 64;
  s.vfs.write_file("/apps/diamond", elf::build_image(app));
  s.env.set("LD_LIBRARY_PATH", "/opt/mpi/lib");
  const auto r = resolve_libraries(s, "/apps/diamond");
  ASSERT_TRUE(r.complete());
  int d_count = 0;
  for (const auto& lib : r.libs) d_count += lib.name == "libd.so.1";
  EXPECT_EQ(d_count, 1);
}

TEST(Resolver, RootErrors) {
  site::Site s = make_host();
  const auto missing = resolve_libraries(s, "/nope");
  EXPECT_FALSE(missing.root_parsed);
  EXPECT_FALSE(missing.complete());

  s.vfs.write_file("/script", "#!/bin/sh\n");
  const auto script = resolve_libraries(s, "/script");
  EXPECT_FALSE(script.root_parsed);
  EXPECT_FALSE(script.root_error.empty());
}

TEST(Resolver, MajorVersionIsPartOfTheName) {
  // Paper III.D: "Libraries with the same name and major version number
  // are guaranteed to have compatible APIs" — the soname embeds the major
  // version, so a different major never satisfies a NEEDED entry.
  site::Site s = make_host();
  s.vfs.write_file(
      "/opt/mpi/lib/libfoo.so.2",
      elf::build_image(shared_lib("libfoo.so.2", elf::Isa::kX86_64,
                                  {"libc.so.6"})));
  elf::ElfSpec app;
  app.isa = elf::Isa::kX86_64;
  app.needed = {"libfoo.so.1", "libc.so.6"};  // major 1, only major 2 exists
  app.text_size = 64;
  s.vfs.write_file("/apps/major_app", elf::build_image(app));
  s.env.set("LD_LIBRARY_PATH", "/opt/mpi/lib");
  const auto r = resolve_libraries(s, "/apps/major_app");
  EXPECT_FALSE(r.complete());
  EXPECT_EQ(r.missing(), (std::vector<std::string>{"libfoo.so.1"}));
}

TEST(Resolver, MinorVersionsShareTheSoname) {
  // Conversely, minor releases keep the soname: the 1.4.3 file behind the
  // libfoo.so.1 symlink satisfies a binary linked against 1.4.0.
  site::Site s = make_host();
  s.vfs.write_file(
      "/opt/mpi/lib/libfoo.so.1.4.3",
      elf::build_image(shared_lib("libfoo.so.1", elf::Isa::kX86_64,
                                  {"libc.so.6"})));
  s.vfs.symlink("/opt/mpi/lib/libfoo.so.1", "libfoo.so.1.4.3");
  elf::ElfSpec app;
  app.isa = elf::Isa::kX86_64;
  app.needed = {"libfoo.so.1", "libc.so.6"};
  app.text_size = 64;
  s.vfs.write_file("/apps/minor_app", elf::build_image(app));
  s.env.set("LD_LIBRARY_PATH", "/opt/mpi/lib");
  const auto r = resolve_libraries(s, "/apps/minor_app");
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(r.path_of("libfoo.so.1"), "/opt/mpi/lib/libfoo.so.1.4.3");
}

TEST(Resolver, SearchLibraryHonorsBits) {
  site::Site s = make_host();
  EXPECT_TRUE(search_library(s, "libc.so.6", 64, {}, {}).has_value());
  // A 32-bit request looks in /lib, /usr/lib — where nothing exists here.
  EXPECT_FALSE(search_library(s, "libc.so.6", 32, {}, {}).has_value());
}

}  // namespace
}  // namespace feam::binutils
