#include "binutils/objdump.hpp"

#include <gtest/gtest.h>

#include "elf/builder.hpp"
#include "support/strings.hpp"

namespace feam::binutils {
namespace {

elf::ElfSpec app_spec() {
  elf::ElfSpec spec;
  spec.isa = elf::Isa::kX86_64;
  spec.needed = {"libmpi.so.0", "libnsl.so.1", "libutil.so.1", "libc.so.6"};
  spec.rpath = {"/opt/openmpi-1.4/lib"};
  spec.undefined_symbols = {
      {"printf", "GLIBC_2.2.5", "libc.so.6"},
      {"memcpy", "GLIBC_2.3.4", "libc.so.6"},
      {"MPI_Init", "", ""},
  };
  spec.text_size = 512;
  return spec;
}

site::Vfs vfs_with(const elf::ElfSpec& spec, const std::string& path) {
  site::Vfs vfs;
  vfs.write_file(path, elf::build_image(spec));
  return vfs;
}

TEST(Objdump, RendersPrivateHeaders) {
  const auto vfs = vfs_with(app_spec(), "/apps/a.out");
  const auto out = objdump_p(vfs, "/apps/a.out");
  ASSERT_TRUE(out.ok()) << out.error();
  EXPECT_TRUE(support::contains(out.value(), "file format elf64-x86-64"));
  EXPECT_TRUE(support::contains(out.value(), "Dynamic Section:"));
  EXPECT_TRUE(support::contains(out.value(), "NEEDED               libmpi.so.0"));
  EXPECT_TRUE(support::contains(out.value(), "RPATH                /opt/openmpi-1.4/lib"));
  EXPECT_TRUE(support::contains(out.value(), "Version References:"));
  EXPECT_TRUE(support::contains(out.value(), "required from libc.so.6:"));
  EXPECT_TRUE(support::contains(out.value(), "GLIBC_2.3.4"));
}

TEST(Objdump, FailsLikeTheRealTool) {
  site::Vfs vfs;
  const auto missing = objdump_p(vfs, "/no/such/file");
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(support::contains(missing.error(), "No such file"));

  vfs.write_file("/script.sh", "#!/bin/sh\n");
  const auto not_elf = objdump_p(vfs, "/script.sh");
  ASSERT_FALSE(not_elf.ok());
  EXPECT_TRUE(support::contains(not_elf.error(), "file format not recognized"));
}

TEST(Objdump, ScrapeRoundTrip) {
  const auto vfs = vfs_with(app_spec(), "/apps/a.out");
  const auto out = objdump_p(vfs, "/apps/a.out");
  ASSERT_TRUE(out.ok());
  const auto parsed = parse_objdump_output(out.value());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->file_format, "elf64-x86-64");
  EXPECT_EQ(parsed->architecture, "i386:x86-64");
  EXPECT_EQ(parsed->bits, 64);
  EXPECT_FALSE(parsed->is_shared_object);
  EXPECT_EQ(parsed->needed,
            (std::vector<std::string>{"libmpi.so.0", "libnsl.so.1",
                                      "libutil.so.1", "libc.so.6"}));
  EXPECT_EQ(parsed->rpath, (std::vector<std::string>{"/opt/openmpi-1.4/lib"}));
  ASSERT_EQ(parsed->version_references.size(), 1u);
  EXPECT_EQ(parsed->version_references[0].file, "libc.so.6");
  EXPECT_EQ(parsed->version_references[0].versions,
            (std::vector<std::string>{"GLIBC_2.2.5", "GLIBC_2.3.4"}));
}

TEST(Objdump, SharedObjectWithVersionDefinitions) {
  elf::ElfSpec lib;
  lib.isa = elf::Isa::kX86_64;
  lib.kind = elf::FileKind::kSharedObject;
  lib.soname = "libdemo.so.2";
  lib.version_definitions = {"DEMO_1.0", "DEMO_2.0"};
  lib.defined_symbols = {{"demo_fn", "DEMO_1.0"}};
  lib.text_size = 128;
  const auto vfs = vfs_with(lib, "/lib/libdemo.so.2");
  const auto out = objdump_p(vfs, "/lib/libdemo.so.2");
  ASSERT_TRUE(out.ok());
  const auto parsed = parse_objdump_output(out.value());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->is_shared_object);
  EXPECT_EQ(parsed->soname, "libdemo.so.2");
  // The base definition (the soname itself) is excluded by the scraper.
  EXPECT_EQ(parsed->version_definitions,
            (std::vector<std::string>{"DEMO_1.0", "DEMO_2.0"}));
}

TEST(Objdump, ThirtyTwoBitFormatName) {
  elf::ElfSpec spec = app_spec();
  spec.isa = elf::Isa::kX86;
  const auto vfs = vfs_with(spec, "/a32.out");
  const auto parsed = parse_objdump_output(objdump_p(vfs, "/a32.out").value());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->file_format, "elf32-i386");
  EXPECT_EQ(parsed->bits, 32);
}

TEST(Objdump, ScraperRejectsGarbage) {
  EXPECT_FALSE(parse_objdump_output("").has_value());
  EXPECT_FALSE(parse_objdump_output("random text\nwith lines\n").has_value());
}

}  // namespace
}  // namespace feam::binutils
