// Fuzz driver for parse_fleet_spec, built only when -DFEAM_FUZZ=ON.
//
// Two modes, one invariant (the pattern of tests/elf/fuzz_reader.cpp):
// parse_fleet_spec must terminate without crashing or tripping a
// sanitizer, and every rejection must carry ErrorCode::kSpecParse —
// category "parse". Arbitrary bytes can never produce an io/dep/unknown
// error: those codes belong to the Vfs and the resolver, and a spec
// document touches neither.
//
//   * With Clang the target compiles against libFuzzer
//     (FEAM_FUZZ_LIBFUZZER): coverage-guided, run via
//     `feam_fuzz_fleet_spec -runs=...`.
//   * Elsewhere (GCC) the same invariant runs as a bounded seeded loop —
//     mutations of valid spec documents plus raw garbage.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "fleet/spec.hpp"
#include "support/error.hpp"

namespace {

// Returns false (after printing) when a rejection carries a non-spec-parse
// taxonomy code.
bool check_parse(std::string_view input) {
  const auto parsed = feam::fleet::parse_fleet_spec(input);
  if (parsed.ok()) {
    return true;
  }
  if (parsed.code() != feam::support::ErrorCode::kSpecParse ||
      feam::support::failure_category(parsed.code()) != "parse") {
    std::fprintf(stderr,
                 "spec rejection outside the parse taxonomy: code=%s "
                 "category=%s message=%s\n",
                 std::string(feam::support::error_code_slug(parsed.code()))
                     .c_str(),
                 std::string(feam::support::failure_category(parsed.code()))
                     .c_str(),
                 parsed.error().c_str());
    return false;
  }
  return true;
}

}  // namespace

#ifdef FEAM_FUZZ_LIBFUZZER

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string input(reinterpret_cast<const char*>(data), size);
  if (!check_parse(input)) {
    __builtin_trap();
  }
  return 0;
}

#else

#include "support/rng.hpp"

namespace {

// A valid document to mutate from, with every key present.
std::string seed_document(feam::support::Rng& rng) {
  feam::fleet::FleetSpec spec;
  spec.sites = 1 + static_cast<int>(rng.next_below(500));
  spec.workloads = 1 + static_cast<int>(rng.next_below(100));
  spec.drift_rate = static_cast<double>(rng.next_below(1600)) / 100.0;
  return feam::fleet::fleet_spec_to_json(spec).dump(2);
}

std::string mutate_once(std::string text, feam::support::Rng& rng) {
  if (text.empty()) return text;
  switch (rng.next_below(5)) {
    case 0:  // flip a byte
      text[rng.next_below(text.size())] =
          static_cast<char>(rng.next_below(256));
      break;
    case 1:  // truncate
      text.resize(rng.next_below(text.size()));
      break;
    case 2:  // duplicate a slice (repeated keys, nested garbage)
      {
        const auto at = rng.next_below(text.size());
        const auto len = rng.next_below(text.size() - at) + 1;
        text.insert(at, text.substr(at, len));
      }
      break;
    case 3:  // delete a slice
      {
        const auto at = rng.next_below(text.size());
        text.erase(at, rng.next_below(text.size() - at) + 1);
      }
      break;
    default:  // splice in a hostile token
      {
        static constexpr std::string_view kTokens[] = {
            "1e309", "-1", "NaN", "\"sites\":", "null", "1e-309",
            "99999999999999999999", "{}", "\\u0000", "\"schema\":"};
        const auto& token = kTokens[rng.next_below(10)];
        text.insert(rng.next_below(text.size()),
                    std::string(token.begin(), token.end()));
      }
      break;
  }
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20130613ull;
  const long rounds = argc > 2 ? std::strtol(argv[2], nullptr, 10) : 4000;

  feam::support::Rng rng(seed);
  long failures = 0;
  for (long round = 0; round < rounds; ++round) {
    std::string input;
    if (round % 8 == 7) {
      // Raw garbage, half of it opening like an object to reach the
      // key-validation paths.
      input.resize(rng.next_below(512));
      for (auto& c : input) {
        c = static_cast<char>(rng.next_below(256));
      }
      if (rng.chance(0.5) && !input.empty()) {
        input[0] = '{';
      }
    } else {
      // Structure-aware: start from a valid document, apply 1-3 mutations.
      input = seed_document(rng);
      const std::uint64_t steps = 1 + rng.next_below(3);
      for (std::uint64_t step = 0; step < steps; ++step) {
        input = mutate_once(std::move(input), rng);
      }
    }
    if (!check_parse(input)) {
      ++failures;
    }
  }
  if (failures != 0) {
    std::fprintf(stderr, "%ld of %ld inputs violated the parse invariant\n",
                 failures, rounds);
    return 1;
  }
  std::printf("fuzzed %ld inputs (seed %llu): parser total, all rejections "
              "spec-parse\n",
              rounds, static_cast<unsigned long long>(seed));
  return 0;
}

#endif  // FEAM_FUZZ_LIBFUZZER
