// The rolling-upgrade drift model: schedule determinism, fingerprint
// invalidation (every drift op is a system-path mutation, so the EDC memo
// can never serve a drifted site a stale scan), anchor exemption, and
// container unseal/mutate/reseal round-trips.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "fleet/drift.hpp"
#include "fleet/generate.hpp"
#include "fleet/spec.hpp"

namespace feam::fleet {
namespace {

FleetSpec drifty_spec() {
  FleetSpec spec;
  spec.name = "drift";
  spec.sites = 10;
  spec.workloads = 2;
  spec.drift_rate = 2.0;
  spec.container_rate = 0.5;  // exercise the unseal/reseal path
  return spec;
}

TEST(FleetDrift, ScheduleIsDeterministicPerRound) {
  Fleet a = generate_fleet(drifty_spec(), 5);
  Fleet b = generate_fleet(drifty_spec(), 5);

  for (int round = 0; round < 3; ++round) {
    const auto ops_a = apply_drift_round(a, round);
    const auto ops_b = apply_drift_round(b, round);
    ASSERT_EQ(ops_a.size(), ops_b.size()) << "round " << round;
    for (std::size_t i = 0; i < ops_a.size(); ++i) {
      EXPECT_EQ(ops_a[i].site_index, ops_b[i].site_index);
      EXPECT_EQ(ops_a[i].site, ops_b[i].site);
      EXPECT_EQ(ops_a[i].kind, ops_b[i].kind);
      EXPECT_EQ(ops_a[i].detail, ops_b[i].detail);
    }
  }
  // Distinct rounds draw distinct schedules (the round seeds the stream).
  Fleet c = generate_fleet(drifty_spec(), 5);
  const auto round0 = apply_drift_round(c, 0);
  Fleet d = generate_fleet(drifty_spec(), 5);
  const auto round1 = apply_drift_round(d, 1);
  bool differs = round0.size() != round1.size();
  for (std::size_t i = 0; !differs && i < round0.size(); ++i) {
    differs = round0[i].kind != round1[i].kind ||
              round0[i].site_index != round1[i].site_index ||
              round0[i].detail != round1[i].detail;
  }
  EXPECT_TRUE(differs);
}

TEST(FleetDrift, EveryDriftedSiteChangesFingerprintAnchorNever) {
  Fleet fleet = generate_fleet(drifty_spec(), 77);

  std::vector<std::uint64_t> before;
  for (const auto& s : fleet.sites) {
    before.push_back(s->discovery_fingerprint());
  }

  const auto ops = apply_drift_round(fleet, 0);
  ASSERT_FALSE(ops.empty());

  std::set<int> drifted;
  for (const auto& op : ops) {
    EXPECT_NE(op.site_index, 0) << "the anchor must never drift";
    EXPECT_EQ(op.site, fleet.sites[static_cast<std::size_t>(op.site_index)]->name);
    drifted.insert(op.site_index);
  }

  for (std::size_t i = 0; i < fleet.sites.size(); ++i) {
    const auto after = fleet.sites[i]->discovery_fingerprint();
    if (drifted.count(static_cast<int>(i)) != 0) {
      EXPECT_NE(after, before[i])
          << fleet.sites[i]->name
          << ": a drift op must move the discovery fingerprint, or the "
             "EDC memo would serve a stale scan";
    } else {
      EXPECT_EQ(after, before[i]) << fleet.sites[i]->name;
    }
  }
}

TEST(FleetDrift, ContainerSitesAreResealedAfterAnImageRebuild) {
  Fleet fleet = generate_fleet(drifty_spec(), 31);
  bool saw_container_drift = false;
  for (int round = 0; round < 4; ++round) {
    const auto ops = apply_drift_round(fleet, round);
    for (const auto& op : ops) {
      const auto i = static_cast<std::size_t>(op.site_index);
      if (!fleet.traits[i].container) continue;
      saw_container_drift = true;
      EXPECT_TRUE(fleet.sites[i]->vfs.sealed("/opt")) << op.site;
      EXPECT_TRUE(fleet.sites[i]->vfs.sealed("/usr")) << op.site;
    }
  }
  EXPECT_TRUE(saw_container_drift)
      << "spec with container_rate=0.5 and 4 rounds should drift at "
         "least one container site";
}

TEST(FleetDrift, ZeroRateIsANoOp) {
  FleetSpec spec = drifty_spec();
  spec.drift_rate = 0.0;
  Fleet fleet = generate_fleet(spec, 5);
  const auto before = fleet.sites[1]->discovery_fingerprint();
  EXPECT_TRUE(apply_drift_round(fleet, 0).empty());
  EXPECT_EQ(fleet.sites[1]->discovery_fingerprint(), before);
}

}  // namespace
}  // namespace feam::fleet
