// The fleet pipeline's determinism guarantee, with drift switched ON:
// the same (spec, seed) reproduces a byte-identical fleet manifest and a
// byte-identical readiness matrix at every job count. Drift rounds land
// at sequential barrier points between per-workload surveys, so the
// mutation schedule — and therefore every record — is independent of the
// survey's thread count. Registered in ctest next to the existing
// parallel-determinism suites.
#include <gtest/gtest.h>

#include <string>

#include "eval/fleet.hpp"
#include "fleet/generate.hpp"
#include "fleet/manifest.hpp"
#include "fleet/spec.hpp"

namespace feam::fleet {
namespace {

struct FleetRun {
  std::string manifest;
  std::string records;
  std::string matrix;
  std::size_t drift_ops = 0;
};

FleetRun run_once(int jobs, bool use_caches) {
  FleetSpec spec;
  spec.name = "det";
  spec.sites = 10;
  spec.workloads = 4;
  spec.drift_rate = 1.0;  // every round mutates ~1 path per site
  spec.container_rate = 0.4;
  spec.broken_module_rate = 0.3;
  spec.symlink_farm_rate = 0.4;

  Fleet fleet = generate_fleet(spec, 20130613);
  FleetRun out;
  out.manifest = fleet_manifest(fleet).dump(2);

  eval::FleetRunOptions options;
  options.jobs = jobs;
  options.use_caches = use_caches;
  const auto result = eval::run_fleet(fleet, options);
  out.records = result.records_jsonl();
  out.matrix = result.readiness_matrix();
  out.drift_ops = result.drift_log.size();
  return out;
}

TEST(FleetDeterminism, ManifestAndMatrixIdenticalAtEveryJobCount) {
  const FleetRun jobs1 = run_once(1, true);
  ASSERT_FALSE(jobs1.records.empty());
  ASSERT_GT(jobs1.drift_ops, 0u) << "drift must actually fire in this test";

  for (const int jobs : {4, 8}) {
    const FleetRun pooled = run_once(jobs, true);
    EXPECT_EQ(pooled.manifest, jobs1.manifest) << "jobs=" << jobs;
    EXPECT_EQ(pooled.records, jobs1.records) << "jobs=" << jobs;
    EXPECT_EQ(pooled.matrix, jobs1.matrix) << "jobs=" << jobs;
    EXPECT_EQ(pooled.drift_ops, jobs1.drift_ops) << "jobs=" << jobs;
  }

  // The memoization layer is transparent even while sites drift under
  // it: a drifted site's fingerprint moves, the EDC memo re-verifies,
  // and the uncached run agrees record for record — stale scans are
  // never served.
  const FleetRun uncached = run_once(1, false);
  EXPECT_EQ(uncached.records, jobs1.records);
  EXPECT_EQ(uncached.matrix, jobs1.matrix);
}

}  // namespace
}  // namespace feam::fleet
