// The fleet-spec parser contract: strict validation, default round-trip,
// and the taxonomy invariant (every rejection is kSpecParse / "parse")
// the fuzz harness leans on.
#include <gtest/gtest.h>

#include <string>

#include "fleet/spec.hpp"
#include "support/error.hpp"

namespace feam::fleet {
namespace {

TEST(FleetSpec, DefaultsRoundTripThroughJson) {
  const FleetSpec defaults;
  const auto text = fleet_spec_to_json(defaults).dump(2);
  const auto parsed = parse_fleet_spec(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(fleet_spec_to_json(parsed.value()).dump(2), text);
}

TEST(FleetSpec, EmptyObjectYieldsDefaults) {
  const auto parsed = parse_fleet_spec("{}");
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const FleetSpec defaults;
  EXPECT_EQ(fleet_spec_to_json(parsed.value()).dump(),
            fleet_spec_to_json(defaults).dump());
}

TEST(FleetSpec, ParsesEveryKnob) {
  const auto parsed = parse_fleet_spec(R"({
    "schema": "feam.fleet_spec/1",
    "name": "big-sweep",
    "sites": 500,
    "workloads": 100,
    "drift_rate": 0.25,
    "broken_module_rate": 0.5,
    "symlink_farm_rate": 0.1,
    "container_rate": 0.3,
    "ppc_rate": 0,
    "library_scale": 0.02,
    "max_stacks_per_site": 6
  })");
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const FleetSpec& spec = parsed.value();
  EXPECT_EQ(spec.name, "big-sweep");
  EXPECT_EQ(spec.sites, 500);
  EXPECT_EQ(spec.workloads, 100);
  EXPECT_DOUBLE_EQ(spec.drift_rate, 0.25);
  EXPECT_DOUBLE_EQ(spec.broken_module_rate, 0.5);
  EXPECT_DOUBLE_EQ(spec.symlink_farm_rate, 0.1);
  EXPECT_DOUBLE_EQ(spec.container_rate, 0.3);
  EXPECT_DOUBLE_EQ(spec.ppc_rate, 0.0);
  EXPECT_DOUBLE_EQ(spec.library_scale, 0.02);
  EXPECT_EQ(spec.max_stacks_per_site, 6);
}

// Every rejection carries the spec-parse taxonomy code — the property
// that lets the fuzzer assert "parse failure or success, nothing else".
void expect_spec_parse_rejection(const std::string& text) {
  const auto parsed = parse_fleet_spec(text);
  ASSERT_FALSE(parsed.ok()) << text;
  EXPECT_EQ(parsed.code(), support::ErrorCode::kSpecParse) << text;
  EXPECT_EQ(support::failure_category(parsed.code()), "parse") << text;
}

TEST(FleetSpec, RejectsMalformedInput) {
  expect_spec_parse_rejection("");
  expect_spec_parse_rejection("not json");
  expect_spec_parse_rejection("[1, 2]");
  expect_spec_parse_rejection("\"a string\"");
}

TEST(FleetSpec, RejectsUnknownKeys) {
  expect_spec_parse_rejection(R"({"sties": 5})");
  expect_spec_parse_rejection(R"({"sites": 5, "extra": true})");
}

TEST(FleetSpec, RejectsWrongTypesAndRanges) {
  expect_spec_parse_rejection(R"({"sites": "five"})");
  expect_spec_parse_rejection(R"({"sites": 2.5})");
  expect_spec_parse_rejection(R"({"sites": 0})");
  expect_spec_parse_rejection(R"({"sites": 100001})");
  expect_spec_parse_rejection(R"({"workloads": -3})");
  expect_spec_parse_rejection(R"({"max_stacks_per_site": 17})");
  expect_spec_parse_rejection(R"({"drift_rate": -0.1})");
  expect_spec_parse_rejection(R"({"drift_rate": 17})");
  expect_spec_parse_rejection(R"({"container_rate": 1.5})");
  expect_spec_parse_rejection(R"({"library_scale": 0})");
  expect_spec_parse_rejection(R"({"library_scale": 2})");
  expect_spec_parse_rejection(R"({"name": ""})");
  expect_spec_parse_rejection(R"({"name": "Has Spaces"})");
  expect_spec_parse_rejection(R"({"schema": "feam.fleet_spec/2"})");
}

}  // namespace
}  // namespace feam::fleet
