// Properties of the procedural fleet generator that must hold for every
// (spec, seed): generated sites are survey-safe (a full survey restores
// each site's discovery fingerprint exactly), repeated surveys of an
// unmutated fleet are byte-identical, and the manifest is a pure function
// of (spec, seed).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "eval/fleet.hpp"
#include "fleet/generate.hpp"
#include "fleet/manifest.hpp"
#include "fleet/spec.hpp"

namespace feam::fleet {
namespace {

FleetSpec archetype_heavy_spec() {
  FleetSpec spec;
  spec.name = "prop";
  spec.sites = 12;
  spec.workloads = 3;
  // Boost every archetype so a single small fleet exercises them all.
  spec.broken_module_rate = 0.5;
  spec.symlink_farm_rate = 0.5;
  spec.container_rate = 0.5;
  spec.ppc_rate = 0.2;
  return spec;
}

TEST(FleetGenerator, ShapeAndArchetypeCoverage) {
  const FleetSpec spec = archetype_heavy_spec();
  Fleet fleet = generate_fleet(spec, 1234);

  ASSERT_EQ(fleet.sites.size(), static_cast<std::size_t>(spec.sites));
  ASSERT_EQ(fleet.traits.size(), fleet.sites.size());
  ASSERT_EQ(fleet.workloads.size(), static_cast<std::size_t>(spec.workloads));
  ASSERT_EQ(fleet.build_stack.size(), fleet.workloads.size());

  // The anchor is a healthy build site: functional stacks, no archetypes.
  EXPECT_FALSE(fleet.anchor().stacks.empty());
  EXPECT_FALSE(fleet.traits[0].symlink_farm);
  EXPECT_FALSE(fleet.traits[0].container);
  EXPECT_FALSE(fleet.traits[0].broken_modules);

  int farms = 0, containers = 0, broken = 0;
  for (std::size_t i = 1; i < fleet.sites.size(); ++i) {
    const auto& s = *fleet.sites[i];
    EXPECT_FALSE(s.stacks.empty()) << s.name;
    EXPECT_EQ(s.name.rfind("prop-", 0), 0u) << s.name;
    farms += fleet.traits[i].symlink_farm ? 1 : 0;
    containers += fleet.traits[i].container ? 1 : 0;
    broken += fleet.traits[i].broken_modules ? 1 : 0;
    if (fleet.traits[i].container) {
      EXPECT_TRUE(s.vfs.sealed("/opt")) << s.name;
      EXPECT_TRUE(s.vfs.sealed("/usr")) << s.name;
    }
    if (fleet.traits[i].broken_modules) {
      EXPECT_FALSE(fleet.traits[i].broken_detail.empty()) << s.name;
    }
  }
  EXPECT_GT(farms, 0);
  EXPECT_GT(containers, 0);
  EXPECT_GT(broken, 0);
}

// Satellite 1, part 1: every generated site survives the survey
// round-trip — assessing a workload leaves the discovery fingerprint
// exactly where it was, even on container, link-farm, and broken-module
// sites.
TEST(FleetGenerator, SurveyRoundTripRestoresEveryFingerprint) {
  Fleet fleet = generate_fleet(archetype_heavy_spec(), 99);

  std::vector<std::uint64_t> before;
  before.reserve(fleet.sites.size());
  for (const auto& s : fleet.sites) {
    before.push_back(s->discovery_fingerprint());
  }

  eval::FleetRunOptions options;
  options.drift = false;
  const auto result = eval::run_fleet(fleet, options);
  ASSERT_EQ(result.pairs(), fleet.sites.size() * fleet.workloads.size());
  ASSERT_EQ(result.compile_failures, 0u);

  for (std::size_t i = 0; i < fleet.sites.size(); ++i) {
    EXPECT_EQ(fleet.sites[i]->discovery_fingerprint(), before[i])
        << fleet.sites[i]->name;
  }
}

// Satellite 1, part 2: with no intervening mutation, two consecutive
// surveys of the same fleet are bit-stable — same fingerprints observed,
// same records produced, on both the cached and uncached paths.
TEST(FleetGenerator, ConsecutiveSurveysAreBitStable) {
  Fleet fleet = generate_fleet(archetype_heavy_spec(), 7);
  eval::FleetRunOptions options;
  options.drift = false;

  const auto first = eval::run_fleet(fleet, options);
  const auto second = eval::run_fleet(fleet, options);
  ASSERT_FALSE(first.records_jsonl().empty());
  EXPECT_EQ(second.records_jsonl(), first.records_jsonl());

  options.use_caches = false;
  const auto uncached = eval::run_fleet(fleet, options);
  EXPECT_EQ(uncached.records_jsonl(), first.records_jsonl());
}

TEST(FleetGenerator, ManifestIsAPureFunctionOfSpecAndSeed) {
  const FleetSpec spec = archetype_heavy_spec();
  const Fleet a = generate_fleet(spec, 2026);
  const Fleet b = generate_fleet(spec, 2026);
  const auto dump_a = fleet_manifest(a).dump(2);
  EXPECT_EQ(dump_a, fleet_manifest(b).dump(2));

  // A different seed reshuffles the fleet (sanity that the seed matters).
  const Fleet c = generate_fleet(spec, 2027);
  EXPECT_NE(dump_a, fleet_manifest(c).dump(2));
}

}  // namespace
}  // namespace feam::fleet
