// The provenance determinism contract at fleet scale: every record in a
// surveyed fleet carries a schema-valid provenance section, and the full
// record stream — evidence included — is byte-identical across job counts
// and across cached/uncached twin runs. Stamps are content-derived, so
// neither thread scheduling nor memo hits may perturb a single byte.
#include <gtest/gtest.h>

#include <string>

#include "eval/fleet.hpp"
#include "fleet/generate.hpp"
#include "fleet/spec.hpp"
#include "report/run_record.hpp"
#include "support/strings.hpp"

namespace feam::fleet {
namespace {

std::string run_records(int jobs, bool use_caches) {
  FleetSpec spec;
  spec.name = "prov";
  spec.sites = 8;
  spec.workloads = 4;
  spec.drift_rate = 1.0;  // drift on: memo invalidation is in play
  spec.container_rate = 0.4;
  spec.broken_module_rate = 0.3;
  spec.symlink_farm_rate = 0.4;

  Fleet fleet = generate_fleet(spec, 20130613);
  eval::FleetRunOptions options;
  options.jobs = jobs;
  options.use_caches = use_caches;
  return eval::run_fleet(fleet, options).records_jsonl();
}

TEST(ProvenanceFleet, EveryRecordCarriesSchemaValidEvidence) {
  const std::string stream = run_records(4, true);
  std::size_t records = 0;
  for (const auto& line : support::split(stream, '\n')) {
    if (support::trim(line).empty()) continue;
    ++records;
    const auto parsed = support::Json::parse(line);
    ASSERT_TRUE(parsed.has_value());
    const auto record = report::RunRecord::from_json(*parsed);
    ASSERT_TRUE(record.has_value());
    EXPECT_FALSE(record->provenance.empty())
        << record->binary << " @ " << record->target_site;
    EXPECT_TRUE(record->provenance.validate().empty());
    EXPECT_EQ((*parsed)["provenance"].get_string("schema"),
              "feam.provenance/1");
  }
  EXPECT_EQ(records, 8u * 4u);
}

TEST(ProvenanceFleet, CachedAndUncachedStreamsByteIdenticalAcrossJobs) {
  const std::string jobs1 = run_records(1, true);
  ASSERT_FALSE(jobs1.empty());
  EXPECT_EQ(run_records(4, true), jobs1);
  EXPECT_EQ(run_records(8, true), jobs1);
  // The uncached twin replays no memo entries; synthesized and replayed
  // evidence must still land on the exact same bytes.
  EXPECT_EQ(run_records(1, false), jobs1);
  EXPECT_EQ(run_records(4, false), jobs1);
}

}  // namespace
}  // namespace feam::fleet
