// Fault injection on the Vfs: every fault kind, determinism per seed, the
// enable/disable bracket, and — load-bearing for the PR-3 caches — that a
// torn write leaves the tree, the generation counter, and file version
// stamps exactly as they were (no spurious cache invalidation).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "site/fault.hpp"
#include "site/vfs.hpp"

namespace feam::site {
namespace {

using support::Bytes;

Bytes payload(std::size_t n) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }
  return out;
}

std::shared_ptr<FaultInjector> make_injector(FaultInjector::Options options) {
  return std::make_shared<FaultInjector>(options);
}

// Injector limited to one read-fault kind so each kind is observable in
// isolation (rate 1.0: every enabled operation faults).
FaultInjector::Options only(bool enoent, bool eio, bool short_read,
                            bool torn_write, std::uint64_t seed = 42) {
  FaultInjector::Options options;
  options.seed = seed;
  options.rate = 1.0;
  options.enoent = enoent;
  options.eio = eio;
  options.short_read = short_read;
  options.torn_write = torn_write;
  return options;
}

TEST(VfsFault, NoInjectorIsPassthrough) {
  Vfs vfs;
  ASSERT_TRUE(vfs.write_file("/data/file", payload(64)));
  ASSERT_NE(vfs.read("/data/file"), nullptr);
  EXPECT_EQ(vfs.fault_injector(), nullptr);
}

TEST(VfsFault, DisabledInjectorIsPassthrough) {
  Vfs vfs;
  auto injector = make_injector(only(true, true, true, true));
  vfs.set_fault_injector(injector);  // never enabled
  ASSERT_TRUE(vfs.write_file("/data/file", payload(64)));
  const Bytes* read = vfs.read("/data/file");
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(*read, payload(64));
  EXPECT_EQ(injector->fault_count(), 0u);
}

TEST(VfsFault, ZeroRateNeverFaults) {
  Vfs vfs;
  FaultInjector::Options options;
  options.seed = 7;
  options.rate = 0.0;
  auto injector = make_injector(options);
  vfs.set_fault_injector(injector);
  injector->set_enabled(true);
  ASSERT_TRUE(vfs.write_file("/data/file", payload(16)));
  for (int i = 0; i < 50; ++i) {
    EXPECT_NE(vfs.read("/data/file"), nullptr);
  }
  EXPECT_EQ(injector->fault_count(), 0u);
}

TEST(VfsFault, EnoentHidesTheFileButDoesNotRemoveIt) {
  Vfs vfs;
  ASSERT_TRUE(vfs.write_file("/data/file", payload(64)));
  auto injector = make_injector(only(true, false, false, false));
  vfs.set_fault_injector(injector);
  injector->set_enabled(true);

  EXPECT_EQ(vfs.read("/data/file"), nullptr);
  ASSERT_EQ(injector->fault_count(), 1u);
  const auto log = injector->injected();
  EXPECT_EQ(log[0].kind, FaultKind::kEnoent);
  EXPECT_EQ(log[0].op, "read");
  EXPECT_EQ(log[0].path, "/data/file");

  // The node itself is intact: metadata queries don't inject, and a
  // fault-free read sees the original bytes.
  EXPECT_TRUE(vfs.exists("/data/file"));
  EXPECT_TRUE(vfs.is_file("/data/file"));
  injector->set_enabled(false);
  const Bytes* read = vfs.read("/data/file");
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(*read, payload(64));
}

TEST(VfsFault, EioOnRead) {
  Vfs vfs;
  ASSERT_TRUE(vfs.write_file("/data/file", payload(64)));
  auto injector = make_injector(only(false, true, false, false));
  vfs.set_fault_injector(injector);
  injector->set_enabled(true);
  EXPECT_EQ(vfs.read("/data/file"), nullptr);
  ASSERT_EQ(injector->fault_count(), 1u);
  EXPECT_EQ(injector->injected()[0].kind, FaultKind::kEio);
}

TEST(VfsFault, ShortReadReturnsAStrictPrefix) {
  Vfs vfs;
  const Bytes full = payload(256);
  ASSERT_TRUE(vfs.write_file("/data/file", full));
  auto injector = make_injector(only(false, false, true, false));
  vfs.set_fault_injector(injector);
  injector->set_enabled(true);

  const Bytes* first = vfs.read("/data/file");
  ASSERT_NE(first, nullptr);
  ASSERT_LT(first->size(), full.size());
  EXPECT_TRUE(std::equal(first->begin(), first->end(), full.begin()));
  EXPECT_EQ(injector->injected()[0].kind, FaultKind::kShortRead);

  // Earlier short-read buffers stay valid after further reads (pointer
  // stability), and the stored node is untouched.
  const Bytes* second = vfs.read("/data/file");
  ASSERT_NE(second, nullptr);
  EXPECT_TRUE(std::equal(first->begin(), first->end(), full.begin()));
  EXPECT_TRUE(std::equal(second->begin(), second->end(), full.begin()));
  injector->set_enabled(false);
  const Bytes* clean = vfs.read("/data/file");
  ASSERT_NE(clean, nullptr);
  EXPECT_EQ(*clean, full);
}

TEST(VfsFault, EioOnWriteWritesNothing) {
  Vfs vfs;
  ASSERT_TRUE(vfs.mkdirs("/data"));
  const std::uint64_t generation = vfs.generation();
  auto injector = make_injector(only(false, true, false, false));
  vfs.set_fault_injector(injector);
  injector->set_enabled(true);

  EXPECT_FALSE(vfs.write_file("/data/new", payload(32)));
  ASSERT_EQ(injector->fault_count(), 1u);
  EXPECT_EQ(injector->injected()[0].kind, FaultKind::kEio);
  EXPECT_EQ(injector->injected()[0].op, "write");
  EXPECT_FALSE(vfs.exists("/data/new"));
  EXPECT_EQ(vfs.generation(), generation);
}

TEST(VfsFault, TornWriteLeavesExistingContentUnchanged) {
  Vfs vfs;
  const Bytes original = payload(128);
  ASSERT_TRUE(vfs.write_file("/data/file", original));
  const std::uint64_t generation = vfs.generation();
  const auto version = vfs.file_version("/data/file");
  ASSERT_TRUE(version.has_value());

  auto injector = make_injector(only(false, false, false, true));
  vfs.set_fault_injector(injector);
  injector->set_enabled(true);
  EXPECT_FALSE(vfs.write_file("/data/file", payload(200)));
  ASSERT_EQ(injector->fault_count(), 1u);
  EXPECT_EQ(injector->injected()[0].kind, FaultKind::kTornWrite);
  injector->set_enabled(false);

  // Rolled back completely: bytes, generation, and version stamp are all
  // as before, so generation-keyed caches must not invalidate.
  const Bytes* read = vfs.read("/data/file");
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(*read, original);
  EXPECT_EQ(vfs.generation(), generation);
  EXPECT_EQ(vfs.file_version("/data/file"), version);
}

TEST(VfsFault, TornWriteOfNewFileLeavesNoNode) {
  Vfs vfs;
  ASSERT_TRUE(vfs.mkdirs("/data"));
  const std::uint64_t generation = vfs.generation();
  auto injector = make_injector(only(false, false, false, true));
  vfs.set_fault_injector(injector);
  injector->set_enabled(true);
  EXPECT_FALSE(vfs.write_file("/data/new", payload(32)));
  injector->set_enabled(false);
  EXPECT_FALSE(vfs.exists("/data/new"));
  EXPECT_EQ(vfs.generation(), generation);
  EXPECT_TRUE(vfs.list("/data").empty());
}

TEST(VfsFault, SameSeedSameDecisions) {
  const auto run = [](std::uint64_t seed) {
    Vfs vfs;
    vfs.write_file("/a", payload(64));
    vfs.write_file("/b", payload(64));
    FaultInjector::Options options;
    options.seed = seed;
    options.rate = 0.5;
    auto injector = make_injector(options);
    vfs.set_fault_injector(injector);
    injector->set_enabled(true);
    for (int i = 0; i < 40; ++i) {
      (void)vfs.read(i % 2 == 0 ? "/a" : "/b");
      (void)vfs.write_file("/c", payload(8));
    }
    std::vector<std::pair<FaultKind, std::string>> decisions;
    for (const auto& record : injector->injected()) {
      decisions.emplace_back(record.kind, record.op + ":" + record.path);
    }
    return decisions;
  };
  const auto first = run(1234);
  EXPECT_EQ(first, run(1234));
  EXPECT_NE(first, run(99999));  // a different seed faults differently
  EXPECT_FALSE(first.empty());
}

TEST(VfsFault, DisabledStretchDoesNotPerturbTheStream) {
  // The counter only advances while enabled, so a disabled stretch in the
  // middle leaves later decisions exactly as if it never happened.
  const auto run = [](bool with_disabled_stretch) {
    Vfs vfs;
    vfs.write_file("/a", payload(64));
    FaultInjector::Options options;
    options.seed = 7;
    options.rate = 0.5;
    auto injector = make_injector(options);
    vfs.set_fault_injector(injector);
    injector->set_enabled(true);
    for (int i = 0; i < 10; ++i) (void)vfs.read("/a");
    if (with_disabled_stretch) {
      injector->set_enabled(false);
      for (int i = 0; i < 25; ++i) (void)vfs.read("/a");
      injector->set_enabled(true);
    }
    for (int i = 0; i < 10; ++i) (void)vfs.read("/a");
    std::vector<FaultKind> kinds;
    for (const auto& record : injector->injected()) {
      kinds.push_back(record.kind);
    }
    return kinds;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(VfsFault, FaultCountDeltaIsolatesAnOperation) {
  // The pattern the caches rely on: snapshot fault_count, do one
  // operation, compare. rate=1.0 guarantees a delta on the faulted read;
  // a disabled injector guarantees none.
  Vfs vfs;
  vfs.write_file("/a", payload(64));
  auto injector = make_injector(only(true, true, true, true));
  vfs.set_fault_injector(injector);

  const std::uint64_t before_clean = injector->fault_count();
  (void)vfs.read("/a");
  EXPECT_EQ(injector->fault_count(), before_clean);

  injector->set_enabled(true);
  const std::uint64_t before_faulted = injector->fault_count();
  (void)vfs.read("/a");
  EXPECT_GT(injector->fault_count(), before_faulted);
}

TEST(VfsFault, KindNamesAreStable) {
  EXPECT_EQ(fault_kind_name(FaultKind::kNone), "none");
  EXPECT_EQ(fault_kind_name(FaultKind::kEnoent), "enoent");
  EXPECT_EQ(fault_kind_name(FaultKind::kEio), "eio");
  EXPECT_EQ(fault_kind_name(FaultKind::kShortRead), "short_read");
  EXPECT_EQ(fault_kind_name(FaultKind::kTornWrite), "torn_write");
}

}  // namespace
}  // namespace feam::site
