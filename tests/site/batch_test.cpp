#include "site/batch.hpp"

#include <gtest/gtest.h>

#include "support/strings.hpp"

namespace feam::site {
namespace {

BatchScript sample(BatchKind kind) {
  BatchScript s;
  s.kind = kind;
  s.job_name = "feam_target";
  s.queue = "debug";
  s.nodes = 2;
  s.tasks_per_node = 4;
  s.walltime_minutes = 5;
  s.commands = {"module load openmpi/1.4-intel",
                "mpiexec -n 8 /home/user/app"};
  return s;
}

class BatchDialectTest : public ::testing::TestWithParam<BatchKind> {};

TEST_P(BatchDialectTest, RenderParseRoundTrip) {
  const BatchScript original = sample(GetParam());
  const auto parsed = BatchScript::parse(original.render());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->kind, original.kind);
  EXPECT_EQ(parsed->job_name, original.job_name);
  EXPECT_EQ(parsed->queue, original.queue);
  EXPECT_EQ(parsed->total_tasks(), original.total_tasks());
  EXPECT_EQ(parsed->walltime_minutes, original.walltime_minutes);
  EXPECT_EQ(parsed->commands, original.commands);
}

INSTANTIATE_TEST_SUITE_P(AllDialects, BatchDialectTest,
                         ::testing::Values(BatchKind::kPbs, BatchKind::kSge,
                                           BatchKind::kSlurm),
                         [](const auto& param_info) {
                           return std::string(batch_name(param_info.param));
                         });

TEST(BatchScript, PbsDirectives) {
  const std::string text = sample(BatchKind::kPbs).render();
  EXPECT_TRUE(support::contains(text, "#PBS -N feam_target"));
  EXPECT_TRUE(support::contains(text, "#PBS -q debug"));
  EXPECT_TRUE(support::contains(text, "#PBS -l nodes=2:ppn=4"));
  EXPECT_TRUE(support::contains(text, "walltime=00:05:00"));
}

TEST(BatchScript, SgeDirectives) {
  const std::string text = sample(BatchKind::kSge).render();
  EXPECT_TRUE(support::contains(text, "#$ -pe mpi 8"));
  EXPECT_TRUE(support::contains(text, "#$ -l h_rt=00:05:00"));
}

TEST(BatchScript, SlurmDirectives) {
  const std::string text = sample(BatchKind::kSlurm).render();
  EXPECT_TRUE(support::contains(text, "#SBATCH --job-name=feam_target"));
  EXPECT_TRUE(support::contains(text, "#SBATCH --ntasks-per-node=4"));
}

TEST(BatchScript, ParseRejectsNonBatchText) {
  EXPECT_FALSE(BatchScript::parse("#!/bin/sh\necho hi\n").has_value());
  EXPECT_FALSE(BatchScript::parse("").has_value());
}

TEST(BatchScript, ParseRejectsMalformedDirectives) {
  EXPECT_FALSE(BatchScript::parse("#PBS \n").has_value());
  EXPECT_FALSE(BatchScript::parse("#PBS -l walltime=abc\n").has_value());
  EXPECT_FALSE(BatchScript::parse("#$ -pe mpi\n").has_value());
}

TEST(BatchScript, PlainCommentsAreNotCommands) {
  const auto parsed =
      BatchScript::parse("#PBS -q debug\n# just a note\n/bin/app\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->commands, (std::vector<std::string>{"/bin/app"}));
}

TEST(BatchScript, LongWalltimeFormatting) {
  BatchScript s = sample(BatchKind::kPbs);
  s.walltime_minutes = 135;
  EXPECT_TRUE(support::contains(s.render(), "walltime=02:15:00"));
  const auto parsed = BatchScript::parse(s.render());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->walltime_minutes, 135);
}

}  // namespace
}  // namespace feam::site
