#include "site/vfs.hpp"

#include <gtest/gtest.h>

namespace feam::site {
namespace {

TEST(VfsPaths, BasenameDirname) {
  EXPECT_EQ(Vfs::basename("/usr/lib64/libc.so.6"), "libc.so.6");
  EXPECT_EQ(Vfs::basename("plain"), "plain");
  EXPECT_EQ(Vfs::dirname("/usr/lib64/libc.so.6"), "/usr/lib64");
  EXPECT_EQ(Vfs::dirname("/top"), "/");
  EXPECT_EQ(Vfs::join("/usr/lib", "libm.so"), "/usr/lib/libm.so");
  EXPECT_EQ(Vfs::join("/", "etc"), "/etc");
}

TEST(Vfs, WriteAndRead) {
  Vfs vfs;
  ASSERT_TRUE(vfs.write_file("/a/b/c.txt", "hello"));
  ASSERT_TRUE(vfs.is_file("/a/b/c.txt"));
  ASSERT_TRUE(vfs.is_dir("/a/b"));
  ASSERT_TRUE(vfs.is_dir("/a"));
  const auto* content = vfs.read("/a/b/c.txt");
  ASSERT_NE(content, nullptr);
  EXPECT_EQ(std::string(content->begin(), content->end()), "hello");
  EXPECT_EQ(vfs.read("/a/b/missing"), nullptr);
  EXPECT_EQ(vfs.read("/a/b"), nullptr);  // directory, not a file
}

TEST(Vfs, OverwriteReplacesContent) {
  Vfs vfs;
  vfs.write_file("/f", "one");
  vfs.write_file("/f", "two");
  const auto* content = vfs.read("/f");
  ASSERT_NE(content, nullptr);
  EXPECT_EQ(std::string(content->begin(), content->end()), "two");
}

TEST(Vfs, MkdirsThroughFileFails) {
  Vfs vfs;
  vfs.write_file("/a/file", "x");
  EXPECT_FALSE(vfs.write_file("/a/file/sub", "y"));
  EXPECT_FALSE(vfs.mkdirs("/a/file/sub"));
}

TEST(Vfs, SymlinkChainsResolve) {
  // The libmpi.so -> libmpi.so.0 -> libmpi.so.0.0.2 convention.
  Vfs vfs;
  vfs.write_file("/opt/mpi/lib/libmpi.so.0.0.2", "elf");
  vfs.symlink("/opt/mpi/lib/libmpi.so.0", "libmpi.so.0.0.2");
  vfs.symlink("/opt/mpi/lib/libmpi.so", "libmpi.so.0");

  EXPECT_TRUE(vfs.is_file("/opt/mpi/lib/libmpi.so"));
  EXPECT_TRUE(vfs.is_symlink("/opt/mpi/lib/libmpi.so"));
  EXPECT_FALSE(vfs.is_symlink("/opt/mpi/lib/libmpi.so.0.0.2"));
  EXPECT_EQ(vfs.resolve("/opt/mpi/lib/libmpi.so"),
            "/opt/mpi/lib/libmpi.so.0.0.2");
  ASSERT_NE(vfs.read("/opt/mpi/lib/libmpi.so.0"), nullptr);
}

TEST(Vfs, AbsoluteSymlinkTargets) {
  Vfs vfs;
  vfs.write_file("/real/file", "x");
  vfs.symlink("/alias/link", "/real/file");
  EXPECT_EQ(vfs.resolve("/alias/link"), "/real/file");
  EXPECT_NE(vfs.read("/alias/link"), nullptr);
}

TEST(Vfs, DanglingSymlink) {
  Vfs vfs;
  vfs.symlink("/lib/libgone.so.1", "libgone.so.1.0.0");
  EXPECT_TRUE(vfs.is_symlink("/lib/libgone.so.1"));
  EXPECT_FALSE(vfs.exists("/lib/libgone.so.1"));  // follows to nothing
  EXPECT_EQ(vfs.read("/lib/libgone.so.1"), nullptr);
  EXPECT_FALSE(vfs.resolve("/lib/libgone.so.1").has_value());
}

TEST(Vfs, SymlinkLoopIsDetected) {
  Vfs vfs;
  vfs.symlink("/a/x", "y");
  vfs.symlink("/a/y", "x");
  EXPECT_FALSE(vfs.exists("/a/x"));
  EXPECT_FALSE(vfs.resolve("/a/x").has_value());
}

TEST(Vfs, SymlinkedDirectoryTraversal) {
  Vfs vfs;
  vfs.write_file("/opt/pkg-1.4/lib/libx.so", "x");
  vfs.symlink("/opt/pkg", "pkg-1.4");
  EXPECT_TRUE(vfs.is_file("/opt/pkg/lib/libx.so"));
}

TEST(Vfs, RemoveFileAndTree) {
  Vfs vfs;
  vfs.write_file("/d/one", "1");
  vfs.write_file("/d/sub/two", "2");
  EXPECT_TRUE(vfs.remove("/d/one"));
  EXPECT_FALSE(vfs.exists("/d/one"));
  EXPECT_FALSE(vfs.remove("/d/one"));  // already gone
  EXPECT_TRUE(vfs.remove("/d"));       // recursive
  EXPECT_FALSE(vfs.exists("/d/sub/two"));
}

TEST(Vfs, ListSorted) {
  Vfs vfs;
  vfs.write_file("/dir/zeta", "");
  vfs.write_file("/dir/alpha", "");
  vfs.mkdirs("/dir/middle");
  EXPECT_EQ(vfs.list("/dir"),
            (std::vector<std::string>{"alpha", "middle", "zeta"}));
  EXPECT_TRUE(vfs.list("/nonexistent").empty());
}

TEST(Vfs, FindByPredicate) {
  Vfs vfs;
  vfs.write_file("/usr/lib/libm.so.6", "");
  vfs.write_file("/usr/lib/sub/libmpi.so.0", "");
  vfs.write_file("/usr/share/doc", "");
  // ".so" filter keeps the /usr/lib directory itself out of the hits.
  const auto hits = vfs.find("/usr", [](std::string_view name) {
    return name.substr(0, 3) == "lib" &&
           name.find(".so") != std::string_view::npos;
  });
  EXPECT_EQ(hits, (std::vector<std::string>{"/usr/lib/libm.so.6",
                                            "/usr/lib/sub/libmpi.so.0"}));
}

TEST(Vfs, FindDoesNotDescendSymlinkedDirs) {
  Vfs vfs;
  vfs.write_file("/real/liba.so", "");
  vfs.symlink("/scan/link", "/real");
  const auto hits =
      vfs.find("/scan", [](std::string_view name) { return name == "liba.so"; });
  EXPECT_TRUE(hits.empty());
}

TEST(Vfs, LocateSubstring) {
  Vfs vfs;
  vfs.write_file("/opt/openmpi-1.4/lib/libmpi.so.0", "");
  vfs.write_file("/usr/lib64/libmpich.so.1.2", "");
  const auto hits = vfs.locate("libmpi");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], "/opt/openmpi-1.4/lib/libmpi.so.0");
  EXPECT_EQ(hits[1], "/usr/lib64/libmpich.so.1.2");
}

TEST(Vfs, Accounting) {
  Vfs vfs;
  vfs.write_file("/a/one", std::string(100, 'x'));
  vfs.write_file("/a/b/two", std::string(50, 'y'));
  vfs.symlink("/a/link", "one");  // links own no bytes
  EXPECT_EQ(vfs.total_file_bytes(), 150u);
  EXPECT_EQ(vfs.file_count(), 2u);
}

}  // namespace
}  // namespace feam::site
