#include "site/site.hpp"

#include <gtest/gtest.h>

#include "support/version.hpp"

namespace feam::site {
namespace {

using support::Version;

Site make_test_site() {
  Site s;
  s.name = "testsite";
  s.isa = elf::Isa::kX86_64;
  MpiStackInstall stack;
  stack.impl = MpiImpl::kOpenMpi;
  stack.version = Version::of("1.4");
  stack.compiler = CompilerFamily::kIntel;
  stack.compiler_version = Version::of("12");
  stack.prefix = "/opt/openmpi-1.4-intel";
  s.stacks.push_back(stack);
  ModuleFile module;
  module.name = "openmpi/1.4-intel";
  module.prepends = {{"PATH", "/opt/openmpi-1.4-intel/bin"},
                     {"LD_LIBRARY_PATH", "/opt/openmpi-1.4-intel/lib"}};
  s.module_files.push_back(module);
  return s;
}

TEST(MpiStackInstall, SlugAndDisplay) {
  const Site s = make_test_site();
  EXPECT_EQ(s.stacks[0].slug(), "openmpi-1.4-intel");
  EXPECT_EQ(s.stacks[0].display(), "Open MPI v1.4 (i)");
}

TEST(Site, DefaultLibDirsByBitness) {
  Site s;
  s.isa = elf::Isa::kX86_64;
  EXPECT_EQ(s.default_lib_dirs(64)[0], "/lib64");
  EXPECT_EQ(s.default_lib_dirs(32)[0], "/lib");
  s.isa = elf::Isa::kX86;
  EXPECT_EQ(s.default_lib_dirs(32)[0], "/lib");
}

TEST(Site, ModuleLoadAppliesPrepends) {
  Site s = make_test_site();
  s.env.set("PATH", "/usr/bin");
  ASSERT_TRUE(s.load_module("openmpi/1.4-intel"));
  EXPECT_EQ(s.env.get("PATH"), "/opt/openmpi-1.4-intel/bin:/usr/bin");
  EXPECT_EQ(s.env.get("LD_LIBRARY_PATH"), "/opt/openmpi-1.4-intel/lib");
  EXPECT_EQ(s.loaded_modules(),
            (std::vector<std::string>{"openmpi/1.4-intel"}));
  EXPECT_FALSE(s.load_module("nonexistent/1.0"));
}

TEST(Site, UnloadAllModulesRestoresEnv) {
  Site s = make_test_site();
  s.env.set("PATH", "/usr/bin");
  s.env.set("LD_LIBRARY_PATH", "/home/user/own");
  s.load_module("openmpi/1.4-intel");
  s.unload_all_modules();
  EXPECT_EQ(s.env.get("PATH"), "/usr/bin");
  // User's own entries survive; module entries are gone.
  EXPECT_EQ(s.env.get("LD_LIBRARY_PATH"), "/home/user/own");
  EXPECT_TRUE(s.loaded_modules().empty());
}

TEST(Site, SelectedStackFollowsLdLibraryPath) {
  Site s = make_test_site();
  EXPECT_EQ(s.selected_stack(), nullptr);
  s.load_module("openmpi/1.4-intel");
  ASSERT_NE(s.selected_stack(), nullptr);
  EXPECT_EQ(s.selected_stack()->slug(), "openmpi-1.4-intel");
}

TEST(Site, FindStackByImplAndCompiler) {
  const Site s = make_test_site();
  EXPECT_NE(s.find_stack(MpiImpl::kOpenMpi, CompilerFamily::kIntel), nullptr);
  EXPECT_EQ(s.find_stack(MpiImpl::kOpenMpi, CompilerFamily::kGnu), nullptr);
  EXPECT_EQ(s.find_stack(MpiImpl::kMpich2, CompilerFamily::kIntel), nullptr);
}

TEST(Site, StackForModuleName) {
  const Site s = make_test_site();
  EXPECT_NE(s.stack_for_module("openmpi/1.4-intel"), nullptr);
  EXPECT_EQ(s.stack_for_module("mvapich2/1.7-intel"), nullptr);
}

TEST(Site, AvailableModulesSorted) {
  Site s = make_test_site();
  ModuleFile extra;
  extra.name = "mpich2/1.4-gnu";
  s.module_files.push_back(extra);
  EXPECT_EQ(s.available_modules(),
            (std::vector<std::string>{"mpich2/1.4-gnu", "openmpi/1.4-intel"}));
}

TEST(Ids, NamesAndLetters) {
  EXPECT_STREQ(mpi_impl_name(MpiImpl::kMvapich2), "MVAPICH2");
  EXPECT_STREQ(mpi_impl_slug(MpiImpl::kOpenMpi), "openmpi");
  EXPECT_EQ(compiler_letter(CompilerFamily::kGnu), 'g');
  EXPECT_EQ(compiler_letter(CompilerFamily::kIntel), 'i');
  EXPECT_EQ(compiler_letter(CompilerFamily::kPgi), 'p');
  EXPECT_STREQ(user_env_tool_name(UserEnvTool::kModules),
               "Environment Modules");
  EXPECT_STREQ(batch_name(BatchKind::kSlurm), "SLURM");
  EXPECT_STREQ(interconnect_name(Interconnect::kInfiniband), "InfiniBand");
}

}  // namespace
}  // namespace feam::site
