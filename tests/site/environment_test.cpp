#include "site/environment.hpp"

#include <gtest/gtest.h>

namespace feam::site {
namespace {

TEST(Environment, SetGetUnset) {
  Environment env;
  EXPECT_FALSE(env.has("PATH"));
  env.set("PATH", "/usr/bin");
  EXPECT_TRUE(env.has("PATH"));
  EXPECT_EQ(env.get("PATH"), "/usr/bin");
  env.unset("PATH");
  EXPECT_FALSE(env.get("PATH").has_value());
  env.unset("PATH");  // idempotent
}

TEST(Environment, ListParsing) {
  Environment env;
  env.set("LD_LIBRARY_PATH", "/a:/b::/c");
  EXPECT_EQ(env.get_list("LD_LIBRARY_PATH"),
            (std::vector<std::string>{"/a", "/b", "/c"}));  // empties dropped
  EXPECT_TRUE(env.get_list("MISSING").empty());
}

TEST(Environment, PrependOrdering) {
  Environment env;
  env.set("PATH", "/usr/bin:/bin");
  env.prepend_to_list("PATH", "/opt/mpi/bin");
  EXPECT_EQ(env.get("PATH"), "/opt/mpi/bin:/usr/bin:/bin");
  // Prepending to an unset variable creates it without a trailing colon.
  env.prepend_to_list("NEW", "/x");
  EXPECT_EQ(env.get("NEW"), "/x");
}

TEST(Environment, AppendOrdering) {
  Environment env;
  env.append_to_list("PATH", "/first");
  env.append_to_list("PATH", "/second");
  EXPECT_EQ(env.get("PATH"), "/first:/second");
}

TEST(Environment, PathHelpers) {
  Environment env;
  env.set("PATH", "/usr/bin");
  env.set("LD_LIBRARY_PATH", "/opt/mpi/lib:/opt/intel/lib");
  EXPECT_EQ(env.path().size(), 1u);
  EXPECT_EQ(env.ld_library_path().size(), 2u);
  EXPECT_EQ(env.ld_library_path()[0], "/opt/mpi/lib");
}

}  // namespace
}  // namespace feam::site
