// The read-only overlay (container-image semantics): sealed subtrees
// reject every mutation without moving the generation counters, reads
// pass through untouched, and unseal restores full writability.
#include <gtest/gtest.h>

#include "site/vfs.hpp"

namespace feam::site {
namespace {

Vfs image_tree() {
  Vfs vfs;
  vfs.mkdirs("/opt/openmpi-1.4.3/lib");
  vfs.write_file("/opt/openmpi-1.4.3/lib/libmpi.so.0", "mpi");
  vfs.write_file("/usr/lib64/libc.so.6", "libc");
  vfs.mkdirs("/home/user");
  return vfs;
}

TEST(VfsOverlay, SealedWritesFailWithoutBumpingGenerations) {
  Vfs vfs = image_tree();
  ASSERT_TRUE(vfs.seal("/opt"));
  const auto gen = vfs.generation();
  const auto system_gen = vfs.system_generation();

  EXPECT_FALSE(vfs.write_file("/opt/new.txt", "x"));
  EXPECT_FALSE(vfs.write_file("/opt/openmpi-1.4.3/lib/libmpi.so.0", "evil"));
  EXPECT_FALSE(vfs.mkdirs("/opt/other/lib"));
  EXPECT_FALSE(vfs.symlink("/opt/link", "/usr/lib64"));
  EXPECT_FALSE(vfs.remove("/opt/openmpi-1.4.3"));

  EXPECT_EQ(vfs.generation(), gen);
  EXPECT_EQ(vfs.system_generation(), system_gen);
  // The overwrite attempt left the original content in place.
  const auto* bytes = vfs.read("/opt/openmpi-1.4.3/lib/libmpi.so.0");
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(std::string(bytes->begin(), bytes->end()), "mpi");
}

TEST(VfsOverlay, ReadsAndOutsideWritesAreUnaffected) {
  Vfs vfs = image_tree();
  ASSERT_TRUE(vfs.seal("/opt"));

  EXPECT_TRUE(vfs.is_dir("/opt/openmpi-1.4.3/lib"));
  EXPECT_NE(vfs.read("/opt/openmpi-1.4.3/lib/libmpi.so.0"), nullptr);
  EXPECT_FALSE(vfs.list("/opt").empty());
  EXPECT_FALSE(vfs.locate("libmpi").empty());

  // The writable upper layer: everything not under a seal.
  EXPECT_TRUE(vfs.write_file("/home/user/job.sh", "#!/bin/sh"));
  EXPECT_TRUE(vfs.write_file("/etc/motd", "hi"));
  EXPECT_TRUE(vfs.remove("/etc/motd"));
}

TEST(VfsOverlay, RemovingAnAncestorOfASealIsBlocked) {
  Vfs vfs = image_tree();
  ASSERT_TRUE(vfs.seal("/opt/openmpi-1.4.3/lib"));
  // Removing /opt or the stack directory would take the sealed subtree
  // with it; both must fail. A sibling under /opt stays writable.
  EXPECT_FALSE(vfs.remove("/opt"));
  EXPECT_FALSE(vfs.remove("/opt/openmpi-1.4.3"));
  EXPECT_TRUE(vfs.is_dir("/opt/openmpi-1.4.3/lib"));
  EXPECT_TRUE(vfs.write_file("/opt/openmpi-1.4.3/README", "ok"));
}

TEST(VfsOverlay, UnsealRestoresWritability) {
  Vfs vfs = image_tree();
  ASSERT_TRUE(vfs.seal("/usr"));
  EXPECT_FALSE(vfs.write_file("/usr/lib64/new.so", "x"));
  ASSERT_TRUE(vfs.unseal("/usr"));
  EXPECT_TRUE(vfs.write_file("/usr/lib64/new.so", "x"));
  EXPECT_TRUE(vfs.remove("/usr/lib64/libc.so.6"));
}

TEST(VfsOverlay, SealBookkeeping) {
  Vfs vfs = image_tree();
  EXPECT_FALSE(vfs.sealed("/opt"));
  EXPECT_TRUE(vfs.seal("/usr"));
  EXPECT_TRUE(vfs.seal("/opt/"));  // trailing slash normalizes away
  EXPECT_FALSE(vfs.seal("/opt")) << "double-seal must report failure";

  EXPECT_TRUE(vfs.sealed("/opt"));
  EXPECT_TRUE(vfs.sealed("/opt/openmpi-1.4.3/lib/libmpi.so.0"));
  EXPECT_FALSE(vfs.sealed("/optimized"))
      << "prefix match must stop at path component boundaries";
  EXPECT_FALSE(vfs.sealed("/home/user"));

  const auto prefixes = vfs.sealed_prefixes();
  ASSERT_EQ(prefixes.size(), 2u);
  EXPECT_EQ(prefixes[0], "/opt");
  EXPECT_EQ(prefixes[1], "/usr");

  EXPECT_FALSE(vfs.unseal("/tmp")) << "unseal of an unsealed prefix fails";
  EXPECT_TRUE(vfs.unseal("/opt"));
  EXPECT_FALSE(vfs.sealed("/opt/openmpi-1.4.3"));
}

TEST(VfsOverlay, SealsSurviveMoves) {
  Vfs vfs = image_tree();
  ASSERT_TRUE(vfs.seal("/opt"));
  Vfs moved = std::move(vfs);
  EXPECT_TRUE(moved.sealed("/opt"));
  EXPECT_FALSE(moved.write_file("/opt/x", "x"));
}

}  // namespace
}  // namespace feam::site
