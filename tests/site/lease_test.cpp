// Site leases and the state counters the caches key on: mutual exclusion,
// pair-lease ordering, generation bumps, and VFS write stamps.
#include "site/lease.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "toolchain/testbed.hpp"

namespace feam::site {
namespace {

TEST(SiteLease, IdsAreDistinctPerSite) {
  auto a = toolchain::make_site("india");
  auto b = toolchain::make_site("fir");
  EXPECT_NE(a->lease_id(), b->lease_id());
}

TEST(SiteLease, MutuallyExcludesWorkers) {
  auto s = toolchain::make_site("india");
  std::atomic<int> inside{0};
  std::atomic<bool> overlapped{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        SiteLease lease(*s);
        if (inside.fetch_add(1, std::memory_order_acq_rel) != 0) {
          overlapped.store(true, std::memory_order_relaxed);
        }
        inside.fetch_sub(1, std::memory_order_acq_rel);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_FALSE(overlapped.load());
}

TEST(SitePairLease, AcquiresInLeaseIdOrderFromEitherArgumentOrder) {
  // Two threads repeatedly lock the same pair in opposite argument order.
  // Without the lower-lease_id-first discipline this deadlocks; with it,
  // the loop terminates.
  auto a = toolchain::make_site("india");
  auto b = toolchain::make_site("fir");
  std::atomic<int> done{0};
  std::thread t1([&] {
    for (int i = 0; i < 500; ++i) {
      SitePairLease lease(*a, *b);
    }
    done.fetch_add(1);
  });
  std::thread t2([&] {
    for (int i = 0; i < 500; ++i) {
      SitePairLease lease(*b, *a);
    }
    done.fetch_add(1);
  });
  t1.join();
  t2.join();
  EXPECT_EQ(done.load(), 2);
}

TEST(SiteLease, UncontendedAcquireRecordsZeroWait) {
  auto s = toolchain::make_site("india");
  const auto global_before = obs::histogram("lease.wait_ns").snapshot();
  const auto site_before =
      obs::histogram("lease.wait_ns", obs::Labels{.site = s->name}).snapshot();
  { SiteLease lease(*s); }
  const auto global_after = obs::histogram("lease.wait_ns").snapshot();
  const auto site_after =
      obs::histogram("lease.wait_ns", obs::Labels{.site = s->name}).snapshot();
  // One sample lands in both histograms, and the fast path charges 0 wait.
  EXPECT_EQ(global_after.count, global_before.count + 1);
  EXPECT_EQ(site_after.count, site_before.count + 1);
  EXPECT_EQ(global_after.sum, global_before.sum);
  EXPECT_EQ(site_after.sum, site_before.sum);
}

TEST(SiteLease, ContendedAcquireRecordsTheBlockingWait) {
  auto s = toolchain::make_site("india");
  const auto before =
      obs::histogram("lease.wait_ns", obs::Labels{.site = s->name}).snapshot();
  std::atomic<bool> holder_ready{false};
  std::thread holder([&] {
    SiteLease lease(*s);
    holder_ready.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  while (!holder_ready.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  { SiteLease lease(*s); }  // blocks until the holder releases
  holder.join();
  const auto after =
      obs::histogram("lease.wait_ns", obs::Labels{.site = s->name}).snapshot();
  EXPECT_EQ(after.count, before.count + 2);
  // The waiter blocked for most of the holder's 20ms sleep.
  EXPECT_GE(after.sum - before.sum, 5'000'000u);
  EXPECT_GE(after.max, 5'000'000u);
}

TEST(SiteState, GenerationBumpsOnEveryMutationKind) {
  auto s = toolchain::make_site("india");

  std::uint64_t g = s->state_generation();
  s->vfs.write_file("/tmp/probe.txt", "x");
  EXPECT_GT(s->state_generation(), g);

  g = s->state_generation();
  s->env.set("FEAM_TEST", "1");
  EXPECT_GT(s->state_generation(), g);

  const auto modules = s->available_modules();
  ASSERT_FALSE(modules.empty());
  g = s->state_generation();
  s->load_module(modules.front());
  EXPECT_GT(s->state_generation(), g);

  g = s->state_generation();
  s->unload_all_modules();
  EXPECT_GT(s->state_generation(), g);
}

TEST(SiteState, FileVersionStampsTrackWrites) {
  auto s = toolchain::make_site("india");
  Vfs& vfs = s->vfs;

  EXPECT_FALSE(vfs.file_version("/no/such/file").has_value());
  EXPECT_FALSE(vfs.file_version("/tmp").has_value());  // directory

  vfs.write_file("/tmp/lib.so", "v1");
  const auto v1 = vfs.file_version("/tmp/lib.so");
  ASSERT_TRUE(v1.has_value());

  // Unrelated writes do not move the file's own stamp.
  vfs.write_file("/tmp/other.so", "x");
  EXPECT_EQ(vfs.file_version("/tmp/lib.so"), v1);

  // Rewriting the file does, even with identical byte content.
  vfs.write_file("/tmp/lib.so", "v1");
  const auto v2 = vfs.file_version("/tmp/lib.so");
  ASSERT_TRUE(v2.has_value());
  EXPECT_GT(*v2, *v1);
}

TEST(SiteState, FileVersionFollowsSymlinks) {
  auto s = toolchain::make_site("india");
  Vfs& vfs = s->vfs;
  vfs.write_file("/tmp/real_a.so", "a");
  vfs.write_file("/tmp/real_b.so", "b");
  ASSERT_TRUE(vfs.symlink("/tmp/link.so", "/tmp/real_a.so"));

  EXPECT_EQ(vfs.file_version("/tmp/link.so"), vfs.file_version("/tmp/real_a.so"));

  // Retargeting the symlink changes the observed version without touching
  // either file — the staleness check the resolver cache depends on.
  ASSERT_TRUE(vfs.remove("/tmp/link.so"));
  ASSERT_TRUE(vfs.symlink("/tmp/link.so", "/tmp/real_b.so"));
  EXPECT_EQ(vfs.file_version("/tmp/link.so"), vfs.file_version("/tmp/real_b.so"));
  EXPECT_NE(vfs.file_version("/tmp/real_a.so"), vfs.file_version("/tmp/real_b.so"));
}

TEST(SubtreeLeases, SamePrefixMutuallyExcludes) {
  auto s = toolchain::make_site("india");
  std::atomic<int> inside{0};
  std::atomic<bool> overlapped{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        SubtreeLeases lease({{s.get(), "/home/user/job"}});
        if (inside.fetch_add(1, std::memory_order_acq_rel) != 0) {
          overlapped.store(true, std::memory_order_relaxed);
        }
        inside.fetch_sub(1, std::memory_order_acq_rel);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_FALSE(overlapped.load());
}

TEST(SubtreeLeases, DisjointPrefixesOnOneSiteDoNotExclude) {
  // The point of subtree granularity: a worker holding one prefix never
  // blocks a worker on a different prefix of the same site.
  auto s = toolchain::make_site("india");
  std::atomic<bool> holder_ready{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    SubtreeLeases lease({{s.get(), "/home/user/job_a"}});
    holder_ready.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  while (!holder_ready.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  {
    // Must acquire immediately even though job_a is held; if subtree
    // leases shared one mutex this would deadlock (holder never releases
    // until we set the flag below).
    SubtreeLeases lease({{s.get(), "/home/user/job_b"}});
  }
  release.store(true, std::memory_order_release);
  holder.join();
}

TEST(SubtreeLeases, OppositeArgumentOrdersDoNotDeadlock) {
  // Two threads repeatedly lock the same two subtrees (across two sites)
  // in opposite argument order; the global (lease_id, prefix) sort makes
  // the acquisition order identical in both.
  auto a = toolchain::make_site("india");
  auto b = toolchain::make_site("fir");
  std::atomic<int> done{0};
  std::thread t1([&] {
    for (int i = 0; i < 500; ++i) {
      SubtreeLeases lease(
          {{a.get(), "/home/user/x"}, {b.get(), "/home/user/y"}});
    }
    done.fetch_add(1);
  });
  std::thread t2([&] {
    for (int i = 0; i < 500; ++i) {
      SubtreeLeases lease(
          {{b.get(), "/home/user/y"}, {a.get(), "/home/user/x"}});
    }
    done.fetch_add(1);
  });
  t1.join();
  t2.join();
  EXPECT_EQ(done.load(), 2);
}

TEST(SubtreeLeases, DuplicateSubtreesCollapseToOneAcquisition) {
  // A duplicated entry must not self-deadlock on the second acquisition
  // of the same (non-recursive) mutex.
  auto s = toolchain::make_site("india");
  SubtreeLeases lease({{s.get(), "/home/user/job"},
                       {s.get(), "/home/user/job"},
                       {s.get(), "/home/user/job"}});
}

TEST(ShellSession, EnvironmentEditsStayPrivateToTheSessionThread) {
  auto s = toolchain::make_site("india");
  std::atomic<bool> session_ready{false};
  std::atomic<bool> base_checked{false};
  std::thread worker([&] {
    ShellSession shell(*s);
    s->env.set("FEAM_SESSION_VAR", "private");
    EXPECT_EQ(s->env.get("FEAM_SESSION_VAR"), "private");
    session_ready.store(true, std::memory_order_release);
    while (!base_checked.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  while (!session_ready.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // This thread has no session on the site, so it reads base state — the
  // worker's edit must be invisible while its session is open...
  EXPECT_FALSE(s->env.has("FEAM_SESSION_VAR"));
  base_checked.store(true, std::memory_order_release);
  worker.join();
  // ...and gone for good once the session ends.
  EXPECT_FALSE(s->env.has("FEAM_SESSION_VAR"));
}

TEST(ShellSession, ModuleLoadsStayPrivateAndFingerprintIsRestored) {
  auto s = toolchain::make_site("india");
  const auto modules = s->available_modules();
  ASSERT_FALSE(modules.empty());
  const std::uint64_t base_fingerprint = s->discovery_fingerprint();
  std::uint64_t inside_fingerprint = 0;
  {
    ShellSession shell(*s);
    ASSERT_TRUE(s->load_module(modules.front()));
    EXPECT_EQ(s->loaded_modules().size(), 1u);
    inside_fingerprint = s->discovery_fingerprint();
  }
  // The load changed what discovery would see inside the session, but the
  // base site (and hence the EDC memo key) is untouched by the session.
  EXPECT_NE(inside_fingerprint, base_fingerprint);
  EXPECT_TRUE(s->loaded_modules().empty());
  EXPECT_EQ(s->discovery_fingerprint(), base_fingerprint);
}

TEST(ShellSession, ConcurrentSessionsOnOneSiteSeeTheirOwnModules) {
  auto s = toolchain::make_site("india");
  const auto modules = s->available_modules();
  ASSERT_GE(modules.size(), 2u);
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&, t] {
      const std::string mine = modules[static_cast<std::size_t>(t)];
      for (int i = 0; i < 200; ++i) {
        ShellSession shell(*s);
        if (!s->load_module(mine)) {
          mismatch.store(true);
          continue;
        }
        const auto& loaded = s->loaded_modules();
        if (loaded.size() != 1 || loaded.front() != mine) {
          mismatch.store(true);
        }
        s->unload_all_modules();
        if (!s->loaded_modules().empty()) mismatch.store(true);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_FALSE(mismatch.load());
  EXPECT_TRUE(s->loaded_modules().empty());
}

TEST(ShellSession, NestedSessionsStackLikeSubshells) {
  auto s = toolchain::make_site("india");
  s->env.set("FEAM_OUTER", "base");
  {
    ShellSession outer(*s);
    s->env.set("FEAM_OUTER", "outer");
    {
      ShellSession inner(*s);
      EXPECT_EQ(s->env.get("FEAM_OUTER"), "outer");  // copy-on-begin
      s->env.set("FEAM_OUTER", "inner");
      EXPECT_EQ(s->env.get("FEAM_OUTER"), "inner");
    }
    EXPECT_EQ(s->env.get("FEAM_OUTER"), "outer");  // inner edits discarded
  }
  EXPECT_EQ(s->env.get("FEAM_OUTER"), "base");
}

}  // namespace
}  // namespace feam::site
