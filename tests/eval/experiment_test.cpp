// End-to-end properties of the evaluation harness, run on a reduced
// benchmark subset to keep test time bounded.
#include "eval/experiment.hpp"

#include <gtest/gtest.h>

#include <set>

namespace feam::eval {
namespace {

ExperimentOptions quiet_options(std::vector<std::string> benchmarks) {
  ExperimentOptions o;
  o.fault_seed = 0;  // no stochastic system errors
  o.only_benchmarks = std::move(benchmarks);
  return o;
}

TEST(Experiment, TestSetBinariesRunAtHome) {
  Experiment e(quiet_options({"is.B", "cg.B"}));
  e.build_test_set();
  ASSERT_FALSE(e.test_set().empty());
  for (const auto& binary : e.test_set()) {
    EXPECT_TRUE(e.site(binary.home_site).vfs.is_file(binary.path));
    EXPECT_EQ(binary.workload.suite, "NAS");
  }
}

TEST(Experiment, MigrationsOnlyToMatchingImplementations) {
  Experiment e(quiet_options({"is.B"}));
  e.build_test_set();
  e.run();
  ASSERT_FALSE(e.results().empty());
  for (const auto& r : e.results()) {
    EXPECT_NE(r.home_site, r.target_site);
  }
  EXPECT_TRUE(e.mpi_matching_always_correct());
}

TEST(Experiment, FaultFreeExtendedPredictionIsPerfect) {
  // The central invariant of the reproduction: with the stochastic fault
  // model disabled, every remaining failure mode is structural (ISA, C
  // library, MPI stack, shared libraries, ABI) and the extended prediction
  // sees all of them — accuracy is exactly 100%.
  Experiment e(quiet_options({"is.B", "cg.B", "104.milc", "126.lammps"}));
  e.build_test_set();
  e.run();
  ASSERT_GT(e.results().size(), 20u);
  for (const auto& r : e.results()) {
    EXPECT_TRUE(r.extended_correct())
        << r.binary_name << " " << r.home_site << "->" << r.target_site
        << " predicted=" << r.extended_ready
        << " actual=" << r.success_after_resolution << " status="
        << toolchain::run_status_name(r.status_after);
  }
}

TEST(Experiment, ResolutionNeverHurts) {
  Experiment e(quiet_options({"cg.B", "ep.B", "107.leslie3d"}));
  e.build_test_set();
  e.run();
  for (const auto& r : e.results()) {
    // Following FEAM's configuration is never worse than the naive run.
    EXPECT_GE(r.success_after_resolution, r.success_before_resolution)
        << r.binary_name << " " << r.home_site << "->" << r.target_site;
  }
}

TEST(Experiment, ResolutionHelpsSomewhere) {
  Experiment e(quiet_options({"is.B", "104.milc"}));
  e.build_test_set();
  e.run();
  int gained = 0;
  for (const auto& r : e.results()) {
    gained += r.success_after_resolution && !r.success_before_resolution;
  }
  EXPECT_GT(gained, 0);
}

TEST(Experiment, BasicNeverBeatsExtendedOnAccuracy) {
  Experiment e(quiet_options({"cg.B", "115.fds4"}));
  e.build_test_set();
  e.run();
  int basic_correct = 0, extended_correct = 0;
  for (const auto& r : e.results()) {
    basic_correct += r.basic_correct();
    extended_correct += r.extended_correct();
  }
  EXPECT_GE(extended_correct, basic_correct);
}

TEST(Experiment, DeterministicAcrossRuns) {
  const auto run_once = [] {
    Experiment e({.fault_seed = 99, .only_benchmarks = {"is.B"}});
    e.build_test_set();
    e.run();
    std::vector<std::tuple<std::string, std::string, bool, bool, bool, bool>> out;
    for (const auto& r : e.results()) {
      out.emplace_back(r.binary_name, r.target_site, r.basic_ready,
                       r.extended_ready, r.success_before_resolution,
                       r.success_after_resolution);
    }
    return out;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Experiment, TargetSitesLeftClean) {
  Experiment e(quiet_options({"is.B"}));
  e.build_test_set();
  e.run();
  for (const char* name : {"ranger", "forge", "blacklight", "india", "fir"}) {
    auto& s = e.site(name);
    EXPECT_FALSE(s.vfs.exists("/home/user/feam_resolved")) << name;
    EXPECT_TRUE(s.vfs.list("/home/user/migrated").empty()) << name;
    EXPECT_TRUE(s.loaded_modules().empty()) << name;
  }
}

TEST(Experiment, UnknownSiteThrows) {
  Experiment e(quiet_options({"is.B"}));
  EXPECT_THROW(e.site("unknown"), std::invalid_argument);
}

}  // namespace
}  // namespace feam::eval
