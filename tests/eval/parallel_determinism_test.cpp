// The parallel migration engine's central guarantee: the full evaluation
// matrix produces bit-identical run records, readiness matrix, and report
// aggregate at every job count — and with the memoization layer switched
// off entirely.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "eval/experiment.hpp"
#include "eval/run_records.hpp"
#include "report/aggregate.hpp"

namespace feam::eval {
namespace {

struct MatrixRun {
  std::string records_dump;      // every RunRecord, serialized in order
  std::string readiness_matrix;  // rendered site x suite readiness table
  std::map<std::string, double> metrics;  // flattened report aggregate
};

MatrixRun run_matrix(int jobs, bool use_caches) {
  ExperimentOptions options;
  options.jobs = jobs;
  options.use_caches = use_caches;
  Experiment experiment(options);
  experiment.build_test_set();
  experiment.run();

  MatrixRun out;
  auto records = to_run_records(experiment.results());
  for (const auto& record : records) {
    out.records_dump += record.to_json().dump();
    out.records_dump += '\n';
  }
  const auto aggregate = report::aggregate_records(std::move(records));
  out.readiness_matrix = report::render_readiness_matrix(aggregate);
  out.metrics = report::flatten_metrics(aggregate);
  return out;
}

TEST(ParallelDeterminism, FullMatrixIsIdenticalAtEveryJobCount) {
  const MatrixRun jobs1 = run_matrix(1, true);
  ASSERT_FALSE(jobs1.records_dump.empty());

  for (const int jobs : {4, 8}) {
    const MatrixRun pooled = run_matrix(jobs, true);
    EXPECT_EQ(pooled.records_dump, jobs1.records_dump) << "jobs=" << jobs;
    EXPECT_EQ(pooled.readiness_matrix, jobs1.readiness_matrix)
        << "jobs=" << jobs;
    EXPECT_EQ(pooled.metrics, jobs1.metrics) << "jobs=" << jobs;
  }

  // The memoization layer is transparent: the legacy uncached sequential
  // path agrees record for record.
  const MatrixRun uncached = run_matrix(1, false);
  EXPECT_EQ(uncached.records_dump, jobs1.records_dump);
  EXPECT_EQ(uncached.readiness_matrix, jobs1.readiness_matrix);
  EXPECT_EQ(uncached.metrics, jobs1.metrics);
}

}  // namespace
}  // namespace feam::eval
