#include <gtest/gtest.h>

#include "eval/tables.hpp"
#include "support/strings.hpp"

namespace feam::eval {
namespace {

MigrationResult sample(const char* name, const char* home, const char* target,
                       bool before, bool after) {
  MigrationResult r;
  r.binary_name = name;
  r.suite = "NAS";
  r.home_site = home;
  r.target_site = target;
  r.basic_ready = before;
  r.extended_ready = after;
  r.success_before_resolution = before;
  r.success_after_resolution = after;
  r.status_before = before ? toolchain::RunStatus::kSuccess
                           : toolchain::RunStatus::kMissingLibrary;
  r.status_after = after ? toolchain::RunStatus::kSuccess
                         : toolchain::RunStatus::kMissingLibrary;
  r.missing_library_count = after && !before ? 2 : 0;
  r.resolved_library_count = after && !before ? 2 : 0;
  return r;
}

TEST(Csv, HeaderAndRows) {
  const std::vector<MigrationResult> results = {
      sample("cg.B.openmpi-1.4-gnu", "india", "fir", true, true),
      sample("is.B.mvapich2-1.2-intel", "ranger", "fir", false, true),
  };
  const std::string csv = results_to_csv(results);
  const auto lines = support::split(csv, '\n');
  ASSERT_GE(lines.size(), 3u);
  EXPECT_TRUE(support::starts_with(lines[0], "binary,suite,home,target"));
  EXPECT_EQ(lines[1],
            "cg.B.openmpi-1.4-gnu,NAS,india,fir,1,1,1,1,success,success,0,0");
  EXPECT_TRUE(support::contains(lines[2], "ranger,fir,0,1,0,1"));
  EXPECT_TRUE(support::contains(lines[2], "missing shared library,success"));
}

TEST(Csv, QuotesFieldsWithCommas) {
  auto r = sample("weird", "india", "fir", true, true);
  r.binary_name = "name,with\"comma";
  const std::string csv = results_to_csv({r});
  EXPECT_TRUE(support::contains(csv, "\"name,with\"\"comma\""));
}

TEST(Csv, EmptyResults) {
  const std::string csv = results_to_csv({});
  EXPECT_EQ(support::split(csv, '\n').size(), 2u);  // header + trailing
}

TEST(RouteMatrix, AggregatesPerRoute) {
  const std::vector<MigrationResult> results = {
      sample("a", "india", "fir", true, true),
      sample("b", "india", "fir", false, true),
      sample("c", "ranger", "fir", false, false),
  };
  const auto matrix = compute_route_matrix(results);
  ASSERT_EQ(matrix.size(), 2u);
  const auto& india_fir = matrix.at({"india", "fir"});
  EXPECT_EQ(india_fir.total, 2);
  EXPECT_EQ(india_fir.success_before, 1);
  EXPECT_EQ(india_fir.success_after, 2);
  const auto& ranger_fir = matrix.at({"ranger", "fir"});
  EXPECT_EQ(ranger_fir.total, 1);
  EXPECT_EQ(ranger_fir.success_after, 0);

  const std::string text = render_route_matrix(matrix);
  EXPECT_TRUE(support::contains(text, "india -> fir"));
  EXPECT_TRUE(support::contains(text, "2 (100%)"));
}

}  // namespace
}  // namespace feam::eval
