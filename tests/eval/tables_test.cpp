#include "eval/tables.hpp"

#include <gtest/gtest.h>

namespace feam::eval {
namespace {

MigrationResult result(const char* suite, bool basic_ready, bool ext_ready,
                       bool before, bool after) {
  MigrationResult r;
  r.suite = suite;
  r.binary_name = "x";
  r.basic_ready = basic_ready;
  r.extended_ready = ext_ready;
  r.success_before_resolution = before;
  r.success_after_resolution = after;
  r.status_before = before ? toolchain::RunStatus::kSuccess
                           : toolchain::RunStatus::kMissingLibrary;
  r.status_after = after ? toolchain::RunStatus::kSuccess
                         : toolchain::RunStatus::kMissingLibrary;
  return r;
}

TEST(Tables, AccuracyComputation) {
  std::vector<MigrationResult> results = {
      result("NAS", true, true, true, true),     // both correct
      result("NAS", true, true, false, false),   // both wrong
      result("SPEC", false, false, false, false),  // both correct
      result("SPEC", true, false, false, false),  // basic wrong, ext correct
  };
  const auto t3 = compute_table3(results);
  EXPECT_EQ(t3.basic_nas.correct, 1);
  EXPECT_EQ(t3.basic_nas.total, 2);
  EXPECT_DOUBLE_EQ(t3.basic_nas.percent(), 50.0);
  EXPECT_EQ(t3.extended_spec.correct, 2);
  EXPECT_DOUBLE_EQ(t3.basic_spec.percent(), 50.0);
  EXPECT_DOUBLE_EQ(t3.extended_nas.percent(), 50.0);
}

TEST(Tables, EmptyCellsRenderWithoutDivZero) {
  const AccuracyCell empty;
  EXPECT_DOUBLE_EQ(empty.percent(), 0.0);
  const Table4Cell cell;
  EXPECT_DOUBLE_EQ(cell.before_percent(), 0.0);
  EXPECT_DOUBLE_EQ(cell.increase_percent(), 0.0);
}

TEST(Tables, ResolutionImpactComputation) {
  std::vector<MigrationResult> results;
  // NAS: 3 of 6 before, 4 of 6 after -> 50% -> 67%, increase 33%.
  for (int i = 0; i < 3; ++i) results.push_back(result("NAS", 1, 1, true, true));
  results.push_back(result("NAS", 0, 1, false, true));
  for (int i = 0; i < 2; ++i) results.push_back(result("NAS", 0, 0, false, false));
  const auto t4 = compute_table4(results);
  EXPECT_EQ(t4.nas.success_before, 3);
  EXPECT_EQ(t4.nas.success_after, 4);
  EXPECT_EQ(t4.nas.total, 6);
  EXPECT_NEAR(t4.nas.before_percent(), 50.0, 0.01);
  EXPECT_NEAR(t4.nas.after_percent(), 66.67, 0.01);
  // Paper semantics: increase relative to before-resolution successes.
  EXPECT_NEAR(t4.nas.increase_percent(), 33.33, 0.01);
}

TEST(Tables, RenderContainsPaperHeadings) {
  const std::vector<MigrationResult> results = {
      result("NAS", true, true, true, true)};
  EXPECT_NE(render_table3(compute_table3(results))
                .find("ACCURACY OF PREDICTION MODEL"),
            std::string::npos);
  EXPECT_NE(render_table4(compute_table4(results))
                .find("IMPACT OF RESOLUTION MODEL"),
            std::string::npos);
}

TEST(Tables, DeterminantBreakdownCountsStatuses) {
  std::vector<MigrationResult> results = {
      result("NAS", true, true, false, false),
      result("SPEC", true, true, true, true),
  };
  results[0].status_before = toolchain::RunStatus::kFpException;
  results[0].status_after = toolchain::RunStatus::kFpException;
  const auto d = compute_determinants(results);
  EXPECT_EQ(d.total, 2);
  EXPECT_EQ(d.failure_status_before.at("floating point exception"), 1);
  EXPECT_EQ(d.failure_status_after.size(), 1u);
  const auto text = render_determinants(d);
  EXPECT_NE(text.find("floating point exception"), std::string::npos);
}

}  // namespace
}  // namespace feam::eval
