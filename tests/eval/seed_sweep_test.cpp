// The headline shapes must be stable across fault-model seeds, not an
// artifact of the default one. Runs a reduced benchmark subset under
// several seeds and asserts the paper's qualitative claims for each.
#include <gtest/gtest.h>

#include "eval/experiment.hpp"
#include "eval/tables.hpp"

namespace feam::eval {
namespace {

class SeedSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweepTest, ShapesHoldAcrossSeeds) {
  ExperimentOptions options;
  options.fault_seed = GetParam();
  options.only_benchmarks = {"is.B", "cg.B", "bt.B", "104.milc", "126.lammps",
                             "107.leslie3d"};
  Experiment experiment(options);
  experiment.build_test_set();
  experiment.run();
  ASSERT_GT(experiment.results().size(), 100u);

  int basic_correct = 0, extended_correct = 0;
  int before = 0, after = 0;
  const int total = static_cast<int>(experiment.results().size());
  for (const auto& r : experiment.results()) {
    basic_correct += r.basic_correct();
    extended_correct += r.extended_correct();
    before += r.success_before_resolution;
    after += r.success_after_resolution;
  }

  // Paper shapes, with slack for the reduced subset:
  // predictions comfortably above chance and extended >= basic - noise.
  EXPECT_GT(100.0 * basic_correct / total, 80.0);
  EXPECT_GT(100.0 * extended_correct / total, 88.0);
  EXPECT_GE(extended_correct + total / 50, basic_correct);
  // Roughly half execute before resolution; resolution strictly helps.
  EXPECT_GT(100.0 * before / total, 25.0);
  EXPECT_LT(100.0 * before / total, 75.0);
  EXPECT_GT(after, before);
  // The availability check never errs, regardless of seed.
  EXPECT_TRUE(experiment.mpi_matching_always_correct());
}

INSTANTIATE_TEST_SUITE_P(FaultSeeds, SeedSweepTest,
                         ::testing::Values(1u, 7u, 1234u, 20130613u,
                                           0xfeedfaceu));

}  // namespace
}  // namespace feam::eval
