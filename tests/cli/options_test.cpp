#include "cli/options.hpp"

#include <gtest/gtest.h>

namespace feam::cli {
namespace {

std::optional<Options> parse(std::vector<std::string> args) {
  std::string error;
  return parse_options(args, error);
}

std::string parse_error(std::vector<std::string> args) {
  std::string error;
  const auto opts = parse_options(args, error);
  EXPECT_FALSE(opts.has_value());
  return error;
}

TEST(CliOptions, ListSites) {
  const auto opts = parse({"list-sites"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->command, Command::kListSites);
}

TEST(CliOptions, Help) {
  for (const char* flag : {"--help", "-h", "help"}) {
    const auto opts = parse({flag});
    ASSERT_TRUE(opts.has_value()) << flag;
    EXPECT_EQ(opts->command, Command::kHelp);
  }
  EXPECT_FALSE(usage().empty());
}

TEST(CliOptions, CompileFull) {
  const auto opts = parse({"compile", "--site", "india", "--stack",
                           "openmpi/1.4-gnu", "--program", "cg.B",
                           "--language", "fortran", "-o", "/tmp/cg.B"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->command, Command::kCompile);
  EXPECT_EQ(opts->site, "india");
  EXPECT_EQ(opts->stack, "openmpi/1.4-gnu");
  EXPECT_EQ(opts->program, "cg.B");
  EXPECT_EQ(opts->language, "fortran");
  EXPECT_EQ(opts->output, "/tmp/cg.B");
  EXPECT_FALSE(opts->static_link);
}

TEST(CliOptions, CompileStatic) {
  const auto opts = parse({"compile", "--site", "india", "--stack",
                           "mpich2/1.4-gnu", "--program", "is.B", "--static",
                           "-o", "/tmp/is"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_TRUE(opts->static_link);
}

TEST(CliOptions, CompileMissingRequired) {
  EXPECT_NE(parse_error({"compile", "--site", "india"}).find("--stack"),
            std::string::npos);
  EXPECT_NE(parse_error({"compile", "--stack", "x", "--program", "p",
                         "-o", "out"})
                .find("--site"),
            std::string::npos);
  EXPECT_NE(parse_error({"compile", "--site", "s", "--stack", "x",
                         "--program", "p", "-o", "out", "--language", "ada"})
                .find("--language"),
            std::string::npos);
}

TEST(CliOptions, SourceAndTarget) {
  const auto source = parse({"source", "--site", "india", "--stack",
                             "openmpi/1.4-gnu", "--binary", "/tmp/b", "-o",
                             "/tmp/b.feambundle"});
  ASSERT_TRUE(source.has_value());
  EXPECT_EQ(source->command, Command::kSource);

  const auto target = parse({"target", "--site", "fir", "--binary", "/tmp/b",
                             "--bundle", "/tmp/b.feambundle", "--script",
                             "/tmp/run.sh"});
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(target->command, Command::kTarget);
  EXPECT_EQ(target->bundle, "/tmp/b.feambundle");
  EXPECT_EQ(target->script, "/tmp/run.sh");

  // Bundle is optional for target (basic prediction).
  const auto basic = parse({"target", "--site", "fir", "--binary", "/tmp/b"});
  ASSERT_TRUE(basic.has_value());
  EXPECT_TRUE(basic->bundle.empty());
}

TEST(CliOptions, SiteFileSubstitutesForSite) {
  const auto opts = parse({"target", "--site-file", "/tmp/mycluster.json",
                           "--binary", "/tmp/b"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->site_file, "/tmp/mycluster.json");
  EXPECT_TRUE(opts->site.empty());
  // Without either, target is rejected.
  EXPECT_NE(parse_error({"target", "--binary", "/tmp/b"}).find("--site"),
            std::string::npos);
}

TEST(CliOptions, SurveyRequiresBinaryOnly) {
  EXPECT_TRUE(parse({"survey", "--binary", "/tmp/b"}).has_value());
  EXPECT_NE(parse_error({"survey"}).find("--binary"), std::string::npos);
}

TEST(CliOptions, Errors) {
  EXPECT_NE(parse_error({}).find("no command"), std::string::npos);
  EXPECT_NE(parse_error({"frobnicate"}).find("unknown command"),
            std::string::npos);
  EXPECT_NE(parse_error({"target", "--site"}).find("requires a value"),
            std::string::npos);
  EXPECT_NE(parse_error({"target", "--site", "fir", "--binary", "/b",
                         "--bogus", "x"})
                .find("unknown flag"),
            std::string::npos);
}

}  // namespace
}  // namespace feam::cli
