#include "cli/options.hpp"

#include <gtest/gtest.h>

namespace feam::cli {
namespace {

std::optional<Options> parse(std::vector<std::string> args) {
  std::string error;
  return parse_options(args, error);
}

std::string parse_error(std::vector<std::string> args) {
  std::string error;
  const auto opts = parse_options(args, error);
  EXPECT_FALSE(opts.has_value());
  return error;
}

TEST(CliOptions, ListSites) {
  const auto opts = parse({"list-sites"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->command, Command::kListSites);
}

TEST(CliOptions, Help) {
  for (const char* flag : {"--help", "-h", "help"}) {
    const auto opts = parse({flag});
    ASSERT_TRUE(opts.has_value()) << flag;
    EXPECT_EQ(opts->command, Command::kHelp);
  }
  EXPECT_FALSE(usage().empty());
}

TEST(CliOptions, CompileFull) {
  const auto opts = parse({"compile", "--site", "india", "--stack",
                           "openmpi/1.4-gnu", "--program", "cg.B",
                           "--language", "fortran", "-o", "/tmp/cg.B"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->command, Command::kCompile);
  EXPECT_EQ(opts->site, "india");
  EXPECT_EQ(opts->stack, "openmpi/1.4-gnu");
  EXPECT_EQ(opts->program, "cg.B");
  EXPECT_EQ(opts->language, "fortran");
  EXPECT_EQ(opts->output, "/tmp/cg.B");
  EXPECT_FALSE(opts->static_link);
}

TEST(CliOptions, CompileStatic) {
  const auto opts = parse({"compile", "--site", "india", "--stack",
                           "mpich2/1.4-gnu", "--program", "is.B", "--static",
                           "-o", "/tmp/is"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_TRUE(opts->static_link);
}

TEST(CliOptions, CompileMissingRequired) {
  EXPECT_NE(parse_error({"compile", "--site", "india"}).find("--stack"),
            std::string::npos);
  EXPECT_NE(parse_error({"compile", "--stack", "x", "--program", "p",
                         "-o", "out"})
                .find("--site"),
            std::string::npos);
  EXPECT_NE(parse_error({"compile", "--site", "s", "--stack", "x",
                         "--program", "p", "-o", "out", "--language", "ada"})
                .find("--language"),
            std::string::npos);
}

TEST(CliOptions, SourceAndTarget) {
  const auto source = parse({"source", "--site", "india", "--stack",
                             "openmpi/1.4-gnu", "--binary", "/tmp/b", "-o",
                             "/tmp/b.feambundle"});
  ASSERT_TRUE(source.has_value());
  EXPECT_EQ(source->command, Command::kSource);

  const auto target = parse({"target", "--site", "fir", "--binary", "/tmp/b",
                             "--bundle", "/tmp/b.feambundle", "--script",
                             "/tmp/run.sh"});
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(target->command, Command::kTarget);
  EXPECT_EQ(target->bundle, "/tmp/b.feambundle");
  EXPECT_EQ(target->script, "/tmp/run.sh");

  // Bundle is optional for target (basic prediction).
  const auto basic = parse({"target", "--site", "fir", "--binary", "/tmp/b"});
  ASSERT_TRUE(basic.has_value());
  EXPECT_TRUE(basic->bundle.empty());
}

TEST(CliOptions, SiteFileSubstitutesForSite) {
  const auto opts = parse({"target", "--site-file", "/tmp/mycluster.json",
                           "--binary", "/tmp/b"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->site_file, "/tmp/mycluster.json");
  EXPECT_TRUE(opts->site.empty());
  // Without either, target is rejected.
  EXPECT_NE(parse_error({"target", "--binary", "/tmp/b"}).find("--site"),
            std::string::npos);
}

TEST(CliOptions, SurveyRequiresBinaryOnly) {
  EXPECT_TRUE(parse({"survey", "--binary", "/tmp/b"}).has_value());
  EXPECT_NE(parse_error({"survey"}).find("--binary"), std::string::npos);
}

TEST(CliOptions, MemoryObservabilityFlags) {
  const auto survey = parse({"survey", "--binary", "/tmp/b", "--track-alloc",
                             "--timeseries-out", "/tmp/live.jsonl"});
  ASSERT_TRUE(survey.has_value());
  EXPECT_TRUE(survey->track_alloc);

  const auto profile = parse({"profile", "--in", "/tmp/trace.json",
                              "--memory", "--svg", "/tmp/alloc.svg"});
  ASSERT_TRUE(profile.has_value());
  EXPECT_TRUE(profile->profile_memory);

  const auto plain = parse({"profile", "--in", "/tmp/trace.json"});
  ASSERT_TRUE(plain.has_value());
  EXPECT_FALSE(plain->profile_memory);
  EXPECT_FALSE(plain->track_alloc);
}

TEST(CliOptions, TimeseriesIntervalValidation) {
  const auto ok = parse({"survey", "--binary", "/tmp/b", "--timeseries-out",
                         "/tmp/live.jsonl", "--timeseries-interval", "25"});
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->timeseries_interval_ms, 25);

  // The rejection names the flag, the constraint, and the bad value.
  for (const char* bad : {"0", "-5", "soon", ""}) {
    const std::string error =
        parse_error({"survey", "--binary", "/tmp/b", "--timeseries-out",
                     "/tmp/live.jsonl", "--timeseries-interval", bad});
    EXPECT_NE(error.find("--timeseries-interval"), std::string::npos) << bad;
    EXPECT_NE(error.find("positive number of milliseconds"),
              std::string::npos)
        << bad;
    EXPECT_NE(error.find(bad), std::string::npos) << bad;
  }
}

TEST(CliOptions, Errors) {
  EXPECT_NE(parse_error({}).find("no command"), std::string::npos);
  EXPECT_NE(parse_error({"frobnicate"}).find("unknown command"),
            std::string::npos);
  EXPECT_NE(parse_error({"target", "--site"}).find("requires a value"),
            std::string::npos);
  EXPECT_NE(parse_error({"target", "--site", "fir", "--binary", "/b",
                         "--bogus", "x"})
                .find("unknown flag"),
            std::string::npos);
}

}  // namespace
}  // namespace feam::cli
