// Full two-phase migrations across *degraded* sites — the paper's
// motivation for gathering information "in multiple ways ... in case some
// tools are not present or functioning at a particular target site"
// (Section V). Each degradation knocks out one discovery path; the
// fallbacks must carry the whole workflow to the same READY outcome.
#include <gtest/gtest.h>

#include "feam/phases.hpp"
#include "toolchain/launcher.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

namespace feam {
namespace {

using site::CompilerFamily;
using site::MpiImpl;

struct Scenario {
  std::unique_ptr<site::Site> home;
  std::unique_ptr<site::Site> target;
  std::string binary_path;
};

// Ranger MVAPICH2 1.2 -> Fir: the canonical resolution-required migration.
Scenario make_scenario() {
  Scenario sc;
  sc.home = toolchain::make_site("ranger");
  sc.target = toolchain::make_site("fir");
  toolchain::ProgramSource app;
  app.name = "cg.B";
  app.language = toolchain::Language::kC;
  const auto* stack = sc.home->find_stack(MpiImpl::kMvapich2,
                                          CompilerFamily::kIntel);
  const auto compiled = toolchain::compile_mpi_program(
      *sc.home, app, *stack, "/home/user/apps/cg.B");
  EXPECT_TRUE(compiled.ok());
  sc.binary_path = compiled.value();
  sc.home->load_module("mvapich2/1.2-intel");
  sc.target->vfs.write_file("/home/user/cg.B",
                            *sc.home->vfs.read(sc.binary_path));
  return sc;
}

// Runs both phases and executes under FEAM's configuration; returns the
// run outcome.
toolchain::RunResult run_workflow(Scenario& sc) {
  const auto source = run_source_phase(*sc.home, sc.binary_path);
  EXPECT_TRUE(source.ok()) << source.error();
  const auto target = run_target_phase(*sc.target, "/home/user/cg.B",
                                       &source.value());
  EXPECT_TRUE(target.ok()) << target.error();
  EXPECT_TRUE(target.value().prediction.ready);
  const auto extra =
      Tec::apply_configuration(*sc.target, target.value().prediction);
  return toolchain::mpiexec_with_retries(*sc.target, "/home/user/cg.B", 4,
                                         extra);
}

TEST(DegradedSites, Baseline) {
  auto sc = make_scenario();
  EXPECT_TRUE(run_workflow(sc).success());
}

TEST(DegradedSites, NoLddAtGuaranteedSite) {
  auto sc = make_scenario();
  sc.home->ldd_available = false;  // copies located via locate/find instead
  EXPECT_TRUE(run_workflow(sc).success());
}

TEST(DegradedSites, NoLddNoLocateAnywhere) {
  auto sc = make_scenario();
  sc.home->ldd_available = false;
  sc.home->locate_available = false;
  sc.target->ldd_available = false;
  sc.target->locate_available = false;
  EXPECT_TRUE(run_workflow(sc).success());
}

TEST(DegradedSites, UnexecutableLibcAtTarget) {
  auto sc = make_scenario();
  sc.target->libc_executable = false;  // EDC falls back to the library API
  EXPECT_TRUE(run_workflow(sc).success());
}

TEST(DegradedSites, NoUserEnvToolAtTarget) {
  auto sc = make_scenario();
  // Strip Environment Modules from the target: stacks found by filesystem
  // search, activated by manual PATH/LD_LIBRARY_PATH edits.
  sc.target->vfs.remove("/usr/bin/modulecmd");
  sc.target->vfs.remove("/usr/share/Modules");
  sc.target->module_files.clear();
  EXPECT_TRUE(run_workflow(sc).success());
}

TEST(DegradedSites, EverythingDegradedAtOnce) {
  auto sc = make_scenario();
  sc.home->ldd_available = false;
  sc.home->locate_available = false;
  sc.target->ldd_available = false;
  sc.target->locate_available = false;
  sc.target->libc_executable = false;
  sc.target->vfs.remove("/usr/bin/modulecmd");
  sc.target->vfs.remove("/usr/share/Modules");
  sc.target->module_files.clear();
  EXPECT_TRUE(run_workflow(sc).success());
}

}  // namespace
}  // namespace feam
