// Table I identification, tested both on hand-written NEEDED lists and on
// binaries actually produced by the simulated toolchain for every stack
// and language combination in the testbed.
#include "feam/identify.hpp"

#include <gtest/gtest.h>

#include "elf/file.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

namespace feam {
namespace {

using site::MpiImpl;

TEST(Identify, TableOneRules) {
  // Open MPI: libmpi (+ libnsl/libutil).
  EXPECT_EQ(identify_mpi({"libmpi.so.0", "libnsl.so.1", "libutil.so.1",
                          "libc.so.6"}),
            MpiImpl::kOpenMpi);
  // MPICH2: libmpich and no InfiniBand identifiers.
  EXPECT_EQ(identify_mpi({"libmpich.so.1.2", "libc.so.6"}), MpiImpl::kMpich2);
  // MVAPICH2: libmpich plus libibverbs/libibumad.
  EXPECT_EQ(identify_mpi({"libmpich.so.1.0", "libibverbs.so.1",
                          "libibumad.so.3", "libc.so.6"}),
            MpiImpl::kMvapich2);
}

TEST(Identify, FortranBindingsAlsoIdentify) {
  EXPECT_EQ(identify_mpi({"libmpichf90.so.1.2", "libmpich.so.1.2",
                          "libibverbs.so.1", "libc.so.6"}),
            MpiImpl::kMvapich2);
  EXPECT_EQ(identify_mpi({"libmpi_f77.so.0", "libmpi.so.0", "libc.so.6"}),
            MpiImpl::kOpenMpi);
}

TEST(Identify, SerialBinaryIsNotMpi) {
  EXPECT_FALSE(identify_mpi({"libc.so.6", "libm.so.6"}).has_value());
  EXPECT_FALSE(identify_mpi({}).has_value());
  // libnsl/libutil alone (without InfiniBand context) are too generic.
  EXPECT_FALSE(identify_mpi({"libnsl.so.1", "libutil.so.1", "libc.so.6"})
                   .has_value());
}

TEST(Identify, IbLibsAloneAreNotMpi) {
  EXPECT_FALSE(identify_mpi({"libibverbs.so.1", "libc.so.6"}).has_value());
}

struct StackCase {
  const char* site;
  MpiImpl impl;
  site::CompilerFamily compiler;
  toolchain::Language language;
};

class IdentifyCompiledTest : public ::testing::TestWithParam<StackCase> {};

TEST_P(IdentifyCompiledTest, CompiledBinaryIdentifiesAsItsStack) {
  const auto& param = GetParam();
  auto s = toolchain::make_site(param.site);
  const auto* stack = s->find_stack(param.impl, param.compiler);
  ASSERT_NE(stack, nullptr);
  toolchain::ProgramSource p;
  p.name = "probe";
  p.language = param.language;
  const auto compiled =
      toolchain::compile_mpi_program(*s, p, *stack, "/home/user/probe");
  ASSERT_TRUE(compiled.ok()) << compiled.error();
  const auto parsed = elf::ElfFile::parse(*s->vfs.read(compiled.value()));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(identify_mpi(parsed.value().needed()), param.impl);
}

INSTANTIATE_TEST_SUITE_P(
    AllStacks, IdentifyCompiledTest,
    ::testing::Values(
        StackCase{"ranger", MpiImpl::kOpenMpi, site::CompilerFamily::kGnu,
                  toolchain::Language::kC},
        StackCase{"ranger", MpiImpl::kMvapich2, site::CompilerFamily::kIntel,
                  toolchain::Language::kFortran},
        StackCase{"forge", MpiImpl::kOpenMpi, site::CompilerFamily::kIntel,
                  toolchain::Language::kFortran},
        StackCase{"forge", MpiImpl::kMvapich2, site::CompilerFamily::kIntel,
                  toolchain::Language::kC},
        StackCase{"india", MpiImpl::kMpich2, site::CompilerFamily::kGnu,
                  toolchain::Language::kFortran},
        StackCase{"india", MpiImpl::kMvapich2, site::CompilerFamily::kIntel,
                  toolchain::Language::kC},
        StackCase{"fir", MpiImpl::kMpich2, site::CompilerFamily::kPgi,
                  toolchain::Language::kFortran},
        StackCase{"fir", MpiImpl::kOpenMpi, site::CompilerFamily::kPgi,
                  toolchain::Language::kC},
        StackCase{"blacklight", MpiImpl::kOpenMpi, site::CompilerFamily::kGnu,
                  toolchain::Language::kFortran}),
    [](const auto& param_info) {
      return std::string(param_info.param.site) + "_" +
             site::mpi_impl_slug(param_info.param.impl) + "_" +
             site::compiler_slug(param_info.param.compiler) + "_" +
             (param_info.param.language == toolchain::Language::kC ? "c" : "f");
    });

}  // namespace
}  // namespace feam
