#include "feam/report.hpp"

#include <gtest/gtest.h>

#include "support/strings.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

namespace feam {
namespace {

using site::CompilerFamily;
using site::MpiImpl;

struct Scenario {
  std::unique_ptr<site::Site> home;
  std::unique_ptr<site::Site> target;
  SourcePhaseOutput source;
  TargetPhaseOutput target_output;
};

Scenario run_scenario(const char* target_name) {
  Scenario sc;
  sc.home = toolchain::make_site("ranger");
  sc.target = toolchain::make_site(target_name);
  toolchain::ProgramSource app;
  app.name = "cg.B";
  app.language = toolchain::Language::kC;
  const auto* stack =
      sc.home->find_stack(MpiImpl::kMvapich2, CompilerFamily::kIntel);
  const auto compiled = toolchain::compile_mpi_program(
      *sc.home, app, *stack, "/home/user/apps/cg.B");
  EXPECT_TRUE(compiled.ok());
  sc.home->load_module("mvapich2/1.2-intel");
  sc.source = run_source_phase(*sc.home, compiled.value()).take();
  sc.target->vfs.write_file("/home/user/cg.B",
                            *sc.home->vfs.read(compiled.value()));
  sc.target_output =
      run_target_phase(*sc.target, "/home/user/cg.B", &sc.source).take();
  return sc;
}

TEST(Report, TargetReadyReportHasScriptAndResolution) {
  const auto sc = run_scenario("fir");
  ASSERT_TRUE(sc.target_output.prediction.ready);
  const std::string report = render_target_report(sc.target_output);
  EXPECT_TRUE(support::contains(report, "application binary:"));
  EXPECT_TRUE(support::contains(report, "MVAPICH2"));
  EXPECT_TRUE(support::contains(report, "target environment:"));
  EXPECT_TRUE(support::contains(report, "determinants:"));
  EXPECT_TRUE(support::contains(report, "[x] ISA compatibility"));
  EXPECT_TRUE(support::contains(report, "shared library resolution:"));
  EXPECT_TRUE(support::contains(report, "libmpich.so.1.0"));
  EXPECT_TRUE(support::contains(report, "READY"));
  EXPECT_TRUE(support::contains(report, "module load"));
}

TEST(Report, TargetNotReadyReportDetailsReasons) {
  // Blacklight has no MVAPICH2 at all.
  const auto sc = run_scenario("blacklight");
  ASSERT_FALSE(sc.target_output.prediction.ready);
  const std::string report = render_target_report(sc.target_output);
  EXPECT_TRUE(support::contains(report, "NOT READY"));
  EXPECT_TRUE(support::contains(report, "no MVAPICH2 stack"));
  EXPECT_TRUE(support::contains(report, "[-]"));  // skipped determinant
  EXPECT_FALSE(support::contains(report, "matching configuration script"));
}

TEST(Report, SourceReportListsCopies) {
  const auto sc = run_scenario("fir");
  const std::string report = render_source_report(sc.source);
  EXPECT_TRUE(support::contains(report, "gathered library copies:"));
  EXPECT_TRUE(support::contains(report, "libmpich.so.1.0"));
  EXPECT_TRUE(support::contains(report, "bundle size:"));
  EXPECT_TRUE(support::contains(report, "hello worlds: 2"));
}

}  // namespace
}  // namespace feam
