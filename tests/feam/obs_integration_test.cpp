// Integration: running the target phase with the trace collector enabled
// produces the span tree, verdict events, and metrics the CLI exports
// through --trace-out / --metrics-out.
#include <gtest/gtest.h>

#include <algorithm>

#include "feam/phases.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/json.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

namespace feam {
namespace {

using site::CompilerFamily;
using site::MpiImpl;

class ObsIntegration : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::collector().clear();
    obs::collector().set_enabled(true);
  }
  void TearDown() override {
    obs::collector().set_enabled(false);
    obs::collector().clear();
  }
};

const obs::SpanRecord* find_span(const std::vector<obs::SpanRecord>& spans,
                                 std::string_view name) {
  const auto it = std::find_if(
      spans.begin(), spans.end(),
      [&](const obs::SpanRecord& s) { return s.name == name; });
  return it == spans.end() ? nullptr : &*it;
}

TEST_F(ObsIntegration, TargetPhaseEmitsDeterminantSpansAndVerdicts) {
  // Compile at india, run the source phase there, migrate to fir.
  auto home = toolchain::make_site("india");
  const auto* stack =
      home->find_stack(MpiImpl::kOpenMpi, CompilerFamily::kGnu);
  ASSERT_NE(stack, nullptr);
  toolchain::ProgramSource p;
  p.name = "app";
  p.language = toolchain::Language::kC;
  p.libc_features = {"base", "stdio", "math"};
  const auto compiled =
      toolchain::compile_mpi_program(*home, p, *stack, "/home/user/app");
  ASSERT_TRUE(compiled.ok()) << compiled.error();
  ASSERT_TRUE(home->load_module("openmpi/" + stack->version.str() + "-gnu"));
  const auto source = run_source_phase(*home, compiled.value());
  ASSERT_TRUE(source.ok()) << source.error();

  auto target = toolchain::make_site("fir");
  target->vfs.write_file("/home/user/migrated/app",
                         *home->vfs.read(compiled.value()));

  obs::collector().clear();  // keep only the target phase in the trace
  const auto result =
      run_target_phase(*target, "/home/user/migrated/app", &source.value());
  ASSERT_TRUE(result.ok()) << result.error();

  const auto spans = obs::collector().spans();
  const auto* phase = find_span(spans, "feam.target_phase");
  const auto* evaluate = find_span(spans, "tec.evaluate");
  ASSERT_NE(phase, nullptr);
  ASSERT_NE(evaluate, nullptr);
  EXPECT_EQ(phase->parent_id, 0u);
  EXPECT_EQ(evaluate->parent_id, phase->id);

  // One span per determinant, all nested (transitively) under the phase.
  for (const char* name :
       {"tec.determinant.isa", "tec.determinant.c_library",
        "tec.determinant.mpi_stack", "tec.determinant.shared_libraries"}) {
    const auto* det = find_span(spans, name);
    ASSERT_NE(det, nullptr) << name;
    EXPECT_GE(det->start_ns, phase->start_ns) << name;
    EXPECT_LE(det->end_ns, phase->end_ns) << name;
    EXPECT_NE(det->parent_id, 0u) << name;
  }

  // One verdict event per determinant plus the final prediction.
  const auto events = obs::collector().events();
  const auto verdicts = std::count_if(
      events.begin(), events.end(),
      [](const obs::Event& e) { return e.name == "tec.verdict"; });
  EXPECT_EQ(verdicts, 4);
  EXPECT_TRUE(std::any_of(
      events.begin(), events.end(),
      [](const obs::Event& e) { return e.name == "tec.prediction"; }));

  // The exported trace is valid JSON with one complete event per span.
  const auto trace = support::Json::parse(
      obs::render_chrome_trace(spans, events));
  ASSERT_TRUE(trace.has_value());
  EXPECT_GE((*trace)["traceEvents"].as_array().size(), spans.size());

  // The shared registry now holds the pipeline's metrics.
  const auto metrics = support::Json::parse(
      obs::render_metrics_json(obs::metrics()));
  ASSERT_TRUE(metrics.has_value());
  std::size_t names = 0;
  for (const char* counter_name :
       {"phase.target_runs", "tec.determinant_checks", "bdc.describe_calls",
        "edc.discover_calls", "elf.images_parsed", "elf.bytes_read"}) {
    EXPECT_TRUE((*metrics)["counters"][counter_name].is_number())
        << counter_name;
    ++names;
  }
  for (const char* histogram_name :
       {"phase.target_ns", "tec.evaluate_ns", "bdc.parse_ns",
        "edc.discover_ns"}) {
    EXPECT_TRUE((*metrics)["histograms"][histogram_name].is_object())
        << histogram_name;
    ++names;
  }
  EXPECT_GE(names, 8u);
  EXPECT_GE(obs::counter("tec.determinant_checks").value(), 4u);
}

TEST_F(ObsIntegration, SourcePhaseOutputCarriesStructuredEvents) {
  auto home = toolchain::make_site("india");
  const auto* stack =
      home->find_stack(MpiImpl::kOpenMpi, CompilerFamily::kGnu);
  ASSERT_NE(stack, nullptr);
  toolchain::ProgramSource p;
  p.name = "app";
  p.language = toolchain::Language::kC;
  p.libc_features = {"base", "stdio", "math"};
  const auto compiled =
      toolchain::compile_mpi_program(*home, p, *stack, "/home/user/app");
  ASSERT_TRUE(compiled.ok()) << compiled.error();
  ASSERT_TRUE(home->load_module("openmpi/" + stack->version.str() + "-gnu"));
  const auto out = run_source_phase(*home, compiled.value());
  ASSERT_TRUE(out.ok()) << out.error();

  ASSERT_FALSE(out.value().events.empty());
  // Every event has a stable dot-separated name, and render_text() mirrors
  // the messages one-to-one (the CLI's plain-text view).
  for (const auto& event : out.value().events) {
    EXPECT_NE(event.name.find('.'), std::string::npos) << event.name;
  }
  const auto lines = out.value().render_text();
  ASSERT_EQ(lines.size(), out.value().events.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i], out.value().events[i].message);
  }
  // The source phase also produced its own span.
  const auto spans = obs::collector().spans();
  EXPECT_NE(find_span(spans, "feam.source_phase"), nullptr);
  EXPECT_NE(find_span(spans, "source.gather_libraries"), nullptr);
}

}  // namespace
}  // namespace feam
