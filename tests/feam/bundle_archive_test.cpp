#include "feam/bundle_archive.hpp"

#include <gtest/gtest.h>

#include "feam/phases.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

namespace feam {
namespace {

SourcePhaseOutput make_source_output() {
  auto home = toolchain::make_site("india");
  const auto* stack = home->find_stack(site::MpiImpl::kOpenMpi,
                                       site::CompilerFamily::kGnu);
  toolchain::ProgramSource app;
  app.name = "cg.B";
  app.language = toolchain::Language::kFortran;
  app.libc_features = {"base", "stdio", "math"};
  const auto compiled =
      toolchain::compile_mpi_program(*home, app, *stack, "/home/user/cg.B");
  EXPECT_TRUE(compiled.ok());
  home->load_module("openmpi/1.4-gnu");
  auto source = run_source_phase(*home, compiled.value());
  EXPECT_TRUE(source.ok());
  return std::move(source).take();
}

TEST(BundleArchive, RoundTripPreservesEverything) {
  const auto source = make_source_output();
  const auto archive = pack_bundle(source.bundle);
  const auto unpacked = unpack_bundle(archive);
  ASSERT_TRUE(unpacked.ok()) << unpacked.error();
  const Bundle& b = unpacked.value();

  EXPECT_EQ(b.application.path, source.bundle.application.path);
  EXPECT_EQ(b.application.mpi_impl, source.bundle.application.mpi_impl);
  EXPECT_EQ(b.application.required_clib_version,
            source.bundle.application.required_clib_version);
  ASSERT_EQ(b.libraries.size(), source.bundle.libraries.size());
  for (std::size_t i = 0; i < b.libraries.size(); ++i) {
    EXPECT_EQ(b.libraries[i].name, source.bundle.libraries[i].name);
    EXPECT_EQ(b.libraries[i].origin_path, source.bundle.libraries[i].origin_path);
    EXPECT_EQ(b.libraries[i].content, source.bundle.libraries[i].content);
    EXPECT_EQ(b.libraries[i].description.soname,
              source.bundle.libraries[i].description.soname);
  }
  ASSERT_EQ(b.hello_worlds.size(), source.bundle.hello_worlds.size());
  for (std::size_t i = 0; i < b.hello_worlds.size(); ++i) {
    EXPECT_EQ(b.hello_worlds[i].language, source.bundle.hello_worlds[i].language);
    EXPECT_EQ(b.hello_worlds[i].content, source.bundle.hello_worlds[i].content);
  }
  EXPECT_EQ(b.total_bytes(), source.bundle.total_bytes());
  EXPECT_EQ(b.source_environment.clib_version,
            source.bundle.source_environment.clib_version);
}

TEST(BundleArchive, Deterministic) {
  const auto source = make_source_output();
  EXPECT_EQ(pack_bundle(source.bundle), pack_bundle(source.bundle));
}

TEST(BundleArchive, UnpackedBundleDrivesExtendedPrediction) {
  // The full user workflow: pack at the guaranteed site, copy bytes,
  // unpack at the target, run the extended target phase from the unpacked
  // bundle.
  auto source = make_source_output();
  const auto archive = pack_bundle(source.bundle);

  auto home = toolchain::make_site("india");
  const auto* stack = home->find_stack(site::MpiImpl::kOpenMpi,
                                       site::CompilerFamily::kGnu);
  toolchain::ProgramSource app;
  app.name = "cg.B";
  app.language = toolchain::Language::kFortran;
  app.libc_features = {"base", "stdio", "math"};
  const auto compiled =
      toolchain::compile_mpi_program(*home, app, *stack, "/home/user/cg.B");

  auto target = toolchain::make_site("fir");
  target->vfs.write_file("/home/user/cg.B", *home->vfs.read(compiled.value()));
  target->vfs.write_file("/home/user/cg.B.feambundle", archive);

  const auto from_disk = unpack_bundle(*target->vfs.read("/home/user/cg.B.feambundle"));
  ASSERT_TRUE(from_disk.ok());
  SourcePhaseOutput travelled;
  travelled.application = from_disk.value().application;
  travelled.bundle = from_disk.value();
  const auto result =
      run_target_phase(*target, "/home/user/cg.B", &travelled);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_TRUE(result.value().prediction.ready);
}

TEST(BundleArchive, RejectsCorruptInput) {
  const auto source = make_source_output();
  const auto archive = pack_bundle(source.bundle);

  EXPECT_FALSE(unpack_bundle({}).ok());
  EXPECT_FALSE(unpack_bundle({'F', 'E', 'A', 'M'}).ok());

  support::Bytes bad_magic = archive;
  bad_magic[0] = 'X';
  EXPECT_FALSE(unpack_bundle(bad_magic).ok());

  support::Bytes bad_version = archive;
  bad_version[8] = 99;
  EXPECT_FALSE(unpack_bundle(bad_version).ok());

  // Truncations at various depths must fail cleanly, never crash.
  for (const double fraction : {0.1, 0.3, 0.5, 0.7, 0.9, 0.999}) {
    const auto len = static_cast<std::size_t>(
        fraction * static_cast<double>(archive.size()));
    const support::Bytes prefix(archive.begin(),
                                archive.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(unpack_bundle(prefix).ok()) << fraction;
  }

  support::Bytes trailing = archive;
  trailing.push_back(0);
  EXPECT_FALSE(unpack_bundle(trailing).ok());
}

}  // namespace
}  // namespace feam
