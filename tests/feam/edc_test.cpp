#include "feam/edc.hpp"

#include <gtest/gtest.h>

#include "toolchain/testbed.hpp"

namespace feam {
namespace {

using support::Version;

TEST(Edc, DiscoversIsaAndOs) {
  auto s = toolchain::make_site("india");
  const auto env = Edc::discover(*s);
  EXPECT_EQ(env.isa, "x86_64");
  EXPECT_EQ(env.bits, 64);
  EXPECT_NE(env.os_type.find("Linux 2.6.18"), std::string::npos);
  EXPECT_NE(env.distro.find("Red Hat Enterprise Linux Server release 5.6"),
            std::string::npos);
}

class EdcTestbedTest : public ::testing::TestWithParam<const char*> {};

// Discovery must recover each site's configured truth purely from the
// filesystem/environment surface.
TEST_P(EdcTestbedTest, ClibVersionMatchesConfiguration) {
  auto s = toolchain::make_site(GetParam());
  const auto env = Edc::discover(*s);
  ASSERT_TRUE(env.clib_version.has_value()) << GetParam();
  EXPECT_EQ(*env.clib_version, s->clib_version);
  EXPECT_EQ(env.clib_discovery_method, "executed C library");
}

TEST_P(EdcTestbedTest, AllConfiguredStacksDiscovered) {
  auto s = toolchain::make_site(GetParam());
  const auto env = Edc::discover(*s);
  EXPECT_EQ(env.stacks.size(), s->stacks.size());
  for (const auto& configured : s->stacks) {
    const bool found = std::any_of(
        env.stacks.begin(), env.stacks.end(), [&](const DiscoveredStack& d) {
          return d.impl == configured.impl &&
                 d.compiler == configured.compiler &&
                 d.version == configured.version;
        });
    EXPECT_TRUE(found) << GetParam() << " missing " << configured.slug();
  }
}

TEST_P(EdcTestbedTest, WrapperProbingRecoversCompilerVersions) {
  auto s = toolchain::make_site(GetParam());
  const auto env = Edc::discover(*s);
  for (const auto& discovered : env.stacks) {
    ASSERT_TRUE(discovered.compiler_version.has_value()) << discovered.id;
    const auto* configured = s->stack_for_module(discovered.id);
    if (configured != nullptr) {
      EXPECT_EQ(*discovered.compiler_version, configured->compiler_version)
          << discovered.id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSites, EdcTestbedTest,
                         ::testing::Values("ranger", "forge", "blacklight",
                                           "india", "fir"),
                         [](const auto& param_info) { return std::string(param_info.param); });

TEST(Edc, DetectsUserEnvTools) {
  EXPECT_EQ(Edc::discover(*toolchain::make_site("india")).user_env_tool,
            site::UserEnvTool::kModules);
  EXPECT_EQ(Edc::discover(*toolchain::make_site("forge")).user_env_tool,
            site::UserEnvTool::kSoftEnv);
}

TEST(Edc, ClibFallbackToLibraryApi) {
  auto s = toolchain::make_site("blacklight");
  s->libc_executable = false;  // degraded: cannot run the C library binary
  const auto env = Edc::discover(*s);
  ASSERT_TRUE(env.clib_version.has_value());
  // The library API reports the newest *version node*, 2.11 — micro
  // releases like 2.11.1 define no node of their own, so the fallback is
  // slightly coarser than the banner (and conservatively correct).
  EXPECT_EQ(*env.clib_version, Version::of("2.11"));
  EXPECT_EQ(env.clib_discovery_method, "library API");
}

TEST(Edc, FilesystemSearchWhenNoToolPresent) {
  auto s = toolchain::make_site("india");
  // Strip the user-environment tool surface.
  s->vfs.remove("/usr/bin/modulecmd");
  s->vfs.remove("/usr/share/Modules");
  const auto env = Edc::discover(*s);
  EXPECT_EQ(env.user_env_tool, site::UserEnvTool::kNone);
  // Stacks are still found by searching /opt for MPI libraries and parsing
  // the path naming scheme.
  EXPECT_EQ(env.stacks.size(), s->stacks.size());
  bool found_openmpi_intel = false;
  for (const auto& stack : env.stacks) {
    if (stack.impl == site::MpiImpl::kOpenMpi &&
        stack.compiler == site::CompilerFamily::kIntel) {
      found_openmpi_intel = true;
      EXPECT_EQ(stack.prefix, "/opt/openmpi-1.4-intel");
    }
  }
  EXPECT_TRUE(found_openmpi_intel);
}

TEST(Edc, CurrentlyLoadedStackIsFlagged) {
  auto s = toolchain::make_site("fir");
  {
    const auto env = Edc::discover(*s);
    for (const auto& stack : env.stacks) {
      EXPECT_FALSE(stack.currently_loaded);
    }
  }
  s->load_module("mvapich2/1.7a-intel");
  const auto env = Edc::discover(*s);
  int loaded = 0;
  for (const auto& stack : env.stacks) {
    if (stack.currently_loaded) {
      ++loaded;
      EXPECT_EQ(stack.id, "mvapich2/1.7a-intel");
    }
  }
  EXPECT_EQ(loaded, 1);
}

TEST(Edc, StacksOfFiltersByImplementation) {
  auto s = toolchain::make_site("india");
  const auto env = Edc::discover(*s);
  EXPECT_EQ(env.stacks_of(site::MpiImpl::kOpenMpi).size(), 2u);
  EXPECT_EQ(env.stacks_of(site::MpiImpl::kMvapich2).size(), 2u);
  EXPECT_EQ(env.stacks_of(site::MpiImpl::kMpich2).size(), 2u);
}

TEST(Edc, DisplayString) {
  DiscoveredStack stack;
  stack.impl = site::MpiImpl::kOpenMpi;
  stack.version = Version::of("1.4");
  stack.compiler = site::CompilerFamily::kIntel;
  EXPECT_EQ(stack.display(), "Open MPI v1.4 (i)");
}

}  // namespace
}  // namespace feam
