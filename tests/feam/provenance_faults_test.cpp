// Provenance under Vfs fault injection: a scan that hit injected faults
// saw a degraded view of an unchanged site, so no cache may memoize the
// evidence it recorded — a later hit must replay only clean-scan
// evidence, byte-identical to an uncached clean evaluation.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "feam/bdc.hpp"
#include "feam/caches.hpp"
#include "feam/edc.hpp"
#include "obs/provenance.hpp"
#include "site/fault.hpp"
#include "site/vfs.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

namespace feam {
namespace {

using site::CompilerFamily;
using site::MpiImpl;

std::shared_ptr<site::FaultInjector> make_injector(double rate,
                                                   std::uint64_t seed) {
  site::FaultInjector::Options options;
  options.seed = seed;
  options.rate = rate;
  return std::make_shared<site::FaultInjector>(options);
}

std::string compile_app(site::Site& s, const char* name) {
  const auto* stack = s.find_stack(MpiImpl::kOpenMpi, CompilerFamily::kGnu);
  EXPECT_NE(stack, nullptr);
  toolchain::ProgramSource p;
  p.name = name;
  p.language = toolchain::Language::kC;
  p.libc_features = {"base", "stdio"};
  const auto r = toolchain::compile_mpi_program(
      s, p, *stack, std::string("/home/user/apps/") + name);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error());
  return r.value();
}

TEST(ProvenanceFaults, EdcMemoNeverServesFaultedScanEvidence) {
  auto s = toolchain::make_site("india");

  // Reference: the clean uncached scan's evidence.
  obs::EvidenceSet clean;
  {
    obs::ProvenanceScope scope(clean);
    (void)Edc::discover(*s);
  }
  ASSERT_FALSE(clean.empty());

  auto injector = make_injector(0.4, 20130613);
  s->vfs.set_fault_injector(injector);

  EdcMemo memo;
  // Several discovery attempts while faults fire. Whatever evidence these
  // scans recorded reflects torn/short/absent reads of an unchanged site
  // and must not end up in a memo entry.
  injector->set_enabled(true);
  for (int attempt = 0; attempt < 6; ++attempt) {
    obs::EvidenceSet scratch;
    obs::ProvenanceScope scope(scratch);
    (void)memo.discover(*s);
  }
  ASSERT_GT(injector->fault_count(), 0u)
      << "injection must actually fire for this test to mean anything";
  injector->set_enabled(false);

  // First clean discovery re-scans (nothing clean was memoized) and fills
  // the entry; the second is served from the memo and replays the stored
  // evidence. Both must match the clean uncached reference exactly.
  for (int round = 0; round < 2; ++round) {
    obs::EvidenceSet via_memo;
    {
      obs::ProvenanceScope scope(via_memo);
      (void)memo.discover(*s);
    }
    EXPECT_TRUE(via_memo == clean) << "round " << round;
    EXPECT_EQ(via_memo.to_json().dump(), clean.to_json().dump())
        << "round " << round;
  }
  EXPECT_GT(memo.hits(), 0u) << "the second clean discovery must be a hit";
}

TEST(ProvenanceFaults, BdcCacheEvidenceMatchesDirectDescribeAfterFaults) {
  auto s = toolchain::make_site("india");
  const std::string path = compile_app(*s, "probe");

  obs::EvidenceSet clean;
  {
    obs::ProvenanceScope scope(clean);
    const auto direct = Bdc::describe(*s, path);
    ASSERT_TRUE(direct.ok()) << direct.error();
  }
  ASSERT_FALSE(clean.empty());

  auto injector = make_injector(1.0, 7);
  s->vfs.set_fault_injector(injector);

  BdcCache cache;
  // Every read faults: describe fails (or sees degraded bytes) and the
  // cache must not retain a poisoned entry for the path.
  injector->set_enabled(true);
  for (int attempt = 0; attempt < 4; ++attempt) {
    obs::EvidenceSet scratch;
    obs::ProvenanceScope scope(scratch);
    (void)cache.describe(*s, path);
  }
  ASSERT_GT(injector->fault_count(), 0u);
  injector->set_enabled(false);

  // Clean lookups — cold fill, then a hit — both yield the clean
  // evidence, never anything recorded while faults were firing.
  for (int round = 0; round < 2; ++round) {
    obs::EvidenceSet via_cache;
    {
      obs::ProvenanceScope scope(via_cache);
      const auto described = cache.describe(*s, path);
      ASSERT_TRUE(described.ok()) << described.error();
    }
    EXPECT_TRUE(via_cache == clean) << "round " << round;
    EXPECT_EQ(via_cache.to_json().dump(), clean.to_json().dump())
        << "round " << round;
  }
}

}  // namespace
}  // namespace feam
