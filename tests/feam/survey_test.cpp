#include "feam/survey.hpp"

#include <gtest/gtest.h>

#include "feam/caches.hpp"
#include "support/strings.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

namespace feam {
namespace {

using site::CompilerFamily;
using site::MpiImpl;

struct Fixture {
  std::vector<std::unique_ptr<site::Site>> owned;
  std::vector<site::Site*> sites;
  support::Bytes binary;
  std::unique_ptr<site::Site> home;
  SourcePhaseOutput source;
};

Fixture make_fixture(MpiImpl impl, CompilerFamily fam,
                     toolchain::Language lang) {
  Fixture f;
  f.home = toolchain::make_site("india");
  toolchain::ProgramSource app;
  app.name = "probe";
  app.language = lang;
  app.libc_features = {"base", "stdio", "math"};
  const auto* stack = f.home->find_stack(impl, fam);
  EXPECT_NE(stack, nullptr);
  const auto compiled = toolchain::compile_mpi_program(*f.home, app, *stack,
                                                       "/home/user/probe");
  EXPECT_TRUE(compiled.ok());
  f.binary = *f.home->vfs.read(compiled.value());
  f.home->load_module(std::string(site::mpi_impl_slug(impl)) + "/" +
                      stack->version.str() + "-" + site::compiler_slug(fam));
  f.source = run_source_phase(*f.home, compiled.value()).take();

  for (const auto& name : toolchain::testbed_site_names()) {
    if (name == "india") continue;
    f.owned.push_back(toolchain::make_site(name));
    f.sites.push_back(f.owned.back().get());
  }
  return f;
}

TEST(Survey, RanksReadySitesFirst) {
  auto f = make_fixture(MpiImpl::kOpenMpi, CompilerFamily::kIntel,
                        toolchain::Language::kC);
  const auto report = survey_sites(f.sites, "probe", f.binary, &f.source);
  ASSERT_EQ(report.entries.size(), 4u);
  EXPECT_GT(report.ready_count(), 0u);
  // Ready entries are a prefix of the ranking.
  bool seen_not_ready = false;
  for (const auto& entry : report.entries) {
    if (!entry.ready) seen_not_ready = true;
    if (seen_not_ready) {
      EXPECT_FALSE(entry.ready);
    }
  }
}

TEST(Survey, BlockedSitesNameTheDeterminant) {
  // An MPICH2 binary: only Fir (among the non-home sites) has MPICH2.
  auto f = make_fixture(MpiImpl::kMpich2, CompilerFamily::kGnu,
                        toolchain::Language::kC);
  const auto report = survey_sites(f.sites, "probe", f.binary, &f.source);
  for (const auto& entry : report.entries) {
    if (entry.ready) continue;
    EXPECT_FALSE(entry.blocking_determinant.empty()) << entry.site_name;
    EXPECT_FALSE(entry.reason.empty()) << entry.site_name;
  }
  // Forge/Blacklight lack MPICH2 entirely; Ranger also lacks it, but its
  // older C library blocks first (the determinants are ordered, paper V.C).
  int no_stack = 0;
  std::string ranger_determinant;
  for (const auto& entry : report.entries) {
    no_stack += support::contains(entry.reason, "no MPICH2 stack");
    if (entry.site_name == "ranger") {
      ranger_determinant = entry.blocking_determinant;
    }
  }
  EXPECT_EQ(no_stack, 2);
  EXPECT_EQ(ranger_determinant, "C library compatibility");
}

TEST(Survey, RenderIsATable) {
  auto f = make_fixture(MpiImpl::kOpenMpi, CompilerFamily::kGnu,
                        toolchain::Language::kC);
  const auto report = survey_sites(f.sites, "probe", f.binary, &f.source);
  const std::string text = report.render();
  EXPECT_TRUE(support::contains(text, "Site"));
  EXPECT_TRUE(support::contains(text, "Verdict"));
  for (const auto& entry : report.entries) {
    EXPECT_TRUE(support::contains(text, entry.site_name));
  }
}

TEST(Survey, SitesLeftClean) {
  auto f = make_fixture(MpiImpl::kOpenMpi, CompilerFamily::kGnu,
                        toolchain::Language::kC);
  (void)survey_sites(f.sites, "probe", f.binary, &f.source);
  for (const site::Site* s : f.sites) {
    EXPECT_FALSE(s->vfs.exists("/home/user/probe")) << s->name;
    EXPECT_TRUE(s->loaded_modules().empty()) << s->name;
  }
}

TEST(Survey, PooledSurveyMatchesSequentialAndRestoresSites) {
  auto f = make_fixture(MpiImpl::kOpenMpi, CompilerFamily::kGnu,
                        toolchain::Language::kC);
  const auto sequential = survey_sites(f.sites, "probe", f.binary, &f.source);

  MigrationCaches caches;
  SurveyOptions options;
  options.jobs = 4;
  options.caches = &caches;
  const auto pooled =
      survey_sites(f.sites, "probe", f.binary, &f.source, {}, options);

  ASSERT_EQ(pooled.entries.size(), sequential.entries.size());
  for (std::size_t i = 0; i < pooled.entries.size(); ++i) {
    EXPECT_EQ(pooled.entries[i].site_name, sequential.entries[i].site_name);
    EXPECT_EQ(pooled.entries[i].ready, sequential.entries[i].ready);
    EXPECT_EQ(pooled.entries[i].blocking_determinant,
              sequential.entries[i].blocking_determinant);
    EXPECT_EQ(pooled.entries[i].resolved_copies,
              sequential.entries[i].resolved_copies);
  }
  EXPECT_EQ(pooled.render(), sequential.render());

  // Workers held each site's lease and restored it exactly as found.
  for (const site::Site* s : f.sites) {
    EXPECT_FALSE(s->vfs.exists("/home/user/probe")) << s->name;
    EXPECT_TRUE(s->loaded_modules().empty()) << s->name;
  }
}

TEST(Survey, SitesRestoredEvenWhenTheTargetPhaseErrors) {
  auto f = make_fixture(MpiImpl::kOpenMpi, CompilerFamily::kGnu,
                        toolchain::Language::kC);
  // Non-ELF bytes make the target phase error at every site; the sites
  // must still be restored exactly as found, including a module that was
  // already loaded before the survey.
  site::Site* victim = f.sites.front();
  const auto modules = victim->available_modules();
  ASSERT_FALSE(modules.empty());
  victim->load_module(modules.front());

  const support::Bytes garbage = {'n', 'o', 't', ' ', 'e', 'l', 'f'};
  const auto report = survey_sites(f.sites, "probe", garbage, &f.source);

  for (const auto& entry : report.entries) {
    EXPECT_FALSE(entry.ready) << entry.site_name;
    EXPECT_EQ(entry.blocking_determinant, "error") << entry.site_name;
  }
  EXPECT_EQ(victim->loaded_modules(),
            std::vector<std::string>{modules.front()});
  for (const site::Site* s : f.sites) {
    EXPECT_FALSE(s->vfs.exists("/home/user/probe")) << s->name;
  }
}

TEST(Survey, BasicModeWithoutBundle) {
  auto f = make_fixture(MpiImpl::kMvapich2, CompilerFamily::kIntel,
                        toolchain::Language::kC);
  const auto basic = survey_sites(f.sites, "probe", f.binary, nullptr);
  const auto extended = survey_sites(f.sites, "probe", f.binary, &f.source);
  // Resolution can only help: extended readiness dominates basic.
  EXPECT_GE(extended.ready_count(), basic.ready_count());
}

}  // namespace
}  // namespace feam
