#include "feam/phases.hpp"

#include <gtest/gtest.h>

#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

namespace feam {
namespace {

using site::CompilerFamily;
using site::MpiImpl;

struct HomeSetup {
  std::unique_ptr<site::Site> site;
  std::string path;
};

HomeSetup compiled_home(const char* site_name, MpiImpl impl,
                        CompilerFamily fam, toolchain::Language lang) {
  HomeSetup h;
  h.site = toolchain::make_site(site_name);
  const auto* stack = h.site->find_stack(impl, fam);
  EXPECT_NE(stack, nullptr);
  toolchain::ProgramSource p;
  p.name = "app";
  p.language = lang;
  p.libc_features = {"base", "stdio", "math"};
  const auto r =
      toolchain::compile_mpi_program(*h.site, p, *stack, "/home/user/app");
  EXPECT_TRUE(r.ok()) << r.error();
  h.path = r.value();
  const std::string module = std::string(site::mpi_impl_slug(impl)) + "/" +
                             stack->version.str() + "-" +
                             site::compiler_slug(fam);
  h.site->load_module(module);
  return h;
}

TEST(SourcePhase, GathersCopiesOfEverythingButLibc) {
  auto h = compiled_home("india", MpiImpl::kOpenMpi, CompilerFamily::kGnu,
                         toolchain::Language::kFortran);
  const auto out = run_source_phase(*h.site, h.path);
  ASSERT_TRUE(out.ok()) << out.error();
  const Bundle& bundle = out.value().bundle;

  // Direct and transitive dependencies are copied...
  EXPECT_NE(bundle.find_library("libmpi.so.0"), nullptr);
  EXPECT_NE(bundle.find_library("libmpi_f77.so.0"), nullptr);
  EXPECT_NE(bundle.find_library("libopen-pal.so.0"), nullptr);  // transitive
  EXPECT_NE(bundle.find_library("libgfortran.so.1"), nullptr);
  EXPECT_NE(bundle.find_library("libm.so.6"), nullptr);
  // ...except the C library and the dynamic loader (paper V.A).
  EXPECT_EQ(bundle.find_library("libc.so.6"), nullptr);
  for (const auto& lib : bundle.libraries) {
    EXPECT_EQ(lib.name.find("ld-linux"), std::string::npos);
    EXPECT_FALSE(lib.content.empty());
    EXPECT_EQ(lib.description.soname, lib.name);
  }
}

TEST(SourcePhase, CompilesHelloWorldsWithSelectedStack) {
  auto h = compiled_home("india", MpiImpl::kOpenMpi, CompilerFamily::kGnu,
                         toolchain::Language::kFortran);
  const auto out = run_source_phase(*h.site, h.path);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().bundle.hello_worlds.size(), 2u);  // C + Fortran
  EXPECT_EQ(out.value().bundle.hello_worlds[0].language,
            toolchain::Language::kC);
  EXPECT_EQ(out.value().bundle.hello_worlds[1].language,
            toolchain::Language::kFortran);
  EXPECT_FALSE(out.value().bundle.hello_worlds[0].content.empty());
}

TEST(SourcePhase, ConfirmsSelectedStackMatches) {
  auto h = compiled_home("india", MpiImpl::kOpenMpi, CompilerFamily::kGnu,
                         toolchain::Language::kC);
  const auto out = run_source_phase(*h.site, h.path);
  ASSERT_TRUE(out.ok());
  bool confirmed = false;
  for (const auto& line : out.value().render_text()) {
    confirmed |= line.find("selected stack matches binary") != std::string::npos;
  }
  EXPECT_TRUE(confirmed);
}

TEST(SourcePhase, WarnsOnStackMismatch) {
  auto h = compiled_home("india", MpiImpl::kOpenMpi, CompilerFamily::kGnu,
                         toolchain::Language::kC);
  h.site->unload_all_modules();
  h.site->load_module("mpich2/1.4-gnu");  // wrong stack selected
  const auto out = run_source_phase(*h.site, h.path);
  ASSERT_TRUE(out.ok());
  bool warned = false;
  for (const auto& line : out.value().render_text()) {
    warned |= line.find("does not match") != std::string::npos;
  }
  EXPECT_TRUE(warned);
}

TEST(SourcePhase, BundleManifestIsSelfDescribing) {
  auto h = compiled_home("fir", MpiImpl::kMpich2, CompilerFamily::kIntel,
                         toolchain::Language::kC);
  const auto out = run_source_phase(*h.site, h.path);
  ASSERT_TRUE(out.ok());
  const auto manifest = out.value().bundle.manifest();
  EXPECT_TRUE(manifest.has("application"));
  EXPECT_GT(manifest["libraries"].as_array().size(), 3u);
  EXPECT_EQ(static_cast<std::size_t>(manifest.get_int("total_bytes")),
            out.value().bundle.total_bytes());
  // Manifest survives a text round-trip (it travels between sites).
  const auto reparsed = support::Json::parse(manifest.dump(2));
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ((*reparsed)["libraries"].as_array().size(),
            manifest["libraries"].as_array().size());
}

TEST(SourcePhase, FailsOnUndescribableBinary) {
  auto s = toolchain::make_site("india");
  s->vfs.write_file("/home/user/script", "#!/bin/sh\n");
  EXPECT_FALSE(run_source_phase(*s, "/home/user/script").ok());
  EXPECT_FALSE(run_source_phase(*s, "/missing").ok());
}

TEST(TargetPhase, RequiresBinaryOrBundle) {
  auto s = toolchain::make_site("fir");
  const auto r = run_target_phase(*s, "/not/here", nullptr);
  EXPECT_FALSE(r.ok());
}

TEST(TargetPhase, BasicPredictionWithBinaryOnly) {
  auto h = compiled_home("india", MpiImpl::kOpenMpi, CompilerFamily::kIntel,
                         toolchain::Language::kC);
  auto target = toolchain::make_site("fir");
  target->vfs.write_file("/home/user/migrated/app",
                         *h.site->vfs.read(h.path));
  const auto r = run_target_phase(*target, "/home/user/migrated/app");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_TRUE(r.value().prediction.ready);
  EXPECT_EQ(r.value().application.mpi_impl, MpiImpl::kOpenMpi);
  EXPECT_EQ(r.value().environment.isa, "x86_64");
}

TEST(TargetPhase, ExtendedWithoutBinaryUsesBundleDescription) {
  auto h = compiled_home("india", MpiImpl::kOpenMpi, CompilerFamily::kIntel,
                         toolchain::Language::kC);
  const auto source = run_source_phase(*h.site, h.path);
  ASSERT_TRUE(source.ok());
  auto target = toolchain::make_site("fir");
  const auto r = run_target_phase(*target, "", &source.value());
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_TRUE(r.value().prediction.ready);
  // The description travelled from the source phase.
  EXPECT_EQ(r.value().application.path, h.path);
}

TEST(TargetPhase, BundleSizeIsModest) {
  // Section VI.C: a per-site all-binaries bundle averaged ~45M; a single
  // binary's bundle must be far below that.
  auto h = compiled_home("india", MpiImpl::kOpenMpi, CompilerFamily::kGnu,
                         toolchain::Language::kFortran);
  const auto out = run_source_phase(*h.site, h.path);
  ASSERT_TRUE(out.ok());
  EXPECT_LT(out.value().bundle.total_bytes(), 20u * 1024 * 1024);
  EXPECT_GT(out.value().bundle.total_bytes(), 1u * 1024 * 1024);
}

}  // namespace
}  // namespace feam
