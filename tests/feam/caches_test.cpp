// The migration-engine memoization layer: content-addressed BDC cache
// (including the injected-hash collision path and the write-stamp fast
// path), the fingerprint-keyed EDC memo, and the resolver cache's exact
// invalidation on site mutation.
#include "feam/caches.hpp"

#include <gtest/gtest.h>

#include "binutils/ldd.hpp"
#include "binutils/resolver.hpp"
#include "binutils/resolver_cache.hpp"
#include "feam/bdc.hpp"
#include "feam/edc.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

namespace feam {
namespace {

using site::CompilerFamily;
using site::MpiImpl;

std::string compile_app(site::Site& s, const char* name,
                        std::vector<std::string> libc_features) {
  const auto* stack = s.find_stack(MpiImpl::kOpenMpi, CompilerFamily::kGnu);
  EXPECT_NE(stack, nullptr);
  toolchain::ProgramSource p;
  p.name = name;
  p.language = toolchain::Language::kC;
  p.libc_features = std::move(libc_features);
  const auto r = toolchain::compile_mpi_program(
      s, p, *stack, std::string("/home/user/apps/") + name);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error());
  return r.value();
}

// ------------------------------------------------------------- BdcCache

TEST(BdcCache, RepeatDescribeOfUnchangedFileHits) {
  auto s = toolchain::make_site("india");
  const std::string path = compile_app(*s, "probe", {"base", "stdio"});

  BdcCache cache;
  const auto first = cache.describe(*s, path);
  ASSERT_TRUE(first.ok()) << first.error();
  const auto second = cache.describe(*s, path);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(first.value().file_format, second.value().file_format);
  EXPECT_EQ(first.value().required_libraries, second.value().required_libraries);
}

TEST(BdcCache, ByteIdenticalCopyAtAnotherPathHitsWithPathRewritten) {
  auto s = toolchain::make_site("india");
  const std::string path = compile_app(*s, "probe", {"base", "stdio"});
  const std::string copy_path = "/tmp/probe.copy";
  ASSERT_TRUE(s->vfs.write_file(copy_path, *s->vfs.read(path)));

  BdcCache cache;
  ASSERT_TRUE(cache.describe(*s, path).ok());
  const auto copied = cache.describe(*s, copy_path);
  ASSERT_TRUE(copied.ok());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  // The description is served from cache, but `path` names the copy.
  EXPECT_EQ(copied.value().path, copy_path);
}

TEST(BdcCache, DifferentBytesMiss) {
  auto s = toolchain::make_site("india");
  const std::string a = compile_app(*s, "alpha", {"base", "stdio"});
  const std::string b = compile_app(*s, "beta", {"base", "stdio", "math"});

  BdcCache cache;
  ASSERT_TRUE(cache.describe(*s, a).ok());
  ASSERT_TRUE(cache.describe(*s, b).ok());
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(BdcCache, RebuildAtTheSamePathIsDescribedFresh) {
  auto s = toolchain::make_site("india");
  const std::string a = compile_app(*s, "alpha", {"base", "stdio"});
  const std::string b = compile_app(*s, "beta", {"base", "stdio", "math"});
  const support::Bytes b_bytes = *s->vfs.read(b);

  BdcCache cache;
  const auto before = cache.describe(*s, a);
  ASSERT_TRUE(before.ok());
  // Rebuild: byte-different content lands at the old path. The write stamp
  // changes, so the fast path must not serve the stale description.
  ASSERT_TRUE(s->vfs.write_file(a, b_bytes));
  const auto after = cache.describe(*s, a);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(cache.misses(), 2u);
  const auto direct = Bdc::describe(*s, a);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(after.value().required_libraries, direct.value().required_libraries);
  // And the fresh entry is served on the next lookup.
  ASSERT_TRUE(cache.describe(*s, a).ok());
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(BdcCache, InjectedWeakHashCollisionsDegradeToMissesNotWrongAnswers) {
  auto s = toolchain::make_site("india");
  const std::string a = compile_app(*s, "alpha", {"base", "stdio"});
  const std::string b = compile_app(*s, "beta", {"base", "stdio", "math"});

  // Every input hashes to 42: the two binaries collide, and only the
  // byte-compare chain keeps the answers apart.
  BdcCache cache([](const support::Bytes&) { return 42ull; });
  const auto first = cache.describe(*s, a);
  const auto second = cache.describe(*s, b);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cache.misses(), 2u);

  const auto direct_a = Bdc::describe(*s, a);
  const auto direct_b = Bdc::describe(*s, b);
  EXPECT_EQ(first.value().required_libraries,
            direct_a.value().required_libraries);
  EXPECT_EQ(second.value().required_libraries,
            direct_b.value().required_libraries);

  // Both colliding entries are retrievable as hits afterwards.
  ASSERT_TRUE(cache.describe(*s, a).ok());
  ASSERT_TRUE(cache.describe(*s, b).ok());
  EXPECT_EQ(cache.hits(), 2u);
}

// -------------------------------------------------------------- EdcMemo

TEST(EdcMemo, HitsWhileTheSiteIsUnchanged) {
  auto s = toolchain::make_site("india");
  EdcMemo memo;
  const auto first = memo.discover(*s);
  const auto second = memo.discover(*s);
  EXPECT_EQ(memo.misses(), 1u);
  EXPECT_EQ(memo.hits(), 1u);
  EXPECT_EQ(first.site_name, second.site_name);
  EXPECT_EQ(first.isa, second.isa);
  EXPECT_EQ(first.stacks.size(), second.stacks.size());
}

TEST(EdcMemo, ModuleLoadInvalidatesAndRestoreRehits) {
  auto s = toolchain::make_site("india");
  EdcMemo memo;
  (void)memo.discover(*s);  // miss 1: cold

  const auto modules = s->available_modules();
  ASSERT_FALSE(modules.empty());
  s->load_module(modules.front());
  const auto loaded = memo.discover(*s);  // miss 2: module loaded
  EXPECT_EQ(memo.misses(), 2u);

  // Unloading restores the shell to its cold-scan content; the fingerprint
  // returns to its original value and the cold entry is served again.
  s->unload_all_modules();
  (void)memo.discover(*s);
  EXPECT_EQ(memo.misses(), 2u);
  EXPECT_EQ(memo.hits(), 1u);

  // Both shell states stay memoized: re-loading the module hits too.
  s->load_module(modules.front());
  const auto reloaded = memo.discover(*s);
  EXPECT_EQ(memo.misses(), 2u);
  EXPECT_EQ(memo.hits(), 2u);
  EXPECT_EQ(loaded.stacks.size(), reloaded.stacks.size());
}

TEST(EdcMemo, ScratchWritesDoNotInvalidateButSystemWritesDo) {
  auto s = toolchain::make_site("india");
  EdcMemo memo;
  (void)memo.discover(*s);  // miss 1: cold

  // Migration scratch — binaries landing in the user's home, hello-world
  // probes in /tmp — is invisible to the discovery scan.
  s->vfs.write_file("/home/user/migrated/probe.x", "bits");
  s->vfs.write_file("/tmp/feam_hw_native_c.probe", "bits");
  s->vfs.remove("/tmp/feam_hw_native_c.probe");
  (void)memo.discover(*s);
  EXPECT_EQ(memo.misses(), 1u);
  EXPECT_EQ(memo.hits(), 1u);

  // Installing software under a system prefix is a real site change.
  s->vfs.write_file("/usr/share/Modules/modulefiles/new/1.0", "#%Module1.0\n");
  (void)memo.discover(*s);
  EXPECT_EQ(memo.misses(), 2u);
}

// Regression for the 50% hit-rate plateau: every migration pair runs two
// discoveries back to back (basic then extended prediction), and the
// execution/cleanup that follows only touches scratch paths and
// save/restored shell state. Under generation keying the second pair's
// first discovery always missed; under fingerprint keying every discovery
// after the first hits.
TEST(EdcMemo, BackToBackPairsHitAcrossExecutionScratch) {
  auto s = toolchain::make_site("india");
  const auto modules = s->available_modules();
  ASSERT_FALSE(modules.empty());

  EdcMemo memo;
  for (int pair = 0; pair < 3; ++pair) {
    (void)memo.discover(*s);  // basic prediction
    (void)memo.discover(*s);  // extended prediction
    // Execution + cleanup: migrated binary, naive run with a module
    // loaded/unloaded, resolution copies written and removed.
    s->vfs.write_file("/home/user/migrated/app.x", "bits");
    s->load_module(modules.front());
    s->unload_all_modules();
    s->vfs.write_file("/home/user/feam_resolved/app.x/libm.so.6", "lib");
    s->vfs.remove("/home/user/feam_resolved");
    s->vfs.remove("/home/user/migrated/app.x");
  }
  EXPECT_EQ(memo.misses(), 1u);
  EXPECT_EQ(memo.hits(), 5u);
}

TEST(EdcMemo, DistinctSitesDoNotShareEntries) {
  auto india = toolchain::make_site("india");
  auto fir = toolchain::make_site("fir");
  EdcMemo memo;
  const auto a = memo.discover(*india);
  const auto b = memo.discover(*fir);
  EXPECT_EQ(memo.misses(), 2u);
  EXPECT_NE(a.site_name, b.site_name);
}

// -------------------------------------------------------- ResolverCache

TEST(ResolverCache, SearchMemoServesRepeatsAndSeesAppearingFiles) {
  auto s = toolchain::make_site("india");
  binutils::ResolverCache cache;
  const std::vector<std::string> override_dir = {"/tmp/override"};

  const auto first = binutils::search_library(*s, "libc.so.6", 64, {},
                                              override_dir, &cache);
  ASSERT_TRUE(first.has_value());  // resolved from the default directories

  const std::uint64_t hits_before = cache.hits();
  const auto repeat = binutils::search_library(*s, "libc.so.6", 64, {},
                                               override_dir, &cache);
  EXPECT_EQ(repeat, first);
  EXPECT_GT(cache.hits(), hits_before);

  // A copy appearing in an earlier search directory MUST invalidate the
  // memo: the candidate path's write stamp changed from absent to present.
  ASSERT_TRUE(s->vfs.write_file("/tmp/override/libc.so.6", *s->vfs.read(*first)));
  const auto after = binutils::search_library(*s, "libc.so.6", 64, {},
                                              override_dir, &cache);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(*after, "/tmp/override/libc.so.6");
}

TEST(ResolverCache, LddMemoInvalidatedByAnySiteMutation) {
  auto s = toolchain::make_site("india");
  const std::string path = compile_app(*s, "probe", {"base", "stdio"});
  s->load_module("openmpi/1.4-gnu");

  binutils::ResolverCache cache;
  const auto first = binutils::ldd(*s, path, false, &cache);
  ASSERT_TRUE(first.ok()) << first.error();

  const std::uint64_t hits_before = cache.hits();
  const auto repeat = binutils::ldd(*s, path, false, &cache);
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(repeat.value(), first.value());
  EXPECT_GT(cache.hits(), hits_before);

  // An environment edit bumps the env generation: recomputed, same text.
  const std::uint64_t misses_before = cache.misses();
  s->env.set("FEAM_PROBE", "1");
  const auto recomputed = binutils::ldd(*s, path, false, &cache);
  ASSERT_TRUE(recomputed.ok());
  EXPECT_EQ(recomputed.value(), first.value());
  EXPECT_GT(cache.misses(), misses_before);
}

TEST(ResolverCache, ParseMemoKeyedOnWriteStamp) {
  auto s = toolchain::make_site("india");
  const std::string a = compile_app(*s, "alpha", {"base", "stdio"});
  const std::string b = compile_app(*s, "beta", {"base", "stdio", "math"});
  const support::Bytes b_bytes = *s->vfs.read(b);

  binutils::ResolverCache cache;
  const elf::ElfFile* first = cache.parsed_elf(*s, a, *s->vfs.read(a));
  ASSERT_NE(first, nullptr);
  // Unchanged file: the exact same entry is served again.
  EXPECT_EQ(cache.parsed_elf(*s, a, *s->vfs.read(a)), first);

  // Rewritten file: new write stamp, new parse reflecting the new bytes.
  ASSERT_TRUE(s->vfs.write_file(a, b_bytes));
  const elf::ElfFile* rewritten = cache.parsed_elf(*s, a, *s->vfs.read(a));
  ASSERT_NE(rewritten, nullptr);
  EXPECT_NE(rewritten, first);
  EXPECT_EQ(rewritten->file_size(), b_bytes.size());

  // Non-ELF content parses to nullptr, memoized the same way.
  ASSERT_TRUE(s->vfs.write_file("/tmp/script.sh", "#!/bin/sh\n"));
  EXPECT_EQ(cache.parsed_elf(*s, "/tmp/script.sh",
                             *s->vfs.read("/tmp/script.sh")),
            nullptr);
  EXPECT_EQ(cache.parsed_elf(*s, "/tmp/script.sh",
                             *s->vfs.read("/tmp/script.sh")),
            nullptr);
}

TEST(ResolverCache, CachedResolutionMatchesUncached) {
  auto s = toolchain::make_site("india");
  const std::string path = compile_app(*s, "probe", {"base", "stdio"});
  s->load_module("openmpi/1.4-gnu");

  binutils::ResolverCache cache;
  const auto uncached = binutils::resolve_libraries(*s, path);
  const auto cached_cold = binutils::resolve_libraries(*s, path, {}, &cache);
  const auto cached_warm = binutils::resolve_libraries(*s, path, {}, &cache);
  ASSERT_EQ(uncached.libs.size(), cached_cold.libs.size());
  ASSERT_EQ(uncached.libs.size(), cached_warm.libs.size());
  for (std::size_t i = 0; i < uncached.libs.size(); ++i) {
    EXPECT_EQ(uncached.libs[i].name, cached_warm.libs[i].name);
    EXPECT_EQ(uncached.libs[i].path, cached_warm.libs[i].path);
  }
  EXPECT_EQ(uncached.version_errors.size(), cached_warm.version_errors.size());
}

}  // namespace
}  // namespace feam
