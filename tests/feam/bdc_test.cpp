#include "feam/bdc.hpp"

#include <gtest/gtest.h>

#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

namespace feam {
namespace {

using site::CompilerFamily;
using site::MpiImpl;
using support::Version;

struct Compiled {
  std::unique_ptr<site::Site> site;
  std::string path;
};

Compiled compile_fortran_app(const char* site_name, MpiImpl impl,
                             CompilerFamily fam) {
  auto s = toolchain::make_site(site_name);
  const auto* stack = s->find_stack(impl, fam);
  EXPECT_NE(stack, nullptr);
  toolchain::ProgramSource p;
  p.name = "cg.B";
  p.language = toolchain::Language::kFortran;
  p.libc_features = {"base", "stdio", "math", "affinity"};
  const auto r = toolchain::compile_mpi_program(*s, p, *stack,
                                                "/home/user/apps/cg.B");
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error());
  return {std::move(s), r.value()};
}

TEST(Bdc, DescribesCompiledBinary) {
  auto c = compile_fortran_app("india", MpiImpl::kOpenMpi, CompilerFamily::kGnu);
  const auto d = Bdc::describe(*c.site, c.path);
  ASSERT_TRUE(d.ok()) << d.error();
  const BinaryDescription& desc = d.value();

  EXPECT_EQ(desc.file_format, "elf64-x86-64");
  EXPECT_EQ(desc.bits, 64);
  EXPECT_FALSE(desc.is_shared_library);
  EXPECT_EQ(desc.mpi_impl, MpiImpl::kOpenMpi);
  // gcc 4.1.2 emits stack-protector refs -> required glibc is 2.4, not the
  // build version 2.5 (the paper's III.C distinction).
  EXPECT_EQ(desc.required_clib_version, Version::of("2.4"));
  EXPECT_EQ(desc.build_clib_version, Version::of("2.5"));
  ASSERT_TRUE(desc.build_os.has_value());
  EXPECT_NE(desc.build_os->find("Red Hat"), std::string::npos);
  ASSERT_TRUE(desc.build_compiler.has_value());
  EXPECT_NE(desc.build_compiler->find("GCC"), std::string::npos);
}

TEST(Bdc, DescribesSharedLibraryWithSonameVersion) {
  auto s = toolchain::make_site("india");
  const auto d =
      Bdc::describe(*s, "/opt/mpich2-1.4-gnu/lib/libmpich.so.1.2");
  ASSERT_TRUE(d.ok()) << d.error();
  EXPECT_TRUE(d.value().is_shared_library);
  EXPECT_EQ(d.value().soname, "libmpich.so.1.2");
  EXPECT_EQ(d.value().library_version, Version::of("1.2"));
  // An MPI library identifies as its own implementation (no IB at MPICH2).
  EXPECT_EQ(d.value().mpi_impl, MpiImpl::kMpich2);
}

TEST(Bdc, FailsOnMissingOrForeignFiles) {
  auto s = toolchain::make_site("india");
  EXPECT_FALSE(Bdc::describe(*s, "/no/such/binary").ok());
  s->vfs.write_file("/home/user/run.sh", "#!/bin/sh\n");
  EXPECT_FALSE(Bdc::describe(*s, "/home/user/run.sh").ok());
}

TEST(Bdc, LocatesLibrariesViaLdd) {
  auto c = compile_fortran_app("india", MpiImpl::kOpenMpi, CompilerFamily::kGnu);
  c.site->load_module("openmpi/1.4-gnu");
  const auto located =
      Bdc::locate_libraries(*c.site, c.path, {"libmpi.so.0", "libgfortran.so.1"});
  ASSERT_EQ(located.size(), 2u);
  EXPECT_EQ(located[0].second, "/opt/openmpi-1.4-gnu/lib/libmpi.so.0.0.0");
  ASSERT_TRUE(located[1].second.has_value());
  EXPECT_NE(located[1].second->find("libgfortran.so.1"), std::string::npos);
}

TEST(Bdc, LocateFallsBackWhenLddUnavailable) {
  auto c = compile_fortran_app("india", MpiImpl::kOpenMpi, CompilerFamily::kGnu);
  c.site->ldd_available = false;  // degraded site
  c.site->load_module("openmpi/1.4-gnu");
  const auto located = Bdc::locate_libraries(*c.site, c.path, {"libmpi.so.0"});
  ASSERT_TRUE(located[0].second.has_value());  // found via locate
}

TEST(Bdc, LocateFallsBackToFindWhenLocateMissingToo) {
  auto c = compile_fortran_app("india", MpiImpl::kOpenMpi, CompilerFamily::kGnu);
  c.site->ldd_available = false;
  c.site->locate_available = false;
  c.site->load_module("openmpi/1.4-gnu");
  const auto located = Bdc::locate_libraries(*c.site, c.path, {"libmpi.so.0"});
  ASSERT_TRUE(located[0].second.has_value());  // found via find over /opt
}

TEST(Bdc, UnlocatableLibraryReportsNullopt) {
  auto s = toolchain::make_site("india");
  s->vfs.write_file("/home/user/x", "not elf");
  const auto located = Bdc::locate_libraries(*s, "/home/user/x",
                                             {"libdoesnotexist.so.9"});
  ASSERT_EQ(located.size(), 1u);
  EXPECT_FALSE(located[0].second.has_value());
}

TEST(Bdc, RequiredClibIsMaxAcrossAllReferences) {
  // A SPEC-style binary using pipe2 (2.9) built at Forge references
  // GLIBC_2.9 — the max ref, not the 2.12 build version.
  auto s = toolchain::make_site("forge");
  const auto* stack = s->find_stack(MpiImpl::kOpenMpi, CompilerFamily::kGnu);
  toolchain::ProgramSource p;
  p.name = "115.fds4";
  p.language = toolchain::Language::kFortran;
  p.libc_features = {"base", "stdio", "math", "atfuncs", "pipe2"};
  const auto r =
      toolchain::compile_mpi_program(*s, p, *stack, "/home/user/fds4");
  ASSERT_TRUE(r.ok());
  const auto d = Bdc::describe(*s, r.value());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().required_clib_version, Version::of("2.9"));
  EXPECT_EQ(d.value().build_clib_version, Version::of("2.12"));
}

}  // namespace
}  // namespace feam
