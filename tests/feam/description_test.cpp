#include "feam/description.hpp"

#include <gtest/gtest.h>

namespace feam {
namespace {

using support::Version;

TEST(SonameVersion, Extraction) {
  EXPECT_EQ(soname_version("libmpich.so.1.2"), Version::of("1.2"));
  EXPECT_EQ(soname_version("libgfortran.so.1"), Version::of("1"));
  EXPECT_EQ(soname_version("libmpi.so.0"), Version::of("0"));
  EXPECT_FALSE(soname_version("libimf.so").has_value());
  EXPECT_FALSE(soname_version("not-a-library").has_value());
}

BinaryDescription sample() {
  BinaryDescription d;
  d.path = "/home/user/apps/cg.B";
  d.file_format = "elf64-x86-64";
  d.architecture = "i386:x86-64";
  d.bits = 64;
  d.is_shared_library = false;
  d.required_libraries = {"libmpi.so.0", "libgfortran.so.1", "libc.so.6"};
  d.version_references = {{"libc.so.6", {"GLIBC_2.2.5", "GLIBC_2.4"}},
                          {"libm.so.6", {"GLIBC_2.2.5"}}};
  d.required_clib_version = Version::of("2.4");
  d.build_compiler = "GCC: (GNU) 4.1.2";
  d.build_os = "Red Hat Enterprise Linux Server 5.6";
  d.build_clib_version = Version::of("2.5");
  d.mpi_impl = site::MpiImpl::kOpenMpi;
  return d;
}

TEST(BinaryDescription, JsonRoundTrip) {
  const BinaryDescription d = sample();
  const auto json = d.to_json();
  const auto back = BinaryDescription::from_json(json);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->path, d.path);
  EXPECT_EQ(back->file_format, d.file_format);
  EXPECT_EQ(back->bits, 64);
  EXPECT_EQ(back->required_libraries, d.required_libraries);
  ASSERT_EQ(back->version_references.size(), 2u);
  EXPECT_EQ(back->version_references[0].versions,
            (std::vector<std::string>{"GLIBC_2.2.5", "GLIBC_2.4"}));
  EXPECT_EQ(back->required_clib_version, Version::of("2.4"));
  EXPECT_EQ(back->build_compiler, "GCC: (GNU) 4.1.2");
  EXPECT_EQ(back->build_os, "Red Hat Enterprise Linux Server 5.6");
  EXPECT_EQ(back->build_clib_version, Version::of("2.5"));
  EXPECT_EQ(back->mpi_impl, site::MpiImpl::kOpenMpi);
}

TEST(BinaryDescription, JsonRoundTripThroughText) {
  // Manifests travel as files between sites: text round-trip must hold.
  const auto text = sample().to_json().dump(2);
  const auto parsed = support::Json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  const auto back = BinaryDescription::from_json(*parsed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->mpi_impl, site::MpiImpl::kOpenMpi);
  EXPECT_EQ(back->required_clib_version, Version::of("2.4"));
}

TEST(BinaryDescription, SharedLibraryFields) {
  BinaryDescription d = sample();
  d.is_shared_library = true;
  d.soname = "libmpich.so.1.2";
  d.library_version = soname_version("libmpich.so.1.2");
  const auto back = BinaryDescription::from_json(d.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->is_shared_library);
  EXPECT_EQ(back->soname, "libmpich.so.1.2");
  EXPECT_EQ(back->library_version, Version::of("1.2"));
}

TEST(BinaryDescription, OptionalFieldsAbsent) {
  BinaryDescription d;
  d.file_format = "elf32-i386";
  d.bits = 32;
  const auto back = BinaryDescription::from_json(d.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->soname.has_value());
  EXPECT_FALSE(back->required_clib_version.has_value());
  EXPECT_FALSE(back->mpi_impl.has_value());
  EXPECT_FALSE(back->build_compiler.has_value());
}

TEST(BinaryDescription, FromJsonRejectsNonObjects) {
  EXPECT_FALSE(BinaryDescription::from_json(support::Json(3.0)).has_value());
  EXPECT_FALSE(BinaryDescription::from_json(support::Json()).has_value());
  // Object without the mandatory file format is rejected too.
  support::Json j;
  j.set("path", "/x");
  EXPECT_FALSE(BinaryDescription::from_json(j).has_value());
}

}  // namespace
}  // namespace feam
