#include "feam/tec.hpp"

#include <gtest/gtest.h>

#include "feam/bdc.hpp"
#include "feam/phases.hpp"
#include "toolchain/launcher.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

namespace feam {
namespace {

using site::CompilerFamily;
using site::MpiImpl;
using support::Version;

// Compiles a program at `home_name`, runs the source phase there, and
// migrates the binary to `target`.
struct Migration {
  std::unique_ptr<site::Site> home;
  std::unique_ptr<site::Site> target;
  std::string target_path;
  SourcePhaseOutput source;
};

Migration migrate(const char* home_name, const char* target_name,
                  MpiImpl impl, CompilerFamily fam,
                  toolchain::ProgramSource program) {
  Migration m;
  m.home = toolchain::make_site(home_name);
  m.target = toolchain::make_site(target_name);
  const auto* stack = m.home->find_stack(impl, fam);
  EXPECT_NE(stack, nullptr);
  const std::string home_path = "/home/user/apps/" + program.name;
  const auto compiled =
      toolchain::compile_mpi_program(*m.home, program, *stack, home_path);
  EXPECT_TRUE(compiled.ok()) << compiled.error();

  const std::string module = std::string(site::mpi_impl_slug(impl)) + "/" +
                             stack->version.str() + "-" +
                             site::compiler_slug(fam);
  m.home->load_module(module);
  auto source = run_source_phase(*m.home, home_path);
  EXPECT_TRUE(source.ok()) << source.error();
  m.source = std::move(source).take();
  m.home->unload_all_modules();

  m.target_path = "/home/user/migrated/" + program.name;
  m.target->vfs.write_file(m.target_path, *m.home->vfs.read(home_path));
  return m;
}

toolchain::ProgramSource fortran_app(const char* name = "cg.B") {
  toolchain::ProgramSource p;
  p.name = name;
  p.language = toolchain::Language::kFortran;
  p.libc_features = {"base", "stdio", "math"};
  return p;
}

toolchain::ProgramSource c_app(const char* name = "is.B") {
  toolchain::ProgramSource p;
  p.name = name;
  p.language = toolchain::Language::kC;
  p.libc_features = {"base", "stdio", "math"};
  return p;
}

TEST(Tec, ReadyOnTwinSite) {
  auto m = migrate("india", "fir", MpiImpl::kOpenMpi, CompilerFamily::kGnu,
                   fortran_app());
  const auto app = Bdc::describe(*m.target, m.target_path);
  ASSERT_TRUE(app.ok());
  const auto p = Tec::evaluate(*m.target, app.value(), m.target_path,
                               &m.source.bundle);
  EXPECT_TRUE(p.ready);
  for (const auto& d : p.determinants) {
    EXPECT_TRUE(!d.evaluated || d.compatible) << d.detail;
  }
  ASSERT_TRUE(p.selected_stack_id.has_value());
  EXPECT_EQ(*p.selected_stack_id, "openmpi/1.4-gnu");  // same compiler preferred
  EXPECT_TRUE(p.missing_libraries.empty());
  EXPECT_FALSE(p.configuration_script.empty());
}

TEST(Tec, IsaDeterminantShortCircuits) {
  auto m = migrate("india", "fir", MpiImpl::kOpenMpi, CompilerFamily::kGnu,
                   c_app());
  auto app = Bdc::describe(*m.target, m.target_path).take();
  app.file_format = "elf64-powerpc";  // pretend a ppc64 binary migrated
  const auto p = Tec::evaluate(*m.target, app, "", &m.source.bundle);
  EXPECT_FALSE(p.ready);
  EXPECT_FALSE(p.determinant(DeterminantKind::kIsa)->compatible);
  // Later determinants are not evaluated (paper V.C ordering).
  EXPECT_FALSE(p.determinant(DeterminantKind::kMpiStack)->evaluated);
  EXPECT_FALSE(p.determinant(DeterminantKind::kSharedLibraries)->evaluated);
}

TEST(Tec, CLibraryDeterminantBlocksOldSites) {
  // Forge-built binary using recvmmsg (GLIBC_2.12) cannot run at India.
  toolchain::ProgramSource p = c_app("modern");
  p.libc_features = {"base", "stdio", "recvmmsg"};
  auto m = migrate("forge", "india", MpiImpl::kOpenMpi, CompilerFamily::kGnu, p);
  const auto app = Bdc::describe(*m.target, m.target_path);
  ASSERT_TRUE(app.ok());
  const auto pred = Tec::evaluate(*m.target, app.value(), m.target_path,
                                  &m.source.bundle);
  EXPECT_FALSE(pred.ready);
  const auto* clib = pred.determinant(DeterminantKind::kCLibrary);
  EXPECT_FALSE(clib->compatible);
  EXPECT_NE(clib->detail.find("2.12"), std::string::npos);
}

TEST(Tec, NoMatchingImplementation) {
  // MVAPICH2 binary at Blacklight (Open MPI only).
  auto m = migrate("india", "blacklight", MpiImpl::kMvapich2,
                   CompilerFamily::kIntel, c_app());
  const auto app = Bdc::describe(*m.target, m.target_path);
  ASSERT_TRUE(app.ok());
  const auto p = Tec::evaluate(*m.target, app.value(), m.target_path,
                               &m.source.bundle);
  EXPECT_FALSE(p.ready);
  const auto* mpi = p.determinant(DeterminantKind::kMpiStack);
  EXPECT_FALSE(mpi->compatible);
  EXPECT_NE(mpi->detail.find("no MVAPICH2 stack"), std::string::npos);
}

TEST(Tec, MisconfiguredStackSkippedForUsableOne) {
  // India advertises a broken mvapich2/gnu; TEC must fall through to the
  // working Intel stack for a GNU C binary (C tolerates the family change).
  auto m = migrate("fir", "india", MpiImpl::kMvapich2, CompilerFamily::kGnu,
                   c_app());
  const auto app = Bdc::describe(*m.target, m.target_path);
  ASSERT_TRUE(app.ok());
  const auto p = Tec::evaluate(*m.target, app.value(), m.target_path,
                               &m.source.bundle);
  EXPECT_TRUE(p.ready) << p.determinant(DeterminantKind::kMpiStack)->detail;
  ASSERT_TRUE(p.selected_stack_id.has_value());
  EXPECT_EQ(*p.selected_stack_id, "mvapich2/1.7a2-intel");
}

TEST(Tec, FortranAbiIncompatibilityCaughtByBundleHelloWorld) {
  // India mvapich2-gnu Fortran binary at Forge (Intel-only MVAPICH2): the
  // extended hello-world test detects the binding ABI break.
  auto m = migrate("india", "forge", MpiImpl::kMvapich2, CompilerFamily::kIntel,
                   fortran_app());
  // Rebuild with the GNU stack instead (the Intel one would be fine).
  auto m2 = migrate("fir", "forge", MpiImpl::kMvapich2, CompilerFamily::kGnu,
                    fortran_app());
  const auto app = Bdc::describe(*m2.target, m2.target_path);
  ASSERT_TRUE(app.ok());
  const auto p = Tec::evaluate(*m2.target, app.value(), m2.target_path,
                               &m2.source.bundle);
  EXPECT_FALSE(p.ready);
  const auto* mpi = p.determinant(DeterminantKind::kMpiStack);
  EXPECT_FALSE(mpi->compatible);
  EXPECT_NE(mpi->detail.find("incompatible"), std::string::npos);
}

TEST(Tec, ResolutionInstallsMissingCopies) {
  // Ranger MVAPICH2 1.2 binaries miss libmpich.so.1.0 at Fir (1.7a) — the
  // paper's canonical resolution win.
  auto m = migrate("ranger", "fir", MpiImpl::kMvapich2, CompilerFamily::kIntel,
                   c_app());
  const auto app = Bdc::describe(*m.target, m.target_path);
  ASSERT_TRUE(app.ok());
  const auto p = Tec::evaluate(*m.target, app.value(), m.target_path,
                               &m.source.bundle);
  ASSERT_TRUE(p.ready) << p.determinant(DeterminantKind::kSharedLibraries)->detail;
  EXPECT_FALSE(p.missing_libraries.empty());
  EXPECT_FALSE(p.resolved_libraries.empty());
  ASSERT_FALSE(p.resolution_dirs.empty());
  // The copies are physically installed and the binary now runs.
  const auto extra = Tec::apply_configuration(*m.target, p);
  const auto run = toolchain::mpiexec(*m.target, m.target_path, 4, extra);
  EXPECT_TRUE(run.success()) << run.detail;
}

TEST(Tec, BasicPredictionCannotResolve) {
  auto m = migrate("ranger", "fir", MpiImpl::kMvapich2, CompilerFamily::kIntel,
                   c_app());
  const auto app = Bdc::describe(*m.target, m.target_path);
  ASSERT_TRUE(app.ok());
  const auto p = Tec::evaluate(*m.target, app.value(), m.target_path,
                               /*bundle=*/nullptr);
  EXPECT_FALSE(p.ready);
  EXPECT_FALSE(p.determinant(DeterminantKind::kSharedLibraries)->compatible);
  EXPECT_FALSE(p.missing_libraries.empty());
  EXPECT_TRUE(p.resolved_libraries.empty());
}

TEST(Tec, CopyRejectedWhenItNeedsNewerClib) {
  // Forge-built MPI library copies reference GLIBC_2.12; at India (2.5)
  // the recursive prediction must reject them (paper VI.C).
  auto m = migrate("forge", "india", MpiImpl::kMvapich2, CompilerFamily::kIntel,
                   c_app());
  const auto app = Bdc::describe(*m.target, m.target_path);
  ASSERT_TRUE(app.ok());
  const auto p = Tec::evaluate(*m.target, app.value(), m.target_path,
                               &m.source.bundle);
  // The app itself only needs old nodes, but its MPI library must be the
  // 1.7 line; India has 1.7a2-intel (functional) with the same soname, so
  // nothing is missing... force the interesting path: evaluate against a
  // target whose mvapich2 is the old soname (ranger).
  auto ranger = toolchain::make_site("ranger");
  ranger->vfs.write_file(m.target_path, *m.target->vfs.read(m.target_path));
  const auto app2 = Bdc::describe(*ranger, m.target_path);
  ASSERT_TRUE(app2.ok());
  const auto p2 = Tec::evaluate(*ranger, app2.value(), m.target_path,
                                &m.source.bundle);
  EXPECT_FALSE(p2.ready);
  (void)p;
}

TEST(Tec, TwoPhaseModeWithoutBinaryAtTarget) {
  // The binary did not travel; only the bundle's description is used.
  auto m = migrate("india", "fir", MpiImpl::kOpenMpi, CompilerFamily::kIntel,
                   c_app());
  m.target->vfs.remove(m.target_path);
  const auto p = Tec::evaluate(*m.target, m.source.application, "",
                               &m.source.bundle);
  EXPECT_TRUE(p.ready) << (p.log.empty() ? "" : p.log.back());
}

TEST(Tec, ConfigurationScriptContents) {
  auto m = migrate("ranger", "fir", MpiImpl::kMvapich2, CompilerFamily::kIntel,
                   c_app());
  const auto app = Bdc::describe(*m.target, m.target_path);
  const auto p = Tec::evaluate(*m.target, app.value(), m.target_path,
                               &m.source.bundle);
  ASSERT_TRUE(p.ready);
  EXPECT_NE(p.configuration_script.find("module load mvapich2/1.7a-intel"),
            std::string::npos);
  EXPECT_NE(p.configuration_script.find("LD_LIBRARY_PATH="), std::string::npos);
  EXPECT_NE(p.configuration_script.find("mpiexec"), std::string::npos);
}

TEST(Tec, EnvironmentRestoredAfterEvaluation) {
  auto m = migrate("india", "fir", MpiImpl::kOpenMpi, CompilerFamily::kGnu,
                   c_app());
  const std::string path_before = m.target->env.get("PATH").value_or("");
  const auto app = Bdc::describe(*m.target, m.target_path);
  (void)Tec::evaluate(*m.target, app.value(), m.target_path, &m.source.bundle);
  EXPECT_EQ(m.target->env.get("PATH").value_or(""), path_before);
  EXPECT_TRUE(m.target->loaded_modules().empty());
}

TEST(Tec, DeterminantNames) {
  EXPECT_STREQ(determinant_name(DeterminantKind::kIsa), "ISA compatibility");
  EXPECT_STREQ(determinant_name(DeterminantKind::kSharedLibraries),
               "shared library availability");
}

}  // namespace
}  // namespace feam
