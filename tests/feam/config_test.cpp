#include "feam/config.hpp"

#include <gtest/gtest.h>

#include "feam/phases.hpp"
#include "support/strings.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

namespace feam {
namespace {

TEST(ConfigFile, Defaults) {
  const FeamConfigFile config;
  EXPECT_EQ(config.default_mpiexec, "mpiexec");
  EXPECT_EQ(config.mpiexec_for(site::MpiImpl::kOpenMpi), "mpiexec");
  EXPECT_EQ(config.hello_world_ranks, 2);
}

TEST(ConfigFile, ParseFullFile) {
  const auto config = FeamConfigFile::parse(R"(
# site: india
serial_submission_script = serial.pbs
parallel_submission_script = parallel.pbs
hello_world_ranks = 4
mpiexec = mpiexec
mpiexec.mvapich2 = mpirun_rsh
mpiexec.openmpi = orterun
)");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->serial_submission_script, "serial.pbs");
  EXPECT_EQ(config->hello_world_ranks, 4);
  EXPECT_EQ(config->mpiexec_for(site::MpiImpl::kMvapich2), "mpirun_rsh");
  EXPECT_EQ(config->mpiexec_for(site::MpiImpl::kOpenMpi), "orterun");
  EXPECT_EQ(config->mpiexec_for(site::MpiImpl::kMpich2), "mpiexec");
}

TEST(ConfigFile, RenderParseRoundTrip) {
  FeamConfigFile config;
  config.hello_world_ranks = 8;
  config.mpiexec_by_type[site::MpiImpl::kMvapich2] = "mpirun_rsh";
  config.parallel_submission_script = "run.sge";
  const auto back = FeamConfigFile::parse(config.render());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->hello_world_ranks, 8);
  EXPECT_EQ(back->parallel_submission_script, "run.sge");
  EXPECT_EQ(back->mpiexec_for(site::MpiImpl::kMvapich2), "mpirun_rsh");
}

TEST(ConfigFile, RejectsMalformedInput) {
  EXPECT_FALSE(FeamConfigFile::parse("no equals sign").has_value());
  EXPECT_FALSE(FeamConfigFile::parse("unknown_key = 1").has_value());
  EXPECT_FALSE(FeamConfigFile::parse("mpiexec.lam = mpirun").has_value());
  EXPECT_FALSE(FeamConfigFile::parse("hello_world_ranks = zero").has_value());
  EXPECT_FALSE(FeamConfigFile::parse("hello_world_ranks = 0").has_value());
  EXPECT_FALSE(FeamConfigFile::parse("mpiexec = ").has_value());
}

TEST(ConfigFile, EmptyFileGivesDefaults) {
  const auto config = FeamConfigFile::parse("# only comments\n\n");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->default_mpiexec, "mpiexec");
}

TEST(ConfigFile, PerTypeCommandReachesGeneratedScript) {
  // An MVAPICH2 site configured with mpirun_rsh: the TEC's generated
  // configuration script must use it (paper Section V.C). India's 1.7a2
  // and Fir's 1.7a share sonames, so the basic prediction is READY.
  auto home = toolchain::make_site("india");
  auto target = toolchain::make_site("fir");
  toolchain::ProgramSource app;
  app.name = "cg.B";
  app.language = toolchain::Language::kC;
  const auto* stack = home->find_stack(site::MpiImpl::kMvapich2,
                                       site::CompilerFamily::kIntel);
  const auto compiled = toolchain::compile_mpi_program(
      *home, app, *stack, "/home/user/apps/cg.B");
  ASSERT_TRUE(compiled.ok());
  target->vfs.write_file("/home/user/cg.B", *home->vfs.read(compiled.value()));

  FeamConfig config;
  config.mpiexec_by_type[site::MpiImpl::kMvapich2] = "mpirun_rsh";
  const auto result = run_target_phase(*target, "/home/user/cg.B", nullptr,
                                       config);
  ASSERT_TRUE(result.ok()) << result.error();
  ASSERT_TRUE(result.value().prediction.ready);
  EXPECT_TRUE(support::contains(
      result.value().prediction.configuration_script, "mpirun_rsh -n"));
  EXPECT_FALSE(support::contains(
      result.value().prediction.configuration_script, "mpiexec -n"));
}

}  // namespace
}  // namespace feam
