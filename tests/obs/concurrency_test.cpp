// Multi-threaded producers against the obs subsystem: per-thread span
// buffers merged in finish order at export, thread ids on every record,
// and counters/histograms staying exact under contention.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace feam::obs {
namespace {

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    collector().clear();
    collector().set_enabled(true);
  }
  void TearDown() override {
    collector().set_enabled(false);
    collector().clear();
  }
};

constexpr int kThreads = 8;
constexpr int kPerThread = 250;

TEST_F(ConcurrencyTest, SpansFromManyThreadsAllSurviveTheMerge) {
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        Span span("stress.worker", {{"worker", std::to_string(t)}});
        span.finish();
      }
    });
  }
  for (auto& w : workers) w.join();

  const auto spans = collector().spans();
  ASSERT_EQ(spans.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);

  // Export order is the process-wide finish order: seq strictly increases.
  std::set<int> tids;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    tids.insert(spans[i].tid);
    EXPECT_NE(spans[i].id, 0u);
    if (i > 0) EXPECT_LT(spans[i - 1].seq, spans[i].seq);
  }
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

TEST_F(ConcurrencyTest, SpanIdsAreUniqueAcrossThreads) {
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        Span span("stress.unique");
        span.finish();
      }
    });
  }
  for (auto& w : workers) w.join();

  std::set<std::uint64_t> ids;
  for (const auto& span : collector().spans()) ids.insert(span.id);
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST_F(ConcurrencyTest, NestingStaysWithinEachThread) {
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < 50; ++i) {
        Span outer("stress.outer");
        {
          Span inner("stress.inner");
          inner.finish();
        }
        outer.finish();
      }
    });
  }
  for (auto& w : workers) w.join();

  // Every inner span's parent is an outer span recorded by the same
  // thread — never a span that happened to be open on another thread.
  const auto spans = collector().spans();
  std::map<std::uint64_t, const SpanRecord*> by_id;
  for (const auto& span : spans) by_id[span.id] = &span;
  for (const auto& span : spans) {
    if (span.name != "stress.inner") continue;
    ASSERT_NE(span.parent_id, 0u);
    const auto parent = by_id.find(span.parent_id);
    ASSERT_NE(parent, by_id.end());
    EXPECT_EQ(parent->second->name, "stress.outer");
    EXPECT_EQ(parent->second->tid, span.tid);
  }
}

TEST_F(ConcurrencyTest, CountersAndHistogramsAreExactUnderContention) {
  Counter& c = counter("stress.counter");
  Histogram& h = histogram("stress.histogram");
  c.reset();
  h.reset();

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.record(1000);
      }
    });
  }
  for (auto& w : workers) w.join();

  const std::uint64_t expected =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(c.value(), expected);
  const auto snapshot = h.snapshot();
  EXPECT_EQ(snapshot.count, expected);
}

TEST_F(ConcurrencyTest, EventsFromManyThreadsAllLand) {
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < 50; ++i) {
        emit(Level::kInfo, "stress.event", "w" + std::to_string(t));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(collector().events().size(),
            static_cast<std::size_t>(kThreads) * 50);
}

}  // namespace
}  // namespace feam::obs
