// EvidenceSet semantics the run-record provenance section leans on:
// exact dedup, order-normalization (any insertion order serializes the
// same), the kMaxItems/kMaxDetail/kHardCap bounds, JSON round trips, and
// the thread-local scope/capture/replay recording frames that let caches
// store evidence and replay it byte-identically on hits.
#include "obs/provenance.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

namespace feam::obs {
namespace {

Evidence make(const std::string& stage, const std::string& subject,
              std::uint64_t stamp) {
  Evidence e;
  e.stage = stage;
  e.kind = "file";
  e.site = "site-a";
  e.subject = subject;
  e.detail = "detail of " + subject;
  e.stamp = stamp;
  return e;
}

TEST(Provenance, ExactDuplicatesCollapse) {
  EvidenceSet set;
  set.add(make("edc", "/usr/lib/libc.so.6", 7));
  set.add(make("edc", "/usr/lib/libc.so.6", 7));
  EXPECT_EQ(set.distinct(), 1u);
  EXPECT_EQ(set.dropped(), 0u);

  // A different stamp is different evidence, not a duplicate.
  set.add(make("edc", "/usr/lib/libc.so.6", 8));
  EXPECT_EQ(set.distinct(), 2u);
}

TEST(Provenance, SerializationIsInsertionOrderIndependent) {
  std::vector<Evidence> items;
  for (int i = 0; i < 40; ++i) {
    items.push_back(make(i % 2 == 0 ? "edc" : "bdc",
                         "/path/" + std::to_string(i),
                         static_cast<std::uint64_t>(i * 31)));
  }
  EvidenceSet forward;
  for (const auto& e : items) forward.add(e);

  std::mt19937 rng(20130613);
  std::shuffle(items.begin(), items.end(), rng);
  EvidenceSet shuffled;
  for (const auto& e : items) shuffled.add(e);

  EXPECT_TRUE(forward == shuffled);
  EXPECT_EQ(forward.to_json().dump(), shuffled.to_json().dump());
}

TEST(Provenance, SerializationCapCountsDropped) {
  EvidenceSet set;
  const std::size_t n = EvidenceSet::kMaxItems + 17;
  for (std::size_t i = 0; i < n; ++i) {
    set.add(make("edc", "/p/" + std::to_string(i), i));
  }
  EXPECT_EQ(set.distinct(), n);
  EXPECT_EQ(set.dropped(), 17u);
  EXPECT_EQ(set.items().size(), EvidenceSet::kMaxItems);

  const auto j = set.to_json();
  EXPECT_EQ(j["evidence"].as_array().size(), EvidenceSet::kMaxItems);
  EXPECT_EQ(j.get_int("dropped"), 17);
}

TEST(Provenance, HardCapRefusesNewItemsButCountsThem) {
  EvidenceSet set;
  for (std::size_t i = 0; i < EvidenceSet::kHardCap + 3; ++i) {
    set.add(make("edc", "/p/" + std::to_string(i), i));
  }
  EXPECT_EQ(set.distinct(), EvidenceSet::kHardCap);
  // Overflow plus the items beyond the serialization bound.
  EXPECT_EQ(set.dropped(), 3u + (EvidenceSet::kHardCap -
                                 EvidenceSet::kMaxItems));
  // Re-adding an already retained item is not an overflow.
  const auto before = set.dropped();
  set.add(make("edc", "/p/0", 0));
  EXPECT_EQ(set.dropped(), before);
}

TEST(Provenance, DetailTruncatedOnAdd) {
  Evidence e = make("bdc", "/bin/app", 1);
  e.detail.assign(EvidenceSet::kMaxDetail + 50, 'x');
  EvidenceSet set;
  set.add(e);
  ASSERT_EQ(set.items().size(), 1u);
  EXPECT_EQ(set.items()[0].detail.size(), EvidenceSet::kMaxDetail);
  EXPECT_TRUE(set.validate().empty());
}

TEST(Provenance, JsonRoundTripIsByteStable) {
  EvidenceSet set;
  for (int i = 0; i < 9; ++i) {
    set.add(make(i % 3 == 0 ? "tec.isa" : "resolver",
                 "/lib/" + std::to_string(i),
                 0xdeadbeef00ull + static_cast<std::uint64_t>(i)));
  }
  const std::string dumped = set.to_json().dump();
  const auto reparsed = EvidenceSet::from_json(*support::Json::parse(dumped));
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_TRUE(*reparsed == set);
  EXPECT_EQ(reparsed->to_json().dump(), dumped);
}

TEST(Provenance, FromJsonRejectsMalformedDocuments) {
  const auto reject = [](const char* text) {
    const auto j = support::Json::parse(text);
    ASSERT_TRUE(j.has_value()) << text;
    EXPECT_FALSE(EvidenceSet::from_json(*j).has_value()) << text;
  };
  reject("{}");  // no schema
  reject(R"({"schema":"feam.provenance/2","dropped":0,"evidence":[]})");
  reject(R"({"schema":"feam.provenance/1","dropped":0})");  // no evidence
  reject(R"({"schema":"feam.provenance/1","evidence":[]})");  // no dropped
  // Item missing its stage.
  reject(R"({"schema":"feam.provenance/1","dropped":0,"evidence":[
    {"kind":"file","site":"s","subject":"/p","detail":"","stamp":
     "0000000000000001"}]})");
  // Stamp not 16 lowercase hex digits.
  reject(R"({"schema":"feam.provenance/1","dropped":0,"evidence":[
    {"stage":"edc","kind":"file","site":"s","subject":"/p","detail":"",
     "stamp":"123"}]})");
  reject(R"({"schema":"feam.provenance/1","dropped":0,"evidence":[
    {"stage":"edc","kind":"file","site":"s","subject":"/p","detail":"",
     "stamp":"00000000000000ZZ"}]})");
}

TEST(Provenance, RecordingIsNoOpWithoutAScope) {
  EXPECT_FALSE(provenance_active());
  record_evidence(make("edc", "/nowhere", 1));  // must not crash
}

TEST(Provenance, ScopeRoutesAndCaptureTees) {
  EvidenceSet outer;
  {
    ProvenanceScope scope(outer);
    EXPECT_TRUE(provenance_active());
    record_evidence(make("edc", "/before", 1));

    std::vector<Evidence> captured;
    {
      EvidenceCapture capture;
      record_evidence(make("edc", "/teed", 2));
      captured = capture.take();
    }
    // The capture saw only the evidence recorded inside it…
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].subject, "/teed");
    record_evidence(make("edc", "/after", 3));
  }
  EXPECT_FALSE(provenance_active());
  // …while the enclosing scope saw everything, teed items included.
  EXPECT_EQ(outer.distinct(), 3u);
}

TEST(Provenance, CaptureAloneActivatesRecording) {
  // A cache filling its entry outside any evaluation scope still captures
  // evidence — provenance_active() gates on any frame, not just scopes.
  EXPECT_FALSE(provenance_active());
  EvidenceCapture capture;
  EXPECT_TRUE(provenance_active());
  record_evidence(make("bdc", "/bin/app", 4));
  EXPECT_EQ(capture.take().size(), 1u);
}

TEST(Provenance, ReplayedEvidenceSerializesIdenticallyToFresh) {
  // The cache-hit contract: evidence captured at fill time and replayed on
  // a hit must serialize byte-identically to the freshly recorded set.
  std::vector<Evidence> stored;
  EvidenceSet fresh;
  {
    ProvenanceScope scope(fresh);
    EvidenceCapture capture;
    record_evidence(make("edc", "/usr/bin/mpicc", 11));
    record_evidence(make("edc", "/etc/modules", 12));
    stored = capture.take();
  }
  EvidenceSet replayed;
  {
    ProvenanceScope scope(replayed);
    replay_evidence(stored);
    // A hit may replay more than once (double discovery per pair); dedup
    // keeps the serialized bytes identical.
    replay_evidence(stored);
  }
  EXPECT_TRUE(replayed == fresh);
  EXPECT_EQ(replayed.to_json().dump(), fresh.to_json().dump());
}

TEST(Provenance, EvidenceBytesSumsPayloads) {
  const std::vector<Evidence> items = {make("edc", "/a", 1),
                                       make("edc", "/bb", 2)};
  const std::uint64_t expected =
      2 * sizeof(Evidence) + items[0].stage.size() + items[0].kind.size() +
      items[0].site.size() + items[0].subject.size() +
      items[0].detail.size() + items[1].stage.size() + items[1].kind.size() +
      items[1].site.size() + items[1].subject.size() + items[1].detail.size();
  EXPECT_EQ(evidence_bytes(items), expected);
}

}  // namespace
}  // namespace feam::obs
