// Unit tests for the deterministic profiler: self-time attribution,
// adoption across threads, the critical path, flame/folded output, merge
// semantics, and the JSON round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "obs/profile.hpp"
#include "support/json.hpp"

namespace feam::obs {
namespace {

ProfileSpan span(std::uint64_t id, std::uint64_t parent, std::string name,
                 std::uint64_t start, std::uint64_t end, int tid = 0) {
  ProfileSpan s;
  s.id = id;
  s.parent_id = parent;
  s.name = std::move(name);
  s.start_ns = start;
  s.end_ns = end;
  s.tid = tid;
  return s;
}

const ProfileNameStat* stat_of(const Profile& p, std::string_view name) {
  for (const auto& s : p.by_name) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST(Profile, EmptyInput) {
  const Profile p = build_profile(std::vector<ProfileSpan>{});
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.wall_ns, 0u);
  EXPECT_EQ(p.critical_path_ns(), 0u);
  EXPECT_TRUE(p.by_name.empty());
  EXPECT_TRUE(p.threads.empty());
  EXPECT_TRUE(p.critical_path.empty());
  EXPECT_EQ(p.folded_stacks(), "");
}

TEST(Profile, SelfTimeSubtractsDirectChildrenOnly) {
  // root [0, 1000] -> mid [100, 700] -> leaf [200, 400].
  // Self: root 1000-600=400, mid 600-200=400, leaf 200.
  const Profile p = build_profile({
      span(1, 0, "root", 0, 1000),
      span(2, 1, "mid", 100, 700),
      span(3, 2, "leaf", 200, 400),
  });
  EXPECT_EQ(p.span_count, 3u);
  EXPECT_EQ(p.wall_ns, 1000u);
  ASSERT_NE(stat_of(p, "root"), nullptr);
  EXPECT_EQ(stat_of(p, "root")->self_ns, 400u);
  EXPECT_EQ(stat_of(p, "root")->total_ns, 1000u);
  EXPECT_EQ(stat_of(p, "mid")->self_ns, 400u);
  EXPECT_EQ(stat_of(p, "leaf")->self_ns, 200u);
  // One thread; self times partition its busy time (= the root duration).
  ASSERT_EQ(p.threads.size(), 1u);
  EXPECT_EQ(p.threads[0].busy_ns, 1000u);
  EXPECT_EQ(p.threads[0].self_ns, 1000u);
  EXPECT_EQ(p.threads[0].extent_ns, 1000u);
}

TEST(Profile, SelfTimeClampsWhenChildrenOverrunParent) {
  // Clock-quantum artifact: children sum past the parent. Self clamps at
  // 0 instead of wrapping.
  const Profile p = build_profile({
      span(1, 0, "parent", 0, 100),
      span(2, 1, "a", 0, 60),
      span(3, 1, "b", 40, 100),
  });
  EXPECT_EQ(stat_of(p, "parent")->self_ns, 0u);
}

TEST(Profile, PerThreadSelfEqualsBusyAcrossThreads) {
  const Profile p = build_profile({
      span(1, 0, "matrix", 0, 1000, 0),
      span(2, 0, "task", 100, 400, 1),
      span(3, 2, "inner", 150, 250, 1),
      span(4, 0, "task", 500, 900, 1),
  });
  ASSERT_EQ(p.threads.size(), 2u);
  for (const auto& t : p.threads) {
    EXPECT_EQ(t.self_ns, t.busy_ns) << "tid " << t.tid;
  }
  EXPECT_EQ(p.threads[0].tid, 0);
  EXPECT_EQ(p.threads[0].busy_ns, 1000u);
  EXPECT_EQ(p.threads[1].tid, 1);
  EXPECT_EQ(p.threads[1].busy_ns, 700u);   // 300 + 400
  EXPECT_EQ(p.threads[1].extent_ns, 800u);  // 900 - 100
}

TEST(Profile, CriticalPathDescendsIntoLastFinishingAdoptedChild) {
  // matrix on tid 0 contains two worker tasks on other threads; the
  // second task finishes last and owns the critical path, through its
  // own slow child.
  const Profile p = build_profile({
      span(1, 0, "matrix", 0, 1000, 0),
      span(2, 0, "task_a", 50, 500, 1),
      span(3, 0, "task_b", 100, 950, 2),
      span(4, 3, "slow_leaf", 600, 940, 2),
  });
  ASSERT_EQ(p.critical_path.size(), 3u);
  EXPECT_EQ(p.critical_path[0].name, "matrix");
  EXPECT_EQ(p.critical_path[1].name, "task_b");
  EXPECT_EQ(p.critical_path[1].tid, 2);
  EXPECT_EQ(p.critical_path[2].name, "slow_leaf");
  EXPECT_EQ(p.critical_path_ns(), 1000u);
  // Adoption feeds the flame tree too: task self-time stacks under the
  // matrix, not as separate roots.
  const std::string folded = p.folded_stacks();
  EXPECT_NE(folded.find("matrix;task_b;slow_leaf 0"), std::string::npos)
      << folded;
  EXPECT_NE(folded.find("matrix;task_a "), std::string::npos) << folded;
  // ...but does NOT feed busy accounting: tid 1/2 busy comes from their
  // own roots.
  ASSERT_EQ(p.threads.size(), 3u);
  EXPECT_EQ(p.threads[0].busy_ns, 1000u);
}

TEST(Profile, AdoptionPicksInnermostContainingSpan) {
  // Both outer and inner (tid 0) time-contain the orphan on tid 1; the
  // innermost (inner) adopts it.
  const Profile p = build_profile({
      span(1, 0, "outer", 0, 1'000'000, 0),
      span(2, 1, "inner", 100'000, 900'000, 0),
      span(3, 0, "orphan", 200'000, 800'000, 1),
  });
  const std::string folded = p.folded_stacks();
  EXPECT_NE(folded.find("outer;inner;orphan 600"), std::string::npos)
      << folded;
}

TEST(Profile, DeterministicAcrossInputOrder) {
  std::vector<ProfileSpan> spans = {
      span(1, 0, "matrix", 0, 1000, 0),
      span(2, 0, "task", 50, 500, 1),
      span(3, 2, "leaf", 60, 400, 1),
      span(4, 0, "task", 500, 980, 2),
      span(5, 4, "leaf", 520, 600, 2),
  };
  const Profile a = build_profile(spans);
  std::reverse(spans.begin(), spans.end());
  const Profile b = build_profile(spans);
  EXPECT_EQ(a.render_table(), b.render_table());
  EXPECT_EQ(a.folded_stacks(), b.folded_stacks());
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
  EXPECT_EQ(render_flamegraph_svg(a.flame, "t"),
            render_flamegraph_svg(b.flame, "t"));
}

TEST(Profile, ByNameSortsBySelfDescThenName) {
  const Profile p = build_profile({
      span(1, 0, "b_small", 0, 100, 0),
      span(2, 0, "a_small", 200, 300, 0),
      span(3, 0, "big", 400, 1000, 0),
  });
  ASSERT_EQ(p.by_name.size(), 3u);
  EXPECT_EQ(p.by_name[0].name, "big");
  EXPECT_EQ(p.by_name[1].name, "a_small");  // ties break by name asc
  EXPECT_EQ(p.by_name[2].name, "b_small");
}

TEST(Profile, FoldedStacksFormatAndOrder) {
  const Profile p = build_profile({
      span(1, 0, "root", 0, 3000, 0),
      span(2, 1, "child", 1000, 2000, 0),
  });
  // Lexicographic order, integer microseconds of self time (truncated).
  EXPECT_EQ(p.folded_stacks(), "root 2\nroot;child 1\n");
}

TEST(Profile, AllocWeightedFoldedStacksAndByName) {
  ProfileSpan root = span(1, 0, "root", 0, 3000, 0);
  root.alloc_bytes = 1000;
  root.alloc_count = 2;
  ProfileSpan child = span(2, 1, "child", 1000, 2000, 0);
  child.alloc_bytes = 4096;
  child.alloc_count = 1;
  const ProfileSpan quiet = span(3, 1, "quiet", 2000, 2500, 0);
  const Profile p = build_profile({root, child, quiet});
  // Bytes are span-self by construction (the tracking allocator attributes
  // to the innermost scope), so the byte weight needs no child subtraction
  // and zero-byte frames fold away entirely.
  EXPECT_EQ(p.folded_stacks(FlameWeight::kAllocBytes),
            "root 1000\nroot;child 4096\n");
  EXPECT_EQ(stat_of(p, "root")->alloc_bytes, 1000u);
  EXPECT_EQ(stat_of(p, "child")->alloc_bytes, 4096u);
  EXPECT_EQ(stat_of(p, "quiet")->alloc_bytes, 0u);
  // Time-weighted output is unchanged by the presence of byte data.
  EXPECT_EQ(p.folded_stacks(), "root 1\nroot;child 1\nroot;quiet 0\n");
  const std::string svg =
      render_flamegraph_svg(p.flame, "allocs", FlameWeight::kAllocBytes);
  EXPECT_NE(svg.find("child"), std::string::npos);
}

TEST(Profile, MergeAccumulatesAndKeepsLongestCriticalPath) {
  const Profile a = build_profile({
      span(1, 0, "work", 0, 1000, 0),
      span(2, 1, "leaf", 100, 300, 0),
  });
  const Profile b = build_profile({
      span(1, 0, "work", 0, 5000, 0),
      span(2, 1, "other", 100, 4500, 0),
  });
  Profile merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.span_count, 4u);
  EXPECT_EQ(merged.wall_ns, 6000u);  // extents add across records
  EXPECT_EQ(stat_of(merged, "work")->count, 2u);
  EXPECT_EQ(stat_of(merged, "work")->total_ns, 6000u);
  EXPECT_EQ(stat_of(merged, "work")->min_ns, 1000u);
  EXPECT_EQ(stat_of(merged, "work")->max_ns, 5000u);
  // b's critical path is longer, so it wins.
  EXPECT_EQ(merged.critical_path_ns(), 5000u);
  ASSERT_EQ(merged.critical_path.size(), 2u);
  EXPECT_EQ(merged.critical_path[1].name, "other");
  // Flame trees merge by stack.
  const std::string folded = merged.folded_stacks();
  EXPECT_NE(folded.find("work;leaf"), std::string::npos);
  EXPECT_NE(folded.find("work;other"), std::string::npos);
  // Merging into an empty profile copies.
  Profile fresh;
  fresh.merge(a);
  EXPECT_EQ(fresh.render_table(), a.render_table());
}

TEST(Profile, JsonRoundTrip) {
  const Profile p = build_profile({
      span(1, 0, "matrix", 0, 1000, 0),
      span(2, 0, "task", 100, 600, 1),
      span(3, 2, "leaf", 200, 400, 1),
  });
  const auto parsed = support::Json::parse(p.to_json().dump());
  ASSERT_TRUE(parsed.has_value());
  const auto restored = Profile::from_json(*parsed);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->wall_ns, p.wall_ns);
  EXPECT_EQ(restored->span_count, p.span_count);
  ASSERT_EQ(restored->by_name.size(), p.by_name.size());
  for (std::size_t i = 0; i < p.by_name.size(); ++i) {
    EXPECT_EQ(restored->by_name[i].name, p.by_name[i].name);
    EXPECT_EQ(restored->by_name[i].self_ns, p.by_name[i].self_ns);
    EXPECT_EQ(restored->by_name[i].total_ns, p.by_name[i].total_ns);
  }
  ASSERT_EQ(restored->threads.size(), p.threads.size());
  EXPECT_EQ(restored->threads[1].busy_ns, p.threads[1].busy_ns);
  ASSERT_EQ(restored->critical_path.size(), p.critical_path.size());
  EXPECT_EQ(restored->critical_path[0].name, "matrix");
  // The flame tree is deliberately not serialized.
  EXPECT_TRUE(restored->flame.children.empty());
}

TEST(Profile, FromJsonRejectsMalformedDocuments) {
  EXPECT_FALSE(Profile::from_json(*support::Json::parse("42")).has_value());
  EXPECT_FALSE(Profile::from_json(*support::Json::parse("{}")).has_value());
  EXPECT_FALSE(Profile::from_json(
                   *support::Json::parse(
                       R"({"wall_ns": "notanumber", "span_count": 1,)"
                       R"( "by_name": [], "threads": [],)"
                       R"( "critical_path": []})"))
                   .has_value());
}

TEST(Profile, RenderTableIsStableAndComplete) {
  const Profile p = build_profile({
      span(1, 0, "alpha", 0, 1000, 0),
      span(2, 1, "beta", 100, 400, 0),
  });
  const std::string table = p.render_table();
  EXPECT_NE(table.find("profile: 2 spans"), std::string::npos) << table;
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("beta"), std::string::npos);
  EXPECT_NE(table.find("threads:"), std::string::npos);
  EXPECT_NE(table.find("critical path"), std::string::npos);
  EXPECT_EQ(table, p.render_table());
}

TEST(Flamegraph, SvgIsSelfContainedAndEscaped) {
  const Profile p = build_profile({
      span(1, 0, "a<b>&\"c\"", 0, 1000, 0),
  });
  const std::string svg = render_flamegraph_svg(p.flame, "title <&>");
  EXPECT_EQ(svg.rfind("<svg", 0), 0u) << svg.substr(0, 40);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // Raw markup from span names must be escaped.
  EXPECT_EQ(svg.find("a<b>"), std::string::npos);
  EXPECT_NE(svg.find("a&lt;b&gt;&amp;&quot;c&quot;"), std::string::npos);
  // Self-contained: no scripts, no external fetches. The only URL is the
  // SVG namespace declaration browsers need for standalone files.
  EXPECT_EQ(svg.find("<script"), std::string::npos);
  const auto first_url = svg.find("http://");
  ASSERT_NE(first_url, std::string::npos);
  EXPECT_EQ(svg.compare(first_url, 31, "http://www.w3.org/2000/svg\" wid", 31),
            0);
  EXPECT_EQ(svg.find("http://", first_url + 1), std::string::npos);
  EXPECT_EQ(svg.find("https://"), std::string::npos);
  EXPECT_EQ(svg.find("href"), std::string::npos);
}

TEST(Profile, BuildFromSpanRecords) {
  std::vector<SpanRecord> records(2);
  records[0].id = 1;
  records[0].name = "outer";
  records[0].start_ns = 0;
  records[0].end_ns = 500;
  records[0].tid = 3;
  records[1].id = 2;
  records[1].parent_id = 1;
  records[1].name = "inner";
  records[1].start_ns = 100;
  records[1].end_ns = 200;
  records[1].tid = 3;
  const Profile p = build_profile(records);
  EXPECT_EQ(p.span_count, 2u);
  ASSERT_EQ(p.threads.size(), 1u);
  EXPECT_EQ(p.threads[0].tid, 3);
  EXPECT_EQ(stat_of(p, "outer")->self_ns, 400u);
}

}  // namespace
}  // namespace feam::obs
