// Unit tests for the memory-observability layer: gauge semantics, the
// phase label and series-name encoding, pre-resolved series handles, the
// tracking allocator's scope attribution, the /proc RSS probes, and the
// Span -> mem.alloc_bytes{phase=...} flush.
#include "obs/memory.hpp"

#include <cstdint>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace feam::obs {
namespace {

// Keeps a heap allocation observable: the interposed operator new may
// otherwise be elided together with its delete under optimization.
void escape(void* p) { asm volatile("" : : "r"(p) : "memory"); }

class TrackingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!alloc_tracking_compiled()) {
      GTEST_SKIP() << "built without FEAM_TRACK_ALLOC";
    }
    set_alloc_tracking(true);
  }
  void TearDown() override { set_alloc_tracking(false); }
};

TEST(Gauge, SetTracksValueAndPeak) {
  Gauge g;
  EXPECT_EQ(g.value(), 0u);
  EXPECT_EQ(g.peak(), 0u);
  g.set(100);
  g.set(40);
  EXPECT_EQ(g.value(), 40u);
  EXPECT_EQ(g.peak(), 100u);
}

TEST(Gauge, AddAndSubAdjust) {
  Gauge g;
  g.add(64);
  g.add(64);
  EXPECT_EQ(g.value(), 128u);
  g.sub(28);
  EXPECT_EQ(g.value(), 100u);
  EXPECT_EQ(g.peak(), 128u);
}

TEST(Gauge, SubSaturatesAtZero) {
  // A mis-paired release must clamp, never wrap a footprint to ~2^64.
  Gauge g;
  g.add(10);
  g.sub(25);
  EXPECT_EQ(g.value(), 0u);
  EXPECT_EQ(g.peak(), 10u);
}

TEST(Gauge, ResetClearsValueAndPeak) {
  Gauge g;
  g.set(77);
  g.reset();
  EXPECT_EQ(g.value(), 0u);
  EXPECT_EQ(g.peak(), 0u);
}

TEST(SeriesNames, PhaseLabelEncodesAndParses) {
  EXPECT_EQ(series_name("mem.alloc_bytes", {.phase = "bdc.describe"}),
            "mem.alloc_bytes{phase=bdc.describe}");
  // Keys stay in fixed alphabetical order regardless of which are set.
  EXPECT_EQ(series_name("mem.alloc_bytes",
                        {.site = "india", .phase = "bdc.describe"}),
            "mem.alloc_bytes{phase=bdc.describe,site=india}");
  const SeriesKey key =
      parse_series("mem.alloc_bytes{phase=bdc.describe,site=india}");
  EXPECT_EQ(key.name, "mem.alloc_bytes");
  EXPECT_EQ(key.phase, "bdc.describe");
  EXPECT_EQ(key.site, "india");
  EXPECT_EQ(key.cache, "");
}

TEST(RegistryGauges, LabeledLookupAndSnapshot) {
  Registry r;
  r.gauge("cache.bytes", {.cache = "bdc"}).set(4096);
  r.gauge("cache.bytes", {.cache = "bdc"}).sub(96);
  const auto values = r.gauge_values();
  const auto it = values.find("cache.bytes{cache=bdc}");
  ASSERT_NE(it, values.end());
  EXPECT_EQ(it->second.value, 4000u);
  EXPECT_EQ(it->second.peak, 4096u);
}

TEST(RegistryGauges, ResetValuesKeepsNames) {
  Registry r;
  r.gauge("cache.bytes", {.cache = "edc"}).set(123);
  r.reset_values();
  const auto values = r.gauge_values();
  const auto it = values.find("cache.bytes{cache=edc}");
  ASSERT_NE(it, values.end());
  EXPECT_EQ(it->second.value, 0u);
  EXPECT_EQ(it->second.peak, 0u);
}

TEST(SeriesHandleTest, AddsToTheResolvedSeries) {
  SeriesHandle handle("memtest.hits", {.site = "sierra", .cache = "bdc"});
  const std::uint64_t before = handle.value();
  handle.add();
  handle.add(4);
  EXPECT_EQ(handle.value(), before + 5);
  EXPECT_EQ(metrics().counter_values().at(
                "memtest.hits{cache=bdc,site=sierra}"),
            before + 5);
}

TEST(SiteSeriesCacheTest, OneHandlePerSite) {
  SiteSeriesCache cache("memtest.lookups", "resolver.search");
  SeriesHandle& india = cache.at("india");
  SeriesHandle& fir = cache.at("fir");
  india.add(2);
  fir.add(3);
  // Same site resolves to the same handle (and so the same counter).
  EXPECT_EQ(&cache.at("india"), &india);
  const auto counters = metrics().counter_values();
  EXPECT_GE(counters.at("memtest.lookups{cache=resolver.search,site=india}"),
            2u);
  EXPECT_GE(counters.at("memtest.lookups{cache=resolver.search,site=fir}"),
            3u);
}

TEST_F(TrackingTest, ScopeCountsRequestedBytes) {
  const int token = mem_scope_push();
  char* p = new char[4096];
  escape(p);
  delete[] p;
  const MemScopeTotals totals = mem_scope_pop(token);
  EXPECT_EQ(totals.bytes, 4096u);
  EXPECT_EQ(totals.count, 1u);
}

TEST_F(TrackingTest, InnermostScopeWinsAndFreesAreUntracked) {
  const int outer = mem_scope_push();
  char* a = new char[1024];
  escape(a);
  const int inner = mem_scope_push();
  char* b = new char[2048];
  escape(b);
  const MemScopeTotals inner_totals = mem_scope_pop(inner);
  char* c = new char[512];
  escape(c);
  // Frees deliberately do not reduce the tallies: gross pressure, not
  // footprint.
  delete[] a;
  delete[] b;
  delete[] c;
  const MemScopeTotals outer_totals = mem_scope_pop(outer);
  EXPECT_EQ(inner_totals.bytes, 2048u);
  EXPECT_EQ(inner_totals.count, 1u);
  EXPECT_EQ(outer_totals.bytes, 1024u + 512u);
  EXPECT_EQ(outer_totals.count, 2u);
}

TEST_F(TrackingTest, MismatchedPopFoldsOrphanedFrames) {
  const int outer = mem_scope_push();
  const int inner = mem_scope_push();
  char* p = new char[256];
  escape(p);
  delete[] p;
  (void)inner;
  // Popping the outer token directly folds the un-popped inner frame in,
  // so no allocated byte is dropped.
  const MemScopeTotals totals = mem_scope_pop(outer);
  EXPECT_EQ(totals.bytes, 256u);
  EXPECT_EQ(totals.count, 1u);
}

TEST_F(TrackingTest, NothingIsCountedWhileDisarmed) {
  set_alloc_tracking(false);
  const int token = mem_scope_push();
  char* p = new char[8192];
  escape(p);
  delete[] p;
  const MemScopeTotals totals = mem_scope_pop(token);
  EXPECT_EQ(totals.bytes, 0u);
  EXPECT_EQ(totals.count, 0u);
}

TEST_F(TrackingTest, DepthOverflowFallsBackToTheNearestAncestor) {
  std::vector<int> tokens;
  for (int i = 0; i < 64; ++i) tokens.push_back(mem_scope_push());
  const int overflow = mem_scope_push();
  EXPECT_EQ(overflow, -1);
  char* p = new char[128];
  escape(p);
  delete[] p;
  const MemScopeTotals none = mem_scope_pop(overflow);
  EXPECT_EQ(none.bytes, 0u);
  EXPECT_EQ(none.count, 0u);
  // The allocation landed in the deepest real frame.
  MemScopeTotals deepest = mem_scope_pop(tokens.back());
  tokens.pop_back();
  EXPECT_EQ(deepest.bytes, 128u);
  while (!tokens.empty()) {
    mem_scope_pop(tokens.back());
    tokens.pop_back();
  }
}

TEST_F(TrackingTest, ScopesAreThreadLocal) {
  const int token = mem_scope_push();
  std::thread t([] {
    // A scope-less thread attributes nothing, tracked or not.
    char* p = new char[65536];
    escape(p);
    delete[] p;
  });
  t.join();
  const MemScopeTotals totals = mem_scope_pop(token);
  // The std::thread constructor allocates its shared state here, on the
  // calling thread, and that is correctly ours — but the 64 KiB block
  // allocated on the scope-less worker thread must not be.
  EXPECT_LT(totals.bytes, 65536u);
}

TEST_F(TrackingTest, SpanFlushesPhaseLabeledCounters) {
  const auto before = metrics().counter_values();
  const auto at = [&](const char* name) {
    const auto it = before.find(name);
    return it == before.end() ? 0u : it->second;
  };
  const std::uint64_t bytes0 = at("mem.alloc_bytes");
  const std::uint64_t phase0 = at("mem.alloc_bytes{phase=memtest.span}");
  std::uint64_t span_bytes = 0;
  {
    Span span("memtest.span");
    char* p = new char[3000];
    escape(p);
    delete[] p;
    span.finish();
  }
  const auto after = metrics().counter_values();
  span_bytes = after.at("mem.alloc_bytes{phase=memtest.span}") - phase0;
  EXPECT_GE(span_bytes, 3000u);
  EXPECT_GE(after.at("mem.alloc_bytes") - bytes0, span_bytes);
  EXPECT_GE(after.at("mem.alloc_count{phase=memtest.span}"), 1u);
}

TEST(RssProbes, ReadSomethingPlausibleFromProc) {
  const std::uint64_t rss = read_rss_bytes();
  const std::uint64_t peak = read_rss_peak_bytes();
  if (rss == 0) GTEST_SKIP() << "/proc/self/status unavailable";
  EXPECT_GT(rss, 1024u * 1024u);  // a running gtest binary exceeds 1 MiB
  EXPECT_GE(peak, rss / 2);       // VmHWM is near-or-above VmRSS
}

TEST(RssProbes, SampleFillsTheRegistryGauges) {
  Registry r;
  sample_process_rss(r);
  const auto values = r.gauge_values();
  if (values.empty()) GTEST_SKIP() << "/proc/self/status unavailable";
  ASSERT_TRUE(values.count("process.rss_bytes"));
  EXPECT_GT(values.at("process.rss_bytes").value, 0u);
}

}  // namespace
}  // namespace feam::obs
