// Unit tests for the observability subsystem: span nesting, histogram
// percentiles, counters, level parsing, and both exporter formats.
#include <gtest/gtest.h>

#include <thread>

#include "obs/clock.hpp"
#include "obs/event.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/json.hpp"

namespace feam::obs {
namespace {

// Each test that touches the process-wide collector starts from a clean,
// enabled slate and leaves collection off.
class CollectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    collector().clear();
    collector().set_enabled(true);
  }
  void TearDown() override {
    collector().set_enabled(false);
    collector().clear();
  }
};

TEST(Clock, IsMonotonic) {
  const std::uint64_t a = now_ns();
  const std::uint64_t b = now_ns();
  EXPECT_LE(a, b);
}

TEST(Levels, NameRoundTrip) {
  for (Level level : {Level::kDebug, Level::kInfo, Level::kWarn, Level::kError,
                      Level::kNone}) {
    const auto parsed = parse_level(level_name(level));
    ASSERT_TRUE(parsed.has_value()) << level_name(level);
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(parse_level("verbose").has_value());
  EXPECT_FALSE(parse_level("").has_value());
}

TEST(Event, RenderIncludesLevelNameMessageAndFields) {
  Event e;
  e.level = Level::kWarn;
  e.name = "tec.verdict";
  e.message = "stack mismatch";
  e.fields = {{"site", "fir"}, {"ready", "false"}};
  const std::string text = e.render();
  EXPECT_NE(text.find("[warn]"), std::string::npos);
  EXPECT_NE(text.find("tec.verdict"), std::string::npos);
  EXPECT_NE(text.find("stack mismatch"), std::string::npos);
  EXPECT_NE(text.find("site=fir"), std::string::npos);
  EXPECT_NE(text.find("ready=false"), std::string::npos);
}

TEST(Counter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, EmptyReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0u);
}

TEST(Histogram, SingleValueIsExactAtEveryPercentile) {
  Histogram h;
  h.record(12345);
  EXPECT_EQ(h.percentile(0.0), 12345u);
  EXPECT_EQ(h.percentile(0.5), 12345u);
  EXPECT_EQ(h.percentile(0.99), 12345u);
  EXPECT_EQ(h.percentile(1.0), 12345u);
  EXPECT_EQ(h.min(), 12345u);
  EXPECT_EQ(h.max(), 12345u);
  EXPECT_EQ(h.mean(), 12345.0);
}

TEST(Histogram, PercentilesLandInTheRightBucket) {
  Histogram h;
  // 90 fast samples (~1000 ns) and 10 slow ones (~1e6 ns).
  for (int i = 0; i < 90; ++i) h.record(1000);
  for (int i = 0; i < 10; ++i) h.record(1000000);
  EXPECT_EQ(h.count(), 100u);
  // p50 falls among the fast samples: interpolation lands below the
  // observed minimum, so the min clamp reports exactly 1000.
  EXPECT_EQ(h.percentile(0.5), 1000u);
  // p99 falls among the slow samples, in the [524288, 1048575] bucket:
  // rank 99 is 9/10ths through the bucket's samples, so interpolation
  // gives 524288 + 0.9 * 524287 — not the old bucket-upper step value.
  EXPECT_GE(h.percentile(0.99), 524288u);
  EXPECT_LE(h.percentile(0.99), 1000000u);
  EXPECT_EQ(h.percentile(0.99), 996146u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 1000000u);
}

TEST(Histogram, PercentileInterpolatesWithinABucket) {
  Histogram h;
  // Two samples in the same [512, 1023] bucket: interpolation separates
  // them instead of reporting the bucket bound for both.
  h.record(600);
  h.record(1000);
  // rank 1 -> halfway through the bucket (767), above the observed min.
  EXPECT_EQ(h.percentile(0.25), 767u);
  // rank 2 -> the bucket's top, clamped to the observed max.
  EXPECT_EQ(h.percentile(0.9), 1000u);
  EXPECT_LT(h.percentile(0.25), h.percentile(0.9));
}

TEST(HistogramSnapshot, EmptySnapshotReportsZerosEverywhere) {
  const HistogramSnapshot s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.min(), 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.mean(), 0.0);
  for (double p : {0.0, 0.5, 1.0}) {
    EXPECT_EQ(s.percentile(p), 0u) << p;
  }
}

TEST(HistogramSnapshot, SinglePopulatedBucketClampsToObservedRange) {
  Histogram h;
  // All three samples land in the [512, 1023] bucket; every percentile
  // must stay inside the observed [600, 900], never at the bucket bounds.
  h.record(600);
  h.record(700);
  h.record(900);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.sum, 2200u);
  for (double p : {0.0, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    EXPECT_GE(s.percentile(p), 600u) << p;
    EXPECT_LE(s.percentile(p), 900u) << p;
  }
  EXPECT_EQ(s.percentile(1.0), 900u);
}

TEST(HistogramSnapshot, MergeOfDisjointBucketRanges) {
  Histogram small, large;
  for (int i = 0; i < 4; ++i) small.record(10);       // bucket [8, 15]
  for (int i = 0; i < 4; ++i) large.record(1 << 20);  // bucket [2^20, ...]
  HistogramSnapshot merged = small.snapshot();
  merged.merge(large.snapshot());
  EXPECT_EQ(merged.count, 8u);
  EXPECT_EQ(merged.sum, 4u * 10 + 4u * (1 << 20));
  EXPECT_EQ(merged.min(), 10u);
  EXPECT_EQ(merged.max, static_cast<std::uint64_t>(1) << 20);
  // The low half of the distribution reports from the small-value bucket,
  // the high half from the large-value bucket — nothing in between.
  EXPECT_GE(merged.percentile(0.25), 10u);
  EXPECT_LE(merged.percentile(0.25), 15u);  // within the [8, 15] bucket
  EXPECT_EQ(merged.percentile(0.75), static_cast<std::uint64_t>(1) << 20);
  // Merging an empty snapshot changes nothing.
  const HistogramSnapshot before = merged;
  merged.merge(HistogramSnapshot{});
  EXPECT_EQ(merged.count, before.count);
  EXPECT_EQ(merged.min(), before.min());
  EXPECT_EQ(merged.max, before.max);
  EXPECT_EQ(merged.percentile(0.5), before.percentile(0.5));
}

TEST(HistogramSnapshot, PercentileBoundariesAreMinAndMax) {
  Histogram h;
  h.record(100);
  h.record(5000);
  h.record(70000);
  const HistogramSnapshot s = h.snapshot();
  // p1.0 lands exactly on the observed max; p0.0 interpolates within the
  // lowest populated bucket, clamped to stay at or above the observed min.
  EXPECT_EQ(s.percentile(1.0), 70000u);
  EXPECT_GE(s.percentile(0.0), 100u);
  EXPECT_LT(s.percentile(0.0), 5000u);
  // Out-of-range fractions clamp to the p0/p1 answers instead of reading
  // outside the bucket array.
  EXPECT_EQ(s.percentile(-0.5), s.percentile(0.0));
  EXPECT_EQ(s.percentile(1.5), 70000u);
}

TEST(HistogramSnapshot, MergePreservesTailFidelity) {
  Histogram a, b;
  for (int i = 0; i < 90; ++i) a.record(1000);
  for (int i = 0; i < 10; ++i) b.record(1000000);
  HistogramSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());

  Histogram combined;
  for (int i = 0; i < 90; ++i) combined.record(1000);
  for (int i = 0; i < 10; ++i) combined.record(1000000);

  EXPECT_EQ(merged.count, 100u);
  EXPECT_EQ(merged.sum, combined.sum());
  EXPECT_EQ(merged.min(), 1000u);
  EXPECT_EQ(merged.max, 1000000u);
  for (double p : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(merged.percentile(p), combined.percentile(p)) << p;
  }
}

TEST(HistogramSnapshot, JsonRoundTripKeepsBucketsAndPercentiles) {
  Histogram h;
  h.record(0);
  h.record(700);
  h.record(5000);
  h.record(123456789);
  const auto parsed =
      support::Json::parse(h.snapshot().to_json().dump());
  ASSERT_TRUE(parsed.has_value());
  const auto restored = HistogramSnapshot::from_json(*parsed);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->count, 4u);
  EXPECT_EQ(restored->min(), 0u);
  EXPECT_EQ(restored->max, 123456789u);
  for (double p : {0.25, 0.5, 0.75, 0.99}) {
    EXPECT_EQ(restored->percentile(p), h.percentile(p)) << p;
  }
}

TEST(HistogramSnapshot, FromJsonRejectsInconsistentBuckets) {
  auto j = support::Json::parse(
      R"({"count":3,"sum":10,"min":1,"max":5,"buckets":[1,1]})");
  ASSERT_TRUE(j.has_value());
  EXPECT_FALSE(HistogramSnapshot::from_json(*j).has_value());
  EXPECT_FALSE(HistogramSnapshot::from_json(support::Json("x")).has_value());
}

TEST(HistogramSnapshot, EmptyMergesAndReportsZero) {
  HistogramSnapshot empty;
  HistogramSnapshot other;
  other.merge(empty);
  EXPECT_TRUE(other.empty());
  EXPECT_EQ(other.percentile(0.5), 0u);
  Histogram h;
  h.record(42);
  HistogramSnapshot s = h.snapshot();
  s.merge(empty);
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.percentile(0.5), 42u);
  EXPECT_EQ(s.min(), 42u);
}

TEST(Histogram, RecordsZero) {
  Histogram h;
  h.record(0);
  h.record(0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Registry, RegistersOnFirstUseAndSerializes) {
  Registry r;
  EXPECT_EQ(r.size(), 0u);
  r.counter("a.count").add(3);
  r.histogram("a.latency_ns").record(500);
  Counter& again = r.counter("a.count");
  EXPECT_EQ(again.value(), 3u);
  EXPECT_EQ(r.size(), 2u);

  const auto parsed = support::Json::parse(render_metrics_json(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ((*parsed)["counters"]["a.count"].as_number(), 3.0);
  EXPECT_EQ((*parsed)["histograms"]["a.latency_ns"]["count"].as_number(), 1.0);
  EXPECT_EQ((*parsed)["histograms"]["a.latency_ns"]["p50"].as_number(), 500.0);

  r.reset_values();
  EXPECT_EQ(r.counter("a.count").value(), 0u);
  EXPECT_EQ(r.histogram("a.latency_ns").count(), 0u);
  EXPECT_EQ(r.size(), 2u);  // names survive a value reset
}

TEST(Registry, EmptySerializesAsObjects) {
  Registry r;
  const auto parsed = support::Json::parse(render_metrics_json(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE((*parsed)["counters"].is_object());
  EXPECT_TRUE((*parsed)["histograms"].is_object());
}

TEST(ScopedTimerTest, FeedsHistogram) {
  Histogram h;
  { ScopedTimer timer(h); }
  EXPECT_EQ(h.count(), 1u);
}

TEST_F(CollectorTest, SpanNestingRecordsParentIds) {
  {
    Span outer("outer");
    {
      Span inner("inner", {{"k", "v"}});
      { Span leaf("leaf"); }
    }
    Span sibling("sibling");
  }
  const auto spans = collector().spans();
  ASSERT_EQ(spans.size(), 4u);  // recorded in finish order
  EXPECT_EQ(spans[0].name, "leaf");
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[2].name, "sibling");
  EXPECT_EQ(spans[3].name, "outer");
  const auto& outer = spans[3];
  const auto& inner = spans[1];
  const auto& leaf = spans[0];
  const auto& sibling = spans[2];
  EXPECT_EQ(outer.parent_id, 0u);
  EXPECT_EQ(inner.parent_id, outer.id);
  EXPECT_EQ(leaf.parent_id, inner.id);
  EXPECT_EQ(sibling.parent_id, outer.id);
  // Time containment.
  EXPECT_LE(outer.start_ns, inner.start_ns);
  EXPECT_LE(inner.end_ns, outer.end_ns);
  ASSERT_EQ(inner.fields.size(), 1u);
  EXPECT_EQ(inner.fields[0].first, "k");
}

TEST_F(CollectorTest, FinishEndsTheSpanOnce) {
  Span span("explicit");
  span.add_field("answer", "42");
  span.finish();
  span.finish();  // second call is a no-op
  const auto spans = collector().spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "explicit");
  ASSERT_EQ(spans[0].fields.size(), 1u);
  EXPECT_EQ(spans[0].fields[0].second, "42");
}

TEST_F(CollectorTest, DisabledCollectorRecordsNothingButClockStillRuns) {
  collector().set_enabled(false);
  Span span("invisible");
  EXPECT_GE(span.elapsed_ns(), 0u);
  span.finish();
  emit(Level::kInfo, "invisible.event", "dropped");
  EXPECT_TRUE(collector().spans().empty());
  EXPECT_TRUE(collector().events().empty());
}

TEST_F(CollectorTest, EmitStoresEventsWithTimestamps) {
  emit(Level::kInfo, "test.event", "hello", {{"a", "1"}});
  const auto events = collector().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "test.event");
  EXPECT_EQ(events[0].message, "hello");
  EXPECT_GT(events[0].t_ns, 0u);
}

TEST_F(CollectorTest, SpansOnDifferentThreadsDoNotNestAcrossThreads) {
  Span outer("main_thread_outer");
  SpanRecord worker_record;
  std::thread worker([&] {
    Span inner("worker_span");
    inner.finish();
  });
  worker.join();
  outer.finish();
  const auto spans = collector().spans();
  ASSERT_EQ(spans.size(), 2u);
  // The worker's span must not claim the main thread's open span as parent.
  EXPECT_EQ(spans[0].name, "worker_span");
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_NE(spans[0].tid, spans[1].tid);
}

TEST_F(CollectorTest, JsonlExportIsOneValidObjectPerLine) {
  emit(Level::kWarn, "a.b", "first", {{"k", "v"}});
  emit(Level::kInfo, "c.d", "second");
  const std::string jsonl = render_jsonl(collector().events());
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    const std::string line = jsonl.substr(start, end - start);
    const auto parsed = support::Json::parse(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    EXPECT_TRUE((*parsed)["name"].is_string());
    EXPECT_TRUE((*parsed)["level"].is_string());
    EXPECT_TRUE((*parsed)["fields"].is_object());
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, 2u);
}

TEST_F(CollectorTest, ExportersSurviveNonUtf8FieldValues) {
  // A synthetic ELF .comment section can carry arbitrary bytes; both
  // exporters must still produce valid JSON.
  const std::string nasty = "GCC: \x93\xff \"quoted\" back\\slash \x01\xed\xa0\x80";
  {
    Span span("bdc.describe", {{"comment", nasty}});
  }
  emit(Level::kWarn, "bdc.comment", nasty, {{"raw", nasty}});

  const std::string jsonl = render_jsonl(collector().events());
  for (const auto& line : [&] {
         std::vector<std::string> lines;
         std::size_t start = 0;
         while (start < jsonl.size()) {
           std::size_t end = jsonl.find('\n', start);
           if (end == std::string::npos) end = jsonl.size();
           lines.push_back(jsonl.substr(start, end - start));
           start = end + 1;
         }
         return lines;
       }()) {
    EXPECT_TRUE(support::Json::parse(line).has_value()) << line;
  }

  const std::string trace =
      render_chrome_trace(collector().spans(), collector().events());
  EXPECT_TRUE(support::Json::parse(trace).has_value());
}

TEST_F(CollectorTest, ChromeTraceExportHasSpansAndInstants) {
  {
    Span outer("outer");
    Span inner("inner", {{"site", "fir"}});
  }
  emit(Level::kInfo, "point.event", "message");
  const std::string trace =
      render_chrome_trace(collector().spans(), collector().events());
  const auto parsed = support::Json::parse(trace);
  ASSERT_TRUE(parsed.has_value());
  const auto& events = (*parsed)["traceEvents"].as_array();
  ASSERT_EQ(events.size(), 3u);
  std::size_t complete = 0, instant = 0;
  for (const auto& e : events) {
    const std::string ph = e.get_string("ph");
    if (ph == "X") {
      ++complete;
      EXPECT_TRUE(e["ts"].is_number());
      EXPECT_TRUE(e["dur"].is_number());
      EXPECT_TRUE(e["args"].is_object());
    } else if (ph == "i") {
      ++instant;
      EXPECT_EQ(e.get_string("s"), "t");
    }
  }
  EXPECT_EQ(complete, 2u);
  EXPECT_EQ(instant, 1u);
}

}  // namespace
}  // namespace feam::obs
