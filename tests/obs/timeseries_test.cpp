// TimeseriesSampler under fire: series encoding, delta exactness, and the
// concurrent-stress invariant the stream is built on — with writers
// hammering counters and histograms while the sampler runs flat out, the
// sum of every serialized delta must telescope to the final totals
// exactly (no drops, no double counts). Run under TSan in CI.
#include "obs/timeseries.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "report/timeseries.hpp"

namespace feam::obs {
namespace {

// Collects emitted lines under a lock, mirroring the CLI's file sink.
class LineBuffer {
 public:
  void operator()(const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex_);
    text_ += line;
  }
  std::string text() {
    std::lock_guard<std::mutex> lock(mutex_);
    return text_;
  }

 private:
  std::mutex mutex_;
  std::string text_;
};

TEST(SeriesName, EncodesLabelsInFixedOrder) {
  EXPECT_EQ(series_name("cache.hits", {}), "cache.hits");
  EXPECT_EQ(series_name("cache.hits", {.site = "india", .cache = "bdc"}),
            "cache.hits{cache=bdc,site=india}");
  EXPECT_EQ(series_name("tec.checks", {.determinant = "ISA"}),
            "tec.checks{determinant=ISA}");
}

TEST(SeriesName, ParseInvertsEncode) {
  const Labels labels{.site = "fir", .cache = "resolver.ldd"};
  const SeriesKey key = parse_series(series_name("cache.hits", labels));
  EXPECT_EQ(key.name, "cache.hits");
  EXPECT_EQ(key.site, "fir");
  EXPECT_EQ(key.cache, "resolver.ldd");
  EXPECT_EQ(key.determinant, "");

  const SeriesKey bare = parse_series("phase.target_runs");
  EXPECT_EQ(bare.name, "phase.target_runs");
  EXPECT_TRUE(bare.site.empty() && bare.cache.empty() &&
              bare.determinant.empty());
}

TEST(Registry, ZeroLabelAliasesUnlabeled) {
  Registry registry;
  registry.counter("c").add(3);
  registry.counter("c", Labels{}).add(4);
  EXPECT_EQ(registry.counter("c").value(), 7u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(HistogramSnapshotDelta, DiffsBucketsAndBoundsWindow) {
  Histogram h;
  h.record(10);
  h.record(1000);
  const HistogramSnapshot before = h.snapshot();
  h.record(500);
  h.record(500);
  const HistogramSnapshot delta = h.snapshot().delta_since(before);
  EXPECT_EQ(delta.count, 2u);
  EXPECT_EQ(delta.sum, 1000u);
  // Window bounds are the tightest provable: both samples fell in the
  // 512-bucket, clamped to the cumulative extremes.
  EXPECT_LE(delta.min(), 500u);
  EXPECT_GE(delta.max, 500u);
  // A delta must survive the serialized round trip (count == bucket sum).
  const auto round = HistogramSnapshot::from_json(delta.to_json());
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->count, 2u);
}

TEST(TimeseriesSampler, EmitsMetaThenSamplesThenFinal) {
  Registry registry;
  LineBuffer sink;
  {
    TimeseriesSampler::Options options;
    options.interval_ms = 1;
    options.source = "unit test";
    TimeseriesSampler sampler(registry, options,
                              [&sink](const std::string& l) { sink(l); });
    registry.counter("work").add(5);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }  // destructor stops and flushes the final sample
  const report::Timeseries series = report::parse_timeseries(sink.text());
  EXPECT_TRUE(series.saw_meta);
  EXPECT_TRUE(series.saw_final);
  EXPECT_EQ(series.source, "unit test");
  EXPECT_EQ(series.malformed_lines, 0u);
  ASSERT_FALSE(series.samples.empty());
  EXPECT_TRUE(series.samples.back().final_sample);
  EXPECT_EQ(series.final_counter_totals().at("work"), 5u);
  EXPECT_TRUE(series.consistency_issues().empty());
}

TEST(TimeseriesSampler, StopIsIdempotent) {
  Registry registry;
  LineBuffer sink;
  TimeseriesSampler sampler(registry, {.interval_ms = 1},
                            [&sink](const std::string& l) { sink(l); });
  registry.counter("once").add(1);
  sampler.stop();
  const std::uint64_t emitted = sampler.samples_emitted();
  sampler.stop();
  sampler.stop();
  EXPECT_EQ(sampler.samples_emitted(), emitted);
  const report::Timeseries series = report::parse_timeseries(sink.text());
  std::size_t finals = 0;
  for (const auto& sample : series.samples) finals += sample.final_sample;
  EXPECT_EQ(finals, 1u);
}

// The headline invariant: concurrent writers + live sampler, and the
// serialized deltas still telescope exactly to the final totals — for
// unlabeled counters, labeled counters, and histogram counts alike.
// Additionally, each labeled family must sum to its unlabeled legacy
// series (writers record both, like the migration hot paths do).
TEST(TimeseriesStress, SumOfDeltasEqualsFinalCountersUnderConcurrency) {
  constexpr int kWriters = 8;
  constexpr int kIterations = 4000;
  static constexpr const char* kSites[] = {"india", "fir", "sierra", "tope"};

  Registry registry;
  LineBuffer sink;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  {
    TimeseriesSampler sampler(registry, {.interval_ms = 1},
                              [&sink](const std::string& l) { sink(l); });
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&registry, &go, w] {
        while (!go.load(std::memory_order_acquire)) {}
        const Labels labels{.site = kSites[w % 4], .cache = "bdc"};
        Counter& legacy = registry.counter("cache.hits");
        Counter& labeled = registry.counter("cache.hits", labels);
        Histogram& wait = registry.histogram("lease.wait_ns");
        for (int i = 0; i < kIterations; ++i) {
          legacy.add();
          labeled.add();
          wait.record(static_cast<std::uint64_t>(i % 1024));
        }
      });
    }
    go.store(true, std::memory_order_release);
    for (auto& t : writers) t.join();
  }  // sampler stops: all writers joined first, final sample is quiescent

  const report::Timeseries series = report::parse_timeseries(sink.text());
  EXPECT_TRUE(series.saw_final);
  EXPECT_EQ(series.malformed_lines, 0u);

  // Every delta line parsed while writers were mid-flight was internally
  // consistent, and the deltas telescope to the totals exactly.
  EXPECT_TRUE(series.consistency_issues().empty())
      << series.consistency_issues().front();

  const auto totals = series.final_counter_totals();
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kWriters) * kIterations;
  EXPECT_EQ(totals.at("cache.hits"), expected);

  // sum over labels == unlabeled total.
  std::uint64_t labeled_sum = 0;
  for (const auto& [name, total] : totals) {
    if (name.rfind("cache.hits{", 0) == 0) labeled_sum += total;
  }
  EXPECT_EQ(labeled_sum, expected);

  EXPECT_EQ(series.final_histogram_counts().at("lease.wait_ns"), expected);
  // Merged histogram deltas over the whole run carry every sample too.
  const auto merged =
      series.merged_histogram("lease.wait_ns", 0, series.samples.size());
  EXPECT_EQ(merged.count, expected);
  EXPECT_LE(merged.max, 1023u);
}

}  // namespace
}  // namespace feam::obs
