// Reader + trend-gate tests over synthetic feam.timeseries/1 streams:
// incremental tailing with torn lines, malformed-line accounting, windowed
// aggregation, and the gate's core promise — an injected steady-state
// slowdown fails, the clean run passes.
#include "report/timeseries.hpp"

#include <string>

#include <gtest/gtest.h>

#include "report/trend.hpp"
#include "support/json.hpp"

namespace feam::report {
namespace {

std::string meta_line() {
  return R"({"interval_ms":100,"schema":"feam.timeseries/1","source":"synthetic","t_ns":0,"type":"meta"})"
         "\n";
}

// One sample line with a counter delta and a single-bucket histogram delta
// whose every sample is `value` (bucket index chosen loosely: one synthetic
// bucket carrying the full count, min=max=value — from_json accepts it).
std::string sample_line(std::uint64_t seq, std::uint64_t hits_delta,
                        std::uint64_t hits_total, std::uint64_t misses_delta,
                        std::uint64_t misses_total, std::uint64_t lat_count,
                        std::uint64_t lat_value, std::uint64_t lat_total,
                        bool final_sample = false) {
  support::Json hist;
  hist.set("count", lat_count);
  hist.set("sum", lat_count * lat_value);
  hist.set("min", lat_value);
  hist.set("max", lat_value);
  support::Json line;
  line.set("schema", "feam.timeseries/1");
  line.set("type", "sample");
  line.set("seq", seq);
  line.set("t_ns", std::uint64_t{(seq + 1) * 100'000'000ull});
  line.set("dt_ns", std::uint64_t{100'000'000});
  line.set("final", final_sample);
  support::Json counters{support::Json::Object{}};
  support::Json hits;
  hits.set("d", hits_delta);
  hits.set("t", hits_total);
  counters.set("cache.hits{cache=bdc,site=india}", std::move(hits));
  support::Json misses;
  misses.set("d", misses_delta);
  misses.set("t", misses_total);
  counters.set("cache.misses{cache=bdc,site=india}", std::move(misses));
  line.set("counters", std::move(counters));
  support::Json histograms{support::Json::Object{}};
  support::Json entry;
  entry.set("d", std::move(hist));
  entry.set("t", lat_total);
  histograms.set("phase.target_ns", std::move(entry));
  line.set("histograms", std::move(histograms));
  return line.dump() + "\n";
}

// 20 samples: hit rate and latency steady by default; `degrade` makes the
// back half drift (latency x4, hit rate collapsing).
std::string synthetic_stream(bool degrade) {
  std::string text = meta_line();
  std::uint64_t hits = 0, misses = 0, lat_total = 0;
  for (std::uint64_t i = 0; i < 20; ++i) {
    const bool late = i >= 10;
    const std::uint64_t hit_d = degrade && late ? 2 : 8;
    const std::uint64_t miss_d = degrade && late ? 8 : 2;
    const std::uint64_t lat = degrade && late ? 4'000'000 : 1'000'000;
    hits += hit_d;
    misses += miss_d;
    lat_total += 10;
    text += sample_line(i, hit_d, hits, miss_d, misses, 10, lat, lat_total,
                        /*final_sample=*/i == 19);
  }
  return text;
}

support::Json trend_baseline() {
  const auto parsed = support::Json::parse(R"({
    "schema": "feam.trend_baseline/1",
    "steady_state": {"skip_head_fraction": 0.1, "min_samples": 6},
    "metrics": {
      "hist.phase.target_ns.p99": {"max_drift": 0.5},
      "hitrate.cache": {"max_drop": 0.2, "min_late": 0.5},
      "rate.cache.hits{cache=bdc,site=india}": {"max_drop": 0.95}
    }})");
  return *parsed;
}

TEST(TimeseriesParse, ReadsMetaSamplesAndFinal) {
  const Timeseries series = parse_timeseries(synthetic_stream(false));
  EXPECT_TRUE(series.saw_meta);
  EXPECT_TRUE(series.saw_final);
  EXPECT_EQ(series.interval_ms, 100u);
  EXPECT_EQ(series.source, "synthetic");
  EXPECT_EQ(series.samples.size(), 20u);
  EXPECT_EQ(series.malformed_lines, 0u);
  EXPECT_TRUE(series.consistency_issues().empty());
  EXPECT_EQ(
      series.final_counter_totals().at("cache.hits{cache=bdc,site=india}"),
      160u);
  EXPECT_EQ(series.final_histogram_counts().at("phase.target_ns"), 200u);
}

TEST(TimeseriesParse, CountsMalformedLinesAndForeignSchemas) {
  std::string text = meta_line();
  text += "not json at all\n";
  text += R"({"schema":"somebody.else/9","type":"sample"})" "\n";
  text += R"({"schema":"feam.timeseries/1","type":"mystery"})" "\n";
  const Timeseries series = parse_timeseries(text);
  EXPECT_TRUE(series.saw_meta);
  EXPECT_EQ(series.malformed_lines, 3u);
  EXPECT_TRUE(series.samples.empty());
}

TEST(TimeseriesParse, DetectsBrokenTelescoping) {
  std::string text = meta_line();
  text += sample_line(0, 5, 5, 0, 0, 1, 100, 1);
  text += sample_line(1, 5, 12, 0, 0, 1, 100, 2);  // 5+5 != 12
  const Timeseries series = parse_timeseries(text);
  const auto issues = series.consistency_issues();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].find("cache.hits{cache=bdc,site=india}"),
            std::string::npos);
}

TEST(TimeseriesTailTest, BuffersTornLinesAcrossFeeds) {
  const std::string text = synthetic_stream(false);
  TimeseriesTail tail;
  // Drip-feed in 7-byte chunks: every line boundary lands mid-chunk.
  for (std::size_t at = 0; at < text.size(); at += 7) {
    tail.feed(std::string_view(text).substr(at, 7));
  }
  EXPECT_EQ(tail.series().samples.size(), 20u);
  EXPECT_TRUE(tail.series().saw_final);
  EXPECT_EQ(tail.series().malformed_lines, 0u);

  // A trailing partial line stays buffered, not misparsed.
  TimeseriesTail torn;
  torn.feed(meta_line() + R"({"schema":"feam.time)");
  EXPECT_EQ(torn.series().malformed_lines, 0u);
  EXPECT_TRUE(torn.series().saw_meta);
}

TEST(TimeseriesWindows, CacheRollupAndMergedHistograms) {
  const Timeseries series = parse_timeseries(synthetic_stream(false));
  const auto caches = cache_windows(series, 0, series.samples.size());
  ASSERT_TRUE(caches.count("bdc"));
  EXPECT_EQ(caches.at("bdc").hits, 160u);
  EXPECT_EQ(caches.at("bdc").misses, 40u);
  EXPECT_DOUBLE_EQ(caches.at("bdc").rate(), 0.8);

  const auto merged = series.merged_histogram("phase.target_ns", 0, 10);
  EXPECT_EQ(merged.count, 100u);
  EXPECT_DOUBLE_EQ(series.span_seconds(0, 10), 1.0);
  EXPECT_EQ(series.counter_delta_sum("cache.hits{cache=bdc,site=india}",
                                     0, 10),
            80u);
}

// One sample line carrying a gauge level and (optionally) a site-labeled
// histogram delta — the shapes the memory-observability stream adds.
std::string gauge_sample_line(std::uint64_t seq, std::uint64_t rss,
                              std::uint64_t rss_peak, bool with_gauge,
                              std::uint64_t site_a_count,
                              std::uint64_t site_b_count,
                              std::uint64_t lat_value,
                              std::uint64_t& a_total, std::uint64_t& b_total,
                              bool final_sample) {
  support::Json line;
  line.set("schema", "feam.timeseries/1");
  line.set("type", "sample");
  line.set("seq", seq);
  line.set("t_ns", std::uint64_t{(seq + 1) * 100'000'000ull});
  line.set("dt_ns", std::uint64_t{100'000'000});
  line.set("final", final_sample);
  if (with_gauge || final_sample) {
    support::Json gauges{support::Json::Object{}};
    support::Json rss_entry;
    rss_entry.set("v", rss);
    rss_entry.set("p", rss_peak);
    gauges.set("process.rss_bytes", std::move(rss_entry));
    line.set("gauges", std::move(gauges));
  }
  support::Json histograms{support::Json::Object{}};
  const auto hist_entry = [&](std::uint64_t count, std::uint64_t value,
                              std::uint64_t total) {
    support::Json h;
    h.set("count", count);
    h.set("sum", count * value);
    h.set("min", value);
    h.set("max", value);
    support::Json entry;
    entry.set("d", std::move(h));
    entry.set("t", total);
    return entry;
  };
  if (site_a_count > 0) {
    a_total += site_a_count;
    histograms.set("phase.target_ns{site=india}",
                   hist_entry(site_a_count, lat_value, a_total));
  }
  if (site_b_count > 0) {
    b_total += site_b_count;
    histograms.set("phase.target_ns{site=sierra}",
                   hist_entry(site_b_count, 4 * lat_value, b_total));
  }
  line.set("histograms", std::move(histograms));
  return line.dump() + "\n";
}

// 20 samples with an RSS gauge written only when it changes (every 4th
// sample) and two site-labeled phase.target_ns series. `leak` makes the
// RSS level climb through the back half.
std::string gauge_stream(bool leak) {
  std::string text = meta_line();
  std::uint64_t a_total = 0, b_total = 0;
  for (std::uint64_t i = 0; i < 20; ++i) {
    const std::uint64_t rss =
        leak && i >= 10 ? 100'000'000 + (i - 9) * 30'000'000 : 100'000'000;
    text += gauge_sample_line(i, rss, rss, /*with_gauge=*/i % 4 == 0,
                              /*site_a_count=*/6, /*site_b_count=*/2,
                              /*lat_value=*/1'000'000, a_total, b_total,
                              /*final_sample=*/i == 19);
  }
  return text;
}

TEST(TimeseriesGauges, ParsesAndCarriesLevelsForward) {
  const Timeseries series = parse_timeseries(gauge_stream(false));
  ASSERT_EQ(series.samples.size(), 20u);
  EXPECT_TRUE(series.consistency_issues().empty());
  const auto track = series.gauge_track("process.rss_bytes");
  ASSERT_EQ(track.size(), 20u);
  // Samples between writes carry the last reported level forward.
  EXPECT_EQ(track[0].value, 100'000'000u);
  EXPECT_EQ(track[1].value, 100'000'000u);
  EXPECT_EQ(track[19].value, 100'000'000u);
  const auto finals = series.final_gauge_values();
  ASSERT_TRUE(finals.count("process.rss_bytes"));
  EXPECT_EQ(finals.at("process.rss_bytes").peak, 100'000'000u);
  // An unknown gauge yields an all-zero track of the same length.
  const auto missing = series.gauge_track("no.such.gauge");
  ASSERT_EQ(missing.size(), 20u);
  EXPECT_EQ(missing[19].value, 0u);
}

TEST(TimeseriesGauges, FlagsMalformedAndRegressingPeaks) {
  // peak < value on one line, and a later line whose peak moves backwards.
  std::string text = meta_line();
  text += R"({"schema":"feam.timeseries/1","type":"sample","seq":0,)"
          R"("t_ns":100,"dt_ns":100,"final":false,)"
          R"("gauges":{"cache.bytes{cache=bdc}":{"v":500,"p":400}}})" "\n";
  text += R"({"schema":"feam.timeseries/1","type":"sample","seq":1,)"
          R"("t_ns":200,"dt_ns":100,"final":true,)"
          R"("gauges":{"cache.bytes{cache=bdc}":{"v":100,"p":200}}})" "\n";
  const Timeseries series = parse_timeseries(text);
  const auto issues = series.consistency_issues();
  ASSERT_EQ(issues.size(), 2u);
  EXPECT_NE(issues[0].find("cache.bytes{cache=bdc}"), std::string::npos);
}

TEST(TimeseriesWindows, MergedHistogramBaseSpansLabeledSeries) {
  const Timeseries series = parse_timeseries(gauge_stream(false));
  // Per window: india records 6 samples at 1ms, sierra 2 at 4ms. The
  // base-merged view over 10 windows carries all 80.
  const auto merged =
      series.merged_histogram_base("phase.target_ns", 0, 10,
                                   /*include_unlabeled=*/false);
  EXPECT_EQ(merged.count, 80u);
  EXPECT_EQ(merged.min(), 1'000'000u);
  EXPECT_EQ(merged.max, 4'000'000u);
  // p50 falls in the india mass, p99 in sierra's slower tail.
  EXPECT_LT(merged.percentile(0.5), 2'000'000u);
  EXPECT_GT(merged.percentile(0.99), 2'000'000u);
  // A single labeled series still reads exactly through the plain merge.
  const auto india =
      series.merged_histogram("phase.target_ns{site=india}", 0, 10);
  EXPECT_EQ(india.count, 60u);
  // No unlabeled variant exists, so include_unlabeled changes nothing
  // here; a full-range merge sees every window.
  const auto all = series.merged_histogram_base("phase.target_ns", 0, 20,
                                                /*include_unlabeled=*/true);
  EXPECT_EQ(all.count, 160u);
}

TEST(TrendGate, GaugeSelectorCatchesSteadyStateRssGrowth) {
  const auto baseline = *support::Json::parse(R"({
    "schema": "feam.trend_baseline/1",
    "steady_state": {"skip_head_fraction": 0.1, "min_samples": 6},
    "metrics": {
      "gauge.process.rss_bytes.mean": {"max_drift": 0.2}
    }})");
  const Timeseries steady = parse_timeseries(gauge_stream(false));
  const auto ok = run_trend_gate(steady, baseline);
  ASSERT_TRUE(ok.ok()) << ok.error();
  EXPECT_TRUE(ok.value().pass) << ok.value().render();

  const Timeseries leaking = parse_timeseries(gauge_stream(true));
  const auto bad = run_trend_gate(leaking, baseline);
  ASSERT_TRUE(bad.ok()) << bad.error();
  EXPECT_FALSE(bad.value().pass) << bad.value().render();
  ASSERT_EQ(bad.value().checks.size(), 1u);
  EXPECT_GT(bad.value().checks[0].drift, 0.2);
}

TEST(TrendGate, RejectsUnknownGaugeStats) {
  const Timeseries series = parse_timeseries(gauge_stream(false));
  EXPECT_FALSE(
      run_trend_gate(series,
                     *support::Json::parse(
                         R"({"schema":"feam.trend_baseline/1","metrics":
                             {"gauge.process.rss_bytes.median":
                              {"max_drift": 1}}})"))
          .ok());
}

TEST(LooksLikeTimeseries, DiscriminatesFromEventLogs) {
  EXPECT_TRUE(looks_like_timeseries(synthetic_stream(false)));
  EXPECT_FALSE(looks_like_timeseries(
      R"({"level":"info","name":"phase.start"})" "\n"));
  EXPECT_FALSE(looks_like_timeseries(""));
}

TEST(TrendGate, PassesOnACleanSteadyState) {
  const Timeseries series = parse_timeseries(synthetic_stream(false));
  const auto result = run_trend_gate(series, trend_baseline());
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_TRUE(result.value().pass) << result.value().render();
  EXPECT_EQ(result.value().failures(), 0u);
  // Checks actually evaluated, not vacuously skipped.
  for (const auto& check : result.value().checks) {
    EXPECT_FALSE(check.skipped) << check.metric;
  }
}

TEST(TrendGate, FailsOnInjectedSteadyStateSlowdown) {
  const Timeseries series = parse_timeseries(synthetic_stream(true));
  const auto result = run_trend_gate(series, trend_baseline());
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_FALSE(result.value().pass);
  bool latency_failed = false, hitrate_failed = false;
  for (const auto& check : result.value().checks) {
    if (check.metric == "hist.phase.target_ns.p99" && !check.pass) {
      latency_failed = true;
      EXPECT_GT(check.drift, 0.5);
    }
    if (check.metric == "hitrate.cache" && !check.pass) hitrate_failed = true;
  }
  EXPECT_TRUE(latency_failed) << result.value().render();
  EXPECT_TRUE(hitrate_failed) << result.value().render();
}

TEST(TrendGate, SkipsWhenTooFewSteadySamples) {
  std::string text = meta_line();
  text += sample_line(0, 1, 1, 0, 0, 1, 100, 1);
  const Timeseries series = parse_timeseries(text);
  const auto result = run_trend_gate(series, trend_baseline());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().pass);  // vacuous pass, explicitly marked
  for (const auto& check : result.value().checks) {
    EXPECT_TRUE(check.skipped);
  }
}

TEST(TrendGate, RejectsMalformedBaselines) {
  const Timeseries series = parse_timeseries(synthetic_stream(false));
  EXPECT_FALSE(run_trend_gate(series, *support::Json::parse(
                                          R"({"schema":"wrong/1"})"))
                   .ok());
  EXPECT_FALSE(
      run_trend_gate(series,
                     *support::Json::parse(
                         R"({"schema":"feam.trend_baseline/1","metrics":
                             {"bogus.selector": {"max_drift": 1}}})"))
          .ok());
}

TEST(TrendGate, FlattensMetricsForBenchRecords) {
  const Timeseries series = parse_timeseries(synthetic_stream(false));
  const auto result = run_trend_gate(series, trend_baseline());
  ASSERT_TRUE(result.ok());
  const auto metrics = trend_metrics(result.value());
  EXPECT_EQ(metrics.at("trend.pass"), 1.0);
  EXPECT_GT(metrics.at("trend.steady_samples"), 0.0);
  EXPECT_TRUE(metrics.count("trend.hitrate.cache.late"));
  EXPECT_TRUE(metrics.count("trend.hist.phase.target_ns.p99.drift"));
}

}  // namespace
}  // namespace feam::report
