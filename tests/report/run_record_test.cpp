// RunRecord end-to-end: assemble a record from a live target phase run
// with the obs collector enabled, round-trip it through JSON, and check
// the invariants `feam report` relies on.
#include "report/run_record.hpp"

#include <gtest/gtest.h>

#include "feam/phases.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/json.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

namespace feam::report {
namespace {

using site::CompilerFamily;
using site::MpiImpl;

class RunRecordLive : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::collector().clear();
    obs::collector().set_enabled(true);
  }
  void TearDown() override {
    obs::collector().set_enabled(false);
    obs::collector().clear();
  }
};

TEST_F(RunRecordLive, TargetPhaseAssemblesAValidRecord) {
  // Compile at india, source phase there, migrate the binary to fir.
  auto home = toolchain::make_site("india");
  const auto* stack =
      home->find_stack(MpiImpl::kOpenMpi, CompilerFamily::kGnu);
  ASSERT_NE(stack, nullptr);
  toolchain::ProgramSource p;
  p.name = "app";
  p.language = toolchain::Language::kC;
  p.libc_features = {"base", "stdio", "math"};
  const auto compiled =
      toolchain::compile_mpi_program(*home, p, *stack, "/home/user/app");
  ASSERT_TRUE(compiled.ok()) << compiled.error();
  ASSERT_TRUE(home->load_module("openmpi/" + stack->version.str() + "-gnu"));
  const auto source = run_source_phase(*home, compiled.value());
  ASSERT_TRUE(source.ok()) << source.error();

  auto target = toolchain::make_site("fir");
  target->vfs.write_file("/home/user/migrated/app",
                         *home->vfs.read(compiled.value()));
  obs::collector().clear();  // record only the target phase
  const auto result =
      run_target_phase(*target, "/home/user/migrated/app", &source.value());
  ASSERT_TRUE(result.ok()) << result.error();

  RunContext ctx;
  ctx.command = "target";
  ctx.binary = "app";
  ctx.source_site = "india";
  ctx.target_site = "fir";
  ctx.mode = "extended";
  ctx.bundle_bytes = 4096;
  ctx.prediction = result.value().prediction;
  const RunRecord record = assemble_run_record(
      ctx, obs::collector().spans(), obs::metrics(),
      result.value().prediction.ready ? 0 : 2);

  // Internally consistent straight out of assembly.
  const auto issues = record.validate();
  EXPECT_TRUE(issues.empty()) << issues.front();

  // The site pair and verdicts survive as recorded.
  EXPECT_EQ(record.source_site, "india");
  EXPECT_EQ(record.target_site, "fir");
  EXPECT_EQ(record.mode, "extended");
  EXPECT_TRUE(record.has_prediction);
  ASSERT_EQ(record.determinants.size(), 4u);
  EXPECT_EQ(record.determinants[0].key, "isa");
  EXPECT_EQ(record.determinants[1].key, "c_library");
  EXPECT_EQ(record.determinants[2].key, "mpi_stack");
  EXPECT_EQ(record.determinants[3].key, "shared_libraries");
  EXPECT_EQ(record.ready, result.value().prediction.ready);
  EXPECT_EQ(record.blocking_determinant(), record.ready ? "" : "c_library");

  // Phase timing: the target-phase span exists and covers the sum of its
  // direct children (validate() checks all parents; pin the root here).
  const std::uint64_t phase_ns = record.span_duration_ns("feam.target_phase");
  EXPECT_GT(phase_ns, 0u);
  std::uint64_t direct_children = 0;
  std::uint64_t phase_id = 0;
  for (const auto& span : record.spans) {
    if (span.name == "feam.target_phase") phase_id = span.id;
  }
  ASSERT_NE(phase_id, 0u);
  for (const auto& span : record.spans) {
    if (span.parent_id == phase_id) direct_children += span.duration_ns;
  }
  EXPECT_GE(phase_ns, direct_children);

  // Counters and histograms come from the live registry.
  EXPECT_GE(record.counters.at("tec.determinant_checks"), 4u);
  EXPECT_FALSE(record.histograms.empty());

  // JSON round trip through the real writer/parser.
  const auto parsed = support::Json::parse(record.to_json().dump(2));
  ASSERT_TRUE(parsed.has_value());
  const auto back = RunRecord::from_json(*parsed);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->validate().empty());
  EXPECT_EQ(back->source_site, record.source_site);
  EXPECT_EQ(back->target_site, record.target_site);
  EXPECT_EQ(back->ready, record.ready);
  EXPECT_EQ(back->determinants.size(), record.determinants.size());
  EXPECT_EQ(back->spans.size(), record.spans.size());
  EXPECT_EQ(back->counters, record.counters);
  EXPECT_EQ(back->histograms.size(), record.histograms.size());
  EXPECT_EQ(back->span_duration_ns("feam.target_phase"), phase_ns);
  EXPECT_EQ(back->bundle_bytes, 4096u);
}

TEST(RunRecordTest, BlockingDeterminantNamesTheFirstIncompatible) {
  RunRecord r;
  r.command = "target";
  r.has_prediction = true;
  r.ready = false;
  r.determinants = {{"isa", true, true, ""},
                    {"c_library", true, false, "needs glibc 2.12"},
                    {"mpi_stack", false, false, ""}};
  EXPECT_EQ(r.blocking_determinant(), "c_library");
  r.ready = true;
  EXPECT_EQ(r.blocking_determinant(), "");
}

TEST(RunRecordTest, ValidateFlagsBrokenSpanTrees) {
  RunRecord r;
  r.command = "target";
  r.spans = {{1, 0, "root", 0, 100}, {2, 7, "orphan", 10, 20}};
  auto issues = r.validate();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].find("unknown parent"), std::string::npos);

  r.spans = {{1, 0, "root", 0, 50},
             {2, 1, "a", 0, 40},
             {3, 1, "b", 40, 30}};  // 40 + 30 > 50
  issues = r.validate();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].find("less than its children"), std::string::npos);
}

TEST(RunRecordTest, SpanTidAndProfileSurviveJsonRoundTrip) {
  RunRecord r;
  r.command = "target";
  r.spans = {{1, 0, "root", 0, 1000, 0},
             {2, 1, "child", 100, 300, 0},
             {3, 0, "worker", 200, 500, 3}};
  r.profile = obs::build_profile(to_profile_spans(r));
  ASSERT_TRUE(r.validate().empty());

  const auto parsed = support::Json::parse(r.to_json().dump(2));
  ASSERT_TRUE(parsed.has_value());
  const auto back = RunRecord::from_json(*parsed);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->validate().empty());
  ASSERT_EQ(back->spans.size(), 3u);
  EXPECT_EQ(back->spans[2].tid, 3);

  ASSERT_TRUE(back->profile.has_value());
  EXPECT_EQ(back->profile->span_count, 3u);
  EXPECT_EQ(back->profile->wall_ns, r.profile->wall_ns);
  ASSERT_EQ(back->profile->threads.size(), 2u);
  EXPECT_EQ(back->profile->threads[1].tid, 3);
  EXPECT_EQ(back->profile->threads[1].busy_ns, 500u);
  // The flame tree is deliberately not serialized; rebuilding the profile
  // from the record's own spans restores it along with everything else.
  const auto rebuilt = obs::build_profile(to_profile_spans(*back));
  EXPECT_EQ(rebuilt.span_count, back->profile->span_count);
  EXPECT_FALSE(rebuilt.flame.children.empty());
}

TEST(RunRecordTest, ValidateCatchesProfileDisagreements) {
  RunRecord r;
  r.command = "target";
  r.spans = {{1, 0, "root", 0, 1000, 0}};
  r.profile = obs::build_profile(to_profile_spans(r));
  ASSERT_TRUE(r.validate().empty());

  r.profile->span_count = 7;  // no longer covers the record's span list
  auto issues = r.validate();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].find("profile covers 7 spans"), std::string::npos);

  r.profile = obs::build_profile(to_profile_spans(r));
  ASSERT_FALSE(r.profile->threads.empty());
  r.profile->threads[0].self_ns += 1;  // breaks the partition invariant
  issues = r.validate();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].find("!= busy"), std::string::npos);
}

TEST(RunRecordTest, FromJsonRejectsUnknownSchemaAndKeys) {
  support::Json j;
  j.set("schema", "feam.run_record/999");
  j.set("command", "target");
  EXPECT_FALSE(RunRecord::from_json(j).has_value());

  RunRecord r;
  r.command = "target";
  r.determinants = {{"isa", true, true, ""}};
  auto json = r.to_json();
  json.as_object().at("determinants").as_array()[0].set("key", "quantum");
  EXPECT_FALSE(RunRecord::from_json(json).has_value());
}

}  // namespace
}  // namespace feam::report
