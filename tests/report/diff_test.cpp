// Drift-flip attribution end to end: a drifted fleet diffed against its
// frozen twin through the serialized feam.drift_log/1 must attribute
// every verdict flip to a drift op at the flipped site applied before the
// pair's workload sweep — plus the feam.diff/1 round trip, the explain
// rendering, and the report churn panel over diff artifacts.
#include "report/diff.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "eval/fleet.hpp"
#include "fleet/drift.hpp"
#include "fleet/generate.hpp"
#include "fleet/spec.hpp"

namespace feam::report {
namespace {

struct TwinRuns {
  std::vector<RunRecord> frozen;
  std::vector<RunRecord> drifted;
  std::string drift_log_jsonl;
};

// One drifted fleet and its frozen (drift-0) twin from the same seed.
const TwinRuns& twin_runs() {
  static const TwinRuns runs = [] {
    fleet::FleetSpec spec;
    spec.name = "difftest";
    spec.sites = 12;
    spec.workloads = 6;
    spec.container_rate = 0.4;
    spec.broken_module_rate = 0.3;
    spec.symlink_farm_rate = 0.4;

    TwinRuns out;
    eval::FleetRunOptions options;
    options.jobs = 4;

    spec.drift_rate = 0.0;
    fleet::Fleet frozen = fleet::generate_fleet(spec, 42);
    out.frozen = eval::run_fleet(frozen, options).records;

    spec.drift_rate = 0.8;
    fleet::Fleet drifted = fleet::generate_fleet(spec, 42);
    auto result = eval::run_fleet(drifted, options);
    out.drifted = std::move(result.records);
    out.drift_log_jsonl = fleet::drift_log_jsonl(result.drift_log);
    return out;
  }();
  return runs;
}

TEST(ProvenanceDiff, ParseDriftLogSkipsMalformedLines) {
  const std::string jsonl =
      R"({"schema":"feam.drift_log/1","round":2,"site_index":3,"site":"s","kind":"os-bump","detail":"d"})"
      "\n"
      "not json\n"
      "\n"
      R"({"schema":"feam.other/1","round":0,"site_index":0,"site":"x","kind":"k","detail":""})"
      "\n";
  const auto entries = parse_drift_log(jsonl);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].round, 2);
  EXPECT_EQ(entries[0].site, "s");
  EXPECT_EQ(entries[0].kind, "os-bump");
}

TEST(ProvenanceDiff, DriftLogRoundTripsThroughTheFleetSerializer) {
  const auto& runs = twin_runs();
  ASSERT_FALSE(runs.drift_log_jsonl.empty());
  const auto entries = parse_drift_log(runs.drift_log_jsonl);
  // Every serialized line parses: the two sides of the format agree.
  std::size_t lines = 0;
  for (const char c : runs.drift_log_jsonl) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(entries.size(), lines);
  for (const auto& entry : entries) {
    EXPECT_FALSE(entry.site.empty());
    EXPECT_FALSE(entry.kind.empty());
    EXPECT_GE(entry.round, 0);
  }
}

TEST(ProvenanceDiff, EveryDriftFlipIsAttributed) {
  const auto& runs = twin_runs();
  const auto entries = parse_drift_log(runs.drift_log_jsonl);
  const DiffResult diff = diff_records(runs.frozen, runs.drifted, entries);

  EXPECT_EQ(diff.pairs_compared, runs.frozen.size());
  EXPECT_EQ(diff.only_in_a, 0u);
  EXPECT_EQ(diff.only_in_b, 0u);
  ASSERT_GT(diff.flips.size(), 0u)
      << "drift 0.8 over 6 workloads must flip at least one verdict";
  EXPECT_EQ(diff.unattributed_flips(), 0u);

  for (const auto& flip : diff.flips) {
    ASSERT_TRUE(flip.attributed()) << flip.binary << " @ " << flip.target_site;
    for (const auto& cause : flip.causes) {
      // Causality: same site, applied at a barrier before this workload.
      EXPECT_EQ(cause.site, flip.target_site);
      EXPECT_LT(cause.round, flip.workload_index);
    }
    // A flipped verdict must be explained by an evidence delta too.
    EXPECT_FALSE(flip.evidence_gained.empty() && flip.evidence_lost.empty())
        << flip.binary << " @ " << flip.target_site;
  }
}

TEST(ProvenanceDiff, EmptyDriftLogLeavesFlipsUnattributed) {
  const auto& runs = twin_runs();
  const DiffResult diff = diff_records(runs.frozen, runs.drifted, {});
  EXPECT_EQ(diff.unattributed_flips(), diff.flips.size());
}

TEST(ProvenanceDiff, IdenticalStreamsProduceNoFlips) {
  const auto& runs = twin_runs();
  const DiffResult diff = diff_records(runs.frozen, runs.frozen, {});
  EXPECT_EQ(diff.pairs_compared, runs.frozen.size());
  EXPECT_TRUE(diff.flips.empty());
}

TEST(ProvenanceDiff, JsonRoundTripIsByteStable) {
  const auto& runs = twin_runs();
  const auto entries = parse_drift_log(runs.drift_log_jsonl);
  const DiffResult diff = diff_records(runs.frozen, runs.drifted, entries);

  const std::string dumped = diff.to_json().dump(2);
  EXPECT_NE(dumped.find(kDiffSchema), std::string::npos);
  const auto parsed = support::Json::parse(dumped);
  ASSERT_TRUE(parsed.has_value());
  const auto reloaded = DiffResult::from_json(*parsed);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(reloaded->pairs_compared, diff.pairs_compared);
  EXPECT_EQ(reloaded->flips.size(), diff.flips.size());
  EXPECT_EQ(reloaded->unattributed_flips(), diff.unattributed_flips());
  EXPECT_EQ(reloaded->to_json().dump(2), dumped);
}

TEST(ProvenanceDiff, RenderTextNamesEveryFlip) {
  const auto& runs = twin_runs();
  const auto entries = parse_drift_log(runs.drift_log_jsonl);
  const DiffResult diff = diff_records(runs.frozen, runs.drifted, entries);
  const std::string text = diff.render_text();
  for (const auto& flip : diff.flips) {
    EXPECT_NE(text.find(flip.binary), std::string::npos);
    EXPECT_NE(text.find(flip.target_site), std::string::npos);
  }
  EXPECT_NE(text.find("unattributed: 0"), std::string::npos);
}

TEST(ProvenanceDiff, ChurnPanelSummarizesDiffArtifacts) {
  const auto& runs = twin_runs();
  const auto entries = parse_drift_log(runs.drift_log_jsonl);
  const DiffResult diff = diff_records(runs.frozen, runs.drifted, entries);
  const std::string panel = render_churn_panel({diff});
  EXPECT_NE(panel.find("flips"), std::string::npos);
  EXPECT_NE(panel.find("unattributed"), std::string::npos);
}

TEST(ProvenanceExplain, RendersVerdictChainAndStampedEvidence) {
  const auto& runs = twin_runs();
  const RunRecord* with_evidence = nullptr;
  for (const auto& record : runs.drifted) {
    if (!record.provenance.empty()) {
      with_evidence = &record;
      break;
    }
  }
  ASSERT_NE(with_evidence, nullptr)
      << "fleet records must carry provenance";

  const std::string text = render_explain(*with_evidence);
  EXPECT_NE(text.find(with_evidence->binary), std::string::npos);
  EXPECT_NE(text.find(with_evidence->target_site), std::string::npos);
  // Every serialized evidence item appears with its content stamp.
  for (const auto& e : with_evidence->provenance.items()) {
    EXPECT_NE(text.find(e.stamp_hex()), std::string::npos) << e.subject;
  }
}

}  // namespace
}  // namespace feam::report
