// The aggregation layer, regression gate, bench record, HTML dashboard,
// and the eval-harness bridge.
#include "report/aggregate.hpp"

#include <gtest/gtest.h>

#include "eval/run_records.hpp"
#include "report/gate.hpp"
#include "report/html.hpp"
#include "report/run_record.hpp"
#include "support/json.hpp"

namespace feam::report {
namespace {

RunRecord make_record(const std::string& binary, const std::string& site,
                      bool ready, const std::string& blocking = "") {
  RunRecord r;
  r.command = "target";
  r.binary = binary;
  r.source_site = "india";
  r.target_site = site;
  r.mode = "extended";
  r.has_prediction = true;
  r.ready = ready;
  r.exit_code = ready ? 0 : 2;
  r.determinants = {{"isa", true, true, "ok"},
                    {"c_library", true, blocking != "c_library", "glibc"},
                    {"mpi_stack", blocking != "c_library",
                     blocking.empty(), "stack"},
                    {"shared_libraries", blocking.empty(), blocking.empty(),
                     "libs"}};
  r.counters["tec.determinant_checks"] = 4;
  obs::Histogram h;
  h.record(1000);
  h.record(2000);
  r.histograms["phase.target_ns"] = h.snapshot();
  return r;
}

TEST(AggregateTest, BuildsTheReadinessMatrixWithAttribution) {
  std::vector<RunRecord> records;
  records.push_back(make_record("cg.B", "fir", true));
  records.push_back(make_record("cg.B", "ranger", false, "c_library"));
  records.push_back(make_record("milc", "fir", false, "mpi_stack"));
  records.back().resolved_libraries = 2;

  const Aggregate a = aggregate_records(std::move(records));
  EXPECT_EQ(a.prediction_runs, 3u);
  EXPECT_EQ(a.ready_runs, 1u);
  EXPECT_EQ(a.sites.size(), 2u);
  EXPECT_TRUE(a.matrix.at("cg.B").at("fir").ready);
  EXPECT_EQ(a.matrix.at("cg.B").at("ranger").blocking_determinant,
            "c_library");
  EXPECT_EQ(a.matrix.at("milc").at("fir").blocking_determinant, "mpi_stack");
  EXPECT_EQ(a.determinant_failures.at("c_library"), 1u);
  EXPECT_EQ(a.determinant_failures.at("mpi_stack"), 1u);
  // Counters summed, histograms merged across records.
  EXPECT_EQ(a.counters.at("tec.determinant_checks"), 12u);
  EXPECT_EQ(a.histograms.at("phase.target_ns").count, 6u);
  EXPECT_TRUE(a.conflicts.empty());

  const std::string matrix = render_readiness_matrix(a);
  EXPECT_NE(matrix.find("READY"), std::string::npos);
  EXPECT_NE(matrix.find("c_library"), std::string::npos);
}

TEST(AggregateTest, DisagreeingRepeatRunsAreConflicts) {
  std::vector<RunRecord> records;
  records.push_back(make_record("cg.B", "fir", true));
  records.push_back(make_record("cg.B", "fir", false, "c_library"));
  const Aggregate a = aggregate_records(std::move(records));
  ASSERT_EQ(a.conflicts.size(), 1u);
  EXPECT_NE(a.conflicts[0].find("cg.B @ fir"), std::string::npos);
}

TEST(AggregateTest, IngestsEventJsonlAndCountsMalformedLines) {
  Aggregate a;
  ingest_event_jsonl(a,
                     "{\"level\":\"info\",\"name\":\"tec.verdict\"}\n"
                     "\n"
                     "not json at all\n"
                     "{\"level\":\"debug\",\"name\":\"launcher.run\"}\n");
  EXPECT_EQ(a.events.total, 2u);
  EXPECT_EQ(a.events.malformed_lines, 1u);
  EXPECT_EQ(a.events.by_level.at("info"), 1u);
  EXPECT_EQ(a.events.by_name.at("launcher.run"), 1u);
}

TEST(AggregateTest, FlattenMetricsExposesTheGateSurface) {
  std::vector<RunRecord> records;
  records.push_back(make_record("cg.B", "fir", true));
  const auto metrics = flatten_metrics(aggregate_records(std::move(records)));
  EXPECT_EQ(metrics.at("matrix.records"), 1.0);
  EXPECT_EQ(metrics.at("matrix.ready"), 1.0);
  EXPECT_EQ(metrics.at("counter.tec.determinant_checks"), 4.0);
  EXPECT_EQ(metrics.at("hist.phase.target_ns.count"), 2.0);
  EXPECT_GT(metrics.at("hist.phase.target_ns.p99"), 0.0);
}

TEST(AggregateTest, MergesProfilesAcrossRecordsWithSpans) {
  std::vector<RunRecord> records;
  records.push_back(make_record("cg.B", "fir", true));
  records.back().spans = {{1, 0, "feam.target_phase", 0, 4000, 0},
                          {2, 1, "tec.isa", 0, 1000, 0}};
  records.push_back(make_record("milc", "fir", true));
  records.back().spans = {{1, 0, "feam.target_phase", 0, 6000, 0}};
  records.push_back(make_record("ep.A", "ranger", true));  // no spans

  const Aggregate a = aggregate_records(std::move(records));
  EXPECT_EQ(a.profiled_records, 2u);
  EXPECT_EQ(a.profile.span_count, 3u);
  // Wall extents add across records (they never share a clock), and the
  // longest single record's critical path wins.
  EXPECT_EQ(a.profile.wall_ns, 10000u);
  EXPECT_EQ(a.profile.critical_path_ns(), 6000u);

  const auto metrics = flatten_metrics(a);
  EXPECT_EQ(metrics.at("profile.records"), 2.0);
  EXPECT_EQ(metrics.at("profile.spans"), 3.0);
  EXPECT_EQ(metrics.at("profile.wall_ns"), 10000.0);
  EXPECT_EQ(metrics.at("profile.critical_path_ns"), 6000.0);

  const std::string text = render_report_text(a);
  EXPECT_NE(text.find("Profile (2 records with spans"), std::string::npos);
  EXPECT_NE(text.find("feam.target_phase"), std::string::npos);
}

TEST(AggregateTest, NoSpansMeansNoProfileSection) {
  std::vector<RunRecord> records;
  records.push_back(make_record("cg.B", "fir", true));
  const Aggregate a = aggregate_records(std::move(records));
  EXPECT_EQ(a.profiled_records, 0u);
  EXPECT_TRUE(a.profile.empty());
  EXPECT_EQ(render_report_text(a).find("Profile ("), std::string::npos);
}

support::Json baseline_doc(const char* metrics_json) {
  const auto parsed = support::Json::parse(
      std::string("{\"schema\":\"feam.report_baseline/1\",\"metrics\":") +
      metrics_json + "}");
  EXPECT_TRUE(parsed.has_value());
  return *parsed;
}

TEST(GateTest, PassesWithinToleranceFailsOutside) {
  const std::map<std::string, double> measured = {
      {"matrix.ready", 38.0}, {"hist.phase.target_ns.p99", 1.5e6}};
  auto ok = run_gate(measured, baseline_doc(
      "{\"matrix.ready\":{\"value\":38,\"rel_tol\":0},"
      "\"hist.phase.target_ns.p99\":{\"max\":2000000000}}"));
  ASSERT_TRUE(ok.ok()) << ok.error();
  EXPECT_TRUE(ok.value().pass);
  EXPECT_EQ(ok.value().failures(), 0u);

  auto regressed = run_gate(measured, baseline_doc(
      "{\"matrix.ready\":{\"value\":40,\"rel_tol\":0}}"));
  ASSERT_TRUE(regressed.ok());
  EXPECT_FALSE(regressed.value().pass);
  EXPECT_EQ(regressed.value().failures(), 1u);
  EXPECT_NE(regressed.value().render().find("GATE FAIL"), std::string::npos);

  // A metric the baseline pins but the run no longer produces is itself a
  // regression, not a silent pass.
  auto missing = run_gate(measured, baseline_doc(
      "{\"counter.vanished\":{\"value\":1,\"rel_tol\":0}}"));
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing.value().pass);
}

TEST(GateTest, ToleranceArithmetic) {
  const std::map<std::string, double> measured = {{"m", 104.0}};
  // rel_tol 0.05 of 100 allows ±5.
  EXPECT_TRUE(run_gate(measured, baseline_doc(
      "{\"m\":{\"value\":100,\"rel_tol\":0.05}}")).value().pass);
  EXPECT_FALSE(run_gate(measured, baseline_doc(
      "{\"m\":{\"value\":100,\"rel_tol\":0.01}}")).value().pass);
  // abs_tol wins when larger.
  EXPECT_TRUE(run_gate(measured, baseline_doc(
      "{\"m\":{\"value\":100,\"rel_tol\":0.01,\"abs_tol\":4}}")).value().pass);
  // min bound.
  EXPECT_FALSE(run_gate(measured, baseline_doc(
      "{\"m\":{\"min\":105}}")).value().pass);
}

TEST(GateTest, MalformedBaselinesAreErrorsNotPasses) {
  const std::map<std::string, double> measured = {{"m", 1.0}};
  support::Json not_baseline;
  not_baseline.set("schema", "something/else");
  EXPECT_FALSE(run_gate(measured, not_baseline).ok());

  auto no_spec = baseline_doc("{\"m\":{}}");
  EXPECT_FALSE(run_gate(measured, no_spec).ok());
}

TEST(GateTest, BenchRecordCarriesMetricsAndGateOutcome) {
  const std::map<std::string, double> measured = {{"matrix.ready", 3.0}};
  auto gated = run_gate(measured, baseline_doc(
      "{\"matrix.ready\":{\"value\":4,\"rel_tol\":0}}"));
  ASSERT_TRUE(gated.ok());
  const auto bench = bench_record(measured, &gated.value(), 2);
  EXPECT_EQ(bench.get_string("schema"), "feam.bench/1");
  EXPECT_EQ(bench.get_int("pr"), 2);
  EXPECT_EQ(bench["metrics"]["matrix.ready"].as_number(), 3.0);
  EXPECT_FALSE(bench["gate"].get_bool("pass", true));
  ASSERT_EQ(bench["gate"]["failures"].as_array().size(), 1u);
  EXPECT_EQ(bench["gate"]["failures"].as_array()[0].get_string("name"),
            "matrix.ready");
}

TEST(HtmlTest, DashboardIsSelfContainedAndEscaped) {
  std::vector<RunRecord> records;
  records.push_back(make_record("cg.B", "fir", true));
  records.push_back(make_record("milc", "ranger", false, "c_library"));
  // A hostile span name must not terminate the embedded data island.
  records[0].spans = {{1, 0, "feam.target_phase", 0, 5000},
                      {2, 1, "x</script><script>alert(1)", 100, 200}};
  const Aggregate a = aggregate_records(std::move(records));
  const std::string html = render_html_dashboard(a);

  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("FEAM readiness report"), std::string::npos);
  EXPECT_NE(html.find("cg.B"), std::string::npos);
  EXPECT_NE(html.find("c_library"), std::string::npos);
  // Self-contained: no external fetches of any kind.
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
  EXPECT_EQ(html.find("src="), std::string::npos);
  EXPECT_EQ(html.find("@import"), std::string::npos);
  // The hostile name is split as <\/ inside the data island.
  EXPECT_EQ(html.find("x</script>"), std::string::npos);
  EXPECT_NE(html.find("x<\\/script>"), std::string::npos);

  // Records carry spans, so the profile panel renders with its embedded
  // flamegraph — still with zero external references.
  EXPECT_NE(html.find("Profile &amp; contention"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
}

TEST(HtmlTest, NoSpansMeansNoProfilePanel) {
  std::vector<RunRecord> records;
  records.push_back(make_record("cg.B", "fir", true));
  const std::string html =
      render_html_dashboard(aggregate_records(std::move(records)));
  EXPECT_EQ(html.find("Profile &amp; contention"), std::string::npos);
}

TEST(EvalBridgeTest, MigrationResultsBecomeRunRecords) {
  eval::MigrationResult m;
  m.binary_name = "cg.B";
  m.suite = "NAS";
  m.home_site = "india";
  m.target_site = "ranger";
  m.extended_ready = false;
  m.missing_library_count = 3;
  m.resolved_library_count = 1;
  m.extended_prediction.ready = false;
  m.extended_prediction.determinants = {
      {DeterminantKind::kIsa, true, true, "ok"},
      {DeterminantKind::kCLibrary, true, false, "needs glibc 2.12"}};

  const RunRecord r = eval::to_run_record(m);
  EXPECT_TRUE(r.validate().empty());
  EXPECT_EQ(r.command, "experiment");
  EXPECT_EQ(r.source_site, "india");
  EXPECT_EQ(r.target_site, "ranger");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_EQ(r.blocking_determinant(), "c_library");
  EXPECT_EQ(r.missing_libraries, 3u);
  EXPECT_EQ(r.resolved_libraries, 1u);
  EXPECT_EQ(r.unresolved_libraries, 2u);

  const auto many = eval::to_run_records({m, m});
  EXPECT_EQ(many.size(), 2u);

  // Records from the bridge aggregate exactly like CLI-written ones.
  const Aggregate a = aggregate_records(eval::to_run_records({m}));
  EXPECT_EQ(a.matrix.at("cg.B").at("ranger").blocking_determinant,
            "c_library");
}

}  // namespace
}  // namespace feam::report
