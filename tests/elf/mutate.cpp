#include "mutate.hpp"

#include <algorithm>
#include <array>

#include "elf/constants.hpp"

namespace feam::elf::mutate {

using support::ByteReader;
using support::Bytes;
using support::Endian;
using support::Rng;

support::Bytes truncated(const Bytes& image, std::size_t len) {
  const std::size_t keep = std::min(len, image.size());
  return Bytes(image.begin(),
               image.begin() + static_cast<std::ptrdiff_t>(keep));
}

Bytes with_byte(const Bytes& image, std::size_t offset, std::uint8_t value) {
  Bytes out = image;
  if (offset < out.size()) {
    out[offset] = value;
  }
  return out;
}

Bytes with_u16le(const Bytes& image, std::size_t offset, std::uint16_t value) {
  Bytes out = image;
  if (offset + 1 < out.size()) {
    out[offset] = static_cast<std::uint8_t>(value & 0xff);
    out[offset + 1] = static_cast<std::uint8_t>(value >> 8);
  }
  return out;
}

namespace {

bool is_64le(const Bytes& image) {
  return image.size() > kEiData && image[0] == 0x7f && image[1] == 'E' &&
         image[2] == 'L' && image[3] == 'F' && image[kEiClass] == kClass64 &&
         image[kEiData] == kData2Lsb;
}

void store_u64le(Bytes& image, std::size_t offset, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    image[offset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(value >> (8 * i));
  }
}

}  // namespace

std::optional<DynamicSegment> find_dynamic_segment_64le(const Bytes& image) {
  if (!is_64le(image)) {
    return std::nullopt;
  }
  const ByteReader r(image, Endian::kLittle);
  const auto phoff = r.u64(32);
  const auto phentsize = r.u16(54);
  const auto phnum = r.u16(56);
  if (!phoff || !phentsize || !phnum || *phentsize < 56) {
    return std::nullopt;
  }
  for (std::uint16_t i = 0; i < *phnum; ++i) {
    const std::size_t base = static_cast<std::size_t>(*phoff) + i * *phentsize;
    const auto type = r.u32(base);
    if (!type || *type != kPtDynamic) {
      continue;
    }
    const auto offset = r.u64(base + 8);
    const auto filesz = r.u64(base + 32);
    if (!offset || !filesz) {
      return std::nullopt;
    }
    return DynamicSegment{static_cast<std::size_t>(*offset),
                          static_cast<std::size_t>(*filesz)};
  }
  return std::nullopt;
}

namespace {

// Offset of the value field of the first entry with `tag` (entries are
// 16-byte tag/value pairs in a 64-bit dynamic section).
std::optional<std::size_t> dynamic_value_offset_64le(const Bytes& image,
                                                     std::int64_t tag) {
  const auto segment = find_dynamic_segment_64le(image);
  if (!segment) {
    return std::nullopt;
  }
  const ByteReader r(image, Endian::kLittle);
  for (std::size_t at = segment->offset;
       at + 16 <= segment->offset + segment->size; at += 16) {
    const auto entry_tag = r.u64(at);
    if (!entry_tag) {
      return std::nullopt;
    }
    if (static_cast<std::int64_t>(*entry_tag) == tag) {
      return at + 8;
    }
    if (static_cast<std::int64_t>(*entry_tag) == kDtNull) {
      break;
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::uint64_t> read_dynamic_value_64le(const Bytes& image,
                                                     std::int64_t tag) {
  const auto at = dynamic_value_offset_64le(image, tag);
  if (!at) {
    return std::nullopt;
  }
  return ByteReader(image, Endian::kLittle).u64(*at);
}

std::optional<Bytes> with_dynamic_value_64le(const Bytes& image,
                                             std::int64_t tag,
                                             std::uint64_t value) {
  const auto at = dynamic_value_offset_64le(image, tag);
  if (!at || *at + 8 > image.size()) {
    return std::nullopt;
  }
  Bytes out = image;
  store_u64le(out, *at, value);
  return out;
}

Bytes mutate_once(const Bytes& image, Rng& rng) {
  if (image.empty()) {
    return image;
  }
  // Header fields whose corruption exercises distinct parser checks:
  // e_ident class/data/version, e_type, e_machine, e_phoff, e_shoff,
  // e_phentsize/e_phnum, e_shentsize/e_shnum/e_shstrndx.
  static constexpr std::array<std::size_t, 13> kHeaderFields = {
      kEiClass, kEiData, kEiVersion, 16, 18, 32, 40, 54, 56, 58, 60, 62, 63};
  static constexpr std::array<std::int64_t, 6> kPatchableTags = {
      kDtStrtab, kDtStrsz, kDtVerneed, kDtVerneednum, kDtVerdef, kDtVerdefnum};

  switch (rng.next_below(6)) {
    case 0: {  // flip a handful of bytes anywhere
      Bytes out = image;
      const std::size_t flips = 1 + rng.next_below(8);
      for (std::size_t i = 0; i < flips; ++i) {
        out[rng.next_below(out.size())] ^=
            static_cast<std::uint8_t>(1 + rng.next_below(255));
      }
      return out;
    }
    case 1:  // truncate at an arbitrary prefix
      return truncated(image, rng.next_below(image.size()));
    case 2: {  // corrupt a structural header field
      const std::size_t offset = kHeaderFields[rng.next_below(
          kHeaderFields.size())];
      return with_byte(image, offset,
                       static_cast<std::uint8_t>(rng.next_below(256)));
    }
    case 3: {  // redirect a dynamic entry (string table, version sections)
      const std::int64_t tag =
          kPatchableTags[rng.next_below(kPatchableTags.size())];
      auto out = with_dynamic_value_64le(image, tag, rng.next_u64());
      if (out) {
        return *std::move(out);
      }
      return with_byte(image, rng.next_below(image.size()),
                       static_cast<std::uint8_t>(rng.next_below(256)));
    }
    case 4: {  // overwrite a 4-byte window with random data
      Bytes out = image;
      const std::size_t at = rng.next_below(out.size());
      const std::uint64_t word = rng.next_u64();
      for (std::size_t i = 0; i < 4 && at + i < out.size(); ++i) {
        out[at + i] = static_cast<std::uint8_t>(word >> (8 * i));
      }
      return out;
    }
    default: {  // splice one region of the file over another
      Bytes out = image;
      const std::size_t len = 1 + rng.next_below(std::min<std::size_t>(
                                      64, out.size()));
      const std::size_t src = rng.next_below(out.size() - len + 1);
      const std::size_t dst = rng.next_below(out.size() - len + 1);
      std::copy(image.begin() + static_cast<std::ptrdiff_t>(src),
                image.begin() + static_cast<std::ptrdiff_t>(src + len),
                out.begin() + static_cast<std::ptrdiff_t>(dst));
      return out;
    }
  }
}

}  // namespace feam::elf::mutate
