// Fuzz driver for ElfFile::parse, built only when -DFEAM_FUZZ=ON.
//
// Two modes, one invariant: parse() must terminate without crashing or
// tripping a sanitizer, and every rejection must carry a parse-category
// taxonomy code (a fuzz input can never produce an io/dep/unknown error —
// those belong to the Vfs and the resolver).
//
//   * With Clang the target compiles against libFuzzer
//     (FEAM_FUZZ_LIBFUZZER): coverage-guided, run via
//     `feam_fuzz_reader -runs=...`.
//   * Elsewhere (GCC) the same invariant runs as a bounded seeded loop —
//     structure-aware mutations of valid builder images plus raw garbage —
//     so the ctest entry exercises the parser on every toolchain.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "elf/builder.hpp"
#include "elf/file.hpp"
#include "support/error.hpp"

#ifndef FEAM_FUZZ_LIBFUZZER
#include "mutate.hpp"
#include "support/rng.hpp"
#endif

namespace {

// Returns false (after printing) when a rejection carries a non-parse
// taxonomy code.
bool check_parse(const feam::support::Bytes& input) {
  const auto parsed = feam::elf::ElfFile::parse(input);
  if (parsed.ok()) {
    return true;
  }
  const auto category = feam::support::failure_category(parsed.code());
  if (category != "parse") {
    std::fprintf(stderr,
                 "parse rejection outside the parse taxonomy: code=%s "
                 "category=%s message=%s\n",
                 std::string(feam::support::error_code_slug(parsed.code()))
                     .c_str(),
                 std::string(category).c_str(), parsed.error().c_str());
    return false;
  }
  return true;
}

}  // namespace

#ifdef FEAM_FUZZ_LIBFUZZER

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const feam::support::Bytes input(data, data + size);
  if (!check_parse(input)) {
    __builtin_trap();
  }
  return 0;
}

#else

namespace {

feam::elf::ElfSpec seed_spec(std::uint64_t seed) {
  feam::support::Rng rng(seed);
  feam::elf::ElfSpec spec;
  spec.isa = rng.chance(0.5) ? feam::elf::Isa::kX86_64 : feam::elf::Isa::kPpc64;
  spec.needed = {"libc.so.6", "libmpi.so.0"};
  spec.undefined_symbols = {{"printf", "GLIBC_2.2.5", "libc.so.6"},
                            {"MPI_Init", "", ""}};
  if (rng.chance(0.5)) {
    spec.kind = feam::elf::FileKind::kSharedObject;
    spec.soname = "libfuzz.so." + std::to_string(rng.next_below(9));
    spec.version_definitions = {"FUZZ_1.0", "FUZZ_2.0"};
    spec.defined_symbols = {{"fuzz_entry", "FUZZ_1.0"}};
  }
  spec.comments = {"GCC: (GNU) 4.1.2"};
  spec.text_size = 64 + rng.next_below(1024);
  spec.content_seed = rng.next_u64();
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20130613ull;
  const long rounds = argc > 2 ? std::strtol(argv[2], nullptr, 10) : 4000;

  feam::support::Rng rng(seed);
  long failures = 0;
  for (long round = 0; round < rounds; ++round) {
    feam::support::Bytes input;
    if (round % 8 == 7) {
      // Raw garbage, half of it with a valid magic to reach deeper checks.
      input.resize(rng.next_below(1024));
      for (auto& byte : input) {
        byte = static_cast<std::uint8_t>(rng.next_below(256));
      }
      if (rng.chance(0.5) && input.size() >= 4) {
        input[0] = 0x7f;
        input[1] = 'E';
        input[2] = 'L';
        input[3] = 'F';
      }
    } else {
      // Structure-aware: start from a valid image, apply 1-3 mutations.
      input = feam::elf::build_image(seed_spec(seed ^ (round / 16)));
      const std::uint64_t steps = 1 + rng.next_below(3);
      for (std::uint64_t step = 0; step < steps; ++step) {
        input = feam::elf::mutate::mutate_once(input, rng);
      }
    }
    if (!check_parse(input)) {
      ++failures;
    }
  }
  if (failures != 0) {
    std::fprintf(stderr, "%ld of %ld inputs violated the parse invariant\n",
                 failures, rounds);
    return 1;
  }
  std::printf("fuzzed %ld inputs (seed %llu): parser total, all rejections "
              "parse-category\n",
              rounds, static_cast<unsigned long long>(seed));
  return 0;
}

#endif  // FEAM_FUZZ_LIBFUZZER
