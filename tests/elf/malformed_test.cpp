// The parser must reject malformed and truncated images with an error —
// never crash or read out of bounds. FEAM meets arbitrary files on real
// sites (shell-script wrappers, truncated copies), so this is a
// load-bearing property, not defensive decoration.
#include <gtest/gtest.h>

#include "elf/builder.hpp"
#include "elf/constants.hpp"
#include "elf/file.hpp"
#include "elf/hash.hpp"

namespace feam::elf {
namespace {

using support::Bytes;

Bytes valid_image() {
  ElfSpec spec;
  spec.needed = {"libc.so.6", "libmpi.so.0"};
  spec.undefined_symbols = {{"printf", "GLIBC_2.2.5", "libc.so.6"}};
  spec.comments = {"GCC: (GNU) 4.4.5"};
  spec.text_size = 256;
  return build_image(spec);
}

TEST(Malformed, EmptyFile) {
  EXPECT_FALSE(ElfFile::parse({}).ok());
}

TEST(Malformed, NotElf) {
  const std::string script = "#!/bin/sh\nexec ./real-binary \"$@\"\n";
  const Bytes data(script.begin(), script.end());
  const auto r = ElfFile::parse(data);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("magic"), std::string::npos);
  EXPECT_FALSE(looks_like_elf(data));
}

TEST(Malformed, LooksLikeElfHelper) {
  EXPECT_TRUE(looks_like_elf(valid_image()));
  EXPECT_FALSE(looks_like_elf({0x7f, 'E', 'L'}));
}

TEST(Malformed, BadClass) {
  Bytes img = valid_image();
  img[kEiClass] = 9;
  EXPECT_FALSE(ElfFile::parse(img).ok());
}

TEST(Malformed, BadEndianTag) {
  Bytes img = valid_image();
  img[kEiData] = 0;
  EXPECT_FALSE(ElfFile::parse(img).ok());
}

TEST(Malformed, ClassMachineMismatch) {
  // Flip a 64-bit image's class tag to 32-bit: header now lies about the
  // machine's word size.
  Bytes img = valid_image();
  img[kEiClass] = kClass32;
  EXPECT_FALSE(ElfFile::parse(img).ok());
}

// Property sweep: truncating a valid image at any prefix length must yield
// a parse error (or, for very long prefixes that still contain all parsed
// structures, possibly success) — but never a crash.
class TruncationTest : public ::testing::TestWithParam<double> {};

TEST_P(TruncationTest, NoCrashOnTruncation) {
  const Bytes img = valid_image();
  const auto len = static_cast<std::size_t>(GetParam() * static_cast<double>(img.size()));
  const Bytes prefix(img.begin(), img.begin() + static_cast<std::ptrdiff_t>(len));
  const auto r = ElfFile::parse(prefix);  // must not crash
  if (len < 64) {
    EXPECT_FALSE(r.ok());
  }
}

INSTANTIATE_TEST_SUITE_P(PrefixFractions, TruncationTest,
                         ::testing::Values(0.0, 0.01, 0.05, 0.1, 0.2, 0.3,
                                           0.5, 0.7, 0.9, 0.99));

TEST(Malformed, ByteFlipSweepNeverCrashes) {
  // Flip each byte of the header region in turn; parse must stay memory-safe
  // and either succeed or produce an error.
  const Bytes img = valid_image();
  for (std::size_t i = 0; i < 128 && i < img.size(); ++i) {
    Bytes mutated = img;
    mutated[i] ^= 0xff;
    (void)ElfFile::parse(mutated);
  }
  SUCCEED();
}

TEST(ElfHash, KnownValues) {
  // Reference values of the SysV elf_hash function.
  EXPECT_EQ(elf_hash(""), 0u);
  EXPECT_EQ(elf_hash("GLIBC_2.0"), 0xd696910u);
  EXPECT_EQ(elf_hash("printf"), 0x77905a6u);
}

}  // namespace
}  // namespace feam::elf
