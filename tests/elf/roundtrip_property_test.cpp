// Write -> read -> write property: an ElfSpec serialized by the builder,
// parsed back by ElfFile, and re-serialized from the parsed metadata must
// produce a byte-identical image. This is stronger than the field-level
// round-trip in property_test.cpp: it proves the parser recovers *all* the
// information the builder encodes (up to the synthetic .text payload,
// whose size/seed are not metadata and are carried over explicitly).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "elf/builder.hpp"
#include "elf/file.hpp"
#include "support/rng.hpp"

namespace feam::elf {
namespace {

using support::Bytes;
using support::Rng;

const Isa kIsas[] = {Isa::kX86, Isa::kX86_64, Isa::kPpc, Isa::kPpc64,
                     Isa::kAarch64};

std::string random_name(Rng& rng, const char* prefix) {
  std::string out = prefix;
  const std::size_t len = 3 + rng.next_below(8);
  for (std::size_t i = 0; i < len; ++i) {
    out += static_cast<char>('a' + rng.next_below(26));
  }
  return out;
}

// Like property_test's generator, but version names embed the library
// index ("V2R1") so every version maps to exactly one from_lib — the
// reconstruction below must be unambiguous for the byte-equality property
// to be well-defined.
ElfSpec random_spec(std::uint64_t seed) {
  Rng rng(seed);
  ElfSpec spec;
  spec.isa = kIsas[rng.next_below(std::size(kIsas))];
  spec.kind =
      rng.chance(0.5) ? FileKind::kExecutable : FileKind::kSharedObject;
  spec.static_link = rng.chance(0.1);
  spec.text_size = 16 + rng.next_below(2048);
  spec.content_seed = rng.next_u64();

  if (spec.kind == FileKind::kSharedObject) {
    spec.soname =
        random_name(rng, "lib") + ".so." + std::to_string(rng.next_below(9));
  }
  const std::size_t needed_count = rng.next_below(6);
  for (std::size_t i = 0; i < needed_count; ++i) {
    spec.needed.push_back(random_name(rng, "libdep") + std::to_string(i) +
                          ".so." + std::to_string(rng.next_below(4)));
  }
  if (rng.chance(0.4)) {
    spec.rpath.push_back("/" + random_name(rng, "opt"));
    if (rng.chance(0.3)) spec.rpath.push_back("/" + random_name(rng, "usr"));
  }
  if (spec.kind == FileKind::kSharedObject && rng.chance(0.6)) {
    const std::size_t defs = 1 + rng.next_below(5);
    for (std::size_t i = 0; i < defs; ++i) {
      spec.version_definitions.push_back("DEF_" + std::to_string(i) + "." +
                                         std::to_string(rng.next_below(10)));
    }
    const std::size_t syms = rng.next_below(4);
    for (std::size_t i = 0; i < syms; ++i) {
      spec.defined_symbols.push_back(
          {random_name(rng, "sym"),
           rng.chance(0.7) ? spec.version_definitions[rng.next_below(
                                 spec.version_definitions.size())]
                           : ""});
    }
  }
  if (!spec.needed.empty()) {
    const std::size_t imports = rng.next_below(8);
    for (std::size_t i = 0; i < imports; ++i) {
      UndefinedSymbol sym;
      sym.name = random_name(rng, "u");
      if (rng.chance(0.6)) {
        const std::size_t lib = rng.next_below(spec.needed.size());
        sym.from_lib = spec.needed[lib];
        sym.version =
            "V" + std::to_string(lib) + "R" + std::to_string(rng.next_below(4));
      }
      spec.undefined_symbols.push_back(std::move(sym));
    }
  }
  if (rng.chance(0.7)) {
    spec.comments.push_back(random_name(rng, "GCC: "));
  }
  if (rng.chance(0.5)) {
    spec.abi = AbiNote{random_name(rng, "Fam"),
                       "4." + std::to_string(rng.next_below(9)),
                       rng.chance(0.5) ? "openmpi" : "",
                       "1." + std::to_string(rng.next_below(9)),
                       static_cast<std::uint32_t>(rng.next_u64()),
                       static_cast<std::uint32_t>(rng.next_below(16))};
  }
  if (spec.static_link) {
    spec.needed.clear();
    spec.rpath.clear();
    spec.version_definitions.clear();
    spec.defined_symbols.clear();
    spec.undefined_symbols.clear();
    spec.soname.clear();
    spec.kind = FileKind::kExecutable;
  }
  return spec;
}

// Rebuilds a spec from parsed metadata alone. text_size/content_seed are
// payload parameters, not metadata the parser could recover, so they are
// passed through from the original spec.
ElfSpec reconstruct(const ElfFile& f, std::uint64_t text_size,
                    std::uint64_t content_seed) {
  ElfSpec spec;
  spec.isa = f.isa();
  spec.kind = f.kind();
  spec.static_link = !f.is_dynamic();
  spec.soname = f.soname().value_or("");
  spec.needed.assign(f.needed().begin(), f.needed().end());
  spec.rpath.assign(f.rpath().begin(), f.rpath().end());
  spec.version_definitions.assign(f.version_definitions().begin(),
                                  f.version_definitions().end());
  spec.comments.assign(f.comments().begin(), f.comments().end());
  spec.abi = f.abi_note();
  spec.text_size = text_size;
  spec.content_seed = content_seed;
  for (const DynSymbol& sym : f.dynamic_symbols()) {
    if (sym.defined) {
      spec.defined_symbols.push_back(
          {std::string(sym.name), std::string(sym.version)});
      continue;
    }
    UndefinedSymbol undef;
    undef.name = std::string(sym.name);
    undef.version = std::string(sym.version);
    if (!sym.version.empty()) {
      for (const auto& need : f.version_references()) {
        if (std::find(need.versions.begin(), need.versions.end(),
                      sym.version) != need.versions.end()) {
          undef.from_lib = std::string(need.file);
          break;
        }
      }
    }
    spec.undefined_symbols.push_back(std::move(undef));
  }
  return spec;
}

class WriteReadWriteTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WriteReadWriteTest, RebuildFromParseIsByteIdentical) {
  const ElfSpec spec = random_spec(GetParam());
  const Bytes first = build_image(spec);
  const auto parsed = ElfFile::parse(first);
  ASSERT_TRUE(parsed.ok()) << parsed.error();

  const ElfSpec rebuilt_spec =
      reconstruct(parsed.value(), spec.text_size, spec.content_seed);
  const Bytes second = build_image(rebuilt_spec);
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(first, second);

  // And the rebuilt image parses to identical metadata (read -> write ->
  // read fixed point).
  const auto reparsed = ElfFile::parse(second);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error();
  EXPECT_EQ(reparsed.value().needed(), parsed.value().needed());
  EXPECT_EQ(reparsed.value().version_definitions(),
            parsed.value().version_definitions());
  EXPECT_EQ(reparsed.value().dynamic_symbols().size(),
            parsed.value().dynamic_symbols().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WriteReadWriteTest,
                         ::testing::Range<std::uint64_t>(1, 49));

TEST(WriteReadWrite, TypicalAppIsByteIdentical) {
  ElfSpec spec;
  spec.isa = Isa::kX86_64;
  spec.needed = {"libmpi.so.0", "libgfortran.so.1", "libm.so.6", "libc.so.6"};
  spec.undefined_symbols = {
      {"MPI_Init", "", ""},
      {"memcpy", "GLIBC_2.3.4", "libc.so.6"},
      {"printf", "GLIBC_2.2.5", "libc.so.6"},
      {"_gfortran_st_write", "GFORTRAN_1.0", "libgfortran.so.1"},
  };
  spec.comments = {"GCC: (GNU) 4.1.2 20080704 (Red Hat 4.1.2-46)"};
  spec.abi = AbiNote{"GNU", "4.1.2", "openmpi", "1.4.3", 0xabcd1234, 2};
  spec.text_size = 8 * 1024;
  spec.content_seed = 777;

  const Bytes first = build_image(spec);
  const auto parsed = ElfFile::parse(first);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(first, build_image(reconstruct(parsed.value(), spec.text_size,
                                           spec.content_seed)));
}

TEST(WriteReadWrite, GlibcLikeLibraryIsByteIdentical) {
  ElfSpec spec;
  spec.isa = Isa::kPpc64;  // big-endian path
  spec.kind = FileKind::kSharedObject;
  spec.soname = "libc.so.6";
  spec.version_definitions = {"GLIBC_2.0", "GLIBC_2.2.5", "GLIBC_2.3.4"};
  spec.defined_symbols = {{"memcpy", "GLIBC_2.3.4"},
                          {"printf", "GLIBC_2.2.5"},
                          {"malloc", "GLIBC_2.0"}};
  spec.text_size = 2048;

  const Bytes first = build_image(spec);
  const auto parsed = ElfFile::parse(first);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(first, build_image(reconstruct(parsed.value(), spec.text_size,
                                           spec.content_seed)));
}

TEST(WriteReadWrite, StaticExecutableIsByteIdentical) {
  ElfSpec spec;
  spec.static_link = true;
  spec.text_size = 1024;
  spec.comments = {"GCC: (GNU) 4.4.5"};
  const Bytes first = build_image(spec);
  const auto parsed = ElfFile::parse(first);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_FALSE(parsed.value().is_dynamic());
  EXPECT_EQ(first, build_image(reconstruct(parsed.value(), spec.text_size,
                                           spec.content_seed)));
}

}  // namespace
}  // namespace feam::elf
