// Generates the golden malformed-ELF corpus under tests/elf/corpus/.
//
// Each corpus file is named <error_code_slug>__<description>.bin and must
// parse to exactly that error code; the generator verifies this before
// writing anything, so a parser change that shifts which check fires makes
// regeneration fail loudly instead of silently re-golding.
//
// Not a test: run manually (or via the `corpus` convenience target) after
// deliberate parser changes, then commit the regenerated files together
// with the change. malformed_corpus_test.cpp asserts the committed files
// still produce their named codes.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "elf/builder.hpp"
#include "elf/constants.hpp"
#include "elf/file.hpp"
#include "mutate.hpp"
#include "support/error.hpp"

namespace {

using feam::support::Bytes;
using feam::support::ErrorCode;

feam::elf::ElfSpec base_spec() {
  feam::elf::ElfSpec spec;
  spec.isa = feam::elf::Isa::kX86_64;
  spec.needed = {"libc.so.6", "libmpi.so.0"};
  spec.undefined_symbols = {{"printf", "GLIBC_2.2.5", "libc.so.6"},
                            {"memcpy", "GLIBC_2.3.4", "libc.so.6"},
                            {"MPI_Init", "", ""}};
  spec.comments = {"GCC: (GNU) 4.1.2"};
  spec.text_size = 512;
  spec.content_seed = 20130613;
  return spec;
}

struct CorpusEntry {
  ErrorCode expected;
  std::string description;
  Bytes image;
};

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  namespace mut = feam::elf::mutate;
  using feam::elf::ElfFile;

  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir>\n", argv[0]);
    return 2;
  }
  const fs::path out_dir = argv[1];

  const Bytes valid = feam::elf::build_image(base_spec());
  {
    const auto check = ElfFile::parse(valid);
    if (!check.ok()) {
      std::fprintf(stderr, "base image does not parse: %s\n",
                   check.error().c_str());
      return 1;
    }
  }

  std::vector<CorpusEntry> entries;
  const auto add = [&entries](ErrorCode expected, std::string description,
                              Bytes image) {
    entries.push_back(
        CorpusEntry{expected, std::move(description), std::move(image)});
  };

  // --- kElfNotElf: recognizable non-ELF inputs FEAM meets on real sites.
  {
    const std::string script = "#!/bin/sh\nexec ./app.real \"$@\"\n";
    add(ErrorCode::kElfNotElf, "shell_wrapper",
        Bytes(script.begin(), script.end()));
  }
  add(ErrorCode::kElfNotElf, "png_header",
      Bytes{0x89, 'P', 'N', 'G', 0x0d, 0x0a, 0x1a, 0x0a, 0, 0, 0, 0});
  add(ErrorCode::kElfNotElf, "magic_prefix_only", mut::truncated(valid, 3));

  // --- kElfTruncated: cut at structural boundaries.
  add(ErrorCode::kElfTruncated, "mid_ident", mut::truncated(valid, 8));
  add(ErrorCode::kElfTruncated, "mid_header", mut::truncated(valid, 40));
  add(ErrorCode::kElfTruncated, "mid_phdr_table", mut::truncated(valid, 80));
  add(ErrorCode::kElfTruncated, "half_image",
      mut::truncated(valid, valid.size() / 2));

  // --- kElfBadHeader: self-inconsistent e_ident.
  add(ErrorCode::kElfBadHeader, "bad_class",
      mut::with_byte(valid, feam::elf::kEiClass, 9));
  add(ErrorCode::kElfBadHeader, "bad_endian_tag",
      mut::with_byte(valid, feam::elf::kEiData, 0));
  add(ErrorCode::kElfBadHeader, "bad_ei_version",
      mut::with_byte(valid, feam::elf::kEiVersion, 3));
  add(ErrorCode::kElfBadHeader, "class_machine_mismatch",
      mut::with_byte(valid, feam::elf::kEiClass, feam::elf::kClass32));

  // --- kElfUnsupported: well-formed header for a file we do not model.
  add(ErrorCode::kElfUnsupported, "unknown_machine",
      mut::with_u16le(valid, 18, 0x1234));
  add(ErrorCode::kElfUnsupported, "core_file_type",
      mut::with_u16le(valid, 16, 4));  // ET_CORE

  // --- kElfBadOffset: dynamic pointers escaping every segment.
  if (auto img = mut::with_dynamic_value_64le(valid, feam::elf::kDtVerneed,
                                              0x00dead0000ull)) {
    add(ErrorCode::kElfBadOffset, "verneed_outside_segments",
        *std::move(img));
  }
  if (auto img = mut::with_dynamic_value_64le(valid, feam::elf::kDtStrtab,
                                              0x00beef0000ull)) {
    add(ErrorCode::kElfBadOffset, "strtab_outside_segments",
        *std::move(img));
  }

  // --- kElfBadVersionRef: corrupt GNU version records.
  if (const auto verneed =
          mut::read_dynamic_value_64le(valid, feam::elf::kDtVerneed)) {
    // Single LOAD segment at vaddr 0: the DT_VERNEED vaddr is the file
    // offset; vn_version is the leading u16 of the first record.
    add(ErrorCode::kElfBadVersionRef, "bad_verneed_revision",
        mut::with_u16le(valid, static_cast<std::size_t>(*verneed), 9));
  }

  // --- kElfLimitExceeded: absurd record counts (resource-exhaustion guard).
  if (auto img = mut::with_dynamic_value_64le(
          valid, feam::elf::kDtVerneednum, 1ull << 20)) {
    add(ErrorCode::kElfLimitExceeded, "verneednum_huge", *std::move(img));
  }

  // Verify every entry parses to exactly its named code, then write.
  std::error_code ec;
  fs::create_directories(out_dir, ec);
  int failures = 0;
  for (const auto& entry : entries) {
    const auto parsed = ElfFile::parse(entry.image);
    const std::string slug{feam::support::error_code_slug(entry.expected)};
    if (parsed.ok()) {
      std::fprintf(stderr, "%s__%s: expected %s, but image parses cleanly\n",
                   slug.c_str(), entry.description.c_str(), slug.c_str());
      ++failures;
      continue;
    }
    if (parsed.code() != entry.expected) {
      std::fprintf(
          stderr, "%s__%s: expected %s, got %s (%s)\n", slug.c_str(),
          entry.description.c_str(), slug.c_str(),
          std::string(feam::support::error_code_slug(parsed.code())).c_str(),
          parsed.error().c_str());
      ++failures;
      continue;
    }
    const fs::path file = out_dir / (slug + "__" + entry.description + ".bin");
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(entry.image.data()),
              static_cast<std::streamsize>(entry.image.size()));
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", file.string().c_str());
      ++failures;
    }
  }
  if (failures != 0) {
    std::fprintf(stderr, "%d corpus entr%s failed verification\n", failures,
                 failures == 1 ? "y" : "ies");
    return 1;
  }
  std::printf("wrote %zu corpus files to %s\n", entries.size(),
              out_dir.string().c_str());
  return 0;
}
