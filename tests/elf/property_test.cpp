// Property tests over the ELF writer/parser pair: randomized specs must
// round-trip exactly, and no byte-level corruption may ever crash the
// parser. Generators are seeded, so failures reproduce from the seed in
// the test name.
#include <gtest/gtest.h>

#include "elf/builder.hpp"
#include "elf/file.hpp"
#include "support/rng.hpp"

namespace feam::elf {
namespace {

using support::Rng;

const Isa kIsas[] = {Isa::kX86, Isa::kX86_64, Isa::kPpc, Isa::kPpc64,
                     Isa::kAarch64};

std::string random_name(Rng& rng, const char* prefix) {
  std::string out = prefix;
  const std::size_t len = 3 + rng.next_below(10);
  for (std::size_t i = 0; i < len; ++i) {
    out += static_cast<char>('a' + rng.next_below(26));
  }
  return out;
}

ElfSpec random_spec(std::uint64_t seed) {
  Rng rng(seed);
  ElfSpec spec;
  spec.isa = kIsas[rng.next_below(std::size(kIsas))];
  spec.kind = rng.chance(0.5) ? FileKind::kExecutable : FileKind::kSharedObject;
  spec.static_link = rng.chance(0.15);
  spec.text_size = 16 + rng.next_below(4096);
  spec.content_seed = rng.next_u64();

  if (spec.kind == FileKind::kSharedObject) {
    spec.soname = random_name(rng, "lib") + ".so." +
                  std::to_string(rng.next_below(9));
  }

  // NEEDED entries (deduplicated by construction: distinct suffixes).
  const std::size_t needed_count = rng.next_below(8);
  for (std::size_t i = 0; i < needed_count; ++i) {
    spec.needed.push_back(random_name(rng, "libdep") + std::to_string(i) +
                          ".so." + std::to_string(rng.next_below(4)));
  }
  if (rng.chance(0.4)) {
    spec.rpath.push_back("/" + random_name(rng, "opt"));
    if (rng.chance(0.3)) spec.rpath.push_back("/" + random_name(rng, "usr"));
  }

  // Version definitions for libraries.
  if (spec.kind == FileKind::kSharedObject && rng.chance(0.6)) {
    const std::size_t defs = 1 + rng.next_below(6);
    for (std::size_t i = 0; i < defs; ++i) {
      spec.version_definitions.push_back(
          "VERS_" + std::to_string(i) + "." + std::to_string(rng.next_below(10)));
    }
    const std::size_t syms = rng.next_below(5);
    for (std::size_t i = 0; i < syms; ++i) {
      spec.defined_symbols.push_back(
          {random_name(rng, "sym"),
           rng.chance(0.7) ? spec.version_definitions[rng.next_below(
                                 spec.version_definitions.size())]
                           : ""});
    }
  }

  // Versioned imports against a random subset of NEEDED.
  if (!spec.needed.empty()) {
    const std::size_t imports = rng.next_below(10);
    for (std::size_t i = 0; i < imports; ++i) {
      UndefinedSymbol sym;
      sym.name = random_name(rng, "u");
      if (rng.chance(0.6)) {
        sym.from_lib = spec.needed[rng.next_below(spec.needed.size())];
        sym.version = "NODE_" + std::to_string(rng.next_below(5));
      }
      spec.undefined_symbols.push_back(std::move(sym));
    }
  }

  if (rng.chance(0.7)) {
    spec.comments.push_back(random_name(rng, "GCC: "));
  }
  if (rng.chance(0.5)) {
    spec.abi = AbiNote{random_name(rng, "Fam"), "1.2",
                       rng.chance(0.5) ? "openmpi" : "",
                       "1.4",
                       static_cast<std::uint32_t>(rng.next_u64()),
                       static_cast<std::uint32_t>(rng.next_below(16))};
  }
  if (spec.static_link) {
    // Static executables carry no dynamic metadata.
    spec.needed.clear();
    spec.rpath.clear();
    spec.version_definitions.clear();
    spec.defined_symbols.clear();
    spec.undefined_symbols.clear();
    spec.soname.clear();
    spec.kind = FileKind::kExecutable;
  }
  return spec;
}

// Materialize borrowed views for comparison against owned spec fields.
std::vector<std::string> owned(const std::vector<std::string_view>& views) {
  return {views.begin(), views.end()};
}

class ElfRoundTripPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ElfRoundTripPropertyTest, RandomSpecRoundTrips) {
  const ElfSpec spec = random_spec(GetParam());
  const auto image = build_image(spec);
  const auto parsed = ElfFile::parse(image);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const ElfFile& f = parsed.value();

  EXPECT_EQ(f.isa(), spec.isa);
  EXPECT_EQ(f.kind(), spec.kind);
  EXPECT_EQ(f.is_dynamic(), !spec.static_link);
  EXPECT_EQ(owned(f.needed()), spec.needed);
  EXPECT_EQ(owned(f.rpath()), spec.rpath);
  if (spec.soname.empty()) {
    EXPECT_FALSE(f.soname().has_value());
  } else {
    EXPECT_EQ(f.soname().value_or(""), spec.soname);
  }
  EXPECT_EQ(owned(f.version_definitions()), spec.version_definitions);
  EXPECT_EQ(owned(f.comments()), spec.comments);
  EXPECT_EQ(f.abi_note().has_value(), spec.abi.has_value());
  if (spec.abi && f.abi_note()) {
    EXPECT_EQ(f.abi_note()->abi_fingerprint, spec.abi->abi_fingerprint);
    EXPECT_EQ(f.abi_note()->compiler_family, spec.abi->compiler_family);
  }

  // Version references: grouped by file in first-appearance order with
  // per-file dedup — exactly ElfSpec::version_needs().
  const auto expected = spec.version_needs();
  ASSERT_EQ(f.version_references().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(f.version_references()[i].file, expected[i].file);
    EXPECT_EQ(owned(f.version_references()[i].versions), expected[i].versions);
  }

  // Symbols survive in order.
  ASSERT_EQ(f.dynamic_symbols().size(),
            spec.undefined_symbols.size() + spec.defined_symbols.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ElfRoundTripPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 65));

TEST(ElfFuzz, RandomByteFlipsNeverCrash) {
  // 48 base images x 64 mutations: the parser must stay memory-safe and
  // total under arbitrary single/multi-byte corruption.
  for (std::uint64_t seed = 1; seed <= 48; ++seed) {
    const auto image = build_image(random_spec(seed));
    Rng rng(seed * 7919);
    for (int round = 0; round < 64; ++round) {
      auto mutated = image;
      const std::size_t flips = 1 + rng.next_below(8);
      for (std::size_t i = 0; i < flips; ++i) {
        mutated[rng.next_below(mutated.size())] ^=
            static_cast<std::uint8_t>(1 + rng.next_below(255));
      }
      (void)ElfFile::parse(mutated);  // must not crash / UB
    }
  }
  SUCCEED();
}

TEST(ElfFuzz, RandomTruncationsNeverCrash) {
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const auto image = build_image(random_spec(seed));
    Rng rng(seed * 104729);
    for (int round = 0; round < 32; ++round) {
      const std::size_t len = rng.next_below(image.size());
      const support::Bytes prefix(
          image.begin(), image.begin() + static_cast<std::ptrdiff_t>(len));
      (void)ElfFile::parse(prefix);
    }
  }
  SUCCEED();
}

TEST(ElfFuzz, GarbageInputNeverCrashes) {
  Rng rng(424242);
  for (int round = 0; round < 256; ++round) {
    support::Bytes garbage(rng.next_below(512));
    for (auto& byte : garbage) {
      byte = static_cast<std::uint8_t>(rng.next_below(256));
    }
    // Half the time, give it a valid magic so parsing goes deeper.
    if (rng.chance(0.5) && garbage.size() >= 4) {
      garbage[0] = 0x7f; garbage[1] = 'E'; garbage[2] = 'L'; garbage[3] = 'F';
    }
    (void)ElfFile::parse(garbage);
  }
  SUCCEED();
}

}  // namespace
}  // namespace feam::elf
