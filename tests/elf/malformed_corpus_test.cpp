// Golden-corpus regression test: every committed file under
// tests/elf/corpus/ must parse to exactly the taxonomy code named by its
// filename prefix (<error_code_slug>__<description>.bin). This pins the
// parser's error *classification*, not just its refusal — a refactor that
// turns a truncation into a generic failure trips this test even though
// parse still returns !ok().
//
// Regenerate the corpus with the feam_make_corpus tool after deliberate
// parser changes (see make_corpus.cpp).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "elf/file.hpp"
#include "support/error.hpp"

#ifndef FEAM_ELF_CORPUS_DIR
#error "FEAM_ELF_CORPUS_DIR must point at tests/elf/corpus"
#endif

namespace feam::elf {
namespace {

namespace fs = std::filesystem;

struct CorpusFile {
  std::string name;           // "elf_truncated__mid_header.bin"
  std::string expected_slug;  // "elf_truncated"
  support::Bytes content;
};

std::vector<CorpusFile> load_corpus() {
  std::vector<CorpusFile> files;
  for (const auto& entry : fs::directory_iterator(FEAM_ELF_CORPUS_DIR)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".bin") {
      continue;
    }
    CorpusFile file;
    file.name = entry.path().filename().string();
    const auto sep = file.name.find("__");
    file.expected_slug =
        sep == std::string::npos ? file.name : file.name.substr(0, sep);
    std::ifstream in(entry.path(), std::ios::binary);
    file.content.assign(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
    files.push_back(std::move(file));
  }
  std::sort(files.begin(), files.end(),
            [](const CorpusFile& a, const CorpusFile& b) {
              return a.name < b.name;
            });
  return files;
}

TEST(MalformedCorpus, EveryFileProducesItsNamedError) {
  const auto corpus = load_corpus();
  ASSERT_GE(corpus.size(), 10u)
      << "corpus missing or incomplete at " << FEAM_ELF_CORPUS_DIR
      << " — regenerate with feam_make_corpus";
  for (const auto& file : corpus) {
    SCOPED_TRACE(file.name);
    const auto parsed = ElfFile::parse(file.content);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(support::error_code_slug(parsed.code()), file.expected_slug);
    EXPECT_FALSE(parsed.error().empty());
    // Every corpus entry is a parse-category failure by construction; the
    // io/dep categories are exercised by vfs_fault_test and dep_cycle_test.
    EXPECT_EQ(support::failure_category(parsed.code()), "parse");
  }
}

TEST(MalformedCorpus, CoversTheParseTaxonomy) {
  // At least one corpus file per parse-category code, so a new code cannot
  // be added without a golden witness.
  std::map<std::string, int> by_slug;
  for (const auto& file : load_corpus()) {
    ++by_slug[file.expected_slug];
  }
  for (const auto code :
       {support::ErrorCode::kElfNotElf, support::ErrorCode::kElfTruncated,
        support::ErrorCode::kElfBadHeader,
        support::ErrorCode::kElfUnsupported,
        support::ErrorCode::kElfBadOffset,
        support::ErrorCode::kElfBadVersionRef,
        support::ErrorCode::kElfLimitExceeded}) {
    const std::string slug{support::error_code_slug(code)};
    EXPECT_GE(by_slug[slug], 1) << "no corpus file for " << slug;
  }
}

TEST(MalformedCorpus, ErrorsAreDeterministic) {
  // Same bytes, same code and message — parse has no hidden state.
  for (const auto& file : load_corpus()) {
    SCOPED_TRACE(file.name);
    const auto first = ElfFile::parse(file.content);
    const auto second = ElfFile::parse(file.content);
    ASSERT_FALSE(first.ok());
    ASSERT_FALSE(second.ok());
    EXPECT_EQ(first.code(), second.code());
    EXPECT_EQ(first.error(), second.error());
  }
}

}  // namespace
}  // namespace feam::elf
