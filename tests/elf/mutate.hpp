// Deterministic corruption helpers for ELF images, shared by the golden
// corpus generator (make_corpus.cpp), the corpus regression test, and the
// fuzz driver. All helpers are pure: they return a mutated copy and never
// touch the input.
//
// The structure-aware helpers (dynamic-entry patching) understand only the
// 64-bit little-endian layout our builder emits for x86-64 — enough to
// steer corruption at specific parser checks instead of relying on blind
// byte flips to find them.
#pragma once

#include <cstdint>
#include <optional>

#include "support/byte_io.hpp"
#include "support/rng.hpp"

namespace feam::elf::mutate {

// Prefix of the image; len is clamped to the image size.
support::Bytes truncated(const support::Bytes& image, std::size_t len);

// Copy with image[offset] = value (no-op when offset is out of range).
support::Bytes with_byte(const support::Bytes& image, std::size_t offset,
                         std::uint8_t value);

// Copy with a little-endian u16 stored at offset.
support::Bytes with_u16le(const support::Bytes& image, std::size_t offset,
                          std::uint16_t value);

// File offset of the PT_DYNAMIC segment's data in a 64-bit LE image;
// nullopt when the image is not 64-bit LE or has no such segment.
struct DynamicSegment {
  std::size_t offset = 0;
  std::size_t size = 0;
};
std::optional<DynamicSegment> find_dynamic_segment_64le(
    const support::Bytes& image);

// Value (d_val/d_ptr) of the first dynamic entry with `tag`, scanning the
// PT_DYNAMIC segment of a 64-bit LE image.
std::optional<std::uint64_t> read_dynamic_value_64le(
    const support::Bytes& image, std::int64_t tag);

// Copy with that entry's value overwritten; nullopt when the tag (or the
// dynamic segment) is absent.
std::optional<support::Bytes> with_dynamic_value_64le(
    const support::Bytes& image, std::int64_t tag, std::uint64_t value);

// One seeded mutation drawn from a mix of strategies (byte flips, header
// field corruption, truncation, dynamic-entry patching, region splices).
// Used by the fuzz driver's fallback loop; never returns the input
// unchanged unless the image is empty.
support::Bytes mutate_once(const support::Bytes& image, support::Rng& rng);

}  // namespace feam::elf::mutate
