// Spec -> image -> parse round-trip: the contract between the simulated
// toolchain (which writes ELF images) and FEAM's tools (which read them).
#include <gtest/gtest.h>

#include "elf/builder.hpp"
#include "elf/file.hpp"

namespace feam::elf {
namespace {

using support::Bytes;

// Parsed accessors return borrowed views; materialize them for comparison
// against the owned-string spec fields.
std::vector<std::string> owned(const std::vector<std::string_view>& views) {
  return {views.begin(), views.end()};
}

// A spec resembling an NPB binary compiled with Open MPI + gfortran on a
// glibc 2.5 site.
ElfSpec typical_app_spec(Isa isa) {
  ElfSpec spec;
  spec.isa = isa;
  spec.kind = FileKind::kExecutable;
  spec.needed = {"libmpi.so.0",  "libmpi_f77.so.0", "libgfortran.so.1",
                 "libm.so.6",    "libnsl.so.1",     "libutil.so.1",
                 "libc.so.6"};
  spec.undefined_symbols = {
      {"MPI_Init", "", ""},
      {"memcpy", "GLIBC_2.3.4", "libc.so.6"},
      {"printf", "GLIBC_2.2.5", "libc.so.6"},
      {"__libc_start_main", "GLIBC_2.2.5", "libc.so.6"},
      {"sqrt", "GLIBC_2.2.5", "libm.so.6"},
      {"_gfortran_st_write", "GFORTRAN_1.0", "libgfortran.so.1"},
  };
  spec.comments = {"GCC: (GNU) 4.1.2 20080704 (Red Hat 4.1.2-46)",
                   "FEAM-sim linker 1.0"};
  spec.abi = AbiNote{"GNU", "4.1.2", "openmpi", "1.4", 0xabcd1234, 2};
  spec.text_size = 32 * 1024;
  spec.content_seed = 777;
  return spec;
}

// A spec resembling glibc itself: defines versions, has a soname.
ElfSpec libc_spec(Isa isa) {
  ElfSpec spec;
  spec.isa = isa;
  spec.kind = FileKind::kSharedObject;
  spec.soname = "libc.so.6";
  spec.version_definitions = {"GLIBC_2.0", "GLIBC_2.1", "GLIBC_2.2.5",
                              "GLIBC_2.3", "GLIBC_2.3.4", "GLIBC_2.4",
                              "GLIBC_2.5"};
  spec.defined_symbols = {{"memcpy", "GLIBC_2.3.4"},
                          {"printf", "GLIBC_2.2.5"},
                          {"malloc", "GLIBC_2.0"}};
  spec.text_size = 1024;
  return spec;
}

class RoundTripIsaTest : public ::testing::TestWithParam<Isa> {};

TEST_P(RoundTripIsaTest, ExecutableMetadataSurvives) {
  const ElfSpec spec = typical_app_spec(GetParam());
  const Bytes image = build_image(spec);
  const auto parsed = ElfFile::parse(image);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const ElfFile& f = parsed.value();

  EXPECT_EQ(f.isa(), spec.isa);
  EXPECT_EQ(f.bits(), isa_bits(spec.isa));
  EXPECT_EQ(f.kind(), FileKind::kExecutable);
  EXPECT_TRUE(f.is_dynamic());
  EXPECT_EQ(owned(f.needed()), spec.needed);
  EXPECT_FALSE(f.soname().has_value());
  EXPECT_EQ(owned(f.comments()), spec.comments);

  // Version references grouped by file, order preserved.
  ASSERT_EQ(f.version_references().size(), 3u);
  EXPECT_EQ(f.version_references()[0].file, "libc.so.6");
  EXPECT_EQ(owned(f.version_references()[0].versions),
            (std::vector<std::string>{"GLIBC_2.3.4", "GLIBC_2.2.5"}));
  EXPECT_EQ(f.version_references()[1].file, "libm.so.6");
  EXPECT_EQ(f.version_references()[2].file, "libgfortran.so.1");
  EXPECT_EQ(owned(f.version_references()[2].versions),
            (std::vector<std::string>{"GFORTRAN_1.0"}));

  // ABI note survives.
  ASSERT_TRUE(f.abi_note().has_value());
  EXPECT_EQ(f.abi_note()->compiler_family, "GNU");
  EXPECT_EQ(f.abi_note()->compiler_version, "4.1.2");
  EXPECT_EQ(f.abi_note()->abi_fingerprint, 0xabcd1234u);
  EXPECT_EQ(f.abi_note()->fp_model, 2u);

  // Symbols: all six undefined, with version annotations.
  ASSERT_EQ(f.dynamic_symbols().size(), 6u);
  EXPECT_EQ(f.dynamic_symbols()[0].name, "MPI_Init");
  EXPECT_TRUE(f.dynamic_symbols()[0].version.empty());
  EXPECT_FALSE(f.dynamic_symbols()[0].defined);
  EXPECT_EQ(f.dynamic_symbols()[1].name, "memcpy");
  EXPECT_EQ(f.dynamic_symbols()[1].version, "GLIBC_2.3.4");
}

TEST_P(RoundTripIsaTest, SharedObjectMetadataSurvives) {
  const ElfSpec spec = libc_spec(GetParam());
  const Bytes image = build_image(spec);
  const auto parsed = ElfFile::parse(image);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const ElfFile& f = parsed.value();

  EXPECT_EQ(f.kind(), FileKind::kSharedObject);
  ASSERT_TRUE(f.soname().has_value());
  EXPECT_EQ(*f.soname(), "libc.so.6");
  EXPECT_EQ(owned(f.version_definitions()), spec.version_definitions);
  EXPECT_TRUE(f.version_references().empty());

  ASSERT_EQ(f.dynamic_symbols().size(), 3u);
  EXPECT_TRUE(f.dynamic_symbols()[0].defined);
  EXPECT_EQ(f.dynamic_symbols()[0].version, "GLIBC_2.3.4");
  EXPECT_EQ(f.dynamic_symbols()[2].version, "GLIBC_2.0");
}

INSTANTIATE_TEST_SUITE_P(AllIsas, RoundTripIsaTest,
                         ::testing::Values(Isa::kX86, Isa::kX86_64, Isa::kPpc,
                                           Isa::kPpc64, Isa::kAarch64),
                         [](const auto& param_info) {
                           return std::string(isa_name(param_info.param)) ==
                                          "x86-64"
                                      ? "x86_64"
                                      : isa_name(param_info.param);
                         });

TEST(RoundTrip, RpathSurvivesColonJoining) {
  ElfSpec spec = typical_app_spec(Isa::kX86_64);
  spec.rpath = {"/opt/openmpi-1.4.3-intel/lib", "/usr/local/lib"};
  const auto parsed = ElfFile::parse(build_image(spec));
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(owned(parsed.value().rpath()), spec.rpath);
}

TEST(RoundTrip, EmptySpecStillValid) {
  ElfSpec spec;
  spec.text_size = 16;
  const auto parsed = ElfFile::parse(build_image(spec));
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_TRUE(parsed.value().needed().empty());
  EXPECT_TRUE(parsed.value().version_references().empty());
  EXPECT_TRUE(parsed.value().comments().empty());
  EXPECT_FALSE(parsed.value().abi_note().has_value());
}

TEST(RoundTrip, DeterministicImages) {
  const ElfSpec spec = typical_app_spec(Isa::kX86_64);
  EXPECT_EQ(build_image(spec), build_image(spec));
}

TEST(RoundTrip, TextSizeDrivesFileSize) {
  ElfSpec small = typical_app_spec(Isa::kX86_64);
  ElfSpec large = small;
  small.text_size = 1024;
  large.text_size = 1024 * 1024;
  EXPECT_GT(build_image(large).size(), build_image(small).size() + 900 * 1024);
}

TEST(RoundTrip, BitnessIsVisible) {
  ElfSpec spec32 = typical_app_spec(Isa::kX86);
  ElfSpec spec64 = typical_app_spec(Isa::kX86_64);
  EXPECT_EQ(ElfFile::parse(build_image(spec32)).value().bits(), 32);
  EXPECT_EQ(ElfFile::parse(build_image(spec64)).value().bits(), 64);
}

TEST(RoundTrip, BigEndianImagesParse) {
  const ElfSpec spec = libc_spec(Isa::kPpc64);
  const Bytes image = build_image(spec);
  // e_ident[EI_DATA] must be 2 (big-endian) for ppc64.
  EXPECT_EQ(image[5], 2);
  const auto parsed = ElfFile::parse(image);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().isa(), Isa::kPpc64);
}

TEST(IsaModel, ExecutableOnRules) {
  EXPECT_TRUE(isa_executable_on(Isa::kX86, Isa::kX86_64));
  EXPECT_TRUE(isa_executable_on(Isa::kPpc, Isa::kPpc64));
  EXPECT_FALSE(isa_executable_on(Isa::kX86_64, Isa::kX86));
  EXPECT_FALSE(isa_executable_on(Isa::kPpc64, Isa::kX86_64));
  EXPECT_FALSE(isa_executable_on(Isa::kX86, Isa::kPpc64));
  for (const Isa isa : {Isa::kX86, Isa::kX86_64, Isa::kPpc, Isa::kPpc64}) {
    EXPECT_TRUE(isa_executable_on(isa, isa));
  }
}

}  // namespace
}  // namespace feam::elf
