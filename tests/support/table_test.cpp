#include "support/table.hpp"

#include <gtest/gtest.h>

#include "support/strings.hpp"

namespace feam::support {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"Suite", "Accuracy"});
  t.add_row({"NAS", "94%"});
  t.add_row({"SPEC MPI2007", "92%"});
  const std::string out = t.render();
  // Every rendered line has the same width.
  const auto lines = split(out, '\n');
  std::size_t width = lines[0].size();
  for (const auto& line : lines) {
    if (!line.empty()) EXPECT_EQ(line.size(), width) << line;
  }
  EXPECT_TRUE(contains(out, "SPEC MPI2007"));
  EXPECT_TRUE(contains(out, "94%"));
}

TEST(TextTable, ShortRowsPadWithEmptyCells) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_TRUE(contains(t.render(), "only"));
}

TEST(TextTable, RuleSeparatesGroups) {
  TextTable t({"x"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const auto lines = split(t.render(), '\n');
  // header rule + top + bottom + group rule = 4 '+' lines.
  int rules = 0;
  for (const auto& line : lines) rules += !line.empty() && line[0] == '+';
  EXPECT_EQ(rules, 4);
}

TEST(Percent, Formatting) {
  EXPECT_EQ(percent(94, 100), "94%");
  EXPECT_EQ(percent(1, 3), "33%");
  EXPECT_EQ(percent(0, 0), "n/a");
  EXPECT_EQ(percent(103, 110), "94%");  // paper's NAS basic prediction shape
}

}  // namespace
}  // namespace feam::support
