#include "support/strings.hpp"

#include <gtest/gtest.h>

namespace feam::support {
namespace {

TEST(Split, KeepsEmptyFields) {
  EXPECT_EQ(split("a::b", ':'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", ':'), (std::vector<std::string>{""}));
  EXPECT_EQ(split(":", ':'), (std::vector<std::string>{"", ""}));
}

TEST(Split, LdLibraryPathStyle) {
  const auto parts = split("/usr/lib:/opt/openmpi-1.4.3-intel/lib", ':');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "/opt/openmpi-1.4.3-intel/lib");
}

TEST(SplitWs, DropsEmptyRuns) {
  EXPECT_EQ(split_ws("  a \t b\nc  "), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
  EXPECT_TRUE(split_ws("").empty());
}

TEST(Trim, BothEnds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim(" \t\n "), "");
}

TEST(Join, Basic) {
  EXPECT_EQ(join(std::vector<std::string>{"a", "b", "c"}, ":"), "a:b:c");
  EXPECT_EQ(join(std::vector<std::string>{}, ":"), "");
  EXPECT_EQ(join(std::vector<std::string_view>{"only"}, ", "), "only");
}

TEST(Predicates, StartsEndsContains) {
  EXPECT_TRUE(starts_with("libmpi.so.0", "libmpi"));
  EXPECT_FALSE(starts_with("lib", "libmpi"));
  EXPECT_TRUE(ends_with("libmpi.so.0", ".so.0"));
  EXPECT_FALSE(ends_with(".0", "so.0"));
  EXPECT_TRUE(contains("openmpi-1.4.3-intel", "-intel"));
  EXPECT_FALSE(contains("mvapich2", "openmpi"));
}

TEST(ToLower, Ascii) {
  EXPECT_EQ(to_lower("Open MPI v1.4"), "open mpi v1.4");
}

TEST(HumanSize, Units) {
  EXPECT_EQ(human_size(97), "97B");
  EXPECT_EQ(human_size(512 * 1024), "512K");
  EXPECT_EQ(human_size(45 * 1024 * 1024), "45M");
  EXPECT_EQ(human_size(1536), "1.5K");
}

}  // namespace
}  // namespace feam::support
