#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace feam::support {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_EQ(equal, 0);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  // All residues are reachable.
  std::set<std::uint64_t> seen;
  Rng rng2(9);
  for (int i = 0; i < 500; ++i) seen.insert(rng2.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // mean of U(0,1)
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_FALSE(rng.chance(-1.0));
}

TEST(Rng, ChanceFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ForkIsStableByLabel) {
  const Rng base(99);
  Rng a = base.fork("mpi-daemon");
  Rng b = base.fork("mpi-daemon");
  Rng c = base.fork("timeout");
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Fnv1a, StableKnownValues) {
  // FNV-1a 64-bit reference values.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(fnv1a("libc.so.6"), fnv1a("libm.so.6"));
}

}  // namespace
}  // namespace feam::support
