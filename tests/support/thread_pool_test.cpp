// ThreadPool: FIFO work queue, wait() barrier semantics, and exception
// propagation — the substrate under the parallel migration engine.
#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace feam::support {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, ClampsToAtLeastOneWorker) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.size(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.size(), 1);
  ThreadPool four(4);
  EXPECT_EQ(four.size(), 4);
}

TEST(ThreadPool, WaitIsABarrier) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.wait();
  // Nothing may still be in flight once wait() returns.
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPool, WaitRethrowsTheFirstTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ThreadPool, UsableAgainAfterAnException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("first"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);

  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();  // the captured error was consumed by the previous wait()
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait(): the destructor must finish the queue before joining.
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, TasksSubmittedFromTasksComplete) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  pool.submit([&] {
    for (int i = 0; i < 5; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  pool.wait();
  EXPECT_EQ(done.load(), 5);
}

}  // namespace
}  // namespace feam::support
