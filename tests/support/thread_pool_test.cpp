// ThreadPool: FIFO work queue, wait() barrier semantics, and exception
// propagation — the substrate under the parallel migration engine.
#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace feam::support {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, ClampsToAtLeastOneWorker) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.size(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.size(), 1);
  ThreadPool four(4);
  EXPECT_EQ(four.size(), 4);
}

TEST(ThreadPool, WaitIsABarrier) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.wait();
  // Nothing may still be in flight once wait() returns.
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPool, WaitRethrowsTheFirstTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ThreadPool, UsableAgainAfterAnException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("first"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);

  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();  // the captured error was consumed by the previous wait()
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait(): the destructor must finish the queue before joining.
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, TasksSubmittedFromTasksComplete) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  pool.submit([&] {
    for (int i = 0; i < 5; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  pool.wait();
  EXPECT_EQ(done.load(), 5);
}

TEST(ThreadPool, ObserverSeesEveryTaskWithPlausibleTimings) {
  std::atomic<int> observed{0};
  std::atomic<std::uint64_t> run_sum{0};
  ThreadPool pool(2, [&](std::uint64_t queue_wait_ns, std::uint64_t run_ns) {
    observed.fetch_add(1, std::memory_order_relaxed);
    run_sum.fetch_add(run_ns, std::memory_order_relaxed);
    (void)queue_wait_ns;  // >= 0 by type; just must not crash
  });
  std::atomic<int> done{0};
  for (int i = 0; i < 30; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.wait();
  EXPECT_EQ(done.load(), 30);
  EXPECT_EQ(observed.load(), 30);
  // 30 tasks each sleeping ~1ms: the summed run time must reflect it.
  EXPECT_GE(run_sum.load(), 30u * 500'000u);
}

TEST(ThreadPool, ObserverSeesQueueWaitWhenWorkersAreBusy) {
  // One worker, one blocking task: everything behind it must report a
  // submit->start wait at least as long as the blocker's sleep.
  std::atomic<std::uint64_t> max_wait{0};
  ThreadPool pool(1, [&](std::uint64_t queue_wait_ns, std::uint64_t) {
    std::uint64_t seen = max_wait.load(std::memory_order_relaxed);
    while (queue_wait_ns > seen &&
           !max_wait.compare_exchange_weak(seen, queue_wait_ns)) {
    }
  });
  pool.submit([] { std::this_thread::sleep_for(std::chrono::milliseconds(20)); });
  pool.submit([] {});
  pool.wait();
  EXPECT_GE(max_wait.load(), 10'000'000u);  // >= 10ms of the 20ms sleep
}

TEST(ThreadPool, ObserverExceptionPropagatesLikeATaskException) {
  ThreadPool pool(2, [](std::uint64_t, std::uint64_t) {
    throw std::runtime_error("observer failed");
  });
  pool.submit([] {});
  EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ThreadPool, NullObserverIsFine) {
  ThreadPool pool(2, nullptr);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(done.load(), 20);
}

}  // namespace
}  // namespace feam::support
