// Exhaustive coverage of the ErrorCode taxonomy: every enum value maps to
// a distinct, stable slug and to a valid attribution category. Guards the
// easy-to-miss half of adding a code — the slug/category switch — since a
// missed case silently falls back and corrupts failure attribution.
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace feam::support {
namespace {

// Every ErrorCode value. A new enum member must be added here (the
// AllCodesListed test fails otherwise), which forces the slug and
// category expectations below to cover it.
const std::vector<ErrorCode>& all_codes() {
  static const std::vector<ErrorCode> codes = {
      ErrorCode::kUnknown,        ErrorCode::kElfNotElf,
      ErrorCode::kElfTruncated,   ErrorCode::kElfBadHeader,
      ErrorCode::kElfUnsupported, ErrorCode::kElfBadOffset,
      ErrorCode::kElfBadVersionRef, ErrorCode::kElfLimitExceeded,
      ErrorCode::kSpecParse,      ErrorCode::kIoFault,
      ErrorCode::kFileNotFound,   ErrorCode::kDepCycle,
      ErrorCode::kDepDepthExceeded,
  };
  return codes;
}

TEST(ErrorTaxonomy, AllCodesListed) {
  // The enum is dense starting at 0, so the last member's value pins the
  // count: if someone appends a code, this mismatch points them at
  // all_codes() above.
  EXPECT_EQ(all_codes().size(),
            static_cast<std::size_t>(ErrorCode::kDepDepthExceeded) + 1);
  std::set<std::uint8_t> values;
  for (const ErrorCode code : all_codes()) {
    values.insert(static_cast<std::uint8_t>(code));
  }
  EXPECT_EQ(values.size(), all_codes().size()) << "duplicate enum listed";
}

TEST(ErrorTaxonomy, EverySlugIsDistinctAndWellFormed) {
  std::set<std::string> slugs;
  for (const ErrorCode code : all_codes()) {
    const std::string slug(error_code_slug(code));
    EXPECT_FALSE(slug.empty())
        << "code " << static_cast<int>(code) << " has no slug";
    // Slugs name golden-corpus files: lowercase snake_case only.
    for (const char c : slug) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || c == '_')
          << slug << " contains '" << c << "'";
    }
    EXPECT_TRUE(slugs.insert(slug).second) << "duplicate slug " << slug;
  }
}

TEST(ErrorTaxonomy, EveryCategoryIsValid) {
  const std::set<std::string> valid = {"parse", "io", "dep"};
  for (const ErrorCode code : all_codes()) {
    const std::string category(failure_category(code));
    if (code == ErrorCode::kUnknown) {
      // Legacy string-only failures attribute to no category.
      EXPECT_TRUE(category.empty());
      continue;
    }
    EXPECT_TRUE(valid.count(category) == 1)
        << error_code_slug(code) << " maps to invalid category '"
        << category << "'";
  }
}

TEST(ErrorTaxonomy, CategoriesMatchTheDocumentedBuckets) {
  EXPECT_EQ(failure_category(ErrorCode::kElfNotElf), "parse");
  EXPECT_EQ(failure_category(ErrorCode::kElfLimitExceeded), "parse");
  EXPECT_EQ(failure_category(ErrorCode::kSpecParse), "parse");
  EXPECT_EQ(failure_category(ErrorCode::kIoFault), "io");
  EXPECT_EQ(failure_category(ErrorCode::kFileNotFound), "io");
  EXPECT_EQ(failure_category(ErrorCode::kDepCycle), "dep");
  EXPECT_EQ(failure_category(ErrorCode::kDepDepthExceeded), "dep");
}

}  // namespace
}  // namespace feam::support
