#include "support/json.hpp"

#include <gtest/gtest.h>

namespace feam::support {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null")->is_null());
  EXPECT_TRUE(Json::parse("true")->as_bool());
  EXPECT_FALSE(Json::parse("false")->as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("3.5")->as_number(), 3.5);
  EXPECT_EQ(Json::parse("-42")->as_int(), -42);
  EXPECT_EQ(Json::parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonParse, NestedStructure) {
  const auto v = Json::parse(R"({"libs": ["libc.so.6", "libmpi.so.0"],
                                 "bits": 64, "ok": true})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ((*v)["libs"].as_array().size(), 2u);
  EXPECT_EQ((*v)["libs"].as_array()[1].as_string(), "libmpi.so.0");
  EXPECT_EQ(v->get_int("bits"), 64);
  EXPECT_TRUE(v->get_bool("ok"));
}

TEST(JsonParse, StringEscapes) {
  const auto v = Json::parse(R"("a\nb\t\"q\"\\A")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "a\nb\t\"q\"\\A");
}

TEST(JsonParse, RejectsMalformed) {
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("{\"a\":}").has_value());
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
  EXPECT_FALSE(Json::parse("tru").has_value());
  EXPECT_FALSE(Json::parse("1 2").has_value());  // trailing garbage
  EXPECT_FALSE(Json::parse("{\"a\":1,}").has_value());
}

TEST(JsonAccess, MissingKeysAreNull) {
  const Json v = *Json::parse("{\"a\": 1}");
  EXPECT_TRUE(v["missing"].is_null());
  EXPECT_EQ(v.get_string("missing", "fallback"), "fallback");
  EXPECT_EQ(v.get_int("missing", 7), 7);
}

TEST(JsonDump, RoundTrip) {
  Json obj;
  obj.set("name", "libmpich.so.1.2");
  obj.set("size", std::int64_t{2621440});
  obj.set("versions", Json(Json::Array{Json("GLIBC_2.3"), Json("GLIBC_2.4")}));
  Json nested;
  nested.set("deep", true);
  obj.set("meta", nested);

  for (const int indent : {0, 2}) {
    const auto reparsed = Json::parse(obj.dump(indent));
    ASSERT_TRUE(reparsed.has_value()) << "indent=" << indent;
    EXPECT_EQ(reparsed->get_string("name"), "libmpich.so.1.2");
    EXPECT_EQ(reparsed->get_int("size"), 2621440);
    EXPECT_EQ((*reparsed)["versions"].as_array().size(), 2u);
    EXPECT_TRUE((*reparsed)["meta"].get_bool("deep"));
  }
}

TEST(JsonDump, DeterministicKeyOrder) {
  Json a;
  a.set("zeta", 1);
  a.set("alpha", 2);
  Json b;
  b.set("alpha", 2);
  b.set("zeta", 1);
  EXPECT_EQ(a.dump(), b.dump());  // std::map ordering, insertion-order free
}

TEST(JsonDump, EscapesControlCharacters) {
  const Json v{std::string("a\x01z")};
  const auto reparsed = Json::parse(v.dump());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->as_string(), "a\x01z");
}

TEST(JsonDump, QuotesAndBackslashesRoundTrip) {
  const std::string nasty = "say \"hi\" c:\\path\\to\nend\tok\r.";
  const auto reparsed = Json::parse(Json(nasty).dump());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->as_string(), nasty);
}

TEST(JsonDump, ValidUtf8RoundTrips) {
  // 2-, 3-, and 4-byte UTF-8 sequences (é, €, 𝄞). BMP sequences pass
  // through raw; the non-BMP one writes as a surrogate pair but decodes
  // back to the identical bytes.
  const std::string text = "caf\xc3\xa9 \xe2\x82\xac \xf0\x9d\x84\x9e";
  const std::string dumped = Json(text).dump();
  EXPECT_NE(dumped.find("caf\xc3\xa9"), std::string::npos);
  const auto reparsed = Json::parse(dumped);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->as_string(), text);
}

TEST(JsonDump, NonBmpWritesAsSurrogatePairAndRoundTrips) {
  // U+1D11E MUSICAL SYMBOL G CLEF and U+10FFFF, the last codepoint.
  const std::string clef = "\xf0\x9d\x84\x9e";
  const std::string last = "\xf4\x8f\xbf\xbf";
  const std::string dumped = Json(clef + last).dump();
  EXPECT_EQ(dumped, "\"\\ud834\\udd1e\\udbff\\udfff\"");
  const auto reparsed = Json::parse(dumped);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->as_string(), clef + last);
  // And the re-dump is byte-stable.
  EXPECT_EQ(reparsed->dump(), dumped);
}

TEST(JsonParse, SurrogatePairEscapesDecodeToUtf8) {
  const auto parsed = Json::parse("\"\\uD834\\uDD1E\"");  // uppercase hex too
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->as_string(), "\xf0\x9d\x84\x9e");
}

TEST(JsonParse, RejectsLoneAndMismatchedSurrogates) {
  EXPECT_FALSE(Json::parse("\"\\ud834\"").has_value());        // lone high
  EXPECT_FALSE(Json::parse("\"\\udd1e\"").has_value());        // lone low
  EXPECT_FALSE(Json::parse("\"\\ud834\\u0041\"").has_value()); // high + BMP
  EXPECT_FALSE(Json::parse("\"\\ud834x\"").has_value());       // high + raw
  EXPECT_FALSE(Json::parse("\"\\ud834\\ud835\"").has_value()); // high + high
}

TEST(JsonDump, InvalidUtf8BytesAreEscapedToValidJson) {
  // The shapes a synthetic ELF .comment section can smuggle in: a stray
  // continuation byte, an overlong lead, a truncated sequence, 0xff.
  const std::vector<std::string> cases = {
      std::string("GCC: (GNU) 4.1.2 \x93 oops"),   // stray continuation
      std::string("\xc0\xaf" "bad overlong"),      // 0xc0 never valid
      std::string("truncated \xe2\x82"),           // 3-byte seq cut short
      std::string("\xff\xfe byte-order mark-ish"), // never-valid bytes
      std::string("ed surrogate \xed\xa0\x80"),    // encoded surrogate
  };
  for (const auto& raw : cases) {
    const std::string dumped = Json(raw).dump();
    const auto reparsed = Json::parse(dumped);
    ASSERT_TRUE(reparsed.has_value()) << dumped;
    // Every escaped invalid byte decodes to its Latin-1 codepoint, so no
    // information is silently dropped.
    EXPECT_FALSE(reparsed->as_string().empty());
  }
}

TEST(JsonDump, InvalidByteSurvivesAsLatin1Codepoint) {
  const std::string raw = "a\x93z";
  const std::string dumped = Json(raw).dump();
  EXPECT_NE(dumped.find("\\u0093"), std::string::npos);
  const auto reparsed = Json::parse(dumped);
  ASSERT_TRUE(reparsed.has_value());
  // \u0093 decodes as UTF-8 for U+0093 (0xc2 0x93).
  EXPECT_EQ(reparsed->as_string(), "a\xc2\x93z");
}

}  // namespace
}  // namespace feam::support
