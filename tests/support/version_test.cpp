#include "support/version.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace feam::support {
namespace {

TEST(VersionParse, SimpleDotted) {
  const auto v = Version::parse("2.3.4");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->components(), (std::vector<std::uint32_t>{2, 3, 4}));
  EXPECT_TRUE(v->pre_release_tag().empty());
  EXPECT_EQ(v->str(), "2.3.4");
}

TEST(VersionParse, SingleComponent) {
  const auto v = Version::parse("12");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->major(), 12u);
  EXPECT_EQ(v->minor(), 0u);
}

TEST(VersionParse, PreReleaseTag) {
  const auto v = Version::parse("1.7rc1");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->components(), (std::vector<std::uint32_t>{1, 7}));
  EXPECT_EQ(v->pre_release_tag(), "rc1");
  EXPECT_EQ(v->str(), "1.7rc1");
}

TEST(VersionParse, MvapichAlphaTag) {
  // "1.7a2" appears verbatim in the paper's Table II (FutureGrid India).
  const auto v = Version::parse("1.7a2");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->pre_release_tag(), "a2");
}

TEST(VersionParse, RejectsGarbage) {
  EXPECT_FALSE(Version::parse("").has_value());
  EXPECT_FALSE(Version::parse("abc").has_value());
  EXPECT_FALSE(Version::parse(".1").has_value());
  EXPECT_FALSE(Version::parse("1.").has_value());
  EXPECT_FALSE(Version::parse("1..2").has_value());
  EXPECT_FALSE(Version::parse("-1").has_value());
  EXPECT_FALSE(Version::parse("1.2.-3").has_value());
}

TEST(VersionParse, RejectsOverflow) {
  EXPECT_FALSE(Version::parse("99999999999").has_value());
  EXPECT_TRUE(Version::parse("4294967295").has_value());
}

TEST(VersionOrder, NumericNotLexicographic) {
  EXPECT_LT(Version::of("2.9"), Version::of("2.12"));
  EXPECT_LT(Version::of("2.3.4"), Version::of("2.11.1"));
}

TEST(VersionOrder, MissingComponentsAreZero) {
  EXPECT_EQ(Version::of("2.5"), Version::of("2.5.0"));
  EXPECT_LT(Version::of("2.5"), Version::of("2.5.1"));
}

TEST(VersionOrder, PreReleaseBeforeRelease) {
  EXPECT_LT(Version::of("1.7rc1"), Version::of("1.7"));
  EXPECT_LT(Version::of("1.7a2"), Version::of("1.7"));
  EXPECT_LT(Version::of("1.7a2"), Version::of("1.7rc1"));  // "a2" < "rc1"
  EXPECT_GT(Version::of("1.7rc1"), Version::of("1.6"));
}

TEST(VersionOrder, TableTwoGlibcOrdering) {
  // The glibc versions from the paper's Table II must order correctly:
  // Ranger 2.3.4 < India/Fir 2.5 < Blacklight 2.11.1 < Forge 2.12.
  std::vector<Version> site_versions = {
      Version::of("2.12"), Version::of("2.3.4"), Version::of("2.11.1"),
      Version::of("2.5"), Version::of("2.5")};
  std::sort(site_versions.begin(), site_versions.end());
  EXPECT_EQ(site_versions.front().str(), "2.3.4");
  EXPECT_EQ(site_versions.back().str(), "2.12");
  EXPECT_EQ(site_versions[2].str(), "2.5");
}

class VersionTotalOrderTest : public ::testing::TestWithParam<const char*> {};

// Property: every version equals itself and the ordering is antisymmetric
// against a fixed pivot.
TEST_P(VersionTotalOrderTest, ConsistentWithPivot) {
  const Version v = Version::of(GetParam());
  const Version pivot = Version::of("2.5");
  EXPECT_EQ(v, v);
  const bool lt = v < pivot;
  const bool gt = v > pivot;
  const bool eq = v == pivot;
  EXPECT_EQ(1, static_cast<int>(lt) + static_cast<int>(gt) + static_cast<int>(eq));
}

INSTANTIATE_TEST_SUITE_P(PaperVersions, VersionTotalOrderTest,
                         ::testing::Values("2.3.4", "2.12", "2.11.1", "2.5",
                                           "1.2", "1.3", "1.4", "1.4.3",
                                           "1.7rc1", "1.7a2", "1.7", "3.4.6",
                                           "4.4.5", "4.1.2", "10.1", "12",
                                           "11.1", "2.5.0", "2.4.9"));

TEST(VersionRoundTrip, StrParsesBack) {
  for (const char* text : {"2.3.4", "1.7rc1", "1.7a2", "12", "0.0.1"}) {
    const Version v = Version::of(text);
    const auto reparsed = Version::parse(v.str());
    ASSERT_TRUE(reparsed.has_value()) << text;
    EXPECT_EQ(v, *reparsed) << text;
  }
}

}  // namespace
}  // namespace feam::support
