#include "support/byte_io.hpp"

#include <gtest/gtest.h>

namespace feam::support {
namespace {

class ByteIoEndianTest : public ::testing::TestWithParam<Endian> {};

TEST_P(ByteIoEndianTest, IntegerRoundTrip) {
  ByteWriter w(GetParam());
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  const Bytes data = w.data();
  ByteReader r(data, GetParam());
  EXPECT_EQ(r.u8(0), 0xab);
  EXPECT_EQ(r.u16(1), 0x1234);
  EXPECT_EQ(r.u32(3), 0xdeadbeefu);
  EXPECT_EQ(r.u64(7), 0x0123456789abcdefULL);
}

TEST_P(ByteIoEndianTest, PatchMatchesDirectWrite) {
  ByteWriter w(GetParam());
  w.u32(0);
  w.u64(0);
  w.patch_u32(0, 0xcafef00d);
  w.patch_u64(4, 0x1122334455667788ULL);

  ByteWriter direct(GetParam());
  direct.u32(0xcafef00d);
  direct.u64(0x1122334455667788ULL);
  EXPECT_EQ(w.data(), direct.data());
}

INSTANTIATE_TEST_SUITE_P(BothEndians, ByteIoEndianTest,
                         ::testing::Values(Endian::kLittle, Endian::kBig));

TEST(ByteWriter, LittleEndianByteOrder) {
  ByteWriter w(Endian::kLittle);
  w.u32(0x01020304);
  EXPECT_EQ(w.data(), (Bytes{0x04, 0x03, 0x02, 0x01}));
}

TEST(ByteWriter, BigEndianByteOrder) {
  ByteWriter w(Endian::kBig);
  w.u32(0x01020304);
  EXPECT_EQ(w.data(), (Bytes{0x01, 0x02, 0x03, 0x04}));
}

TEST(ByteWriter, CstrAndPadTo) {
  ByteWriter w(Endian::kLittle);
  w.cstr("ab");
  w.pad_to(8);
  EXPECT_EQ(w.size(), 8u);
  EXPECT_EQ(w.data()[2], 0);
  EXPECT_EQ(w.data()[7], 0);
}

TEST(ByteReader, OutOfRangeReturnsNullopt) {
  const Bytes data{1, 2, 3};
  ByteReader r(data, Endian::kLittle);
  EXPECT_FALSE(r.u32(0).has_value());
  EXPECT_FALSE(r.u16(2).has_value());
  EXPECT_TRUE(r.u16(1).has_value());
  EXPECT_FALSE(r.u8(3).has_value());
  EXPECT_FALSE(r.u64(0).has_value());
}

TEST(ByteReader, CstrRequiresTerminator) {
  const Bytes terminated{'h', 'i', 0};
  const Bytes unterminated{'h', 'i'};
  ByteReader a(terminated, Endian::kLittle);
  ByteReader b(unterminated, Endian::kLittle);
  EXPECT_EQ(a.cstr(0), "hi");
  EXPECT_EQ(a.cstr(2), "");
  EXPECT_FALSE(b.cstr(0).has_value());
  EXPECT_FALSE(a.cstr(3).has_value());  // past the end
}

}  // namespace
}  // namespace feam::support
