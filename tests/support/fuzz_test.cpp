// Fuzz-style robustness sweeps over every text parser in the system: the
// JSON reader, the batch-script parser, the FEAM configuration file, the
// objdump/ldd scrapers, and the bundle archive. Each must be total —
// return an error, never crash — on arbitrary input.
#include <gtest/gtest.h>

#include "binutils/ldd.hpp"
#include "binutils/objdump.hpp"
#include "binutils/readelf.hpp"
#include "feam/bundle_archive.hpp"
#include "feam/config.hpp"
#include "site/batch.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"

namespace feam {
namespace {

using support::Rng;

std::string random_text(Rng& rng, std::size_t max_len) {
  // Biased toward parser-relevant characters.
  static constexpr char kAlphabet[] =
      "{}[]\",:=#\n\t -_.0123456789abcdefGLIBCPBS$!/\\";
  std::string out;
  const std::size_t len = rng.next_below(max_len);
  for (std::size_t i = 0; i < len; ++i) {
    if (rng.chance(0.05)) {
      out += static_cast<char>(rng.next_below(256));  // raw byte
    } else {
      out += kAlphabet[rng.next_below(sizeof(kAlphabet) - 1)];
    }
  }
  return out;
}

TEST(ParserFuzz, JsonNeverCrashes) {
  Rng rng(101);
  for (int i = 0; i < 4000; ++i) {
    (void)support::Json::parse(random_text(rng, 256));
  }
  SUCCEED();
}

TEST(ParserFuzz, JsonValidInputsRoundTripUnderNoise) {
  // Mutating a valid document must either fail to parse or parse to
  // *something* — and re-dumping whatever parses must itself re-parse.
  Rng rng(202);
  const std::string base =
      R"({"name":"libmpich.so.1.2","bits":64,"libs":["a","b"],"ok":true})";
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = base;
    const std::size_t flips = 1 + rng.next_below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.next_below(mutated.size())] =
          static_cast<char>(rng.next_below(128));
    }
    const auto parsed = support::Json::parse(mutated);
    if (parsed) {
      const auto again = support::Json::parse(parsed->dump());
      EXPECT_TRUE(again.has_value()) << mutated;
    }
  }
}

TEST(ParserFuzz, BatchScriptNeverCrashes) {
  Rng rng(303);
  for (int i = 0; i < 3000; ++i) {
    (void)site::BatchScript::parse(random_text(rng, 300));
  }
  // Mutations of a valid script.
  const std::string base = site::BatchScript{}.render();
  for (int i = 0; i < 1000; ++i) {
    std::string mutated = base;
    mutated[rng.next_below(mutated.size())] =
        static_cast<char>(rng.next_below(128));
    (void)site::BatchScript::parse(mutated);
  }
  SUCCEED();
}

TEST(ParserFuzz, ConfigFileNeverCrashes) {
  Rng rng(404);
  for (int i = 0; i < 3000; ++i) {
    (void)FeamConfigFile::parse(random_text(rng, 200));
  }
  SUCCEED();
}

TEST(ParserFuzz, ScrapersNeverCrash) {
  Rng rng(505);
  for (int i = 0; i < 3000; ++i) {
    const std::string text = random_text(rng, 400);
    (void)binutils::parse_objdump_output(text);
    (void)binutils::parse_ldd_output(text);
    (void)binutils::parse_comment_dump(text);
  }
  SUCCEED();
}

TEST(ParserFuzz, BundleArchiveNeverCrashes) {
  Rng rng(606);
  for (int i = 0; i < 1500; ++i) {
    support::Bytes garbage(rng.next_below(400));
    for (auto& byte : garbage) byte = static_cast<std::uint8_t>(rng.next_below(256));
    if (rng.chance(0.5) && garbage.size() >= 8) {
      const char* magic = "FEAMBNDL";
      std::copy(magic, magic + 8, garbage.begin());
    }
    (void)unpack_bundle(garbage);
  }
  SUCCEED();
}

}  // namespace
}  // namespace feam
