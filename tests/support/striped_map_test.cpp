// StripedMap: lock-free read path, shard striping, collision chains,
// shadowing semantics, and pointer stability — the primitive under the
// parallel engine's memo caches.
#include "support/striped_map.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace feam::support {
namespace {

TEST(StripedMap, FindMissesUntilInserted) {
  StripedMap<std::uint64_t, std::string> map;
  EXPECT_EQ(map.find(7), nullptr);
  const auto [v, inserted] =
      map.get_or_insert(7, [] { return std::string("seven"); });
  EXPECT_TRUE(inserted);
  ASSERT_NE(map.find(7), nullptr);
  EXPECT_EQ(*map.find(7), "seven");
  EXPECT_EQ(map.find(8), nullptr);
  EXPECT_EQ(map.size(), 1u);
}

TEST(StripedMap, GetOrInsertHitsWithoutCallingMake) {
  StripedMap<std::uint64_t, int> map;
  map.get_or_insert(1, [] { return 10; });
  bool made = false;
  const auto [v, inserted] = map.get_or_insert(1, [&made] {
    made = true;
    return 99;
  });
  EXPECT_FALSE(inserted);
  EXPECT_FALSE(made);
  EXPECT_EQ(*v, 10);
}

// All keys hash to one bucket of one shard: chains must still resolve
// exact keys, and find_if must distinguish colliding entries by value.
TEST(StripedMap, CollidingKeysChainCorrectly) {
  struct OneBucket {
    std::size_t operator()(std::uint64_t) const { return 0; }
  };
  StripedMap<std::uint64_t, std::string, OneBucket> map(4, 4);
  for (std::uint64_t k = 0; k < 32; ++k) {
    map.get_or_insert(k, [k] { return "v" + std::to_string(k); });
  }
  for (std::uint64_t k = 0; k < 32; ++k) {
    ASSERT_NE(map.find(k), nullptr) << k;
    EXPECT_EQ(*map.find(k), "v" + std::to_string(k));
  }
  // Same key, distinct identities (the caches' fingerprint-collision
  // case): the predicate picks the right entry.
  map.insert(5, "other-identity");
  const std::string* exact =
      map.find_if(5, [](const std::string& v) { return v == "v5"; });
  ASSERT_NE(exact, nullptr);
  EXPECT_EQ(*exact, "v5");
}

TEST(StripedMap, InsertShadowsButOldPointerStaysValid) {
  StripedMap<std::uint64_t, std::string> map;
  const std::string* first =
      map.get_or_insert(3, [] { return std::string("old"); }).first;
  const std::string* second = map.insert(3, "new");
  EXPECT_EQ(*map.find(3), "new");
  EXPECT_EQ(map.find(3), second);
  // The shadowed node is retained, not freed: the old pointer still
  // reads its original value.
  EXPECT_EQ(*first, "old");
  EXPECT_EQ(map.size(), 2u);
}

TEST(StripedMap, PointersSurviveHeavyInsertion) {
  StripedMap<std::uint64_t, std::uint64_t> map(2, 2);  // force long chains
  std::vector<const std::uint64_t*> pointers;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    pointers.push_back(map.get_or_insert(k, [k] { return k * k; }).first);
  }
  for (std::uint64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(*pointers[k], k * k);
    EXPECT_EQ(map.find(k), pointers[k]);
  }
}

TEST(StripedMap, ForEachVisitsEveryNode) {
  StripedMap<std::uint64_t, std::uint64_t> map;
  for (std::uint64_t k = 0; k < 50; ++k) {
    map.get_or_insert(k, [k] { return k; });
  }
  map.insert(0, 999);  // shadowed nodes are visited too
  std::uint64_t nodes = 0;
  map.for_each([&](const std::uint64_t&, const std::uint64_t&) { ++nodes; });
  EXPECT_EQ(nodes, 51u);
  EXPECT_EQ(map.size(), 51u);
}

// The TSan target: concurrent readers walk chains lock-free while
// writers publish into every shard; get_or_insert races on shared keys
// must produce exactly one insertion per key.
TEST(StripedMap, ConcurrentReadersAndWritersStress) {
  StripedMap<std::uint64_t, std::uint64_t> map(8, 16);
  constexpr int kThreads = 8;
  constexpr std::uint64_t kKeys = 512;
  std::atomic<std::uint64_t> insertions{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (std::uint64_t k = 0; k < kKeys; ++k) {
          const std::uint64_t* v = map.find(k);
          if (v != nullptr) {
            // Published values are immutable: a reader can never see a
            // torn or stale payload.
            EXPECT_EQ(*v, k * 7);
          }
        }
      }
    });
  }

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (std::uint64_t k = 0; k < kKeys; ++k) {
        const auto [v, inserted] =
            map.get_or_insert(k, [k] { return k * 7; });
        EXPECT_EQ(*v, k * 7);
        if (inserted) insertions.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();

  EXPECT_EQ(insertions.load(), kKeys);
  EXPECT_EQ(map.size(), kKeys);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_NE(map.find(k), nullptr) << k;
    EXPECT_EQ(*map.find(k), k * 7);
  }
}

// Values with mutable atomic members may be revalidated in place — the
// resolver search memo's fast-path pattern.
TEST(StripedMap, AtomicMembersUpdateInPlaceUnderConcurrency) {
  struct Entry {
    std::uint64_t payload = 0;
    mutable std::atomic<std::uint64_t> checked{0};
    explicit Entry(std::uint64_t p) : payload(p) {}
    // Atomics aren't movable; moves happen only pre-publication, so a
    // value-copying move constructor is race-free.
    Entry(Entry&& other) noexcept
        : payload(other.payload),
          checked(other.checked.load(std::memory_order_relaxed)) {}
  };
  StripedMap<std::uint64_t, Entry> map;
  map.get_or_insert(1, [] { return Entry(42); });
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&map, t] {
      for (int i = 0; i < 1000; ++i) {
        const Entry* e = map.find(1);
        ASSERT_NE(e, nullptr);
        EXPECT_EQ(e->payload, 42u);
        e->checked.store(static_cast<std::uint64_t>(t),
                         std::memory_order_release);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LT(map.find(1)->checked.load(), 4u);
}

}  // namespace
}  // namespace feam::support
