// Static linking (paper VI.C): statically linked binaries have no dynamic
// dependencies, so the shared-library and MPI-stack determinants have
// nothing to fail on — they migrate anywhere the ISA is compatible. The
// catch the paper names: most sites' MPI implementations were not
// installed with static libraries.
#include <gtest/gtest.h>

#include "binutils/ldd.hpp"
#include "elf/file.hpp"
#include "feam/bdc.hpp"
#include "feam/phases.hpp"
#include "toolchain/launcher.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

namespace feam::toolchain {
namespace {

using site::CompilerFamily;
using site::MpiImpl;

ProgramSource app() {
  ProgramSource p;
  p.name = "is.B";
  p.language = Language::kC;
  p.libc_features = {"base", "stdio", "math"};
  p.text_size = 120 * 1024;
  return p;
}

TEST(StaticLink, OnlyWhereStaticLibsExist) {
  auto india = make_site("india");
  // MPICH2 at India ships static libraries; Open MPI does not.
  const auto* mpich2 = india->find_stack(MpiImpl::kMpich2, CompilerFamily::kGnu);
  const auto* openmpi = india->find_stack(MpiImpl::kOpenMpi, CompilerFamily::kGnu);
  ASSERT_TRUE(mpich2->static_libs_available);
  ASSERT_FALSE(openmpi->static_libs_available);

  EXPECT_TRUE(compile_static_mpi_program(*india, app(), *mpich2,
                                         "/home/user/is.static").ok());
  const auto fail = compile_static_mpi_program(*india, app(), *openmpi,
                                               "/home/user/x");
  ASSERT_FALSE(fail.ok());
  EXPECT_NE(fail.error().find("not installed with static libraries"),
            std::string::npos);
}

TEST(StaticLink, ImageHasNoDynamicSurface) {
  auto india = make_site("india");
  const auto* stack = india->find_stack(MpiImpl::kMpich2, CompilerFamily::kGnu);
  const auto path = compile_static_mpi_program(*india, app(), *stack,
                                               "/home/user/is.static");
  ASSERT_TRUE(path.ok());
  const auto parsed = elf::ElfFile::parse(*india->vfs.read(path.value()));
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_FALSE(parsed.value().is_dynamic());
  EXPECT_TRUE(parsed.value().needed().empty());
  EXPECT_TRUE(parsed.value().version_references().empty());
  // Much larger than the dynamic build, as in reality.
  const auto* dynamic_stack =
      india->find_stack(MpiImpl::kMpich2, CompilerFamily::kGnu);
  const auto dyn = compile_mpi_program(*india, app(), *dynamic_stack,
                                       "/home/user/is.dyn");
  ASSERT_TRUE(dyn.ok());
  EXPECT_GT(india->vfs.read(path.value())->size(),
            4 * india->vfs.read(dyn.value())->size());
}

TEST(StaticLink, LddDoesNotRecognizeIt) {
  auto india = make_site("india");
  const auto* stack = india->find_stack(MpiImpl::kMpich2, CompilerFamily::kGnu);
  const auto path = compile_static_mpi_program(*india, app(), *stack,
                                               "/home/user/is.static");
  ASSERT_TRUE(path.ok());
  const auto out = binutils::ldd(*india, path.value());
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.error().find("not a dynamic executable"), std::string::npos);
}

TEST(StaticLink, BdcDescribesWithEmptyDependencies) {
  auto india = make_site("india");
  const auto* stack = india->find_stack(MpiImpl::kMpich2, CompilerFamily::kGnu);
  const auto path = compile_static_mpi_program(*india, app(), *stack,
                                               "/home/user/is.static");
  const auto d = Bdc::describe(*india, path.value());
  ASSERT_TRUE(d.ok()) << d.error();
  EXPECT_TRUE(d.value().required_libraries.empty());
  EXPECT_FALSE(d.value().required_clib_version.has_value());
  EXPECT_FALSE(d.value().mpi_impl.has_value());  // nothing to identify from
  // The build stamps still reveal the toolchain.
  EXPECT_TRUE(d.value().build_compiler.has_value());
}

TEST(StaticLink, MigratesEvenToRanger) {
  // Ranger rejects every gcc-4.1-built *dynamic* binary on the GLIBC_2.4
  // node; the static build carries no version references and just runs.
  auto india = make_site("india");
  const auto* stack = india->find_stack(MpiImpl::kMpich2, CompilerFamily::kGnu);
  const auto path = compile_static_mpi_program(*india, app(), *stack,
                                               "/home/user/is.static");
  ASSERT_TRUE(path.ok());

  auto ranger = make_site("ranger");
  ranger->vfs.write_file("/home/user/is.static", *india->vfs.read(path.value()));
  const auto run = run_serial(*ranger, "/home/user/is.static");
  EXPECT_TRUE(run.success()) << run.detail;

  // And FEAM predicts exactly that.
  const auto result = feam::run_target_phase(*ranger, "/home/user/is.static");
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_TRUE(result.value().prediction.ready);
}

TEST(StaticLink, StillBlockedByIsa) {
  auto india = make_site("india");
  const auto* stack = india->find_stack(MpiImpl::kMpich2, CompilerFamily::kGnu);
  const auto path = compile_static_mpi_program(*india, app(), *stack,
                                               "/home/user/is.static");
  auto bluefire = make_site("bluefire");  // ppc64
  bluefire->vfs.write_file("/home/user/is.static",
                           *india->vfs.read(path.value()));
  const auto run = run_serial(*bluefire, "/home/user/is.static");
  EXPECT_EQ(run.status, RunStatus::kExecFormatError);
  const auto result = feam::run_target_phase(*bluefire, "/home/user/is.static");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().prediction.ready);
}

}  // namespace
}  // namespace feam::toolchain
