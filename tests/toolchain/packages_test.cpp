// Validates that provisioning materializes real, parseable ELF libraries
// with the paper's Table I link-level identities.
#include <gtest/gtest.h>

#include "elf/file.hpp"
#include "toolchain/glibc.hpp"
#include "toolchain/packages.hpp"
#include "toolchain/testbed.hpp"

namespace feam::toolchain {
namespace {

using site::MpiImpl;
using support::Version;

elf::ElfFile parse_at(const site::Site& s, const std::string& path) {
  const auto* data = s.vfs.read(path);
  EXPECT_NE(data, nullptr) << path;
  auto parsed = elf::ElfFile::parse(*data);
  EXPECT_TRUE(parsed.ok()) << path << ": "
                           << (parsed.ok() ? "" : parsed.error());
  return std::move(parsed).take();
}

TEST(Packages, ClibrarySymlinkConventionAndVerdefs) {
  const auto s = make_site("india");
  EXPECT_TRUE(s->vfs.is_symlink("/lib64/libc.so.6"));
  EXPECT_EQ(s->vfs.resolve("/lib64/libc.so.6"), "/lib64/libc-2.5.so");
  const auto libc = parse_at(*s, "/lib64/libc.so.6");
  EXPECT_EQ(libc.soname(), "libc.so.6");
  // Defines every node up to its release and nothing newer.
  const auto& defs = libc.version_definitions();
  EXPECT_NE(std::find(defs.begin(), defs.end(), "GLIBC_2.5"), defs.end());
  EXPECT_EQ(std::find(defs.begin(), defs.end(), "GLIBC_2.9"), defs.end());
}

TEST(Packages, GlibcSatellitesPresent) {
  const auto s = make_site("fir");
  for (const char* soname :
       {"libm.so.6", "libpthread.so.0", "libdl.so.2", "librt.so.1"}) {
    EXPECT_TRUE(s->vfs.exists(site::Vfs::join("/lib64", soname))) << soname;
  }
  EXPECT_TRUE(s->vfs.exists("/lib64/ld-linux-x86-64.so.2"));
}

TEST(Packages, SystemLibsForOpenMpiIdentity) {
  const auto s = make_site("blacklight");
  EXPECT_TRUE(s->vfs.exists("/usr/lib64/libnsl.so.1"));
  EXPECT_TRUE(s->vfs.exists("/usr/lib64/libutil.so.1"));
}

TEST(Packages, InfinibandLibsOnlyOnIbSites) {
  const auto india = make_site("india");  // has MVAPICH2 over IB
  EXPECT_TRUE(india->vfs.exists("/usr/lib64/libibverbs.so.1"));
  EXPECT_TRUE(india->vfs.exists("/usr/lib64/libibumad.so.3"));
  const auto blacklight = make_site("blacklight");  // Open MPI on Ethernet
  EXPECT_FALSE(blacklight->vfs.exists("/usr/lib64/libibverbs.so.1"));
}

TEST(Packages, IntelRuntimeOutsideDefaultDirs) {
  const auto s = make_site("forge");
  EXPECT_TRUE(s->vfs.exists("/opt/intel-12/lib/libimf.so"));
  EXPECT_TRUE(s->vfs.exists("/opt/intel-12/lib/libifcore.so.5"));
  EXPECT_FALSE(s->vfs.exists("/usr/lib64/libimf.so"));
  const auto libimf = parse_at(*s, "/opt/intel-12/lib/libimf.so");
  ASSERT_TRUE(libimf.abi_note().has_value());
  EXPECT_EQ(libimf.abi_note()->compiler_family, "Intel");
}

TEST(Packages, GnuRuntimeInSystemDirsWithCompat) {
  const auto fir = make_site("fir");  // gcc 4.1.2
  EXPECT_TRUE(fir->vfs.exists("/usr/lib64/libgfortran.so.1"));
  EXPECT_TRUE(fir->vfs.exists("/usr/lib64/libg2c.so.0"));        // compat-libf2c
  EXPECT_TRUE(fir->vfs.exists("/usr/lib64/libgfortran.so.3"));   // gcc44 preview
  const auto forge = make_site("forge");  // gcc 4.4.5
  EXPECT_TRUE(forge->vfs.exists("/usr/lib64/libgfortran.so.3"));
  EXPECT_TRUE(forge->vfs.exists("/usr/lib64/libgfortran.so.1"));  // compat
  EXPECT_FALSE(forge->vfs.exists("/usr/lib64/libg2c.so.0"));
}

TEST(Packages, TableOneIdentities) {
  site::MpiStackInstall openmpi;
  openmpi.impl = MpiImpl::kOpenMpi;
  openmpi.version = Version::of("1.4");
  site::MpiStackInstall mpich2 = openmpi;
  mpich2.impl = MpiImpl::kMpich2;
  site::MpiStackInstall mvapich2 = openmpi;
  mvapich2.impl = MpiImpl::kMvapich2;
  mvapich2.version = Version::of("1.7");

  const auto o = mpi_app_sonames(openmpi, Language::kC);
  EXPECT_NE(std::find(o.begin(), o.end(), "libmpi.so.0"), o.end());
  EXPECT_NE(std::find(o.begin(), o.end(), "libnsl.so.1"), o.end());
  EXPECT_NE(std::find(o.begin(), o.end(), "libutil.so.1"), o.end());

  const auto m = mpi_app_sonames(mpich2, Language::kFortran);
  EXPECT_NE(std::find(m.begin(), m.end(), "libmpich.so.1.2"), m.end());
  EXPECT_NE(std::find(m.begin(), m.end(), "libmpichf90.so.1.2"), m.end());
  // "and not other identifiers": no InfiniBand libraries for MPICH2.
  EXPECT_EQ(std::find(m.begin(), m.end(), "libibverbs.so.1"), m.end());

  const auto v = mpi_app_sonames(mvapich2, Language::kC);
  EXPECT_NE(std::find(v.begin(), v.end(), "libmpich.so.1.2"), v.end());
  EXPECT_NE(std::find(v.begin(), v.end(), "libibverbs.so.1"), v.end());
  EXPECT_NE(std::find(v.begin(), v.end(), "libibumad.so.3"), v.end());
}

TEST(Packages, MvapichSonameGenerations) {
  site::MpiStackInstall old_stack;
  old_stack.impl = MpiImpl::kMvapich2;
  old_stack.version = Version::of("1.2");
  site::MpiStackInstall new_stack = old_stack;
  new_stack.version = Version::of("1.7a2");
  EXPECT_EQ(mpi_primary_soname(old_stack), "libmpich.so.1.0");
  EXPECT_EQ(mpi_primary_soname(new_stack), "libmpich.so.1.2");
}

TEST(Packages, MpiStackInstallLayout) {
  const auto s = make_site("india");
  // openmpi-1.4-intel prefix exists with libraries and wrappers.
  const std::string prefix = "/opt/openmpi-1.4-intel";
  EXPECT_TRUE(s->vfs.exists(prefix + "/lib/libmpi.so.0"));
  EXPECT_TRUE(s->vfs.exists(prefix + "/lib/libmpi_f77.so.0"));
  EXPECT_TRUE(s->vfs.exists(prefix + "/lib/libopen-pal.so.0"));
  EXPECT_TRUE(s->vfs.exists(prefix + "/bin/mpicc"));
  EXPECT_TRUE(s->vfs.exists(prefix + "/bin/mpiexec"));
  EXPECT_TRUE(s->vfs.is_symlink(prefix + "/bin/mpirun"));

  const auto libmpi = parse_at(*s, prefix + "/lib/libmpi.so.0");
  ASSERT_TRUE(libmpi.abi_note().has_value());
  EXPECT_EQ(libmpi.abi_note()->mpi_impl, "openmpi");
  EXPECT_EQ(libmpi.abi_note()->compiler_family, "Intel");
  // Chained dependencies mirror the real Open MPI layering.
  const auto& needed = libmpi.needed();
  EXPECT_NE(std::find(needed.begin(), needed.end(), "libopen-rte.so.0"),
            needed.end());
}

TEST(Packages, NewGlibcSitesProduceNewVersionRefs) {
  // Forge (2.12) libraries bind recvmmsg@GLIBC_2.12; India (2.5) ones
  // cannot — the configure-time capping that drives bundle-copy rejects.
  const auto forge = make_site("forge");
  const auto india = make_site("india");
  const auto forge_pal =
      parse_at(*forge, "/opt/openmpi-1.4-gnu/lib/libopen-pal.so.0");
  const auto india_pal =
      parse_at(*india, "/opt/openmpi-1.4-gnu/lib/libopen-pal.so.0");
  const auto max_ref = [](const elf::ElfFile& f) {
    support::Version newest;
    for (const auto& need : f.version_references()) {
      for (const auto& v : need.versions) {
        if (const auto parsed = parse_glibc_version(v)) {
          if (*parsed > newest) newest = *parsed;
        }
      }
    }
    return newest;
  };
  EXPECT_EQ(max_ref(forge_pal), Version::of("2.12"));
  EXPECT_LE(max_ref(india_pal), Version::of("2.5"));
}

TEST(Packages, BindFeaturesCapsAtBuildLibc) {
  elf::ElfSpec spec;
  bind_libc_features(spec, {"base", "ssp", "recvmmsg"}, Version::of("2.5"));
  ASSERT_EQ(spec.undefined_symbols.size(), 2u);  // recvmmsg (2.12) dropped
  EXPECT_EQ(spec.undefined_symbols[0].version, "GLIBC_2.2.5");
  EXPECT_EQ(spec.undefined_symbols[1].version, "GLIBC_2.4");
}

TEST(Packages, MathFeatureBindsToLibm) {
  elf::ElfSpec spec;
  bind_libc_features(spec, {"math"}, Version::of("2.5"));
  ASSERT_EQ(spec.undefined_symbols.size(), 1u);
  EXPECT_EQ(spec.undefined_symbols[0].from_lib, "libm.so.6");
}

}  // namespace
}  // namespace feam::toolchain
