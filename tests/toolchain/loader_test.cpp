#include "toolchain/loader.hpp"

#include <gtest/gtest.h>

#include "elf/builder.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

namespace feam::toolchain {
namespace {

using site::CompilerFamily;

TEST(Loader, FileNotFound) {
  auto s = make_site("india");
  const auto r = load_binary(*s, "/nope");
  EXPECT_EQ(r.status, LoadStatus::kFileNotFound);
}

TEST(Loader, NotElfIsExecFormatError) {
  auto s = make_site("india");
  s->vfs.write_file("/home/user/script", "#!/bin/sh\n");
  const auto r = load_binary(*s, "/home/user/script");
  EXPECT_EQ(r.status, LoadStatus::kExecFormatError);
}

TEST(Loader, ForeignIsaIsExecFormatError) {
  auto s = make_site("india");
  elf::ElfSpec spec;
  spec.isa = elf::Isa::kPpc64;
  spec.text_size = 64;
  s->vfs.write_file("/home/user/ppc", elf::build_image(spec));
  const auto r = load_binary(*s, "/home/user/ppc");
  EXPECT_EQ(r.status, LoadStatus::kExecFormatError);
  EXPECT_NE(r.detail.find("Exec format error"), std::string::npos);
}

TEST(Loader, CompiledBinaryLoadsWithModule) {
  auto s = make_site("india");
  ProgramSource p = mpi_hello_world(Language::kC);
  const auto* stack = s->find_stack(site::MpiImpl::kOpenMpi, CompilerFamily::kGnu);
  ASSERT_NE(stack, nullptr);
  const auto path = compile_mpi_program(*s, p, *stack, "/home/user/hello");
  ASSERT_TRUE(path.ok());

  // Without the module, the MPI libraries are unreachable.
  const auto before = load_binary(*s, path.value());
  EXPECT_EQ(before.status, LoadStatus::kMissingLibrary);
  EXPECT_NE(before.detail.find("libmpi.so.0"), std::string::npos);

  s->load_module("openmpi/1.4-gnu");
  const auto after = load_binary(*s, path.value());
  EXPECT_EQ(after.status, LoadStatus::kOk) << after.detail;
  EXPECT_TRUE(after.resolution.complete());
}

TEST(Loader, ExtraDirsActAsResolutionScope) {
  auto s = make_site("india");
  const auto* stack = s->find_stack(site::MpiImpl::kOpenMpi, CompilerFamily::kGnu);
  const auto path = compile_mpi_program(*s, mpi_hello_world(Language::kC),
                                        *stack, "/home/user/hello");
  ASSERT_TRUE(path.ok());
  // Copy the MPI libraries into a private directory instead of the module.
  for (const char* soname : {"libmpi.so.0", "libopen-rte.so.0",
                             "libopen-pal.so.0"}) {
    const auto* data =
        s->vfs.read(std::string("/opt/openmpi-1.4-gnu/lib/") + soname);
    ASSERT_NE(data, nullptr);
    s->vfs.write_file(std::string("/home/user/copies/") + soname, *data);
  }
  const auto r = load_binary(*s, path.value(), {"/home/user/copies"});
  EXPECT_EQ(r.status, LoadStatus::kOk) << r.detail;
  EXPECT_EQ(r.resolution.path_of("libmpi.so.0"),
            "/home/user/copies/libmpi.so.0");
}

TEST(Loader, VersionMismatchDetected) {
  // A binary from Forge (glibc 2.12) cannot load at Ranger (2.3.4).
  auto forge = make_site("forge");
  auto ranger = make_site("ranger");
  ProgramSource p;
  p.name = "modern";
  p.language = Language::kC;
  p.libc_features = {"base", "stdio", "recvmmsg"};
  const auto* stack =
      forge->find_stack(site::MpiImpl::kOpenMpi, CompilerFamily::kGnu);
  const auto path =
      compile_mpi_program(*forge, p, *stack, "/home/user/modern");
  ASSERT_TRUE(path.ok());
  ranger->vfs.write_file("/home/user/modern", *forge->vfs.read(path.value()));
  ranger->load_module("openmpi/1.3-gnu");
  const auto r = load_binary(*ranger, "/home/user/modern");
  EXPECT_EQ(r.status, LoadStatus::kVersionMismatch);
  EXPECT_NE(r.detail.find("GLIBC_2.12"), std::string::npos);
}

TEST(Loader, MissingReportedBeforeVersionErrors) {
  // When both problems exist, the loader reports the missing library (as
  // ld.so does — it never gets to version checks for absent files).
  auto ranger = make_site("ranger");
  elf::ElfSpec spec;
  spec.isa = elf::Isa::kX86_64;
  spec.needed = {"libnothere.so.9", "libc.so.6"};
  spec.undefined_symbols = {{"recvmmsg", "GLIBC_2.12", "libc.so.6"}};
  spec.text_size = 64;
  ranger->vfs.write_file("/b", elf::build_image(spec));
  const auto r = load_binary(*ranger, "/b");
  EXPECT_EQ(r.status, LoadStatus::kMissingLibrary);
}

}  // namespace
}  // namespace feam::toolchain
