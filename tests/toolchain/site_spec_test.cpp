#include "toolchain/site_spec.hpp"

#include <gtest/gtest.h>

#include "feam/edc.hpp"
#include "feam/phases.hpp"
#include "toolchain/launcher.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

namespace feam::toolchain {
namespace {

constexpr const char* kSpec = R"({
  "name": "mycluster",
  "isa": "x86_64",
  "os": {"distro": "CentOS", "version": "5.6", "kernel": "2.6.18-194.el5"},
  "clib_version": "2.5",
  "system_type": "Cluster",
  "cpu_count": 512,
  "user_env_tool": "modules",
  "batch": "slurm",
  "compilers": [{"family": "gnu", "version": "4.1.2"},
                {"family": "intel", "version": "11.1"}],
  "stacks": [
    {"impl": "openmpi", "version": "1.4", "compiler": "gnu",
     "interconnect": "infiniband"},
    {"impl": "mpich2", "version": "1.4", "compiler": "intel",
     "static_libs": true}
  ]
})";

TEST(SiteSpec, BuildsProvisionedSite) {
  auto result = make_site_from_json(kSpec);
  ASSERT_TRUE(result.ok()) << result.error();
  const site::Site& s = *result.value();
  EXPECT_EQ(s.name, "mycluster");
  EXPECT_EQ(s.batch, site::BatchKind::kSlurm);
  ASSERT_EQ(s.stacks.size(), 2u);
  EXPECT_EQ(s.stacks[0].compiler_version, support::Version::of("4.1.2"));
  EXPECT_TRUE(s.stacks[1].static_libs_available);
  // Fully provisioned: libc, module files, MPI prefixes.
  EXPECT_TRUE(s.vfs.exists("/lib64/libc.so.6"));
  EXPECT_TRUE(s.vfs.exists("/opt/openmpi-1.4-gnu/lib/libmpi.so.0"));
  EXPECT_TRUE(s.vfs.exists("/opt/intel-11.1/lib/libimf.so"));
  EXPECT_EQ(s.module_files.size(), 2u);
}

TEST(SiteSpec, DiscoveryMatchesSpec) {
  auto result = make_site_from_json(kSpec);
  ASSERT_TRUE(result.ok());
  const auto env = feam::Edc::discover(*result.value());
  EXPECT_EQ(env.isa, "x86_64");
  EXPECT_EQ(env.clib_version, support::Version::of("2.5"));
  EXPECT_EQ(env.stacks.size(), 2u);
}

TEST(SiteSpec, CompiledBinaryRunsOnCustomSite) {
  auto result = make_site_from_json(kSpec);
  ASSERT_TRUE(result.ok());
  site::Site& s = *result.value();
  ProgramSource p;
  p.name = "app";
  p.language = Language::kC;
  const auto* stack = s.find_stack(site::MpiImpl::kOpenMpi,
                                   site::CompilerFamily::kGnu);
  const auto compiled = compile_mpi_program(s, p, *stack, "/home/user/app");
  ASSERT_TRUE(compiled.ok()) << compiled.error();
  s.load_module("openmpi/1.4-gnu");
  EXPECT_TRUE(mpiexec_with_retries(s, compiled.value(), 4).success());
}

TEST(SiteSpec, MigrationBetweenCustomAndBuiltinSites) {
  auto custom = make_site_from_json(kSpec);
  ASSERT_TRUE(custom.ok());
  auto india = make_site("india");
  ProgramSource p;
  p.name = "app";
  p.language = Language::kC;
  const auto* stack = india->find_stack(site::MpiImpl::kOpenMpi,
                                        site::CompilerFamily::kGnu);
  const auto compiled = compile_mpi_program(*india, p, *stack, "/home/user/app");
  ASSERT_TRUE(compiled.ok());
  custom.value()->vfs.write_file("/home/user/app",
                                 *india->vfs.read(compiled.value()));
  const auto target = feam::run_target_phase(*custom.value(), "/home/user/app");
  ASSERT_TRUE(target.ok()) << target.error();
  EXPECT_TRUE(target.value().prediction.ready);  // twin configuration
}

TEST(SiteSpec, JsonRoundTrip) {
  auto first = make_site_from_json(kSpec);
  ASSERT_TRUE(first.ok());
  const std::string rendered = site_to_json(*first.value());
  auto second = make_site_from_json(rendered);
  ASSERT_TRUE(second.ok()) << second.error();
  EXPECT_EQ(second.value()->name, first.value()->name);
  EXPECT_EQ(second.value()->clib_version, first.value()->clib_version);
  EXPECT_EQ(second.value()->stacks.size(), first.value()->stacks.size());
  EXPECT_EQ(site_to_json(*second.value()), rendered);
}

TEST(SiteSpec, BuiltinSitesRoundTripThroughJson) {
  for (const auto& name : testbed_site_names()) {
    const auto original = make_site(name);
    auto rebuilt = make_site_from_json(site_to_json(*original));
    ASSERT_TRUE(rebuilt.ok()) << name << ": " << rebuilt.error();
    EXPECT_EQ(rebuilt.value()->stacks.size(), original->stacks.size()) << name;
    EXPECT_EQ(rebuilt.value()->clib_version, original->clib_version) << name;
  }
}

TEST(SiteSpec, Errors) {
  EXPECT_FALSE(make_site_from_json("not json").ok());
  EXPECT_FALSE(make_site_from_json("[]").ok());
  EXPECT_FALSE(make_site_from_json(R"({"isa": "x86_64"})").ok());  // no name
  EXPECT_FALSE(make_site_from_json(
                   R"({"name": "x", "isa": "vax", "clib_version": "2.5",
                       "compilers": [{"family":"gnu","version":"4.1"}]})")
                   .ok());
  // Stack names a compiler that is not installed.
  const auto r = make_site_from_json(R"({
    "name": "x", "isa": "x86_64", "clib_version": "2.5",
    "compilers": [{"family": "gnu", "version": "4.1.2"}],
    "stacks": [{"impl": "openmpi", "version": "1.4", "compiler": "pgi"}]})");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("not installed"), std::string::npos);
}

}  // namespace
}  // namespace feam::toolchain
