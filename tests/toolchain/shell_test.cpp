#include "toolchain/shell.hpp"

#include <gtest/gtest.h>

#include "feam/bdc.hpp"
#include "feam/phases.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

namespace feam::toolchain {
namespace {

using site::CompilerFamily;
using site::MpiImpl;

std::string compile_hello(site::Site& s, MpiImpl impl, CompilerFamily fam) {
  const auto* stack = s.find_stack(impl, fam);
  EXPECT_NE(stack, nullptr);
  const auto r = compile_mpi_program(s, mpi_hello_world(Language::kC), *stack,
                                     "/home/user/hello");
  EXPECT_TRUE(r.ok()) << r.error();
  return r.value();
}

TEST(Shell, ExportWithExpansion) {
  auto s = make_site("india");
  s->env.set("BASE", "/opt/x");
  const auto r = run_script(*s, "export LD_LIBRARY_PATH=$BASE/lib\n"
                                 "export PATH=${BASE}/bin:$PATH\n");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(s->env.get("LD_LIBRARY_PATH"), "/opt/x/lib");
  EXPECT_EQ(s->env.get("PATH"), "/opt/x/bin:/usr/local/bin:/usr/bin:/bin");
}

TEST(Shell, ExportUnsetVarExpandsEmptyAndTrailingColonStripped) {
  auto s = make_site("india");
  const auto r = run_script(*s, "export LD_LIBRARY_PATH=/copies:$LD_LIBRARY_PATH\n");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(s->env.get("LD_LIBRARY_PATH"), "/copies");
}

TEST(Shell, ModuleLoadAndPurge) {
  auto s = make_site("india");
  EXPECT_TRUE(run_script(*s, "module load openmpi/1.4-gnu\n").ok());
  EXPECT_EQ(s->loaded_modules().size(), 1u);
  EXPECT_TRUE(run_script(*s, "module purge\n").ok());
  EXPECT_TRUE(s->loaded_modules().empty());
  const auto bad = run_script(*s, "module load nope/1.0\n");
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(bad.errors.empty());
}

TEST(Shell, SoftAddActivatesStack) {
  auto s = make_site("forge");  // the SoftEnv site
  const auto r = run_script(*s, "soft add +openmpi-1.4-intel\n");
  EXPECT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors.front());
  EXPECT_NE(s->selected_stack(), nullptr);
  EXPECT_FALSE(run_script(*s, "soft add +no-such-key\n").ok());
}

TEST(Shell, MpiexecRunsUnderLoadedModule) {
  auto s = make_site("india");
  const auto path = compile_hello(*s, MpiImpl::kOpenMpi, CompilerFamily::kGnu);
  const auto r = run_script(*s, "module load openmpi/1.4-gnu\n"
                                 "mpiexec -n 4 " + path + "\n");
  EXPECT_TRUE(r.ok()) << r.last_run.detail;
  EXPECT_NE(r.last_run.output.find("4 ranks"), std::string::npos);
}

TEST(Shell, MpirunNpSynonym) {
  auto s = make_site("india");
  const auto path = compile_hello(*s, MpiImpl::kOpenMpi, CompilerFamily::kGnu);
  const auto r = run_script(*s, "module load openmpi/1.4-gnu\n"
                                 "mpirun -np 2 " + path + "\n");
  EXPECT_TRUE(r.ok());
}

TEST(Shell, FailingExecutionStopsScript) {
  auto s = make_site("india");
  const auto path = compile_hello(*s, MpiImpl::kOpenMpi, CompilerFamily::kGnu);
  // No module loaded: the first mpiexec fails, the export after it must
  // not run.
  const auto r = run_script(*s, "mpiexec -n 4 " + path + "\n"
                                 "export MARKER=reached\n");
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(s->env.has("MARKER"));
}

TEST(Shell, SyntaxErrorsReported) {
  auto s = make_site("india");
  EXPECT_FALSE(run_script(*s, "export NOEQUALS\n").ok());
  EXPECT_FALSE(run_script(*s, "mpiexec -n 4\n").ok());
}

TEST(Shell, GeneratedConfigurationScriptWorksVerbatim) {
  // End-to-end: FEAM's TEC generates a script; executing that script text
  // must produce a successful run — the paper's automation promise.
  auto ranger = make_site("ranger");
  auto fir = make_site("fir");
  toolchain::ProgramSource cg;
  cg.name = "cg.B";
  cg.language = Language::kC;
  const auto* stack =
      ranger->find_stack(MpiImpl::kMvapich2, CompilerFamily::kIntel);
  const auto compiled = compile_mpi_program(*ranger, cg, *stack,
                                            "/home/user/apps/cg.B");
  ASSERT_TRUE(compiled.ok());
  ranger->load_module("mvapich2/1.2-intel");
  const auto source = feam::run_source_phase(*ranger, compiled.value());
  ASSERT_TRUE(source.ok());
  fir->vfs.write_file("/home/user/apps/cg.B",
                      *ranger->vfs.read(compiled.value()));
  const auto target = feam::run_target_phase(*fir, "/home/user/apps/cg.B",
                                             &source.value());
  ASSERT_TRUE(target.ok());
  ASSERT_TRUE(target.value().prediction.ready);

  const auto r = run_script(*fir, target.value().prediction.configuration_script);
  EXPECT_TRUE(r.ok()) << r.last_run.detail;
  EXPECT_NE(r.last_run.output.find("ranks"), std::string::npos);
}

TEST(Batch, SubmitRunsBodyInFreshShell) {
  auto s = make_site("india");
  const auto path = compile_hello(*s, MpiImpl::kOpenMpi, CompilerFamily::kGnu);
  site::BatchScript job;
  job.kind = site::BatchKind::kPbs;  // India runs PBS
  job.job_name = "hello";
  job.nodes = 1;
  job.tasks_per_node = 4;
  job.commands = {"module load openmpi/1.4-gnu", "mpiexec -n 4 " + path};
  const auto result = submit_batch_job(*s, job);
  EXPECT_TRUE(result.success()) << (result.script.errors.empty()
                                        ? result.script.last_run.detail
                                        : result.script.errors.front());
  EXPECT_FALSE(result.job_id.empty());
  EXPECT_LT(result.queue_wait_seconds, 60);  // debug queue
  // The job's module load did not leak into the login shell.
  EXPECT_TRUE(s->loaded_modules().empty());
}

TEST(Batch, WrongDialectRejected) {
  auto s = make_site("india");  // PBS site
  site::BatchScript job;
  job.kind = site::BatchKind::kSlurm;
  job.commands = {"export X=1"};
  const auto result = submit_batch_job(*s, job);
  EXPECT_FALSE(result.success());
  EXPECT_FALSE(result.script.errors.empty());
}

TEST(Batch, RangerRunsSge) {
  auto s = make_site("ranger");
  site::BatchScript job;
  job.kind = site::BatchKind::kSge;
  job.commands = {"export X=1"};
  EXPECT_TRUE(submit_batch_job(*s, job).success());
}

TEST(Batch, DeterministicJobIds) {
  auto a = make_site("india");
  auto b = make_site("india");
  site::BatchScript job;
  job.kind = site::BatchKind::kPbs;
  job.commands = {"export X=1"};
  EXPECT_EQ(submit_batch_job(*a, job).job_id, submit_batch_job(*b, job).job_id);
}

}  // namespace
}  // namespace feam::toolchain
