// Verifies the five sites encode the paper's Table II faithfully.
#include <gtest/gtest.h>

#include "toolchain/testbed.hpp"

namespace feam::toolchain {
namespace {

using site::CompilerFamily;
using site::MpiImpl;
using support::Version;

TEST(Testbed, FiveSitesInTableOrder) {
  EXPECT_EQ(testbed_site_names(),
            (std::vector<std::string>{"ranger", "forge", "blacklight", "india",
                                      "fir"}));
  EXPECT_EQ(make_testbed().size(), 5u);
}

TEST(Testbed, UnknownSiteThrows) {
  EXPECT_THROW((void)make_site("stampede"), std::invalid_argument);
}

struct SiteExpectation {
  const char* name;
  const char* distro;
  const char* clib;
  const char* system_type;
  int cpu_count;
  std::size_t stack_count;
};

class TestbedTableTest : public ::testing::TestWithParam<SiteExpectation> {};

TEST_P(TestbedTableTest, MatchesTableTwo) {
  const auto& expected = GetParam();
  const auto s = make_site(expected.name);
  EXPECT_NE(s->os_distro.find(expected.distro), std::string::npos);
  EXPECT_EQ(s->clib_version, Version::of(expected.clib));
  EXPECT_EQ(s->system_type, expected.system_type);
  EXPECT_EQ(s->cpu_count, expected.cpu_count);
  EXPECT_EQ(s->stacks.size(), expected.stack_count);
  EXPECT_EQ(s->isa, elf::Isa::kX86_64);
}

INSTANTIATE_TEST_SUITE_P(
    TableTwo, TestbedTableTest,
    ::testing::Values(
        SiteExpectation{"ranger", "CentOS", "2.3.4", "MPP", 62976, 6},
        SiteExpectation{"forge", "Red Hat", "2.12", "Hybrid", 576, 3},
        SiteExpectation{"blacklight", "SUSE", "2.11.1", "SMP", 4096, 2},
        SiteExpectation{"india", "Red Hat", "2.5", "Cluster", 920, 6},
        SiteExpectation{"fir", "CentOS", "2.5", "Cluster", 1496, 9}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

TEST(Testbed, MpiAvailabilityPerPaper) {
  // "Open MPI is available at five sites, MVAPICH2 is available at four
  // sites, and MPICH2 is available at two sites."
  int openmpi = 0, mvapich2 = 0, mpich2 = 0;
  for (const auto& s : make_testbed()) {
    const auto has = [&](MpiImpl impl) {
      return std::any_of(s->stacks.begin(), s->stacks.end(),
                         [&](const auto& st) { return st.impl == impl; });
    };
    openmpi += has(MpiImpl::kOpenMpi);
    mvapich2 += has(MpiImpl::kMvapich2);
    mpich2 += has(MpiImpl::kMpich2);
  }
  EXPECT_EQ(openmpi, 5);
  EXPECT_EQ(mvapich2, 4);
  EXPECT_EQ(mpich2, 2);
}

TEST(Testbed, RangerStacksAndCompilers) {
  const auto s = make_site("ranger");
  EXPECT_NE(s->find_stack(MpiImpl::kOpenMpi, CompilerFamily::kPgi), nullptr);
  EXPECT_NE(s->find_stack(MpiImpl::kMvapich2, CompilerFamily::kGnu), nullptr);
  EXPECT_EQ(s->find_stack(MpiImpl::kMpich2, CompilerFamily::kGnu), nullptr);
  const auto* openmpi = s->find_stack(MpiImpl::kOpenMpi, CompilerFamily::kIntel);
  ASSERT_NE(openmpi, nullptr);
  EXPECT_EQ(openmpi->version, Version::of("1.3"));
  EXPECT_EQ(openmpi->compiler_version, Version::of("10.1"));
}

TEST(Testbed, ForgeUsesSoftEnv) {
  const auto s = make_site("forge");
  EXPECT_EQ(s->user_env_tool, site::UserEnvTool::kSoftEnv);
  EXPECT_TRUE(s->vfs.exists("/usr/bin/soft"));
  EXPECT_FALSE(s->vfs.exists("/usr/bin/modulecmd"));
  // MVAPICH2 only with Intel at Forge.
  EXPECT_NE(s->find_stack(MpiImpl::kMvapich2, CompilerFamily::kIntel), nullptr);
  EXPECT_EQ(s->find_stack(MpiImpl::kMvapich2, CompilerFamily::kGnu), nullptr);
}

TEST(Testbed, IndiaHasMisconfiguredStack) {
  const auto s = make_site("india");
  const auto* broken = s->find_stack(MpiImpl::kMvapich2, CompilerFamily::kGnu);
  ASSERT_NE(broken, nullptr);
  EXPECT_TRUE(broken->advertised);
  EXPECT_FALSE(broken->functional);
  const auto* working = s->find_stack(MpiImpl::kMvapich2, CompilerFamily::kIntel);
  ASSERT_NE(working, nullptr);
  EXPECT_TRUE(working->functional);
}

TEST(Testbed, ModuleFilesRegisteredForAdvertisedStacks) {
  const auto s = make_site("fir");
  EXPECT_EQ(s->module_files.size(), s->stacks.size());
  const auto modules = s->available_modules();
  EXPECT_NE(std::find(modules.begin(), modules.end(), "mvapich2/1.7a-pgi"),
            modules.end());
}

TEST(Testbed, FaultSeedZeroDisablesSystemErrors) {
  const auto quiet = make_site("india", 0);
  EXPECT_EQ(quiet->system_error_rate, 0.0);
  const auto noisy = make_site("india", 42);
  EXPECT_GT(noisy->system_error_rate, 0.0);
}

TEST(Testbed, SitesAreIndependentInstances) {
  auto a = make_site("india");
  auto b = make_site("india");
  a->vfs.write_file("/home/user/scratch", "x");
  EXPECT_FALSE(b->vfs.exists("/home/user/scratch"));
}

}  // namespace
}  // namespace feam::toolchain
