#include "toolchain/linker.hpp"

#include <gtest/gtest.h>

#include "elf/file.hpp"
#include "toolchain/glibc.hpp"
#include "toolchain/loader.hpp"
#include "toolchain/testbed.hpp"

namespace feam::toolchain {
namespace {

using site::CompilerFamily;
using support::Version;

const site::MpiStackInstall& stack_of(const site::Site& s, site::MpiImpl impl,
                                      CompilerFamily fam) {
  const auto* found = s.find_stack(impl, fam);
  EXPECT_NE(found, nullptr);
  return *found;
}

ProgramSource fortran_app() {
  ProgramSource p;
  p.name = "cg.B";
  p.language = Language::kFortran;
  p.libc_features = {"base", "stdio", "math", "affinity"};
  p.text_size = 160 * 1024;
  return p;
}

elf::ElfFile compile_and_parse(site::Site& s, const ProgramSource& p,
                               const site::MpiStackInstall& stack) {
  const auto r = compile_mpi_program(s, p, stack, "/home/user/" + p.name);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error());
  const auto* data = s.vfs.read(r.value());
  EXPECT_NE(data, nullptr);
  auto parsed = elf::ElfFile::parse(*data);
  EXPECT_TRUE(parsed.ok());
  return std::move(parsed).take();
}

TEST(Linker, FortranOpenMpiNeededSet) {
  auto s = make_site("india");
  const auto f = compile_and_parse(
      *s, fortran_app(), stack_of(*s, site::MpiImpl::kOpenMpi,
                                  CompilerFamily::kGnu));
  const auto& needed = f.needed();
  const auto has = [&](std::string_view name) {
    return std::find(needed.begin(), needed.end(), name) != needed.end();
  };
  EXPECT_TRUE(has("libmpi.so.0"));
  EXPECT_TRUE(has("libmpi_f77.so.0"));
  EXPECT_TRUE(has("libnsl.so.1"));
  EXPECT_TRUE(has("libutil.so.1"));
  EXPECT_TRUE(has("libgfortran.so.1"));  // gcc 4.1.2 at India
  EXPECT_TRUE(has("libm.so.6"));
  EXPECT_TRUE(has("libc.so.6"));
  EXPECT_FALSE(has("libmpich.so.1.2"));
}

TEST(Linker, GlibcRefsCappedByBuildSite) {
  // The same source compiled at Forge (2.12) and India (2.5) yields
  // different required C library versions — the paper's III.C point.
  ProgramSource p;
  p.name = "needs_pipe2";
  p.language = Language::kC;
  p.libc_features = {"base", "stdio", "pipe2"};  // pipe2 -> GLIBC_2.9

  auto forge = make_site("forge");
  auto india = make_site("india");
  const auto max_ref = [](const elf::ElfFile& f) {
    Version newest;
    for (const auto& need : f.version_references()) {
      for (const auto& v : need.versions) {
        if (const auto parsed = parse_glibc_version(v)) {
          if (*parsed > newest) newest = *parsed;
        }
      }
    }
    return newest;
  };
  const auto at_forge = compile_and_parse(
      *forge, p, stack_of(*forge, site::MpiImpl::kOpenMpi, CompilerFamily::kGnu));
  const auto at_india = compile_and_parse(
      *india, p, stack_of(*india, site::MpiImpl::kOpenMpi, CompilerFamily::kGnu));
  EXPECT_EQ(max_ref(at_forge), Version::of("2.9"));
  // gcc 4.1.2 at India adds ssp (2.4); pipe2 is unavailable there.
  EXPECT_EQ(max_ref(at_india), Version::of("2.4"));
}

TEST(Linker, CommentsCarryBuildEnvironment) {
  auto s = make_site("ranger");
  const auto f = compile_and_parse(
      *s, fortran_app(), stack_of(*s, site::MpiImpl::kOpenMpi,
                                  CompilerFamily::kGnu));
  ASSERT_EQ(f.comments().size(), 2u);
  EXPECT_NE(f.comments()[0].find("GCC: (GNU) 3.4.6"), std::string::npos);
  EXPECT_NE(f.comments()[0].find("CentOS 4.9"), std::string::npos);
  EXPECT_NE(f.comments()[1].find("glibc 2.3.4"), std::string::npos);
}

TEST(Linker, AbiNoteIdentifiesStack) {
  auto s = make_site("forge");
  const auto f = compile_and_parse(
      *s, fortran_app(), stack_of(*s, site::MpiImpl::kMvapich2,
                                  CompilerFamily::kIntel));
  ASSERT_TRUE(f.abi_note().has_value());
  EXPECT_EQ(f.abi_note()->compiler_family, "Intel");
  EXPECT_EQ(f.abi_note()->compiler_version, "12");
  EXPECT_EQ(f.abi_note()->mpi_impl, "mvapich2");
  EXPECT_EQ(f.abi_note()->mpi_version, "1.7rc1");
}

TEST(Linker, FailsWithoutCompilerOrStack) {
  auto s = make_site("india");  // no PGI at India
  site::MpiStackInstall pgi_stack;
  pgi_stack.impl = site::MpiImpl::kOpenMpi;
  pgi_stack.version = Version::of("1.4");
  pgi_stack.compiler = CompilerFamily::kPgi;
  pgi_stack.compiler_version = Version::of("10.9");
  const auto r = compile_mpi_program(*s, fortran_app(), pgi_stack, "/tmp/x");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("PGI compiler not installed"), std::string::npos);

  // Stack from another site is not installed here either.
  auto fir = make_site("fir");
  const auto& foreign =
      stack_of(*fir, site::MpiImpl::kMpich2, CompilerFamily::kGnu);
  const auto r2 = compile_mpi_program(*s, fortran_app(), foreign, "/tmp/y");
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.error().find("not installed"), std::string::npos);
}

TEST(Linker, PgiRejectsCxx) {
  auto s = make_site("fir");
  ProgramSource lammps;
  lammps.name = "126.lammps";
  lammps.language = Language::kCxx;
  const auto r = compile_mpi_program(
      *s, lammps, stack_of(*s, site::MpiImpl::kOpenMpi, CompilerFamily::kPgi),
      "/tmp/lammps");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("cannot compile C++"), std::string::npos);
}

TEST(Linker, SerialProgramHasNoMpiLibs) {
  auto s = make_site("india");
  ProgramSource p;
  p.name = "serial_tool";
  p.language = Language::kC;
  p.uses_mpi = false;
  const auto r =
      compile_serial_program(*s, p, CompilerFamily::kGnu, "/home/user/st");
  ASSERT_TRUE(r.ok()) << r.error();
  const auto parsed = elf::ElfFile::parse(*s->vfs.read(r.value()));
  ASSERT_TRUE(parsed.ok());
  for (const auto& needed : parsed.value().needed()) {
    EXPECT_EQ(needed.find("libmpi"), std::string::npos) << needed;
  }
}

TEST(Linker, HelloWorldSources) {
  const auto c = mpi_hello_world(Language::kC);
  const auto f = mpi_hello_world(Language::kFortran);
  EXPECT_EQ(c.name, "hello_mpi_c");
  EXPECT_EQ(f.name, "hello_mpi_f");
  EXPECT_LT(c.text_size, 64u * 1024u);  // tiny, debug-queue friendly
}

TEST(Linker, RpathEmbeddingWrappers) {
  // bluefire's Open MPI wrappers embed DT_RPATH: the binary's libraries
  // resolve with no module loaded at all.
  auto s = make_site("bluefire");
  const auto* stack = s->find_stack(site::MpiImpl::kOpenMpi,
                                    CompilerFamily::kGnu);
  ASSERT_TRUE(stack->wrappers_embed_rpath);
  ProgramSource p;
  p.name = "solver";
  p.language = Language::kC;
  const auto compiled = compile_mpi_program(*s, p, *stack, "/home/user/solver");
  ASSERT_TRUE(compiled.ok());
  const auto parsed = elf::ElfFile::parse(*s->vfs.read(compiled.value()));
  ASSERT_TRUE(parsed.ok());
  const std::string expected_rpath = stack->prefix + "/lib";
  EXPECT_EQ(parsed.value().rpath(),
            (std::vector<std::string_view>{expected_rpath}));
  // Loads without any module (RPATH precedes everything).
  const auto report = load_binary(*s, compiled.value());
  EXPECT_EQ(report.status, LoadStatus::kOk) << report.detail;
  EXPECT_EQ(report.resolution.path_of("libmpi.so.0"),
            s->vfs.resolve(stack->prefix + "/lib/libmpi.so.0"));
}

TEST(Linker, NoRpathWithoutWrapperConfiguration) {
  auto s = make_site("india");
  const auto* stack = s->find_stack(site::MpiImpl::kOpenMpi,
                                    CompilerFamily::kGnu);
  ASSERT_FALSE(stack->wrappers_embed_rpath);
  ProgramSource p;
  p.name = "solver";
  p.language = Language::kC;
  const auto compiled = compile_mpi_program(*s, p, *stack, "/home/user/solver");
  ASSERT_TRUE(compiled.ok());
  const auto parsed = elf::ElfFile::parse(*s->vfs.read(compiled.value()));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().rpath().empty());
}

TEST(Linker, DeterministicOutput) {
  auto s1 = make_site("india");
  auto s2 = make_site("india");
  const auto& stack1 = stack_of(*s1, site::MpiImpl::kOpenMpi, CompilerFamily::kGnu);
  const auto& stack2 = stack_of(*s2, site::MpiImpl::kOpenMpi, CompilerFamily::kGnu);
  ASSERT_TRUE(compile_mpi_program(*s1, fortran_app(), stack1, "/out").ok());
  ASSERT_TRUE(compile_mpi_program(*s2, fortran_app(), stack2, "/out").ok());
  EXPECT_EQ(*s1->vfs.read("/out"), *s2->vfs.read("/out"));
}

}  // namespace
}  // namespace feam::toolchain
