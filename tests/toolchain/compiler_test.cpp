#include "toolchain/compiler.hpp"

#include <gtest/gtest.h>

#include "support/version.hpp"

namespace feam::toolchain {
namespace {

using site::CompilerFamily;
using support::Version;

CompilerModel gnu(const char* v) {
  return CompilerModel(CompilerFamily::kGnu, Version::of(v));
}
CompilerModel intel(const char* v) {
  return CompilerModel(CompilerFamily::kIntel, Version::of(v));
}
CompilerModel pgi(const char* v) {
  return CompilerModel(CompilerFamily::kPgi, Version::of(v));
}

bool has(const std::vector<std::string>& libs, std::string_view name) {
  return std::find(libs.begin(), libs.end(), name) != libs.end();
}

TEST(Compiler, GnuFortranRuntimeGenerations) {
  EXPECT_TRUE(has(gnu("3.4.6").runtime_sonames(Language::kFortran), "libg2c.so.0"));
  EXPECT_TRUE(has(gnu("4.1.2").runtime_sonames(Language::kFortran),
                  "libgfortran.so.1"));
  EXPECT_TRUE(has(gnu("4.4.5").runtime_sonames(Language::kFortran),
                  "libgfortran.so.3"));
  EXPECT_TRUE(has(gnu("4.4.3").runtime_sonames(Language::kFortran),
                  "libgfortran.so.3"));
}

TEST(Compiler, GnuCxxRuntimeGenerations) {
  EXPECT_TRUE(has(gnu("3.4.6").runtime_sonames(Language::kCxx), "libstdc++.so.5"));
  EXPECT_TRUE(has(gnu("4.4.5").runtime_sonames(Language::kCxx), "libstdc++.so.6"));
}

TEST(Compiler, IntelRuntimeSet) {
  const auto c = intel("12").runtime_sonames(Language::kC);
  EXPECT_TRUE(has(c, "libimf.so"));
  EXPECT_TRUE(has(c, "libintlc.so.5"));
  EXPECT_TRUE(has(c, "libsvml.so"));
  const auto f = intel("10.1").runtime_sonames(Language::kFortran);
  EXPECT_TRUE(has(f, "libifcore.so.5"));  // stable across Intel 9-12
  EXPECT_TRUE(has(f, "libifport.so.5"));
}

TEST(Compiler, PgiRuntimeSet) {
  const auto f = pgi("7.2").runtime_sonames(Language::kFortran);
  EXPECT_TRUE(has(f, "libpgc.so"));
  EXPECT_TRUE(has(f, "libpgf90.so"));
  EXPECT_TRUE(has(f, "libpgftnrtl.so"));
}

TEST(Compiler, PgiCannotBuildCxx) {
  EXPECT_FALSE(pgi("10.9").supports(Language::kCxx));
  EXPECT_TRUE(pgi("10.9").supports(Language::kC));
  EXPECT_TRUE(pgi("10.9").supports(Language::kFortran));
  EXPECT_TRUE(gnu("4.4.5").supports(Language::kCxx));
  EXPECT_TRUE(intel("12").supports(Language::kCxx));
}

TEST(Compiler, StackProtectorEmission) {
  EXPECT_FALSE(gnu("3.4.6").emits_stack_protector());
  EXPECT_TRUE(gnu("4.1.2").emits_stack_protector());
  EXPECT_TRUE(gnu("4.4.5").emits_stack_protector());
  EXPECT_FALSE(intel("10.1").emits_stack_protector());
  EXPECT_TRUE(intel("11.1").emits_stack_protector());
  EXPECT_TRUE(intel("12").emits_stack_protector());
  EXPECT_FALSE(pgi("10.9").emits_stack_protector());
}

TEST(Compiler, FingerprintStableWithinRuntimeGeneration) {
  // Intel 11.1 and 12 share runtime sonames -> same ABI fingerprint; that
  // is why Intel binaries cross-run between India/Blacklight and Forge/Fir.
  EXPECT_EQ(intel("11.1").abi_fingerprint(Language::kFortran),
            intel("12").abi_fingerprint(Language::kFortran));
  // GNU 4.1 vs 4.4 differ (libgfortran generation changed).
  EXPECT_NE(gnu("4.1.2").abi_fingerprint(Language::kFortran),
            gnu("4.4.5").abi_fingerprint(Language::kFortran));
  // PGI changes fingerprints per major even with identical sonames.
  EXPECT_NE(pgi("7.2").abi_fingerprint(Language::kFortran),
            pgi("10.9").abi_fingerprint(Language::kFortran));
}

TEST(Compiler, FpModel) {
  EXPECT_EQ(gnu("4.4.5").fp_model(), 1u);
  EXPECT_EQ(intel("12").fp_model(), 1u);
  EXPECT_NE(pgi("7.2").fp_model(), pgi("10.9").fp_model());
  EXPECT_NE(pgi("7.2").fp_model(), 1u);
}

TEST(Compiler, InstallPrefix) {
  EXPECT_EQ(gnu("4.4.5").install_prefix(), "");  // system compiler
  EXPECT_EQ(intel("12").install_prefix(), "/opt/intel-12");
  EXPECT_EQ(pgi("10.9").install_prefix(), "/opt/pgi-10.9");
}

TEST(Compiler, BannersIdentifyFamily) {
  EXPECT_NE(gnu("4.4.5").version_banner().find("gcc"), std::string::npos);
  EXPECT_NE(intel("12").version_banner().find("Intel"), std::string::npos);
  EXPECT_NE(pgi("10.9").version_banner().find("pgcc"), std::string::npos);
  EXPECT_NE(gnu("4.1.2").comment_string().find("GCC: (GNU) 4.1.2"),
            std::string::npos);
}

TEST(Compiler, LanguageNames) {
  EXPECT_STREQ(language_name(Language::kC), "C");
  EXPECT_STREQ(language_name(Language::kCxx), "C++");
  EXPECT_STREQ(language_name(Language::kFortran), "Fortran");
}

}  // namespace
}  // namespace feam::toolchain
