// The ISA determinant end-to-end, using the big-endian ppc64 demonstration
// site: provisioning, discovery, compilation, migration, and prediction
// all run through the ELF big-endian code paths.
#include <gtest/gtest.h>

#include "binutils/uname.hpp"
#include "elf/file.hpp"
#include "feam/phases.hpp"
#include "toolchain/launcher.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

namespace feam::toolchain {
namespace {

using site::CompilerFamily;
using site::MpiImpl;

ProgramSource app() {
  ProgramSource p;
  p.name = "solver";
  p.language = Language::kC;
  p.libc_features = {"base", "stdio", "math"};
  return p;
}

TEST(IsaHeterogeneity, Ppc64SiteProvisionsBigEndianLibraries) {
  auto bluefire = make_site("bluefire");
  EXPECT_EQ(binutils::uname_p(*bluefire), "ppc64");
  const auto* libc = bluefire->vfs.read("/lib64/libc.so.6");
  ASSERT_NE(libc, nullptr);
  const auto parsed = elf::ElfFile::parse(*libc);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().isa(), elf::Isa::kPpc64);
  EXPECT_EQ(parsed.value().endian(), support::Endian::kBig);
  EXPECT_TRUE(bluefire->vfs.exists("/lib64/ld64.so.1"));
}

TEST(IsaHeterogeneity, NativeCompileAndRunOnPpc64) {
  auto bluefire = make_site("bluefire");
  const auto* stack =
      bluefire->find_stack(MpiImpl::kOpenMpi, CompilerFamily::kGnu);
  ASSERT_NE(stack, nullptr);
  const auto compiled =
      compile_mpi_program(*bluefire, app(), *stack, "/home/user/solver");
  ASSERT_TRUE(compiled.ok()) << compiled.error();
  bluefire->load_module("openmpi/1.4-gnu");
  const auto run = mpiexec_with_retries(*bluefire, compiled.value(), 8);
  EXPECT_TRUE(run.success()) << run.detail;
}

TEST(IsaHeterogeneity, X86BinaryRejectedAtPpc64Site) {
  auto india = make_site("india");
  const auto* stack = india->find_stack(MpiImpl::kOpenMpi, CompilerFamily::kGnu);
  const auto compiled =
      compile_mpi_program(*india, app(), *stack, "/home/user/solver");
  ASSERT_TRUE(compiled.ok());

  auto bluefire = make_site("bluefire");
  bluefire->vfs.write_file("/home/user/solver", *india->vfs.read(compiled.value()));

  // Prediction: the ISA determinant fails and later determinants are
  // skipped (paper V.C ordering).
  const auto result = feam::run_target_phase(*bluefire, "/home/user/solver");
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_FALSE(result.value().prediction.ready);
  const auto* isa =
      result.value().prediction.determinant(feam::DeterminantKind::kIsa);
  EXPECT_FALSE(isa->compatible);
  EXPECT_FALSE(result.value()
                   .prediction.determinant(feam::DeterminantKind::kMpiStack)
                   ->evaluated);

  // Execution agrees.
  bluefire->load_module("openmpi/1.4-gnu");
  const auto run = mpiexec_with_retries(*bluefire, "/home/user/solver", 8);
  EXPECT_EQ(run.status, RunStatus::kExecFormatError);
}

TEST(IsaHeterogeneity, Ppc64BinaryRejectedAtX86Sites) {
  auto bluefire = make_site("bluefire");
  const auto* stack =
      bluefire->find_stack(MpiImpl::kOpenMpi, CompilerFamily::kGnu);
  const auto compiled =
      compile_mpi_program(*bluefire, app(), *stack, "/home/user/solver");
  ASSERT_TRUE(compiled.ok());

  for (const char* target_name : {"india", "forge"}) {
    auto target = make_site(target_name);
    target->vfs.write_file("/home/user/solver",
                           *bluefire->vfs.read(compiled.value()));
    const auto result = feam::run_target_phase(*target, "/home/user/solver");
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result.value().prediction.ready) << target_name;
    EXPECT_FALSE(result.value()
                     .prediction.determinant(feam::DeterminantKind::kIsa)
                     ->compatible)
        << target_name;
  }
}

TEST(IsaHeterogeneity, BigEndianBundleTravels) {
  // Source phase at the ppc64 site round-trips big-endian library copies.
  auto bluefire = make_site("bluefire");
  const auto* stack =
      bluefire->find_stack(MpiImpl::kOpenMpi, CompilerFamily::kGnu);
  const auto compiled =
      compile_mpi_program(*bluefire, app(), *stack, "/home/user/solver");
  ASSERT_TRUE(compiled.ok());
  bluefire->load_module("openmpi/1.4-gnu");
  const auto source = feam::run_source_phase(*bluefire, compiled.value());
  ASSERT_TRUE(source.ok()) << source.error();
  EXPECT_GE(source.value().bundle.libraries.size(), 4u);
  for (const auto& lib : source.value().bundle.libraries) {
    const auto parsed = elf::ElfFile::parse(lib.content);
    ASSERT_TRUE(parsed.ok()) << lib.name;
    EXPECT_EQ(parsed.value().isa(), elf::Isa::kPpc64) << lib.name;
  }
}

}  // namespace
}  // namespace feam::toolchain
