#include "toolchain/launcher.hpp"

#include <gtest/gtest.h>

#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

namespace feam::toolchain {
namespace {

using site::CompilerFamily;
using site::MpiImpl;

std::string compile_at(site::Site& s, MpiImpl impl, CompilerFamily fam,
                       const ProgramSource& p, const std::string& out) {
  const auto* stack = s.find_stack(impl, fam);
  EXPECT_NE(stack, nullptr);
  const auto r = compile_mpi_program(s, p, *stack, out);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error());
  return r.value();
}

ProgramSource fortran_app() {
  ProgramSource p;
  p.name = "ft_app";
  p.language = Language::kFortran;
  p.libc_features = {"base", "stdio", "math"};
  return p;
}

TEST(Launcher, NoStackSelected) {
  auto s = make_site("india");
  const auto path = compile_at(*s, MpiImpl::kOpenMpi, CompilerFamily::kGnu,
                               mpi_hello_world(Language::kC), "/home/user/h");
  const auto r = mpiexec(*s, path, 4);
  EXPECT_EQ(r.status, RunStatus::kNoMpiStackSelected);
}

TEST(Launcher, SuccessUnderMatchingModule) {
  auto s = make_site("india");
  const auto path = compile_at(*s, MpiImpl::kOpenMpi, CompilerFamily::kGnu,
                               mpi_hello_world(Language::kC), "/home/user/h");
  s->load_module("openmpi/1.4-gnu");
  const auto r = mpiexec(*s, path, 4);
  EXPECT_TRUE(r.success()) << r.detail;
  EXPECT_NE(r.output.find("4 ranks"), std::string::npos);
}

TEST(Launcher, MisconfiguredStackFailsEverything) {
  // India's mvapich2/gnu combination is the paper's "advertised but not
  // usable" case.
  auto s = make_site("india");
  const auto path = compile_at(*s, MpiImpl::kMvapich2, CompilerFamily::kGnu,
                               mpi_hello_world(Language::kC), "/home/user/h");
  s->load_module("mvapich2/1.7a2-gnu");
  const auto r = mpiexec(*s, path, 4);
  EXPECT_EQ(r.status, RunStatus::kStackNotFunctional);
}

TEST(Launcher, WrongImplementationMissesLibraries) {
  // An Open MPI binary under an MPICH2 module: libmpi.so.0 is nowhere on
  // the path — the link-level incompatibility of the paper's III.B.
  auto s = make_site("india");
  const auto path = compile_at(*s, MpiImpl::kOpenMpi, CompilerFamily::kGnu,
                               mpi_hello_world(Language::kC), "/home/user/h");
  s->load_module("mpich2/1.4-gnu");
  const auto r = mpiexec(*s, path, 4);
  EXPECT_EQ(r.status, RunStatus::kMissingLibrary);
  EXPECT_NE(r.detail.find("libmpi.so.0"), std::string::npos);
}

TEST(Launcher, FortranCompilerFamilyMismatchIsFpException) {
  // GNU-compiled Fortran binary run under an Intel-built stack of the same
  // implementation: the binding library ABI breaks.
  auto india = make_site("india");
  const auto path = compile_at(*india, MpiImpl::kOpenMpi, CompilerFamily::kGnu,
                               fortran_app(), "/home/user/f");
  auto forge = make_site("forge");
  forge->vfs.write_file("/home/user/f", *india->vfs.read(path));
  forge->load_module("openmpi/1.4-intel");
  // The GNU fortran runtime the binary needs exists at Forge (compat), so
  // loading succeeds and the failure is a run-time ABI break.
  const auto r = mpiexec(*forge, "/home/user/f", 4);
  EXPECT_EQ(r.status, RunStatus::kFpException) << r.detail;
}

TEST(Launcher, SameFamilyCrossSiteFortranWorks) {
  // Intel 11.1 (India) -> Intel 12 (Fir): same runtime generation.
  auto india = make_site("india");
  const auto path = compile_at(*india, MpiImpl::kOpenMpi, CompilerFamily::kIntel,
                               fortran_app(), "/home/user/f");
  auto fir = make_site("fir");
  fir->vfs.write_file("/home/user/f", *india->vfs.read(path));
  fir->load_module("openmpi/1.4-intel");
  const auto r = mpiexec(*fir, "/home/user/f", 4);
  EXPECT_TRUE(r.success()) << r.detail;
}

TEST(Launcher, PgiCrossMajorFortranFpException) {
  auto ranger = make_site("ranger");  // PGI 7.2
  const auto path = compile_at(*ranger, MpiImpl::kOpenMpi, CompilerFamily::kPgi,
                               fortran_app(), "/home/user/f");
  auto fir = make_site("fir");  // PGI 10.9, same sonames
  fir->vfs.write_file("/home/user/f", *ranger->vfs.read(path));
  fir->load_module("openmpi/1.4-pgi");
  const auto r = mpiexec(*fir, "/home/user/f", 4);
  EXPECT_EQ(r.status, RunStatus::kFpException) << r.detail;
}

TEST(Launcher, PgiCrossMajorCTolerated) {
  auto ranger = make_site("ranger");
  ProgramSource c_app;
  c_app.name = "c_app";
  c_app.language = Language::kC;
  const auto path = compile_at(*ranger, MpiImpl::kOpenMpi, CompilerFamily::kPgi,
                               c_app, "/home/user/c");
  auto fir = make_site("fir");
  fir->vfs.write_file("/home/user/c", *ranger->vfs.read(path));
  fir->load_module("openmpi/1.4-pgi");
  const auto r = mpiexec(*fir, "/home/user/c", 4);
  EXPECT_TRUE(r.success()) << r.detail;
}

TEST(Launcher, NewerMpiLineOnOlderFortranFails) {
  // OMPI 1.4 Fortran binary on Ranger's 1.3 stack: same soname libmpi.so.0,
  // newer release line. PGI 10.9 emits no stack-protector refs, so the
  // binary loads at Ranger's old glibc and dies on the MPI ABI break.
  auto fir = make_site("fir");
  const auto path = compile_at(*fir, MpiImpl::kOpenMpi, CompilerFamily::kPgi,
                               fortran_app(), "/home/user/f");
  auto ranger = make_site("ranger");
  ranger->vfs.write_file("/home/user/f", *fir->vfs.read(path));
  ranger->load_module("openmpi/1.3-pgi");
  const auto r = mpiexec(*ranger, "/home/user/f", 4);
  EXPECT_EQ(r.status, RunStatus::kFpException) << r.detail;
  EXPECT_NE(r.detail.find("built against openmpi 1.4"), std::string::npos)
      << r.detail;
}

TEST(Launcher, ModernCompilerBinariesHitVersionErrorAtRanger) {
  // Intel 11.1 emits __stack_chk_fail@GLIBC_2.4; Ranger's 2.3.4 lacks that
  // node. A C binary's libraries all resolve (Intel runtime sonames are
  // stable), so the failure is precisely the version error.
  auto india = make_site("india");
  ProgramSource c_app;
  c_app.name = "c_app";
  c_app.language = Language::kC;
  const auto path = compile_at(*india, MpiImpl::kOpenMpi, CompilerFamily::kIntel,
                               c_app, "/home/user/c");
  auto ranger = make_site("ranger");
  ranger->vfs.write_file("/home/user/c", *india->vfs.read(path));
  ranger->load_module("openmpi/1.3-intel");
  const auto r = mpiexec(*ranger, "/home/user/c", 4);
  EXPECT_EQ(r.status, RunStatus::kVersionError) << r.detail;
  EXPECT_NE(r.detail.find("GLIBC_2.4"), std::string::npos) << r.detail;
}

TEST(Launcher, PreReleaseTagsShareAbi) {
  // India's MVAPICH2 1.7a2 binaries run on Fir's 1.7a (same numeric line).
  auto india = make_site("india");
  const auto path = compile_at(*india, MpiImpl::kMvapich2, CompilerFamily::kIntel,
                               fortran_app(), "/home/user/f");
  auto fir = make_site("fir");
  fir->vfs.write_file("/home/user/f", *india->vfs.read(path));
  fir->load_module("mvapich2/1.7a-intel");
  const auto r = mpiexec(*fir, "/home/user/f", 4);
  EXPECT_TRUE(r.success()) << r.detail;
}

TEST(Launcher, RunSerialPrintsLibcBanner) {
  auto s = make_site("india");
  const auto r = run_serial(*s, "/lib64/libc.so.6");
  ASSERT_TRUE(r.success());
  EXPECT_NE(r.output.find("release version 2.5"), std::string::npos);
}

TEST(Launcher, LibcNotExecutableFails) {
  auto s = make_site("india");
  s->libc_executable = false;
  const auto r = run_serial(*s, "/lib64/libc.so.6");
  EXPECT_FALSE(r.success());
}

TEST(Launcher, FaultsAreDeterministicPerBinary) {
  auto a = make_site("india", /*fault_seed=*/1234);
  auto b = make_site("india", /*fault_seed=*/1234);
  const auto pa = compile_at(*a, MpiImpl::kOpenMpi, CompilerFamily::kGnu,
                             mpi_hello_world(Language::kC), "/home/user/h");
  const auto pb = compile_at(*b, MpiImpl::kOpenMpi, CompilerFamily::kGnu,
                             mpi_hello_world(Language::kC), "/home/user/h");
  a->load_module("openmpi/1.4-gnu");
  b->load_module("openmpi/1.4-gnu");
  for (int attempt = 0; attempt < 8; ++attempt) {
    EXPECT_EQ(mpiexec(*a, pa, 4, {}, attempt).status,
              mpiexec(*b, pb, 4, {}, attempt).status);
  }
}

TEST(Launcher, RetriesAbsorbTransientFaultsOnly) {
  // With the fault model off, retries never change a deterministic failure.
  auto s = make_site("india");
  const auto path = compile_at(*s, MpiImpl::kOpenMpi, CompilerFamily::kGnu,
                               mpi_hello_world(Language::kC), "/home/user/h");
  s->load_module("mpich2/1.4-gnu");
  const auto r = mpiexec_with_retries(*s, path, 4, {}, 5);
  EXPECT_EQ(r.status, RunStatus::kMissingLibrary);
}

TEST(Launcher, StatusNames) {
  EXPECT_STREQ(run_status_name(RunStatus::kSuccess), "success");
  EXPECT_STREQ(run_status_name(RunStatus::kFpException),
               "floating point exception");
  EXPECT_STREQ(run_status_name(RunStatus::kStackNotFunctional),
               "MPI stack not functional");
}

}  // namespace
}  // namespace feam::toolchain
