#include "toolchain/glibc.hpp"

#include <gtest/gtest.h>

namespace feam::toolchain {
namespace {

using support::Version;

TEST(Glibc, NodesAscending) {
  const auto& nodes = glibc_version_nodes();
  ASSERT_GE(nodes.size(), 10u);
  EXPECT_EQ(nodes.front().str(), "2.2.5");  // x86-64 base node
  EXPECT_EQ(nodes.back().str(), "2.12");
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LT(nodes[i - 1], nodes[i]);
  }
}

TEST(Glibc, NodesUpToRelease) {
  // Ranger's 2.3.4 defines five nodes; Forge's 2.12 defines all of them.
  const auto ranger = glibc_nodes_up_to(Version::of("2.3.4"));
  EXPECT_EQ(ranger, (std::vector<std::string>{"GLIBC_2.2.5", "GLIBC_2.3",
                                              "GLIBC_2.3.2", "GLIBC_2.3.3",
                                              "GLIBC_2.3.4"}));
  EXPECT_EQ(glibc_nodes_up_to(Version::of("2.12")).size(),
            glibc_version_nodes().size());
  const auto india = glibc_nodes_up_to(Version::of("2.5"));
  EXPECT_EQ(india.back(), "GLIBC_2.5");
}

TEST(Glibc, FeatureCatalogNodes) {
  const auto ssp = find_libc_feature("ssp");
  ASSERT_TRUE(ssp.has_value());
  EXPECT_EQ(ssp->symbol, "__stack_chk_fail");
  EXPECT_EQ(ssp->node, Version::of("2.4"));
  EXPECT_EQ(find_libc_feature("recvmmsg")->node, Version::of("2.12"));
  EXPECT_EQ(find_libc_feature("base")->node, Version::of("2.2.5"));
  EXPECT_FALSE(find_libc_feature("no_such_feature").has_value());
}

TEST(Glibc, EveryFeatureNodeIsARealVersionNode) {
  const auto& nodes = glibc_version_nodes();
  for (const auto& feature : libc_feature_catalog()) {
    EXPECT_NE(std::find(nodes.begin(), nodes.end(), feature.node), nodes.end())
        << feature.key;
  }
}

TEST(Glibc, ParseVersionNode) {
  EXPECT_EQ(parse_glibc_version("GLIBC_2.3.4"), Version::of("2.3.4"));
  EXPECT_FALSE(parse_glibc_version("GFORTRAN_1.0").has_value());
  EXPECT_FALSE(parse_glibc_version("GLIBC_").has_value());
  EXPECT_FALSE(parse_glibc_version("").has_value());
}

TEST(Glibc, BannerRoundTrip) {
  for (const char* release : {"2.3.4", "2.5", "2.11.1", "2.12"}) {
    const std::string banner = glibc_banner(Version::of(release));
    const auto parsed = parse_glibc_banner(banner);
    ASSERT_TRUE(parsed.has_value()) << banner;
    EXPECT_EQ(*parsed, Version::of(release));
  }
  EXPECT_FALSE(parse_glibc_banner("Segmentation fault").has_value());
}

}  // namespace
}  // namespace feam::toolchain
