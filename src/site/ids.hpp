// Identifiers shared across the site model and the simulated toolchain:
// MPI implementations, compiler families, interconnects, batch systems and
// user-environment management tools — the axes of the paper's Table II.
#pragma once

#include <cstdint>
#include <string>

namespace feam::site {

// The three dominant open-source MPI implementations of the paper's era.
enum class MpiImpl : std::uint8_t { kOpenMpi, kMpich2, kMvapich2 };

enum class CompilerFamily : std::uint8_t { kGnu, kIntel, kPgi };

enum class Interconnect : std::uint8_t { kEthernet, kInfiniband };

// HPC resource managers named in the paper's related work.
enum class BatchKind : std::uint8_t { kPbs, kSge, kSlurm };

// User-environment management tools FEAM's EDC knows how to consult.
enum class UserEnvTool : std::uint8_t { kModules, kSoftEnv, kNone };

const char* mpi_impl_name(MpiImpl impl);          // "Open MPI"
const char* mpi_impl_slug(MpiImpl impl);          // "openmpi"
const char* compiler_name(CompilerFamily f);      // "Intel"
const char* compiler_slug(CompilerFamily f);      // "intel"
char compiler_letter(CompilerFamily f);           // 'i' (Table II notation)
const char* interconnect_name(Interconnect ic);   // "InfiniBand"
const char* batch_name(BatchKind b);              // "PBS"
const char* user_env_tool_name(UserEnvTool t);    // "Environment Modules"

}  // namespace feam::site
