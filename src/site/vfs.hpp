// In-memory POSIX-ish filesystem tree used to materialize computing sites.
//
// Supports regular files (byte content), directories, and symlinks —
// symlinks matter because real library directories are symlink farms
// (libmpi.so -> libmpi.so.0 -> libmpi.so.0.0.2) and FEAM's search methods
// (`ldd`, `find`, `locate`) all traverse them. Path syntax is absolute
// ("/usr/lib64/libc.so.6"); components "." and ".." are not supported
// (never produced by the toolchain).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "site/fault.hpp"
#include "support/byte_io.hpp"

namespace feam::site {

class Vfs {
 public:
  Vfs();
  // Movable so Sites can be returned by value during construction; moves
  // must not race with any other access (they only happen pre-concurrency).
  Vfs(Vfs&& other) noexcept;
  Vfs& operator=(Vfs&& other) noexcept;

  // --- mutation
  // Creates all intermediate directories; returns false if a path component
  // is an existing non-directory.
  bool mkdirs(std::string_view path);
  // Writes a regular file, creating parent directories. Overwrites.
  bool write_file(std::string_view path, support::Bytes content);
  bool write_file(std::string_view path, std::string_view text);
  // Creates a symlink at `path` pointing to `target` (absolute, or relative
  // to the link's directory). The target need not exist (dangling links are
  // legal and occur on misconfigured sites).
  bool symlink(std::string_view path, std::string_view target);
  // Removes a file, symlink, or (recursively) a directory.
  bool remove(std::string_view path);

  // --- query (all follow symlinks unless noted)
  //
  // Thread safety: the tree is internally synchronized (readers share,
  // mutators are exclusive), so any mix of concurrent calls is race-free.
  // The pointer read() returns stays valid until the *same path* is
  // rewritten or removed — callers coordinate that through subtree leases
  // (each job mutates only its own scratch subtree; system paths are
  // read-only while migrations run), not through the Vfs itself.
  bool exists(std::string_view path) const;
  bool is_dir(std::string_view path) const;
  bool is_file(std::string_view path) const;
  bool is_symlink(std::string_view path) const;  // does NOT follow
  // Content of a regular file; nullptr if absent / dangling / a directory.
  const support::Bytes* read(std::string_view path) const;
  // Canonical path after resolving symlinks; nullopt if unresolvable.
  std::optional<std::string> resolve(std::string_view path) const;
  // Names (not full paths) of a directory's entries, sorted.
  std::vector<std::string> list(std::string_view dir) const;

  // Recursive search rooted at `root` (like `find root -name ...`), calling
  // the predicate with each entry's basename; returns matching full paths,
  // sorted. Does not descend through symlinked directories (matching
  // `find`'s default).
  std::vector<std::string> find(
      std::string_view root,
      const std::function<bool(std::string_view)>& name_predicate) const;

  // Whole-tree filename index lookup (like `locate pattern`): every path
  // whose basename contains `needle`.
  std::vector<std::string> locate(std::string_view needle) const;

  // Accounting (bundle sizes, Section VI.C).
  std::size_t total_file_bytes() const;
  std::size_t file_count() const;

  // Monotone counter bumped on every successful mutation (mkdirs,
  // write_file, symlink, remove). Cache keys use it to detect staleness.
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  // Like generation(), but only counting mutations of the *system* half of
  // the tree — everything outside the scratch prefixes (/home, /tmp).
  // Discovery-style scans (module databases, /etc releases, installed
  // stacks under /opt and /usr) read only system paths, so their memo keys
  // can ignore the constant churn of per-migration scratch files.
  std::uint64_t system_generation() const {
    return system_generation_.load(std::memory_order_acquire);
  }

  // True for paths under the scratch prefixes: user homes and /tmp. These
  // hold migrated binaries, resolution copies, and hello-world probes —
  // transient per-migration state, never part of a site's installed
  // software surface.
  static bool scratch_path(std::string_view path);

  // --- read-only overlay (container-image semantics)
  // Seals a subtree: every mutation at or under `prefix` — and any remove
  // of one of its ancestors — fails and leaves the tree and generation
  // counters untouched, exactly like writing into a squashed read-only
  // image layer. Reads are unaffected. Scratch prefixes (/home, /tmp)
  // stay writable as the overlay's upper dir as long as they are not
  // sealed themselves. Returns false when the prefix is already sealed.
  bool seal(std::string_view prefix);
  // Lifts a seal placed by seal(); false when `prefix` is not sealed.
  bool unseal(std::string_view prefix);
  // True when `path` is covered by any sealed prefix.
  bool sealed(std::string_view path) const;
  // The active sealed prefixes, sorted (for manifests and tests).
  std::vector<std::string> sealed_prefixes() const;

  // Version stamp of the regular file at `path` (symlinks followed):
  // the generation value at which its content was last written. Each
  // write produces a globally unique stamp, so equal (path, version)
  // implies byte-identical content. nullopt when `path` is not a file.
  std::optional<std::uint64_t> file_version(std::string_view path) const;

  // --- fault injection (opt-in; see site/fault.hpp)
  // With an enabled injector attached, read() may return nullptr (ENOENT /
  // EIO) or a truncated copy (short read), and write_file() may fail with
  // EIO (nothing written) or a torn write (partial node written, then
  // rolled back — the tree and generation end unchanged). A null or
  // disabled injector leaves behaviour exactly as before.
  void set_fault_injector(std::shared_ptr<FaultInjector> injector) {
    fault_ = std::move(injector);
  }
  FaultInjector* fault_injector() const { return fault_.get(); }

  static std::string basename(std::string_view path);
  static std::string dirname(std::string_view path);
  static std::string join(std::string_view dir, std::string_view name);

 private:
  struct Node {
    enum class Kind : std::uint8_t { kDir, kFile, kSymlink };
    Kind kind = Kind::kDir;
    support::Bytes content;                        // kFile
    std::uint64_t version = 0;                     // kFile: write stamp
    std::string target;                            // kSymlink
    std::map<std::string, std::unique_ptr<Node>> children;  // kDir
  };

  // Walks to the node for `path`. If follow_terminal, the final component's
  // symlinks are resolved too. Returns nullptr when any component is
  // missing or a loop is detected.
  const Node* walk(std::string_view path, bool follow_terminal, int depth = 0) const;
  Node* walk_mut(std::string_view path);
  // Parent directory node, creating directories as needed.
  Node* ensure_parent(std::string_view path);

  // Advances the mutation counters for a successful write at `path` (the
  // system counter only when the path is outside the scratch prefixes) and
  // returns the new generation, which doubles as the write stamp.
  std::uint64_t bump_generations(std::string_view path);

  void find_impl(const Node& dir, const std::string& prefix,
                 const std::function<bool(std::string_view)>& pred,
                 bool substring, std::string_view needle,
                 std::vector<std::string>& out) const;

  // True when a seal forbids mutating `path`: the path sits inside a
  // sealed subtree, or removing it would take a sealed subtree with it.
  // Caller holds the tree lock.
  bool seal_blocks(std::string_view path) const;

  std::unique_ptr<Node> root_;
  // Internal synchronization: queries take the shared side, mutators the
  // exclusive side. Behind a unique_ptr so the Vfs stays movable; the
  // mutex object itself never moves. Generation counters are atomics so
  // the hot cache-validation reads need no lock at all.
  std::unique_ptr<std::shared_mutex> tree_mutex_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint64_t> system_generation_{0};
  std::shared_ptr<FaultInjector> fault_;
  // Short-read results live here so read() can keep returning a stable
  // pointer; a deque never relocates existing elements. Guarded by its
  // own mutex: read() holds only the shared tree lock when faulting.
  std::unique_ptr<std::mutex> scratch_mutex_;
  mutable std::deque<support::Bytes> short_read_scratch_;
  // Sealed subtree prefixes, sorted; guarded by the tree mutex (mutators
  // already hold the exclusive side when they consult it).
  std::vector<std::string> sealed_;
};

}  // namespace feam::site
