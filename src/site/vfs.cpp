#include "site/vfs.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace feam::site {

namespace {
constexpr int kMaxSymlinkDepth = 16;

std::vector<std::string> components(std::string_view path) {
  std::vector<std::string> out;
  for (auto& part : support::split(path, '/')) {
    if (!part.empty()) out.push_back(std::move(part));
  }
  return out;
}

// Strips any trailing '/' so "/opt/" and "/opt" seal the same subtree.
std::string normalize_prefix(std::string_view prefix) {
  std::string out(prefix);
  while (out.size() > 1 && out.back() == '/') out.pop_back();
  return out;
}

// True when `path` equals `prefix` or lies inside it as a subtree.
bool path_under(std::string_view path, std::string_view prefix) {
  if (prefix.empty() || prefix == "/") return true;
  if (!support::starts_with(path, prefix)) return false;
  return path.size() == prefix.size() || path[prefix.size()] == '/';
}
}  // namespace

Vfs::Vfs()
    : root_(std::make_unique<Node>()),
      tree_mutex_(std::make_unique<std::shared_mutex>()),
      scratch_mutex_(std::make_unique<std::mutex>()) {}

// Moves happen only during site construction, before any concurrency, so
// plain relaxed loads of the counters are enough.
Vfs::Vfs(Vfs&& other) noexcept
    : root_(std::move(other.root_)),
      tree_mutex_(std::move(other.tree_mutex_)),
      generation_(other.generation_.load(std::memory_order_relaxed)),
      system_generation_(
          other.system_generation_.load(std::memory_order_relaxed)),
      fault_(std::move(other.fault_)),
      scratch_mutex_(std::move(other.scratch_mutex_)),
      short_read_scratch_(std::move(other.short_read_scratch_)),
      sealed_(std::move(other.sealed_)) {}

Vfs& Vfs::operator=(Vfs&& other) noexcept {
  root_ = std::move(other.root_);
  tree_mutex_ = std::move(other.tree_mutex_);
  generation_.store(other.generation_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  system_generation_.store(
      other.system_generation_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  fault_ = std::move(other.fault_);
  scratch_mutex_ = std::move(other.scratch_mutex_);
  short_read_scratch_ = std::move(other.short_read_scratch_);
  sealed_ = std::move(other.sealed_);
  return *this;
}

bool Vfs::seal_blocks(std::string_view path) const {
  for (const auto& prefix : sealed_) {
    if (path_under(path, prefix) || path_under(prefix, path)) return true;
  }
  return false;
}

bool Vfs::seal(std::string_view prefix) {
  std::unique_lock<std::shared_mutex> lock(*tree_mutex_);
  const std::string p = normalize_prefix(prefix);
  if (std::find(sealed_.begin(), sealed_.end(), p) != sealed_.end()) {
    return false;
  }
  sealed_.insert(std::upper_bound(sealed_.begin(), sealed_.end(), p), p);
  return true;
}

bool Vfs::unseal(std::string_view prefix) {
  std::unique_lock<std::shared_mutex> lock(*tree_mutex_);
  const std::string p = normalize_prefix(prefix);
  const auto it = std::find(sealed_.begin(), sealed_.end(), p);
  if (it == sealed_.end()) return false;
  sealed_.erase(it);
  return true;
}

bool Vfs::sealed(std::string_view path) const {
  std::shared_lock<std::shared_mutex> lock(*tree_mutex_);
  for (const auto& prefix : sealed_) {
    if (path_under(path, prefix)) return true;
  }
  return false;
}

std::vector<std::string> Vfs::sealed_prefixes() const {
  std::shared_lock<std::shared_mutex> lock(*tree_mutex_);
  return sealed_;
}

bool Vfs::scratch_path(std::string_view path) {
  return support::starts_with(path, "/home/") || path == "/home" ||
         support::starts_with(path, "/tmp/") || path == "/tmp";
}

std::uint64_t Vfs::bump_generations(std::string_view path) {
  // Called with the exclusive tree lock held; release stores pair with the
  // acquire loads in generation()/system_generation() so a stamp observed
  // by a lock-free cache validation implies the write that produced it.
  const std::uint64_t next =
      generation_.load(std::memory_order_relaxed) + 1;
  generation_.store(next, std::memory_order_release);
  if (!scratch_path(path)) {
    system_generation_.store(
        system_generation_.load(std::memory_order_relaxed) + 1,
        std::memory_order_release);
  }
  return next;
}

std::string Vfs::basename(std::string_view path) {
  const auto pos = path.rfind('/');
  return std::string(pos == std::string_view::npos ? path : path.substr(pos + 1));
}

std::string Vfs::dirname(std::string_view path) {
  const auto pos = path.rfind('/');
  if (pos == std::string_view::npos || pos == 0) return "/";
  return std::string(path.substr(0, pos));
}

std::string Vfs::join(std::string_view dir, std::string_view name) {
  if (dir.empty() || dir == "/") return "/" + std::string(name);
  std::string out(dir);
  if (out.back() != '/') out += '/';
  out += name;
  return out;
}

const Vfs::Node* Vfs::walk(std::string_view path, bool follow_terminal,
                           int depth) const {
  if (depth > kMaxSymlinkDepth) return nullptr;
  const Node* node = root_.get();
  const auto parts = components(path);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (node->kind != Node::Kind::kDir) return nullptr;
    const auto it = node->children.find(parts[i]);
    if (it == node->children.end()) return nullptr;
    node = it->second.get();
    const bool terminal = i + 1 == parts.size();
    if (node->kind == Node::Kind::kSymlink && (!terminal || follow_terminal)) {
      // Resolve the link target, then continue with the remaining components.
      std::string target = node->target;
      if (!target.empty() && target.front() != '/') {
        std::string dir = "/";
        for (std::size_t j = 0; j < i; ++j) dir = join(dir, parts[j]);
        target = join(dir, target);
      }
      for (std::size_t j = i + 1; j < parts.size(); ++j) {
        target = join(target, parts[j]);
      }
      return walk(target, follow_terminal, depth + 1);
    }
  }
  return node;
}

Vfs::Node* Vfs::walk_mut(std::string_view path) {
  // Mutation never follows symlinks (mirrors rm/ln semantics closely
  // enough for our provisioning code).
  Node* node = root_.get();
  for (const auto& part : components(path)) {
    if (node->kind != Node::Kind::kDir) return nullptr;
    const auto it = node->children.find(part);
    if (it == node->children.end()) return nullptr;
    node = it->second.get();
  }
  return node;
}

Vfs::Node* Vfs::ensure_parent(std::string_view path) {
  auto parts = components(path);
  if (parts.empty()) return nullptr;
  parts.pop_back();
  Node* node = root_.get();
  for (const auto& part : parts) {
    if (node->kind != Node::Kind::kDir) return nullptr;
    auto& child = node->children[part];
    if (!child) {
      child = std::make_unique<Node>();
      child->kind = Node::Kind::kDir;
    }
    node = child.get();
  }
  return node->kind == Node::Kind::kDir ? node : nullptr;
}

bool Vfs::mkdirs(std::string_view path) {
  std::unique_lock<std::shared_mutex> lock(*tree_mutex_);
  if (seal_blocks(path)) return false;
  Node* parent = ensure_parent(join(path, "x"));
  if (parent == nullptr) return false;
  bump_generations(path);
  return true;
}

bool Vfs::write_file(std::string_view path, support::Bytes content) {
  std::unique_lock<std::shared_mutex> lock(*tree_mutex_);
  // A read-only layer rejects before the media can fault.
  if (seal_blocks(path)) return false;
  if (fault_ != nullptr && fault_->enabled()) {
    switch (fault_->decide_write(path)) {
      case FaultKind::kEio:
        return false;  // nothing written
      case FaultKind::kTornWrite: {
        // Write a genuinely partial node, then roll it back: the caller
        // sees a failed copy, the tree ends unchanged, and the generation
        // is not bumped — so no cache entry is spuriously invalidated.
        Node* parent = walk_mut(dirname(path));
        if (parent == nullptr || parent->kind != Node::Kind::kDir) {
          return false;  // no parent: the tear never reached the disk
        }
        const std::string name = basename(path);
        auto& slot = parent->children[name];
        std::unique_ptr<Node> previous = std::move(slot);
        auto torn = std::make_unique<Node>();
        torn->kind = Node::Kind::kFile;
        const std::size_t keep = fault_->short_read_length(content.size());
        torn->content.assign(content.begin(),
                             content.begin() + static_cast<std::ptrdiff_t>(keep));
        slot = std::move(torn);
        if (previous != nullptr) {
          slot = std::move(previous);  // restore-on-error
        } else {
          parent->children.erase(name);
        }
        return false;
      }
      default:
        break;
    }
  }
  Node* parent = ensure_parent(path);
  if (parent == nullptr) return false;
  auto& child = parent->children[basename(path)];
  child = std::make_unique<Node>();
  child->kind = Node::Kind::kFile;
  child->content = std::move(content);
  child->version = bump_generations(path);
  return true;
}

bool Vfs::write_file(std::string_view path, std::string_view text) {
  return write_file(path, support::Bytes(text.begin(), text.end()));
}

bool Vfs::symlink(std::string_view path, std::string_view target) {
  std::unique_lock<std::shared_mutex> lock(*tree_mutex_);
  if (seal_blocks(path)) return false;
  Node* parent = ensure_parent(path);
  if (parent == nullptr) return false;
  auto& child = parent->children[basename(path)];
  child = std::make_unique<Node>();
  child->kind = Node::Kind::kSymlink;
  child->target = std::string(target);
  bump_generations(path);
  return true;
}

bool Vfs::remove(std::string_view path) {
  std::unique_lock<std::shared_mutex> lock(*tree_mutex_);
  if (seal_blocks(path)) return false;
  Node* parent = walk_mut(dirname(path));
  if (parent == nullptr || parent->kind != Node::Kind::kDir) return false;
  if (parent->children.erase(basename(path)) == 0) return false;
  bump_generations(path);
  return true;
}

bool Vfs::exists(std::string_view path) const {
  std::shared_lock<std::shared_mutex> lock(*tree_mutex_);
  return walk(path, /*follow_terminal=*/true) != nullptr;
}

bool Vfs::is_dir(std::string_view path) const {
  std::shared_lock<std::shared_mutex> lock(*tree_mutex_);
  const Node* n = walk(path, true);
  return n != nullptr && n->kind == Node::Kind::kDir;
}

bool Vfs::is_file(std::string_view path) const {
  std::shared_lock<std::shared_mutex> lock(*tree_mutex_);
  const Node* n = walk(path, true);
  return n != nullptr && n->kind == Node::Kind::kFile;
}

bool Vfs::is_symlink(std::string_view path) const {
  std::shared_lock<std::shared_mutex> lock(*tree_mutex_);
  const Node* n = walk(path, /*follow_terminal=*/false);
  return n != nullptr && n->kind == Node::Kind::kSymlink;
}

const support::Bytes* Vfs::read(std::string_view path) const {
  std::shared_lock<std::shared_mutex> lock(*tree_mutex_);
  const Node* n = walk(path, true);
  if (n == nullptr || n->kind != Node::Kind::kFile) return nullptr;
  if (fault_ != nullptr && fault_->enabled()) {
    switch (fault_->decide_read(path)) {
      case FaultKind::kEnoent:
      case FaultKind::kEio:
        return nullptr;
      case FaultKind::kShortRead: {
        const std::size_t keep = fault_->short_read_length(n->content.size());
        // Several readers may fault concurrently under the shared tree
        // lock; the scratch deque gets its own guard.
        std::lock_guard<std::mutex> scratch_lock(*scratch_mutex_);
        short_read_scratch_.emplace_back(
            n->content.begin(),
            n->content.begin() + static_cast<std::ptrdiff_t>(keep));
        return &short_read_scratch_.back();
      }
      default:
        break;
    }
  }
  return &n->content;
}

std::optional<std::uint64_t> Vfs::file_version(std::string_view path) const {
  std::shared_lock<std::shared_mutex> lock(*tree_mutex_);
  const Node* n = walk(path, true);
  if (n == nullptr || n->kind != Node::Kind::kFile) return std::nullopt;
  return n->version;
}

std::optional<std::string> Vfs::resolve(std::string_view path) const {
  std::shared_lock<std::shared_mutex> lock(*tree_mutex_);
  const Node* target = walk(path, true);
  if (target == nullptr) return std::nullopt;
  // Re-derive the canonical path by chasing the terminal link chain
  // textually (bounded by the same depth limit).
  std::string current(path);
  for (int depth = 0; depth < kMaxSymlinkDepth; ++depth) {
    const Node* n = walk(current, /*follow_terminal=*/false);
    if (n == nullptr) return std::nullopt;
    if (n->kind != Node::Kind::kSymlink) return current;
    std::string next = n->target;
    if (next.empty() || next.front() != '/') {
      next = join(dirname(current), next);
    }
    current = std::move(next);
  }
  return std::nullopt;
}

std::vector<std::string> Vfs::list(std::string_view dir) const {
  std::shared_lock<std::shared_mutex> lock(*tree_mutex_);
  std::vector<std::string> out;
  const Node* n = walk(dir, true);
  if (n == nullptr || n->kind != Node::Kind::kDir) return out;
  out.reserve(n->children.size());
  for (const auto& [name, child] : n->children) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

void Vfs::find_impl(const Node& dir, const std::string& prefix,
                    const std::function<bool(std::string_view)>& pred,
                    bool substring, std::string_view needle,
                    std::vector<std::string>& out) const {
  for (const auto& [name, child] : dir.children) {
    const std::string full = join(prefix, name);
    const bool match = substring ? support::contains(name, needle) : pred(name);
    if (match) out.push_back(full);
    if (child->kind == Node::Kind::kDir) {
      find_impl(*child, full, pred, substring, needle, out);
    }
  }
}

std::vector<std::string> Vfs::find(
    std::string_view root,
    const std::function<bool(std::string_view)>& name_predicate) const {
  std::shared_lock<std::shared_mutex> lock(*tree_mutex_);
  std::vector<std::string> out;
  const Node* n = walk(root, true);
  if (n == nullptr || n->kind != Node::Kind::kDir) return out;
  std::string prefix = root == "/" ? std::string("/") : std::string(root);
  find_impl(*n, prefix, name_predicate, false, "", out);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> Vfs::locate(std::string_view needle) const {
  std::shared_lock<std::shared_mutex> lock(*tree_mutex_);
  std::vector<std::string> out;
  find_impl(*root_, "/", {}, true, needle, out);
  std::sort(out.begin(), out.end());
  return out;
}

namespace {
void accounting(const Vfs& vfs, std::string_view dir, std::size_t& bytes,
                std::size_t& files) {
  for (const auto& name : vfs.list(dir)) {
    const std::string full = Vfs::join(dir, name);
    if (vfs.is_symlink(full)) continue;  // links don't own bytes
    if (vfs.is_dir(full)) {
      accounting(vfs, full, bytes, files);
    } else if (const auto* content = vfs.read(full)) {
      bytes += content->size();
      ++files;
    }
  }
}
}  // namespace

std::size_t Vfs::total_file_bytes() const {
  std::size_t bytes = 0, files = 0;
  accounting(*this, "/", bytes, files);
  return bytes;
}

std::size_t Vfs::file_count() const {
  std::size_t bytes = 0, files = 0;
  accounting(*this, "/", bytes, files);
  return files;
}

}  // namespace feam::site
