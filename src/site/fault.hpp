// Deterministic, seed-driven fault injection for the in-memory Vfs.
//
// Opt-in: a Vfs without an injector (or with a disabled one) behaves
// exactly as before. With one attached, each read/write rolls an
// independent SplitMix64 stream keyed on (seed, operation counter) and may
// inject ENOENT, EIO, a short read, or a torn write. Decisions depend only
// on the seed and the per-injector operation order, so single-threaded
// runs reproduce bit-for-bit; parallel runs are deterministic per
// (seed, counter) but schedule-dependent in *which* operation draws which
// counter — callers attribute faults per pair instead of assuming a fixed
// fault set.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "support/rng.hpp"

namespace feam::site {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kEnoent,     // read: path reported absent
  kEio,        // read or write: flat I/O error
  kShortRead,  // read: truncated content returned
  kTornWrite,  // write: partial write, then rolled back
};

std::string_view fault_kind_name(FaultKind kind);

struct FaultRecord {
  FaultKind kind = FaultKind::kNone;
  std::string op;    // "read" | "write"
  std::string path;
};

class FaultInjector {
 public:
  struct Options {
    std::uint64_t seed = 0;
    double rate = 0.0;  // probability that any one read/write faults
    bool enoent = true;
    bool eio = true;
    bool short_read = true;
    bool torn_write = true;
  };

  explicit FaultInjector(Options options)
      : options_(options), rng_(options.seed) {}

  // Injection only happens while enabled; a disabled injector does not
  // advance the counter, so enable/disable brackets (e.g. around
  // Experiment::run) don't perturb the stream of the bracketed region.
  void set_enabled(bool on) {
    std::lock_guard<std::mutex> lock(mutex_);
    enabled_ = on;
  }
  bool enabled() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return enabled_;
  }

  // Decision for the next read/write of `path`; kNone means proceed
  // normally. Faulting decisions are appended to the injection log.
  FaultKind decide_read(std::string_view path);
  FaultKind decide_write(std::string_view path);

  // For kShortRead: how many bytes of an n-byte file survive (in [0, n)).
  // Deterministic per decision (drawn from the same stream).
  std::size_t short_read_length(std::size_t full_size);

  // Total faults injected so far. Callers snapshot this around an
  // operation; a delta > 0 means the operation was touched by injection
  // and its outputs must not be memoized.
  std::uint64_t fault_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return log_.size();
  }
  std::vector<FaultRecord> injected() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return log_;
  }

  const Options& options() const { return options_; }

 private:
  FaultKind decide(std::string_view op, std::string_view path);

  Options options_;
  mutable std::mutex mutex_;
  bool enabled_ = false;
  std::uint64_t counter_ = 0;
  support::Rng rng_;
  std::vector<FaultRecord> log_;
};

}  // namespace feam::site
