// Batch submission scripts for the resource managers named in the paper's
// related work (PBS, SGE, SLURM). The paper's FEAM requires exactly one
// piece of user-supplied site knowledge: a serial and a parallel
// submission script (Section V). This model renders and parses all three
// dialects so that knowledge can be represented, validated, and executed
// by the simulated batch runner (toolchain/shell.hpp).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "site/ids.hpp"

namespace feam::site {

struct BatchScript {
  BatchKind kind = BatchKind::kPbs;
  std::string job_name = "feam";
  std::string queue = "debug";     // the paper recommends the debug queue
  int nodes = 1;
  int tasks_per_node = 1;
  int walltime_minutes = 5;        // FEAM phases fit in five minutes
  // Shell body: the commands to run once the job starts.
  std::vector<std::string> commands;

  int total_tasks() const { return nodes * tasks_per_node; }

  // Renders the script in its dialect, directives first.
  std::string render() const;

  // Parses a rendered script; the dialect is detected from the directive
  // prefix (#PBS / #$ / #SBATCH). Returns nullopt when no known directive
  // prefix is present or a directive is malformed.
  static std::optional<BatchScript> parse(std::string_view text);
};

}  // namespace feam::site
