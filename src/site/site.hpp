// The Site aggregate: everything that exists at one computing site — a
// virtual filesystem, a login-shell environment, installed compilers and
// MPI stacks, a user-environment management tool, and the misconfiguration
// flags the paper's evaluation encountered in the wild (unusable MPI
// stacks, missing utilities).
//
// A Site starts empty; the simulated toolchain's `provision_site` (see
// toolchain/provision.hpp) materializes the C library, compiler runtimes,
// MPI packages, /proc and /etc files, and module files into the VFS. FEAM
// components only ever interact with the VFS/environment/tools — never
// with the configuration fields directly — so discovery is honest.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "elf/spec.hpp"
#include "site/environment.hpp"
#include "site/ids.hpp"
#include "site/vfs.hpp"
#include "support/version.hpp"

namespace feam::site {

struct CompilerInstall {
  CompilerFamily family = CompilerFamily::kGnu;
  support::Version version;
};

// One MPI stack: implementation x version x compiler (x interconnect),
// installed under a prefix, optionally advertised via the site's
// user-environment tool. `functional == false` models the administrator
// misconfiguration the paper describes in Section III.B: the stack is
// advertised but no program can execute under it.
struct MpiStackInstall {
  MpiImpl impl = MpiImpl::kOpenMpi;
  support::Version version;
  CompilerFamily compiler = CompilerFamily::kGnu;
  support::Version compiler_version;
  Interconnect interconnect = Interconnect::kEthernet;
  std::string prefix;       // e.g. "/opt/openmpi-1.4.3-intel"
  bool advertised = true;   // listed by Modules/SoftEnv
  bool functional = true;
  // Whether the implementation was installed with static libraries —
  // without them, scientists "do not have the option to prepare statically
  // linked binaries for migration" (paper VI.C). Rare in practice.
  bool static_libs_available = false;
  // Whether the compiler wrappers embed DT_RPATH pointing at the install
  // prefix (some administrators configured Open MPI's wrappers this way).
  // Binaries then run at the home site without any module loaded — and
  // carry a dangling RPATH after migration, falling through to the normal
  // search order.
  bool wrappers_embed_rpath = false;

  // "openmpi-1.4.3-intel" — used for prefixes, module names, softenv keys.
  std::string slug() const;
  // Table II notation: "Open MPI v1.4 (i)".
  std::string display() const;
};

// A module file (or SoftEnv key): a name plus environment prepends.
struct ModuleFile {
  std::string name;  // "openmpi/1.4.3-intel"
  std::vector<std::pair<std::string, std::string>> prepends;  // var -> entry
};

class Site {
 public:
  Site();
  ~Site();
  Site(Site&&) noexcept;
  Site& operator=(Site&&) noexcept;

  // --- identity & configured truth (written by provisioning, read by the
  // evaluation harness for ground-truth comparisons; FEAM never reads these)
  std::string name;
  std::string center;  // "Texas Advanced Computing Center"
  std::string system_type;  // "MPP", "SMP", "Hybrid", "Cluster"
  int cpu_count = 0;
  elf::Isa isa = elf::Isa::kX86_64;
  std::string os_distro;          // "CentOS"
  support::Version os_version;    // 4.9
  std::string kernel_version;     // "2.6.18-194.el5"
  support::Version clib_version;  // 2.3.4
  UserEnvTool user_env_tool = UserEnvTool::kModules;
  BatchKind batch = BatchKind::kPbs;

  // Degradation flags (tools missing at some real sites; FEAM implements
  // fallbacks for each — paper Section V).
  bool locate_available = true;
  bool ldd_available = true;
  bool libc_executable = true;  // can the C library binary be run directly?

  // Fault model inputs (consumed by toolchain::Launcher).
  std::uint64_t fault_seed = 0;
  double system_error_rate = 0.0;  // chance a single run dies of system error

  // Multiplier on the opaque text padding of every provisioned library
  // (floored at 4 KiB). Fleet generation materializes hundreds of sites;
  // shrinking the padding keeps resident memory bounded without changing
  // any structure discovery reads — dynamic tables, symbols, and version
  // refs are size-independent. 1.0 reproduces real-world image sizes.
  double library_scale = 1.0;

  // --- live state
  Vfs vfs;
  Environment env;
  std::vector<CompilerInstall> compilers;
  std::vector<MpiStackInstall> stacks;
  std::vector<ModuleFile> module_files;

  // --- behaviour
  // Default dynamic-loader search directories for this site's bitness.
  std::vector<std::string> default_lib_dirs(int binary_bits) const;

  // User-environment tool surface: what `module avail` / `softenv` print.
  std::vector<std::string> available_modules() const;
  // What `module list` prints (currently loaded). Session-aware: inside a
  // shell session the calling thread sees (and mutates) its private list.
  const std::vector<std::string>& loaded_modules() const;
  // Applies the module's environment prepends; false if no such module.
  bool load_module(std::string_view name);
  void unload_all_modules();

  const MpiStackInstall* find_stack(MpiImpl impl, CompilerFamily compiler) const;
  const MpiStackInstall* stack_for_module(std::string_view module_name) const;

  // The stack whose lib directory appears earliest in LD_LIBRARY_PATH, i.e.
  // the one `mpiexec` on this shell would use. Null when none is loaded.
  const MpiStackInstall* selected_stack() const;

  // Path of the C library (resolving the /lib*/libc.so.6 convention).
  std::optional<std::string> clib_path() const;

  // --- concurrency & caching support
  // Monotone counter covering every observable mutation of the site's
  // live state: VFS writes, environment edits, and module load/unload.
  // Coarse by construction — any mutation anywhere bumps it. Session-
  // aware: inside a shell session the module/env halves come from the
  // calling thread's shadows.
  std::uint64_t state_generation() const {
    return vfs.generation() + env.generation() + module_generation();
  }

  // The module half of state_generation(), from the calling thread's
  // shell-session shadow when one is active.
  std::uint64_t module_generation() const;

  // Narrow invalidation key covering exactly what environment discovery
  // reads: the system half of the VFS (module databases, /etc releases,
  // stacks under /opt and /usr — scratch writes under /home and /tmp are
  // invisible to the scan and excluded here), the login environment's
  // *content*, and the loaded-module list. Content-based, not counter-
  // based: a load/unload cycle that restores the shell lands back on the
  // original fingerprint, so the EDC memo keeps hitting across pairs.
  std::uint64_t discovery_fingerprint() const;

  // --- thread-private shell sessions (use site::ShellSession, not raw)
  // Brackets a session over the login shell: environment variables AND the
  // loaded-module list both become a private copy for the calling thread.
  // Module loads, LD_LIBRARY_PATH edits, and unload_all_modules inside the
  // session never touch the base state other threads read — two workers
  // can run mpiexec against the same site under different modules
  // concurrently, like two real login sessions.
  void begin_shell_session();
  void end_shell_session();

  // Process-wide unique id assigned at construction. The lease layer
  // orders lock acquisition by it (lower id first) for deadlock freedom.
  std::uint64_t lease_id() const { return lease_id_; }

  // Mutex a SiteLease holds for the duration of any mutating sequence.
  // Held behind a unique_ptr so Site stays movable (tests return Sites by
  // value); the mutex object itself never moves.
  std::mutex& lease_mutex() const { return *lease_mutex_; }

  // Lease mutex for one subtree of this site, created on first use and
  // stable for the Site's lifetime. `prefix` is a path prefix (usually a
  // per-job artifact root); two workers lease the same mutex iff they name
  // the same prefix. site::SubtreeLeases acquires these in global
  // (lease_id, prefix) order — see site/lease.hpp.
  std::mutex& subtree_mutex(std::string_view prefix) const;

  // Shadow of one shell session's module state (see Environment::Shadow
  // for the variable half). Public only for the registry in the .cpp.
  struct ModuleShadow {
    std::vector<std::string> loaded;
    std::uint64_t generation = 0;
  };

 private:
  ModuleShadow* module_shadow() const;

  std::vector<std::string> loaded_;
  std::uint64_t module_generation_ = 0;
  std::uint64_t lease_id_;
  std::unique_ptr<std::mutex> lease_mutex_;
  // Subtree lease table: mutexes live in a node-stable map behind a
  // unique_ptr (Site stays movable; the mutex objects never move).
  struct SubtreeTable;
  std::unique_ptr<SubtreeTable> subtree_table_;
};

}  // namespace feam::site
