#include "site/fault.hpp"

namespace feam::site {

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kEnoent: return "enoent";
    case FaultKind::kEio: return "eio";
    case FaultKind::kShortRead: return "short_read";
    case FaultKind::kTornWrite: return "torn_write";
  }
  return "none";
}

FaultKind FaultInjector::decide(std::string_view op, std::string_view path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_ || options_.rate <= 0.0) return FaultKind::kNone;
  // One decision stream per injector: (seed, counter) → independent draw.
  // The fork keeps the decision independent of how many values earlier
  // decisions consumed.
  support::Rng draw =
      rng_.fork(std::string(op) + "#" + std::to_string(counter_++));
  if (!draw.chance(options_.rate)) return FaultKind::kNone;
  std::vector<FaultKind> kinds;
  if (op == "read") {
    if (options_.enoent) kinds.push_back(FaultKind::kEnoent);
    if (options_.eio) kinds.push_back(FaultKind::kEio);
    if (options_.short_read) kinds.push_back(FaultKind::kShortRead);
  } else {
    if (options_.torn_write) kinds.push_back(FaultKind::kTornWrite);
    if (options_.eio) kinds.push_back(FaultKind::kEio);
  }
  if (kinds.empty()) return FaultKind::kNone;
  const FaultKind kind = kinds[draw.next_below(kinds.size())];
  log_.push_back({kind, std::string(op), std::string(path)});
  return kind;
}

FaultKind FaultInjector::decide_read(std::string_view path) {
  return decide("read", path);
}

FaultKind FaultInjector::decide_write(std::string_view path) {
  return decide("write", path);
}

std::size_t FaultInjector::short_read_length(std::size_t full_size) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (full_size == 0) return 0;
  support::Rng draw = rng_.fork("short_read_len#" + std::to_string(counter_++));
  return static_cast<std::size_t>(draw.next_below(full_size));
}

}  // namespace feam::site
