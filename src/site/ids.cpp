#include "site/ids.hpp"

namespace feam::site {

const char* mpi_impl_name(MpiImpl impl) {
  switch (impl) {
    case MpiImpl::kOpenMpi: return "Open MPI";
    case MpiImpl::kMpich2: return "MPICH2";
    case MpiImpl::kMvapich2: return "MVAPICH2";
  }
  return "?";
}

const char* mpi_impl_slug(MpiImpl impl) {
  switch (impl) {
    case MpiImpl::kOpenMpi: return "openmpi";
    case MpiImpl::kMpich2: return "mpich2";
    case MpiImpl::kMvapich2: return "mvapich2";
  }
  return "?";
}

const char* compiler_name(CompilerFamily f) {
  switch (f) {
    case CompilerFamily::kGnu: return "GNU";
    case CompilerFamily::kIntel: return "Intel";
    case CompilerFamily::kPgi: return "PGI";
  }
  return "?";
}

const char* compiler_slug(CompilerFamily f) {
  switch (f) {
    case CompilerFamily::kGnu: return "gnu";
    case CompilerFamily::kIntel: return "intel";
    case CompilerFamily::kPgi: return "pgi";
  }
  return "?";
}

char compiler_letter(CompilerFamily f) {
  switch (f) {
    case CompilerFamily::kGnu: return 'g';
    case CompilerFamily::kIntel: return 'i';
    case CompilerFamily::kPgi: return 'p';
  }
  return '?';
}

const char* interconnect_name(Interconnect ic) {
  switch (ic) {
    case Interconnect::kEthernet: return "Ethernet";
    case Interconnect::kInfiniband: return "InfiniBand";
  }
  return "?";
}

const char* batch_name(BatchKind b) {
  switch (b) {
    case BatchKind::kPbs: return "PBS";
    case BatchKind::kSge: return "SGE";
    case BatchKind::kSlurm: return "SLURM";
  }
  return "?";
}

const char* user_env_tool_name(UserEnvTool t) {
  switch (t) {
    case UserEnvTool::kModules: return "Environment Modules";
    case UserEnvTool::kSoftEnv: return "SoftEnv";
    case UserEnvTool::kNone: return "none";
  }
  return "?";
}

}  // namespace feam::site
