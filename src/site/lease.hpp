// Site leases: the mutual-exclusion discipline of the parallel migration
// engine.
//
// The discipline is subtree-grained: a worker leases exactly the path
// prefixes it mutates (its migrated binary, its per-job resolution root)
// via SubtreeLeases, and brackets its shell use in a ShellSession — a
// thread-private overlay of the environment and loaded modules (see
// site/environment.hpp). The Vfs itself is internally synchronized, so
// leases guard *logical* atomicity (one job's read-modify-write of its own
// artifacts), not data-structure integrity. Two migrations touching
// disjoint subtrees of the same site never serialize.
//
// Deadlock freedom: SubtreeLeases sorts its (site, prefix) set by the
// global (site.lease_id, prefix) order before locking, and a worker never
// acquires leases incrementally — one vector acquisition up front, held
// for the job. The whole-site SiteLease/SitePairLease remain for callers
// that genuinely own the site end to end (sequential tools, tests); they
// follow the same lease_id order and must not be mixed with subtree
// leases on the same site concurrently (a site lease does not exclude
// subtree leases — it is a coarser convention, not a reader-writer lock).
//
// Contention visibility: every acquisition records its wait into the
// "lease.wait_ns" histogram plus the site-labeled "lease.wait_ns{site=S}"
// series (nanoseconds on the obs clock; the obs layer's metric names carry
// _ns units throughout). An uncontended try_lock records 0 without reading
// the clock twice, so the lease fast path stays one atomic heavier at most.
#pragma once

#include <algorithm>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "site/site.hpp"

namespace feam::site {

namespace detail {

// Locks `mutex`, timing any blocking wait, and charges the wait to the
// global and per-site lease histograms.
inline std::unique_lock<std::mutex> acquire_lease(Site& site,
                                                  std::mutex& mutex) {
  std::unique_lock<std::mutex> lock(mutex, std::try_to_lock);
  std::uint64_t waited_ns = 0;
  if (!lock.owns_lock()) {
    const std::uint64_t start = obs::now_ns();
    lock.lock();
    waited_ns = obs::now_ns() - start;
  }
  obs::histogram("lease.wait_ns").record(waited_ns);
  obs::histogram("lease.wait_ns", obs::Labels{.site = site.name})
      .record(waited_ns);
  return lock;
}

}  // namespace detail

// RAII lease on a single site.
class SiteLease {
 public:
  explicit SiteLease(Site& site)
      : lock_(detail::acquire_lease(site, site.lease_mutex())) {}

  SiteLease(const SiteLease&) = delete;
  SiteLease& operator=(const SiteLease&) = delete;

 private:
  std::unique_lock<std::mutex> lock_;
};

// RAII lease on two distinct sites, acquired in lease_id order (lower id
// first) regardless of argument order. Used for the one step of a
// migration that genuinely touches both sites at once: copying the binary
// from home to target.
class SitePairLease {
 public:
  SitePairLease(Site& a, Site& b)
      : first_(a.lease_id() < b.lease_id()
                   ? detail::acquire_lease(a, a.lease_mutex())
                   : detail::acquire_lease(b, b.lease_mutex())),
        second_(a.lease_id() < b.lease_id()
                    ? detail::acquire_lease(b, b.lease_mutex())
                    : detail::acquire_lease(a, a.lease_mutex())) {}

  SitePairLease(const SitePairLease&) = delete;
  SitePairLease& operator=(const SitePairLease&) = delete;

 private:
  std::unique_lock<std::mutex> first_;
  std::unique_lock<std::mutex> second_;
};

// RAII thread-private shell: environment variables and the loaded-module
// list become a private copy for the calling thread (see Environment
// sessions). Module loads, LD_LIBRARY_PATH edits, and mpiexec runs inside
// the session don't serialize against other workers on the same site.
class ShellSession {
 public:
  explicit ShellSession(Site& site) : site_(&site) {
    site_->begin_shell_session();
  }
  ~ShellSession() { site_->end_shell_session(); }

  ShellSession(const ShellSession&) = delete;
  ShellSession& operator=(const ShellSession&) = delete;

 private:
  Site* site_;
};

// RAII lease over a set of (site, path-prefix) subtrees, acquired in the
// global (lease_id, prefix) order regardless of argument order, so any two
// workers' vectors interleave without cycles. Duplicate subtrees collapse
// to one acquisition. Each acquisition charges its wait to the same
// "lease.wait_ns" series as the whole-site leases.
class SubtreeLeases {
 public:
  using Subtree = std::pair<Site*, std::string>;

  explicit SubtreeLeases(std::vector<Subtree> subtrees) {
    std::sort(subtrees.begin(), subtrees.end(),
              [](const Subtree& a, const Subtree& b) {
                if (a.first->lease_id() != b.first->lease_id()) {
                  return a.first->lease_id() < b.first->lease_id();
                }
                return a.second < b.second;
              });
    subtrees.erase(std::unique(subtrees.begin(), subtrees.end()),
                   subtrees.end());
    locks_.reserve(subtrees.size());
    for (const auto& [site, prefix] : subtrees) {
      locks_.push_back(
          detail::acquire_lease(*site, site->subtree_mutex(prefix)));
    }
  }

  SubtreeLeases(const SubtreeLeases&) = delete;
  SubtreeLeases& operator=(const SubtreeLeases&) = delete;

 private:
  std::vector<std::unique_lock<std::mutex>> locks_;
};

}  // namespace feam::site
