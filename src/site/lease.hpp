// Site leases: the mutual-exclusion discipline of the parallel migration
// engine. A worker must hold a site's lease for the duration of any
// mutating sequence against that site — module load/unload, VFS writes,
// shell runs — so that no two workers ever interleave operations on the
// same Site.
//
// Deadlock freedom: a worker holds at most one lease at a time, except
// through SitePairLease, which always acquires the lower lease_id first.
// Since every multi-lock follows the same global order, no cycle can form
// (documented in ARCHITECTURE.md, "Concurrency model").
#pragma once

#include <mutex>

#include "site/site.hpp"

namespace feam::site {

// RAII lease on a single site.
class SiteLease {
 public:
  explicit SiteLease(Site& site) : lock_(site.lease_mutex()) {}

  SiteLease(const SiteLease&) = delete;
  SiteLease& operator=(const SiteLease&) = delete;

 private:
  std::lock_guard<std::mutex> lock_;
};

// RAII lease on two distinct sites, acquired in lease_id order (lower id
// first) regardless of argument order. Used for the one step of a
// migration that genuinely touches both sites at once: copying the binary
// from home to target.
class SitePairLease {
 public:
  SitePairLease(Site& a, Site& b)
      : first_(a.lease_id() < b.lease_id() ? a.lease_mutex()
                                           : b.lease_mutex()),
        second_(a.lease_id() < b.lease_id() ? b.lease_mutex()
                                            : a.lease_mutex()) {}

  SitePairLease(const SitePairLease&) = delete;
  SitePairLease& operator=(const SitePairLease&) = delete;

 private:
  std::lock_guard<std::mutex> first_;
  std::lock_guard<std::mutex> second_;
};

}  // namespace feam::site
