// Site leases: the mutual-exclusion discipline of the parallel migration
// engine. A worker must hold a site's lease for the duration of any
// mutating sequence against that site — module load/unload, VFS writes,
// shell runs — so that no two workers ever interleave operations on the
// same Site.
//
// Deadlock freedom: a worker holds at most one lease at a time, except
// through SitePairLease, which always acquires the lower lease_id first.
// Since every multi-lock follows the same global order, no cycle can form
// (documented in ARCHITECTURE.md, "Concurrency model").
//
// Contention visibility: every acquisition records its wait into the
// "lease.wait_ns" histogram plus the site-labeled "lease.wait_ns{site=S}"
// series (nanoseconds on the obs clock; the obs layer's metric names carry
// _ns units throughout). An uncontended try_lock records 0 without reading
// the clock twice, so the lease fast path stays one atomic heavier at most.
#pragma once

#include <mutex>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "site/site.hpp"

namespace feam::site {

namespace detail {

// Locks `mutex`, timing any blocking wait, and charges the wait to the
// global and per-site lease histograms.
inline std::unique_lock<std::mutex> acquire_lease(Site& site,
                                                  std::mutex& mutex) {
  std::unique_lock<std::mutex> lock(mutex, std::try_to_lock);
  std::uint64_t waited_ns = 0;
  if (!lock.owns_lock()) {
    const std::uint64_t start = obs::now_ns();
    lock.lock();
    waited_ns = obs::now_ns() - start;
  }
  obs::histogram("lease.wait_ns").record(waited_ns);
  obs::histogram("lease.wait_ns", obs::Labels{.site = site.name})
      .record(waited_ns);
  return lock;
}

}  // namespace detail

// RAII lease on a single site.
class SiteLease {
 public:
  explicit SiteLease(Site& site)
      : lock_(detail::acquire_lease(site, site.lease_mutex())) {}

  SiteLease(const SiteLease&) = delete;
  SiteLease& operator=(const SiteLease&) = delete;

 private:
  std::unique_lock<std::mutex> lock_;
};

// RAII lease on two distinct sites, acquired in lease_id order (lower id
// first) regardless of argument order. Used for the one step of a
// migration that genuinely touches both sites at once: copying the binary
// from home to target.
class SitePairLease {
 public:
  SitePairLease(Site& a, Site& b)
      : first_(a.lease_id() < b.lease_id()
                   ? detail::acquire_lease(a, a.lease_mutex())
                   : detail::acquire_lease(b, b.lease_mutex())),
        second_(a.lease_id() < b.lease_id()
                    ? detail::acquire_lease(b, b.lease_mutex())
                    : detail::acquire_lease(a, a.lease_mutex())) {}

  SitePairLease(const SitePairLease&) = delete;
  SitePairLease& operator=(const SitePairLease&) = delete;

 private:
  std::unique_lock<std::mutex> first_;
  std::unique_lock<std::mutex> second_;
};

}  // namespace feam::site
