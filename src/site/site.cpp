#include "site/site.hpp"

#include <algorithm>
#include <atomic>

#include "support/rng.hpp"
#include "support/strings.hpp"

namespace feam::site {

namespace {
std::uint64_t next_lease_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

// Per-thread stack of open shell sessions' module shadows, mirroring the
// variable shadows in environment.cpp (one registry per state kind keeps
// both files self-contained).
struct ModuleSessionEntry {
  const Site* site;
  std::unique_ptr<Site::ModuleShadow> shadow;
};
thread_local std::vector<ModuleSessionEntry> t_module_sessions;

}  // namespace

// Mutexes keyed by subtree prefix. std::map nodes are stable, so handing
// out `std::mutex&` is safe for the Site's lifetime; the table itself is
// guarded by its own mutex (creation is rare — a few prefixes per job).
struct Site::SubtreeTable {
  std::mutex table_mutex;
  std::map<std::string, std::mutex, std::less<>> mutexes;
};

Site::Site()
    : lease_id_(next_lease_id()),
      lease_mutex_(std::make_unique<std::mutex>()),
      subtree_table_(std::make_unique<SubtreeTable>()) {}

Site::~Site() = default;
Site::Site(Site&&) noexcept = default;
Site& Site::operator=(Site&&) noexcept = default;

Site::ModuleShadow* Site::module_shadow() const {
  for (auto it = t_module_sessions.rbegin(); it != t_module_sessions.rend();
       ++it) {
    if (it->site == this) return it->shadow.get();
  }
  return nullptr;
}

void Site::begin_shell_session() {
  env.begin_session();
  auto fresh = std::make_unique<ModuleShadow>();
  fresh->loaded = loaded_modules();  // copy-on-begin: nested sessions stack
  fresh->generation = module_generation();
  t_module_sessions.push_back({this, std::move(fresh)});
}

void Site::end_shell_session() {
  for (auto it = t_module_sessions.rbegin(); it != t_module_sessions.rend();
       ++it) {
    if (it->site == this) {
      t_module_sessions.erase(std::next(it).base());
      env.end_session();
      return;
    }
  }
}

std::uint64_t Site::module_generation() const {
  const ModuleShadow* s = module_shadow();
  return s != nullptr ? s->generation : module_generation_;
}

const std::vector<std::string>& Site::loaded_modules() const {
  const ModuleShadow* s = module_shadow();
  return s != nullptr ? s->loaded : loaded_;
}

std::mutex& Site::subtree_mutex(std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(subtree_table_->table_mutex);
  const auto it = subtree_table_->mutexes.find(prefix);
  if (it != subtree_table_->mutexes.end()) return it->second;
  return subtree_table_->mutexes[std::string(prefix)];
}

std::string MpiStackInstall::slug() const {
  return std::string(mpi_impl_slug(impl)) + "-" + version.str() + "-" +
         compiler_slug(compiler);
}

std::string MpiStackInstall::display() const {
  return std::string(mpi_impl_name(impl)) + " v" + version.str() + " (" +
         compiler_letter(compiler) + ")";
}

std::vector<std::string> Site::default_lib_dirs(int binary_bits) const {
  // 64-bit hosts keep 64-bit libraries in lib64 and 32-bit compatibility
  // libraries in lib; 32-bit hosts only have lib.
  if (elf::isa_bits(isa) == 64 && binary_bits == 64) {
    return {"/lib64", "/usr/lib64", "/usr/local/lib64"};
  }
  return {"/lib", "/usr/lib", "/usr/local/lib"};
}

std::vector<std::string> Site::available_modules() const {
  std::vector<std::string> out;
  out.reserve(module_files.size());
  for (const auto& m : module_files) out.push_back(m.name);
  std::sort(out.begin(), out.end());
  return out;
}

bool Site::load_module(std::string_view module_name) {
  const auto it = std::find_if(
      module_files.begin(), module_files.end(),
      [&](const ModuleFile& m) { return m.name == module_name; });
  if (it == module_files.end()) return false;
  for (const auto& [var, entry] : it->prepends) {
    env.prepend_to_list(var, entry);
  }
  if (ModuleShadow* s = module_shadow()) {
    s->loaded.push_back(it->name);
    ++s->generation;
  } else {
    loaded_.push_back(it->name);
    ++module_generation_;
  }
  return true;
}

void Site::unload_all_modules() {
  // Rebuild PATH / LD_LIBRARY_PATH without any module prefix entries.
  for (const char* var : {"PATH", "LD_LIBRARY_PATH"}) {
    auto entries = env.get_list(var);
    std::erase_if(entries, [&](const std::string& entry) {
      return std::any_of(module_files.begin(), module_files.end(),
                         [&](const ModuleFile& m) {
                           return std::any_of(
                               m.prepends.begin(), m.prepends.end(),
                               [&](const auto& p) { return p.second == entry; });
                         });
    });
    if (entries.empty()) {
      env.unset(var);
    } else {
      env.set(var, support::join(entries, ":"));
    }
  }
  if (ModuleShadow* s = module_shadow()) {
    s->loaded.clear();
    ++s->generation;
  } else {
    loaded_.clear();
    ++module_generation_;
  }
}

const MpiStackInstall* Site::find_stack(MpiImpl impl,
                                        CompilerFamily compiler) const {
  for (const auto& stack : stacks) {
    if (stack.impl == impl && stack.compiler == compiler) return &stack;
  }
  return nullptr;
}

const MpiStackInstall* Site::stack_for_module(std::string_view module_name) const {
  // Module names are "<slug-with-/>"; match on the stack slug with '/'
  // substituted ("openmpi/1.4.3-intel" <-> "openmpi-1.4.3-intel").
  std::string flattened(module_name);
  std::replace(flattened.begin(), flattened.end(), '/', '-');
  for (const auto& stack : stacks) {
    if (stack.slug() == flattened) return &stack;
  }
  return nullptr;
}

const MpiStackInstall* Site::selected_stack() const {
  for (const auto& dir : env.ld_library_path()) {
    for (const auto& stack : stacks) {
      if (dir == stack.prefix + "/lib") return &stack;
    }
    // Symlink-farm layouts advertise linked directories; the dynamic
    // loader follows the link, so stack selection must too.
    if (const auto real = vfs.resolve(dir)) {
      for (const auto& stack : stacks) {
        if (*real == stack.prefix + "/lib") return &stack;
      }
    }
  }
  return nullptr;
}

std::uint64_t Site::discovery_fingerprint() const {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (i * 8)) & 0xff)) * 1099511628211ull;
    }
  };
  mix(vfs.system_generation());
  mix(env.fingerprint());
  const auto& loaded = loaded_modules();
  mix(loaded.size());
  for (const auto& module_name : loaded) mix(support::fnv1a(module_name));
  return h;
}

std::optional<std::string> Site::clib_path() const {
  for (const char* dir : {"/lib64", "/lib", "/usr/lib64", "/usr/lib"}) {
    const std::string candidate = Vfs::join(dir, "libc.so.6");
    if (vfs.exists(candidate)) return vfs.resolve(candidate);
  }
  return std::nullopt;
}

}  // namespace feam::site
