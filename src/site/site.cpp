#include "site/site.hpp"

#include <algorithm>
#include <atomic>

#include "support/rng.hpp"
#include "support/strings.hpp"

namespace feam::site {

namespace {
std::uint64_t next_lease_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

Site::Site()
    : lease_id_(next_lease_id()),
      lease_mutex_(std::make_unique<std::mutex>()) {}

std::string MpiStackInstall::slug() const {
  return std::string(mpi_impl_slug(impl)) + "-" + version.str() + "-" +
         compiler_slug(compiler);
}

std::string MpiStackInstall::display() const {
  return std::string(mpi_impl_name(impl)) + " v" + version.str() + " (" +
         compiler_letter(compiler) + ")";
}

std::vector<std::string> Site::default_lib_dirs(int binary_bits) const {
  // 64-bit hosts keep 64-bit libraries in lib64 and 32-bit compatibility
  // libraries in lib; 32-bit hosts only have lib.
  if (elf::isa_bits(isa) == 64 && binary_bits == 64) {
    return {"/lib64", "/usr/lib64", "/usr/local/lib64"};
  }
  return {"/lib", "/usr/lib", "/usr/local/lib"};
}

std::vector<std::string> Site::available_modules() const {
  std::vector<std::string> out;
  out.reserve(module_files.size());
  for (const auto& m : module_files) out.push_back(m.name);
  std::sort(out.begin(), out.end());
  return out;
}

bool Site::load_module(std::string_view module_name) {
  const auto it = std::find_if(
      module_files.begin(), module_files.end(),
      [&](const ModuleFile& m) { return m.name == module_name; });
  if (it == module_files.end()) return false;
  for (const auto& [var, entry] : it->prepends) {
    env.prepend_to_list(var, entry);
  }
  loaded_.push_back(it->name);
  ++module_generation_;
  return true;
}

void Site::unload_all_modules() {
  // Rebuild PATH / LD_LIBRARY_PATH without any module prefix entries.
  for (const char* var : {"PATH", "LD_LIBRARY_PATH"}) {
    auto entries = env.get_list(var);
    std::erase_if(entries, [&](const std::string& entry) {
      return std::any_of(module_files.begin(), module_files.end(),
                         [&](const ModuleFile& m) {
                           return std::any_of(
                               m.prepends.begin(), m.prepends.end(),
                               [&](const auto& p) { return p.second == entry; });
                         });
    });
    if (entries.empty()) {
      env.unset(var);
    } else {
      env.set(var, support::join(entries, ":"));
    }
  }
  loaded_.clear();
  ++module_generation_;
}

const MpiStackInstall* Site::find_stack(MpiImpl impl,
                                        CompilerFamily compiler) const {
  for (const auto& stack : stacks) {
    if (stack.impl == impl && stack.compiler == compiler) return &stack;
  }
  return nullptr;
}

const MpiStackInstall* Site::stack_for_module(std::string_view module_name) const {
  // Module names are "<slug-with-/>"; match on the stack slug with '/'
  // substituted ("openmpi/1.4.3-intel" <-> "openmpi-1.4.3-intel").
  std::string flattened(module_name);
  std::replace(flattened.begin(), flattened.end(), '/', '-');
  for (const auto& stack : stacks) {
    if (stack.slug() == flattened) return &stack;
  }
  return nullptr;
}

const MpiStackInstall* Site::selected_stack() const {
  for (const auto& dir : env.ld_library_path()) {
    for (const auto& stack : stacks) {
      if (dir == stack.prefix + "/lib") return &stack;
    }
  }
  return nullptr;
}

std::uint64_t Site::discovery_fingerprint() const {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (i * 8)) & 0xff)) * 1099511628211ull;
    }
  };
  mix(vfs.system_generation());
  mix(env.fingerprint());
  mix(loaded_.size());
  for (const auto& module_name : loaded_) mix(support::fnv1a(module_name));
  return h;
}

std::optional<std::string> Site::clib_path() const {
  for (const char* dir : {"/lib64", "/lib", "/usr/lib64", "/usr/lib"}) {
    const std::string candidate = Vfs::join(dir, "libc.so.6");
    if (vfs.exists(candidate)) return vfs.resolve(candidate);
  }
  return std::nullopt;
}

}  // namespace feam::site
