#include "site/environment.hpp"

#include "support/strings.hpp"

namespace feam::site {

std::uint64_t Environment::fingerprint() const {
  // FNV-1a over "name=value\n" records; vars_ iterates in sorted order, so
  // the hash is a pure function of the visible content.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::string_view text) {
    for (const char c : text) {
      h = (h ^ static_cast<std::uint8_t>(c)) * 1099511628211ull;
    }
  };
  for (const auto& [name, value] : vars_) {
    mix(name);
    mix("=");
    mix(value);
    mix("\n");
  }
  return h;
}

void Environment::set(std::string name, std::string value) {
  vars_.insert_or_assign(std::move(name), std::move(value));
  ++generation_;
}

void Environment::unset(std::string_view name) {
  const auto it = vars_.find(name);
  if (it == vars_.end()) return;
  vars_.erase(it);
  ++generation_;
}

std::optional<std::string> Environment::get(std::string_view name) const {
  const auto it = vars_.find(name);
  if (it == vars_.end()) return std::nullopt;
  return it->second;
}

bool Environment::has(std::string_view name) const {
  return vars_.find(name) != vars_.end();
}

std::vector<std::string> Environment::get_list(std::string_view name) const {
  std::vector<std::string> out;
  const auto value = get(name);
  if (!value) return out;
  for (auto& part : support::split(*value, ':')) {
    if (!part.empty()) out.push_back(std::move(part));
  }
  return out;
}

void Environment::prepend_to_list(std::string_view name, std::string_view entry) {
  const auto current = get(name);
  std::string value(entry);
  if (current && !current->empty()) value += ":" + *current;
  set(std::string(name), std::move(value));
}

void Environment::append_to_list(std::string_view name, std::string_view entry) {
  const auto current = get(name);
  std::string value = current && !current->empty() ? *current + ":" : "";
  value += entry;
  set(std::string(name), std::move(value));
}

}  // namespace feam::site
