#include "site/environment.hpp"

#include <cassert>
#include <memory>
#include <utility>

#include "support/strings.hpp"

namespace feam::site {

namespace {

// Per-thread stack of open sessions, across all Environment instances
// (one worker rarely has more than two open at once, so a linear scan is
// cheaper than any map). Entries are owned here; end_session pops its own
// instance's innermost entry.
struct SessionEntry {
  const Environment* env;
  std::unique_ptr<Environment::Shadow> shadow;
};
thread_local std::vector<SessionEntry> t_sessions;

}  // namespace

Environment::Shadow* Environment::shadow() const {
  for (auto it = t_sessions.rbegin(); it != t_sessions.rend(); ++it) {
    if (it->env == this) return it->shadow.get();
  }
  return nullptr;
}

const std::map<std::string, std::string, std::less<>>& Environment::visible()
    const {
  const Shadow* s = shadow();
  return s != nullptr ? s->vars : vars_;
}

void Environment::begin_session() const {
  auto fresh = std::make_unique<Shadow>();
  fresh->vars = visible();        // copy-on-begin: nested sessions stack
  fresh->generation = generation();
  t_sessions.push_back({this, std::move(fresh)});
}

void Environment::end_session() const {
  for (auto it = t_sessions.rbegin(); it != t_sessions.rend(); ++it) {
    if (it->env == this) {
      t_sessions.erase(std::next(it).base());
      return;
    }
  }
  assert(false && "end_session without a matching begin_session");
}

bool Environment::in_session() const { return shadow() != nullptr; }

const std::map<std::string, std::string, std::less<>>& Environment::all()
    const {
  return visible();
}

std::uint64_t Environment::generation() const {
  const Shadow* s = shadow();
  return s != nullptr ? s->generation : generation_;
}

std::uint64_t Environment::fingerprint() const {
  // FNV-1a over "name=value\n" records; the map iterates in sorted order,
  // so the hash is a pure function of the visible content.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::string_view text) {
    for (const char c : text) {
      h = (h ^ static_cast<std::uint8_t>(c)) * 1099511628211ull;
    }
  };
  for (const auto& [name, value] : visible()) {
    mix(name);
    mix("=");
    mix(value);
    mix("\n");
  }
  return h;
}

void Environment::set(std::string name, std::string value) {
  if (Shadow* s = shadow()) {
    s->vars.insert_or_assign(std::move(name), std::move(value));
    ++s->generation;
    return;
  }
  vars_.insert_or_assign(std::move(name), std::move(value));
  ++generation_;
}

void Environment::unset(std::string_view name) {
  if (Shadow* s = shadow()) {
    const auto it = s->vars.find(name);
    if (it == s->vars.end()) return;
    s->vars.erase(it);
    ++s->generation;
    return;
  }
  const auto it = vars_.find(name);
  if (it == vars_.end()) return;
  vars_.erase(it);
  ++generation_;
}

std::optional<std::string> Environment::get(std::string_view name) const {
  const auto& vars = visible();
  const auto it = vars.find(name);
  if (it == vars.end()) return std::nullopt;
  return it->second;
}

bool Environment::has(std::string_view name) const {
  const auto& vars = visible();
  return vars.find(name) != vars.end();
}

std::vector<std::string> Environment::get_list(std::string_view name) const {
  std::vector<std::string> out;
  const auto value = get(name);
  if (!value) return out;
  for (auto& part : support::split(*value, ':')) {
    if (!part.empty()) out.push_back(std::move(part));
  }
  return out;
}

void Environment::prepend_to_list(std::string_view name, std::string_view entry) {
  const auto current = get(name);
  std::string value(entry);
  if (current && !current->empty()) value += ":" + *current;
  set(std::string(name), std::move(value));
}

void Environment::append_to_list(std::string_view name, std::string_view entry) {
  const auto current = get(name);
  std::string value = current && !current->empty() ? *current + ":" : "";
  value += entry;
  set(std::string(name), std::move(value));
}

}  // namespace feam::site
