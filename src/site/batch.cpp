#include "site/batch.hpp"

#include <cstdio>

#include "support/strings.hpp"

namespace feam::site {

namespace {

std::string walltime(int minutes) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%02d:%02d:00", minutes / 60, minutes % 60);
  return buf;
}

}  // namespace

std::string BatchScript::render() const {
  std::string out = "#!/bin/sh\n";
  switch (kind) {
    case BatchKind::kPbs:
      out += "#PBS -N " + job_name + "\n";
      out += "#PBS -q " + queue + "\n";
      out += "#PBS -l nodes=" + std::to_string(nodes) + ":ppn=" +
             std::to_string(tasks_per_node) + "\n";
      out += "#PBS -l walltime=" + walltime(walltime_minutes) + "\n";
      break;
    case BatchKind::kSge:
      out += "#$ -N " + job_name + "\n";
      out += "#$ -q " + queue + "\n";
      out += "#$ -pe mpi " + std::to_string(total_tasks()) + "\n";
      out += "#$ -l h_rt=" + walltime(walltime_minutes) + "\n";
      break;
    case BatchKind::kSlurm:
      out += "#SBATCH --job-name=" + job_name + "\n";
      out += "#SBATCH --partition=" + queue + "\n";
      out += "#SBATCH --nodes=" + std::to_string(nodes) + "\n";
      out += "#SBATCH --ntasks-per-node=" + std::to_string(tasks_per_node) + "\n";
      out += "#SBATCH --time=" + walltime(walltime_minutes) + "\n";
      break;
  }
  for (const auto& command : commands) out += command + "\n";
  return out;
}

std::optional<BatchScript> BatchScript::parse(std::string_view text) {
  BatchScript script;
  script.commands.clear();
  bool any_directive = false;

  const auto parse_minutes = [](std::string_view hms) -> std::optional<int> {
    const auto parts = support::split(hms, ':');
    if (parts.size() != 3) return std::nullopt;
    try {
      return std::stoi(parts[0]) * 60 + std::stoi(parts[1]);
    } catch (...) {
      return std::nullopt;
    }
  };

  for (const auto& raw_line : support::split(text, '\n')) {
    const auto line = support::trim(raw_line);
    if (line.empty() || line == "#!/bin/sh") continue;

    std::vector<std::string> fields;
    if (support::starts_with(line, "#PBS ")) {
      script.kind = BatchKind::kPbs;
      fields = support::split_ws(line.substr(5));
    } else if (support::starts_with(line, "#$ ")) {
      script.kind = BatchKind::kSge;
      fields = support::split_ws(line.substr(3));
    } else if (support::starts_with(line, "#SBATCH ")) {
      script.kind = BatchKind::kSlurm;
      fields = support::split_ws(line.substr(8));
    } else if (line.front() == '#') {
      continue;  // plain comment
    } else {
      script.commands.emplace_back(line);
      continue;
    }

    any_directive = true;
    if (fields.empty()) return std::nullopt;

    if (script.kind == BatchKind::kSlurm) {
      // "--key=value" form.
      for (const auto& field : fields) {
        const auto eq = field.find('=');
        const std::string key = field.substr(0, eq);
        const std::string value =
            eq == std::string::npos ? "" : field.substr(eq + 1);
        if (key == "--job-name") script.job_name = value;
        else if (key == "--partition") script.queue = value;
        else if (key == "--nodes") script.nodes = std::stoi(value);
        else if (key == "--ntasks-per-node") script.tasks_per_node = std::stoi(value);
        else if (key == "--time") {
          const auto m = parse_minutes(value);
          if (!m) return std::nullopt;
          script.walltime_minutes = *m;
        }
      }
      continue;
    }

    // SGE "-pe mpi N" (three fields, handled before the two-char flags).
    if (fields[0] == "-pe") {
      if (fields.size() < 3) return std::nullopt;
      try {
        script.nodes = 1;
        script.tasks_per_node = std::stoi(fields[2]);
      } catch (...) {
        return std::nullopt;
      }
      continue;
    }

    // PBS / SGE "-flag value" form.
    if (fields.size() < 2 || fields[0].size() != 2 || fields[0][0] != '-') {
      return std::nullopt;
    }
    const char flag = fields[0][1];
    const std::string& value = fields[1];
    if (flag == 'N') {
      script.job_name = value;
    } else if (flag == 'q') {
      script.queue = value;
    } else if (flag == 'l') {
      // "nodes=2:ppn=4", "walltime=00:05:00", "h_rt=00:05:00".
      for (const auto& part : support::split(value, ':')) {
        const auto eq = part.find('=');
        if (eq == std::string::npos) continue;
        const std::string key = part.substr(0, eq);
        const std::string v = part.substr(eq + 1);
        try {
          if (key == "nodes") script.nodes = std::stoi(v);
          if (key == "ppn") script.tasks_per_node = std::stoi(v);
        } catch (...) {
          return std::nullopt;
        }
      }
      if (support::starts_with(value, "walltime=") ||
          support::starts_with(value, "h_rt=")) {
        const auto m = parse_minutes(value.substr(value.find('=') + 1));
        if (!m) return std::nullopt;
        script.walltime_minutes = *m;
      }
    }
  }
  if (!any_directive) return std::nullopt;
  return script;
}

}  // namespace feam::site
