// Shell environment of a login session at a computing site. FEAM reads
// PATH / LD_LIBRARY_PATH to discover accessible MPI stacks, and the
// resolution model *writes* LD_LIBRARY_PATH entries to make library copies
// visible at runtime (paper Section IV).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace feam::site {

class Environment {
 public:
  void set(std::string name, std::string value);
  void unset(std::string_view name);
  std::optional<std::string> get(std::string_view name) const;
  bool has(std::string_view name) const;

  // Colon-separated list variables.
  std::vector<std::string> get_list(std::string_view name) const;
  void prepend_to_list(std::string_view name, std::string_view entry);
  void append_to_list(std::string_view name, std::string_view entry);

  std::vector<std::string> path() const { return get_list("PATH"); }
  std::vector<std::string> ld_library_path() const {
    return get_list("LD_LIBRARY_PATH");
  }

  const std::map<std::string, std::string, std::less<>>& all() const {
    return vars_;
  }

  // Monotone counter bumped on every mutation (set/unset, list edits).
  // Cache keys use it to detect staleness.
  std::uint64_t generation() const { return generation_; }

  // Content hash of the visible variables. Unlike generation(), a
  // save/edit/restore cycle lands back on the original value, so memo keys
  // built from it survive the constant module load/unload churn of the
  // migration loop. Environments are small (a handful of variables), so
  // hashing on demand is cheap.
  std::uint64_t fingerprint() const;

 private:
  std::map<std::string, std::string, std::less<>> vars_;
  std::uint64_t generation_ = 0;
};

}  // namespace feam::site
