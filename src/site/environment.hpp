// Shell environment of a login session at a computing site. FEAM reads
// PATH / LD_LIBRARY_PATH to discover accessible MPI stacks, and the
// resolution model *writes* LD_LIBRARY_PATH entries to make library copies
// visible at runtime (paper Section IV).
//
// Sessions: a worker thread that begins a session (see site::ShellSession
// in site/lease.hpp) gets a thread-private copy of the variables — its
// module loads and LD_LIBRARY_PATH edits are invisible to every other
// thread, exactly as two login shells at a real site don't share exports.
// This is what lets concurrent migrations target the same site without a
// site-wide lease: the shell, previously the main shared mutable state,
// becomes per-worker. Sessions nest per thread (LIFO); without one, all
// accessors read and mutate the base environment as before.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace feam::site {

class Environment {
 public:
  void set(std::string name, std::string value);
  void unset(std::string_view name);
  std::optional<std::string> get(std::string_view name) const;
  bool has(std::string_view name) const;

  // Colon-separated list variables.
  std::vector<std::string> get_list(std::string_view name) const;
  void prepend_to_list(std::string_view name, std::string_view entry);
  void append_to_list(std::string_view name, std::string_view entry);

  std::vector<std::string> path() const { return get_list("PATH"); }
  std::vector<std::string> ld_library_path() const {
    return get_list("LD_LIBRARY_PATH");
  }

  const std::map<std::string, std::string, std::less<>>& all() const;

  // Monotone counter bumped on every mutation (set/unset, list edits).
  // Cache keys use it to detect staleness. Inside a session the counter
  // continues from the base value it was copied at, so it stays monotone
  // from the session's point of view.
  std::uint64_t generation() const;

  // Content hash of the visible variables. Unlike generation(), a
  // save/edit/restore cycle lands back on the original value, so memo keys
  // built from it survive the constant module load/unload churn of the
  // migration loop. Environments are small (a handful of variables), so
  // hashing on demand is cheap.
  std::uint64_t fingerprint() const;

  // --- thread-private sessions (use site::ShellSession, not these raw)
  // begin_session copies the current visible variables into a shadow that
  // only the calling thread sees; end_session discards the innermost
  // shadow, restoring the previous view. The base map is never touched by
  // a session, so other threads' reads stay race-free. Do not move an
  // Environment while any thread has a session open on it.
  void begin_session() const;
  void end_session() const;
  bool in_session() const;

  // Shadow of one session: a full variable copy plus its own generation
  // counter. Public only so the thread-local registry in the .cpp can name
  // it — not part of the API surface.
  struct Shadow {
    std::map<std::string, std::string, std::less<>> vars;
    std::uint64_t generation = 0;
  };

 private:
  // The calling thread's innermost shadow for this instance, or nullptr.
  Shadow* shadow() const;
  // Visible variable map for the calling thread (shadow or base).
  const std::map<std::string, std::string, std::less<>>& visible() const;

  std::map<std::string, std::string, std::less<>> vars_;
  std::uint64_t generation_ = 0;
};

}  // namespace feam::site
