#include "eval/fleet.hpp"

#include <iterator>
#include <map>
#include <optional>
#include <utility>

#include "feam/caches.hpp"
#include "feam/survey.hpp"
#include "report/aggregate.hpp"
#include "site/lease.hpp"
#include "toolchain/linker.hpp"

namespace feam::eval {

namespace {

std::string module_name_of(const site::MpiStackInstall& stack) {
  return std::string(site::mpi_impl_slug(stack.impl)) + "/" +
         stack.version.str() + "-" + site::compiler_slug(stack.compiler);
}

report::RunRecord pair_record(const std::string& source_site,
                              const std::string& binary,
                              const std::string& target_site) {
  report::RunRecord record;
  record.command = "fleet";
  record.binary = binary;
  record.source_site = source_site;
  record.target_site = target_site;
  record.mode = "extended";
  return record;
}

void fill_from_entry(report::RunRecord& record, const SurveyEntry& entry) {
  record.has_prediction = entry.blocking_determinant != "error";
  record.exit_code = record.has_prediction ? 0 : 1;
  record.ready = entry.ready;
  const Prediction& p = entry.prediction;
  for (const auto& det : p.determinants) {
    record.determinants.push_back({report::determinant_key(det.kind),
                                   det.evaluated, det.compatible, det.detail});
  }
  record.missing_libraries = p.missing_libraries.size();
  record.resolved_libraries = p.resolved_libraries.size();
  record.unresolved_libraries = p.unresolved_libraries.size();
  record.provenance = p.provenance;
}

}  // namespace

std::string FleetRunResult::records_jsonl() const {
  std::string out;
  for (const auto& record : records) {
    out += record.to_json().dump();
    out += '\n';
  }
  return out;
}

std::string FleetRunResult::readiness_matrix() const {
  std::vector<report::RunRecord> copy = records;
  const report::Aggregate aggregate =
      report::aggregate_records(std::move(copy));
  return report::render_readiness_matrix(aggregate);
}

FleetRunResult run_fleet(fleet::Fleet& fleet, const FleetRunOptions& options) {
  FleetRunResult result;
  std::optional<MigrationCaches> caches;
  if (options.use_caches) caches.emplace();
  MigrationCaches* cache_ptr = caches ? &*caches : nullptr;

  std::vector<site::Site*> sites;
  sites.reserve(fleet.sites.size());
  for (const auto& s : fleet.sites) sites.push_back(s.get());

  site::Site& anchor = fleet.anchor();
  const FeamConfig config{};
  result.records.reserve(fleet.workloads.size() * fleet.sites.size());

  for (std::size_t w = 0; w < fleet.workloads.size(); ++w) {
    const auto& workload = fleet.workloads[w];
    const auto& stack =
        anchor.stacks[static_cast<std::size_t>(fleet.build_stack[w])];
    const std::string path = "/home/user/apps/" + workload.program.name;
    const auto compiled =
        toolchain::compile_mpi_program(anchor, workload.program, stack, path);
    if (!compiled.ok()) {
      // Keep the matrix rectangular: a build failure shows up as a full
      // row of failed records, never as a silently shorter matrix.
      ++result.compile_failures;
      for (const site::Site* s : sites) {
        report::RunRecord record =
            pair_record(anchor.name, workload.program.name, s->name);
        record.exit_code = 1;
        result.records.push_back(std::move(record));
      }
      continue;
    }

    // Source phase in the guaranteed environment: the anchor shell with
    // the build stack's module loaded, kept private to this sweep.
    std::optional<SourcePhaseOutput> source;
    {
      site::ShellSession shell(anchor);
      anchor.unload_all_modules();
      anchor.load_module(module_name_of(stack));
      auto phase = run_source_phase(anchor, path, config, cache_ptr);
      if (phase.ok()) source.emplace(std::move(phase).take());
    }

    const support::Bytes* data = anchor.vfs.read(path);
    const support::Bytes binary_bytes =
        data != nullptr ? *data : support::Bytes{};
    SurveyOptions survey_options;
    survey_options.jobs = options.jobs;
    survey_options.caches = cache_ptr;
    const SurveyReport survey =
        survey_sites(sites, workload.program.name, binary_bytes,
                     source ? &*source : nullptr, config, survey_options);
    anchor.vfs.remove(path);

    // The survey ranks entries for human output; records go back to fleet
    // input order so the matrix is position-stable.
    std::map<std::string_view, const SurveyEntry*> by_site;
    for (const auto& entry : survey.entries) by_site[entry.site_name] = &entry;
    for (const site::Site* s : sites) {
      report::RunRecord record =
          pair_record(anchor.name, workload.program.name, s->name);
      if (const auto it = by_site.find(s->name); it != by_site.end()) {
        fill_from_entry(record, *it->second);
      } else {
        record.exit_code = 1;
      }
      if (record.ready) ++result.ready_pairs;
      result.records.push_back(std::move(record));
    }

    // Rolling upgrades land between sweeps — a sequential barrier point,
    // so the drift schedule is independent of the survey's job count.
    if (options.drift && fleet.spec.drift_rate > 0 &&
        w + 1 < fleet.workloads.size()) {
      auto ops = fleet::apply_drift_round(fleet, static_cast<int>(w));
      result.drift_log.insert(result.drift_log.end(),
                              std::make_move_iterator(ops.begin()),
                              std::make_move_iterator(ops.end()));
    }
  }

  if (caches) {
    result.caches.edc_hits = caches->edc.hits();
    result.caches.edc_misses = caches->edc.misses();
    result.caches.bdc_hits = caches->bdc.hits();
    result.caches.bdc_misses = caches->bdc.misses();
    result.caches.resolver_hits = caches->resolver.hits();
    result.caches.resolver_misses = caches->resolver.misses();
  }
  return result;
}

}  // namespace feam::eval
