#include "eval/tables.hpp"

#include <cstdio>

#include "support/table.hpp"

namespace feam::eval {

namespace {
std::string pct(double value) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.0f%%", value);
  return buf;
}
}  // namespace

Table3 compute_table3(const std::vector<MigrationResult>& results) {
  Table3 t;
  for (const auto& r : results) {
    AccuracyCell& basic = r.suite == "NAS" ? t.basic_nas : t.basic_spec;
    AccuracyCell& extended = r.suite == "NAS" ? t.extended_nas : t.extended_spec;
    ++basic.total;
    ++extended.total;
    basic.correct += r.basic_correct();
    extended.correct += r.extended_correct();
  }
  return t;
}

std::string render_table3(const Table3& t) {
  support::TextTable table({"", "Basic Prediction", "Extended Prediction"});
  table.add_row({"NAS", pct(t.basic_nas.percent()), pct(t.extended_nas.percent())});
  table.add_row({"SPEC", pct(t.basic_spec.percent()), pct(t.extended_spec.percent())});
  std::string out = "TABLE III. ACCURACY OF PREDICTION MODEL\n" + table.render();
  char detail[160];
  std::snprintf(detail, sizeof detail,
                "(NAS: %d/%d basic, %d/%d extended; SPEC: %d/%d basic, %d/%d "
                "extended)\n",
                t.basic_nas.correct, t.basic_nas.total, t.extended_nas.correct,
                t.extended_nas.total, t.basic_spec.correct, t.basic_spec.total,
                t.extended_spec.correct, t.extended_spec.total);
  return out + detail;
}

Table4 compute_table4(const std::vector<MigrationResult>& results) {
  Table4 t;
  for (const auto& r : results) {
    Table4Cell& cell = r.suite == "NAS" ? t.nas : t.spec;
    ++cell.total;
    cell.success_before += r.success_before_resolution;
    cell.success_after += r.success_after_resolution;
  }
  return t;
}

std::string render_table4(const Table4& t) {
  support::TextTable table(
      {"", "Before Resolution", "After Resolution", "Increase"});
  table.add_row({"NAS", pct(t.nas.before_percent()), pct(t.nas.after_percent()),
                 pct(t.nas.increase_percent())});
  table.add_row({"SPEC", pct(t.spec.before_percent()),
                 pct(t.spec.after_percent()), pct(t.spec.increase_percent())});
  std::string out = "TABLE IV. IMPACT OF RESOLUTION MODEL\n" + table.render();
  char detail[160];
  std::snprintf(detail, sizeof detail,
                "(NAS: %d->%d of %d; SPEC: %d->%d of %d)\n",
                t.nas.success_before, t.nas.success_after, t.nas.total,
                t.spec.success_before, t.spec.success_after, t.spec.total);
  return out + detail;
}

DeterminantBreakdown compute_determinants(
    const std::vector<MigrationResult>& results) {
  DeterminantBreakdown d;
  for (const auto& r : results) {
    ++d.total;
    for (const auto& det : r.extended_prediction.determinants) {
      if (det.evaluated && !det.compatible) {
        ++d.failed_determinant[determinant_name(det.kind)];
      }
    }
    if (!r.success_before_resolution) {
      ++d.failure_status_before[toolchain::run_status_name(r.status_before)];
    }
    if (!r.success_after_resolution) {
      ++d.failure_status_after[toolchain::run_status_name(r.status_after)];
    }
  }
  return d;
}

std::string render_determinants(const DeterminantBreakdown& d) {
  std::string out = "FIGURE 1 COMPANION: determinant failures across " +
                    std::to_string(d.total) + " migrations\n";
  support::TextTable det({"Determinant", "Predictions failed"});
  for (const auto& [name, count] : d.failed_determinant) {
    det.add_row({name, std::to_string(count)});
  }
  out += det.render();
  out += "Actual failure causes (before resolution):\n";
  support::TextTable before({"Run status", "Count"});
  for (const auto& [name, count] : d.failure_status_before) {
    before.add_row({name, std::to_string(count)});
  }
  out += before.render();
  out += "Actual failure causes (after resolution):\n";
  support::TextTable after({"Run status", "Count"});
  for (const auto& [name, count] : d.failure_status_after) {
    after.add_row({name, std::to_string(count)});
  }
  out += after.render();
  return out;
}

std::string results_to_csv(const std::vector<MigrationResult>& results) {
  const auto quote = [](const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string out = "\"";
    for (const char c : field) {
      if (c == '"') out += '"';
      out += c;
    }
    return out + "\"";
  };
  std::string csv =
      "binary,suite,home,target,basic_ready,extended_ready,"
      "success_before,success_after,status_before,status_after,"
      "missing_libraries,resolved_libraries\n";
  for (const auto& r : results) {
    csv += quote(r.binary_name) + "," + r.suite + "," + r.home_site + "," +
           r.target_site + "," + (r.basic_ready ? "1" : "0") + "," +
           (r.extended_ready ? "1" : "0") + "," +
           (r.success_before_resolution ? "1" : "0") + "," +
           (r.success_after_resolution ? "1" : "0") + "," +
           quote(toolchain::run_status_name(r.status_before)) + "," +
           quote(toolchain::run_status_name(r.status_after)) + "," +
           std::to_string(r.missing_library_count) + "," +
           std::to_string(r.resolved_library_count) + "\n";
  }
  return csv;
}

std::map<std::pair<std::string, std::string>, RouteCell> compute_route_matrix(
    const std::vector<MigrationResult>& results) {
  std::map<std::pair<std::string, std::string>, RouteCell> matrix;
  for (const auto& r : results) {
    RouteCell& cell = matrix[{r.home_site, r.target_site}];
    ++cell.total;
    cell.success_before += r.success_before_resolution;
    cell.success_after += r.success_after_resolution;
  }
  return matrix;
}

std::string render_route_matrix(
    const std::map<std::pair<std::string, std::string>, RouteCell>& matrix) {
  support::TextTable table({"home -> target", "migrations",
                            "success before", "success after"});
  for (const auto& [route, cell] : matrix) {
    table.add_row({route.first + " -> " + route.second,
                   std::to_string(cell.total),
                   std::to_string(cell.success_before) + " (" +
                       pct(100.0 * cell.success_before / cell.total) + ")",
                   std::to_string(cell.success_after) + " (" +
                       pct(100.0 * cell.success_after / cell.total) + ")"});
  }
  return table.render();
}

}  // namespace feam::eval
