// The evaluation harness of paper Section VI: builds the NPB + SPEC MPI2007
// test set across the five Table II sites, migrates every binary to every
// other site with a matching MPI implementation, runs FEAM's basic and
// extended predictions, executes with the paper's five-retry policy, and
// aggregates Table III (prediction accuracy) and Table IV (resolution
// impact).
//
// Ground truth is computed independently of FEAM: the "user" loads the
// matching-implementation module (preferring the binary's own compiler
// family — the choice a scientist matching the MPI stack would make) and
// runs mpiexec. Only the after-resolution run follows FEAM's generated
// configuration, exactly as a FEAM user would.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "feam/caches.hpp"
#include "feam/phases.hpp"
#include "site/site.hpp"
#include "toolchain/launcher.hpp"
#include "workloads/benchmarks.hpp"

namespace feam::eval {

// One binary of the test set: a workload compiled with one MPI stack at
// one (home) site, verified to run there.
struct TestBinary {
  workloads::Workload workload;
  std::string home_site;
  site::MpiStackInstall stack;  // the stack it was compiled with
  std::string path;             // location at the home site
};

struct MigrationResult {
  std::string binary_name;
  std::string suite;  // "NAS" | "SPEC"
  std::string home_site;
  std::string target_site;

  bool basic_ready = false;
  bool extended_ready = false;
  bool success_before_resolution = false;
  bool success_after_resolution = false;
  toolchain::RunStatus status_before = toolchain::RunStatus::kSuccess;
  toolchain::RunStatus status_after = toolchain::RunStatus::kSuccess;

  std::size_t missing_library_count = 0;
  std::size_t resolved_library_count = 0;

  // Per-determinant verdicts from the extended prediction (Figure 1 data).
  feam::Prediction extended_prediction;

  // Per-pair failure attribution ("" = clean pair):
  //   "io"    — injected Vfs faults touched this migration (its predictions
  //             and execution outcomes may reflect a degraded site view),
  //   "parse" — a phase failed on a genuine ELF parse error with no faults.
  // Surfaced as an extra determinant verdict in the run record, so the
  // report matrix shows the category as the blocking determinant.
  std::string failure_attribution;
  std::string failure_detail;

  bool basic_correct() const {
    return basic_ready == success_before_resolution;
  }
  bool extended_correct() const {
    return extended_ready == success_after_resolution;
  }
};

struct ExperimentOptions {
  std::uint64_t fault_seed = 20130613;  // 0 disables system errors
  int ranks = 4;
  int retry_attempts = 5;  // paper Section VI.C
  // Restrict to a subset of workloads (empty = all); used by unit tests to
  // keep runtimes down.
  std::vector<std::string> only_benchmarks;

  // Ablation switches (see DESIGN.md section 4).
  // Install library copies without the recursive prediction check.
  bool recursive_copy_validation = true;
  // Skip the resolution model entirely in the extended prediction.
  bool apply_resolution = true;
  // Skip the hello-world usability/compatibility tests (trust every
  // advertised stack).
  bool run_usability_tests = true;

  // Worker threads migrating concurrently (1 = inline sequential). Results
  // are bit-identical at any job count: the fault model is stateless, every
  // site is restored after use, and results land in pre-assigned slots.
  int jobs = 1;
  // Memoize BDC descriptions (content-addressed), EDC scans (generation-
  // keyed), and the per-binary source phase. Transparent: predictions and
  // execution outcomes are identical with caches off — `false` is the
  // legacy path the parallel_matrix bench uses as its baseline.
  bool use_caches = true;

  // Opt-in Vfs fault injection during run() (0.0 = off). Each site gets an
  // injector seeded vfs_fault_seed ^ fnv1a(site name), enabled only for
  // the duration of run() — build_test_set always sees a healthy Vfs.
  // Faulted pairs come back with failure_attribution set; pairs untouched
  // by faults are bit-identical to an uninjected run (the caches never
  // store faulted computations).
  double vfs_fault_rate = 0.0;
  std::uint64_t vfs_fault_seed = 20130613;
};

class Experiment {
 public:
  explicit Experiment(ExperimentOptions options = {});
  ~Experiment();

  // Compiles the benchmark matrix (Table II stacks x suites), dropping
  // combinations that do not compile or do not run at their home site
  // (paper VI.A). Call before run().
  void build_test_set();

  // Runs every migration. Requires build_test_set() first.
  void run();

  const std::vector<TestBinary>& test_set() const { return test_set_; }
  const std::vector<MigrationResult>& results() const { return results_; }

  std::size_t test_set_size(std::string_view suite) const;

  // Claimed in Section VI.B: FEAM's MPI-implementation-availability check
  // was 100% accurate. Verified during run(); exposed for the benches.
  bool mpi_matching_always_correct() const { return mpi_matching_correct_; }

  // Memoization stats for the benches; caches() is null when
  // options.use_caches is false.
  const feam::MigrationCaches* caches() const { return caches_.get(); }
  std::uint64_t source_phase_hits() const { return source_hits_; }
  std::uint64_t source_phase_misses() const { return source_misses_; }

  // (binary, site) pairs skipped because the site lacks the matching MPI
  // implementation. At those sites FEAM trivially (and correctly) predicts
  // NOT READY; the paper reports accuracy only over matching sites because
  // "if results for all sites were reported, our prediction accuracy would
  // be much higher" (Section VI.B).
  std::size_t skipped_no_matching_impl() const { return skipped_no_impl_; }

  site::Site& site(std::string_view name);

 private:
  struct SourceMemoEntry;

  std::optional<MigrationResult> migrate_one(const TestBinary& binary,
                                             site::Site& target);
  // The source phase for `binary`, run in its guaranteed environment at
  // `home` (module loaded, then unloaded again) under home's lease.
  // Memoized per binary when caches are on — the paper's workflow runs it
  // once per binary, not once per migration.
  const support::Result<feam::SourcePhaseOutput>& source_phase_for(
      const TestBinary& binary, site::Site& home,
      const feam::FeamConfig& config,
      std::optional<support::Result<feam::SourcePhaseOutput>>& local);

  ExperimentOptions options_;
  std::vector<std::unique_ptr<site::Site>> sites_;
  std::map<std::string, std::size_t, std::less<>> site_index_;
  std::vector<TestBinary> test_set_;
  std::vector<MigrationResult> results_;
  std::atomic<bool> mpi_matching_correct_{true};
  std::size_t skipped_no_impl_ = 0;

  std::unique_ptr<feam::MigrationCaches> caches_;
  // Per-site fault injectors (empty when vfs_fault_rate == 0), index-
  // aligned with sites_.
  std::vector<std::shared_ptr<site::FaultInjector>> injectors_;
  std::mutex source_memo_mutex_;
  std::map<std::string, std::unique_ptr<SourceMemoEntry>> source_memo_;
  std::atomic<std::uint64_t> source_hits_{0};
  std::atomic<std::uint64_t> source_misses_{0};
  // Estimated bytes retained by the source-phase memo, mirrored into the
  // process-wide cache.bytes{cache=source} gauge and released on
  // destruction (the memo dies with the Experiment).
  std::atomic<std::uint64_t> source_footprint_{0};
};

}  // namespace feam::eval
