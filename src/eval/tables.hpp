// Aggregation of migration results into the paper's tables and figures,
// plus their text renderings (used by the bench/ binaries).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "eval/experiment.hpp"

namespace feam::eval {

struct AccuracyCell {
  int correct = 0;
  int total = 0;
  double percent() const {
    return total == 0 ? 0.0 : 100.0 * correct / total;
  }
};

// Table III: accuracy of the prediction model.
struct Table3 {
  AccuracyCell basic_nas, basic_spec, extended_nas, extended_spec;
};
Table3 compute_table3(const std::vector<MigrationResult>& results);
std::string render_table3(const Table3& t);

// Table IV: impact of the resolution model.
struct Table4Cell {
  int success_before = 0;
  int success_after = 0;
  int total = 0;
  double before_percent() const {
    return total == 0 ? 0.0 : 100.0 * success_before / total;
  }
  double after_percent() const {
    return total == 0 ? 0.0 : 100.0 * success_after / total;
  }
  // "increase in successful executions due to resolution" — the paper
  // computes it relative to the before-resolution successes.
  double increase_percent() const {
    return success_before == 0
               ? 0.0
               : 100.0 * (success_after - success_before) / success_before;
  }
};
struct Table4 {
  Table4Cell nas, spec;
};
Table4 compute_table4(const std::vector<MigrationResult>& results);
std::string render_table4(const Table4& t);

// Figure 1 companion data: which determinant blocked execution, and the
// run-status breakdown of actual failures.
struct DeterminantBreakdown {
  // determinant name -> number of extended predictions it failed in
  std::map<std::string, int> failed_determinant;
  // run-status name -> count over before-resolution executions
  std::map<std::string, int> failure_status_before;
  std::map<std::string, int> failure_status_after;
  int total = 0;
};
DeterminantBreakdown compute_determinants(
    const std::vector<MigrationResult>& results);
std::string render_determinants(const DeterminantBreakdown& d);

// Per-migration CSV export for downstream analysis (one header row, one
// row per migration; fields are RFC-4180-quoted where needed).
std::string results_to_csv(const std::vector<MigrationResult>& results);

// Home-site x target-site success matrix (before/after resolution counts),
// the route-level view behind Table IV.
struct RouteCell {
  int total = 0;
  int success_before = 0;
  int success_after = 0;
};
std::map<std::pair<std::string, std::string>, RouteCell> compute_route_matrix(
    const std::vector<MigrationResult>& results);
std::string render_route_matrix(
    const std::map<std::pair<std::string, std::string>, RouteCell>& matrix);

}  // namespace feam::eval
