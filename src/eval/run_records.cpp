#include "eval/run_records.hpp"

namespace feam::eval {

report::RunRecord to_run_record(const MigrationResult& result) {
  report::RunRecord record;
  record.command = "experiment";
  record.binary = result.binary_name;
  record.source_site = result.home_site;
  record.target_site = result.target_site;
  record.mode = "extended";
  record.exit_code = result.extended_ready ? 0 : 2;
  record.has_prediction = true;
  record.ready = result.extended_ready;
  for (const auto& det : result.extended_prediction.determinants) {
    report::DeterminantVerdict verdict;
    verdict.key = report::determinant_key(det.kind);
    verdict.evaluated = det.evaluated;
    verdict.compatible = det.compatible;
    verdict.detail = det.detail;
    record.determinants.push_back(std::move(verdict));
  }
  if (!result.failure_attribution.empty()) {
    // Surface the pair-level failure as an extra (failed) verdict so
    // blocking_determinant() and the report matrix pick the category up
    // through the ordinary machinery. Prepended: determinant verdicts
    // computed under faults are themselves unreliable, so the category
    // must win the "first blocking" scan.
    report::DeterminantVerdict verdict;
    verdict.key = result.failure_attribution;  // "io" | "parse"
    verdict.evaluated = true;
    verdict.compatible = false;
    verdict.detail = result.failure_detail;
    record.determinants.insert(record.determinants.begin(),
                               std::move(verdict));
    record.ready = false;
    record.exit_code = 2;
  }
  record.missing_libraries =
      static_cast<std::uint64_t>(result.missing_library_count);
  record.resolved_libraries =
      static_cast<std::uint64_t>(result.resolved_library_count);
  record.unresolved_libraries = static_cast<std::uint64_t>(
      result.missing_library_count > result.resolved_library_count
          ? result.missing_library_count - result.resolved_library_count
          : 0);
  return record;
}

std::vector<report::RunRecord> to_run_records(
    const std::vector<MigrationResult>& results) {
  std::vector<report::RunRecord> records;
  records.reserve(results.size());
  for (const auto& result : results) {
    records.push_back(to_run_record(result));
  }
  return records;
}

}  // namespace feam::eval
