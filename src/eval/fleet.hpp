// The fleet-aware experiment driver: compiles every generated workload at
// the fleet's anchor site, runs the source phase once per workload, and
// surveys the entire fleet with it — an N-site x M-workload readiness
// matrix produced through the same survey/cache machinery migrations use.
//
// Drift interleaving: when the spec enables rolling-upgrade drift, one
// drift round is applied *between* per-workload surveys — a sequential
// barrier point. Inside a survey, sites are only read (probe writes land
// in scratch, which the discovery fingerprint excludes) and results land
// in input-order slots, so the full matrix is byte-identical at any job
// count even with drift on. Drifted sites change fingerprint, so the EDC
// memo re-verifies them instead of serving a stale scan; the cached and
// uncached runs of the same fleet therefore produce identical records —
// the invariant the fleet bench gate enforces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/drift.hpp"
#include "fleet/generate.hpp"
#include "report/run_record.hpp"

namespace feam::eval {

struct FleetRunOptions {
  int jobs = 1;
  bool use_caches = true;
  // Honor spec.drift_rate between workload sweeps (off for A/B runs that
  // need a frozen fleet).
  bool drift = true;
};

struct FleetCacheStats {
  std::uint64_t edc_hits = 0, edc_misses = 0;
  std::uint64_t bdc_hits = 0, bdc_misses = 0;
  std::uint64_t resolver_hits = 0, resolver_misses = 0;

  static double rate(std::uint64_t hits, std::uint64_t misses) {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
  double edc_hit_rate() const { return rate(edc_hits, edc_misses); }
  double bdc_hit_rate() const { return rate(bdc_hits, bdc_misses); }
  double resolver_hit_rate() const {
    return rate(resolver_hits, resolver_misses);
  }
};

struct FleetRunResult {
  // One feam.run_record/1 per (workload, site) pair, workload-major in
  // fleet input order — deterministic, so byte equality of records_jsonl()
  // across runs proves the whole matrix matched.
  std::vector<report::RunRecord> records;
  std::vector<fleet::DriftOp> drift_log;
  FleetCacheStats caches;
  std::size_t ready_pairs = 0;
  std::size_t compile_failures = 0;

  std::size_t pairs() const { return records.size(); }
  // Compact JSONL dump (one record per line) — the artifact `feam report`
  // ingests and the byte-identity witness for determinism checks.
  std::string records_jsonl() const;
  // The aggregated readiness matrix table (report pipeline rendering).
  std::string readiness_matrix() const;
};

FleetRunResult run_fleet(fleet::Fleet& fleet,
                         const FleetRunOptions& options = {});

}  // namespace feam::eval
