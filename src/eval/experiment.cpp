#include "eval/experiment.hpp"

#include <algorithm>
#include <stdexcept>

#include "feam/bdc.hpp"
#include "feam/identify.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

namespace feam::eval {

namespace {

using site::Site;

// The module name provisioning registers for a stack.
std::string module_name_of(const site::MpiStackInstall& stack) {
  return std::string(site::mpi_impl_slug(stack.impl)) + "/" +
         stack.version.str() + "-" + site::compiler_slug(stack.compiler);
}

// The naive "matching MPI implementation" stack choice a scientist makes
// before FEAM is involved: same implementation, preferring the compiler
// the binary was built with. Returns the chosen module name.
std::optional<std::string> choose_matching_module(
    const Site& target, site::MpiImpl impl,
    site::CompilerFamily preferred_compiler) {
  const site::MpiStackInstall* fallback = nullptr;
  for (const auto& stack : target.stacks) {
    if (stack.impl != impl || !stack.advertised) continue;
    if (stack.compiler == preferred_compiler) return module_name_of(stack);
    if (fallback == nullptr) fallback = &stack;
  }
  if (fallback != nullptr) return module_name_of(*fallback);
  return std::nullopt;
}

bool impl_available(const Site& target, site::MpiImpl impl) {
  return std::any_of(target.stacks.begin(), target.stacks.end(),
                     [&](const auto& stack) { return stack.impl == impl; });
}

}  // namespace

Experiment::Experiment(ExperimentOptions options)
    : options_(std::move(options)),
      sites_(toolchain::make_testbed(options_.fault_seed)) {}

Experiment::~Experiment() = default;

Site& Experiment::site(std::string_view name) {
  for (const auto& s : sites_) {
    if (s->name == name) return *s;
  }
  throw std::invalid_argument("no such site: " + std::string(name));
}

void Experiment::build_test_set() {
  test_set_.clear();
  for (const auto& s : sites_) {
    for (const auto& stack : s->stacks) {
      for (const auto& workload : workloads::all_workloads()) {
        if (!options_.only_benchmarks.empty() &&
            std::find(options_.only_benchmarks.begin(),
                      options_.only_benchmarks.end(),
                      workload.program.name) ==
                options_.only_benchmarks.end()) {
          continue;
        }
        // Paper VI.A attrition: combinations that did not compile.
        if (!workloads::combination_viable(workload.program, workload.suite,
                                           stack, s->name)) {
          continue;
        }
        const std::string path = "/home/user/apps/" + workload.program.name +
                                 "." + stack.slug();
        const auto compiled =
            toolchain::compile_mpi_program(*s, workload.program, stack, path);
        if (!compiled.ok()) continue;

        // Paper VI.A: binaries that would not run at the site where they
        // were compiled are excluded too.
        s->unload_all_modules();
        s->load_module(module_name_of(stack));
        const auto home_run = toolchain::mpiexec_with_retries(
            *s, path, options_.ranks, {}, options_.retry_attempts);
        s->unload_all_modules();
        if (!home_run.success()) {
          s->vfs.remove(path);
          continue;
        }
        test_set_.push_back({workload, s->name, stack, path});
      }
    }
  }
}

std::size_t Experiment::test_set_size(std::string_view suite) const {
  return static_cast<std::size_t>(
      std::count_if(test_set_.begin(), test_set_.end(),
                    [&](const TestBinary& b) { return b.workload.suite == suite; }));
}

void Experiment::migrate_one(const TestBinary& binary, Site& target) {
  Site& home = site(binary.home_site);

  MigrationResult result;
  result.binary_name = binary.workload.program.name + "." + binary.stack.slug();
  result.suite = binary.workload.suite;
  result.home_site = binary.home_site;
  result.target_site = target.name;

  // --- migrate the binary bytes.
  const support::Bytes* content = home.vfs.read(binary.path);
  if (content == nullptr) return;
  const std::string migrated_path =
      "/home/user/migrated/" + result.binary_name + "." + binary.home_site;
  target.vfs.write_file(migrated_path, *content);

  // --- FEAM basic prediction: target phase only.
  feam::FeamConfig config;
  config.hello_world_ranks = options_.ranks;
  feam::TecOptions basic_opts;
  basic_opts.apply_resolution = false;
  basic_opts.run_usability_tests = options_.run_usability_tests;
  const auto basic =
      feam::run_target_phase(target, migrated_path, nullptr, config, basic_opts);
  result.basic_ready = basic.ok() && basic.value().prediction.ready;

  // Cross-check the paper's 100%-accurate MPI-availability claim.
  if (basic.ok() && basic.value().application.mpi_impl) {
    const bool feam_says_available =
        basic.value().prediction.determinant(feam::DeterminantKind::kMpiStack)
                ->detail.find("no ") != 0 ||
        basic.value().prediction.determinant(feam::DeterminantKind::kMpiStack)
            ->compatible;
    const bool truly_available =
        impl_available(target, *basic.value().application.mpi_impl);
    // "Available" per FEAM = at least one matching stack discovered; the
    // determinant can still fail for usability reasons.
    if (feam_says_available != truly_available &&
        basic.value()
            .prediction.determinant(feam::DeterminantKind::kMpiStack)
            ->evaluated) {
      mpi_matching_correct_ = false;
    }
  }

  // --- FEAM extended prediction: source phase + target phase. The source
  // phase runs in the guaranteed execution environment — the shell
  // configured to run the binary, i.e. with its stack's module loaded.
  feam::TecOptions ext_opts;
  ext_opts.resolution_root = "/home/user/feam_resolved";
  ext_opts.recursive_copy_validation = options_.recursive_copy_validation;
  ext_opts.apply_resolution = options_.apply_resolution;
  ext_opts.run_usability_tests = options_.run_usability_tests;
  home.unload_all_modules();
  home.load_module(module_name_of(binary.stack));
  const auto source = feam::run_source_phase(home, binary.path, config);
  home.unload_all_modules();
  std::optional<feam::TargetPhaseOutput> extended;
  if (source.ok()) {
    auto r = feam::run_target_phase(target, migrated_path, &source.value(),
                                    config, ext_opts);
    if (r.ok()) extended = std::move(r).take();
  }
  if (extended) {
    result.extended_ready = extended->prediction.ready;
    result.extended_prediction = extended->prediction;
    result.missing_library_count = extended->prediction.missing_libraries.size();
    result.resolved_library_count =
        extended->prediction.resolved_libraries.size();
  }

  // --- actual execution, before resolution (the naive user).
  target.unload_all_modules();
  const auto module = choose_matching_module(target, binary.stack.impl,
                                             binary.stack.compiler);
  if (module) {
    target.load_module(*module);
    const auto run = toolchain::mpiexec_with_retries(
        target, migrated_path, options_.ranks, {}, options_.retry_attempts);
    result.success_before_resolution = run.success();
    result.status_before = run.status;
    target.unload_all_modules();
  } else {
    result.status_before = toolchain::RunStatus::kNoMpiStackSelected;
  }

  // --- actual execution, after resolution (following FEAM's script).
  if (extended && extended->prediction.selected_stack_id) {
    const auto extra =
        feam::Tec::apply_configuration(target, extended->prediction);
    const auto run = toolchain::mpiexec_with_retries(
        target, migrated_path, options_.ranks, extra, options_.retry_attempts);
    result.success_after_resolution = run.success();
    result.status_after = run.status;
    target.unload_all_modules();
  } else if (module) {
    // FEAM produced no configuration; the user's naive run stands.
    result.success_after_resolution = result.success_before_resolution;
    result.status_after = result.status_before;
  } else {
    result.status_after = toolchain::RunStatus::kNoMpiStackSelected;
  }

  // --- cleanup: leave the target as we found it.
  target.vfs.remove(migrated_path);
  for (const auto& dir : result.extended_prediction.resolution_dirs) {
    target.vfs.remove(dir);
  }
  target.vfs.remove("/home/user/feam_resolved");

  results_.push_back(std::move(result));
}

void Experiment::run() {
  results_.clear();
  skipped_no_impl_ = 0;
  for (const auto& binary : test_set_) {
    for (const auto& target : sites_) {
      if (target->name == binary.home_site) continue;
      // Paper VI.B: results are only reported for target sites with a
      // matching MPI implementation — elsewhere there is no potential for
      // successful execution (and FEAM assessed availability with 100%
      // accuracy).
      if (!impl_available(*target, binary.stack.impl)) {
        ++skipped_no_impl_;
        continue;
      }
      migrate_one(binary, *target);
    }
  }
}

}  // namespace feam::eval
