#include "eval/experiment.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "feam/bdc.hpp"
#include "feam/identify.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "site/lease.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/testbed.hpp"

namespace feam::eval {

namespace {

using site::Site;

// The module name provisioning registers for a stack.
std::string module_name_of(const site::MpiStackInstall& stack) {
  return std::string(site::mpi_impl_slug(stack.impl)) + "/" +
         stack.version.str() + "-" + site::compiler_slug(stack.compiler);
}

// The naive "matching MPI implementation" stack choice a scientist makes
// before FEAM is involved: same implementation, preferring the compiler
// the binary was built with. Returns the chosen module name.
std::optional<std::string> choose_matching_module(
    const Site& target, site::MpiImpl impl,
    site::CompilerFamily preferred_compiler) {
  const site::MpiStackInstall* fallback = nullptr;
  for (const auto& stack : target.stacks) {
    if (stack.impl != impl || !stack.advertised) continue;
    if (stack.compiler == preferred_compiler) return module_name_of(stack);
    if (fallback == nullptr) fallback = &stack;
  }
  if (fallback != nullptr) return module_name_of(*fallback);
  return std::nullopt;
}

bool impl_available(const Site& target, site::MpiImpl impl) {
  return std::any_of(target.stacks.begin(), target.stacks.end(),
                     [&](const auto& stack) { return stack.impl == impl; });
}

// Estimated retained bytes of one memoized source phase; the bundle
// payload dominates, the rest is event text.
std::uint64_t source_output_bytes(const feam::SourcePhaseOutput& output) {
  std::uint64_t total = sizeof(output) + output.bundle.total_bytes();
  for (const auto& event : output.events) {
    total += event.name.size() + event.message.size();
    for (const auto& [key, value] : event.fields) {
      total += key.size() + value.size();
    }
  }
  return total;
}

}  // namespace

struct Experiment::SourceMemoEntry {
  std::mutex mutex;
  std::optional<support::Result<feam::SourcePhaseOutput>> value;
};

Experiment::Experiment(ExperimentOptions options)
    : options_(std::move(options)),
      sites_(toolchain::make_testbed(options_.fault_seed)) {
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    site_index_.emplace(sites_[i]->name, i);
  }
  if (options_.use_caches) {
    caches_ = std::make_unique<feam::MigrationCaches>();
  }
  if (options_.vfs_fault_rate > 0.0) {
    for (const auto& s : sites_) {
      site::FaultInjector::Options fault_options;
      fault_options.seed = options_.vfs_fault_seed ^ support::fnv1a(s->name);
      fault_options.rate = options_.vfs_fault_rate;
      auto injector = std::make_shared<site::FaultInjector>(fault_options);
      s->vfs.set_fault_injector(injector);
      injectors_.push_back(std::move(injector));
    }
  }
}

Experiment::~Experiment() {
  obs::gauge("cache.bytes", {.cache = "source"})
      .sub(source_footprint_.load(std::memory_order_relaxed));
}

Site& Experiment::site(std::string_view name) {
  const auto it = site_index_.find(name);
  if (it == site_index_.end()) {
    throw std::invalid_argument("no such site: " + std::string(name));
  }
  return *sites_[it->second];
}

void Experiment::build_test_set() {
  test_set_.clear();
  const auto workloads = workloads::all_workloads();
  for (const auto& s : sites_) {
    for (const auto& stack : s->stacks) {
      for (const auto& workload : workloads) {
        if (!options_.only_benchmarks.empty() &&
            std::find(options_.only_benchmarks.begin(),
                      options_.only_benchmarks.end(),
                      workload.program.name) ==
                options_.only_benchmarks.end()) {
          continue;
        }
        // Paper VI.A attrition: combinations that did not compile.
        if (!workloads::combination_viable(workload.program, workload.suite,
                                           stack, s->name)) {
          continue;
        }
        const std::string path = "/home/user/apps/" + workload.program.name +
                                 "." + stack.slug();
        const auto compiled =
            toolchain::compile_mpi_program(*s, workload.program, stack, path);
        if (!compiled.ok()) continue;

        // Paper VI.A: binaries that would not run at the site where they
        // were compiled are excluded too.
        s->unload_all_modules();
        s->load_module(module_name_of(stack));
        const auto home_run = toolchain::mpiexec_with_retries(
            *s, path, options_.ranks, {}, options_.retry_attempts);
        s->unload_all_modules();
        if (!home_run.success()) {
          s->vfs.remove(path);
          continue;
        }
        test_set_.push_back({workload, s->name, stack, path});
      }
    }
  }
}

std::size_t Experiment::test_set_size(std::string_view suite) const {
  return static_cast<std::size_t>(
      std::count_if(test_set_.begin(), test_set_.end(),
                    [&](const TestBinary& b) { return b.workload.suite == suite; }));
}

const support::Result<feam::SourcePhaseOutput>& Experiment::source_phase_for(
    const TestBinary& binary, Site& home, const feam::FeamConfig& config,
    std::optional<support::Result<feam::SourcePhaseOutput>>& local) {
  // The source phase runs in the guaranteed execution environment — the
  // shell configured to run the binary, i.e. with its stack's module
  // loaded. A private shell session supplies that shell without touching
  // the base site state, so repeated runs produce identical output. That
  // is what makes memoizing it sound. The binary-path lease serializes
  // same-binary source phases (their hello-world scratch is keyed by the
  // binary's basename) while different binaries run concurrently; it is
  // the innermost lock a worker ever takes, so it cannot cycle with the
  // per-job artifact leases held across migrate_one.
  const auto run_fresh = [&] {
    site::SubtreeLeases lease({{&home, binary.path}});
    site::ShellSession shell(home);
    home.unload_all_modules();
    home.load_module(module_name_of(binary.stack));
    return feam::run_source_phase(home, binary.path, config, caches_.get());
  };
  if (caches_ == nullptr) {
    local.emplace(run_fresh());
    return *local;
  }
  SourceMemoEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(source_memo_mutex_);
    auto& slot = source_memo_[binary.home_site + "|" + binary.path];
    if (!slot) slot = std::make_unique<SourceMemoEntry>();
    entry = slot.get();
  }
  // Per-entry mutex: two workers migrating the same binary wait on each
  // other here, while different binaries compute concurrently. The lock
  // order is job-artifact leases -> entry mutex -> home binary lease; no
  // holder of an entry mutex or binary lease ever waits on a job-artifact
  // lease (those are unique to their job), so no cycle.
  std::lock_guard<std::mutex> lock(entry->mutex);
  if (entry->value) {
    source_hits_.fetch_add(1, std::memory_order_relaxed);
    obs::counter("source_phase.memo_hits").add();
    obs::counter("cache.hits", {.site = binary.home_site, .cache = "source"})
        .add();
    return *entry->value;
  }
  const auto* injector = home.vfs.fault_injector();
  const std::uint64_t faults_before =
      injector != nullptr ? injector->fault_count() : 0;
  auto fresh = run_fresh();
  if (injector != nullptr && injector->fault_count() != faults_before) {
    // A faulted source phase describes a home site that never existed;
    // hand it to this caller (who attributes the pair) but never memoize
    // it — the next migration of this binary recomputes cleanly.
    local.emplace(std::move(fresh));
    return *local;
  }
  source_misses_.fetch_add(1, std::memory_order_relaxed);
  obs::counter("source_phase.memo_misses").add();
  obs::counter("cache.misses", {.site = binary.home_site, .cache = "source"})
      .add();
  entry->value.emplace(std::move(fresh));
  std::uint64_t entry_bytes = sizeof(SourceMemoEntry);
  if (entry->value->ok()) {
    entry_bytes += source_output_bytes(entry->value->value());
  }
  source_footprint_.fetch_add(entry_bytes, std::memory_order_relaxed);
  obs::gauge("cache.bytes", {.cache = "source"}).add(entry_bytes);
  return *entry->value;
}

std::optional<MigrationResult> Experiment::migrate_one(
    const TestBinary& binary, Site& target) {
  Site& home = site(binary.home_site);
  obs::Span span("eval.migrate",
                 {{"binary", binary.workload.program.name},
                  {"home", binary.home_site},
                  {"target", target.name}});

  MigrationResult result;
  result.binary_name = binary.workload.program.name + "." + binary.stack.slug();
  result.suite = binary.workload.suite;
  result.home_site = binary.home_site;
  result.target_site = target.name;

  // Per-job artifact roots: both carry the binary name and home site, so
  // no two jobs on the same target ever name the same subtree — the
  // leases below never contend and concurrent migrations to one site
  // proceed in parallel.
  const std::string migrated_path =
      "/home/user/migrated/" + result.binary_name + "." + binary.home_site;
  const std::string resolution_root =
      "/home/user/feam_resolved/" + result.binary_name + "." + binary.home_site;
  feam::FeamConfig config;
  config.hello_world_ranks = options_.ranks;

  // Injected faults at either site during this pair taint the whole pair:
  // predictions and execution outcomes may reflect a site view that never
  // really existed. The snapshot/delta is exact under sequential runs; a
  // parallel faulted run can over-attribute (another worker's fault on a
  // shared site lands in the window), never under-attribute.
  const auto fault_total = [&]() -> std::uint64_t {
    const auto* h = home.vfs.fault_injector();
    const auto* t = target.vfs.fault_injector();
    return (h != nullptr ? h->fault_count() : 0) +
           (t != nullptr ? t->fault_count() : 0);
  };
  const std::uint64_t faults_at_start = fault_total();

  // One lease vector for the whole job, over exactly the subtrees this
  // migration mutates at the target. Held up front and for the duration
  // (see lease.hpp for the ordering discipline); a private shell session
  // gives this worker its own environment and module list, so nothing
  // below serializes against other migrations to the same site.
  site::SubtreeLeases lease(
      {{&target, migrated_path}, {&target, resolution_root}});
  site::ShellSession shell(target);

  // --- migrate the binary bytes: the only step that touches both sites.
  // The home-side read needs no lease: test-set binaries are immutable
  // while the matrix runs.
  {
    const support::Bytes* content = home.vfs.read(binary.path);
    if (content == nullptr) {
      // A test-set binary is always present, so this read can only fail
      // under injection; the pair is recorded, not dropped.
      result.failure_attribution = "io";
      result.failure_detail =
          "reading " + binary.path + " at " + home.name + " failed";
      return result;
    }
    if (!target.vfs.write_file(migrated_path, *content)) {
      // Torn or failed bundle copy; the Vfs rolled back whatever landed.
      result.failure_attribution = "io";
      result.failure_detail =
          "copying to " + migrated_path + " at " + target.name + " failed";
      return result;
    }
  }

  // First ELF parse failure seen by any phase (attribution "parse" when no
  // injected fault explains it).
  std::optional<support::Error> phase_error;

  {
    // --- FEAM basic prediction: target phase only.
    feam::TecOptions basic_opts;
    basic_opts.apply_resolution = false;
    basic_opts.run_usability_tests = options_.run_usability_tests;
    const auto basic = feam::run_target_phase(target, migrated_path, nullptr,
                                              config, basic_opts,
                                              caches_.get());
    result.basic_ready = basic.ok() && basic.value().prediction.ready;
    if (!basic.ok() && support::failure_category(basic.code()) == "parse") {
      phase_error = basic.full_error();
    }

    // Cross-check the paper's 100%-accurate MPI-availability claim.
    if (basic.ok() && basic.value().application.mpi_impl) {
      const bool feam_says_available =
          basic.value().prediction.determinant(feam::DeterminantKind::kMpiStack)
                  ->detail.find("no ") != 0 ||
          basic.value().prediction.determinant(feam::DeterminantKind::kMpiStack)
              ->compatible;
      const bool truly_available =
          impl_available(target, *basic.value().application.mpi_impl);
      // "Available" per FEAM = at least one matching stack discovered; the
      // determinant can still fail for usability reasons.
      if (feam_says_available != truly_available &&
          basic.value()
              .prediction.determinant(feam::DeterminantKind::kMpiStack)
              ->evaluated) {
        mpi_matching_correct_ = false;
      }
    }
  }

  // --- FEAM extended prediction: source phase (under home's lease, via
  // the per-binary memo) + target phase.
  std::optional<support::Result<feam::SourcePhaseOutput>> local_source;
  const support::Result<feam::SourcePhaseOutput>& source =
      source_phase_for(binary, home, config, local_source);
  if (!source.ok() && !phase_error &&
      support::failure_category(source.code()) == "parse") {
    phase_error = source.full_error();
  }

  {
    feam::TecOptions ext_opts;
    ext_opts.resolution_root = resolution_root;
    ext_opts.recursive_copy_validation = options_.recursive_copy_validation;
    ext_opts.apply_resolution = options_.apply_resolution;
    ext_opts.run_usability_tests = options_.run_usability_tests;
    std::optional<feam::TargetPhaseOutput> extended;
    if (source.ok()) {
      auto r = feam::run_target_phase(target, migrated_path, &source.value(),
                                      config, ext_opts, caches_.get());
      if (r.ok()) {
        extended = std::move(r).take();
      } else if (!phase_error &&
                 support::failure_category(r.code()) == "parse") {
        phase_error = r.full_error();
      }
    }
    if (extended) {
      result.extended_ready = extended->prediction.ready;
      result.extended_prediction = extended->prediction;
      result.missing_library_count =
          extended->prediction.missing_libraries.size();
      result.resolved_library_count =
          extended->prediction.resolved_libraries.size();
    }

    // --- actual execution, before resolution (the naive user).
    target.unload_all_modules();
    const auto module = choose_matching_module(target, binary.stack.impl,
                                               binary.stack.compiler);
    if (module) {
      target.load_module(*module);
      const auto run = toolchain::mpiexec_with_retries(
          target, migrated_path, options_.ranks, {}, options_.retry_attempts,
          caches_ != nullptr ? &caches_->resolver : nullptr);
      result.success_before_resolution = run.success();
      result.status_before = run.status;
      target.unload_all_modules();
    } else {
      result.status_before = toolchain::RunStatus::kNoMpiStackSelected;
    }

    // --- actual execution, after resolution (following FEAM's script).
    if (extended && extended->prediction.selected_stack_id) {
      const auto extra =
          feam::Tec::apply_configuration(target, extended->prediction);
      const auto run = toolchain::mpiexec_with_retries(
          target, migrated_path, options_.ranks, extra,
          options_.retry_attempts,
          caches_ != nullptr ? &caches_->resolver : nullptr);
      result.success_after_resolution = run.success();
      result.status_after = run.status;
      target.unload_all_modules();
    } else if (module) {
      // FEAM produced no configuration; the user's naive run stands.
      result.success_after_resolution = result.success_before_resolution;
      result.status_after = result.status_before;
    } else {
      result.status_after = toolchain::RunStatus::kNoMpiStackSelected;
    }

    // --- cleanup: leave the target as we found it. Only this job's
    // artifact roots are removed; other jobs' resolution trees under
    // /home/user/feam_resolved are theirs to clean.
    target.vfs.remove(migrated_path);
    for (const auto& dir : result.extended_prediction.resolution_dirs) {
      target.vfs.remove(dir);
    }
    target.vfs.remove(resolution_root);
  }

  if (fault_total() != faults_at_start) {
    result.failure_attribution = "io";
    result.failure_detail =
        "injected Vfs fault(s) during migration to " + target.name;
  } else if (phase_error) {
    result.failure_attribution = "parse";
    result.failure_detail = phase_error->message;
  }
  return result;
}

void Experiment::run() {
  results_.clear();
  skipped_no_impl_ = 0;
  mpi_matching_correct_ = true;
  obs::Span span("eval.run_matrix",
                 {{"jobs", std::to_string(options_.jobs)}});

  // Fault injection is live only inside run(): the test-set build and any
  // inter-run inspection always see healthy sites.
  for (const auto& injector : injectors_) injector->set_enabled(true);

  // Build the migration list sequentially (so skip accounting is exact),
  // then fan out. Each migration writes into its pre-assigned slot, so
  // `results_` is in migration-list order at any job count — completion
  // order never shows.
  struct Job {
    const TestBinary* binary;
    Site* target;
  };
  std::vector<Job> jobs;
  for (const auto& binary : test_set_) {
    for (const auto& target : sites_) {
      if (target->name == binary.home_site) continue;
      // Paper VI.B: results are only reported for target sites with a
      // matching MPI implementation — elsewhere there is no potential for
      // successful execution (and FEAM assessed availability with 100%
      // accuracy).
      if (!impl_available(*target, binary.stack.impl)) {
        ++skipped_no_impl_;
        continue;
      }
      jobs.push_back({&binary, target.get()});
    }
  }

  std::vector<std::optional<MigrationResult>> slots(jobs.size());
  if (options_.jobs > 1 && jobs.size() > 1) {
    // The job list is binary-major, so neighbouring jobs share a source
    // binary (they would serialize on its source-phase memo entry) and
    // often a target site lease. Submit round-robin across binaries so
    // concurrently running workers touch distinct binaries and sites.
    // Slot indices keep the original order, so the interleave is
    // invisible in the results.
    std::vector<std::size_t> order;
    order.reserve(jobs.size());
    std::vector<std::pair<std::size_t, std::size_t>> runs;  // [begin, end)
    for (std::size_t i = 0; i < jobs.size();) {
      std::size_t j = i;
      while (j < jobs.size() && jobs[j].binary == jobs[i].binary) ++j;
      runs.emplace_back(i, j);
      i = j;
    }
    for (bool more = true; more;) {
      more = false;
      for (auto& [begin, end] : runs) {
        if (begin == end) continue;
        order.push_back(begin++);
        more = true;
      }
    }

    support::ThreadPool pool(options_.jobs, obs::pool_task_recorder());
    for (const std::size_t i : order) {
      pool.submit([this, &jobs, &slots, i] {
        slots[i] = migrate_one(*jobs[i].binary, *jobs[i].target);
      });
    }
    pool.wait();
  } else {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      slots[i] = migrate_one(*jobs[i].binary, *jobs[i].target);
    }
  }
  for (auto& slot : slots) {
    if (slot) results_.push_back(std::move(*slot));
  }
  for (const auto& injector : injectors_) injector->set_enabled(false);

  // Each job removed its own resolution subtree; what remains of the
  // shared parent is an empty directory. Sweep it here, where no worker
  // is live, so the matrix leaves every target exactly as it found it.
  for (const auto& s : sites_) s->vfs.remove("/home/user/feam_resolved");
}

}  // namespace feam::eval
