// Bridge from the evaluation harness to the telemetry aggregation layer:
// every MigrationResult becomes one feam.run_record/1 document, so a full
// experiment sweep can be dropped into a directory and explored with
// `feam report` (readiness matrix, failure attribution, dashboard) just
// like records written by the CLI's --run-record-out.
#pragma once

#include <vector>

#include "eval/experiment.hpp"
#include "report/run_record.hpp"

namespace feam::eval {

// One record per migration: binary/site pair, the extended prediction's
// per-determinant verdicts, and resolution counts. Exit code mirrors the
// CLI's target command (0 ready, 2 not ready).
report::RunRecord to_run_record(const MigrationResult& result);

std::vector<report::RunRecord> to_run_records(
    const std::vector<MigrationResult>& results);

}  // namespace feam::eval
