#include "workloads/benchmarks.hpp"

#include "support/rng.hpp"
#include "toolchain/compiler.hpp"

namespace feam::workloads {

namespace {

using toolchain::Language;
using toolchain::ProgramSource;

constexpr std::size_t KiB = 1024;

Workload make(std::string name, std::string suite, Language lang,
              std::vector<std::string> features, std::size_t text_size) {
  ProgramSource p;
  p.name = std::move(name);
  p.language = lang;
  p.uses_mpi = true;
  p.libc_features = std::move(features);
  p.text_size = text_size;
  return {std::move(p), std::move(suite)};
}

}  // namespace

const std::vector<Workload>& npb_suite() {
  static const std::vector<Workload> kSuite = {
      // Kernels.
      make("is.B", "NAS", Language::kC, {"base", "stdio", "math"}, 120 * KiB),
      make("ep.B", "NAS", Language::kFortran, {"base", "stdio", "math"},
           90 * KiB),
      make("cg.B", "NAS", Language::kFortran,
           {"base", "stdio", "math", "affinity"}, 160 * KiB),
      make("mg.B", "NAS", Language::kFortran,
           {"base", "stdio", "math", "affinity"}, 210 * KiB),
      // Pseudo applications.
      make("bt.B", "NAS", Language::kFortran,
           {"base", "stdio", "math", "fadvise"}, 340 * KiB),
      make("sp.B", "NAS", Language::kFortran,
           {"base", "stdio", "math", "fadvise"}, 290 * KiB),
      make("lu.B", "NAS", Language::kFortran,
           {"base", "stdio", "math", "timer"}, 310 * KiB),
  };
  return kSuite;
}

const std::vector<Workload>& spec_mpi2007_suite() {
  static const std::vector<Workload> kSuite = {
      make("104.milc", "SPEC", Language::kC,
           {"base", "stdio", "math", "affinity"}, 1200 * KiB),
      make("107.leslie3d", "SPEC", Language::kFortran,
           {"base", "stdio", "math"}, 800 * KiB),
      make("115.fds4", "SPEC", Language::kFortran,
           {"base", "stdio", "math", "atfuncs", "pipe2"}, 1500 * KiB),
      make("122.tachyon", "SPEC", Language::kC,
           {"base", "stdio", "math", "splice"}, 600 * KiB),
      make("126.lammps", "SPEC", Language::kCxx,
           {"base", "stdio", "math", "atfuncs", "pipe2"}, 2500 * KiB),
      make("127.GAPgeofem", "SPEC", Language::kFortran,
           {"base", "stdio", "math", "affinity"}, 1100 * KiB),
      make("129.tera_tf", "SPEC", Language::kFortran,
           {"base", "stdio", "math", "timer"}, 900 * KiB),
  };
  return kSuite;
}

std::vector<Workload> all_workloads() {
  std::vector<Workload> out = npb_suite();
  const auto& spec = spec_mpi2007_suite();
  out.insert(out.end(), spec.begin(), spec.end());
  return out;
}

namespace {

bool is_perfect_square(int n) {
  if (n < 1) return false;
  int root = 1;
  while (root * root < n) ++root;
  return root * root == n;
}

bool is_power_of_two(int n) { return n >= 1 && (n & (n - 1)) == 0; }

// Class scaling factors relative to class B (compiled-in data tables).
std::optional<double> class_scale(char problem_class) {
  switch (problem_class) {
    case 'S': return 0.25;
    case 'W': return 0.4;
    case 'A': return 0.7;
    case 'B': return 1.0;
    case 'C': return 1.6;
    default: return std::nullopt;
  }
}

}  // namespace

bool npb_nprocs_valid(std::string_view kernel, int nprocs) {
  if (nprocs < 1) return false;
  if (kernel == "bt" || kernel == "sp") return is_perfect_square(nprocs);
  if (kernel == "cg" || kernel == "mg" || kernel == "is" || kernel == "ep" ||
      kernel == "lu") {
    return is_power_of_two(nprocs);
  }
  return false;  // unknown kernel
}

std::vector<int> npb_valid_nprocs(std::string_view kernel, int max_procs) {
  std::vector<int> out;
  for (int n = 1; n <= max_procs; ++n) {
    if (npb_nprocs_valid(kernel, n)) out.push_back(n);
  }
  return out;
}

std::optional<toolchain::ProgramSource> npb_binary(std::string_view kernel,
                                                   char problem_class,
                                                   int nprocs) {
  const auto scale = class_scale(problem_class);
  if (!scale) return std::nullopt;
  if (!npb_nprocs_valid(kernel, nprocs)) return std::nullopt;
  // Look the kernel up in the class-B reference suite.
  for (const auto& workload : npb_suite()) {
    if (workload.program.name.substr(0, workload.program.name.find('.')) !=
        kernel) {
      continue;
    }
    toolchain::ProgramSource p = workload.program;
    p.name = std::string(kernel) + "." + problem_class + "." +
             std::to_string(nprocs);
    p.text_size = static_cast<std::uint64_t>(
        static_cast<double>(p.text_size) * *scale);
    return p;
  }
  return std::nullopt;
}

bool combination_viable(const toolchain::ProgramSource& program,
                        std::string_view suite,
                        const site::MpiStackInstall& stack,
                        std::string_view site_name) {
  // Hard constraint: the stack's compiler must handle the language at all
  // (pgCC cannot build the template-heavy SPEC C++ code).
  const toolchain::CompilerModel compiler(stack.compiler,
                                          stack.compiler_version);
  if (!compiler.supports(program.language)) return false;

  // Attrition hash: stable per (benchmark, implementation, compiler,
  // site). Rates are calibrated so the surviving test set sizes match the
  // paper's Section VI.A (110 NPB / 147 SPEC binaries).
  const double attrition = suite == "NAS" ? 0.33 : 0.13;
  const std::uint64_t h = support::fnv1a(
      program.name + "|" + site::mpi_impl_slug(stack.impl) + "|" +
      site::compiler_slug(stack.compiler) + "|" + std::string(site_name));
  return (static_cast<double>(h % 10000) / 10000.0) >= attrition;
}

}  // namespace feam::workloads
