#include "workloads/synthetic.hpp"

#include <cmath>

#include "support/rng.hpp"
#include "toolchain/glibc.hpp"

namespace feam::workloads {

namespace {

constexpr std::size_t KiB = 1024;

// Application-domain slugs, purely cosmetic: they make fleet reports read
// like a real workload mix instead of numbered blobs.
constexpr const char* kDomains[] = {
    "cfd",  "md",      "qcd",     "fem",   "climate",
    "astro", "seismic", "lattice", "plasma", "genomics",
};

// Inclusion probability for a libc feature, decaying with how new its
// version node is: base-node features are near-universal, the newest node
// shows up in a small minority of programs (those are the binaries that
// pin a new C library and fail on old sites).
double feature_probability(const support::Version& node) {
  const auto& nodes = toolchain::glibc_version_nodes();
  std::size_t index = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] == node) {
      index = i;
      break;
    }
  }
  const double newness =
      nodes.size() > 1
          ? static_cast<double>(index) / static_cast<double>(nodes.size() - 1)
          : 0.0;
  return 0.6 * (1.0 - newness) + 0.08;
}

}  // namespace

std::vector<Workload> synthetic_suite(int count, std::uint64_t seed) {
  std::vector<Workload> out;
  if (count <= 0) return out;
  out.reserve(static_cast<std::size_t>(count));
  const support::Rng base(support::fnv1a_mix(seed, 0x53594e5448ull));
  const auto& catalog = toolchain::libc_feature_catalog();
  for (int i = 0; i < count; ++i) {
    support::Rng rng = base.fork("workload-" + std::to_string(i));
    toolchain::ProgramSource program;
    const char* domain =
        kDomains[rng.next_below(std::size(kDomains))];
    program.name = "synth-" + std::string(domain) + "-" + std::to_string(i);
    // Paper's mix: C-heavy with a Fortran tail and a little C++.
    const double lang = rng.next_double();
    program.language = lang < 0.50   ? toolchain::Language::kC
                       : lang < 0.90 ? toolchain::Language::kFortran
                                     : toolchain::Language::kCxx;
    program.uses_mpi = true;
    // Log-uniform from NAS-kernel scale to SPEC-application scale.
    const double exponent = rng.next_double() * 5.7;  // 48 KiB .. ~2.5 MiB
    program.text_size =
        static_cast<std::uint64_t>(48.0 * KiB * std::exp2(exponent));
    program.libc_features = {"base", "stdio"};
    for (const auto& feature : catalog) {
      if (feature.key == "base" || feature.key == "stdio") continue;
      if (rng.chance(feature_probability(feature.node))) {
        program.libc_features.push_back(feature.key);
      }
    }
    out.push_back({std::move(program), "SYNTH"});
  }
  return out;
}

}  // namespace feam::workloads
