// Parameterized synthesis of fleet-scale workloads.
//
// The paper's two suites (benchmarks.hpp) are 14 hand-modeled programs;
// fleet evaluation needs hundreds. Each synthetic workload is an ordinary
// ProgramSource the simulated toolchain compiles through the real ELF
// writer, so its binary carries genuine dynamic tables, .comment stamps,
// and GLIBC version references — only the name, language, libc feature
// set, and text size are sampled. Deterministic in (count, seed): the
// same arguments always produce the same suite, in the same order.
#pragma once

#include <cstdint>
#include <vector>

#include "workloads/benchmarks.hpp"

namespace feam::workloads {

// `count` workloads drawn from seeded distributions: language split
// roughly matching the paper's suites (C-heavy with a Fortran tail),
// log-uniform text sizes spanning NAS-kernel to SPEC-application scale,
// and libc feature sets where newer-node features are rarer — so some
// binaries travel everywhere and some pin new C libraries, spreading the
// readiness matrix. Suite tag is "SYNTH".
std::vector<Workload> synthetic_suite(int count, std::uint64_t seed);

}  // namespace feam::workloads
