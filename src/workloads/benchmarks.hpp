// The paper's two benchmark suites as source-program descriptions:
//
//  * NAS Parallel Benchmarks 2.4 (MPI reference implementation): four
//    kernels — IS (integer sort), EP (embarrassingly parallel), CG
//    (conjugate gradient), MG (multi-grid) — and three pseudo-applications
//    — BT (block tridiagonal), SP (scalar penta-diagonal), LU
//    (lower-upper Gauss-Seidel). All Fortran except IS (C).
//
//  * SPEC MPI2007: 104.milc (quantum chromodynamics, C), 107.leslie3d and
//    115.fds4 (computational fluid dynamics, Fortran), 122.tachyon
//    (parallel ray tracing, C), 126.lammps (molecular dynamics, C++),
//    127.GAPgeofem (weather/geo FEM, Fortran+C), 129.tera_tf (3D Eulerian
//    hydrodynamics, Fortran 90).
//
// Each entry carries the libc feature set its code exercises (which
// decides the GLIBC version references a compiled binary gets) and a
// representative text size (SPEC codes are an order of magnitude larger —
// this feeds the fault model and bundle accounting).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "site/site.hpp"
#include "toolchain/linker.hpp"

namespace feam::workloads {

struct Workload {
  toolchain::ProgramSource program;
  std::string suite;  // "NAS" or "SPEC"
};

const std::vector<Workload>& npb_suite();
const std::vector<Workload>& spec_mpi2007_suite();
std::vector<Workload> all_workloads();

// Models the paper's test-set attrition (Section VI.A): "Some benchmarks
// would not compile with certain MPI stack combinations while other
// binaries would not run at the site where they were compiled." Returns
// false for combinations excluded from the test set. Deterministic in its
// arguments; NAS attrition is higher than SPEC's, reproducing the paper's
// 110-of-possible / 147-of-possible split.
bool combination_viable(const toolchain::ProgramSource& program,
                        std::string_view suite,
                        const site::MpiStackInstall& stack,
                        std::string_view site_name);

// ---- NPB build parameterization -----------------------------------------
//
// NPB 2.4 compiles the problem class AND the process count into the binary
// (make CLASS=B NPROCS=16 -> bin/cg.B.16). Each kernel constrains NPROCS:
//   BT, SP      : a perfect square (1, 4, 9, 16, ...)
//   CG, MG, IS, EP, LU : a power of two
// Problem classes: S (sample), W (workstation), A < B < C (increasing
// size). Class scales the compiled data tables and therefore the binary's
// text footprint.

// True when NPB kernel `kernel` ("bt", "cg", ...) builds for `nprocs`.
bool npb_nprocs_valid(std::string_view kernel, int nprocs);

// All valid NPROCS for the kernel up to `max_procs`, ascending.
std::vector<int> npb_valid_nprocs(std::string_view kernel, int max_procs);

// The ProgramSource for one NPB build, named per the NPB convention
// ("cg.B.16"). Fails (nullopt) for an unknown kernel, unknown class, or an
// invalid process count.
std::optional<toolchain::ProgramSource> npb_binary(std::string_view kernel,
                                                   char problem_class,
                                                   int nprocs);

}  // namespace feam::workloads
