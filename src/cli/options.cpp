#include "cli/options.hpp"

namespace feam::cli {

std::string usage() {
  return R"(feam — Framework for Efficient Application Migration (simulated testbed)

usage:
  feam list-sites
      List the available computing sites.

  feam compile --site S --stack IMPL/VER-COMPILER --program NAME
               [--language c|c++|fortran] [--static] -o HOSTPATH
      Compile an MPI program at site S and export the binary to the host
      filesystem.

  feam source --site S --stack IMPL/VER-COMPILER --binary HOSTPATH
              -o BUNDLE.feambundle
      Run FEAM's source phase at guaranteed execution environment S for the
      given binary; write the library bundle archive to the host filesystem.

  feam target --site S --binary HOSTPATH [--bundle BUNDLE.feambundle]
              [--script HOSTPATH] [--report HOSTPATH]
      Run FEAM's target phase at site S: predict execution readiness of the
      migrated binary (extended prediction when a bundle is supplied) and
      optionally write the generated configuration script.

  feam survey --binary HOSTPATH [--bundle BUNDLE.feambundle] [--jobs N]
      Assess the migrated binary at every site and print a ranked report.
      --jobs N assesses up to N sites concurrently (default 1); the ranked
      report is identical at any job count.

  feam exec --site S --binary HOSTPATH [--bundle BUNDLE.feambundle]
      Predict, apply FEAM's generated configuration script, and execute the
      migrated binary at site S — the full automated workflow in one step.

  feam fleet [--fleet-spec SPEC.json] [--seed N] [--sites N] [--workloads N]
             [--drift R] [--jobs N] [--manifest-out FILE] [--matrix-out FILE]
             [--records-out FILE] [--drift-log-out FILE]
      Generate a procedural fleet of sites and synthetic workloads from a
      feam.fleet_spec/1 document (defaults apply without --fleet-spec) and
      run the full N-site x M-workload readiness survey over it. --sites,
      --workloads, and --drift override the spec; everything downstream is
      a pure function of (spec, seed): the same inputs reproduce the
      manifest, the records, and the matrix byte for byte at any --jobs.
      --manifest-out writes the feam.fleet_manifest/1 description of the
      generated fleet, --records-out one feam.run_record/1 JSON line per
      (workload, site) pair (ingestible by `feam report` and joinable with
      `feam diff`), --matrix-out the rendered readiness matrix,
      --drift-log-out one feam.drift_log/1 JSON line per applied drift op
      (the attribution input for `feam diff`).

  feam explain --in RECORDS --binary NAME --site NAME [-o FILE]
      Print the causal chain behind one readiness verdict: the
      per-determinant verdicts, then the provenance evidence each rests on
      (TEC verdicts -> resolver walks -> environment probes -> binary
      description), each item with its content stamp. RECORDS is a
      feam.run_record/1 JSONL file (e.g. from `feam fleet --records-out`)
      or a directory of *.json run records; the pair is selected by
      --binary and --site. -o writes the chain to a file instead of
      stdout.

  feam diff --a RECORDS --b RECORDS [--drift-log FILE] [-o FILE]
            [--json-out FILE]
      Join two feam.run_record/1 streams by (binary, target site) and
      report every verdict flip — a readiness or blocking-determinant
      change — with the provenance-evidence delta behind it. With
      --drift-log (a feam.drift_log/1 file from `feam fleet
      --drift-log-out`), each flip is attributed to the drift ops that can
      have caused it (same site, applied before that workload's sweep);
      flips with no candidate op are counted as unattributed. --json-out
      writes the feam.diff/1 document (ingested by `feam report` for the
      churn panel); -o writes the text rendering to a file.

  feam report --in DIR [--html FILE] [--baseline FILE [--gate]]
              [--trend-baseline FILE] [--bench-out FILE] [--pr N]
      Aggregate every *.json run record (written by --run-record-out) and
      *.jsonl event log under DIR: print the readiness matrix with
      per-determinant failure attribution, merged latency percentiles, and
      counter roll-ups. *.jsonl files carrying the feam.timeseries/1 schema
      (written by --timeseries-out) are ingested too: the text report and
      the --html dashboard gain over-run-time charts (cache hit rates,
      phase p99). --html writes a self-contained dashboard. With
      --baseline and --gate, flattened metrics are diffed against the
      per-metric tolerances in FILE and the command exits 2 on regression;
      --trend-baseline FILE additionally compares the early and late
      steady-state windows of the ingested timeseries (feam.trend_baseline/1
      schema) so slow drift over a run fails the gate even when end-of-run
      totals look healthy. --bench-out records the measured metrics, trend
      metrics, and gate outcome.

  feam profile --in FILE [--folded FILE] [--svg FILE] [--memory]
      Post-process one trace (--trace-out Chrome JSON) or run record
      (--run-record-out JSON) into a deterministic profile: self vs. total
      time per span name, per-thread utilization, and the critical path
      through a parallel run (longest chain of time-contained spans across
      workers). Prints the profile table; --folded writes collapsed-stack
      flamegraph text (flamegraph.pl compatible), --svg a self-contained
      flamegraph. With --memory the folded/SVG outputs are weighted by
      self-allocated bytes instead of self time (requires an input
      recorded with --track-alloc). The same input file always produces
      byte-identical output.

  feam top --in FILE [--once] [--window N] [--refresh MS] [--idle-timeout MS]
      Live view over a feam.timeseries/1 file (--timeseries-out) while the
      writing command is still running: tails the file as it grows and
      redraws throughput, windowed p50/p99 per phase, per-cache hit rates,
      a lease-wait sparkline, and worker utilization every --refresh ms
      (default 500) over a sliding window of --window samples (default 20).
      Exits when the stream's final sample arrives or after --idle-timeout
      ms (default 10000) without new bytes. --once reads what is there now,
      prints one machine-readable JSON summary, and exits. Streams that
      carry gauge samples (recorded this side of the gauge schema
      addition) gain a memory panel: an RSS sparkline, per-cache footprint
      bars, and — when the writer ran with --track-alloc — the top
      allocating phases.

  Every command taking --site also accepts --site-file SPEC.json: a
  user-defined site description (see toolchain/site_spec.hpp for the
  schema), built and provisioned on the fly.

  Observability flags, accepted by every command:
    --log-level LEVEL     Echo structured events at or above LEVEL to
                          stderr (debug|info|warn|error|none; default none).
    --trace-out FILE      Write a Chrome trace_event JSON file (load in
                          about:tracing or Perfetto) with one span per FEAM
                          phase, determinant check, and toolchain step.
    --metrics-out FILE    Write counters and latency histograms as JSON.
    --events-out FILE     Write structured events as JSONL (one JSON object
                          per line), ingestible by `feam report`.
    --run-record-out FILE Write a feam.run_record/1 JSON record of this
                          command (site pair, per-determinant verdicts,
                          span durations, counters, histogram summaries)
                          for later aggregation by `feam report`.
    --timeseries-out FILE Sample every counter and histogram periodically
                          while the command runs and append one JSONL
                          delta line per interval (feam.timeseries/1).
                          Watch live with `feam top --in FILE`; ingest
                          with `feam report`.
    --timeseries-interval MS
                          Sampling period for --timeseries-out in
                          milliseconds; must be >= 1 (default 100).
    --track-alloc         Attribute heap allocations to the innermost
                          active span: spans and phases gain
                          alloc_bytes/alloc_count in traces, run records,
                          and metrics; `feam profile --memory` turns them
                          into an allocation flamegraph. No-op when the
                          build disabled FEAM_TRACK_ALLOC.
)";
}

std::optional<Options> parse_options(const std::vector<std::string>& args,
                                     std::string& error) {
  Options opts;
  if (args.empty()) {
    error = "no command given";
    return std::nullopt;
  }
  const std::string& command = args[0];
  if (command == "list-sites") {
    opts.command = Command::kListSites;
  } else if (command == "compile") {
    opts.command = Command::kCompile;
  } else if (command == "source") {
    opts.command = Command::kSource;
  } else if (command == "target") {
    opts.command = Command::kTarget;
  } else if (command == "survey") {
    opts.command = Command::kSurvey;
  } else if (command == "exec") {
    opts.command = Command::kExec;
  } else if (command == "fleet") {
    opts.command = Command::kFleet;
  } else if (command == "report") {
    opts.command = Command::kReport;
  } else if (command == "explain") {
    opts.command = Command::kExplain;
  } else if (command == "diff") {
    opts.command = Command::kDiff;
  } else if (command == "profile") {
    opts.command = Command::kProfile;
  } else if (command == "top") {
    opts.command = Command::kTop;
  } else if (command == "--help" || command == "-h" || command == "help") {
    opts.command = Command::kHelp;
    return opts;
  } else {
    error = "unknown command: " + command;
    return std::nullopt;
  }

  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& flag = args[i];
    const auto value = [&]() -> std::optional<std::string> {
      if (i + 1 >= args.size()) return std::nullopt;
      return args[++i];
    };
    if (flag == "--static") {
      opts.static_link = true;
      continue;
    }
    if (flag == "--gate") {
      opts.gate = true;
      continue;
    }
    if (flag == "--once") {
      opts.top_once = true;
      continue;
    }
    if (flag == "--memory") {
      opts.profile_memory = true;
      continue;
    }
    if (flag == "--track-alloc") {
      opts.track_alloc = true;
      continue;
    }
    const auto v = value();
    if (!v) {
      error = flag + " requires a value";
      return std::nullopt;
    }
    if (flag == "--site") opts.site = *v;
    else if (flag == "--site-file") opts.site_file = *v;
    else if (flag == "--stack") opts.stack = *v;
    else if (flag == "--program") opts.program = *v;
    else if (flag == "--language") opts.language = *v;
    else if (flag == "--binary") opts.binary = *v;
    else if (flag == "--bundle") opts.bundle = *v;
    else if (flag == "-o" || flag == "--output") opts.output = *v;
    else if (flag == "--script") opts.script = *v;
    else if (flag == "--report") opts.report = *v;
    else if (flag == "--log-level") opts.log_level = *v;
    else if (flag == "--trace-out") opts.trace_out = *v;
    else if (flag == "--metrics-out") opts.metrics_out = *v;
    else if (flag == "--events-out") opts.events_out = *v;
    else if (flag == "--run-record-out") opts.run_record_out = *v;
    else if (flag == "--timeseries-out") opts.timeseries_out = *v;
    else if (flag == "--timeseries-interval" || flag == "--window" ||
             flag == "--refresh" || flag == "--idle-timeout") {
      // One rejection shape for every failure mode (non-numeric, trailing
      // garbage, zero, negative): name the flag, the constraint, and the
      // value that was passed.
      int parsed = 0;
      std::size_t consumed = 0;
      try {
        parsed = std::stoi(*v, &consumed);
      } catch (const std::exception&) {
        consumed = 0;
      }
      if (consumed != v->size() || v->empty() || parsed < 1) {
        const char* unit = flag == "--window" ? "samples" : "milliseconds";
        error = flag + " must be a positive number of " + unit + " (got " +
                *v + ")";
        return std::nullopt;
      }
      if (flag == "--timeseries-interval") opts.timeseries_interval_ms = parsed;
      else if (flag == "--window") opts.top_window = parsed;
      else if (flag == "--refresh") opts.top_refresh_ms = parsed;
      else opts.top_idle_timeout_ms = parsed;
    }
    else if (flag == "--fleet-spec") opts.fleet_spec = *v;
    else if (flag == "--manifest-out") opts.manifest_out = *v;
    else if (flag == "--matrix-out") opts.matrix_out = *v;
    else if (flag == "--records-out") opts.records_out = *v;
    else if (flag == "--drift-log-out") opts.drift_log_out = *v;
    else if (flag == "--a") opts.diff_a = *v;
    else if (flag == "--b") opts.diff_b = *v;
    else if (flag == "--drift-log") opts.drift_log_in = *v;
    else if (flag == "--json-out") opts.json_out = *v;
    else if (flag == "--seed") {
      // The master seed is a full 64-bit value; accept anything stoull
      // takes but reject trailing garbage and negatives.
      std::size_t consumed = 0;
      try {
        opts.fleet_seed = std::stoull(*v, &consumed);
      } catch (const std::exception&) {
        consumed = 0;
      }
      if (consumed != v->size() || v->empty() || (*v)[0] == '-') {
        error = "--seed must be an unsigned 64-bit integer (got " + *v + ")";
        return std::nullopt;
      }
    }
    else if (flag == "--sites" || flag == "--workloads") {
      int parsed = 0;
      std::size_t consumed = 0;
      try {
        parsed = std::stoi(*v, &consumed);
      } catch (const std::exception&) {
        consumed = 0;
      }
      if (consumed != v->size() || v->empty() || parsed < 1) {
        error = flag + " must be a positive integer (got " + *v + ")";
        return std::nullopt;
      }
      if (flag == "--sites") opts.fleet_sites = parsed;
      else opts.fleet_workloads = parsed;
    }
    else if (flag == "--drift") {
      double parsed = 0.0;
      std::size_t consumed = 0;
      try {
        parsed = std::stod(*v, &consumed);
      } catch (const std::exception&) {
        consumed = 0;
      }
      if (consumed != v->size() || v->empty() || parsed < 0.0) {
        error = "--drift must be a non-negative rate (got " + *v + ")";
        return std::nullopt;
      }
      opts.fleet_drift = parsed;
    }
    else if (flag == "--trend-baseline") opts.trend_baseline = *v;
    else if (flag == "--in") {
      // Shared by `report` (records directory) and `profile` (one file).
      opts.report_in = *v;
      opts.profile_in = *v;
    }
    else if (flag == "--folded") opts.folded_out = *v;
    else if (flag == "--svg") opts.svg_out = *v;
    else if (flag == "--html") opts.html_out = *v;
    else if (flag == "--baseline") opts.baseline = *v;
    else if (flag == "--bench-out") opts.bench_out = *v;
    else if (flag == "--pr") {
      try {
        opts.pr_number = std::stoi(*v);
      } catch (const std::exception&) {
        error = "--pr requires an integer";
        return std::nullopt;
      }
    }
    else if (flag == "--jobs") {
      try {
        opts.jobs = std::stoi(*v);
      } catch (const std::exception&) {
        error = "--jobs requires an integer";
        return std::nullopt;
      }
      if (opts.jobs < 1) {
        error = "--jobs must be at least 1";
        return std::nullopt;
      }
    }
    else {
      error = "unknown flag: " + flag;
      return std::nullopt;
    }
  }

  // Per-command requirements.
  const auto require = [&](bool condition, const char* message) {
    if (!condition && error.empty()) error = message;
    return condition;
  };
  bool ok = true;
  if (opts.log_level != "debug" && opts.log_level != "info" &&
      opts.log_level != "warn" && opts.log_level != "error" &&
      opts.log_level != "none") {
    error = "--log-level must be debug, info, warn, error, or none";
    return std::nullopt;
  }
  switch (opts.command) {
    case Command::kCompile:
      ok = require(!opts.site.empty() || !opts.site_file.empty(),
                   "compile: --site or --site-file is required") &&
           require(!opts.stack.empty(), "compile: --stack is required") &&
           require(!opts.program.empty(), "compile: --program is required") &&
           require(!opts.output.empty(), "compile: -o is required") &&
           require(opts.language == "c" || opts.language == "c++" ||
                       opts.language == "fortran",
                   "compile: --language must be c, c++, or fortran");
      break;
    case Command::kSource:
      ok = require(!opts.site.empty() || !opts.site_file.empty(),
                   "source: --site or --site-file is required") &&
           require(!opts.stack.empty(), "source: --stack is required") &&
           require(!opts.binary.empty(), "source: --binary is required") &&
           require(!opts.output.empty(), "source: -o is required");
      break;
    case Command::kTarget:
      ok = require(!opts.site.empty() || !opts.site_file.empty(),
                   "target: --site or --site-file is required") &&
           require(!opts.binary.empty(), "target: --binary is required");
      break;
    case Command::kSurvey:
      ok = require(!opts.binary.empty(), "survey: --binary is required");
      break;
    case Command::kExec:
      ok = require(!opts.site.empty() || !opts.site_file.empty(),
                   "exec: --site or --site-file is required") &&
           require(!opts.binary.empty(), "exec: --binary is required");
      break;
    case Command::kFleet:
      // Everything is optional: the default spec and seed already name a
      // valid (and deterministic) fleet.
      break;
    case Command::kReport:
      ok = require(!opts.report_in.empty(), "report: --in is required") &&
           require(!opts.gate ||
                       !opts.baseline.empty() || !opts.trend_baseline.empty(),
                   "report: --gate requires --baseline or --trend-baseline");
      break;
    case Command::kExplain:
      ok = require(!opts.report_in.empty(), "explain: --in is required") &&
           require(!opts.binary.empty(), "explain: --binary is required") &&
           require(!opts.site.empty(), "explain: --site is required");
      break;
    case Command::kDiff:
      ok = require(!opts.diff_a.empty(), "diff: --a is required") &&
           require(!opts.diff_b.empty(), "diff: --b is required");
      break;
    case Command::kProfile:
      ok = require(!opts.profile_in.empty(), "profile: --in is required");
      break;
    case Command::kTop:
      ok = require(!opts.profile_in.empty(), "top: --in is required");
      break;
    case Command::kListSites:
    case Command::kHelp:
      break;
  }
  if (!ok) return std::nullopt;
  return opts;
}

}  // namespace feam::cli
