#include "cli/top.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "report/timeseries.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace feam::cli {
namespace {

// Appended bytes past `offset`, or nullopt while the file does not exist
// yet (the watched command may not have opened it).
std::optional<std::string> read_from(const std::string& path,
                                     std::uint64_t offset) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  in.seekg(static_cast<std::streamoff>(offset));
  if (!in) return std::string{};
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// The sliding stats window: the last `window` non-final samples — the
// final flush sample is excluded because its dt is however long the tail
// of the command took, not one sampler interval.
struct WindowBounds {
  std::size_t from = 0;
  std::size_t to = 0;
};

WindowBounds window_bounds(const report::Timeseries& series,
                           std::size_t window) {
  std::size_t end = series.samples.size();
  if (end > 0 && series.samples[end - 1].final_sample) --end;
  if (end == 0) end = series.samples.size();  // final-only stream
  const std::size_t from = end > window ? end - window : 0;
  return {from, end};
}

struct PhaseRow {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
};

// Unlabeled *_ns histograms with samples in the window, merged over it.
std::vector<PhaseRow> phase_rows(const report::Timeseries& series,
                                 const WindowBounds& window) {
  std::set<std::string> names;
  for (std::size_t i = window.from; i < window.to; ++i) {
    for (const auto& [name, delta] : series.samples[i].hist_deltas) {
      if (delta.count == 0) continue;
      if (name.find('{') != std::string::npos) continue;
      if (!support::ends_with(name, "_ns")) continue;
      names.insert(name);
    }
  }
  std::vector<PhaseRow> rows;
  for (const auto& name : names) {
    const auto merged = series.merged_histogram(name, window.from, window.to);
    if (merged.count == 0) continue;
    rows.push_back({name, merged.count, merged.percentile(0.50),
                    merged.percentile(0.99)});
  }
  return rows;
}

// Per-sample mean lease wait over the trailing samples, newest last.
std::vector<double> lease_wait_series(const report::Timeseries& series,
                                      const WindowBounds& window) {
  std::vector<double> out;
  for (std::size_t i = window.from; i < window.to; ++i) {
    const auto it = series.samples[i].hist_deltas.find("lease.wait_ns");
    if (it == series.samples[i].hist_deltas.end() || it->second.count == 0) {
      out.push_back(0.0);
    } else {
      out.push_back(it->second.mean());
    }
  }
  return out;
}

std::string sparkline(const std::vector<double>& values) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  double peak = 0.0;
  for (double v : values) peak = std::max(peak, v);
  std::string out;
  for (double v : values) {
    const int level =
        peak <= 0.0 ? 0
                    : std::min(7, static_cast<int>(v / peak * 7.0 + 0.5));
    out += kBlocks[level];
  }
  return out;
}

// Mean busy workers over the window: thread-time recorded into the pool's
// task-run histogram divided by the window's wall time.
double avg_busy_workers(const report::Timeseries& series,
                        const WindowBounds& window) {
  const auto merged =
      series.merged_histogram("pool.task_run_ns", window.from, window.to);
  const double seconds = series.span_seconds(window.from, window.to);
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(merged.sum) / 1e9 / seconds;
}

// Per-sample RSS over the window (carry-forward view), newest last; empty
// when the stream predates gauge samples or RSS was unavailable.
std::vector<double> rss_series(const report::Timeseries& series,
                               const WindowBounds& window) {
  const auto track = series.gauge_track("process.rss_bytes");
  std::vector<double> out;
  bool any = false;
  for (std::size_t i = window.from; i < window.to && i < track.size(); ++i) {
    out.push_back(static_cast<double>(track[i].value));
    any = any || track[i].value > 0;
  }
  if (!any) out.clear();
  return out;
}

// Current/peak footprint per cache.bytes{cache=...} gauge, label order.
std::vector<std::pair<std::string, obs::GaugeValue>> cache_footprints(
    const report::Timeseries& series) {
  constexpr std::string_view kPrefix = "cache.bytes{cache=";
  std::vector<std::pair<std::string, obs::GaugeValue>> out;
  for (const auto& [name, value] : series.final_gauge_values()) {
    if (name.rfind(kPrefix, 0) != 0 || name.back() != '}') continue;
    out.emplace_back(
        name.substr(kPrefix.size(), name.size() - kPrefix.size() - 1), value);
  }
  return out;
}

struct AllocPhaseRow {
  std::string name;
  std::uint64_t bytes = 0;
  std::uint64_t count = 0;
};

// Top allocating phases over the window: mem.alloc_bytes{phase=...}
// counter deltas, descending, present only for --track-alloc writers.
std::vector<AllocPhaseRow> alloc_phase_rows(const report::Timeseries& series,
                                            const WindowBounds& window,
                                            std::size_t limit) {
  constexpr std::string_view kPrefix = "mem.alloc_bytes{phase=";
  std::set<std::string> names;
  for (std::size_t i = window.from; i < window.to; ++i) {
    for (const auto& [name, delta] : series.samples[i].counter_deltas) {
      if (delta > 0 && name.rfind(kPrefix, 0) == 0) names.insert(name);
    }
  }
  std::vector<AllocPhaseRow> rows;
  for (const auto& name : names) {
    AllocPhaseRow row;
    row.name = name.substr(kPrefix.size(), name.size() - kPrefix.size() - 1);
    row.bytes = series.counter_delta_sum(name, window.from, window.to);
    row.count = series.counter_delta_sum(
        "mem.alloc_count{phase=" + row.name + "}", window.from, window.to);
    if (row.bytes > 0) rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.bytes != b.bytes ? a.bytes > b.bytes : a.name < b.name;
  });
  if (rows.size() > limit) rows.resize(limit);
  return rows;
}

std::string format_ns(double ns) {
  char buf[32];
  if (ns < 10'000.0) std::snprintf(buf, sizeof buf, "%.0fns", ns);
  else if (ns < 10'000'000.0) std::snprintf(buf, sizeof buf, "%.1fus",
                                            ns / 1'000.0);
  else if (ns < 10'000'000'000.0) std::snprintf(buf, sizeof buf, "%.1fms",
                                                ns / 1'000'000.0);
  else std::snprintf(buf, sizeof buf, "%.2fs", ns / 1'000'000'000.0);
  return buf;
}

std::string render_view(const report::Timeseries& series, std::size_t window,
                        bool follow) {
  const WindowBounds bounds = window_bounds(series, window);
  std::string out;
  char line[256];

  std::snprintf(line, sizeof line,
                "feam top — %s  interval=%llums  samples=%zu  elapsed=%.1fs%s\n",
                series.source.empty() ? "(unnamed run)" : series.source.c_str(),
                static_cast<unsigned long long>(series.interval_ms),
                series.samples.size(),
                static_cast<double>(series.duration_ns()) / 1e9,
                series.saw_final ? "  [run finished]"
                : follow         ? "  [live]"
                                 : "");
  out += line;

  const double seconds = series.span_seconds(bounds.from, bounds.to);
  const double target_rate =
      seconds <= 0.0 ? 0.0
                     : static_cast<double>(series.counter_delta_sum(
                           "phase.target_runs", bounds.from, bounds.to)) /
                           seconds;
  const double source_rate =
      seconds <= 0.0 ? 0.0
                     : static_cast<double>(series.counter_delta_sum(
                           "phase.source_runs", bounds.from, bounds.to)) /
                           seconds;
  std::snprintf(line, sizeof line,
                "window: last %zu samples (%.1fs)  throughput: %.1f "
                "target/s, %.1f source/s  workers busy: %.2f\n",
                bounds.to - bounds.from, seconds, target_rate, source_rate,
                avg_busy_workers(series, bounds));
  out += line;

  const auto leases = lease_wait_series(series, bounds);
  double lease_peak = 0.0;
  for (double v : leases) lease_peak = std::max(lease_peak, v);
  out += "lease wait: " + sparkline(leases) + "  peak " +
         format_ns(lease_peak) + "\n\n";

  const auto caches = report::cache_windows(series, bounds.from, bounds.to);
  if (!caches.empty()) {
    out += "  cache            hit%   hits/misses (window)\n";
    for (const auto& [name, cache] : caches) {
      const int filled = static_cast<int>(cache.rate() * 20.0 + 0.5);
      std::string bar;
      for (int i = 0; i < 20; ++i) bar += i < filled ? '#' : '.';
      std::snprintf(line, sizeof line, "  %-16s %5.1f  [%s] %llu/%llu\n",
                    name.c_str(), cache.rate() * 100.0, bar.c_str(),
                    static_cast<unsigned long long>(cache.hits),
                    static_cast<unsigned long long>(cache.misses));
      out += line;
    }
    out += "\n";
  }

  // Memory panel, rendered only when the stream carries gauge samples.
  const auto rss = rss_series(series, bounds);
  const auto footprints = cache_footprints(series);
  if (!rss.empty() || !footprints.empty()) {
    if (!rss.empty()) {
      const auto final_gauges = series.final_gauge_values();
      const auto now_it = final_gauges.find("process.rss_bytes");
      const auto peak_it = final_gauges.find("process.rss_peak_bytes");
      const std::uint64_t now_bytes =
          now_it != final_gauges.end() ? now_it->second.value : 0;
      const std::uint64_t peak_bytes =
          peak_it != final_gauges.end() ? peak_it->second.value : 0;
      out += "rss: " + sparkline(rss) + "  now " +
             support::human_size(now_bytes) + "  peak " +
             support::human_size(peak_bytes) + "\n";
    }
    if (!footprints.empty()) {
      std::uint64_t max_peak = 1;
      for (const auto& [label, value] : footprints) {
        max_peak = std::max(max_peak, value.peak);
      }
      out += "  cache footprint              bytes     peak\n";
      for (const auto& [label, value] : footprints) {
        const int filled = static_cast<int>(
            static_cast<double>(value.value) /
                static_cast<double>(max_peak) * 12.0 + 0.5);
        std::string bar;
        for (int i = 0; i < 12; ++i) bar += i < filled ? '#' : '.';
        std::snprintf(line, sizeof line, "  %-16s [%s] %8s %8s\n",
                      label.c_str(), bar.c_str(),
                      support::human_size(value.value).c_str(),
                      support::human_size(value.peak).c_str());
        out += line;
      }
    }
    const auto allocs = alloc_phase_rows(series, bounds, 5);
    if (!allocs.empty()) {
      out += "  alloc phase (window)         bytes   allocs\n";
      for (const auto& row : allocs) {
        std::snprintf(line, sizeof line, "  %-26s %8s %8llu\n",
                      row.name.c_str(),
                      support::human_size(row.bytes).c_str(),
                      static_cast<unsigned long long>(row.count));
        out += line;
      }
    }
    out += "\n";
  }

  const auto phases = phase_rows(series, bounds);
  if (!phases.empty()) {
    out += "  phase                        n      p50        p99\n";
    for (const auto& row : phases) {
      std::snprintf(line, sizeof line, "  %-26s %5llu  %9s  %9s\n",
                    row.name.c_str(),
                    static_cast<unsigned long long>(row.count),
                    format_ns(static_cast<double>(row.p50)).c_str(),
                    format_ns(static_cast<double>(row.p99)).c_str());
      out += line;
    }
  }
  return out;
}

// --once: everything the view shows, as one JSON object on stdout.
support::Json once_json(const report::Timeseries& series, std::size_t window) {
  const WindowBounds bounds = window_bounds(series, window);
  support::Json out;
  out.set("schema", "feam.top/1");
  out.set("source", series.source);
  out.set("interval_ms", series.interval_ms);
  out.set("samples", series.samples.size());
  out.set("final", series.saw_final);
  out.set("duration_s", static_cast<double>(series.duration_ns()) / 1e9);
  out.set("malformed_lines", series.malformed_lines);

  support::Json win;
  win.set("from", bounds.from);
  win.set("to", bounds.to);
  win.set("seconds", series.span_seconds(bounds.from, bounds.to));
  out.set("window", std::move(win));

  const double seconds = series.span_seconds(bounds.from, bounds.to);
  support::Json throughput;
  throughput.set("target_runs_per_s",
                 seconds <= 0.0
                     ? 0.0
                     : static_cast<double>(series.counter_delta_sum(
                           "phase.target_runs", bounds.from, bounds.to)) /
                           seconds);
  throughput.set("source_runs_per_s",
                 seconds <= 0.0
                     ? 0.0
                     : static_cast<double>(series.counter_delta_sum(
                           "phase.source_runs", bounds.from, bounds.to)) /
                           seconds);
  out.set("throughput", std::move(throughput));
  out.set("workers_busy", avg_busy_workers(series, bounds));

  support::Json phases{support::Json::Object{}};
  for (const auto& row : phase_rows(series, bounds)) {
    support::Json phase;
    phase.set("count", row.count);
    phase.set("p50", row.p50);
    phase.set("p99", row.p99);
    phases.set(row.name, std::move(phase));
  }
  out.set("phases", std::move(phases));

  support::Json caches{support::Json::Object{}};
  for (const auto& [name, cache] :
       report::cache_windows(series, bounds.from, bounds.to)) {
    support::Json entry;
    entry.set("hits", cache.hits);
    entry.set("misses", cache.misses);
    entry.set("rate", cache.rate());
    caches.set(name, std::move(entry));
  }
  out.set("caches", std::move(caches));

  const auto lease =
      series.merged_histogram("lease.wait_ns", bounds.from, bounds.to);
  support::Json lease_json;
  lease_json.set("count", lease.count);
  lease_json.set("mean_ns", lease.mean());
  lease_json.set("p99_ns", lease.percentile(0.99));
  out.set("lease_wait", std::move(lease_json));

  support::Json totals{support::Json::Object{}};
  for (const auto& [name, total] : series.final_counter_totals()) {
    totals.set(name, total);
  }
  out.set("counter_totals", std::move(totals));

  // "memory" is additive: present only when the stream carries gauge
  // samples, so feam.top/1 consumers of pre-gauge streams see no change.
  const auto final_gauges = series.final_gauge_values();
  if (!final_gauges.empty()) {
    support::Json memory;
    const auto rss = final_gauges.find("process.rss_bytes");
    const auto rss_peak = final_gauges.find("process.rss_peak_bytes");
    if (rss != final_gauges.end()) {
      memory.set("rss_bytes", rss->second.value);
    }
    if (rss_peak != final_gauges.end()) {
      memory.set("rss_peak_bytes", rss_peak->second.value);
    }
    support::Json cache_bytes{support::Json::Object{}};
    for (const auto& [label, value] : cache_footprints(series)) {
      support::Json entry;
      entry.set("bytes", value.value);
      entry.set("peak", value.peak);
      cache_bytes.set(label, std::move(entry));
    }
    memory.set("caches", std::move(cache_bytes));
    support::Json alloc{support::Json::Object{}};
    for (const auto& row : alloc_phase_rows(series, bounds, 10)) {
      support::Json entry;
      entry.set("bytes", row.bytes);
      entry.set("count", row.count);
      alloc.set(row.name, std::move(entry));
    }
    memory.set("alloc_phases", std::move(alloc));
    out.set("memory", std::move(memory));
  }

  support::Json::Array issues;
  for (const auto& issue : series.consistency_issues()) {
    issues.push_back(support::Json(issue));
  }
  out.set("consistency_issues", support::Json(std::move(issues)));
  return out;
}

}  // namespace

int top_command(const Options& opts) {
  const std::string& path = opts.profile_in;  // --in (shared with profile)
  const auto window = static_cast<std::size_t>(opts.top_window);

  if (opts.top_once) {
    const auto text = read_from(path, 0);
    if (!text) {
      std::fprintf(stderr, "feam: cannot read %s\n", path.c_str());
      return 1;
    }
    const report::Timeseries series = report::parse_timeseries(*text);
    if (!series.saw_meta && series.samples.empty()) {
      std::fprintf(stderr,
                   "feam: %s carries no feam.timeseries/1 lines; write one "
                   "with --timeseries-out FILE on any command\n",
                   path.c_str());
      return 1;
    }
    std::printf("%s\n", once_json(series, window).dump(2).c_str());
    return 0;
  }

  // Follow mode: poll for appended bytes, redraw on change, and exit once
  // the stream's final sample arrives (clean end) or the idle timeout
  // passes with nothing new (writer died or the path is wrong).
  report::TimeseriesTail tail;
  std::uint64_t offset = 0;
  int idle_ms = 0;
  bool drawn = false;
  while (true) {
    const auto appended = read_from(path, offset);
    bool progressed = false;
    if (appended && !appended->empty()) {
      offset += appended->size();
      progressed = tail.feed(*appended) > 0;
    }
    if (progressed) {
      idle_ms = 0;
      // Full-screen redraw: home + clear-to-end keeps the view stable
      // without scrollback spam.
      std::printf("\x1b[H\x1b[2J%s",
                  render_view(tail.series(), window, /*follow=*/true).c_str());
      std::fflush(stdout);
      drawn = true;
      if (tail.series().saw_final) {
        std::printf("\nstream finished (%zu samples)\n",
                    tail.series().samples.size());
        return 0;
      }
    } else {
      idle_ms += opts.top_refresh_ms;
      if (idle_ms >= opts.top_idle_timeout_ms) {
        if (!drawn) {
          std::fprintf(stderr,
                       "feam: no timeseries data at %s after %dms; is the "
                       "watched command running with --timeseries-out?\n",
                       path.c_str(), opts.top_idle_timeout_ms);
          return 1;
        }
        std::printf("\nno new samples for %dms; exiting\n",
                    opts.top_idle_timeout_ms);
        return 1;
      }
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(opts.top_refresh_ms));
  }
}

}  // namespace feam::cli
