// `feam top`: a live terminal view over a feam.timeseries/1 file while
// the command writing it is still running. Follow mode tails the file as
// it grows (the sampler appends whole lines atomically, so a reader never
// sees a torn record — at worst a partial trailing line, which the tail
// buffers); --once summarizes whatever is there right now as one JSON
// object for scripts and the smoke checks.
#pragma once

#include "cli/options.hpp"

namespace feam::cli {

// Exit codes: 0 on a clean view (final sample seen, or --once over a
// parseable file), 1 when the file never appears / never carries a
// timeseries / the idle timeout expires before the final sample.
int top_command(const Options& opts);

}  // namespace feam::cli
