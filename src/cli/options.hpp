// Command-line parsing for the `feam` tool. Kept separate from main() so
// the grammar is unit-testable.
//
// Subcommands:
//   feam list-sites
//   feam compile --site S --stack IMPL/VER-COMPILER --program NAME
//                [--language c|c++|fortran] [--static] -o HOSTPATH
//   feam source  --site S --stack IMPL/VER-COMPILER --binary HOSTPATH
//                -o BUNDLE.feambundle
//   feam target  --site S --binary HOSTPATH [--bundle BUNDLE.feambundle]
//                [--script HOSTPATH] [--report HOSTPATH]
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace feam::cli {

enum class Command {
  kListSites, kCompile, kSource, kTarget, kSurvey, kExec, kFleet, kReport,
  kExplain, kDiff, kProfile, kTop, kHelp
};

struct Options {
  Command command = Command::kHelp;
  std::string site;
  std::string site_file;  // JSON site spec (alternative to --site)
  std::string stack;     // module-style id, e.g. "openmpi/1.4-gnu"
  std::string program;   // workload name or free-form
  std::string language = "c";
  bool static_link = false;
  std::string binary;    // host path of a binary (input)
  std::string bundle;    // host path of a bundle archive (input)
  std::string output;    // host path (output)
  std::string script;    // host path to write the configuration script to
  std::string report;    // host path to write the full report to
  // Observability (accepted by every command):
  std::string log_level = "none";  // debug|info|warn|error|none
  std::string trace_out;    // host path for a Chrome trace_event JSON file
  std::string metrics_out;  // host path for a metrics JSON file
  std::string events_out;   // host path for a JSONL event-log file
  std::string run_record_out;  // host path for a feam.run_record/1 JSON file
  std::string timeseries_out;  // host path for a feam.timeseries/1 JSONL file
  int timeseries_interval_ms = 100;  // sampler period for --timeseries-out
  bool track_alloc = false;  // attribute heap allocations to spans/phases
  // `feam report` (aggregation over a directory of run records):
  std::string report_in;    // directory of *.json run records / *.jsonl logs
  std::string html_out;     // self-contained HTML dashboard output path
  std::string baseline;     // feam.report_baseline/1 file for --gate
  std::string trend_baseline;  // feam.trend_baseline/1 file for --gate
  bool gate = false;        // apply the baseline(s) as a regression gate
  std::string bench_out;    // feam.bench/1 trajectory record output path
  int pr_number = 0;        // --pr N, recorded in the bench output
  // `feam survey` / `feam fleet`: worker threads assessing sites
  // concurrently.
  int jobs = 1;
  // `feam fleet` (procedural site/workload fleet generator):
  std::string fleet_spec;   // feam.fleet_spec/1 JSON file (defaults apply)
  std::uint64_t fleet_seed = 42;  // --seed N, the fleet's master seed
  int fleet_sites = 0;      // --sites N override (0 = use spec)
  int fleet_workloads = 0;  // --workloads N override (0 = use spec)
  double fleet_drift = -1.0;  // --drift R override (< 0 = use spec)
  std::string manifest_out;  // feam.fleet_manifest/1 JSON output path
  std::string matrix_out;    // rendered readiness-matrix text output path
  std::string records_out;   // feam.run_record/1 JSONL output path
  std::string drift_log_out;  // feam.drift_log/1 JSONL output path
  // `feam explain` shares --in (report_in), --binary (binary), --site
  // (site: a record's target site, not a buildable site spec) and -o.
  // `feam diff` (two record streams + optional drift log):
  std::string diff_a;        // --a: feam.run_record/1 JSONL stream A
  std::string diff_b;        // --b: feam.run_record/1 JSONL stream B
  std::string drift_log_in;  // --drift-log: feam.drift_log/1 JSONL to join
  std::string json_out;      // --json-out: feam.diff/1 JSON output path
  // `feam profile` (post-processing one trace/run-record file):
  std::string profile_in;   // --trace-out or --run-record-out file to ingest
  std::string folded_out;   // collapsed-stack flamegraph text output path
  std::string svg_out;      // self-contained flamegraph SVG output path
  bool profile_memory = false;  // weight flamegraph outputs by allocated bytes
  // `feam top` (live view over a growing --timeseries-out file):
  bool top_once = false;    // one machine-readable JSON summary, then exit
  int top_window = 20;      // samples per sliding stats window
  int top_refresh_ms = 500;     // follow-mode poll/redraw period
  int top_idle_timeout_ms = 10000;  // give up after this long with no bytes
};

// Parses argv (excluding argv[0]); on error returns nullopt and fills
// `error` with a message.
std::optional<Options> parse_options(const std::vector<std::string>& args,
                                     std::string& error);

// The --help text.
std::string usage();

}  // namespace feam::cli
