// The `feam` command-line tool: drives FEAM's phases over the simulated
// testbed, importing and exporting binaries and bundle archives through
// the host filesystem — so the full workflow of the paper (compile,
// source phase, copy bundle, target phase) can be walked by hand:
//
//   feam compile --site india --stack openmpi/1.4-gnu --program cg.B
//        --language fortran -o /tmp/cg.B
//   feam source  --site india --stack openmpi/1.4-gnu --binary /tmp/cg.B
//        -o /tmp/cg.B.feambundle
//   feam target  --site fir --binary /tmp/cg.B --bundle /tmp/cg.B.feambundle
//        --script /tmp/run_cg.sh
//   (each command is one line; wrapped here for width)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>

#include "cli/options.hpp"
#include "cli/top.hpp"
#include "eval/fleet.hpp"
#include "feam/bundle_archive.hpp"
#include "fleet/generate.hpp"
#include "fleet/manifest.hpp"
#include "fleet/spec.hpp"
#include "feam/phases.hpp"
#include "feam/report.hpp"
#include "feam/survey.hpp"
#include "obs/export.hpp"
#include "obs/memory.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "fleet/drift.hpp"
#include "report/aggregate.hpp"
#include "report/diff.hpp"
#include "report/gate.hpp"
#include "report/html.hpp"
#include "report/run_record.hpp"
#include "report/timeseries.hpp"
#include "report/trend.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "toolchain/linker.hpp"
#include "toolchain/shell.hpp"
#include "toolchain/site_spec.hpp"
#include "toolchain/testbed.hpp"

namespace feam::cli {
namespace {

std::optional<support::Bytes> read_host_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return support::Bytes(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
}

bool write_host_file(const std::string& path, const support::Bytes& data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return static_cast<bool>(out);
}

bool write_host_file(const std::string& path, const std::string& text) {
  return write_host_file(path, support::Bytes(text.begin(), text.end()));
}

// Applies the observability flags for the whole command and exports the
// trace/metrics/run-record files once the command has run. Construct after
// parsing, call finish() just before exiting.
class ObsSession {
 public:
  explicit ObsSession(const Options& opts)
      : trace_out_(opts.trace_out),
        metrics_out_(opts.metrics_out),
        events_out_(opts.events_out),
        run_record_out_(opts.run_record_out) {
    if (const auto level = obs::parse_level(opts.log_level)) {
      obs::set_log_level(*level);
    }
    if (opts.track_alloc) {
      if (obs::alloc_tracking_compiled()) {
        obs::set_alloc_tracking(true);
      } else {
        std::fprintf(stderr,
                     "feam: --track-alloc ignored: built without "
                     "FEAM_TRACK_ALLOC\n");
      }
    }
    // Spans/events are only retained when something will consume them.
    if (!trace_out_.empty() || !events_out_.empty() ||
        !run_record_out_.empty()) {
      obs::collector().set_enabled(true);
    }
    if (!opts.timeseries_out.empty()) {
      timeseries_path_ = opts.timeseries_out;
      timeseries_file_.open(timeseries_path_,
                            std::ios::binary | std::ios::trunc);
      if (!timeseries_file_) {
        std::fprintf(stderr, "feam: cannot write %s\n",
                     timeseries_path_.c_str());
        timeseries_failed_ = true;
      } else {
        obs::TimeseriesSampler::Options sampler_opts;
        sampler_opts.interval_ms =
            static_cast<std::uint64_t>(opts.timeseries_interval_ms);
        sampler_opts.source = command_line_source(opts);
        // One whole line per sink call, flushed under a mutex: a tailing
        // `feam top` never reads a torn record, only a partial last line.
        sampler_ = std::make_unique<obs::TimeseriesSampler>(
            obs::metrics(), sampler_opts, [this](const std::string& line) {
              std::lock_guard<std::mutex> lock(timeseries_mutex_);
              timeseries_file_ << line;
              timeseries_file_.flush();
            });
      }
    }
  }

  // What the finished command knew about itself; filled in as the command
  // runs, serialized by finish() when --run-record-out was given.
  report::RunContext& context() { return context_; }

  // Returns the command's exit code, or an I/O failure code if an export
  // could not be written.
  int finish(int rc) {
    int obs_rc = 0;
    if (sampler_ != nullptr) {
      // The destructor's stop() takes the final (quiescent) sample, so the
      // stream telescopes exactly to the end-of-run counter totals.
      const std::uint64_t samples = [this] {
        sampler_->stop();
        return sampler_->samples_emitted();
      }();
      sampler_.reset();
      timeseries_file_.close();
      if (!timeseries_file_) {
        std::fprintf(stderr, "feam: cannot write %s\n",
                     timeseries_path_.c_str());
        obs_rc = 1;
      } else {
        std::fprintf(stderr, "feam: timeseries written to %s (%llu samples)\n",
                     timeseries_path_.c_str(),
                     static_cast<unsigned long long>(samples));
      }
    }
    if (timeseries_failed_) obs_rc = 1;
    if (!trace_out_.empty()) {
      const std::string trace = obs::render_chrome_trace(
          obs::collector().spans(), obs::collector().events());
      if (write_host_file(trace_out_, trace)) {
        std::fprintf(stderr, "feam: trace written to %s (%zu spans)\n",
                     trace_out_.c_str(), obs::collector().spans().size());
      } else {
        std::fprintf(stderr, "feam: cannot write %s\n", trace_out_.c_str());
        obs_rc = 1;
      }
    }
    if (!metrics_out_.empty()) {
      if (write_host_file(metrics_out_,
                          obs::render_metrics_json(obs::metrics()))) {
        std::fprintf(stderr, "feam: metrics written to %s\n",
                     metrics_out_.c_str());
      } else {
        std::fprintf(stderr, "feam: cannot write %s\n", metrics_out_.c_str());
        obs_rc = 1;
      }
    }
    if (!events_out_.empty()) {
      if (write_host_file(events_out_,
                          obs::render_jsonl(obs::collector().events()))) {
        std::fprintf(stderr, "feam: events written to %s (%zu events)\n",
                     events_out_.c_str(), obs::collector().events().size());
      } else {
        std::fprintf(stderr, "feam: cannot write %s\n", events_out_.c_str());
        obs_rc = 1;
      }
    }
    if (!run_record_out_.empty()) {
      const report::RunRecord record = report::assemble_run_record(
          context_, obs::collector().spans(), obs::metrics(), rc);
      if (write_host_file(run_record_out_, record.to_json().dump(2) + "\n")) {
        std::fprintf(stderr, "feam: run record written to %s\n",
                     run_record_out_.c_str());
      } else {
        std::fprintf(stderr, "feam: cannot write %s\n",
                     run_record_out_.c_str());
        obs_rc = 1;
      }
    }
    return rc != 0 ? rc : obs_rc;
  }

 private:
  static std::string command_line_source(const Options& opts) {
    switch (opts.command) {
      case Command::kCompile: return "compile " + opts.program;
      case Command::kSource: return "source " + opts.binary;
      case Command::kTarget: return "target " + opts.binary;
      case Command::kSurvey: return "survey " + opts.binary;
      case Command::kExec: return "exec " + opts.binary;
      case Command::kFleet: return "fleet";
      case Command::kReport: return "report " + opts.report_in;
      case Command::kExplain: return "explain " + opts.binary;
      case Command::kDiff: return "diff " + opts.diff_a;
      case Command::kProfile: return "profile " + opts.profile_in;
      default: return "feam";
    }
  }

  std::string trace_out_;
  std::string metrics_out_;
  std::string events_out_;
  std::string run_record_out_;
  std::string timeseries_path_;
  std::ofstream timeseries_file_;
  std::mutex timeseries_mutex_;
  bool timeseries_failed_ = false;
  std::unique_ptr<obs::TimeseriesSampler> sampler_;
  report::RunContext context_;
};

// Loads the bundle archive named by --bundle (if any) into `travelled` and
// returns a pointer to it for run_target_phase / survey_sites — nullptr for
// the basic (bundle-less) prediction. Sets `failed` when the file cannot be
// read or parsed.
const feam::SourcePhaseOutput* load_travelled_bundle(
    const Options& opts, SourcePhaseOutput& travelled, bool& failed,
    std::uint64_t* archive_bytes = nullptr) {
  failed = false;
  if (opts.bundle.empty()) return nullptr;
  const auto archive = read_host_file(opts.bundle);
  if (!archive) {
    std::fprintf(stderr, "feam: cannot read %s\n", opts.bundle.c_str());
    failed = true;
    return nullptr;
  }
  if (archive_bytes != nullptr) {
    *archive_bytes = static_cast<std::uint64_t>(archive->size());
  }
  auto unpacked = unpack_bundle(*archive);
  if (!unpacked.ok()) {
    std::fprintf(stderr, "feam: bad bundle: %s\n", unpacked.error().c_str());
    failed = true;
    return nullptr;
  }
  travelled.application = unpacked.value().application;
  travelled.bundle = std::move(unpacked).take();
  return &travelled;
}

// Builds the site a command addresses: a built-in testbed site by name, or
// a user-defined site from a JSON spec file.
std::unique_ptr<site::Site> make_selected_site(const Options& opts) {
  if (!opts.site_file.empty()) {
    const auto spec = read_host_file(opts.site_file);
    if (!spec) {
      std::fprintf(stderr, "feam: cannot read %s\n", opts.site_file.c_str());
      return nullptr;
    }
    auto built = toolchain::make_site_from_json(
        std::string(spec->begin(), spec->end()));
    if (!built.ok()) {
      std::fprintf(stderr, "feam: %s\n", built.error().c_str());
      return nullptr;
    }
    return std::move(built).take();
  }
  try {
    return toolchain::make_site(opts.site);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "feam: %s\n", e.what());
    return nullptr;
  }
}

int list_sites() {
  support::TextTable table({"Site", "Type", "CPUs", "OS", "C library",
                            "MPI stacks"});
  std::vector<std::string> names = toolchain::testbed_site_names();
  names.push_back("bluefire");
  for (const auto& name : names) {
    auto s = toolchain::make_site(name);
    table.add_row({s->name, s->system_type, std::to_string(s->cpu_count),
                   s->os_distro + " " + s->os_version.str(),
                   s->clib_version.str(),
                   std::to_string(s->stacks.size())});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

const site::MpiStackInstall* find_stack_by_id(const site::Site& s,
                                              const std::string& id) {
  return s.stack_for_module(id);
}

int compile(const Options& opts, report::RunContext& ctx) {
  ctx.binary = opts.program;
  ctx.source_site = opts.site;
  auto s = make_selected_site(opts);
  if (!s) return 1;
  ctx.source_site = s->name;
  const auto* stack = find_stack_by_id(*s, opts.stack);
  if (stack == nullptr) {
    std::fprintf(stderr, "feam: no stack '%s' at %s\n", opts.stack.c_str(),
                 opts.site.c_str());
    return 1;
  }
  toolchain::ProgramSource program;
  program.name = opts.program;
  program.language = opts.language == "fortran" ? toolchain::Language::kFortran
                     : opts.language == "c++"   ? toolchain::Language::kCxx
                                                : toolchain::Language::kC;
  program.libc_features = {"base", "stdio", "math"};
  program.text_size = 256 * 1024;

  const std::string vfs_path = "/home/user/apps/" + opts.program;
  const auto compiled =
      opts.static_link
          ? toolchain::compile_static_mpi_program(*s, program, *stack, vfs_path)
          : toolchain::compile_mpi_program(*s, program, *stack, vfs_path);
  if (!compiled.ok()) {
    std::fprintf(stderr, "feam: %s\n", compiled.error().c_str());
    return 1;
  }
  const auto* bytes = s->vfs.read(compiled.value());
  if (bytes == nullptr) {
    std::fprintf(stderr, "feam: compiler produced no output at %s\n",
                 compiled.value().c_str());
    return 1;
  }
  if (!write_host_file(opts.output, *bytes)) {
    std::fprintf(stderr, "feam: cannot write %s\n", opts.output.c_str());
    return 1;
  }
  std::printf("compiled %s with %s at %s -> %s (%s)\n", opts.program.c_str(),
              stack->display().c_str(), opts.site.c_str(),
              opts.output.c_str(),
              support::human_size(bytes->size()).c_str());
  return 0;
}

int source_phase(const Options& opts, report::RunContext& ctx) {
  ctx.binary = site::Vfs::basename(opts.binary);
  auto s = make_selected_site(opts);
  if (!s) return 1;
  ctx.source_site = s->name;
  const auto binary = read_host_file(opts.binary);
  if (!binary) {
    std::fprintf(stderr, "feam: cannot read %s\n", opts.binary.c_str());
    return 1;
  }
  const std::string vfs_path =
      "/home/user/apps/" + site::Vfs::basename(opts.binary);
  s->vfs.write_file(vfs_path, *binary);
  if (!s->load_module(opts.stack)) {
    std::fprintf(stderr, "feam: no stack '%s' at %s\n", opts.stack.c_str(),
                 opts.site.c_str());
    return 1;
  }
  const auto out = run_source_phase(*s, vfs_path);
  if (!out.ok()) {
    std::fprintf(stderr, "feam: source phase failed: %s\n",
                 out.error().c_str());
    return 1;
  }
  for (const auto& line : out.value().render_text()) {
    std::printf("%s\n", line.c_str());
  }
  const auto archive = pack_bundle(out.value().bundle);
  ctx.bundle_bytes = static_cast<std::uint64_t>(archive.size());
  if (!write_host_file(opts.output, archive)) {
    std::fprintf(stderr, "feam: cannot write %s\n", opts.output.c_str());
    return 1;
  }
  std::printf("bundle: %zu libraries, %zu hello worlds -> %s (%s)\n",
              out.value().bundle.libraries.size(),
              out.value().bundle.hello_worlds.size(), opts.output.c_str(),
              support::human_size(archive.size()).c_str());
  return 0;
}

int target_phase(const Options& opts, report::RunContext& ctx) {
  ctx.binary = site::Vfs::basename(opts.binary);
  auto s = make_selected_site(opts);
  if (!s) return 1;
  ctx.target_site = s->name;
  const auto binary = read_host_file(opts.binary);
  if (!binary) {
    std::fprintf(stderr, "feam: cannot read %s\n", opts.binary.c_str());
    return 1;
  }
  const std::string vfs_path =
      "/home/user/migrated/" + site::Vfs::basename(opts.binary);
  s->vfs.write_file(vfs_path, *binary);

  SourcePhaseOutput travelled;
  bool bundle_failed = false;
  const SourcePhaseOutput* source =
      load_travelled_bundle(opts, travelled, bundle_failed,
                            &ctx.bundle_bytes);
  if (bundle_failed) return 1;
  ctx.mode = source != nullptr ? "extended" : "basic";
  if (source != nullptr) {
    ctx.source_site = travelled.bundle.source_environment.site_name;
  }

  const auto result = run_target_phase(*s, vfs_path, source);
  if (!result.ok()) {
    std::fprintf(stderr, "feam: target phase failed: %s\n",
                 result.error().c_str());
    return 1;
  }
  ctx.prediction = result.value().prediction;
  const Prediction& p = result.value().prediction;
  std::printf("prediction (%s): %s\n",
              source != nullptr ? "extended" : "basic",
              p.ready ? "READY" : "NOT READY");
  for (const auto& det : p.determinants) {
    std::printf("  %-28s %-12s %s\n", determinant_name(det.kind),
                !det.evaluated ? "(skipped)"
                : det.compatible ? "compatible"
                                 : "INCOMPATIBLE",
                det.detail.c_str());
  }
  if (!p.missing_libraries.empty()) {
    std::printf("missing:  %s\n",
                support::join(p.missing_libraries, ", ").c_str());
  }
  if (!p.resolved_libraries.empty()) {
    std::printf("resolved: %s\n",
                support::join(p.resolved_libraries, ", ").c_str());
  }
  if (!opts.report.empty()) {
    if (!write_host_file(opts.report, render_target_report(result.value()))) {
      std::fprintf(stderr, "feam: cannot write %s\n", opts.report.c_str());
      return 1;
    }
    std::printf("full report written to %s\n", opts.report.c_str());
  }
  if (p.ready && !opts.script.empty()) {
    if (!write_host_file(opts.script, p.configuration_script)) {
      std::fprintf(stderr, "feam: cannot write %s\n", opts.script.c_str());
      return 1;
    }
    std::printf("configuration script written to %s\n", opts.script.c_str());
  } else if (p.ready) {
    std::printf("\n%s", p.configuration_script.c_str());
  }
  return p.ready ? 0 : 2;
}

int exec_command(const Options& opts, report::RunContext& ctx) {
  ctx.binary = site::Vfs::basename(opts.binary);
  auto s = make_selected_site(opts);
  if (!s) return 1;
  ctx.target_site = s->name;
  const auto binary = read_host_file(opts.binary);
  if (!binary) {
    std::fprintf(stderr, "feam: cannot read %s\n", opts.binary.c_str());
    return 1;
  }
  const std::string vfs_path =
      "/home/user/migrated/" + site::Vfs::basename(opts.binary);
  s->vfs.write_file(vfs_path, *binary);

  SourcePhaseOutput travelled;
  bool bundle_failed = false;
  const SourcePhaseOutput* source =
      load_travelled_bundle(opts, travelled, bundle_failed,
                            &ctx.bundle_bytes);
  if (bundle_failed) return 1;
  ctx.mode = source != nullptr ? "extended" : "basic";
  if (source != nullptr) {
    ctx.source_site = travelled.bundle.source_environment.site_name;
  }

  const auto result = run_target_phase(*s, vfs_path, source);
  if (!result.ok()) {
    std::fprintf(stderr, "feam: target phase failed: %s\n",
                 result.error().c_str());
    return 1;
  }
  ctx.prediction = result.value().prediction;
  if (!result.value().prediction.ready) {
    std::printf("prediction: NOT READY — refusing to execute\n");
    for (const auto& det : result.value().prediction.determinants) {
      if (det.evaluated && !det.compatible) {
        std::printf("  %s: %s\n", determinant_name(det.kind),
                    det.detail.c_str());
      }
    }
    return 2;
  }
  std::printf("prediction: READY — executing FEAM's configuration script\n");
  for (const auto& line : support::split(
           result.value().prediction.configuration_script, '\n')) {
    if (!line.empty()) std::printf("  | %s\n", line.c_str());
  }
  const auto run =
      toolchain::run_script(*s, result.value().prediction.configuration_script);
  for (const auto& error : run.errors) {
    std::fprintf(stderr, "feam: %s\n", error.c_str());
  }
  std::printf("execution: %s%s%s\n",
              toolchain::run_status_name(run.last_run.status),
              run.last_run.output.empty() ? "" : " — ",
              run.last_run.output.c_str());
  return run.ok() ? 0 : 1;
}

int survey(const Options& opts, report::RunContext& ctx) {
  ctx.binary = site::Vfs::basename(opts.binary);
  const auto binary = read_host_file(opts.binary);
  if (!binary) {
    std::fprintf(stderr, "feam: cannot read %s\n", opts.binary.c_str());
    return 1;
  }
  SourcePhaseOutput travelled;
  bool bundle_failed = false;
  const SourcePhaseOutput* source =
      load_travelled_bundle(opts, travelled, bundle_failed,
                            &ctx.bundle_bytes);
  if (bundle_failed) return 1;
  if (source != nullptr) {
    ctx.source_site = travelled.bundle.source_environment.site_name;
    ctx.mode = "extended";
  } else {
    ctx.mode = "basic";
  }

  std::vector<std::unique_ptr<site::Site>> owned;
  std::vector<site::Site*> sites;
  std::vector<std::string> names = toolchain::testbed_site_names();
  names.push_back("bluefire");
  for (const auto& name : names) {
    owned.push_back(toolchain::make_site(name));
    sites.push_back(owned.back().get());
  }
  SurveyOptions survey_opts;
  survey_opts.jobs = opts.jobs;
  const auto report = survey_sites(sites, site::Vfs::basename(opts.binary),
                                   *binary, source, {}, survey_opts);
  std::printf("%s", report.render().c_str());
  std::printf("%zu of %zu sites ready (%s prediction)\n", report.ready_count(),
              report.entries.size(), source != nullptr ? "extended" : "basic");
  return report.ready_count() > 0 ? 0 : 2;
}

// True when a .jsonl file is a run-record stream (one feam.run_record/1
// document per line) rather than an event log: the schema field on the
// first non-empty line decides.
bool looks_like_record_jsonl(const std::string& text) {
  const auto eol = text.find('\n');
  const std::string first =
      eol == std::string::npos ? text : text.substr(0, eol);
  if (first.empty()) return false;
  const auto doc = support::Json::parse(first);
  return doc && doc->get_string("schema") == report::kRunRecordSchema;
}

// `feam fleet`: generate a procedural fleet from a spec + seed, run the
// full readiness survey over it, and export the manifest / records /
// matrix artifacts. Everything printed and written is a pure function of
// (spec, seed, overrides) — reruns reproduce it byte for byte.
int fleet_command(const Options& opts, report::RunContext& ctx) {
  fleet::FleetSpec spec;
  if (!opts.fleet_spec.empty()) {
    const auto bytes = read_host_file(opts.fleet_spec);
    if (!bytes) {
      std::fprintf(stderr, "feam: cannot read %s\n", opts.fleet_spec.c_str());
      return 1;
    }
    auto parsed =
        fleet::parse_fleet_spec(std::string(bytes->begin(), bytes->end()));
    if (!parsed.ok()) {
      std::fprintf(stderr, "feam: %s: %s\n", opts.fleet_spec.c_str(),
                   parsed.error().c_str());
      return 1;
    }
    spec = std::move(parsed).take();
  }
  if (opts.fleet_sites > 0) spec.sites = opts.fleet_sites;
  if (opts.fleet_workloads > 0) spec.workloads = opts.fleet_workloads;
  if (opts.fleet_drift >= 0.0) spec.drift_rate = opts.fleet_drift;
  ctx.binary = spec.name;

  fleet::Fleet fleet = fleet::generate_fleet(spec, opts.fleet_seed);
  ctx.source_site = fleet.anchor().name;
  std::printf("fleet %s: %zu sites, %zu workloads (seed %llu)\n",
              spec.name.c_str(), fleet.sites.size(), fleet.workloads.size(),
              static_cast<unsigned long long>(opts.fleet_seed));

  if (!opts.manifest_out.empty()) {
    const auto manifest = fleet::fleet_manifest(fleet);
    if (!write_host_file(opts.manifest_out, manifest.dump(2) + "\n")) {
      std::fprintf(stderr, "feam: cannot write %s\n",
                   opts.manifest_out.c_str());
      return 1;
    }
    std::printf("fleet manifest written to %s\n", opts.manifest_out.c_str());
  }

  eval::FleetRunOptions run_opts;
  run_opts.jobs = opts.jobs;
  const eval::FleetRunResult result = eval::run_fleet(fleet, run_opts);

  const std::string matrix = result.readiness_matrix();
  std::printf("%s", matrix.c_str());
  std::printf(
      "fleet: %zu of %zu pairs ready, %zu compile failure%s, %zu drift op%s\n",
      result.ready_pairs, result.pairs(), result.compile_failures,
      result.compile_failures == 1 ? "" : "s", result.drift_log.size(),
      result.drift_log.size() == 1 ? "" : "s");
  std::printf("caches: EDC %.1f%% hit, BDC %.1f%% hit, resolver %.1f%% hit\n",
              result.caches.edc_hit_rate() * 100.0,
              result.caches.bdc_hit_rate() * 100.0,
              result.caches.resolver_hit_rate() * 100.0);

  if (!opts.records_out.empty()) {
    if (!write_host_file(opts.records_out, result.records_jsonl())) {
      std::fprintf(stderr, "feam: cannot write %s\n", opts.records_out.c_str());
      return 1;
    }
    std::printf("%zu run records written to %s\n", result.pairs(),
                opts.records_out.c_str());
  }
  if (!opts.matrix_out.empty()) {
    if (!write_host_file(opts.matrix_out, matrix)) {
      std::fprintf(stderr, "feam: cannot write %s\n", opts.matrix_out.c_str());
      return 1;
    }
    std::printf("readiness matrix written to %s\n", opts.matrix_out.c_str());
  }
  if (!opts.drift_log_out.empty()) {
    if (!write_host_file(opts.drift_log_out,
                         fleet::drift_log_jsonl(result.drift_log))) {
      std::fprintf(stderr, "feam: cannot write %s\n",
                   opts.drift_log_out.c_str());
      return 1;
    }
    std::printf("%zu drift ops written to %s\n", result.drift_log.size(),
                opts.drift_log_out.c_str());
  }
  return result.compile_failures == 0 ? 0 : 1;
}

// Loads a feam.run_record/1 stream: a JSONL file (one record per line), a
// single *.json record, or a directory of either (non-record files are
// skipped, the way `feam report` skips them).
bool load_record_stream(const std::string& path,
                        std::vector<report::RunRecord>& records) {
  namespace fs = std::filesystem;
  const auto ingest_text = [&](const std::string& label,
                               const std::string& text, bool strict) {
    if (looks_like_record_jsonl(text)) {
      std::size_t line_no = 0;
      for (const auto& line : support::split(text, '\n')) {
        ++line_no;
        if (line.empty()) continue;
        const auto doc = support::Json::parse(line);
        auto record = doc ? report::RunRecord::from_json(*doc) : std::nullopt;
        if (!record) {
          std::fprintf(stderr, "feam: %s:%zu: malformed run record\n",
                       label.c_str(), line_no);
          return false;
        }
        records.push_back(std::move(*record));
      }
      return true;
    }
    const auto parsed = support::Json::parse(text);
    auto record =
        parsed && parsed->get_string("schema") == report::kRunRecordSchema
            ? report::RunRecord::from_json(*parsed)
            : std::nullopt;
    if (record) {
      records.push_back(std::move(*record));
      return true;
    }
    if (strict) {
      std::fprintf(stderr, "feam: %s carries no %s documents\n",
                   label.c_str(),
                   std::string(report::kRunRecordSchema).c_str());
    }
    return !strict;
  };

  std::error_code ec;
  std::vector<std::string> files;
  if (fs::is_directory(path, ec)) {
    std::vector<fs::path> paths;
    for (const auto& entry : fs::directory_iterator(path, ec)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension().string();
      if (ext == ".json" || ext == ".jsonl") paths.push_back(entry.path());
    }
    std::sort(paths.begin(), paths.end());
    for (const auto& p : paths) files.push_back(p.string());
  } else {
    files.push_back(path);
  }
  for (const auto& file : files) {
    const auto bytes = read_host_file(file);
    if (!bytes) {
      std::fprintf(stderr, "feam: cannot read %s\n", file.c_str());
      return false;
    }
    // A named single file must carry records; directory members may be
    // other artifacts (event logs, metrics exports) and are skipped.
    if (!ingest_text(file, std::string(bytes->begin(), bytes->end()),
                     files.size() == 1 && file == path)) {
      return false;
    }
  }
  return true;
}

// `feam explain`: the causal chain behind one (binary, site) verdict.
int explain_command(const Options& opts) {
  std::vector<report::RunRecord> records;
  if (!load_record_stream(opts.report_in, records)) return 1;
  const report::RunRecord* match = nullptr;
  for (const auto& record : records) {
    if (record.binary == opts.binary && record.target_site == opts.site) {
      match = &record;
      break;
    }
  }
  if (match == nullptr) {
    std::fprintf(stderr,
                 "feam: no record for binary '%s' at site '%s' in %s "
                 "(%zu records searched)\n",
                 opts.binary.c_str(), opts.site.c_str(),
                 opts.report_in.c_str(), records.size());
    return 1;
  }
  const std::string text = report::render_explain(*match);
  if (!opts.output.empty()) {
    if (!write_host_file(opts.output, text)) {
      std::fprintf(stderr, "feam: cannot write %s\n", opts.output.c_str());
      return 1;
    }
    std::printf("explanation written to %s\n", opts.output.c_str());
  } else {
    std::printf("%s", text.c_str());
  }
  return 0;
}

// `feam diff`: join two record streams, attribute every verdict flip.
// Exits 2 when a drift log was supplied and any flip stayed unattributed —
// the CI shape of "every flip must be explainable by recorded drift".
int diff_command(const Options& opts) {
  std::vector<report::RunRecord> a, b;
  if (!load_record_stream(opts.diff_a, a)) return 1;
  if (!load_record_stream(opts.diff_b, b)) return 1;
  std::vector<report::DriftLogEntry> drift_log;
  if (!opts.drift_log_in.empty()) {
    const auto bytes = read_host_file(opts.drift_log_in);
    if (!bytes) {
      std::fprintf(stderr, "feam: cannot read %s\n",
                   opts.drift_log_in.c_str());
      return 1;
    }
    drift_log =
        report::parse_drift_log(std::string(bytes->begin(), bytes->end()));
  }
  const report::DiffResult result = report::diff_records(a, b, drift_log);
  const std::string text = result.render_text();
  std::printf("%s", text.c_str());
  if (!opts.output.empty()) {
    if (!write_host_file(opts.output, text)) {
      std::fprintf(stderr, "feam: cannot write %s\n", opts.output.c_str());
      return 1;
    }
  }
  if (!opts.json_out.empty()) {
    if (!write_host_file(opts.json_out, result.to_json().dump(2) + "\n")) {
      std::fprintf(stderr, "feam: cannot write %s\n", opts.json_out.c_str());
      return 1;
    }
    std::printf("diff record written to %s\n", opts.json_out.c_str());
  }
  if (!opts.drift_log_in.empty() && result.unattributed_flips() != 0) {
    std::fprintf(stderr, "feam: %zu verdict flip(s) not attributable to the "
                         "drift log\n",
                 result.unattributed_flips());
    return 2;
  }
  return 0;
}

// `feam report`: ingest a directory of run records and event logs, print
// the aggregate, and optionally write the HTML dashboard, apply the
// regression gate (exit 2 on regression), and record the bench output.
int report_command(const Options& opts) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(opts.report_in, ec)) {
    std::fprintf(stderr,
                 "feam: %s is not a readable records directory%s%s\n",
                 opts.report_in.c_str(), ec ? ": " : "",
                 ec ? ec.message().c_str() : "");
    return 1;
  }
  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(opts.report_in, ec)) {
    if (entry.is_regular_file()) paths.push_back(entry.path());
  }
  if (ec) {
    std::fprintf(stderr, "feam: cannot read directory %s: %s\n",
                 opts.report_in.c_str(), ec.message().c_str());
    return 1;
  }
  std::sort(paths.begin(), paths.end());

  std::vector<report::RunRecord> records;
  std::vector<std::string> event_logs;
  std::vector<report::Timeseries> streams;
  std::vector<report::DiffResult> diffs;
  std::size_t skipped = 0;
  for (const auto& path : paths) {
    const auto ext = path.extension().string();
    if (ext != ".json" && ext != ".jsonl") continue;
    const auto bytes = read_host_file(path.string());
    if (!bytes) {
      std::fprintf(stderr, "feam: cannot read %s\n", path.string().c_str());
      return 1;
    }
    std::string text(bytes->begin(), bytes->end());
    if (ext == ".jsonl") {
      // --timeseries-out, --events-out, and `feam fleet --records-out`
      // share the extension; the schema field on the first line tells
      // them apart.
      if (report::looks_like_timeseries(text)) {
        streams.push_back(report::parse_timeseries(text));
        for (const auto& issue : streams.back().consistency_issues()) {
          std::fprintf(stderr, "feam: %s: %s\n", path.string().c_str(),
                       issue.c_str());
        }
      } else if (looks_like_record_jsonl(text)) {
        // A fleet's 50k-pair record stream ships as one JSONL file, not
        // 50k *.json files; ingest it line by line.
        std::size_t line_no = 0;
        bool bad = false;
        for (const auto& line : support::split(text, '\n')) {
          ++line_no;
          if (line.empty()) continue;
          const auto doc = support::Json::parse(line);
          auto record = doc ? report::RunRecord::from_json(*doc)
                            : std::nullopt;
          if (!record) {
            std::fprintf(stderr, "feam: %s:%zu: malformed run record\n",
                         path.string().c_str(), line_no);
            bad = true;
            break;
          }
          records.push_back(std::move(*record));
        }
        if (bad) return 1;
      } else {
        event_logs.push_back(std::move(text));
      }
      continue;
    }
    const auto parsed = support::Json::parse(text);
    if (!parsed || parsed->get_string("schema") != report::kRunRecordSchema) {
      // feam.diff/1 artifacts (written by `feam diff --json-out`) feed the
      // verdict-churn panel; other JSON (metrics, traces) is skipped.
      if (parsed) {
        if (auto diff = report::DiffResult::from_json(*parsed)) {
          diffs.push_back(std::move(*diff));
          continue;
        }
      }
      ++skipped;  // other JSON (metrics exports, traces) lives here too
      continue;
    }
    auto record = report::RunRecord::from_json(*parsed);
    if (!record) {
      std::fprintf(stderr, "feam: %s: malformed run record\n",
                   path.string().c_str());
      return 1;
    }
    for (const auto& issue : record->validate()) {
      std::fprintf(stderr, "feam: %s: %s\n", path.string().c_str(),
                   issue.c_str());
    }
    records.push_back(std::move(*record));
  }
  if (records.empty() && streams.empty()) {
    std::fprintf(stderr,
                 "feam: no %s records under %s (%zu files seen, %zu "
                 "non-record JSON skipped); write records with "
                 "--run-record-out FILE.json, then point --in at that "
                 "directory\n",
                 std::string(report::kRunRecordSchema).c_str(),
                 opts.report_in.c_str(), paths.size(), skipped);
    return 1;
  }

  report::Aggregate aggregate =
      report::aggregate_records(std::move(records));
  for (const auto& text : event_logs) {
    report::ingest_event_jsonl(aggregate, text);
  }
  if (!aggregate.records.empty()) {
    std::printf("%s", report::render_report_text(aggregate).c_str());
  }
  if (!diffs.empty()) {
    std::printf("\n%s", report::render_churn_panel(diffs).c_str());
  }
  if (skipped > 0) {
    std::printf("(%zu non-record JSON files skipped)\n", skipped);
  }

  // Charts and the trend gate read one stream; with several in the
  // directory, the one with the most samples (the longest-observed run)
  // carries the most signal.
  const report::Timeseries* timeseries = nullptr;
  for (const auto& stream : streams) {
    if (timeseries == nullptr ||
        stream.samples.size() > timeseries->samples.size()) {
      timeseries = &stream;
    }
  }
  if (timeseries != nullptr) {
    std::printf("timeseries: %zu stream%s ingested; charting %s (%zu "
                "samples over %.1fs%s)\n",
                streams.size(), streams.size() == 1 ? "" : "s",
                timeseries->source.empty() ? "(unnamed run)"
                                           : timeseries->source.c_str(),
                timeseries->samples.size(),
                static_cast<double>(timeseries->duration_ns()) / 1e9,
                timeseries->saw_final ? "" : ", no final sample");
    // Memory roll-up: end-of-run gauge values (carry-forward), present
    // only when the writer was built with the gauge schema addition.
    const auto gauges = timeseries->final_gauge_values();
    const auto rss = gauges.find("process.rss_bytes");
    const auto rss_peak = gauges.find("process.rss_peak_bytes");
    if (rss != gauges.end() || rss_peak != gauges.end()) {
      std::printf("memory: RSS %s at end of run, %s peak\n",
                  support::human_size(rss != gauges.end() ? rss->second.value
                                                          : 0)
                      .c_str(),
                  support::human_size(rss_peak != gauges.end()
                                          ? rss_peak->second.value
                                          : 0)
                      .c_str());
    }
    constexpr std::string_view kCachePrefix = "cache.bytes{cache=";
    std::string cache_line;
    for (const auto& [name, value] : gauges) {
      if (name.rfind(kCachePrefix, 0) != 0 || name.back() != '}') continue;
      const std::string label = name.substr(
          kCachePrefix.size(), name.size() - kCachePrefix.size() - 1);
      if (!cache_line.empty()) cache_line += ", ";
      cache_line += label + " " + support::human_size(value.peak);
    }
    if (!cache_line.empty()) {
      std::printf("cache footprint (peak): %s\n", cache_line.c_str());
    }
  }

  if (!opts.html_out.empty()) {
    if (!write_host_file(
            opts.html_out,
            report::render_html_dashboard(aggregate, timeseries,
                                          diffs.empty() ? nullptr : &diffs))) {
      std::fprintf(stderr, "feam: cannot write %s\n", opts.html_out.c_str());
      return 1;
    }
    std::printf("dashboard written to %s\n", opts.html_out.c_str());
  }

  auto metrics = report::flatten_metrics(aggregate);
  const report::GateResult* gate_result = nullptr;
  report::GateResult gate_storage;
  if (!opts.baseline.empty()) {
    const auto baseline_bytes = read_host_file(opts.baseline);
    if (!baseline_bytes) {
      std::fprintf(stderr, "feam: cannot read %s\n", opts.baseline.c_str());
      return 1;
    }
    const auto baseline = support::Json::parse(
        std::string(baseline_bytes->begin(), baseline_bytes->end()));
    if (!baseline) {
      std::fprintf(stderr, "feam: %s is not valid JSON\n",
                   opts.baseline.c_str());
      return 1;
    }
    auto gated = report::run_gate(metrics, *baseline);
    if (!gated.ok()) {
      std::fprintf(stderr, "feam: %s\n", gated.error().c_str());
      return 1;
    }
    gate_storage = std::move(gated).take();
    gate_result = &gate_storage;
    std::printf("\n%s", gate_storage.render().c_str());
  }

  bool trend_pass = true;
  if (!opts.trend_baseline.empty()) {
    if (timeseries == nullptr) {
      std::fprintf(stderr,
                   "feam: --trend-baseline given but no feam.timeseries/1 "
                   "stream under %s; run the workload with --timeseries-out "
                   "FILE.jsonl into that directory\n",
                   opts.report_in.c_str());
      return 1;
    }
    const auto baseline_bytes = read_host_file(opts.trend_baseline);
    if (!baseline_bytes) {
      std::fprintf(stderr, "feam: cannot read %s\n",
                   opts.trend_baseline.c_str());
      return 1;
    }
    const auto baseline = support::Json::parse(
        std::string(baseline_bytes->begin(), baseline_bytes->end()));
    if (!baseline) {
      std::fprintf(stderr, "feam: %s is not valid JSON\n",
                   opts.trend_baseline.c_str());
      return 1;
    }
    auto trended = report::run_trend_gate(*timeseries, *baseline);
    if (!trended.ok()) {
      std::fprintf(stderr, "feam: %s\n", trended.error().c_str());
      return 1;
    }
    trend_pass = trended.value().pass;
    std::printf("\n%s", trended.value().render().c_str());
    for (const auto& [name, value] : report::trend_metrics(trended.value())) {
      metrics[name] = value;
    }
  }

  if (!opts.bench_out.empty()) {
    const auto bench =
        report::bench_record(metrics, gate_result, opts.pr_number);
    if (!write_host_file(opts.bench_out, bench.dump(2) + "\n")) {
      std::fprintf(stderr, "feam: cannot write %s\n", opts.bench_out.c_str());
      return 1;
    }
    std::printf("bench record written to %s\n", opts.bench_out.c_str());
  }

  if (opts.gate && gate_result != nullptr && !gate_result->pass) return 2;
  if (opts.gate && !trend_pass) return 2;
  return 0;
}

// `feam profile`: deterministic post-processing of one trace or run-record
// file into self/total time per span name, per-thread utilization, the
// critical path, and flamegraph output. Same input -> byte-identical output.
int profile_command(const Options& opts) {
  const auto bytes = read_host_file(opts.profile_in);
  if (!bytes) {
    std::fprintf(stderr, "feam: cannot read %s\n", opts.profile_in.c_str());
    return 1;
  }
  const auto parsed =
      support::Json::parse(std::string(bytes->begin(), bytes->end()));
  if (!parsed) {
    std::fprintf(stderr, "feam: %s is not valid JSON\n",
                 opts.profile_in.c_str());
    return 1;
  }

  std::vector<obs::ProfileSpan> spans;
  if (parsed->get_string("schema") == report::kRunRecordSchema) {
    const auto record = report::RunRecord::from_json(*parsed);
    if (!record) {
      std::fprintf(stderr, "feam: %s: malformed run record\n",
                   opts.profile_in.c_str());
      return 1;
    }
    spans = report::to_profile_spans(*record);
  } else if ((*parsed)["traceEvents"].is_array()) {
    // --trace-out Chrome trace: complete spans are ph="X" with microsecond
    // ts/dur doubles; span ids travel in args (see obs/export.cpp).
    for (const auto& event : (*parsed)["traceEvents"].as_array()) {
      if (!event.is_object() || event.get_string("ph") != "X") continue;
      if (!event["ts"].is_number() || !event["dur"].is_number()) continue;
      obs::ProfileSpan span;
      span.name = event.get_string("name");
      span.start_ns = static_cast<std::uint64_t>(
          std::llround(event["ts"].as_number() * 1000.0));
      span.end_ns = span.start_ns + static_cast<std::uint64_t>(
          std::llround(event["dur"].as_number() * 1000.0));
      span.tid = static_cast<int>(event.get_int("tid"));
      const auto& args = event["args"];
      span.id = static_cast<std::uint64_t>(args.get_int("span_id"));
      span.parent_id = static_cast<std::uint64_t>(args.get_int("parent_id"));
      // Additive fields written only by --track-alloc runs; get_int
      // returns 0 when absent.
      span.alloc_bytes = static_cast<std::uint64_t>(args.get_int("alloc_bytes"));
      span.alloc_count = static_cast<std::uint64_t>(args.get_int("alloc_count"));
      if (span.name.empty() || span.id == 0) continue;
      spans.push_back(std::move(span));
    }
  } else {
    std::fprintf(stderr,
                 "feam: %s is neither a %s file nor a Chrome trace "
                 "(expected --run-record-out or --trace-out output)\n",
                 opts.profile_in.c_str(),
                 std::string(report::kRunRecordSchema).c_str());
    return 1;
  }
  if (spans.empty()) {
    std::fprintf(stderr, "feam: %s contains no spans to profile\n",
                 opts.profile_in.c_str());
    return 1;
  }

  const obs::Profile profile = obs::build_profile(std::move(spans));
  std::printf("%s", profile.render_table().c_str());

  const obs::FlameWeight weight = opts.profile_memory
                                      ? obs::FlameWeight::kAllocBytes
                                      : obs::FlameWeight::kTime;
  if (opts.profile_memory) {
    std::uint64_t total_alloc = 0;
    for (const auto& stat : profile.by_name) total_alloc += stat.alloc_bytes;
    if (total_alloc == 0) {
      std::fprintf(stderr,
                   "feam: --memory: %s carries no allocation data; record "
                   "the run with --track-alloc\n",
                   opts.profile_in.c_str());
    }
  }
  if (!opts.folded_out.empty()) {
    if (!write_host_file(opts.folded_out, profile.folded_stacks(weight))) {
      std::fprintf(stderr, "feam: cannot write %s\n", opts.folded_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "feam: folded stacks written to %s\n",
                 opts.folded_out.c_str());
  }
  if (!opts.svg_out.empty()) {
    const std::string title =
        (opts.profile_memory ? "feam profile (alloc bytes) — "
                             : "feam profile — ") +
        std::filesystem::path(opts.profile_in).filename().string();
    if (!write_host_file(
            opts.svg_out,
            obs::render_flamegraph_svg(profile.flame, title, weight))) {
      std::fprintf(stderr, "feam: cannot write %s\n", opts.svg_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "feam: flamegraph written to %s\n",
                 opts.svg_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace feam::cli

int main(int argc, char** argv) {
  using namespace feam::cli;
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string error;
  const auto opts = parse_options(args, error);
  if (!opts) {
    std::fprintf(stderr, "feam: %s\n%s", error.c_str(), usage().c_str());
    return 64;  // EX_USAGE
  }
  ObsSession obs_session(*opts);
  feam::report::RunContext& ctx = obs_session.context();
  int rc = 0;
  try {
    switch (opts->command) {
      case Command::kHelp:
        ctx.command = "help";
        std::printf("%s", usage().c_str());
        break;
      case Command::kListSites:
        ctx.command = "list-sites";
        rc = list_sites();
        break;
      case Command::kCompile:
        ctx.command = "compile";
        rc = compile(*opts, ctx);
        break;
      case Command::kSource:
        ctx.command = "source";
        rc = source_phase(*opts, ctx);
        break;
      case Command::kTarget:
        ctx.command = "target";
        rc = target_phase(*opts, ctx);
        break;
      case Command::kSurvey:
        ctx.command = "survey";
        rc = survey(*opts, ctx);
        break;
      case Command::kExec:
        ctx.command = "exec";
        rc = exec_command(*opts, ctx);
        break;
      case Command::kFleet:
        ctx.command = "fleet";
        rc = fleet_command(*opts, ctx);
        break;
      case Command::kReport:
        ctx.command = "report";
        rc = report_command(*opts);
        break;
      case Command::kExplain:
        ctx.command = "explain";
        rc = explain_command(*opts);
        break;
      case Command::kDiff:
        ctx.command = "diff";
        rc = diff_command(*opts);
        break;
      case Command::kProfile:
        ctx.command = "profile";
        rc = profile_command(*opts);
        break;
      case Command::kTop:
        ctx.command = "top";
        rc = top_command(*opts);
        break;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "feam: %s\n", e.what());
    rc = 1;
  }
  return obs_session.finish(rc);
}
