// Memory observability: a low-overhead tracking allocator plus process
// footprint probes, the byte-side mirror of the time stack.
//
// The tracking allocator interposes the global `operator new`/`delete`
// (compiled in behind the FEAM_TRACK_ALLOC CMake option, default ON; armed
// at runtime via set_alloc_tracking) and attributes every allocation to
// the *innermost active span* on the allocating thread, through a
// constant-initialized thread-local frame stack that obs::Span pushes and
// pops. The attribution rule mirrors self-time: a span's tally is the
// bytes allocated while it was innermost — children's allocations land in
// the child's frame, so per-span tallies are already "self-allocated
// bytes" and sum cleanly up the flame tree. Allocations outside any span
// (static init, CLI plumbing) are deliberately uncounted, so
// `sum over phases == unlabeled mem.alloc_bytes` stays an exact invariant
// of the stream. Tallies count *requested* bytes (not usable size — a
// malloc_usable_size probe per allocation would alone blow the overhead
// budget), and frees are not tracked: mem.alloc_bytes is gross
// allocation pressure (what an arena pass would eliminate); *footprint*
// is what the gauges are for.
//
// Cost discipline: with the runtime switch off, an allocation pays one
// relaxed atomic load. On, it pays that plus a thread-local bump —
// no locks, no libc probes, no registry access; tallies reach
// the registry only once per span pop (obs/trace.cpp). The frame stack is
// trivially constructible (lives in .tbss), so `operator new` is safe to
// call at any point of thread or process lifetime, including before main.
#pragma once

#include <cstdint>

namespace feam::obs {

class Registry;

// Whether the interposed operator new/delete were compiled in
// (-DFEAM_TRACK_ALLOC=ON). When false, the runtime switch is inert and
// every scope tally reads 0.
bool alloc_tracking_compiled();

// The runtime arm switch; off by default so untraced runs pay one relaxed
// load per allocation and nothing else.
bool alloc_tracking_enabled();
void set_alloc_tracking(bool enabled);

// Bytes/count allocated while a scope was innermost.
struct MemScopeTotals {
  std::uint64_t bytes = 0;
  std::uint64_t count = 0;
};

// Opens a tracking frame on the calling thread and returns its token, or
// -1 when the fixed-depth stack (64 frames) is full — allocations then
// fall back to the nearest tracked ancestor, and pop(-1) returns zeros.
// Frames must be popped on the pushing thread in LIFO order, which the
// Span RAII discipline guarantees.
int mem_scope_push();
MemScopeTotals mem_scope_pop(int token);

// Process resident-set probes, parsed from /proc/self/status (VmRSS /
// VmHWM); 0 where the file or field is unavailable (non-Linux).
std::uint64_t read_rss_bytes();
std::uint64_t read_rss_peak_bytes();

// Refreshes `process.rss_bytes` / `process.rss_peak_bytes` gauges in
// `registry` from /proc. The TimeseriesSampler calls this every tick so
// RSS rides the stream like any other gauge.
void sample_process_rss(Registry& registry);

}  // namespace feam::obs
