// Evidence provenance: the "why" behind every readiness verdict.
//
// The span/metrics stack observes time and memory; this module observes
// decisions. Each determinant (BDC, EDC, TEC) and the resolver records the
// exact evidence it consulted — file contents, probe outputs, module
// states, search-directory walks, ldd transcripts — into the evaluation's
// EvidenceSet, which travels on the Prediction and serializes as the
// additive `provenance` section of `feam.run_record/1`.
//
// Determinism contract: every stamp is a content-derived FNV-1a hash of
// what was observed (bytes, probe output, directory lists), never a raw
// Vfs file-version or system-generation counter — those are process-global
// atomics whose values depend on scheduling, and provenance must be
// byte-identical across job counts and across cached/uncached runs.
//
// Cache-replay contract: memo entries either carry the evidence captured
// at fill time and replay it verbatim on a hit (EdcMemo), or re-derive the
// identical items from the data a hit already has in hand (BdcCache's
// stored description stamp, the resolver's search key + memoized result).
// EvidenceSet normalizes order (full lexicographic sort) and deduplicates
// exact repeats, so replayed and freshly recorded evidence collapse to the
// same serialized bytes regardless of arrival order.
//
// Cardinality bounds: at most kMaxItems evidence items serialize per
// verdict (sorted order wins; the overflow is counted in `dropped`), each
// detail string is truncated to kMaxDetail bytes, and an evaluation
// retains at most kHardCap distinct items in memory.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "support/json.hpp"

namespace feam::obs {

inline constexpr std::string_view kProvenanceSchema = "feam.provenance/1";

// One observation consulted while producing a verdict.
//   stage:   which component looked ("bdc", "edc", "resolver", "tec",
//            "tec.<determinant key>").
//   kind:    what was looked at ("binary", "file", "probe", "stack",
//            "env", "search", "ldd", "verdict", "bundle").
//   site:    site name the observation was made at.
//   subject: the path / probe name / stack id / soname examined.
//   detail:  bounded human-readable summary of what was seen.
//   stamp:   content-derived FNV-1a hash of the observed value.
struct Evidence {
  std::string stage;
  std::string kind;
  std::string site;
  std::string subject;
  std::string detail;
  std::uint64_t stamp = 0;

  friend bool operator<(const Evidence& a, const Evidence& b) {
    if (a.stage != b.stage) return a.stage < b.stage;
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.site != b.site) return a.site < b.site;
    if (a.subject != b.subject) return a.subject < b.subject;
    if (a.detail != b.detail) return a.detail < b.detail;
    return a.stamp < b.stamp;
  }
  friend bool operator==(const Evidence& a, const Evidence& b) {
    return a.stage == b.stage && a.kind == b.kind && a.site == b.site &&
           a.subject == b.subject && a.detail == b.detail &&
           a.stamp == b.stamp;
  }

  // "0123456789abcdef" — stamps serialize as fixed-width hex strings
  // because JSON numbers are doubles and cannot carry 64 bits.
  std::string stamp_hex() const;
};

// A bounded, deduplicated, order-normalized set of Evidence. Insertion
// order never matters: items() is always the lexicographically first
// kMaxItems distinct items, so concurrent recording orders, cache replay,
// and fresh evaluation all serialize identically.
class EvidenceSet {
 public:
  // Serialized cardinality bound per verdict.
  static constexpr std::size_t kMaxItems = 128;
  // Detail strings are truncated to this many bytes on add().
  static constexpr std::size_t kMaxDetail = 160;
  // In-memory safety valve: distinct items beyond this are counted but
  // not retained (unreachable in practice — see ARCHITECTURE.md).
  static constexpr std::size_t kHardCap = 4096;

  void add(Evidence e);
  void merge(const EvidenceSet& other);
  void clear();

  bool empty() const { return items_.empty(); }
  // Distinct items retained (before the kMaxItems serialization cut).
  std::size_t distinct() const { return items_.size(); }
  // Items beyond the serialization bound (plus any past the hard cap).
  std::uint64_t dropped() const;

  // Sorted, capped view — exactly what serializes.
  std::vector<Evidence> items() const;

  support::Json to_json() const;
  static std::optional<EvidenceSet> from_json(const support::Json& j);

  // Internal-consistency issues of a deserialized set (empty when OK).
  std::vector<std::string> validate() const;

  friend bool operator==(const EvidenceSet& a, const EvidenceSet& b) {
    return a.items_ == b.items_ && a.overflow_ == b.overflow_;
  }

 private:
  std::set<Evidence> items_;
  std::uint64_t overflow_ = 0;  // adds refused by the hard cap
};

// ------------------------------------------------------------ recording

// Recording is ambient per thread so components record without signature
// churn (the obs::Span idiom): a ProvenanceScope routes record_evidence()
// calls on this thread into its EvidenceSet; an EvidenceCapture frame
// additionally tees a copy for a cache to store, while still forwarding
// to the enclosing scope. With no scope active, recording is a no-op —
// call provenance_active() before building evidence strings on hot paths.

bool provenance_active();
void record_evidence(Evidence e);
void replay_evidence(const std::vector<Evidence>& items);

class ProvenanceScope {
 public:
  explicit ProvenanceScope(EvidenceSet& target);
  ~ProvenanceScope();
  ProvenanceScope(const ProvenanceScope&) = delete;
  ProvenanceScope& operator=(const ProvenanceScope&) = delete;

 private:
  void* frame_;
};

class EvidenceCapture {
 public:
  EvidenceCapture();
  ~EvidenceCapture();
  EvidenceCapture(const EvidenceCapture&) = delete;
  EvidenceCapture& operator=(const EvidenceCapture&) = delete;

  // The evidence recorded on this thread while the frame was active.
  std::vector<Evidence> take();

 private:
  std::vector<Evidence> captured_;
  void* frame_;
};

// Payload bytes a captured evidence vector retains (for cache footprint
// gauges).
std::uint64_t evidence_bytes(const std::vector<Evidence>& items);

}  // namespace feam::obs
