// Process-wide metrics: named counters and latency histograms.
//
// Counters and histograms are lock-free (relaxed atomics) so they can sit
// on hot paths — ELF parsing, library resolution — without perturbing the
// numbers they measure. The registry itself takes a mutex only on
// first-lookup of a name; hot code should hold the returned reference
// (references are stable for the life of the registry).
//
// Histograms use power-of-two buckets: record() costs three atomic adds,
// memory is fixed (64 buckets), and percentiles interpolate linearly
// within the enclosing bucket, clamped to the observed min/max so
// single-valued histograms report exactly.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "obs/clock.hpp"
#include "support/json.hpp"

namespace feam::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// The fixed label set of the dimensional metrics layer. Four keys only —
// `site`, `cache`, `determinant`, `phase` — each with a bounded value
// domain (the fleet's site names; the cache families
// bdc/edc/resolver.*/source; the four determinant kinds; the recorded
// span-name set), so total series cardinality stays O(sites × caches) and
// the registry, sampler, and timeseries stream can enumerate every series
// cheaply. There is deliberately no free-form key/value API: unbounded
// labels would turn the registry into a leak.
//
// A labeled metric is a *separate series* from the unlabeled one: callers
// that re-key a hot counter per site keep recording the unlabeled total as
// well, so legacy consumers (gate baselines, run records) see unchanged
// numbers and `sum over labels == unlabeled total` becomes a checkable
// invariant of the stream.
struct Labels {
  std::string_view site{};
  std::string_view cache{};
  std::string_view determinant{};
  std::string_view phase{};

  bool empty() const {
    return site.empty() && cache.empty() && determinant.empty() &&
           phase.empty();
  }
};

// Canonical encoded series name:
// `name{cache=c,determinant=d,phase=p,site=s}` with keys in fixed
// (alphabetical) order and empty labels omitted; a label-less call returns
// `name` unchanged. This string is the registry key, the
// timeseries/metrics-JSON field name, and what parse_series inverts.
std::string series_name(std::string_view name, const Labels& labels);

// A series name split back into its base name and label values. Strings
// without a `{...}` suffix parse as the bare name with empty labels.
struct SeriesKey {
  std::string name;
  std::string site;
  std::string cache;
  std::string determinant;
  std::string phase;
};
SeriesKey parse_series(std::string_view series);

// A level, not a tally: gauges carry *current* and *peak* values (cache
// footprints, resident-set size) — state that goes down as well as up,
// which counters cannot express and histograms would mis-summarize.
// set()/add()/sub() are lock-free; peak() is the high-water mark of every
// value the gauge ever held (monotone until reset()).
class Gauge {
 public:
  void set(std::uint64_t value);
  // Saturating adjustments (sub clamps at 0 rather than wrapping, so a
  // mis-paired release can never turn a footprint into ~2^64).
  void add(std::uint64_t delta);
  void sub(std::uint64_t delta);

  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  std::uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  void reset();

 private:
  void raise_peak(std::uint64_t value);

  std::atomic<std::uint64_t> value_{0};
  std::atomic<std::uint64_t> peak_{0};
};

// Plain-value copy of a gauge, the unit the sampler/reader layers move.
struct GaugeValue {
  std::uint64_t value = 0;
  std::uint64_t peak = 0;
};

// A plain-value copy of a histogram's state. Snapshots are the mergeable
// unit of the aggregation layer: serialize the buckets, merge snapshots
// from N processes, and percentiles on the merged result keep the same
// per-bucket fidelity a single process would have had.
struct HistogramSnapshot {
  static constexpr int kBuckets = 64;

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min_raw = UINT64_MAX;  // UINT64_MAX when empty
  std::uint64_t max = 0;
  std::array<std::uint64_t, kBuckets> buckets{};

  bool empty() const { return count == 0; }
  std::uint64_t min() const { return count == 0 ? 0 : min_raw; }
  double mean() const;

  // Value at or below which fraction `p` (0..1] of samples fall: linearly
  // interpolated within the enclosing power-of-two bucket, clamped to
  // [min, max].
  std::uint64_t percentile(double p) const;

  // Accumulates `other` into this snapshot.
  void merge(const HistogramSnapshot& other);

  // {"count":..,"sum":..,"min":..,"max":..,"mean":..,"p50":..,"p90":..,
  //  "p99":..,"buckets":[..]} — buckets trimmed of trailing zeros so the
  // summary stays mergeable without bloating records.
  support::Json to_json() const;

  // Accepts to_json() output; summaries without "buckets" (the pre-
  // aggregation format) load with all samples in one synthetic bucket.
  static std::optional<HistogramSnapshot> from_json(const support::Json& j);

  // The window of samples recorded between `earlier` (a previous snapshot
  // of the same histogram) and this one. Counts, sums, and buckets diff
  // exactly; `count` is defined as the diffed buckets' total, so a delta
  // serialized while writers are mid-record is still internally
  // consistent (to_json/from_json round-trips). The window's min/max are
  // the tightest provable bounds: the first/last non-empty diffed
  // bucket's range, clamped to the cumulative min/max.
  HistogramSnapshot delta_since(const HistogramSnapshot& earlier) const;
};

class Histogram {
 public:
  static constexpr int kBuckets = HistogramSnapshot::kBuckets;

  void record(std::uint64_t value);

  std::uint64_t count() const;
  std::uint64_t sum() const;
  std::uint64_t min() const;  // 0 when empty
  std::uint64_t max() const;
  double mean() const;  // 0 when empty

  // Value at or below which fraction `p` (0..1] of samples fall; linearly
  // interpolated within the enclosing power-of-two bucket, clamped to
  // [min, max].
  std::uint64_t percentile(double p) const;

  // Consistent plain-value copy for serialization and merging.
  HistogramSnapshot snapshot() const;

  void reset();

  // HistogramSnapshot::to_json of a snapshot taken now.
  support::Json to_json() const;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

// Named metric registry. Lookup registers on first use; references stay
// valid for the registry's lifetime.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);
  Gauge& gauge(std::string_view name);

  // Labeled lookups: the series registered (and exported) under
  // series_name(name, labels). The zero-label case is byte-identical to
  // the unlabeled overloads, so `counter(n, {})` and `counter(n)` are the
  // same series. Returned references are stable; hot paths should resolve
  // once and hold them.
  Counter& counter(std::string_view name, const Labels& labels);
  Histogram& histogram(std::string_view name, const Labels& labels);
  Gauge& gauge(std::string_view name, const Labels& labels);

  std::size_t size() const;  // distinct registered names

  // Plain-value copies of the current state, for serialization/merging.
  std::map<std::string, std::uint64_t> counter_values() const;
  std::map<std::string, HistogramSnapshot> histogram_snapshots() const;
  std::map<std::string, GaugeValue> gauge_values() const;

  // Zeroes every value; registered names survive.
  void reset_values();

  // {"counters": {name: value, ...}, "histograms": {name: {...}, ...},
  //  "gauges": {name: {"value":..,"peak":..}, ...}} — the gauges object is
  // omitted while no gauge is registered, so pre-gauge consumers keep
  // parsing byte-identical documents.
  support::Json to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
};

// The process-wide registry and shorthands into it.
Registry& metrics();
Counter& counter(std::string_view name);
Histogram& histogram(std::string_view name);
Gauge& gauge(std::string_view name);
Counter& counter(std::string_view name, const Labels& labels);
Histogram& histogram(std::string_view name, const Labels& labels);
Gauge& gauge(std::string_view name, const Labels& labels);

// A pre-resolved labeled counter: building the canonical
// `name{k=v,...}` key and taking the registry mutex happen once, in the
// constructor, so per-hit cost on a memo fast path is a single relaxed
// atomic. Handles bind to the process-wide registry (whose references are
// stable for the process lifetime) and are cheap to copy.
class SeriesHandle {
 public:
  SeriesHandle(std::string_view name, const Labels& labels);
  // Logically const: the handle is an immutable binding to a registry
  // counter, so cache entries published behind const pointers can bump it.
  void add(std::uint64_t delta = 1) const { counter_->add(delta); }
  std::uint64_t value() const { return counter_->value(); }

 private:
  Counter* counter_;
};

// SeriesHandles for one `name{cache=...,site=<varies>}` family, cached per
// site so hot memo paths that label by site pay the key encoding once per
// distinct site and one relaxed atomic per hit afterwards. NOT internally
// synchronized — embed it under the owning cache's existing mutex.
class SiteSeriesCache {
 public:
  SiteSeriesCache(std::string name, std::string cache_label)
      : name_(std::move(name)), cache_label_(std::move(cache_label)) {}

  SeriesHandle& at(std::string_view site);

 private:
  std::string name_;
  std::string cache_label_;
  std::map<std::string, SeriesHandle, std::less<>> handles_;
};

// Ready-made support::ThreadPool::TaskObserver: records each task's
// submit→start queue wait into "pool.queue_wait_ns" and its run time into
// "pool.task_run_ns". Injected by pool owners because support (where the
// pool lives) cannot link obs.
std::function<void(std::uint64_t queue_wait_ns, std::uint64_t run_ns)>
pool_task_recorder();

// RAII: records obs::now_ns() elapsed between construction and destruction
// into a histogram. The standard way to time a scope on the span clock.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram)
      : histogram_(histogram), start_ns_(now_ns()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { histogram_.record(now_ns() - start_ns_); }

 private:
  Histogram& histogram_;
  std::uint64_t start_ns_;
};

}  // namespace feam::obs
