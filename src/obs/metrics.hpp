// Process-wide metrics: named counters and latency histograms.
//
// Counters and histograms are lock-free (relaxed atomics) so they can sit
// on hot paths — ELF parsing, library resolution — without perturbing the
// numbers they measure. The registry itself takes a mutex only on
// first-lookup of a name; hot code should hold the returned reference
// (references are stable for the life of the registry).
//
// Histograms use power-of-two buckets: record() costs three atomic adds,
// memory is fixed (64 buckets), and percentiles are exact to within the
// bucket (a factor of two), clamped to the observed min/max so
// single-valued histograms report exactly.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/clock.hpp"
#include "support/json.hpp"

namespace feam::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::uint64_t value);

  std::uint64_t count() const;
  std::uint64_t sum() const;
  std::uint64_t min() const;  // 0 when empty
  std::uint64_t max() const;
  double mean() const;  // 0 when empty

  // Value at or below which fraction `p` (0..1] of samples fall; exact to
  // within the enclosing power-of-two bucket, clamped to [min, max].
  std::uint64_t percentile(double p) const;

  void reset();

  // {"count":..,"sum":..,"min":..,"max":..,"mean":..,"p50":..,"p90":..,
  //  "p99":..}
  support::Json to_json() const;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

// Named metric registry. Lookup registers on first use; references stay
// valid for the registry's lifetime.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  std::size_t size() const;  // distinct registered names

  // Zeroes every value; registered names survive.
  void reset_values();

  // {"counters": {name: value, ...}, "histograms": {name: {...}, ...}}
  support::Json to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// The process-wide registry and shorthands into it.
Registry& metrics();
Counter& counter(std::string_view name);
Histogram& histogram(std::string_view name);

// RAII: records obs::now_ns() elapsed between construction and destruction
// into a histogram. The standard way to time a scope on the span clock.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram)
      : histogram_(histogram), start_ns_(now_ns()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { histogram_.record(now_ns() - start_ns_); }

 private:
  Histogram& histogram_;
  std::uint64_t start_ns_;
};

}  // namespace feam::obs
