#include "obs/memory.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "obs/metrics.hpp"

namespace feam::obs {

namespace {

std::atomic<bool> g_tracking{false};

// Per-thread attribution frames. Everything here is trivially
// constructible/destructible (plain .tbss storage): `operator new` may run
// before any thread-local constructor and after thread-local destructors,
// so the tracking state must never itself allocate or need init order.
constexpr int kMaxDepth = 64;

struct MemFrame {
  std::uint64_t bytes;
  std::uint64_t count;
};

thread_local MemFrame t_frames[kMaxDepth];
thread_local int t_depth = 0;

inline void note_alloc(std::uint64_t bytes) {
  if (t_depth > 0) {
    MemFrame& frame = t_frames[t_depth - 1];
    frame.bytes += bytes;
    frame.count += 1;
  }
}

}  // namespace

bool alloc_tracking_compiled() {
#if defined(FEAM_TRACK_ALLOC)
  return true;
#else
  return false;
#endif
}

bool alloc_tracking_enabled() {
  return g_tracking.load(std::memory_order_relaxed);
}

void set_alloc_tracking(bool enabled) {
  g_tracking.store(enabled, std::memory_order_relaxed);
}

int mem_scope_push() {
  if (t_depth >= kMaxDepth) return -1;
  t_frames[t_depth] = MemFrame{0, 0};
  return t_depth++;
}

MemScopeTotals mem_scope_pop(int token) {
  MemScopeTotals totals;
  if (token < 0) return totals;
  // Tolerate a mismatched pop (defensive, mirrors Span::finish's stack
  // repair): unwind to the token's frame, folding any orphaned inner
  // tallies into it so no allocated byte is dropped.
  while (t_depth > token + 1) {
    --t_depth;
    t_frames[token].bytes += t_frames[t_depth].bytes;
    t_frames[token].count += t_frames[t_depth].count;
  }
  if (t_depth == token + 1) {
    --t_depth;
    totals.bytes = t_frames[token].bytes;
    totals.count = t_frames[token].count;
  }
  return totals;
}

namespace {

// One field of /proc/self/status, "VmRSS:" style, in bytes. Raw
// stdio-free parsing is unnecessary here (callers are sampler ticks, not
// allocation paths), but keep it allocation-light anyway.
std::uint64_t read_status_kb(const char* field) {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  const std::size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof line, file) != nullptr) {
    if (std::strncmp(line, field, field_len) != 0) continue;
    kb = std::strtoull(line + field_len, nullptr, 10);
    break;
  }
  std::fclose(file);
  return kb * 1024;
}

}  // namespace

std::uint64_t read_rss_bytes() { return read_status_kb("VmRSS:"); }

std::uint64_t read_rss_peak_bytes() { return read_status_kb("VmHWM:"); }

void sample_process_rss(Registry& registry) {
  const std::uint64_t rss = read_rss_bytes();
  if (rss == 0) return;  // no /proc: leave the gauges unregistered
  registry.gauge("process.rss_bytes").set(rss);
  const std::uint64_t peak = read_rss_peak_bytes();
  if (peak != 0) registry.gauge("process.rss_peak_bytes").set(peak);
}

}  // namespace feam::obs

#if defined(FEAM_TRACK_ALLOC)

namespace {

// Attribution uses the requested size, not malloc_usable_size: the probe
// is a libc call per allocation, and at ~10M allocations per matrix run
// it alone blows the <2% tracking-overhead budget. Requested bytes are
// also deterministic across allocators, which the tests rely on.
inline void track(void* p, std::size_t requested) {
  if (p == nullptr) return;
  if (!feam::obs::alloc_tracking_enabled()) return;
  feam::obs::note_alloc(static_cast<std::uint64_t>(requested));
}

void* checked_alloc(std::size_t size) {
  if (size == 0) size = 1;
  for (;;) {
    void* p = std::malloc(size);
    if (p != nullptr) {
      track(p, size);
      return p;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* checked_aligned_alloc(std::size_t size, std::size_t alignment) {
  if (size == 0) size = 1;
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  for (;;) {
    void* p = nullptr;
    if (posix_memalign(&p, alignment, size) == 0 && p != nullptr) {
      track(p, size);
      return p;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

}  // namespace

void* operator new(std::size_t size) { return checked_alloc(size); }
void* operator new[](std::size_t size) { return checked_alloc(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  void* p = std::malloc(size == 0 ? 1 : size);
  track(p, size);
  return p;
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  void* p = std::malloc(size == 0 ? 1 : size);
  track(p, size);
  return p;
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  return checked_aligned_alloc(size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return checked_aligned_alloc(size, static_cast<std::size_t>(alignment));
}
void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  void* p = nullptr;
  if (posix_memalign(&p, std::max(static_cast<std::size_t>(alignment),
                                  sizeof(void*)),
                     size == 0 ? 1 : size) != 0) {
    return nullptr;
  }
  track(p, size);
  return p;
}
void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t& tag) noexcept {
  return operator new(size, alignment, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&)
    noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&)
    noexcept {
  std::free(p);
}

#endif  // FEAM_TRACK_ALLOC
