// The one clock of the observability layer: monotonic nanoseconds since
// the first call in this process (std::chrono::steady_clock behind the
// scenes). Spans, events, metrics histograms, the Chrome trace exporter,
// and the phase-timing bench all read this clock, so a duration reported
// anywhere is comparable with a duration reported everywhere else.
//
// This is deliberately the only place the reproduction touches real time:
// timings are observational and never feed back into the simulation (see
// docs/ARCHITECTURE.md, "Determinism").
#pragma once

#include <cstdint>

namespace feam::obs {

// Monotonic nanoseconds since the first now_ns() call in this process.
std::uint64_t now_ns();

}  // namespace feam::obs
