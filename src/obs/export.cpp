#include "obs/export.hpp"

#include "support/json.hpp"

namespace feam::obs {

namespace {

using support::Json;

Json fields_to_json(const Fields& fields) {
  Json out{Json::Object{}};
  for (const auto& [key, value] : fields) out.set(key, value);
  return out;
}

Json event_to_json(const Event& event) {
  Json out;
  out.set("t_ns", event.t_ns);
  out.set("level", level_name(event.level));
  out.set("name", event.name);
  out.set("message", event.message);
  out.set("tid", event.tid);
  out.set("fields", fields_to_json(event.fields));
  return out;
}

double to_us(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

}  // namespace

std::string render_jsonl(const std::vector<Event>& events) {
  std::string out;
  for (const auto& event : events) {
    out += event_to_json(event).dump();
    out += "\n";
  }
  return out;
}

std::string render_chrome_trace(const std::vector<SpanRecord>& spans,
                                const std::vector<Event>& events) {
  Json::Array trace_events;
  for (const auto& span : spans) {
    Json entry;
    entry.set("name", span.name);
    entry.set("cat", "feam");
    entry.set("ph", "X");
    entry.set("ts", to_us(span.start_ns));
    entry.set("dur", to_us(span.duration_ns()));
    entry.set("pid", 1);
    entry.set("tid", span.tid);
    Json args = fields_to_json(span.fields);
    args.set("span_id", span.id);
    if (span.parent_id != 0) args.set("parent_id", span.parent_id);
    // Allocation attribution rides along only when tracking recorded it,
    // so traces from untracked runs stay byte-identical.
    if (span.alloc_count != 0) {
      args.set("alloc_bytes", span.alloc_bytes);
      args.set("alloc_count", span.alloc_count);
    }
    entry.set("args", std::move(args));
    trace_events.push_back(std::move(entry));
  }
  for (const auto& event : events) {
    Json entry;
    entry.set("name", event.name);
    entry.set("cat", std::string("feam.") + level_name(event.level));
    entry.set("ph", "i");
    entry.set("ts", to_us(event.t_ns));
    entry.set("pid", 1);
    entry.set("tid", event.tid);
    entry.set("s", "t");  // thread-scoped instant
    Json args = fields_to_json(event.fields);
    args.set("message", event.message);
    entry.set("args", std::move(args));
    trace_events.push_back(std::move(entry));
  }
  Json out;
  out.set("traceEvents", Json(std::move(trace_events)));
  out.set("displayTimeUnit", "ms");
  return out.dump(2);
}

std::string render_metrics_json(const Registry& registry) {
  return registry.to_json().dump(2);
}

}  // namespace feam::obs
