// Deterministic post-processing of a finished span tree into a profile:
// where did the time go, per span name, per thread, and along the critical
// path of a parallel run.
//
// No sampling and no new clock — the input is the SpanRecord tree the
// collector already holds (or a trace/run-record file re-read from disk),
// so the same trace always produces the byte-identical profile.
//
// Three attribution views are computed in one pass:
//
//   * self vs. total time per span name — self is a span's duration minus
//     the durations of its direct (same-thread) children, clamped at 0
//     when the clock quantum makes children sum past their parent. Per
//     thread, self times partition the thread's busy time exactly: the sum
//     of self times on a thread equals the sum of its root-span durations.
//   * per-thread utilization — busy (root-span durations) over the whole
//     trace's wall extent, the "were the workers actually working" view.
//   * the critical path — worker-root spans are first adopted by the
//     innermost span on another thread that time-contains them (the
//     parallel engine's tasks run under the matrix span of the submitting
//     thread), then the path descends from the trace root always into the
//     effective child that *finished last* — the span the barrier was
//     waiting on. The leaf names the work the run is bound by.
//
// The flame tree aggregates self time by stack-of-names over the same
// effective (adopted) tree; folded_stacks() emits the standard collapsed-
// stack text ("a;b;c <self_us>") and render_flamegraph_svg() a
// self-contained SVG. Widths are aggregate thread-time, not wall time —
// on a 4-worker run the children of the matrix root sum to ~4x the wall.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"
#include "support/json.hpp"

namespace feam::obs {

// One finished span, decoupled from the collector's record so profiles can
// be rebuilt from serialized traces and run records.
struct ProfileSpan {
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  // 0 when the span is a thread root
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  int tid = 0;
  // Self-allocated bytes/allocations (tracking allocator, obs/memory.hpp);
  // 0 on traces recorded without tracking.
  std::uint64_t alloc_bytes = 0;
  std::uint64_t alloc_count = 0;
  std::uint64_t duration_ns() const { return end_ns - start_ns; }
};

// Aggregated timing for one span name.
struct ProfileNameStat {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;  // sum of durations
  std::uint64_t self_ns = 0;   // sum of durations minus direct children
  std::uint64_t min_ns = 0;    // min/max single-span duration
  std::uint64_t max_ns = 0;
  std::uint64_t alloc_bytes = 0;  // sum of self-allocated bytes
};

struct ProfileThread {
  int tid = 0;
  std::uint64_t spans = 0;
  // Sum of root-span durations on this thread — the time the thread was
  // inside any instrumented region.
  std::uint64_t busy_ns = 0;
  // Sum of self times on this thread; equals busy_ns by construction
  // (children partition their parents), kept separate so consumers can
  // assert the invariant on deserialized data.
  std::uint64_t self_ns = 0;
  // Last end minus first start on this thread.
  std::uint64_t extent_ns = 0;
};

struct CriticalPathStep {
  std::string name;
  int tid = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::uint64_t self_ns = 0;
};

// Self-time aggregated by stack-of-names over the effective span tree.
// Children are sorted by name; total_ns = self_ns + sum(children totals).
// Allocation weights ride the same tree: self_bytes is already "self" by
// construction (the tracking allocator attributes to the innermost open
// span), so totals sum cleanly up the stack with no child subtraction.
struct FlameNode {
  std::string name;
  std::uint64_t self_ns = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_bytes = 0;
  std::uint64_t total_bytes = 0;
  std::vector<FlameNode> children;
};

// Which weight folded stacks and flamegraph SVGs size frames by.
enum class FlameWeight { kTime, kAllocBytes };

struct Profile {
  std::uint64_t wall_ns = 0;    // max end - min start over every span
  std::uint64_t span_count = 0;
  std::vector<ProfileNameStat> by_name;  // self_ns desc, then name asc
  std::vector<ProfileThread> threads;    // tid asc
  std::vector<CriticalPathStep> critical_path;  // root first
  FlameNode flame;  // synthetic root named "all"

  bool empty() const { return span_count == 0; }
  std::uint64_t critical_path_ns() const {
    return critical_path.empty() ? 0 : critical_path.front().duration_ns;
  }

  // Accumulates `other`: name stats and flame trees merge, threads merge
  // by tid, wall extents add (records never share a clock), and the longer
  // critical path wins. The merged view backs fleet-level aggregation.
  void merge(const Profile& other);

  // Fixed-width tables: summary line, self/total per name, thread
  // utilization, and the critical path. Byte-deterministic.
  std::string render_table() const;

  // Collapsed-stack flamegraph text: "root;child;leaf <self_us>" per
  // flame node with nonzero self weight, sorted lexicographically. With
  // FlameWeight::kAllocBytes the value is self-allocated bytes instead of
  // self microseconds.
  std::string folded_stacks(FlameWeight weight = FlameWeight::kTime) const;

  // {"wall_ns":..,"span_count":..,"by_name":[..],"threads":[..],
  //  "critical_path":[..]} — the additive run-record section. The flame
  // tree is not serialized; it is rebuilt from the record's spans.
  support::Json to_json() const;
  static std::optional<Profile> from_json(const support::Json& j);
};

// Builds the profile. Spans may arrive in any order; ordering, adoption,
// and tie-breaks are deterministic functions of the span data alone.
Profile build_profile(std::vector<ProfileSpan> spans);
Profile build_profile(const std::vector<SpanRecord>& spans);

// Self-contained SVG flamegraph of a flame tree (no scripts, no external
// fetches; hover shows name + weight via <title>). Deterministic. With
// FlameWeight::kAllocBytes frames are sized by allocated bytes.
std::string render_flamegraph_svg(const FlameNode& root,
                                  std::string_view title,
                                  FlameWeight weight = FlameWeight::kTime);

}  // namespace feam::obs
