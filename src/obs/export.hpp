// Serialization of the observability state to its two on-disk formats:
//
// * JSONL event logs — one JSON object per line, append-friendly, greppable
//   ({"t_ns":..,"level":..,"name":..,"message":..,"fields":{..}}).
// * Chrome trace_event JSON — {"traceEvents":[...]} with spans as complete
//   ("X") events and point events as instants ("i"); loads directly in
//   about:tracing and Perfetto. Timestamps are microseconds on the shared
//   obs clock, so nesting renders from time containment and span
//   parent/child ids travel in args.
//
// Metrics export is a single JSON document (see Registry::to_json).
#pragma once

#include <string>
#include <vector>

#include "obs/event.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace feam::obs {

// One compact JSON object per event, newline-separated.
std::string render_jsonl(const std::vector<Event>& events);

// Chrome trace_event-format JSON for about:tracing / Perfetto.
std::string render_chrome_trace(const std::vector<SpanRecord>& spans,
                                const std::vector<Event>& events);

// The registry's counters and histogram summaries, pretty-printed.
std::string render_metrics_json(const Registry& registry);

}  // namespace feam::obs
