#include "obs/event.hpp"

namespace feam::obs {

const char* level_name(Level level) {
  switch (level) {
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
    case Level::kNone: return "none";
  }
  return "?";
}

std::optional<Level> parse_level(std::string_view text) {
  for (const auto level : {Level::kDebug, Level::kInfo, Level::kWarn,
                           Level::kError, Level::kNone}) {
    if (text == level_name(level)) return level;
  }
  return std::nullopt;
}

std::string Event::render() const {
  std::string out = "[";
  out += level_name(level);
  out += "] ";
  out += name;
  if (!message.empty()) {
    out += ": ";
    out += message;
  }
  if (!fields.empty()) {
    out += " (";
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i != 0) out += ", ";
      out += fields[i].first + "=" + fields[i].second;
    }
    out += ")";
  }
  return out;
}

}  // namespace feam::obs
