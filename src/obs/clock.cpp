#include "obs/clock.hpp"

#include <chrono>

namespace feam::obs {

std::uint64_t now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point anchor = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           anchor)
          .count());
}

}  // namespace feam::obs
