// Structured log records. An Event replaces the ad-hoc strings FEAM's
// phases used to accumulate: each one carries a severity, a stable
// machine-readable name ("tec.verdict", "source.gather", ...), the
// human-readable message the CLI prints, and key/value detail fields the
// exporters serialize. The paper's requirement that FEAM "details the
// reasons to the user" becomes an auditable, machine-readable trail.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace feam::obs {

enum class Level : std::uint8_t { kDebug, kInfo, kWarn, kError, kNone };

// "debug", "info", "warn", "error", "none".
const char* level_name(Level level);

// Inverse of level_name; nullopt for anything else.
std::optional<Level> parse_level(std::string_view text);

using Fields = std::vector<std::pair<std::string, std::string>>;

struct Event {
  Level level = Level::kInfo;
  std::string name;     // stable identifier, dot-separated by subsystem
  std::string message;  // human-readable line (what the CLI prints)
  Fields fields;
  std::uint64_t t_ns = 0;  // obs::now_ns() at emission
  int tid = 0;             // small per-process thread ordinal

  // "[level] name: message (k=v, ...)" — the stderr echo format.
  std::string render() const;
};

}  // namespace feam::obs
