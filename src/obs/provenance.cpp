#include "obs/provenance.hpp"

#include <algorithm>
#include <cstdio>

namespace feam::obs {

namespace {

// Innermost-first chain of active recording frames on this thread. Each
// record_evidence() call visits every frame: scope frames accumulate into
// their EvidenceSet, capture frames tee into their vector. A capture
// frame therefore never hides evidence from the enclosing evaluation —
// the cache stores a copy while the live verdict still sees it.
struct Frame {
  EvidenceSet* set = nullptr;
  std::vector<Evidence>* tee = nullptr;
  Frame* prev = nullptr;
};

thread_local Frame* tl_frames = nullptr;

bool parse_stamp_hex(std::string_view hex, std::uint64_t& out) {
  if (hex.size() != 16) return false;
  std::uint64_t value = 0;
  for (const char c : hex) {
    value <<= 4;
    if (c >= '0' && c <= '9') value |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') value |= static_cast<std::uint64_t>(c - 'a' + 10);
    else return false;
  }
  out = value;
  return true;
}

}  // namespace

std::string Evidence::stamp_hex() const {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(stamp));
  return buf;
}

void EvidenceSet::add(Evidence e) {
  if (e.detail.size() > kMaxDetail) e.detail.resize(kMaxDetail);
  if (items_.size() >= kHardCap && items_.find(e) == items_.end()) {
    ++overflow_;
    return;
  }
  items_.insert(std::move(e));
}

void EvidenceSet::merge(const EvidenceSet& other) {
  for (const auto& e : other.items_) add(e);
  overflow_ += other.overflow_;
}

void EvidenceSet::clear() {
  items_.clear();
  overflow_ = 0;
}

std::uint64_t EvidenceSet::dropped() const {
  const std::uint64_t over_cap =
      items_.size() > kMaxItems ? items_.size() - kMaxItems : 0;
  return over_cap + overflow_;
}

std::vector<Evidence> EvidenceSet::items() const {
  std::vector<Evidence> out;
  out.reserve(std::min(items_.size(), kMaxItems));
  for (const auto& e : items_) {
    if (out.size() >= kMaxItems) break;
    out.push_back(e);
  }
  return out;
}

support::Json EvidenceSet::to_json() const {
  support::Json out;
  out.set("schema", kProvenanceSchema);
  out.set("dropped", dropped());
  support::Json::Array evidence;
  for (const auto& e : items()) {
    support::Json item;
    item.set("stage", e.stage);
    item.set("kind", e.kind);
    item.set("site", e.site);
    item.set("subject", e.subject);
    item.set("detail", e.detail);
    item.set("stamp", e.stamp_hex());
    evidence.push_back(std::move(item));
  }
  out.set("evidence", support::Json(std::move(evidence)));
  return out;
}

std::optional<EvidenceSet> EvidenceSet::from_json(const support::Json& j) {
  if (!j.is_object()) return std::nullopt;
  if (j.get_string("schema") != kProvenanceSchema) return std::nullopt;
  if (!j["evidence"].is_array()) return std::nullopt;
  EvidenceSet set;
  for (const auto& item : j["evidence"].as_array()) {
    if (!item.is_object()) return std::nullopt;
    Evidence e;
    e.stage = item.get_string("stage");
    e.kind = item.get_string("kind");
    e.site = item.get_string("site");
    e.subject = item.get_string("subject");
    e.detail = item.get_string("detail");
    if (!parse_stamp_hex(item.get_string("stamp"), e.stamp)) {
      return std::nullopt;
    }
    if (e.stage.empty() || e.kind.empty()) return std::nullopt;
    set.add(std::move(e));
  }
  // `dropped` records serialization-time truncation; a deserialized set
  // carries it through so round trips and validate() stay faithful.
  const std::int64_t dropped = j.get_int("dropped", -1);
  if (dropped < 0) return std::nullopt;
  set.overflow_ = static_cast<std::uint64_t>(dropped);
  return set;
}

std::vector<std::string> EvidenceSet::validate() const {
  std::vector<std::string> issues;
  if (items_.size() > kMaxItems) {
    issues.push_back("provenance holds " + std::to_string(items_.size()) +
                     " items, over the serialization bound of " +
                     std::to_string(kMaxItems));
  }
  for (const auto& e : items_) {
    if (e.stage.empty()) issues.push_back("evidence item with empty stage");
    if (e.kind.empty()) issues.push_back("evidence item with empty kind");
    if (e.detail.size() > kMaxDetail) {
      issues.push_back("evidence detail for '" + e.subject +
                       "' exceeds the " + std::to_string(kMaxDetail) +
                       "-byte bound");
    }
  }
  return issues;
}

bool provenance_active() { return tl_frames != nullptr; }

void record_evidence(Evidence e) {
  if (tl_frames == nullptr) return;
  for (Frame* f = tl_frames; f != nullptr; f = f->prev) {
    if (f->tee != nullptr) f->tee->push_back(e);
    if (f->set != nullptr) f->set->add(e);
  }
}

void replay_evidence(const std::vector<Evidence>& items) {
  if (tl_frames == nullptr) return;
  for (const auto& e : items) record_evidence(e);
}

ProvenanceScope::ProvenanceScope(EvidenceSet& target) {
  auto* frame = new Frame{&target, nullptr, tl_frames};
  tl_frames = frame;
  frame_ = frame;
}

ProvenanceScope::~ProvenanceScope() {
  auto* frame = static_cast<Frame*>(frame_);
  tl_frames = frame->prev;
  delete frame;
}

EvidenceCapture::EvidenceCapture() {
  auto* frame = new Frame{nullptr, &captured_, tl_frames};
  tl_frames = frame;
  frame_ = frame;
}

EvidenceCapture::~EvidenceCapture() {
  auto* frame = static_cast<Frame*>(frame_);
  tl_frames = frame->prev;
  delete frame;
}

std::vector<Evidence> EvidenceCapture::take() { return std::move(captured_); }

std::uint64_t evidence_bytes(const std::vector<Evidence>& items) {
  std::uint64_t total = 0;
  for (const auto& e : items) {
    total += sizeof(Evidence) + e.stage.size() + e.kind.size() +
             e.site.size() + e.subject.size() + e.detail.size();
  }
  return total;
}

}  // namespace feam::obs
