#include "obs/timeseries.hpp"

#include <chrono>
#include <utility>

#include "obs/clock.hpp"
#include "obs/memory.hpp"
#include "support/json.hpp"

namespace feam::obs {

TimeseriesSampler::TimeseriesSampler(Registry& registry, Options options,
                                     LineSink sink)
    : registry_(registry), options_(std::move(options)), sink_(std::move(sink)) {
  if (options_.interval_ms == 0) options_.interval_ms = 1;
  support::Json meta;
  meta.set("schema", kTimeseriesSchema);
  meta.set("type", "meta");
  meta.set("interval_ms", options_.interval_ms);
  if (!options_.source.empty()) meta.set("source", options_.source);
  previous_t_ns_ = now_ns();
  meta.set("t_ns", previous_t_ns_);
  sink_(meta.dump() + "\n");
  thread_ = std::thread([this] { run(); });
}

TimeseriesSampler::~TimeseriesSampler() { stop(); }

void TimeseriesSampler::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    wake_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms));
    if (stopping_) break;
    // Sample with the lock released: capturing the registry takes its
    // mutex, and stop() only flips the flag — it never samples while the
    // thread is alive — so previous_/seq_ stay single-writer.
    lock.unlock();
    sample_once(/*final_line=*/false);
    lock.lock();
  }
}

void TimeseriesSampler::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
    stopping_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  sample_once(/*final_line=*/true);
}

std::uint64_t TimeseriesSampler::samples_emitted() const { return seq_; }

void TimeseriesSampler::sample_once(bool final_line) {
  const std::uint64_t t_ns = now_ns();
  // Refresh the process RSS gauges before snapshotting so footprint rides
  // the same tick as everything else.
  sample_process_rss(registry_);
  Shot current;
  current.counters = registry_.counter_values();
  current.histograms = registry_.histogram_snapshots();
  current.gauges = registry_.gauge_values();

  support::Json counters{support::Json::Object{}};
  for (const auto& [name, total] : current.counters) {
    const auto it = previous_.counters.find(name);
    const std::uint64_t before =
        it == previous_.counters.end() ? 0 : it->second;
    const std::uint64_t delta = total >= before ? total - before : 0;
    if (delta == 0 && !final_line) continue;
    support::Json entry;
    entry.set("d", delta);
    entry.set("t", total);
    counters.set(name, std::move(entry));
  }

  support::Json histograms{support::Json::Object{}};
  for (const auto& [name, snapshot] : current.histograms) {
    const auto it = previous_.histograms.find(name);
    const HistogramSnapshot delta = it == previous_.histograms.end()
                                        ? snapshot.delta_since({})
                                        : snapshot.delta_since(it->second);
    if (delta.count == 0 && !final_line) continue;
    support::Json entry;
    entry.set("d", delta.to_json());
    entry.set("t", snapshot.count);
    histograms.set(name, std::move(entry));
  }

  support::Json gauges{support::Json::Object{}};
  bool any_gauge = false;
  for (const auto& [name, value] : current.gauges) {
    const auto it = previous_.gauges.find(name);
    const bool changed = it == previous_.gauges.end() ||
                         it->second.value != value.value ||
                         it->second.peak != value.peak;
    if (!changed && !final_line) continue;
    support::Json entry;
    entry.set("v", value.value);
    entry.set("p", value.peak);
    gauges.set(name, std::move(entry));
    any_gauge = true;
  }

  support::Json line;
  line.set("schema", kTimeseriesSchema);
  line.set("type", "sample");
  line.set("seq", seq_);
  line.set("t_ns", t_ns);
  line.set("dt_ns", t_ns >= previous_t_ns_ ? t_ns - previous_t_ns_ : 0);
  line.set("final", final_line);
  line.set("counters", std::move(counters));
  line.set("histograms", std::move(histograms));
  if (any_gauge) line.set("gauges", std::move(gauges));
  sink_(line.dump() + "\n");

  previous_ = std::move(current);
  previous_t_ns_ = t_ns;
  ++seq_;
}

}  // namespace feam::obs
