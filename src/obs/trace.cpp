#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/clock.hpp"
#include "obs/memory.hpp"
#include "obs/metrics.hpp"

namespace feam::obs {

namespace {

std::atomic<Level> g_log_level{Level::kNone};

// Per-thread stack of open span ids, for parent/child attribution.
thread_local std::vector<std::uint64_t> t_span_stack;

}  // namespace

TraceCollector::ThreadBuffer& TraceCollector::local_buffer() {
  // Owner-checked: if several collectors exist (tests), the cached buffer
  // only serves the collector that registered it.
  thread_local TraceCollector* t_owner = nullptr;
  thread_local std::shared_ptr<ThreadBuffer> t_buffer;
  if (t_owner != this || !t_buffer) {
    t_buffer = std::make_shared<ThreadBuffer>();
    t_owner = this;
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(t_buffer);
  }
  return *t_buffer;
}

void TraceCollector::record_span(SpanRecord record) {
  record.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  ThreadBuffer& buffer = local_buffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.spans.push_back(std::move(record));
}

void TraceCollector::record_event(Event event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

std::vector<SpanRecord> TraceCollector::spans() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  std::vector<SpanRecord> out;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    out.insert(out.end(), buffer->spans.begin(), buffer->spans.end());
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::vector<Event> TraceCollector::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void TraceCollector::clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
    events_.clear();
  }
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    buffer->spans.clear();
  }
}

TraceCollector& collector() {
  static TraceCollector instance;
  return instance;
}

int thread_ordinal() {
  static std::atomic<int> next{0};
  thread_local const int ordinal = next.fetch_add(1);
  return ordinal;
}

Level log_level() { return g_log_level.load(std::memory_order_relaxed); }

void set_log_level(Level level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

void emit(Event event) {
  if (event.t_ns == 0) event.t_ns = now_ns();
  event.tid = thread_ordinal();
  const Level threshold = log_level();
  if (threshold != Level::kNone && event.level >= threshold) {
    std::fprintf(stderr, "feam %s\n", event.render().c_str());
  }
  if (collector().enabled()) collector().record_event(std::move(event));
}

void emit(Level level, std::string name, std::string message, Fields fields) {
  Event event;
  event.level = level;
  event.name = std::move(name);
  event.message = std::move(message);
  event.fields = std::move(fields);
  emit(std::move(event));
}

Span::Span(std::string name, Fields fields) {
  record_.name = std::move(name);
  record_.fields = std::move(fields);
  record_.start_ns = now_ns();
  active_ = collector().enabled();
  if (active_) {
    record_.id = collector().next_span_id();
    record_.parent_id = t_span_stack.empty() ? 0 : t_span_stack.back();
    record_.tid = thread_ordinal();
    t_span_stack.push_back(record_.id);
  }
  // Allocation attribution is independent of trace collection: the
  // mem.alloc_bytes{phase=...} counters flow even on untraced runs.
  if (alloc_tracking_enabled()) mem_token_ = mem_scope_push();
}

Span::~Span() { finish(); }

void Span::add_field(std::string key, std::string value) {
  record_.fields.emplace_back(std::move(key), std::move(value));
}

std::uint64_t Span::elapsed_ns() const { return now_ns() - record_.start_ns; }

void Span::finish() {
  if (finished_) return;
  finished_ = true;
  record_.end_ns = now_ns();
  if (mem_token_ >= 0) {
    const MemScopeTotals mem = mem_scope_pop(mem_token_);
    mem_token_ = -1;
    if (mem.count != 0) {
      record_.alloc_bytes = mem.bytes;
      record_.alloc_count = mem.count;
      // One registry flush per span pop — the labeled lookup's own string
      // build allocates, which lands in the parent's frame (tracking-
      // allocator self-overhead attributed to the enclosing phase).
      counter("mem.alloc_bytes").add(mem.bytes);
      counter("mem.alloc_count").add(mem.count);
      counter("mem.alloc_bytes", {.phase = record_.name}).add(mem.bytes);
      counter("mem.alloc_count", {.phase = record_.name}).add(mem.count);
    }
  }
  if (!active_) return;
  // Pop this span (and anything a mismatched caller left above it).
  while (!t_span_stack.empty()) {
    const std::uint64_t top = t_span_stack.back();
    t_span_stack.pop_back();
    if (top == record_.id) break;
  }
  collector().record_span(std::move(record_));
}

}  // namespace feam::obs
