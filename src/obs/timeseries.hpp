// The streaming half of the observability layer: a background sampler
// that turns the process-wide metric registry into a `feam.timeseries/1`
// JSONL stream while the run is still in flight.
//
// Every tick the sampler snapshots the registry, diffs it against the
// previous snapshot, and emits one self-contained line of *window deltas*
// — counter increments and histogram bucket diffs (mergeable
// HistogramSnapshot JSON) since the last tick — plus the running totals,
// so a consumer can both chart windows and cross-check that the deltas
// telescope exactly to the totals. Memory is bounded by one retained
// snapshot regardless of run length; nothing is buffered.
//
// Line discipline: each line is assembled in full (terminating '\n'
// included) before the sink sees it, so a concurrently tailing reader
// (`feam top`) observes only whole lines or a trailing partial write,
// never interleaved fragments. stop() — also run by the destructor —
// emits one final line with "final":true covering every registered
// series, which is both the clean-shutdown marker tailing consumers exit
// on and the anchor for sum-of-deltas == final-total verification.
//
// Stream schema (feam.timeseries/1), one JSON object per line:
//   {"schema":"feam.timeseries/1","type":"meta","interval_ms":N,
//    "source":"...","t_ns":...}                            — first line
//   {"schema":"feam.timeseries/1","type":"sample","seq":K,"t_ns":...,
//    "dt_ns":...,"final":false,
//    "counters":{"name":{"d":delta,"t":total},...},
//    "histograms":{"name":{"d":{<HistogramSnapshot>},"t":count},...},
//    "gauges":{"name":{"v":value,"p":peak},...}}
// Sample lines carry only series that changed in the window; the final
// line carries every series (delta may be 0). Series names are
// obs::series_name encodings, so labeled series travel as
// "cache.hits{cache=bdc,site=india}". The "gauges" object is a schema-
// additive extension (still feam.timeseries/1): gauges are levels, not
// tallies, so they carry current value / peak rather than deltas, travel
// only when either changed (readers carry the last value forward), and
// the object is omitted entirely when no gauge changed — pre-gauge
// consumers keep parsing. The sampler also probes /proc each tick so
// `process.rss_bytes` / `process.rss_peak_bytes` ride the stream.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace feam::obs {

inline constexpr std::string_view kTimeseriesSchema = "feam.timeseries/1";

class TimeseriesSampler {
 public:
  // Receives one complete line (trailing '\n' included) per emission, on
  // the sampler thread and — for the final line — on the stop() caller's
  // thread. Implementations should write-and-flush so tails see lines
  // promptly.
  using LineSink = std::function<void(const std::string& line)>;

  struct Options {
    std::uint64_t interval_ms = 100;
    std::string source;  // free-form provenance tag for the meta line
  };

  // Emits the meta line and starts the sampling thread immediately.
  TimeseriesSampler(Registry& registry, Options options, LineSink sink);
  TimeseriesSampler(const TimeseriesSampler&) = delete;
  TimeseriesSampler& operator=(const TimeseriesSampler&) = delete;

  // Stops via stop() if the caller has not already.
  ~TimeseriesSampler();

  // Joins the sampler thread and emits the "final":true line. Idempotent;
  // after it returns the sink will not be called again.
  void stop();

  std::uint64_t samples_emitted() const;

 private:
  struct Shot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, HistogramSnapshot> histograms;
    std::map<std::string, GaugeValue> gauges;
  };

  void run();
  // Diffs the registry against previous_, emits one line, advances
  // previous_. Called from the sampler thread and, for the final line,
  // from stop() after the thread has joined.
  void sample_once(bool final_line);

  Registry& registry_;
  Options options_;
  LineSink sink_;
  Shot previous_;
  std::uint64_t previous_t_ns_ = 0;
  std::uint64_t seq_ = 0;

  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace feam::obs
