#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>

namespace feam::obs {

namespace {

// Bucket 0 holds the value 0; bucket i >= 1 holds [2^(i-1), 2^i - 1].
int bucket_index(std::uint64_t value) {
  return value == 0 ? 0 : std::bit_width(value);
}

std::uint64_t bucket_upper_bound(int index) {
  if (index == 0) return 0;
  if (index >= Histogram::kBuckets - 1) return UINT64_MAX;
  return (std::uint64_t{1} << index) - 1;
}

void atomic_min(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t current = slot.load(std::memory_order_relaxed);
  while (value < current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t current = slot.load(std::memory_order_relaxed);
  while (value > current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::record(std::uint64_t value) {
  const int index = std::min(bucket_index(value), kBuckets - 1);
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

std::uint64_t Histogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::sum() const {
  return sum_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::min() const {
  const std::uint64_t v = min_.load(std::memory_order_relaxed);
  return v == UINT64_MAX ? 0 : v;
}

std::uint64_t Histogram::max() const {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::uint64_t Histogram::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the sample the percentile asks for (1-based, ceil).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(p * static_cast<double>(n) + 0.999999));
  std::uint64_t seen = 0;
  std::uint64_t result = max();
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      result = bucket_upper_bound(i);
      break;
    }
  }
  return std::clamp(result, min(), max());
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

support::Json Histogram::to_json() const {
  support::Json out;
  out.set("count", count());
  out.set("sum", sum());
  out.set("min", min());
  out.set("max", max());
  out.set("mean", mean());
  out.set("p50", percentile(0.50));
  out.set("p90", percentile(0.90));
  out.set("p99", percentile(0.99));
  return out;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size() + histograms_.size();
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

support::Json Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  support::Json counters{support::Json::Object{}};
  for (const auto& [name, counter] : counters_) {
    counters.set(name, counter->value());
  }
  support::Json histograms{support::Json::Object{}};
  for (const auto& [name, histogram] : histograms_) {
    histograms.set(name, histogram->to_json());
  }
  support::Json out;
  out.set("counters", std::move(counters));
  out.set("histograms", std::move(histograms));
  return out;
}

Registry& metrics() {
  static Registry registry;
  return registry;
}

Counter& counter(std::string_view name) { return metrics().counter(name); }

Histogram& histogram(std::string_view name) {
  return metrics().histogram(name);
}

}  // namespace feam::obs
