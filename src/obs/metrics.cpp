#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>

namespace feam::obs {

namespace {

// Bucket 0 holds the value 0; bucket i >= 1 holds [2^(i-1), 2^i - 1].
int bucket_index(std::uint64_t value) {
  return value == 0 ? 0 : std::bit_width(value);
}

std::uint64_t bucket_lower_bound(int index) {
  if (index == 0) return 0;
  return std::uint64_t{1} << (index - 1);
}

std::uint64_t bucket_upper_bound(int index) {
  if (index == 0) return 0;
  if (index >= Histogram::kBuckets - 1) return UINT64_MAX;
  return (std::uint64_t{1} << index) - 1;
}

void atomic_min(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t current = slot.load(std::memory_order_relaxed);
  while (value < current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t current = slot.load(std::memory_order_relaxed);
  while (value > current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

std::string series_name(std::string_view name, const Labels& labels) {
  if (labels.empty()) return std::string(name);
  std::string out(name);
  out += '{';
  bool first = true;
  const auto append = [&](const char* key, std::string_view value) {
    if (value.empty()) return;
    if (!first) out += ',';
    first = false;
    out += key;
    out += '=';
    out += value;
  };
  append("cache", labels.cache);
  append("determinant", labels.determinant);
  append("phase", labels.phase);
  append("site", labels.site);
  out += '}';
  return out;
}

SeriesKey parse_series(std::string_view series) {
  SeriesKey key;
  const auto brace = series.find('{');
  if (brace == std::string_view::npos || series.back() != '}') {
    key.name = std::string(series);
    return key;
  }
  key.name = std::string(series.substr(0, brace));
  std::string_view body = series.substr(brace + 1, series.size() - brace - 2);
  while (!body.empty()) {
    const auto comma = body.find(',');
    const std::string_view pair =
        comma == std::string_view::npos ? body : body.substr(0, comma);
    body = comma == std::string_view::npos ? std::string_view{}
                                           : body.substr(comma + 1);
    const auto eq = pair.find('=');
    if (eq == std::string_view::npos) continue;
    const std::string_view label = pair.substr(0, eq);
    const std::string_view value = pair.substr(eq + 1);
    if (label == "site") key.site = std::string(value);
    else if (label == "cache") key.cache = std::string(value);
    else if (label == "determinant") key.determinant = std::string(value);
    else if (label == "phase") key.phase = std::string(value);
  }
  return key;
}

double HistogramSnapshot::mean() const {
  return count == 0 ? 0.0
                    : static_cast<double>(sum) / static_cast<double>(count);
}

std::uint64_t HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the sample the percentile asks for (1-based, ceil).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(p * static_cast<double>(count) + 0.999999));
  std::uint64_t before = 0;
  double result = static_cast<double>(max);
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t in_bucket = buckets[static_cast<std::size_t>(i)];
    if (in_bucket != 0 && before + in_bucket >= rank) {
      // Interpolate by rank position within the bucket's value range, so
      // percentiles are not step functions at bucket boundaries.
      const double lower = static_cast<double>(bucket_lower_bound(i));
      const double upper = static_cast<double>(bucket_upper_bound(i));
      const double fraction = static_cast<double>(rank - before) /
                              static_cast<double>(in_bucket);
      result = lower + fraction * (upper - lower);
      break;
    }
    before += in_bucket;
  }
  // Clamp in double space: the top bucket's upper bound exceeds what a
  // uint64 cast can represent.
  const double lo = static_cast<double>(min());
  const double hi = static_cast<double>(max);
  if (result <= lo) return min();
  if (result >= hi) return max;
  return static_cast<std::uint64_t>(result);
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  min_raw = std::min(min_raw, other.min_raw);
  max = std::max(max, other.max);
  for (int i = 0; i < kBuckets; ++i) {
    buckets[static_cast<std::size_t>(i)] +=
        other.buckets[static_cast<std::size_t>(i)];
  }
}

support::Json HistogramSnapshot::to_json() const {
  support::Json out;
  out.set("count", count);
  out.set("sum", sum);
  out.set("min", min());
  out.set("max", max);
  out.set("mean", mean());
  out.set("p50", percentile(0.50));
  out.set("p90", percentile(0.90));
  out.set("p99", percentile(0.99));
  int last = kBuckets;
  while (last > 0 && buckets[static_cast<std::size_t>(last - 1)] == 0) --last;
  support::Json::Array bucket_counts;
  bucket_counts.reserve(static_cast<std::size_t>(last));
  for (int i = 0; i < last; ++i) {
    bucket_counts.push_back(
        support::Json(buckets[static_cast<std::size_t>(i)]));
  }
  out.set("buckets", support::Json(std::move(bucket_counts)));
  return out;
}

std::optional<HistogramSnapshot> HistogramSnapshot::from_json(
    const support::Json& j) {
  if (!j.is_object()) return std::nullopt;
  HistogramSnapshot s;
  if (!j["count"].is_number()) return std::nullopt;
  s.count = static_cast<std::uint64_t>(j["count"].as_number());
  s.sum = static_cast<std::uint64_t>(j["sum"].as_number());
  s.max = static_cast<std::uint64_t>(j["max"].as_number());
  const std::uint64_t stored_min =
      static_cast<std::uint64_t>(j["min"].as_number());
  s.min_raw = s.count == 0 ? UINT64_MAX : stored_min;
  if (j["buckets"].is_array()) {
    const auto& counts = j["buckets"].as_array();
    if (counts.size() > static_cast<std::size_t>(kBuckets)) return std::nullopt;
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (!counts[i].is_number()) return std::nullopt;
      s.buckets[i] = static_cast<std::uint64_t>(counts[i].as_number());
      total += s.buckets[i];
    }
    if (total != s.count) return std::nullopt;
  } else if (s.count != 0) {
    // Bucket-less summary: place every sample at the max's bucket so the
    // merge stays count-consistent (percentiles degrade to [min, max]).
    s.buckets[static_cast<std::size_t>(
        std::min(bucket_index(s.max), kBuckets - 1))] = s.count;
  }
  return s;
}

HistogramSnapshot HistogramSnapshot::delta_since(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot d;
  int first_bucket = -1;
  int last_bucket = -1;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t now = buckets[static_cast<std::size_t>(i)];
    const std::uint64_t then = earlier.buckets[static_cast<std::size_t>(i)];
    const std::uint64_t diff = now >= then ? now - then : 0;
    d.buckets[static_cast<std::size_t>(i)] = diff;
    if (diff != 0) {
      if (first_bucket < 0) first_bucket = i;
      last_bucket = i;
    }
    d.count += diff;
  }
  d.sum = sum >= earlier.sum ? sum - earlier.sum : 0;
  if (d.count != 0) {
    d.min_raw = std::max(bucket_lower_bound(first_bucket), min());
    d.max = std::min(bucket_upper_bound(last_bucket), max);
    if (d.min_raw > d.max) d.min_raw = d.max;  // single-sample windows
  }
  return d;
}

void Gauge::raise_peak(std::uint64_t value) { atomic_max(peak_, value); }

void Gauge::set(std::uint64_t value) {
  value_.store(value, std::memory_order_relaxed);
  raise_peak(value);
}

void Gauge::add(std::uint64_t delta) {
  const std::uint64_t now =
      value_.fetch_add(delta, std::memory_order_relaxed) + delta;
  raise_peak(now);
}

void Gauge::sub(std::uint64_t delta) {
  std::uint64_t current = value_.load(std::memory_order_relaxed);
  std::uint64_t next;
  do {
    next = current >= delta ? current - delta : 0;
  } while (!value_.compare_exchange_weak(current, next,
                                         std::memory_order_relaxed));
}

void Gauge::reset() {
  value_.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
}

void Histogram::record(std::uint64_t value) {
  const int index = std::min(bucket_index(value), kBuckets - 1);
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

std::uint64_t Histogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::sum() const {
  return sum_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::min() const {
  const std::uint64_t v = min_.load(std::memory_order_relaxed);
  return v == UINT64_MAX ? 0 : v;
}

std::uint64_t Histogram::max() const {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::uint64_t Histogram::percentile(double p) const {
  return snapshot().percentile(p);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min_raw = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  for (int i = 0; i < kBuckets; ++i) {
    s.buckets[static_cast<std::size_t>(i)] =
        buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

support::Json Histogram::to_json() const { return snapshot().to_json(); }

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Counter& Registry::counter(std::string_view name, const Labels& labels) {
  if (labels.empty()) return counter(name);
  return counter(series_name(name, labels));
}

Histogram& Registry::histogram(std::string_view name, const Labels& labels) {
  if (labels.empty()) return histogram(name);
  return histogram(series_name(name, labels));
}

Gauge& Registry::gauge(std::string_view name, const Labels& labels) {
  if (labels.empty()) return gauge(name);
  return gauge(series_name(name, labels));
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size() + histograms_.size() + gauges_.size();
}

std::map<std::string, std::uint64_t> Registry::counter_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  return out;
}

std::map<std::string, HistogramSnapshot> Registry::histogram_snapshots()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, histogram] : histograms_) {
    out[name] = histogram->snapshot();
  }
  return out;
}

std::map<std::string, GaugeValue> Registry::gauge_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, GaugeValue> out;
  for (const auto& [name, gauge] : gauges_) {
    out[name] = GaugeValue{gauge->value(), gauge->peak()};
  }
  return out;
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
}

support::Json Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  support::Json counters{support::Json::Object{}};
  for (const auto& [name, counter] : counters_) {
    counters.set(name, counter->value());
  }
  support::Json histograms{support::Json::Object{}};
  for (const auto& [name, histogram] : histograms_) {
    histograms.set(name, histogram->to_json());
  }
  support::Json out;
  out.set("counters", std::move(counters));
  out.set("histograms", std::move(histograms));
  if (!gauges_.empty()) {
    support::Json gauges{support::Json::Object{}};
    for (const auto& [name, gauge] : gauges_) {
      support::Json entry;
      entry.set("value", gauge->value());
      entry.set("peak", gauge->peak());
      gauges.set(name, std::move(entry));
    }
    out.set("gauges", std::move(gauges));
  }
  return out;
}

Registry& metrics() {
  static Registry registry;
  return registry;
}

Counter& counter(std::string_view name) { return metrics().counter(name); }

Histogram& histogram(std::string_view name) {
  return metrics().histogram(name);
}

Counter& counter(std::string_view name, const Labels& labels) {
  return metrics().counter(name, labels);
}

Histogram& histogram(std::string_view name, const Labels& labels) {
  return metrics().histogram(name, labels);
}

Gauge& gauge(std::string_view name) { return metrics().gauge(name); }

Gauge& gauge(std::string_view name, const Labels& labels) {
  return metrics().gauge(name, labels);
}

SeriesHandle::SeriesHandle(std::string_view name, const Labels& labels)
    : counter_(&metrics().counter(name, labels)) {}

SeriesHandle& SiteSeriesCache::at(std::string_view site) {
  auto it = handles_.find(site);
  if (it == handles_.end()) {
    it = handles_
             .emplace(std::string(site),
                      SeriesHandle(name_, {.site = site, .cache = cache_label_}))
             .first;
  }
  return it->second;
}

std::function<void(std::uint64_t, std::uint64_t)> pool_task_recorder() {
  // References into the registry are stable for its lifetime, so resolve
  // the names once instead of on every task completion.
  Histogram& queue_wait = histogram("pool.queue_wait_ns");
  Histogram& task_run = histogram("pool.task_run_ns");
  return [&queue_wait, &task_run](std::uint64_t queue_wait_ns,
                                  std::uint64_t run_ns) {
    queue_wait.record(queue_wait_ns);
    task_run.record(run_ns);
  };
}

}  // namespace feam::obs
