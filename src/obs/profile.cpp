#include "obs/profile.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <memory>
#include <unordered_map>

#include "support/strings.hpp"
#include "support/table.hpp"

namespace feam::obs {
namespace {

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string fmt_us(std::uint64_t ns) { return fmt_u64(ns / 1000); }

// Deterministic order used everywhere: containers sort before containees
// (start ascending, end descending), exact-duplicate intervals by id. The
// adoption pass relies on this — an adopter always has a smaller sorted
// index than its adoptee, so adoption edges can never form a cycle.
bool span_before(const ProfileSpan& a, const ProfileSpan& b) {
  if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
  if (a.end_ns != b.end_ns) return a.end_ns > b.end_ns;
  return a.id < b.id;
}

// Builder for the flame tree: children keyed by name while accumulating,
// flattened to sorted vectors at the end.
struct FlameBuilder {
  std::uint64_t self_ns = 0;
  std::uint64_t self_bytes = 0;
  std::map<std::string, std::unique_ptr<FlameBuilder>, std::less<>> children;

  FlameBuilder& child(const std::string& name) {
    auto it = children.find(name);
    if (it == children.end()) {
      it = children.emplace(name, std::make_unique<FlameBuilder>()).first;
    }
    return *it->second;
  }
};

FlameNode flatten_flame(const std::string& name, const FlameBuilder& b) {
  FlameNode node;
  node.name = name;
  node.self_ns = b.self_ns;
  node.total_ns = b.self_ns;
  node.self_bytes = b.self_bytes;
  node.total_bytes = b.self_bytes;
  node.children.reserve(b.children.size());
  for (const auto& [child_name, child] : b.children) {
    node.children.push_back(flatten_flame(child_name, *child));
    node.total_ns += node.children.back().total_ns;
    node.total_bytes += node.children.back().total_bytes;
  }
  return node;
}

void merge_flame(FlameNode& into, const FlameNode& from) {
  into.self_ns += from.self_ns;
  into.total_ns += from.total_ns;
  into.self_bytes += from.self_bytes;
  into.total_bytes += from.total_bytes;
  for (const auto& child : from.children) {
    auto it = std::lower_bound(
        into.children.begin(), into.children.end(), child,
        [](const FlameNode& a, const FlameNode& b) { return a.name < b.name; });
    if (it != into.children.end() && it->name == child.name) {
      merge_flame(*it, child);
    } else {
      into.children.insert(it, child);
    }
  }
}

void fold_stacks(const FlameNode& node, FlameWeight weight,
                 std::string& prefix, std::vector<std::string>& lines) {
  const std::size_t prefix_len = prefix.size();
  if (!prefix.empty()) prefix += ';';
  prefix += node.name;
  // Time weight keeps the historical form: emit whenever self time is
  // nonzero (sub-microsecond frames fold to "0"). Byte weight emits raw
  // byte counts for frames that allocated at all.
  if (weight == FlameWeight::kTime) {
    if (node.self_ns > 0) lines.push_back(prefix + " " + fmt_us(node.self_ns));
  } else if (node.self_bytes > 0) {
    lines.push_back(prefix + " " + fmt_u64(node.self_bytes));
  }
  for (const auto& child : node.children) {
    fold_stacks(child, weight, prefix, lines);
  }
  prefix.resize(prefix_len);
}

std::uint64_t parse_u64(const support::Json& j, std::string_view key) {
  const auto& v = j[key];
  return v.is_number() ? static_cast<std::uint64_t>(v.as_number()) : 0;
}

void xml_escape(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
}

int flame_depth(const FlameNode& node) {
  int deepest = 0;
  for (const auto& child : node.children) {
    deepest = std::max(deepest, flame_depth(child));
  }
  return deepest + 1;
}

// FNV-1a over the frame name; drives the deterministic color choice.
std::uint32_t name_hash(std::string_view name) {
  std::uint32_t h = 2166136261u;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 16777619u;
  }
  return h;
}

struct SvgLayout {
  std::string body;
  std::uint64_t root_total = 1;
  double width = 1200.0;
  double row_h = 17.0;
  double top = 28.0;
  FlameWeight weight = FlameWeight::kTime;

  std::uint64_t total_of(const FlameNode& node) const {
    return weight == FlameWeight::kTime ? node.total_ns : node.total_bytes;
  }

  void draw(const FlameNode& node, double x, int depth) {
    const double w =
        width * static_cast<double>(total_of(node)) / static_cast<double>(root_total);
    if (w < 0.1) return;
    const double y = top + depth * row_h;
    const std::uint32_t h = name_hash(node.name);
    // Warm flame palette: red-orange hues, varied per name but stable.
    const int r = 205 + static_cast<int>(h % 50);
    const int g = 70 + static_cast<int>((h >> 8) % 110);
    const int b = (h >> 16) % 40;
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "<g><rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" "
                  "height=\"%.2f\" fill=\"rgb(%d,%d,%d)\" rx=\"1\"/>",
                  x, y, std::max(w - 0.5, 0.1), row_h - 1.0, r, g, b);
    body += buf;
    body += "<title>";
    xml_escape(body, node.name);
    if (weight == FlameWeight::kTime) {
      std::snprintf(buf, sizeof(buf), " (total %s us, self %s us)</title>",
                    fmt_us(node.total_ns).c_str(), fmt_us(node.self_ns).c_str());
    } else {
      std::snprintf(buf, sizeof(buf), " (total %s, self %s)</title>",
                    support::human_size(node.total_bytes).c_str(),
                    support::human_size(node.self_bytes).c_str());
    }
    body += buf;
    // ~7 px per glyph of 12px monospace; skip labels on slivers.
    const std::size_t fit = static_cast<std::size_t>(std::max(w - 6.0, 0.0) / 7.0);
    if (fit >= 2) {
      std::string label(node.name.substr(0, fit));
      if (label.size() < node.name.size() && label.size() > 2) {
        label.resize(label.size() - 2);
        label += "..";
      }
      std::snprintf(buf, sizeof(buf), "<text x=\"%.2f\" y=\"%.2f\">",
                    x + 3.0, y + row_h - 5.0);
      body += buf;
      xml_escape(body, label);
      body += "</text>";
    }
    body += "</g>";
    double child_x = x;
    for (const auto& child : node.children) {
      draw(child, child_x, depth + 1);
      child_x += width * static_cast<double>(total_of(child)) /
                 static_cast<double>(root_total);
    }
  }
};

}  // namespace

Profile build_profile(std::vector<ProfileSpan> spans) {
  Profile profile;
  profile.flame.name = "all";
  if (spans.empty()) return profile;

  std::sort(spans.begin(), spans.end(), span_before);
  const std::size_t n = spans.size();
  profile.span_count = n;

  std::unordered_map<std::uint64_t, std::size_t> index_by_id;
  index_by_id.reserve(n);
  for (std::size_t i = 0; i < n; ++i) index_by_id.emplace(spans[i].id, i);

  // Self time: duration minus direct explicit children. RAII nesting means
  // same-thread children are contained and disjoint, so the subtraction
  // never goes negative on collector traces; clamp anyway for foreign input.
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> explicit_parent(n, kNone);
  std::vector<std::uint64_t> child_sum(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (spans[i].parent_id == 0) continue;
    const auto it = index_by_id.find(spans[i].parent_id);
    if (it == index_by_id.end() || it->second == i) continue;
    explicit_parent[i] = it->second;
    child_sum[it->second] += spans[i].duration_ns();
  }
  std::vector<std::uint64_t> self(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t dur = spans[i].duration_ns();
    self[i] = dur > child_sum[i] ? dur - child_sum[i] : 0;
  }

  // Adoption: a span with no recorded parent (a worker-thread root) is
  // attached to the innermost span that time-contains it — maximal start,
  // then minimal end, then latest in sort order. Only earlier-sorted spans
  // can contain it, so the effective tree is acyclic by construction.
  std::vector<std::size_t> effective_parent(explicit_parent);
  for (std::size_t i = 0; i < n; ++i) {
    if (effective_parent[i] != kNone) continue;
    std::size_t best = kNone;
    for (std::size_t j = 0; j < i; ++j) {
      if (spans[j].start_ns > spans[i].start_ns ||
          spans[j].end_ns < spans[i].end_ns) {
        continue;
      }
      if (best == kNone || spans[j].start_ns > spans[best].start_ns ||
          (spans[j].start_ns == spans[best].start_ns &&
           spans[j].end_ns <= spans[best].end_ns)) {
        best = j;
      }
    }
    effective_parent[i] = best;
  }

  // Per-name and per-thread aggregation.
  std::map<std::string, ProfileNameStat, std::less<>> by_name;
  std::map<int, ProfileThread> threads;
  std::map<int, std::pair<std::uint64_t, std::uint64_t>> thread_extent;
  std::uint64_t min_start = spans[0].start_ns;
  std::uint64_t max_end = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const ProfileSpan& s = spans[i];
    const std::uint64_t dur = s.duration_ns();
    auto& stat = by_name[s.name];
    if (stat.count == 0) {
      stat.name = s.name;
      stat.min_ns = dur;
    }
    ++stat.count;
    stat.total_ns += dur;
    stat.self_ns += self[i];
    stat.min_ns = std::min(stat.min_ns, dur);
    stat.max_ns = std::max(stat.max_ns, dur);
    stat.alloc_bytes += s.alloc_bytes;

    auto& thread = threads[s.tid];
    thread.tid = s.tid;
    ++thread.spans;
    thread.self_ns += self[i];
    if (explicit_parent[i] == kNone) thread.busy_ns += dur;
    auto [it, fresh] = thread_extent.emplace(
        s.tid, std::make_pair(s.start_ns, s.end_ns));
    if (!fresh) {
      it->second.first = std::min(it->second.first, s.start_ns);
      it->second.second = std::max(it->second.second, s.end_ns);
    }
    min_start = std::min(min_start, s.start_ns);
    max_end = std::max(max_end, s.end_ns);
  }
  profile.wall_ns = max_end - min_start;
  for (auto& [tid, thread] : threads) {
    const auto& extent = thread_extent[tid];
    thread.extent_ns = extent.second - extent.first;
    profile.threads.push_back(thread);
  }
  profile.by_name.reserve(by_name.size());
  for (auto& [name, stat] : by_name) profile.by_name.push_back(stat);
  std::sort(profile.by_name.begin(), profile.by_name.end(),
            [](const ProfileNameStat& a, const ProfileNameStat& b) {
              if (a.self_ns != b.self_ns) return a.self_ns > b.self_ns;
              return a.name < b.name;
            });

  // Flame tree: one forward pass works because every effective parent has
  // a smaller sorted index than its child.
  FlameBuilder flame_root;
  std::vector<FlameBuilder*> flame_of(n, nullptr);
  for (std::size_t i = 0; i < n; ++i) {
    FlameBuilder& parent_node = effective_parent[i] == kNone
                                    ? flame_root
                                    : *flame_of[effective_parent[i]];
    FlameBuilder& node = parent_node.child(spans[i].name);
    node.self_ns += self[i];
    node.self_bytes += spans[i].alloc_bytes;
    flame_of[i] = &node;
  }
  profile.flame = flatten_flame("all", flame_root);

  // Critical path: effective children per span, then descend from the
  // orphan that finishes last, always into the child that finishes last —
  // the span each join/barrier was actually waiting on.
  std::vector<std::vector<std::size_t>> children(n);
  std::size_t path_head = kNone;
  const auto later = [&](std::size_t a, std::size_t b) {
    // True when a is a "later finisher" than b.
    if (spans[a].end_ns != spans[b].end_ns) {
      return spans[a].end_ns > spans[b].end_ns;
    }
    if (spans[a].duration_ns() != spans[b].duration_ns()) {
      return spans[a].duration_ns() > spans[b].duration_ns();
    }
    return spans[a].id < spans[b].id;
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (effective_parent[i] != kNone) {
      children[effective_parent[i]].push_back(i);
    } else if (path_head == kNone || later(i, path_head)) {
      path_head = i;
    }
  }
  for (std::size_t step = path_head; step != kNone;) {
    profile.critical_path.push_back({spans[step].name, spans[step].tid,
                                     spans[step].start_ns - min_start,
                                     spans[step].duration_ns(), self[step]});
    std::size_t next = kNone;
    for (const std::size_t child : children[step]) {
      if (next == kNone || later(child, next)) next = child;
    }
    step = next;
  }
  return profile;
}

Profile build_profile(const std::vector<SpanRecord>& spans) {
  std::vector<ProfileSpan> input;
  input.reserve(spans.size());
  for (const auto& s : spans) {
    input.push_back({s.id, s.parent_id, s.name, s.start_ns, s.end_ns, s.tid,
                     s.alloc_bytes, s.alloc_count});
  }
  return build_profile(std::move(input));
}

void Profile::merge(const Profile& other) {
  wall_ns += other.wall_ns;
  span_count += other.span_count;

  std::map<std::string, ProfileNameStat, std::less<>> stats;
  for (auto& stat : by_name) stats.emplace(stat.name, std::move(stat));
  for (const auto& stat : other.by_name) {
    auto [it, fresh] = stats.emplace(stat.name, stat);
    if (fresh) continue;
    ProfileNameStat& mine = it->second;
    mine.count += stat.count;
    mine.total_ns += stat.total_ns;
    mine.self_ns += stat.self_ns;
    mine.min_ns = std::min(mine.min_ns, stat.min_ns);
    mine.max_ns = std::max(mine.max_ns, stat.max_ns);
    mine.alloc_bytes += stat.alloc_bytes;
  }
  by_name.clear();
  for (auto& [name, stat] : stats) by_name.push_back(std::move(stat));
  std::sort(by_name.begin(), by_name.end(),
            [](const ProfileNameStat& a, const ProfileNameStat& b) {
              if (a.self_ns != b.self_ns) return a.self_ns > b.self_ns;
              return a.name < b.name;
            });

  std::map<int, ProfileThread> merged_threads;
  for (const auto& thread : threads) merged_threads[thread.tid] = thread;
  for (const auto& thread : other.threads) {
    auto [it, fresh] = merged_threads.emplace(thread.tid, thread);
    if (fresh) continue;
    it->second.spans += thread.spans;
    it->second.busy_ns += thread.busy_ns;
    it->second.self_ns += thread.self_ns;
    it->second.extent_ns += thread.extent_ns;
  }
  threads.clear();
  for (auto& [tid, thread] : merged_threads) threads.push_back(thread);

  if (other.critical_path_ns() > critical_path_ns()) {
    critical_path = other.critical_path;
  }

  if (flame.name.empty()) flame.name = "all";
  FlameNode other_flame = other.flame;
  if (other_flame.name.empty()) other_flame.name = "all";
  merge_flame(flame, other_flame);
}

std::string Profile::render_table() const {
  std::string out = "profile: " + fmt_u64(span_count) + " spans, wall " +
                    fmt_us(wall_ns) + " us";
  if (!critical_path.empty()) {
    out += ", critical path " + fmt_us(critical_path_ns()) + " us (" +
           support::percent(static_cast<double>(critical_path_ns()),
                            static_cast<double>(wall_ns)) +
           " of wall)";
  }
  out += "\n\n";

  std::uint64_t total_self = 0;
  std::uint64_t total_alloc = 0;
  for (const auto& stat : by_name) {
    total_self += stat.self_ns;
    total_alloc += stat.alloc_bytes;
  }
  // The alloc column appears only when the trace carried allocation data,
  // so profiles recorded without tracking render exactly as before.
  std::vector<std::string> headers{"span",     "count",  "self us", "self %",
                                   "total us", "min us", "max us"};
  if (total_alloc > 0) headers.push_back("alloc");
  support::TextTable names(headers);
  for (const auto& stat : by_name) {
    std::vector<std::string> row{
        stat.name, fmt_u64(stat.count), fmt_us(stat.self_ns),
        support::percent(static_cast<double>(stat.self_ns),
                         static_cast<double>(total_self)),
        fmt_us(stat.total_ns), fmt_us(stat.min_ns), fmt_us(stat.max_ns)};
    if (total_alloc > 0) row.push_back(support::human_size(stat.alloc_bytes));
    names.add_row(row);
  }
  out += names.render();

  out += "\nthreads:\n";
  support::TextTable thread_table(
      {"tid", "spans", "busy us", "util %", "extent us"});
  for (const auto& thread : threads) {
    thread_table.add_row(
        {fmt_u64(static_cast<std::uint64_t>(thread.tid)),
         fmt_u64(thread.spans), fmt_us(thread.busy_ns),
         support::percent(static_cast<double>(thread.busy_ns),
                          static_cast<double>(wall_ns)),
         fmt_us(thread.extent_ns)});
  }
  out += thread_table.render();

  if (!critical_path.empty()) {
    out += "\ncritical path (longest chain of time-contained spans):\n";
    support::TextTable path(
        {"depth", "span", "tid", "start us", "dur us", "self us"});
    std::uint64_t depth = 0;
    for (const auto& step : critical_path) {
      path.add_row({fmt_u64(depth++), step.name,
                    fmt_u64(static_cast<std::uint64_t>(step.tid)),
                    fmt_us(step.start_ns), fmt_us(step.duration_ns),
                    fmt_us(step.self_ns)});
    }
    out += path.render();
  }
  return out;
}

std::string Profile::folded_stacks(FlameWeight weight) const {
  std::vector<std::string> lines;
  std::string prefix;
  for (const auto& child : flame.children) {
    fold_stacks(child, weight, prefix, lines);
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

support::Json Profile::to_json() const {
  support::Json::Object object;
  object.emplace("wall_ns", support::Json(static_cast<double>(wall_ns)));
  object.emplace("span_count", support::Json(static_cast<double>(span_count)));
  support::Json::Array names;
  for (const auto& stat : by_name) {
    support::Json::Object entry;
    entry.emplace("name", support::Json(stat.name));
    entry.emplace("count", support::Json(static_cast<double>(stat.count)));
    entry.emplace("total_ns", support::Json(static_cast<double>(stat.total_ns)));
    entry.emplace("self_ns", support::Json(static_cast<double>(stat.self_ns)));
    entry.emplace("min_ns", support::Json(static_cast<double>(stat.min_ns)));
    entry.emplace("max_ns", support::Json(static_cast<double>(stat.max_ns)));
    // Additive: only present when the trace carried allocation data, so
    // pre-tracking records stay byte-identical.
    if (stat.alloc_bytes > 0) {
      entry.emplace("alloc_bytes",
                    support::Json(static_cast<double>(stat.alloc_bytes)));
    }
    names.push_back(support::Json(std::move(entry)));
  }
  object.emplace("by_name", support::Json(std::move(names)));
  support::Json::Array thread_entries;
  for (const auto& thread : threads) {
    support::Json::Object entry;
    entry.emplace("tid", support::Json(thread.tid));
    entry.emplace("spans", support::Json(static_cast<double>(thread.spans)));
    entry.emplace("busy_ns", support::Json(static_cast<double>(thread.busy_ns)));
    entry.emplace("self_ns", support::Json(static_cast<double>(thread.self_ns)));
    entry.emplace("extent_ns", support::Json(static_cast<double>(thread.extent_ns)));
    thread_entries.push_back(support::Json(std::move(entry)));
  }
  object.emplace("threads", support::Json(std::move(thread_entries)));
  support::Json::Array path;
  for (const auto& step : critical_path) {
    support::Json::Object entry;
    entry.emplace("name", support::Json(step.name));
    entry.emplace("tid", support::Json(step.tid));
    entry.emplace("start_ns", support::Json(static_cast<double>(step.start_ns)));
    entry.emplace("duration_ns", support::Json(static_cast<double>(step.duration_ns)));
    entry.emplace("self_ns", support::Json(static_cast<double>(step.self_ns)));
    path.push_back(support::Json(std::move(entry)));
  }
  object.emplace("critical_path", support::Json(std::move(path)));
  return support::Json(std::move(object));
}

std::optional<Profile> Profile::from_json(const support::Json& j) {
  if (!j.is_object()) return std::nullopt;
  if (!j["wall_ns"].is_number() || !j["span_count"].is_number() ||
      !j["by_name"].is_array() || !j["threads"].is_array() ||
      !j["critical_path"].is_array()) {
    return std::nullopt;
  }
  Profile profile;
  profile.flame.name = "all";
  profile.wall_ns = parse_u64(j, "wall_ns");
  profile.span_count = parse_u64(j, "span_count");
  for (const auto& entry : j["by_name"].as_array()) {
    if (!entry.is_object() || !entry["name"].is_string()) return std::nullopt;
    ProfileNameStat stat;
    stat.name = entry["name"].as_string();
    stat.count = parse_u64(entry, "count");
    stat.total_ns = parse_u64(entry, "total_ns");
    stat.self_ns = parse_u64(entry, "self_ns");
    stat.min_ns = parse_u64(entry, "min_ns");
    stat.max_ns = parse_u64(entry, "max_ns");
    stat.alloc_bytes = parse_u64(entry, "alloc_bytes");
    profile.by_name.push_back(std::move(stat));
  }
  for (const auto& entry : j["threads"].as_array()) {
    if (!entry.is_object()) return std::nullopt;
    ProfileThread thread;
    thread.tid = static_cast<int>(entry.get_int("tid"));
    thread.spans = parse_u64(entry, "spans");
    thread.busy_ns = parse_u64(entry, "busy_ns");
    thread.self_ns = parse_u64(entry, "self_ns");
    thread.extent_ns = parse_u64(entry, "extent_ns");
    profile.threads.push_back(thread);
  }
  for (const auto& entry : j["critical_path"].as_array()) {
    if (!entry.is_object() || !entry["name"].is_string()) return std::nullopt;
    CriticalPathStep step;
    step.name = entry["name"].as_string();
    step.tid = static_cast<int>(entry.get_int("tid"));
    step.start_ns = parse_u64(entry, "start_ns");
    step.duration_ns = parse_u64(entry, "duration_ns");
    step.self_ns = parse_u64(entry, "self_ns");
    profile.critical_path.push_back(std::move(step));
  }
  return profile;
}

std::string render_flamegraph_svg(const FlameNode& root,
                                  std::string_view title,
                                  FlameWeight weight) {
  SvgLayout layout;
  layout.weight = weight;
  layout.root_total = std::max<std::uint64_t>(
      weight == FlameWeight::kTime ? root.total_ns : root.total_bytes, 1);
  const int depth = flame_depth(root);
  const double height = layout.top + depth * layout.row_h + 8.0;

  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" "
                "height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">",
                layout.width, height, layout.width, height);
  out += buf;
  out +=
      "<style>text{font:12px ui-monospace,monospace;fill:#1b1b1b;"
      "pointer-events:none}rect{stroke:#fff;stroke-width:0.4}"
      ".fg-title{font:bold 13px ui-monospace,monospace}</style>";
  std::snprintf(buf, sizeof(buf),
                "<rect x=\"0\" y=\"0\" width=\"%.0f\" height=\"%.0f\" "
                "fill=\"#fffdf7\" stroke=\"none\"/>",
                layout.width, height);
  out += buf;
  out += "<text class=\"fg-title\" x=\"8\" y=\"18\">";
  xml_escape(out, title);
  out += "</text>";
  layout.draw(root, 0.0, 0);
  out += layout.body;
  out += "</svg>";
  return out;
}

}  // namespace feam::obs
