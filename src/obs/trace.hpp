// Span-based tracing and the process-wide collector.
//
// A Span is an RAII timed region on the obs clock. Spans nest: each thread
// keeps a stack of open spans, and a span opened while another is open
// records that span as its parent, so exporters can reconstruct the tree
// (source phase -> BDC describe -> ...). Span construction is cheap when
// collection is disabled — it only reads the clock — so instrumentation
// stays in place permanently and elapsed_ns() keeps feeding histograms.
//
// The TraceCollector stores finished spans and emitted events behind a
// mutex; `feam --trace-out` enables it, exports, and writes the file.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event.hpp"

namespace feam::obs {

struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  // 0 when the span is a root
  std::string name;
  Fields fields;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  int tid = 0;
  std::uint64_t duration_ns() const { return end_ns - start_ns; }
};

class TraceCollector {
 public:
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  std::uint64_t next_span_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  void record_span(SpanRecord record);
  void record_event(Event event);

  std::vector<SpanRecord> spans() const;
  std::vector<Event> events() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{1};
  std::vector<SpanRecord> spans_;
  std::vector<Event> events_;
};

// The process-wide collector every Span and emit() reports to.
TraceCollector& collector();

// Small per-process ordinal for the calling thread (0 for the first
// thread that asks). Stable for the thread's lifetime.
int thread_ordinal();

// Threshold for echoing events to stderr; kNone (the default) silences the
// echo entirely. Storage in the collector is gated only by enabled().
Level log_level();
void set_log_level(Level level);

// Emits a structured event: echoed to stderr when `level >= log_level()`,
// stored when the collector is enabled. Fills t_ns/tid when unset.
void emit(Event event);
void emit(Level level, std::string name, std::string message,
          Fields fields = {});

class Span {
 public:
  explicit Span(std::string name, Fields fields = {});
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  void add_field(std::string key, std::string value);

  // Nanoseconds since construction, on the shared obs clock; valid whether
  // or not collection is enabled.
  std::uint64_t elapsed_ns() const;

  // Ends the span now (records it if collection was enabled when the span
  // was opened); the destructor becomes a no-op.
  void finish();

 private:
  SpanRecord record_;
  bool active_ = false;   // collection was enabled at construction
  bool finished_ = false;
};

}  // namespace feam::obs
