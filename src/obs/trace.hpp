// Span-based tracing and the process-wide collector.
//
// A Span is an RAII timed region on the obs clock. Spans nest: each thread
// keeps a stack of open spans, and a span opened while another is open
// records that span as its parent, so exporters can reconstruct the tree
// (source phase -> BDC describe -> ...). Span construction is cheap when
// collection is disabled — it only reads the clock — so instrumentation
// stays in place permanently and elapsed_ns() keeps feeding histograms.
//
// The TraceCollector is built for multi-threaded producers: each thread
// records finished spans into its own buffer (registered with the
// collector on first use, kept alive past thread exit), so recording
// never contends across workers. Export merges the buffers sorted by a
// process-wide finish sequence, which reproduces exactly the order the
// old single-vector collector stored — single-threaded traces are
// byte-identical. Events are rarer and stay behind one mutex.
// `feam --trace-out` enables the collector, exports, and writes the file.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event.hpp"

namespace feam::obs {

struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  // 0 when the span is a root
  std::string name;
  Fields fields;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  int tid = 0;
  // Bytes/allocations attributed to this span while it was the innermost
  // open span on its thread (see obs/memory.hpp) — already "self" by
  // construction, like self time. Zero unless the tracking allocator is
  // compiled in and armed.
  std::uint64_t alloc_bytes = 0;
  std::uint64_t alloc_count = 0;
  // Process-wide finish order (merge key across thread buffers); not
  // serialized by the exporters.
  std::uint64_t seq = 0;
  std::uint64_t duration_ns() const { return end_ns - start_ns; }
};

class TraceCollector {
 public:
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  std::uint64_t next_span_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // Appends to the calling thread's buffer; contention-free across
  // threads (the buffer's own mutex only synchronizes with export/clear).
  void record_span(SpanRecord record);
  void record_event(Event event);

  // All finished spans, merged across thread buffers in finish order.
  std::vector<SpanRecord> spans() const;
  std::vector<Event> events() const;
  void clear();

 private:
  struct ThreadBuffer {
    std::mutex mutex;
    std::vector<SpanRecord> spans;
  };

  // This thread's buffer, registering it on first use. shared_ptr keeps
  // a worker's spans alive after the worker exits.
  ThreadBuffer& local_buffer();

  mutable std::mutex mutex_;  // guards buffers_ registry and events_
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> next_seq_{1};
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::vector<Event> events_;
};

// The process-wide collector every Span and emit() reports to.
TraceCollector& collector();

// Small per-process ordinal for the calling thread (0 for the first
// thread that asks). Stable for the thread's lifetime.
int thread_ordinal();

// Threshold for echoing events to stderr; kNone (the default) silences the
// echo entirely. Storage in the collector is gated only by enabled().
Level log_level();
void set_log_level(Level level);

// Emits a structured event: echoed to stderr when `level >= log_level()`,
// stored when the collector is enabled. Fills t_ns/tid when unset.
void emit(Event event);
void emit(Level level, std::string name, std::string message,
          Fields fields = {});

class Span {
 public:
  explicit Span(std::string name, Fields fields = {});
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  void add_field(std::string key, std::string value);

  // Nanoseconds since construction, on the shared obs clock; valid whether
  // or not collection is enabled.
  std::uint64_t elapsed_ns() const;

  // Ends the span now (records it if collection was enabled when the span
  // was opened); the destructor becomes a no-op.
  void finish();

 private:
  SpanRecord record_;
  bool active_ = false;   // collection was enabled at construction
  bool finished_ = false;
  int mem_token_ = -1;    // memory-scope frame (obs/memory.hpp), -1 = none
};

}  // namespace feam::obs
