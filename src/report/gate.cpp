#include "report/gate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace feam::report {

namespace {

std::string format_value(double v) {
  char buf[40];
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.4g", v);
  }
  return buf;
}

}  // namespace

std::size_t GateResult::failures() const {
  return static_cast<std::size_t>(
      std::count_if(checks.begin(), checks.end(),
                    [](const MetricCheck& c) { return !c.pass; }));
}

std::string GateResult::render() const {
  std::string out;
  for (const auto& check : checks) {
    out += (check.pass ? "  ok   " : "  FAIL ") + check.name + ": " +
           check.verdict + "\n";
  }
  out += pass ? "GATE PASS (" + std::to_string(checks.size()) + " metrics)\n"
              : "GATE FAIL (" + std::to_string(failures()) + " of " +
                    std::to_string(checks.size()) + " metrics out of "
                    "tolerance)\n";
  return out;
}

support::Result<GateResult> run_gate(
    const std::map<std::string, double>& measured,
    const support::Json& baseline) {
  using R = support::Result<GateResult>;
  if (!baseline.is_object() ||
      baseline.get_string("schema") != kBaselineSchema) {
    return R::failure("baseline is not a " + std::string(kBaselineSchema) +
                      " document");
  }
  if (!baseline["metrics"].is_object()) {
    return R::failure("baseline lacks a \"metrics\" object");
  }
  GateResult result;
  for (const auto& [name, spec] : baseline["metrics"].as_object()) {
    if (!spec.is_object()) {
      return R::failure("baseline metric '" + name + "' is not an object");
    }
    const bool has_value = spec["value"].is_number();
    const bool has_max = spec["max"].is_number();
    const bool has_min = spec["min"].is_number();
    if (!has_value && !has_max && !has_min) {
      return R::failure("baseline metric '" + name +
                        "' needs \"value\", \"max\", or \"min\"");
    }
    MetricCheck check;
    check.name = name;
    const auto it = measured.find(name);
    if (it == measured.end()) {
      check.verdict = "metric missing from this run";
      check.pass = false;
    } else {
      check.measured = it->second;
      check.have_measured = true;
      check.pass = true;
      std::string verdict = "measured " + format_value(check.measured);
      if (has_value) {
        const double expected = spec["value"].as_number();
        const double rel_tol = spec["rel_tol"].is_number()
                                   ? spec["rel_tol"].as_number()
                                   : 0.0;
        const double abs_tol = spec["abs_tol"].is_number()
                                   ? spec["abs_tol"].as_number()
                                   : 0.0;
        const double allowed =
            std::max(rel_tol * std::abs(expected), abs_tol);
        const double delta = std::abs(check.measured - expected);
        verdict += ", expected " + format_value(expected) + " ±" +
                   format_value(allowed);
        if (delta > allowed) check.pass = false;
      }
      if (has_max) {
        const double ceiling = spec["max"].as_number();
        verdict += ", max " + format_value(ceiling);
        if (check.measured > ceiling) check.pass = false;
      }
      if (has_min) {
        const double floor_value = spec["min"].as_number();
        verdict += ", min " + format_value(floor_value);
        if (check.measured < floor_value) check.pass = false;
      }
      check.verdict = verdict;
    }
    if (!check.pass) result.pass = false;
    result.checks.push_back(std::move(check));
  }
  return result;
}

support::Json bench_record(const std::map<std::string, double>& measured,
                           const GateResult* gate, int pr_number,
                           const std::string& suite) {
  support::Json out;
  out.set("schema", std::string(kBenchSchema));
  out.set("pr", pr_number);
  out.set("suite", suite);
  support::Json metrics{support::Json::Object{}};
  for (const auto& [name, value] : measured) metrics.set(name, value);
  out.set("metrics", std::move(metrics));
  if (gate != nullptr) {
    support::Json gate_json;
    gate_json.set("pass", gate->pass);
    gate_json.set("checked", gate->checks.size());
    support::Json::Array failures;
    for (const auto& check : gate->checks) {
      if (!check.pass) {
        support::Json failure;
        failure.set("name", check.name);
        failure.set("verdict", check.verdict);
        failures.push_back(std::move(failure));
      }
    }
    gate_json.set("failures", support::Json(std::move(failures)));
    out.set("gate", std::move(gate_json));
  }
  return out;
}

}  // namespace feam::report
