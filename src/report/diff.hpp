// Drift-flip attribution (`feam diff`) and per-pair causal chains
// (`feam explain`) over feam.run_record/1 streams.
//
// diff_records() joins two record streams — typically a frozen-fleet run
// (A) and the same fleet with rolling-upgrade drift (B), or two
// consecutive sweeps of a live fleet — by (binary, target site). A
// *verdict flip* is a pair whose readiness or blocking determinant
// changed between the streams. Each flip is attributed to its causes:
// the provenance-evidence delta (items present on one side only) and the
// drift-log ops that can have produced it — same site, applied at a
// barrier round before the pair's workload sweep. A flip with no
// candidate drift op is *unattributed*; on a drift-only comparison the
// bench gates `unattributed_flips == 0` (every flip must be explainable).
//
// render_explain() walks one record's verdicts and provenance in causal
// order — determinant verdicts, then the evidence behind them staged
// tec.* → resolver → edc → bdc — the human answer to "why is this pair
// (not) ready?".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/provenance.hpp"
#include "report/run_record.hpp"
#include "support/json.hpp"

namespace feam::report {

inline constexpr std::string_view kDiffSchema = "feam.diff/1";

// One feam.drift_log/1 line, re-parsed for joining. (A structural mirror
// of fleet::DriftOp — report must stay ignorant of the fleet generator.)
struct DriftLogEntry {
  int round = 0;
  int site_index = 0;
  std::string site;
  std::string kind;
  std::string detail;
};

// Parses a feam.drift_log/1 JSONL document. Blank lines are skipped;
// lines with another schema or malformed JSON are dropped, not fatal.
std::vector<DriftLogEntry> parse_drift_log(std::string_view jsonl);

struct VerdictFlip {
  std::string binary;
  std::string target_site;
  // First-appearance ordinal of `binary` in stream A (stream B when A
  // lacks it) — the fleet's workload index, since fleet records are
  // workload-major. Drift op with round r lands *after* workload r's
  // sweep, so only ops with round < workload_index can have caused this
  // flip.
  int workload_index = 0;

  bool ready_a = false;
  bool ready_b = false;
  std::string blocking_a;  // blocking_determinant() on each side
  std::string blocking_b;

  // Provenance delta: evidence present in exactly one stream's record.
  std::vector<obs::Evidence> evidence_gained;  // in B, not in A
  std::vector<obs::Evidence> evidence_lost;    // in A, not in B

  // Drift ops that can have caused the flip (same site, earlier round).
  std::vector<DriftLogEntry> causes;

  bool attributed() const { return !causes.empty(); }
};

struct DiffResult {
  std::size_t pairs_compared = 0;
  std::size_t only_in_a = 0;
  std::size_t only_in_b = 0;
  std::vector<VerdictFlip> flips;

  std::size_t unattributed_flips() const;

  support::Json to_json() const;  // one feam.diff/1 document
  static std::optional<DiffResult> from_json(const support::Json& j);
  std::string render_text() const;
};

// The report pipeline's churn/attribution panel over ingested feam.diff/1
// artifacts: flips per diff, ready/blocked transition counts, and the
// drift-op kinds the flips were attributed to.
std::string render_churn_panel(const std::vector<DiffResult>& diffs);

// Joins `a` and `b` by (binary, target site) — first occurrence wins when
// a stream repeats a pair — and attributes every verdict flip against
// `drift_log` (pass an empty log when comparing unrelated streams; every
// flip is then unattributed by construction).
DiffResult diff_records(const std::vector<RunRecord>& a,
                        const std::vector<RunRecord>& b,
                        const std::vector<DriftLogEntry>& drift_log);

// The causal chain behind one record's verdict (see file comment).
std::string render_explain(const RunRecord& record);

}  // namespace feam::report
