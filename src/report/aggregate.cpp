#include "report/aggregate.hpp"

#include <algorithm>
#include <cstdio>

#include "support/strings.hpp"
#include "support/table.hpp"

namespace feam::report {

namespace {

// Nanoseconds rendered for humans: ns below 10µs, µs below 10ms, else ms.
std::string format_ns(double ns) {
  char buf[32];
  if (ns < 10'000.0) {
    std::snprintf(buf, sizeof buf, "%.0fns", ns);
  } else if (ns < 10'000'000.0) {
    std::snprintf(buf, sizeof buf, "%.1fus", ns / 1'000.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fms", ns / 1'000'000.0);
  }
  return buf;
}

}  // namespace

Aggregate aggregate_records(std::vector<RunRecord> records) {
  Aggregate out;
  out.records = std::move(records);
  for (const auto& record : out.records) {
    for (const auto& [name, value] : record.counters) {
      out.counters[name] += value;
    }
    for (const auto& [name, snapshot] : record.histograms) {
      out.histograms[name].merge(snapshot);
    }
    if (!record.spans.empty()) {
      out.profile.merge(obs::build_profile(to_profile_spans(record)));
      ++out.profiled_records;
    }
    if (!record.provenance.empty()) {
      ++out.provenance_records;
      out.evidence_dropped += record.provenance.dropped();
      for (const auto& e : record.provenance.items()) {
        ++out.evidence_items;
        ++out.evidence_by_stage[e.stage];
      }
    }
    if (!record.has_prediction) continue;
    ++out.prediction_runs;
    if (record.ready) ++out.ready_runs;
    for (const auto& det : record.determinants) {
      if (det.evaluated && !det.compatible) {
        ++out.determinant_failures[det.key];
      }
    }
    if (record.binary.empty() || record.target_site.empty()) continue;
    out.sites.insert(record.target_site);
    MatrixCell& cell = out.matrix[record.binary][record.target_site];
    if (cell.runs > 0 && cell.ready != record.ready) {
      out.conflicts.push_back(record.binary + " @ " + record.target_site +
                              ": ready disagrees across records");
    }
    cell.ready = record.ready;
    cell.blocking_determinant = record.blocking_determinant();
    cell.detail.clear();
    for (const auto& det : record.determinants) {
      if (det.evaluated && !det.compatible) {
        cell.detail = det.detail;
        break;
      }
    }
    cell.resolved_libraries = record.resolved_libraries;
    ++cell.runs;
  }
  return out;
}

void ingest_event_jsonl(Aggregate& aggregate, std::string_view text) {
  for (const auto& line : support::split(std::string(text), '\n')) {
    if (support::trim(line).empty()) continue;
    const auto parsed = support::Json::parse(line);
    if (!parsed || !parsed->is_object()) {
      ++aggregate.events.malformed_lines;
      continue;
    }
    ++aggregate.events.total;
    ++aggregate.events.by_level[parsed->get_string("level", "?")];
    ++aggregate.events.by_name[parsed->get_string("name", "?")];
  }
}

std::map<std::string, double> flatten_metrics(const Aggregate& aggregate) {
  std::map<std::string, double> out;
  out["matrix.records"] = static_cast<double>(aggregate.records.size());
  out["matrix.prediction_runs"] =
      static_cast<double>(aggregate.prediction_runs);
  out["matrix.ready"] = static_cast<double>(aggregate.ready_runs);
  out["matrix.not_ready"] =
      static_cast<double>(aggregate.prediction_runs - aggregate.ready_runs);
  out["matrix.binaries"] = static_cast<double>(aggregate.matrix.size());
  out["matrix.sites"] = static_cast<double>(aggregate.sites.size());
  out["matrix.conflicts"] = static_cast<double>(aggregate.conflicts.size());
  for (const auto& [key, count] : aggregate.determinant_failures) {
    out["determinant." + key + ".failures"] = static_cast<double>(count);
  }
  for (const auto& [name, value] : aggregate.counters) {
    out["counter." + name] = static_cast<double>(value);
  }
  for (const auto& [name, h] : aggregate.histograms) {
    const std::string prefix = "hist." + name + ".";
    out[prefix + "count"] = static_cast<double>(h.count);
    out[prefix + "mean"] = h.mean();
    out[prefix + "p50"] = static_cast<double>(h.percentile(0.50));
    out[prefix + "p90"] = static_cast<double>(h.percentile(0.90));
    out[prefix + "p99"] = static_cast<double>(h.percentile(0.99));
    out[prefix + "max"] = static_cast<double>(h.max);
  }
  out["profile.records"] = static_cast<double>(aggregate.profiled_records);
  out["profile.spans"] = static_cast<double>(aggregate.profile.span_count);
  out["profile.wall_ns"] = static_cast<double>(aggregate.profile.wall_ns);
  out["profile.critical_path_ns"] =
      static_cast<double>(aggregate.profile.critical_path_ns());
  out["events.total"] = static_cast<double>(aggregate.events.total);
  out["events.malformed"] =
      static_cast<double>(aggregate.events.malformed_lines);
  out["provenance.records"] =
      static_cast<double>(aggregate.provenance_records);
  out["provenance.items"] = static_cast<double>(aggregate.evidence_items);
  out["provenance.dropped"] = static_cast<double>(aggregate.evidence_dropped);
  for (const auto& [stage, count] : aggregate.evidence_by_stage) {
    out["provenance.stage." + stage] = static_cast<double>(count);
  }
  return out;
}

std::string render_readiness_matrix(const Aggregate& aggregate) {
  std::vector<std::string> header = {"Binary"};
  header.insert(header.end(), aggregate.sites.begin(), aggregate.sites.end());
  support::TextTable table(header);
  for (const auto& [binary, row] : aggregate.matrix) {
    std::vector<std::string> cells = {binary};
    for (const auto& site : aggregate.sites) {
      const auto it = row.find(site);
      if (it == row.end()) {
        cells.push_back("-");
      } else if (it->second.ready) {
        cells.push_back(it->second.resolved_libraries > 0
                            ? "READY+" +
                                  std::to_string(it->second.resolved_libraries)
                            : "READY");
      } else {
        cells.push_back(it->second.blocking_determinant);
      }
    }
    table.add_row(std::move(cells));
  }
  std::string out = "Readiness matrix (READY+n = ready after resolving n "
                    "library copies;\nblocked cells name the failing "
                    "determinant):\n";
  out += table.render();
  if (!aggregate.conflicts.empty()) {
    out += "CONFLICTS:\n";
    for (const auto& c : aggregate.conflicts) out += "  " + c + "\n";
  }
  return out;
}

std::string render_latency_table(const Aggregate& aggregate) {
  support::TextTable table(
      {"Histogram", "Count", "Mean", "p50", "p90", "p99", "Max"});
  for (const auto& [name, h] : aggregate.histograms) {
    if (h.empty()) continue;
    const bool ns = support::ends_with(name, "_ns");
    const auto value = [&](double v) {
      return ns ? format_ns(v) : std::to_string(static_cast<std::uint64_t>(v));
    };
    table.add_row({name, std::to_string(h.count), value(h.mean()),
                   value(static_cast<double>(h.percentile(0.50))),
                   value(static_cast<double>(h.percentile(0.90))),
                   value(static_cast<double>(h.percentile(0.99))),
                   value(static_cast<double>(h.max))});
  }
  return "Merged latency summaries (" +
         std::to_string(aggregate.records.size()) + " run records):\n" +
         table.render();
}

std::string render_counter_table(const Aggregate& aggregate) {
  support::TextTable table({"Counter", "Total"});
  for (const auto& [name, value] : aggregate.counters) {
    table.add_row({name, std::to_string(value)});
  }
  return "Counter roll-up:\n" + table.render();
}

std::string render_report_text(const Aggregate& aggregate) {
  std::string out = render_readiness_matrix(aggregate);
  out += "\n";
  char line[160];
  std::snprintf(line, sizeof line,
                "%zu records, %zu predictions: %zu READY, %zu not ready\n",
                aggregate.records.size(), aggregate.prediction_runs,
                aggregate.ready_runs,
                aggregate.prediction_runs - aggregate.ready_runs);
  out += line;
  if (!aggregate.determinant_failures.empty()) {
    out += "Failure attribution:";
    for (const auto& [key, count] : aggregate.determinant_failures) {
      out += " " + key + "=" + std::to_string(count);
    }
    out += "\n";
  }
  if (aggregate.provenance_records > 0) {
    std::snprintf(line, sizeof line,
                  "Verdict provenance: %zu of %zu records carry evidence "
                  "(%llu items, %llu dropped)",
                  aggregate.provenance_records, aggregate.records.size(),
                  static_cast<unsigned long long>(aggregate.evidence_items),
                  static_cast<unsigned long long>(
                      aggregate.evidence_dropped));
    out += line;
    for (const auto& [stage, count] : aggregate.evidence_by_stage) {
      out += " " + stage + "=" + std::to_string(count);
    }
    out += "\n";
  }
  if (aggregate.events.total > 0 || aggregate.events.malformed_lines > 0) {
    std::snprintf(line, sizeof line,
                  "Event logs: %llu events (%llu malformed lines)",
                  static_cast<unsigned long long>(aggregate.events.total),
                  static_cast<unsigned long long>(
                      aggregate.events.malformed_lines));
    out += line;
    for (const auto& [level, count] : aggregate.events.by_level) {
      out += " " + level + "=" + std::to_string(count);
    }
    out += "\n";
  }
  out += "\n" + render_latency_table(aggregate);
  out += "\n" + render_counter_table(aggregate);
  if (aggregate.profiled_records > 0) {
    out += "\nProfile (" + std::to_string(aggregate.profiled_records) +
           " records with spans; wall is summed across records, the "
           "critical path is the longest single record's):\n";
    out += aggregate.profile.render_table();
  }
  return out;
}

}  // namespace feam::report
