// Fleet-level aggregation over RunRecords and JSONL event logs: the
// readiness matrix (binaries × target sites with per-determinant failure
// attribution), merged histogram summaries with cross-run percentiles,
// counter roll-ups, and event statistics. Pure data-in/data-out — the CLI
// layer owns all file I/O.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "report/run_record.hpp"

namespace feam::report {

struct MatrixCell {
  bool ready = false;
  std::string blocking_determinant;  // "" when ready
  std::string detail;                // blocking determinant's detail line
  std::uint64_t resolved_libraries = 0;
  std::size_t runs = 0;  // records that landed on this (binary, site) cell
};

// Roll-up of ingested JSONL event-log lines.
struct EventRollup {
  std::uint64_t total = 0;
  std::map<std::string, std::uint64_t> by_level;
  std::map<std::string, std::uint64_t> by_name;
  std::uint64_t malformed_lines = 0;
};

struct Aggregate {
  std::vector<RunRecord> records;

  // binary → target site → verdict. Only prediction-carrying records with
  // a target site land here; repeated runs of the same pair must agree on
  // readiness (disagreements are surfaced in `conflicts`).
  std::map<std::string, std::map<std::string, MatrixCell>> matrix;
  std::set<std::string> sites;
  std::vector<std::string> conflicts;

  std::size_t prediction_runs = 0;
  std::size_t ready_runs = 0;
  std::map<std::string, std::uint64_t> determinant_failures;  // key → count

  // Provenance roll-up (records carrying a feam.provenance/1 section).
  std::size_t provenance_records = 0;
  std::uint64_t evidence_items = 0;    // serialized items across records
  std::uint64_t evidence_dropped = 0;  // items beyond the per-record bound
  std::map<std::string, std::uint64_t> evidence_by_stage;  // stage → items

  std::map<std::string, std::uint64_t> counters;               // summed
  std::map<std::string, obs::HistogramSnapshot> histograms;    // merged

  // Merged self-time/critical-path profile over every record that carries
  // spans (rebuilt per record with obs::build_profile so the flame tree is
  // available, then merged — see obs::Profile::merge for the semantics).
  obs::Profile profile;
  std::size_t profiled_records = 0;

  EventRollup events;
};

// Folds `records` into an Aggregate (moves them in).
Aggregate aggregate_records(std::vector<RunRecord> records);

// Ingests one JSONL event-log document (one JSON object per line) into the
// aggregate's event roll-up. Blank lines are skipped; unparseable lines
// are counted, not fatal.
void ingest_event_jsonl(Aggregate& aggregate, std::string_view text);

// Flat metric name → value view of the aggregate, the regression gate's
// input: matrix.*, determinant.<key>.failures, counter.<name>, and
// hist.<name>.{count,mean,p50,p90,p99,max}.
std::map<std::string, double> flatten_metrics(const Aggregate& aggregate);

// Text renderings (support::TextTable based, CLI output).
std::string render_readiness_matrix(const Aggregate& aggregate);
std::string render_latency_table(const Aggregate& aggregate);
std::string render_counter_table(const Aggregate& aggregate);
std::string render_report_text(const Aggregate& aggregate);

}  // namespace feam::report
