// The trend gate: regression detection over a run's *steady state*, not
// just its endpoint totals. A timeseries stream is split into warmup +
// steady windows, the steady windows into an early and a late group, and
// each baseline metric is evaluated on both groups — so slow drift (p99
// creeping up, a hit rate decaying as the run ages) fails CI even when
// the whole-run aggregates still look healthy.
//
// Baseline schema (feam.trend_baseline/1):
//   {"schema": "feam.trend_baseline/1",
//    "steady_state": {"skip_head_fraction": 0.25, "min_samples": 8},
//    "metrics": {
//      "hist.phase.target_ns.p99":  {"max_drift": 1.0},
//      "hitrate.bdc.cache":         {"max_drop": 0.2, "min_late": 0.4},
//      "rate.phase.target_runs":    {"max_drop": 0.5}}}
//
// Metric selectors (evaluated over a group of sample windows):
//   hist.<series>.<p50|p90|p99|mean|count> — merged histogram deltas
//   rate.<series>                          — counter deltas per second
//   gauge.<series>.<mean|max|last>         — gauge level over the window's
//     carry-forward track (e.g. gauge.process.rss_bytes.mean catches
//     steady-state RSS growth that endpoint totals hide)
//   hitrate.<prefix>                       — hits/(hits+misses) where a
//     series' base name is <prefix>_hits|_misses or <prefix>.hits|.misses,
//     summed across label values (so `hitrate.cache` rolls up the whole
//     dimensional cache.hits/cache.misses family)
// Spec keys:
//   max_drift — larger-is-worse: (late-early)/early must not exceed it
//   max_drop  — larger-is-better: (early-late)/early must not exceed it
//   min_late / max_late — absolute bounds on the late-group value
// A stream with fewer than min_samples steady windows passes vacuously
// (each check reports "skipped"): short smoke runs should not flake, and
// the bench's sampled leg guarantees a long-enough stream where it
// matters.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "report/timeseries.hpp"
#include "support/json.hpp"
#include "support/result.hpp"

namespace feam::report {

inline constexpr std::string_view kTrendBaselineSchema =
    "feam.trend_baseline/1";

struct TrendCheck {
  std::string metric;
  double early = 0.0;
  double late = 0.0;
  double drift = 0.0;  // signed (late-early)/early; 0 when early == 0
  bool skipped = false;
  bool pass = true;
  std::string verdict;  // human-readable "ok ..." / "FAIL ..." line
};

struct TrendGateResult {
  bool pass = true;
  std::size_t steady_samples = 0;
  std::vector<TrendCheck> checks;

  std::size_t failures() const;
  std::string render() const;
};

// Applies the baseline to the stream; fails on a malformed baseline
// document or an unknown metric selector.
support::Result<TrendGateResult> run_trend_gate(const Timeseries& series,
                                                const support::Json& baseline);

// Flattened view for bench records: trend.<metric>.{early,late,drift} per
// evaluated check, plus trend.pass / trend.steady_samples.
std::map<std::string, double> trend_metrics(const TrendGateResult& result);

}  // namespace feam::report
