#include "report/run_record.hpp"

#include <algorithm>
#include <unordered_map>

namespace feam::report {

namespace {

using support::Json;

std::optional<DeterminantKind> kind_for_key(std::string_view key) {
  if (key == "isa") return DeterminantKind::kIsa;
  if (key == "c_library") return DeterminantKind::kCLibrary;
  if (key == "mpi_stack") return DeterminantKind::kMpiStack;
  if (key == "shared_libraries") return DeterminantKind::kSharedLibraries;
  return std::nullopt;
}

}  // namespace

const char* determinant_key(DeterminantKind kind) {
  return determinant_slug(kind);  // one vocabulary: records match provenance
}

std::string RunRecord::blocking_determinant() const {
  if (!has_prediction || ready) return "";
  for (const auto& d : determinants) {
    if (d.evaluated && !d.compatible) return d.key;
  }
  return "?";
}

std::uint64_t RunRecord::span_duration_ns(std::string_view name) const {
  for (const auto& span : spans) {
    if (span.name == name) return span.duration_ns;
  }
  return 0;
}

support::Json RunRecord::to_json() const {
  Json out;
  out.set("schema", schema);
  out.set("command", command);
  out.set("binary", binary);
  out.set("source_site", source_site);
  out.set("target_site", target_site);
  out.set("mode", mode);
  out.set("exit_code", exit_code);
  out.set("has_prediction", has_prediction);
  out.set("ready", ready);

  Json::Array dets;
  for (const auto& d : determinants) {
    Json det;
    det.set("key", d.key);
    det.set("evaluated", d.evaluated);
    det.set("compatible", d.compatible);
    det.set("detail", d.detail);
    dets.push_back(std::move(det));
  }
  out.set("determinants", Json(std::move(dets)));
  out.set("missing_libraries", missing_libraries);
  out.set("resolved_libraries", resolved_libraries);
  out.set("unresolved_libraries", unresolved_libraries);
  out.set("bundle_bytes", bundle_bytes);

  Json::Array span_array;
  for (const auto& span : spans) {
    Json s;
    s.set("id", span.id);
    s.set("parent_id", span.parent_id);
    s.set("name", span.name);
    s.set("start_ns", span.start_ns);
    s.set("dur_ns", span.duration_ns);
    s.set("tid", span.tid);
    // Additive: absent on untracked runs so old records stay byte-equal.
    if (span.alloc_count != 0) {
      s.set("alloc_bytes", span.alloc_bytes);
      s.set("alloc_count", span.alloc_count);
    }
    span_array.push_back(std::move(s));
  }
  out.set("spans", Json(std::move(span_array)));

  if (profile) out.set("profile", profile->to_json());
  // Additive: absent when no evidence was recorded (older builds, or runs
  // without a prediction), keeping pre-provenance records byte-equal.
  if (!provenance.empty()) out.set("provenance", provenance.to_json());

  Json counter_obj{Json::Object{}};
  for (const auto& [name, value] : counters) counter_obj.set(name, value);
  out.set("counters", std::move(counter_obj));

  Json histogram_obj{Json::Object{}};
  for (const auto& [name, snapshot] : histograms) {
    histogram_obj.set(name, snapshot.to_json());
  }
  out.set("histograms", std::move(histogram_obj));
  return out;
}

std::optional<RunRecord> RunRecord::from_json(const support::Json& j) {
  if (!j.is_object()) return std::nullopt;
  if (j.get_string("schema") != kRunRecordSchema) return std::nullopt;
  RunRecord r;
  r.command = j.get_string("command");
  r.binary = j.get_string("binary");
  r.source_site = j.get_string("source_site");
  r.target_site = j.get_string("target_site");
  r.mode = j.get_string("mode");
  r.exit_code = static_cast<int>(j.get_int("exit_code"));
  r.has_prediction = j.get_bool("has_prediction");
  r.ready = j.get_bool("ready");

  if (j["determinants"].is_array()) {
    for (const auto& det : j["determinants"].as_array()) {
      DeterminantVerdict v;
      v.key = det.get_string("key");
      if (!kind_for_key(v.key)) return std::nullopt;
      v.evaluated = det.get_bool("evaluated");
      v.compatible = det.get_bool("compatible");
      v.detail = det.get_string("detail");
      r.determinants.push_back(std::move(v));
    }
  }
  r.missing_libraries =
      static_cast<std::uint64_t>(j.get_int("missing_libraries"));
  r.resolved_libraries =
      static_cast<std::uint64_t>(j.get_int("resolved_libraries"));
  r.unresolved_libraries =
      static_cast<std::uint64_t>(j.get_int("unresolved_libraries"));
  r.bundle_bytes = static_cast<std::uint64_t>(j.get_int("bundle_bytes"));

  if (j["spans"].is_array()) {
    for (const auto& s : j["spans"].as_array()) {
      SpanSummary span;
      span.id = static_cast<std::uint64_t>(s.get_int("id"));
      span.parent_id = static_cast<std::uint64_t>(s.get_int("parent_id"));
      span.name = s.get_string("name");
      span.start_ns = static_cast<std::uint64_t>(s.get_int("start_ns"));
      span.duration_ns = static_cast<std::uint64_t>(s.get_int("dur_ns"));
      span.tid = static_cast<int>(s.get_int("tid"));
      span.alloc_bytes = static_cast<std::uint64_t>(s.get_int("alloc_bytes"));
      span.alloc_count = static_cast<std::uint64_t>(s.get_int("alloc_count"));
      if (span.name.empty()) return std::nullopt;
      r.spans.push_back(std::move(span));
    }
  }
  if (j["profile"].is_object()) {
    auto profile = obs::Profile::from_json(j["profile"]);
    if (!profile) return std::nullopt;
    r.profile = std::move(*profile);
  }
  if (j["provenance"].is_object()) {
    auto provenance = obs::EvidenceSet::from_json(j["provenance"]);
    if (!provenance) return std::nullopt;
    r.provenance = std::move(*provenance);
  }
  if (j["counters"].is_object()) {
    for (const auto& [name, value] : j["counters"].as_object()) {
      if (!value.is_number()) return std::nullopt;
      r.counters[name] = static_cast<std::uint64_t>(value.as_number());
    }
  }
  if (j["histograms"].is_object()) {
    for (const auto& [name, value] : j["histograms"].as_object()) {
      auto snapshot = obs::HistogramSnapshot::from_json(value);
      if (!snapshot) return std::nullopt;
      r.histograms[name] = *snapshot;
    }
  }
  return r;
}

std::vector<std::string> RunRecord::validate() const {
  std::vector<std::string> issues;
  if (schema != kRunRecordSchema) issues.push_back("unknown schema: " + schema);
  if (command.empty()) issues.push_back("command is empty");
  if (has_prediction && determinants.empty()) {
    issues.push_back("prediction present but no determinant verdicts");
  }

  std::unordered_map<std::uint64_t, const SpanSummary*> by_id;
  for (const auto& span : spans) {
    if (span.id == 0) issues.push_back("span '" + span.name + "' has id 0");
    by_id[span.id] = &span;
  }
  std::unordered_map<std::uint64_t, std::uint64_t> child_duration;
  for (const auto& span : spans) {
    if (span.parent_id != 0 && !by_id.count(span.parent_id)) {
      issues.push_back("span '" + span.name + "' has unknown parent " +
                       std::to_string(span.parent_id));
      continue;
    }
    child_duration[span.parent_id] += span.duration_ns;
  }
  // On a monotonic clock a parent span covers all its direct children, so
  // the parent's duration bounds the children's sum.
  for (const auto& span : spans) {
    const auto it = child_duration.find(span.id);
    if (it != child_duration.end() && it->second > span.duration_ns) {
      issues.push_back("span '" + span.name + "' duration " +
                       std::to_string(span.duration_ns) +
                       "ns is less than its children's " +
                       std::to_string(it->second) + "ns");
    }
  }
  for (const auto& [name, snapshot] : histograms) {
    if (!snapshot.empty() && snapshot.min() > snapshot.max) {
      issues.push_back("histogram '" + name + "' has min > max");
    }
  }
  for (auto& issue : provenance.validate()) {
    issues.push_back("provenance: " + issue);
  }
  if (profile) {
    if (profile->span_count != spans.size()) {
      issues.push_back("profile covers " +
                       std::to_string(profile->span_count) +
                       " spans but the record has " +
                       std::to_string(spans.size()));
    }
    // Self times partition each thread's busy time (see obs/profile.hpp).
    for (const auto& thread : profile->threads) {
      if (thread.self_ns != thread.busy_ns) {
        issues.push_back("profile thread " + std::to_string(thread.tid) +
                         " self " + std::to_string(thread.self_ns) +
                         "ns != busy " + std::to_string(thread.busy_ns) +
                         "ns");
      }
    }
  }
  return issues;
}

RunRecord assemble_run_record(const RunContext& context,
                              const std::vector<obs::SpanRecord>& spans,
                              const obs::Registry& registry, int exit_code) {
  RunRecord r;
  r.command = context.command;
  r.binary = context.binary;
  r.source_site = context.source_site;
  r.target_site = context.target_site;
  r.mode = context.mode;
  r.bundle_bytes = context.bundle_bytes;
  r.exit_code = exit_code;

  if (context.prediction) {
    r.has_prediction = true;
    r.ready = context.prediction->ready;
    for (const auto& d : context.prediction->determinants) {
      r.determinants.push_back({determinant_key(d.kind), d.evaluated,
                                d.compatible, d.detail});
    }
    r.missing_libraries = context.prediction->missing_libraries.size();
    r.resolved_libraries = context.prediction->resolved_libraries.size();
    r.unresolved_libraries = context.prediction->unresolved_libraries.size();
    r.provenance = context.prediction->provenance;
  }

  r.spans.reserve(spans.size());
  for (const auto& span : spans) {
    r.spans.push_back({span.id, span.parent_id, span.name, span.start_ns,
                       span.duration_ns(), span.tid, span.alloc_bytes,
                       span.alloc_count});
  }
  std::sort(r.spans.begin(), r.spans.end(),
            [](const SpanSummary& a, const SpanSummary& b) {
              return a.start_ns < b.start_ns;
            });
  if (!spans.empty()) r.profile = obs::build_profile(spans);
  r.counters = registry.counter_values();
  r.histograms = registry.histogram_snapshots();
  return r;
}

std::vector<obs::ProfileSpan> to_profile_spans(const RunRecord& record) {
  std::vector<obs::ProfileSpan> spans;
  spans.reserve(record.spans.size());
  for (const auto& span : record.spans) {
    spans.push_back({span.id, span.parent_id, span.name, span.start_ns,
                     span.start_ns + span.duration_ns, span.tid,
                     span.alloc_bytes, span.alloc_count});
  }
  return spans;
}

}  // namespace feam::report
