// The benchmark regression gate: diff an aggregate's flattened metrics
// against a checked-in baseline with per-metric tolerances, and emit the
// repo's bench-trajectory record (BENCH_N.json).
//
// Baseline schema (feam.report_baseline/1):
//   {"schema": "feam.report_baseline/1",
//    "metrics": {
//      "matrix.ready":            {"value": 38, "rel_tol": 0},
//      "hist.phase.target_ns.p99": {"max": 2000000000},
//      "counter.tec.determinant_checks": {"value": 280, "abs_tol": 4}}}
//
// A metric spec either pins a value (fail when |measured - value| exceeds
// max(rel_tol * |value|, abs_tol)) or bounds it ("max" / "min" ceilings
// for latencies, which vary across hardware). A baseline metric missing
// from the measurement is itself a regression.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "report/aggregate.hpp"
#include "support/json.hpp"
#include "support/result.hpp"

namespace feam::report {

inline constexpr std::string_view kBaselineSchema = "feam.report_baseline/1";
inline constexpr std::string_view kBenchSchema = "feam.bench/1";

struct MetricCheck {
  std::string name;
  double measured = 0.0;
  bool have_measured = false;
  bool pass = false;
  std::string verdict;  // human-readable "ok ..." / "FAIL ..." line
};

struct GateResult {
  bool pass = true;
  std::vector<MetricCheck> checks;

  std::size_t failures() const;
  // One line per check plus a PASS/FAIL summary.
  std::string render() const;
};

// Parses and applies the baseline to the measured metrics; fails on a
// malformed baseline document.
support::Result<GateResult> run_gate(
    const std::map<std::string, double>& measured,
    const support::Json& baseline);

// The repo's bench-trajectory record (schema feam.bench/1): every flat
// metric plus the gate outcome, written as BENCH_<pr>.json.
support::Json bench_record(const std::map<std::string, double>& measured,
                           const GateResult* gate, int pr_number,
                           const std::string& suite = "feam report matrix");

}  // namespace feam::report
