// Reader side of the `feam.timeseries/1` stream (see obs/timeseries.hpp
// for the producer and the line schema): parsing, incremental tailing,
// windowed aggregation, and the delta/total consistency check. Pure
// data-in/data-out — `feam top`, `feam report`, the trend gate, and the
// bench's sampled leg all consume streams through this one module.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace feam::report {

inline constexpr std::string_view kTimeseriesSchema = "feam.timeseries/1";

struct TimeseriesSample {
  std::uint64_t seq = 0;
  std::uint64_t t_ns = 0;
  std::uint64_t dt_ns = 0;
  bool final_sample = false;
  // Window deltas and running totals per encoded series name. Sample
  // lines omit unchanged series; the final line carries every series.
  std::map<std::string, std::uint64_t> counter_deltas;
  std::map<std::string, std::uint64_t> counter_totals;
  std::map<std::string, obs::HistogramSnapshot> hist_deltas;
  std::map<std::string, std::uint64_t> hist_totals;  // cumulative counts
  // Gauge levels as of this sample. The producer only writes a gauge when
  // it changed (plus the final line), so absence means "carry the previous
  // value forward" — use Timeseries::gauge_track for the filled-in view.
  std::map<std::string, obs::GaugeValue> gauges;
};

struct Timeseries {
  bool saw_meta = false;
  bool saw_final = false;
  std::uint64_t interval_ms = 0;
  std::uint64_t meta_t_ns = 0;
  std::string source;
  std::vector<TimeseriesSample> samples;
  std::size_t malformed_lines = 0;

  bool empty() const { return samples.empty(); }
  // Last sample time minus the meta line's anchor (0 without both).
  std::uint64_t duration_ns() const;

  // Ingests one line (no trailing newline needed). Unknown schemas and
  // syntax errors count as malformed; parse_timeseries and
  // TimeseriesTail both funnel through here.
  void feed_line(std::string_view line);

  // Sum of counter deltas for `series` over sample indices [from, to).
  std::uint64_t counter_delta_sum(std::string_view series, std::size_t from,
                                  std::size_t to) const;
  // Merged histogram deltas for `series` over [from, to): percentiles on
  // the result are the windowed percentiles of that span of the run.
  obs::HistogramSnapshot merged_histogram(std::string_view series,
                                          std::size_t from,
                                          std::size_t to) const;
  // Wall time covered by samples [from, to), in seconds.
  double span_seconds(std::size_t from, std::size_t to) const;

  // Merged histogram deltas over [from, to) for every series whose name is
  // `base` or a labeled variant "base{...}" — the windowed distribution
  // across all label combinations of one metric. Sums labeled and
  // unlabeled variants, so pass a base that is recorded one way or the
  // other, not both (the producer records both; callers that want "all
  // sites of phase.target_ns" should merge only the labeled variants —
  // see include_unlabeled).
  obs::HistogramSnapshot merged_histogram_base(std::string_view base,
                                               std::size_t from,
                                               std::size_t to,
                                               bool include_unlabeled) const;

  // Gauge level per sample with carry-forward applied: element i is the
  // last value reported at or before sample i ({0,0} before the first
  // report). Size equals samples.size().
  std::vector<obs::GaugeValue> gauge_track(std::string_view series) const;

  // Running totals as of the last sample mentioning each series.
  std::map<std::string, std::uint64_t> final_counter_totals() const;
  std::map<std::string, std::uint64_t> final_histogram_counts() const;
  // Last reported level per gauge (carry-forward endpoint).
  std::map<std::string, obs::GaugeValue> final_gauge_values() const;

  // The stream's core invariant: per series, the deltas must telescope
  // exactly to the last reported total (counters and histogram counts
  // alike). Returns one message per violated series; empty == consistent.
  std::vector<std::string> consistency_issues() const;
};

// Per-cache hit/miss roll-up over a sample range, keyed by the `cache`
// label of the dimensional `cache.hits` / `cache.misses` series (summed
// across sites). The zero-label legacy counters are not consulted.
struct CacheWindow {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  double rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};
std::map<std::string, CacheWindow> cache_windows(const Timeseries& series,
                                                 std::size_t from,
                                                 std::size_t to);

// True when the first non-blank line carries the feam.timeseries/1
// schema — how `feam report` tells a timeseries .jsonl from an event log.
bool looks_like_timeseries(std::string_view text);

// Whole-document parse. A trailing line without '\n' is assumed to be a
// concurrent writer's partial line and ignored (not malformed).
Timeseries parse_timeseries(std::string_view text);

// Incremental parser for tailing a growing file: feed appended bytes as
// they arrive; complete lines are folded into series() immediately and a
// trailing partial line is buffered until its newline shows up.
class TimeseriesTail {
 public:
  // Folds `bytes` in; returns the number of complete lines consumed.
  std::size_t feed(std::string_view bytes);

  const Timeseries& series() const { return series_; }

 private:
  Timeseries series_;
  std::string pending_;
};

}  // namespace feam::report
