// RunRecord: the versioned, self-contained JSON record of one migration
// attempt — the unit the aggregation layer works on. One CLI invocation
// with --run-record-out writes one RunRecord assembled from the live obs
// state (span tree, counters, histogram snapshots) plus the phase outcome
// (site pair, per-determinant verdicts, resolution counts, bundle size).
// `feam report` ingests a directory of these and answers fleet-level
// questions: which binaries run where, what blocks them, and how long
// each phase takes across runs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "feam/tec.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "support/json.hpp"

namespace feam::report {

inline constexpr std::string_view kRunRecordSchema = "feam.run_record/1";

// Short stable key for a determinant ("isa", "c_library", "mpi_stack",
// "shared_libraries") — matches the tec.determinant.* span names.
const char* determinant_key(DeterminantKind kind);

struct DeterminantVerdict {
  std::string key;  // determinant_key() value
  bool evaluated = false;
  bool compatible = false;
  std::string detail;
};

// A finished span, flattened for serialization (ids are per-process but
// self-consistent within one record).
struct SpanSummary {
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  // 0 for roots
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  int tid = 0;  // small per-process thread ordinal (additive in schema /1)
  // Self-allocated bytes/count from the tracking allocator (additive in
  // schema /1; 0 and omitted from JSON when the run was untracked).
  std::uint64_t alloc_bytes = 0;
  std::uint64_t alloc_count = 0;
};

struct RunRecord {
  std::string schema{kRunRecordSchema};
  std::string command;      // CLI subcommand ("target", "exec", ...)
  std::string binary;       // binary basename
  std::string source_site;  // guaranteed environment; "" when unknown
  std::string target_site;  // "" for source-only records
  std::string mode;         // "basic" | "extended" | ""
  int exit_code = 0;

  bool has_prediction = false;
  bool ready = false;
  std::vector<DeterminantVerdict> determinants;
  std::uint64_t missing_libraries = 0;
  std::uint64_t resolved_libraries = 0;
  std::uint64_t unresolved_libraries = 0;
  std::uint64_t bundle_bytes = 0;

  std::vector<SpanSummary> spans;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, obs::HistogramSnapshot> histograms;

  // Evidence consulted to reach the verdict (obs/provenance.hpp), copied
  // from the prediction. Additive in schema /1: serialized only when
  // non-empty, so records from builds without provenance stay byte-equal.
  obs::EvidenceSet provenance;

  // Self-time / critical-path profile of `spans`, added to schema /1
  // additively (absent in records written by older builds). The flame tree
  // is not serialized; rebuild it from the spans when needed.
  std::optional<obs::Profile> profile;

  // The blocking determinant's key for a not-ready prediction ("" when
  // ready, "?" when nothing was evaluated incompatible).
  std::string blocking_determinant() const;

  // Total duration of the named span (first occurrence), 0 when absent.
  std::uint64_t span_duration_ns(std::string_view name) const;

  support::Json to_json() const;
  static std::optional<RunRecord> from_json(const support::Json& j);

  // Internal-consistency issues (empty when the record is well-formed):
  // schema/command present, durations finite, every span parent exists,
  // and each parent's duration covers the sum of its direct children.
  std::vector<std::string> validate() const;
};

// What the CLI layer knows about the run it just performed; everything
// observability-shaped is pulled from the obs collector and registry.
struct RunContext {
  std::string command;
  std::string binary;
  std::string source_site;
  std::string target_site;
  std::string mode;
  std::uint64_t bundle_bytes = 0;
  std::optional<Prediction> prediction;
};

// Builds the record for a finished command from the live obs state.
RunRecord assemble_run_record(const RunContext& context,
                              const std::vector<obs::SpanRecord>& spans,
                              const obs::Registry& registry, int exit_code);

// The record's span tree as profiling input (for rebuilding the profile
// or its flame tree from a deserialized record).
std::vector<obs::ProfileSpan> to_profile_spans(const RunRecord& record);

}  // namespace feam::report
