#include "report/timeseries.hpp"

#include <algorithm>

#include "support/json.hpp"

namespace feam::report {

namespace {

std::string_view strip_cr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

bool is_blank(std::string_view line) {
  return line.find_first_not_of(" \t\r") == std::string_view::npos;
}

}  // namespace

std::uint64_t Timeseries::duration_ns() const {
  if (!saw_meta || samples.empty()) return 0;
  const std::uint64_t last = samples.back().t_ns;
  return last >= meta_t_ns ? last - meta_t_ns : 0;
}

void Timeseries::feed_line(std::string_view line) {
  line = strip_cr(line);
  if (is_blank(line)) return;
  const auto parsed = support::Json::parse(line);
  if (!parsed || !parsed->is_object() ||
      parsed->get_string("schema") != kTimeseriesSchema) {
    ++malformed_lines;
    return;
  }
  const std::string type = parsed->get_string("type");
  if (type == "meta") {
    saw_meta = true;
    interval_ms = static_cast<std::uint64_t>(parsed->get_int("interval_ms"));
    meta_t_ns = static_cast<std::uint64_t>(parsed->get_int("t_ns"));
    source = parsed->get_string("source");
    return;
  }
  if (type != "sample") {
    ++malformed_lines;
    return;
  }
  TimeseriesSample sample;
  sample.seq = static_cast<std::uint64_t>(parsed->get_int("seq"));
  sample.t_ns = static_cast<std::uint64_t>(parsed->get_int("t_ns"));
  sample.dt_ns = static_cast<std::uint64_t>(parsed->get_int("dt_ns"));
  sample.final_sample = parsed->get_bool("final");
  const auto& counters = (*parsed)["counters"];
  if (counters.is_object()) {
    for (const auto& [name, entry] : counters.as_object()) {
      if (!entry.is_object()) continue;
      sample.counter_deltas[name] =
          static_cast<std::uint64_t>(entry.get_int("d"));
      sample.counter_totals[name] =
          static_cast<std::uint64_t>(entry.get_int("t"));
    }
  }
  const auto& histograms = (*parsed)["histograms"];
  if (histograms.is_object()) {
    for (const auto& [name, entry] : histograms.as_object()) {
      if (!entry.is_object()) continue;
      auto snapshot = obs::HistogramSnapshot::from_json(entry["d"]);
      if (!snapshot) {
        ++malformed_lines;
        continue;
      }
      sample.hist_deltas[name] = *snapshot;
      sample.hist_totals[name] =
          static_cast<std::uint64_t>(entry.get_int("t"));
    }
  }
  const auto& gauges = (*parsed)["gauges"];
  if (gauges.is_object()) {
    for (const auto& [name, entry] : gauges.as_object()) {
      if (!entry.is_object()) continue;
      obs::GaugeValue value;
      value.value = static_cast<std::uint64_t>(entry.get_int("v"));
      value.peak = static_cast<std::uint64_t>(entry.get_int("p"));
      sample.gauges[name] = value;
    }
  }
  samples.push_back(std::move(sample));
  if (samples.back().final_sample) saw_final = true;
}

std::uint64_t Timeseries::counter_delta_sum(std::string_view series,
                                            std::size_t from,
                                            std::size_t to) const {
  to = std::min(to, samples.size());
  std::uint64_t sum = 0;
  for (std::size_t i = from; i < to; ++i) {
    const auto it = samples[i].counter_deltas.find(std::string(series));
    if (it != samples[i].counter_deltas.end()) sum += it->second;
  }
  return sum;
}

obs::HistogramSnapshot Timeseries::merged_histogram(std::string_view series,
                                                    std::size_t from,
                                                    std::size_t to) const {
  to = std::min(to, samples.size());
  obs::HistogramSnapshot merged;
  for (std::size_t i = from; i < to; ++i) {
    const auto it = samples[i].hist_deltas.find(std::string(series));
    if (it != samples[i].hist_deltas.end()) merged.merge(it->second);
  }
  return merged;
}

obs::HistogramSnapshot Timeseries::merged_histogram_base(
    std::string_view base, std::size_t from, std::size_t to,
    bool include_unlabeled) const {
  to = std::min(to, samples.size());
  const std::string labeled_prefix = std::string(base) + "{";
  obs::HistogramSnapshot merged;
  for (std::size_t i = from; i < to; ++i) {
    for (const auto& [name, delta] : samples[i].hist_deltas) {
      const bool unlabeled = name == base;
      if (unlabeled && !include_unlabeled) continue;
      if (!unlabeled && name.compare(0, labeled_prefix.size(),
                                     labeled_prefix) != 0) {
        continue;
      }
      merged.merge(delta);
    }
  }
  return merged;
}

std::vector<obs::GaugeValue> Timeseries::gauge_track(
    std::string_view series) const {
  std::vector<obs::GaugeValue> track;
  track.reserve(samples.size());
  obs::GaugeValue current;
  const std::string key(series);
  for (const auto& sample : samples) {
    const auto it = sample.gauges.find(key);
    if (it != sample.gauges.end()) current = it->second;
    track.push_back(current);
  }
  return track;
}

double Timeseries::span_seconds(std::size_t from, std::size_t to) const {
  to = std::min(to, samples.size());
  std::uint64_t span_ns = 0;
  for (std::size_t i = from; i < to; ++i) span_ns += samples[i].dt_ns;
  return static_cast<double>(span_ns) / 1e9;
}

std::map<std::string, std::uint64_t> Timeseries::final_counter_totals() const {
  std::map<std::string, std::uint64_t> totals;
  for (const auto& sample : samples) {
    for (const auto& [name, total] : sample.counter_totals) {
      totals[name] = total;
    }
  }
  return totals;
}

std::map<std::string, std::uint64_t> Timeseries::final_histogram_counts()
    const {
  std::map<std::string, std::uint64_t> totals;
  for (const auto& sample : samples) {
    for (const auto& [name, total] : sample.hist_totals) totals[name] = total;
  }
  return totals;
}

std::map<std::string, obs::GaugeValue> Timeseries::final_gauge_values() const {
  std::map<std::string, obs::GaugeValue> values;
  for (const auto& sample : samples) {
    for (const auto& [name, value] : sample.gauges) values[name] = value;
  }
  return values;
}

std::vector<std::string> Timeseries::consistency_issues() const {
  std::vector<std::string> issues;
  std::map<std::string, std::uint64_t> counter_sums;
  std::map<std::string, std::uint64_t> hist_sums;
  for (const auto& sample : samples) {
    for (const auto& [name, delta] : sample.counter_deltas) {
      counter_sums[name] += delta;
    }
    for (const auto& [name, delta] : sample.hist_deltas) {
      hist_sums[name] += delta.count;
    }
  }
  for (const auto& [name, total] : final_counter_totals()) {
    const std::uint64_t sum = counter_sums[name];
    if (sum != total) {
      issues.push_back("counter " + name + ": sum of deltas " +
                       std::to_string(sum) + " != final total " +
                       std::to_string(total));
    }
  }
  for (const auto& [name, total] : final_histogram_counts()) {
    const std::uint64_t sum = hist_sums[name];
    if (sum != total) {
      issues.push_back("histogram " + name + ": sum of delta counts " +
                       std::to_string(sum) + " != final count " +
                       std::to_string(total));
    }
  }
  // Gauges are levels, not tallies; their invariants are peak >= value in
  // every report and peaks never regressing across the stream.
  std::map<std::string, std::uint64_t> peak_seen;
  for (const auto& sample : samples) {
    for (const auto& [name, value] : sample.gauges) {
      if (value.peak < value.value) {
        issues.push_back("gauge " + name + ": peak " +
                         std::to_string(value.peak) + " < value " +
                         std::to_string(value.value));
      }
      auto [it, fresh] = peak_seen.emplace(name, value.peak);
      if (!fresh) {
        if (value.peak < it->second) {
          issues.push_back("gauge " + name + ": peak regressed from " +
                           std::to_string(it->second) + " to " +
                           std::to_string(value.peak));
        }
        it->second = std::max(it->second, value.peak);
      }
    }
  }
  return issues;
}

std::map<std::string, CacheWindow> cache_windows(const Timeseries& series,
                                                 std::size_t from,
                                                 std::size_t to) {
  to = std::min(to, series.samples.size());
  std::map<std::string, CacheWindow> out;
  for (std::size_t i = from; i < to; ++i) {
    for (const auto& [name, delta] : series.samples[i].counter_deltas) {
      if (name.compare(0, 11, "cache.hits{") != 0 &&
          name.compare(0, 13, "cache.misses{") != 0) {
        continue;
      }
      const obs::SeriesKey key = obs::parse_series(name);
      if (key.cache.empty()) continue;
      if (key.name == "cache.hits") out[key.cache].hits += delta;
      else if (key.name == "cache.misses") out[key.cache].misses += delta;
    }
  }
  return out;
}

bool looks_like_timeseries(std::string_view text) {
  while (!text.empty()) {
    const auto eol = text.find('\n');
    const std::string_view line =
        eol == std::string_view::npos ? text : text.substr(0, eol);
    text = eol == std::string_view::npos ? std::string_view{}
                                         : text.substr(eol + 1);
    if (is_blank(strip_cr(line))) continue;
    const auto parsed = support::Json::parse(strip_cr(line));
    return parsed && parsed->is_object() &&
           parsed->get_string("schema") == kTimeseriesSchema;
  }
  return false;
}

Timeseries parse_timeseries(std::string_view text) {
  TimeseriesTail tail;
  tail.feed(text);
  return tail.series();
}

std::size_t TimeseriesTail::feed(std::string_view bytes) {
  pending_.append(bytes.data(), bytes.size());
  std::size_t consumed = 0;
  std::size_t start = 0;
  while (true) {
    const auto eol = pending_.find('\n', start);
    if (eol == std::string::npos) break;
    series_.feed_line(
        std::string_view(pending_).substr(start, eol - start));
    start = eol + 1;
    ++consumed;
  }
  pending_.erase(0, start);
  return consumed;
}

}  // namespace feam::report
