#include "report/html.hpp"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>

#include "obs/profile.hpp"
#include "support/strings.hpp"

namespace feam::report {

namespace {

std::string html_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string format_ns(double ns) {
  char buf[32];
  if (ns < 10'000.0) {
    std::snprintf(buf, sizeof buf, "%.0fns", ns);
  } else if (ns < 10'000'000.0) {
    std::snprintf(buf, sizeof buf, "%.1f&micro;s", ns / 1'000.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fms", ns / 1'000'000.0);
  }
  return buf;
}

// The embedded data island feeds the span-waterfall. "</" must not appear
// inside a <script> element, so the dump is split as "<\/".
std::string script_safe_json(const support::Json& j) {
  std::string text = j.dump();
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '<' && i + 1 < text.size() && text[i + 1] == '/') {
      out += "<\\/";
      ++i;
    } else {
      out += text[i];
    }
  }
  return out;
}

support::Json waterfall_data(const Aggregate& aggregate) {
  support::Json::Array runs;
  for (const auto& record : aggregate.records) {
    if (record.spans.empty()) continue;
    support::Json run;
    std::string label = record.binary.empty() ? "(unknown)" : record.binary;
    if (!record.target_site.empty()) label += " @ " + record.target_site;
    label += " [" + record.command + "]";
    run.set("label", label);
    run.set("exit_code", record.exit_code);
    support::Json::Array spans;
    for (const auto& span : record.spans) {
      support::Json s;
      s.set("id", static_cast<double>(span.id));
      s.set("parent", static_cast<double>(span.parent_id));
      s.set("name", span.name);
      s.set("start", static_cast<double>(span.start_ns));
      s.set("dur", static_cast<double>(span.duration_ns));
      spans.push_back(std::move(s));
    }
    run.set("spans", support::Json(std::move(spans)));
    runs.push_back(std::move(run));
  }
  support::Json data;
  data.set("runs", support::Json(std::move(runs)));
  return data;
}

void append_stat_tile(std::string& out, std::string_view label,
                      std::string_view value) {
  out += "<div class=\"tile\"><div class=\"tile-value\">";
  out += html_escape(value);
  out += "</div><div class=\"tile-label\">";
  out += html_escape(label);
  out += "</div></div>\n";
}

void append_matrix(std::string& out, const Aggregate& aggregate) {
  out += "<section><h2>Readiness matrix</h2>\n";
  out += "<p class=\"note\">Rows are binaries, columns are target sites. "
         "Blocked cells name the failing determinant; READY+n resolved n "
         "library copies from the bundle.</p>\n";
  out += "<table class=\"matrix\"><thead><tr><th>Binary</th>";
  for (const auto& site : aggregate.sites) {
    out += "<th>" + html_escape(site) + "</th>";
  }
  out += "</tr></thead><tbody>\n";
  for (const auto& [binary, row] : aggregate.matrix) {
    out += "<tr><th>" + html_escape(binary) + "</th>";
    for (const auto& site : aggregate.sites) {
      const auto it = row.find(site);
      if (it == row.end()) {
        out += "<td class=\"cell-none\">&ndash;</td>";
        continue;
      }
      const MatrixCell& cell = it->second;
      std::string text;
      if (cell.ready) {
        text = "READY";
        if (cell.resolved_libraries > 0) {
          text += "+" + std::to_string(cell.resolved_libraries);
        }
      } else {
        text = cell.blocking_determinant;
      }
      std::string title = binary + " @ " + site;
      if (!cell.detail.empty()) title += ": " + cell.detail;
      out += std::string("<td class=\"") +
             (cell.ready ? "cell-ready" : "cell-blocked") + "\" title=\"" +
             html_escape(title) + "\"><span class=\"dot\"></span>" +
             html_escape(text) + "</td>";
    }
    out += "</tr>\n";
  }
  out += "</tbody></table></section>\n";
  if (!aggregate.conflicts.empty()) {
    out += "<section><h2>Conflicts</h2><ul>\n";
    for (const auto& conflict : aggregate.conflicts) {
      out += "<li>" + html_escape(conflict) + "</li>\n";
    }
    out += "</ul></section>\n";
  }
}

void append_latency_bars(std::string& out, const Aggregate& aggregate) {
  double max_p99 = 0.0;
  for (const auto& [name, h] : aggregate.histograms) {
    if (h.empty()) continue;
    max_p99 = std::max(max_p99, static_cast<double>(h.percentile(0.99)));
  }
  out += "<section><h2>Latency percentiles</h2>\n";
  if (max_p99 <= 0.0) {
    out += "<p class=\"note\">No histogram data in the ingested records."
           "</p></section>\n";
    return;
  }
  out += "<p class=\"note\">Merged across all run records; bars share one "
         "scale.</p>\n";
  out += "<div class=\"legend\">"
         "<span><span class=\"swatch sw-p50\"></span>p50</span>"
         "<span><span class=\"swatch sw-p90\"></span>p90</span>"
         "<span><span class=\"swatch sw-p99\"></span>p99</span></div>\n";
  out += "<div class=\"bars\">\n";
  for (const auto& [name, h] : aggregate.histograms) {
    if (h.empty()) continue;
    const double p50 = static_cast<double>(h.percentile(0.50));
    const double p90 = static_cast<double>(h.percentile(0.90));
    const double p99 = static_cast<double>(h.percentile(0.99));
    const auto pct = [&](double v) {
      char buf[16];
      std::snprintf(buf, sizeof buf, "%.2f",
                    std::max(0.5, 100.0 * v / max_p99));
      return std::string(buf);
    };
    const bool ns = support::ends_with(name, "_ns");
    const auto value = [&](double v) {
      if (ns) return format_ns(v);
      return std::to_string(static_cast<std::uint64_t>(v));
    };
    const std::string title = html_escape(name) + ": n=" +
                              std::to_string(h.count) + " p50=" + value(p50) +
                              " p90=" + value(p90) + " p99=" + value(p99);
    out += "<div class=\"bar-row\" title=\"" + title + "\">";
    out += "<div class=\"bar-name\">" + html_escape(name) + "</div>";
    out += "<div class=\"bar-track\">";
    out += "<div class=\"bar bar-p99\" style=\"width:" + pct(p99) +
           "%\"></div>";
    out += "<div class=\"bar bar-p90\" style=\"width:" + pct(p90) +
           "%\"></div>";
    out += "<div class=\"bar bar-p50\" style=\"width:" + pct(p50) +
           "%\"></div>";
    out += "</div>";
    out += "<div class=\"bar-value\">" + value(p99) + "</div>";
    out += "</div>\n";
  }
  out += "</div></section>\n";
}

// Flamegraph + self-time panel fed by the merged profile. The SVG comes
// from obs::render_flamegraph_svg — already self-contained and escaped, so
// it embeds verbatim (no scripts, hover via <title>).
void append_profile(std::string& out, const Aggregate& aggregate) {
  if (aggregate.profiled_records == 0) return;
  const obs::Profile& profile = aggregate.profile;
  out += "<section><h2>Profile &amp; contention</h2>\n";
  out += "<p class=\"note\">Merged over " +
         std::to_string(aggregate.profiled_records) +
         " records with spans. Flame widths are aggregate thread-time "
         "(self time by stack of span names), not wall time; hover a frame "
         "for totals.</p>\n";
  out += "<div class=\"flame\">";
  // Inline SVG in HTML5 needs no namespace; dropping it keeps the
  // dashboard free of URLs entirely (standalone --svg files keep it so
  // browsers render them as image/svg+xml).
  std::string svg = obs::render_flamegraph_svg(profile.flame, "all records");
  const std::string xmlns = " xmlns=\"http://www.w3.org/2000/svg\"";
  if (const auto at = svg.find(xmlns); at != std::string::npos) {
    svg.erase(at, xmlns.size());
  }
  out += svg;
  out += "</div>\n";

  out += "<table class=\"counters\"><thead><tr><th>Span</th>"
         "<th class=\"num\">Count</th><th class=\"num\">Self</th>"
         "<th class=\"num\">Total</th></tr></thead><tbody>\n";
  std::size_t shown = 0;
  for (const auto& stat : profile.by_name) {
    if (++shown > 12) break;
    out += "<tr><td>" + html_escape(stat.name) + "</td><td class=\"num\">" +
           std::to_string(stat.count) + "</td><td class=\"num\">" +
           format_ns(static_cast<double>(stat.self_ns)) +
           "</td><td class=\"num\">" +
           format_ns(static_cast<double>(stat.total_ns)) + "</td></tr>\n";
  }
  out += "</tbody></table>\n";

  if (!profile.critical_path.empty()) {
    out += "<p class=\"note\">Critical path (longest record): ";
    bool first = true;
    for (const auto& step : profile.critical_path) {
      if (!first) out += " &rarr; ";
      first = false;
      out += html_escape(step.name) + " (" +
             format_ns(static_cast<double>(step.duration_ns)) + ")";
    }
    out += "</p>\n";
  }
  out += "</section>\n";
}

// ---- Time-series charts (inline SVG, server-side rendered) ----
//
// Everything below plots per-sample deltas from one feam.timeseries/1
// stream against elapsed run time. SVG is generated here rather than in
// the data-island JS so the charts render with scripts disabled and the
// output stays byte-deterministic for a given stream.

struct ChartSeries {
  std::string label;
  std::vector<std::pair<double, double>> points;  // (seconds, value)
};

constexpr const char* kSeriesPalette[] = {"#2a78d6", "#0ca30c", "#d03b3b",
                                          "#b38c00", "#7a4fd0", "#0a9e9e"};

std::string chart_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

// Y-axis labeling for a chart: latency (ns), rates (percent of 1.0), or
// sizes (bytes, "du -h" style).
enum class ChartUnit { kNs, kPercent, kBytes };

std::string render_line_chart(const std::vector<ChartSeries>& series,
                              ChartUnit unit) {
  constexpr double kW = 720.0, kH = 200.0;
  constexpr double kLeft = 52.0, kRight = 710.0, kTop = 12.0, kBottom = 168.0;
  double x_max = 0.0, y_max = 0.0;
  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) {
      x_max = std::max(x_max, x);
      y_max = std::max(y_max, y);
    }
  }
  if (unit == ChartUnit::kPercent) y_max = 1.0;
  if (x_max <= 0.0) x_max = 1.0;
  if (y_max <= 0.0) y_max = 1.0;
  const auto sx = [&](double x) {
    return kLeft + (kRight - kLeft) * x / x_max;
  };
  const auto sy = [&](double y) {
    return kBottom - (kBottom - kTop) * y / y_max;
  };
  const auto y_label = [&](double y) {
    if (unit == ChartUnit::kPercent) return chart_number(y * 100.0) + "%";
    if (unit == ChartUnit::kBytes) {
      return support::human_size(static_cast<std::uint64_t>(y));
    }
    return format_ns(y);
  };

  std::string svg = "<svg viewBox=\"0 0 " + chart_number(kW) + " " +
                    chart_number(kH) + "\" class=\"chart\" role=\"img\">";
  // Axes + horizontal gridlines at 0 / 50 / 100% of the y extent.
  for (double frac : {0.0, 0.5, 1.0}) {
    const double y = sy(y_max * frac);
    svg += "<line x1=\"" + chart_number(kLeft) + "\" y1=\"" +
           chart_number(y) + "\" x2=\"" + chart_number(kRight) + "\" y2=\"" +
           chart_number(y) + "\" class=\"chart-grid\"/>";
    svg += "<text x=\"" + chart_number(kLeft - 6.0) + "\" y=\"" +
           chart_number(y + 4.0) +
           "\" text-anchor=\"end\" class=\"chart-label\">" +
           html_escape(y_label(y_max * frac)) + "</text>";
  }
  svg += "<text x=\"" + chart_number(kRight) + "\" y=\"" +
         chart_number(kBottom + 16.0) +
         "\" text-anchor=\"end\" class=\"chart-label\">" +
         chart_number(x_max) + "s</text>";

  std::size_t color = 0;
  for (const auto& s : series) {
    const char* stroke =
        kSeriesPalette[color++ % (sizeof kSeriesPalette /
                                  sizeof kSeriesPalette[0])];
    if (s.points.size() < 2) continue;
    std::string polyline = "<polyline fill=\"none\" stroke=\"";
    polyline += stroke;
    polyline += "\" stroke-width=\"1.8\" points=\"";
    for (const auto& [x, y] : s.points) {
      polyline += chart_number(sx(x)) + "," + chart_number(sy(y)) + " ";
    }
    polyline += "\"><title>";
    polyline += html_escape(s.label);
    polyline += "</title></polyline>";
    svg += polyline;
  }
  svg += "</svg>";

  std::string legend = "<div class=\"legend\">";
  color = 0;
  for (const auto& s : series) {
    const char* stroke =
        kSeriesPalette[color++ % (sizeof kSeriesPalette /
                                  sizeof kSeriesPalette[0])];
    legend += "<span><span class=\"swatch\" style=\"background:";
    legend += stroke;
    legend += "\"></span>" + html_escape(s.label) + "</span>";
  }
  legend += "</div>\n";
  return legend + svg;
}

// Trailing-window smoothing: each chart point at sample i aggregates the
// deltas of samples (i-kSmooth, i] so one quiet interval doesn't drop a
// hit-rate line to zero.
constexpr std::size_t kSmooth = 5;

void append_timeseries_charts(std::string& out, const Timeseries& ts) {
  if (ts.samples.empty()) return;
  out += "<section><h2>Run timeline</h2>\n";
  out += "<p class=\"note\">Sampled every " +
         std::to_string(ts.interval_ms) + "ms over " +
         chart_number(static_cast<double>(ts.duration_ns()) / 1e9) +
         "s; each point aggregates the trailing " +
         std::to_string(kSmooth) + " samples.</p>\n";

  // Elapsed seconds at each sample.
  std::vector<double> elapsed;
  double clock = 0.0;
  for (const auto& sample : ts.samples) {
    clock += static_cast<double>(sample.dt_ns) / 1e9;
    elapsed.push_back(clock);
  }

  // Chart 1: per-cache hit rate over run time.
  std::map<std::string, ChartSeries> rates;
  for (std::size_t i = 0; i < ts.samples.size(); ++i) {
    const std::size_t from = i + 1 > kSmooth ? i + 1 - kSmooth : 0;
    for (const auto& [name, window] : cache_windows(ts, from, i + 1)) {
      if (window.hits + window.misses == 0) continue;
      auto& series = rates[name];
      series.label = name;
      series.points.emplace_back(elapsed[i], window.rate());
    }
  }
  if (!rates.empty()) {
    out += "<h2>Cache hit rate over run time</h2>\n";
    std::vector<ChartSeries> series;
    for (auto& [name, s] : rates) series.push_back(std::move(s));
    out += render_line_chart(series, ChartUnit::kPercent);
  }

  // Chart 2: windowed p99 of the busiest unlabeled *_ns histograms.
  std::map<std::string, std::uint64_t> totals;
  for (const auto& sample : ts.samples) {
    for (const auto& [name, delta] : sample.hist_deltas) {
      if (name.find('{') != std::string::npos) continue;
      if (!support::ends_with(name, "_ns")) continue;
      totals[name] += delta.count;
    }
  }
  std::vector<std::pair<std::uint64_t, std::string>> busiest;
  for (const auto& [name, count] : totals) {
    if (count > 0) busiest.emplace_back(count, name);
  }
  std::sort(busiest.rbegin(), busiest.rend());
  if (busiest.size() > 4) busiest.resize(4);
  std::sort(busiest.begin(), busiest.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  if (!busiest.empty()) {
    std::vector<ChartSeries> series;
    for (const auto& [count, name] : busiest) {
      ChartSeries s;
      s.label = name + " p99";
      for (std::size_t i = 0; i < ts.samples.size(); ++i) {
        const std::size_t from = i + 1 > kSmooth ? i + 1 - kSmooth : 0;
        const auto merged = ts.merged_histogram(name, from, i + 1);
        if (merged.count == 0) continue;
        s.points.emplace_back(
            elapsed[i], static_cast<double>(merged.percentile(0.99)));
      }
      series.push_back(std::move(s));
    }
    out += "<h2>Latency p99 over run time</h2>\n";
    out += render_line_chart(series, ChartUnit::kNs);
  }

  // Charts 3+4: memory over run time, from the stream's gauge samples
  // (carry-forward between changes). RSS and cache footprints differ by
  // orders of magnitude, so each gets its own y scale.
  const auto gauge_series = [&](std::string_view name,
                                std::string label) -> std::optional<ChartSeries> {
    const auto track = ts.gauge_track(name);
    ChartSeries s;
    s.label = std::move(label);
    bool any = false;
    for (std::size_t i = 0; i < track.size() && i < elapsed.size(); ++i) {
      s.points.emplace_back(elapsed[i], static_cast<double>(track[i].value));
      any = any || track[i].value > 0;
    }
    if (!any) return std::nullopt;
    return s;
  };
  if (auto rss = gauge_series("process.rss_bytes", "RSS")) {
    out += "<h2>Resident set size over run time</h2>\n";
    out += render_line_chart({std::move(*rss)}, ChartUnit::kBytes);
  }
  std::vector<ChartSeries> footprint_series;
  constexpr std::string_view kCachePrefix = "cache.bytes{cache=";
  for (const auto& [name, value] : ts.final_gauge_values()) {
    if (name.rfind(kCachePrefix, 0) != 0 || name.back() != '}') continue;
    if (auto s = gauge_series(
            name, name.substr(kCachePrefix.size(),
                              name.size() - kCachePrefix.size() - 1))) {
      footprint_series.push_back(std::move(*s));
    }
  }
  if (!footprint_series.empty()) {
    out += "<h2>Cache footprint over run time</h2>\n";
    out += render_line_chart(footprint_series, ChartUnit::kBytes);
  }
  out += "</section>\n";
}

void append_counters(std::string& out, const Aggregate& aggregate) {
  if (aggregate.counters.empty()) return;
  out += "<section><h2>Counter roll-up</h2>\n";
  out += "<table class=\"counters\"><thead><tr><th>Counter</th>"
         "<th class=\"num\">Total</th></tr></thead><tbody>\n";
  for (const auto& [name, value] : aggregate.counters) {
    out += "<tr><td>" + html_escape(name) + "</td><td class=\"num\">" +
           std::to_string(value) + "</td></tr>\n";
  }
  out += "</tbody></table></section>\n";
}

void append_events(std::string& out, const Aggregate& aggregate) {
  if (aggregate.events.total == 0 && aggregate.events.malformed_lines == 0) {
    return;
  }
  out += "<section><h2>Event logs</h2>\n<table class=\"counters\"><thead>"
         "<tr><th>Level</th><th class=\"num\">Events</th></tr></thead>"
         "<tbody>\n";
  for (const auto& [level, count] : aggregate.events.by_level) {
    out += "<tr><td>" + html_escape(level) + "</td><td class=\"num\">" +
           std::to_string(count) + "</td></tr>\n";
  }
  if (aggregate.events.malformed_lines > 0) {
    out += "<tr><td>(malformed lines)</td><td class=\"num\">" +
           std::to_string(aggregate.events.malformed_lines) + "</td></tr>\n";
  }
  out += "</tbody></table></section>\n";
}

constexpr const char* kStyle = R"css(
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --gridline: #e1e0d9;
  --border: rgba(11, 11, 11, 0.10);
  --status-good: #0ca30c;
  --status-critical: #d03b3b;
  --lat-p50: #256abf;
  --lat-p90: #5598e7;
  --lat-p99: #86b6ef;
  --series-1: #2a78d6;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --gridline: #2c2c2a;
    --border: rgba(255, 255, 255, 0.10);
    --lat-p50: #2a78d6;
    --lat-p90: #6da7ec;
    --lat-p99: #9ec5f4;
    --series-1: #3987e5;
  }
}
:root[data-theme="dark"] {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --page: #0d0d0d;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted: #898781;
  --gridline: #2c2c2a;
  --border: rgba(255, 255, 255, 0.10);
  --lat-p50: #2a78d6;
  --lat-p90: #6da7ec;
  --lat-p99: #9ec5f4;
  --series-1: #3987e5;
}
* { box-sizing: border-box; }
body {
  margin: 0;
  padding: 24px;
  background: var(--page);
  color: var(--text-primary);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  font-size: 14px;
  line-height: 1.45;
}
main { max-width: 1080px; margin: 0 auto; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 0 0 8px; color: var(--text-primary); }
.subtitle { color: var(--text-secondary); margin: 0 0 20px; }
.note { color: var(--text-secondary); margin: 0 0 10px; font-size: 13px; }
section {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 16px;
  margin: 0 0 16px;
}
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 0 0 16px; }
.tile {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 12px 18px;
  min-width: 120px;
}
.tile-value { font-size: 24px; font-weight: 600; }
.tile-label { color: var(--text-secondary); font-size: 12px; }
table { border-collapse: collapse; width: 100%; }
th, td {
  text-align: left;
  padding: 5px 10px;
  border-bottom: 1px solid var(--gridline);
  font-weight: normal;
}
thead th { color: var(--text-muted); font-size: 12px; }
tbody th { color: var(--text-secondary); }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.matrix td { white-space: nowrap; }
.cell-none { color: var(--text-muted); }
.dot {
  display: inline-block;
  width: 8px;
  height: 8px;
  border-radius: 50%;
  margin-right: 6px;
  vertical-align: baseline;
}
.cell-ready .dot { background: var(--status-good); }
.cell-blocked .dot { background: var(--status-critical); }
.legend {
  display: flex;
  gap: 16px;
  color: var(--text-secondary);
  font-size: 12px;
  margin: 0 0 8px;
}
.legend > span { display: inline-flex; align-items: center; gap: 6px; }
.swatch { width: 10px; height: 10px; border-radius: 2px; display: inline-block; }
.sw-p50 { background: var(--lat-p50); }
.sw-p90 { background: var(--lat-p90); }
.sw-p99 { background: var(--lat-p99); }
.bars { display: grid; grid-template-columns: max-content 1fr max-content; gap: 6px 10px; }
.bar-row { display: contents; }
.bar-name {
  color: var(--text-secondary);
  font-size: 12px;
  align-self: center;
  white-space: nowrap;
}
.bar-track { position: relative; height: 14px; align-self: center; }
.bar {
  position: absolute;
  top: 0;
  left: 0;
  height: 14px;
  border-radius: 0 4px 4px 0;
  min-width: 2px;
}
.bar-p99 { background: var(--lat-p99); }
.bar-p90 { background: var(--lat-p90); }
.bar-p50 { background: var(--lat-p50); }
.bar-value {
  color: var(--text-muted);
  font-size: 12px;
  align-self: center;
  font-variant-numeric: tabular-nums;
}
select {
  background: var(--surface-1);
  color: var(--text-primary);
  border: 1px solid var(--gridline);
  border-radius: 6px;
  padding: 4px 8px;
  font: inherit;
  margin: 0 0 12px;
  max-width: 100%;
}
.wf { display: grid; grid-template-columns: max-content 1fr; gap: 4px 10px; }
.wf-name {
  color: var(--text-secondary);
  font-size: 12px;
  align-self: center;
  white-space: nowrap;
}
.wf-track { position: relative; height: 14px; align-self: center; }
.wf-bar {
  position: absolute;
  top: 0;
  height: 14px;
  background: var(--series-1);
  border-radius: 2px;
  min-width: 2px;
}
.wf-label {
  position: absolute;
  top: -1px;
  font-size: 11px;
  color: var(--text-muted);
  white-space: nowrap;
  font-variant-numeric: tabular-nums;
}
.chart { width: 100%; height: auto; display: block; }
.chart-grid { stroke: var(--gridline); stroke-width: 1; }
.chart-label { fill: var(--text-muted); font-size: 11px; }
.flame { overflow-x: auto; margin: 0 0 12px; }
.flame svg { display: block; border: 1px solid var(--gridline); border-radius: 6px; }
footer { color: var(--text-muted); font-size: 12px; margin-top: 20px; }
)css";

constexpr const char* kScript = R"js(
(function () {
  var data = JSON.parse(document.getElementById('feam-data').textContent);
  var select = document.getElementById('run-select');
  var host = document.getElementById('waterfall');
  if (!data.runs.length) {
    select.style.display = 'none';
    host.textContent = 'No span data in the ingested run records.';
    host.className = 'note';
    return;
  }
  data.runs.forEach(function (run, i) {
    var option = document.createElement('option');
    option.value = String(i);
    option.textContent = run.label;
    select.appendChild(option);
  });
  function formatNs(ns) {
    if (ns < 1e4) return ns.toFixed(0) + 'ns';
    if (ns < 1e7) return (ns / 1e3).toFixed(1) + 'µs';
    return (ns / 1e6).toFixed(1) + 'ms';
  }
  function depthOf(byId, span) {
    var depth = 0;
    var cursor = span;
    while (cursor.parent && byId[cursor.parent] && depth < 32) {
      cursor = byId[cursor.parent];
      depth += 1;
    }
    return depth;
  }
  function render(index) {
    var run = data.runs[index];
    host.textContent = '';
    host.className = 'wf';
    var spans = run.spans.slice().sort(function (a, b) {
      return a.start - b.start || a.id - b.id;
    });
    var byId = {};
    spans.forEach(function (s) { byId[s.id] = s; });
    var t0 = Infinity, t1 = 0;
    spans.forEach(function (s) {
      t0 = Math.min(t0, s.start);
      t1 = Math.max(t1, s.start + s.dur);
    });
    var extent = Math.max(1, t1 - t0);
    spans.forEach(function (s) {
      var name = document.createElement('div');
      name.className = 'wf-name';
      name.style.paddingLeft = (depthOf(byId, s) * 14) + 'px';
      name.textContent = s.name;
      var track = document.createElement('div');
      track.className = 'wf-track';
      var bar = document.createElement('div');
      bar.className = 'wf-bar';
      var left = 100 * (s.start - t0) / extent;
      var width = Math.max(0.3, 100 * s.dur / extent);
      bar.style.left = left.toFixed(3) + '%';
      bar.style.width = Math.min(width, 100 - left).toFixed(3) + '%';
      bar.title = s.name + ': ' + formatNs(s.dur);
      var label = document.createElement('div');
      label.className = 'wf-label';
      var labelAt = left + Math.min(width, 100 - left);
      if (labelAt > 82) {
        label.style.right = (100 - left) + '%';
        label.style.paddingRight = '6px';
      } else {
        label.style.left = labelAt + '%';
        label.style.paddingLeft = '6px';
      }
      label.textContent = formatNs(s.dur);
      track.appendChild(bar);
      track.appendChild(label);
      host.appendChild(name);
      host.appendChild(track);
    });
  }
  select.addEventListener('change', function () {
    render(Number(select.value));
  });
  render(0);
})();
)js";

}  // namespace

// Verdict-churn panel: one row per flip across the ingested feam.diff/1
// artifacts, capped for page weight (the JSON artifact keeps the rest).
void append_churn(std::string& out, const std::vector<DiffResult>& diffs) {
  constexpr std::size_t kMaxRows = 50;
  std::size_t flips = 0, unattributed = 0, pairs = 0;
  for (const auto& diff : diffs) {
    flips += diff.flips.size();
    unattributed += diff.unattributed_flips();
    pairs += diff.pairs_compared;
  }
  out += "<section><h2>Verdict churn</h2>\n";
  out += "<p class=\"note\">" + std::to_string(flips) + " verdict flip" +
         (flips == 1 ? "" : "s") + " across " + std::to_string(pairs) +
         " compared pairs (" + std::to_string(diffs.size()) +
         " diff artifact" + (diffs.size() == 1 ? "" : "s") + "); " +
         std::to_string(unattributed) +
         " unattributed to drift.</p>\n";
  if (flips == 0) {
    out += "</section>\n";
    return;
  }
  out += "<table class=\"counters\"><thead><tr><th>binary</th><th>site</th>"
         "<th>verdict</th><th>attribution</th><th>evidence Δ</th></tr>"
         "</thead><tbody>\n";
  std::vector<const VerdictFlip*> all;
  all.reserve(flips);
  for (const auto& diff : diffs) {
    for (const auto& flip : diff.flips) all.push_back(&flip);
  }
  std::size_t rows = 0;
  for (const auto* flip_ptr : all) {
    const VerdictFlip& flip = *flip_ptr;
    if (rows++ >= kMaxRows) break;
    {
      out += "<tr><td>" + html_escape(flip.binary) + "</td><td>" +
             html_escape(flip.target_site) + "</td><td>";
      const auto verdict = [](bool ready, const std::string& blocking) {
        return ready ? std::string("READY")
                     : "blocked: " + (blocking.empty() ? "?" : blocking);
      };
      out += html_escape(verdict(flip.ready_a, flip.blocking_a)) + " → " +
             html_escape(verdict(flip.ready_b, flip.blocking_b));
      out += "</td><td>";
      if (flip.causes.empty()) {
        out += "<strong>unattributed</strong>";
      } else {
        std::string causes;
        for (const auto& cause : flip.causes) {
          if (!causes.empty()) causes += ", ";
          causes += "r" + std::to_string(cause.round) + " " + cause.kind;
        }
        out += html_escape(causes);
      }
      out += "</td><td>+" + std::to_string(flip.evidence_gained.size()) +
             " / −" + std::to_string(flip.evidence_lost.size()) +
             "</td></tr>\n";
    }
  }
  out += "</tbody></table>";
  if (flips > kMaxRows) {
    out += "<p class=\"note\">" + std::to_string(flips - kMaxRows) +
           " more flips in the feam.diff/1 artifact.</p>";
  }
  out += "</section>\n";
}

// Provenance roll-up: how much evidence the ingested records carry and
// which stages contributed it.
void append_provenance(std::string& out, const Aggregate& aggregate) {
  if (aggregate.provenance_records == 0) return;
  out += "<section><h2>Verdict provenance</h2>\n";
  out += "<p class=\"note\">" + std::to_string(aggregate.provenance_records) +
         " of " + std::to_string(aggregate.records.size()) +
         " records carry evidence (" +
         std::to_string(aggregate.evidence_items) + " items, " +
         std::to_string(aggregate.evidence_dropped) +
         " dropped by the per-record bound).</p>\n";
  out += "<table class=\"counters\"><thead><tr><th>stage</th>"
         "<th>evidence items</th></tr></thead><tbody>\n";
  for (const auto& [stage, count] : aggregate.evidence_by_stage) {
    out += "<tr><td>" + html_escape(stage) + "</td><td>" +
           std::to_string(count) + "</td></tr>\n";
  }
  out += "</tbody></table></section>\n";
}

std::string render_html_dashboard(const Aggregate& aggregate,
                                  const Timeseries* timeseries,
                                  const std::vector<DiffResult>* diffs) {
  std::string out;
  out.reserve(32768);
  out += "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n";
  out += "<meta charset=\"utf-8\">\n";
  out += "<meta name=\"viewport\" content=\"width=device-width, "
         "initial-scale=1\">\n";
  out += "<title>FEAM readiness report</title>\n";
  out += "<style>";
  out += kStyle;
  out += "</style>\n</head>\n<body>\n<main>\n";
  out += "<h1>FEAM readiness report</h1>\n";
  out += "<p class=\"subtitle\">Execution-readiness predictions aggregated "
         "from " + std::to_string(aggregate.records.size()) +
         " run records.</p>\n";

  out += "<div class=\"tiles\">\n";
  append_stat_tile(out, "run records",
                   std::to_string(aggregate.records.size()));
  append_stat_tile(out, "predictions",
                   std::to_string(aggregate.prediction_runs));
  append_stat_tile(out, "READY", std::to_string(aggregate.ready_runs));
  append_stat_tile(
      out, "not ready",
      std::to_string(aggregate.prediction_runs - aggregate.ready_runs));
  if (aggregate.events.total > 0) {
    append_stat_tile(out, "log events",
                     std::to_string(aggregate.events.total));
  }
  out += "</div>\n";

  append_matrix(out, aggregate);
  if (diffs != nullptr && !diffs->empty()) append_churn(out, *diffs);
  append_provenance(out, aggregate);
  if (timeseries != nullptr) append_timeseries_charts(out, *timeseries);
  append_latency_bars(out, aggregate);
  append_profile(out, aggregate);

  out += "<section><h2>Span waterfall</h2>\n";
  out += "<p class=\"note\">One run's span tree over its own time extent; "
         "indentation follows span parentage.</p>\n";
  out += "<select id=\"run-select\" aria-label=\"Select run\"></select>\n";
  out += "<div id=\"waterfall\"></div></section>\n";

  append_counters(out, aggregate);
  append_events(out, aggregate);

  out += "<footer>Generated by <code>feam report</code>; self-contained "
         "file, no network access required.</footer>\n";
  out += "</main>\n";
  out += "<script type=\"application/json\" id=\"feam-data\">";
  out += script_safe_json(waterfall_data(aggregate));
  out += "</script>\n<script>";
  out += kScript;
  out += "</script>\n</body>\n</html>\n";
  return out;
}

}  // namespace feam::report
